package transform

import (
	"time"

	cl "flep/internal/cudalite"
)

// CostParams weight the static per-task cost estimate. The defaults are
// calibrated against the benchmark suite: a 256-thread CTA at 8 CTAs/SM
// shares an SM's lanes, so per-task time is the per-thread work scaled by
// threads/lanes.
type CostParams struct {
	// ALUOp is the cost of one arithmetic/logic operation per thread.
	ALUOp time.Duration
	// GlobalOp is the cost of one global-memory access per thread.
	GlobalOp time.Duration
	// SharedOp is the cost of one shared-memory access per thread.
	SharedOp time.Duration
	// MathFunc is the cost of one transcendental (sqrtf, expf, ...).
	MathFunc time.Duration
	// DefaultTrip is the assumed trip count for loops whose bounds are
	// not compile-time constants.
	DefaultTrip int
	// LanesPerSM is the SIMD width available to one CTA at the modeled
	// occupancy (cores per SM / CTAs per SM).
	LanesPerSM int
}

// DefaultCostParams returns weights calibrated on the benchmark suite.
func DefaultCostParams() CostParams {
	return CostParams{
		ALUOp:       2 * time.Nanosecond,
		GlobalOp:    10 * time.Nanosecond,
		SharedOp:    2 * time.Nanosecond,
		MathFunc:    12 * time.Nanosecond,
		DefaultTrip: 16,
		LanesPerSM:  24, // 192 cores / 8 resident CTAs on Kepler
	}
}

// EstimateTaskCost statically estimates the duration of one task (one
// original CTA's work) for a kernel: per-thread operation costs, scaled by
// loop trip counts (constant bounds where derivable, DefaultTrip
// otherwise), times the CTA's thread count over its SM lane share. It is
// deliberately simple — the same spirit as the paper's linear-scan resource
// derivation — and lands within a small factor on the benchmark suite.
func EstimateTaskCost(prog *cl.Program, kernel *cl.FuncDecl, threadsPerCTA int, cp CostParams) time.Duration {
	if cp.LanesPerSM <= 0 {
		cp = DefaultCostParams()
	}
	shared := sharedNames(prog, kernel)
	perThread := costOfBlock(prog, kernel.Body, cp, shared, map[string]bool{kernel.Name: true})
	if threadsPerCTA <= 0 {
		threadsPerCTA = 256
	}
	scale := float64(threadsPerCTA) / float64(cp.LanesPerSM)
	if scale < 1 {
		scale = 1
	}
	return time.Duration(perThread * scale)
}

// sharedNames collects __shared__ identifiers reachable from the kernel so
// accesses through them get shared-memory costs.
func sharedNames(prog *cl.Program, kernel *cl.FuncDecl) map[string]bool {
	shared := map[string]bool{}
	seen := map[string]bool{kernel.Name: true}
	work := []*cl.FuncDecl{kernel}
	for i := 0; i < len(work); i++ {
		cl.Inspect(work[i].Body, func(n cl.Node) bool {
			switch x := n.(type) {
			case *cl.DeclStmt:
				if x.Shared {
					for _, d := range x.Decls {
						shared[d.Name] = true
					}
				}
			case *cl.Call:
				if !seen[x.Fun] {
					seen[x.Fun] = true
					if callee := prog.Func(x.Fun); callee != nil {
						work = append(work, callee)
					}
				}
			}
			return true
		})
	}
	return shared
}

func costOfBlock(prog *cl.Program, s cl.Stmt, cp CostParams, shared map[string]bool, stack map[string]bool) float64 {
	switch x := s.(type) {
	case nil:
		return 0
	case *cl.Block:
		t := 0.0
		for _, st := range x.Stmts {
			t += costOfBlock(prog, st, cp, shared, stack)
		}
		return t
	case *cl.DeclStmt:
		t := 0.0
		for _, d := range x.Decls {
			t += costOfExpr(prog, d.Init, cp, shared, stack)
		}
		return t
	case *cl.ExprStmt:
		return costOfExpr(prog, x.X, cp, shared, stack)
	case *cl.IfStmt:
		// Divergence: both sides execute under SIMT in the worst case;
		// charge the average.
		t := costOfExpr(prog, x.Cond, cp, shared, stack)
		then := costOfBlock(prog, x.Then, cp, shared, stack)
		els := costOfBlock(prog, x.Else, cp, shared, stack)
		return t + (then+els)/2 + float64(cp.ALUOp)
	case *cl.ForStmt:
		trips := tripCount(x, cp.DefaultTrip)
		body := costOfBlock(prog, x.Body, cp, shared, stack) +
			costOfExpr(prog, x.Cond, cp, shared, stack) +
			costOfExpr(prog, x.Post, cp, shared, stack)
		return costOfBlock(prog, x.Init, cp, shared, stack) + float64(trips)*body
	case *cl.WhileStmt:
		body := costOfBlock(prog, x.Body, cp, shared, stack) +
			costOfExpr(prog, x.Cond, cp, shared, stack)
		return float64(cp.DefaultTrip) * body
	case *cl.ReturnStmt:
		return costOfExpr(prog, x.X, cp, shared, stack)
	default:
		return 0
	}
}

// tripCount derives a for loop's constant trip count when the classic
// "i = a; i < b; ++i" shape has constant bounds.
func tripCount(f *cl.ForStmt, def int) int {
	start, okS := int64(0), false
	if ds, ok := f.Init.(*cl.DeclStmt); ok && len(ds.Decls) == 1 && ds.Decls[0].Init != nil {
		start, okS = constEval(ds.Decls[0].Init)
	} else if es, ok := f.Init.(*cl.ExprStmt); ok {
		if as, ok := es.X.(*cl.Assign); ok {
			start, okS = constEval(as.R)
		}
	}
	if bin, ok := f.Cond.(*cl.Binary); ok && okS {
		if end, okE := constEval(bin.R); okE {
			var n int64
			switch bin.Op {
			case cl.OpLt:
				n = end - start
			case cl.OpLe:
				n = end - start + 1
			default:
				return def
			}
			if n >= 0 && n < 1<<20 {
				return int(n)
			}
		}
	}
	return def
}

func costOfExpr(prog *cl.Program, e cl.Expr, cp CostParams, shared map[string]bool, stack map[string]bool) float64 {
	switch x := e.(type) {
	case nil:
		return 0
	case *cl.Ident, *cl.IntLit, *cl.FloatLit, *cl.BoolLit, *cl.NullLit, *cl.StrLit:
		return 0
	case *cl.Member:
		return 0 // builtin index reads are register reads
	case *cl.Paren:
		return costOfExpr(prog, x.X, cp, shared, stack)
	case *cl.Cast:
		return costOfExpr(prog, x.X, cp, shared, stack) + float64(cp.ALUOp)
	case *cl.Unary:
		t := costOfExpr(prog, x.X, cp, shared, stack) + float64(cp.ALUOp)
		if x.Op == cl.OpDeref {
			t += memCost(x.X, cp, shared)
		}
		return t
	case *cl.Postfix:
		return costOfExpr(prog, x.X, cp, shared, stack) + float64(cp.ALUOp)
	case *cl.Binary:
		return costOfExpr(prog, x.L, cp, shared, stack) +
			costOfExpr(prog, x.R, cp, shared, stack) + float64(cp.ALUOp)
	case *cl.Assign:
		t := costOfExpr(prog, x.R, cp, shared, stack) + float64(cp.ALUOp)
		// Writing through an index/deref is a memory store.
		if idx, ok := x.L.(*cl.Index); ok {
			t += costOfExpr(prog, idx.Idx, cp, shared, stack) + memCost(idx.X, cp, shared)
		}
		return t
	case *cl.Cond:
		return costOfExpr(prog, x.C, cp, shared, stack) +
			(costOfExpr(prog, x.T, cp, shared, stack)+costOfExpr(prog, x.E, cp, shared, stack))/2 +
			float64(cp.ALUOp)
	case *cl.Index:
		return costOfExpr(prog, x.Idx, cp, shared, stack) + memCost(x.X, cp, shared)
	case *cl.Call:
		t := 0.0
		for _, a := range x.Args {
			t += costOfExpr(prog, a, cp, shared, stack)
		}
		switch x.Fun {
		case "__syncthreads":
			return t + 2*float64(cp.ALUOp)
		case "atomicAdd", "atomicMax", "atomicExch":
			return t + 2*float64(cp.GlobalOp)
		}
		if _, ok := mathFuncNames[x.Fun]; ok {
			return t + float64(cp.MathFunc)
		}
		if callee := prog.Func(x.Fun); callee != nil && !stack[x.Fun] {
			stack[x.Fun] = true
			t += costOfBlock(prog, callee.Body, cp, shared, stack)
			delete(stack, x.Fun)
		}
		return t
	}
	return 0
}

// memCost classifies an access base as shared or global memory.
func memCost(base cl.Expr, cp CostParams, shared map[string]bool) float64 {
	if id, ok := base.(*cl.Ident); ok && shared[id.Name] {
		return float64(cp.SharedOp)
	}
	return float64(cp.GlobalOp)
}

var mathFuncNames = map[string]bool{
	"sqrt": true, "sqrtf": true, "rsqrtf": true, "fabs": true, "fabsf": true,
	"exp": true, "expf": true, "log": true, "logf": true, "sinf": true,
	"cosf": true, "floorf": true, "ceilf": true, "powf": true,
	"fminf": true, "fmaxf": true, "min": true, "max": true, "abs": true,
}
