// Command flepsim runs one co-run scenario on the simulated K40 under a
// chosen scheduler and reports per-kernel turnarounds and metrics.
//
// Usage:
//
//	flepsim -pair SPMV,NN                 # priority pair under HPF vs MPS
//	flepsim -pair VA,NN -equal            # equal-priority pair (SRT)
//	flepsim -triplet VA,SPMV,MM           # three-kernel co-run
//	flepsim -pair NN,CFD -spatial         # spatial preemption pair
//	flepsim -pair MM,SPMV -ffs            # FFS fairness (closed loop)
//	flepsim ... -trace                    # dump the event trace
//	flepsim ... -gantt                    # dump kernel residency spans
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"flep/internal/core"
	"flep/internal/gpu"
	"flep/internal/kernels"
	"flep/internal/metrics"
	"flep/internal/workload"
)

func main() {
	pair := flag.String("pair", "", "two benchmarks A,B (A = high priority / short)")
	triplet := flag.String("triplet", "", "three benchmarks A,B,C (A large, B/C small)")
	equal := flag.Bool("equal", false, "equal priority (SRT scheduling) instead of priorities")
	spatial := flag.Bool("spatial", false, "spatial-preemption pair (A trivial input)")
	ffs := flag.Bool("ffs", false, "FFS fairness policy with closed-loop clients")
	horizon := flag.Duration("horizon", 200*time.Millisecond, "FFS run horizon")
	traceOut := flag.Bool("trace", false, "print the device/runtime event trace")
	gantt := flag.Bool("gantt", false, "print kernel residency spans")
	flag.Parse()

	sc, opt, err := buildScenario(*pair, *triplet, *equal, *spatial, *ffs, *horizon)
	if err != nil {
		fatalf("%v", err)
	}
	opt.Trace = *traceOut || *gantt

	sys := core.NewSystem(gpu.DefaultParams())
	fmt.Fprintln(os.Stderr, "flepsim: running offline phase (transform, tune, train, profile)...")
	if err := sys.OfflineAll(); err != nil {
		fatalf("offline: %v", err)
	}

	mps, err := sys.RunMPS(sc)
	if err != nil {
		fatalf("MPS run: %v", err)
	}
	res, err := sys.RunFLEP(sc, opt)
	if err != nil {
		fatalf("FLEP run: %v", err)
	}

	fmt.Printf("scenario %s (policy %s)\n\n", sc.Name, policyName(opt))
	if *ffs {
		printFFS(sc, res)
	} else {
		printComparison(sys, sc, mps, res)
	}
	if *traceOut && res.Log != nil {
		fmt.Println("\n--- event trace ---")
		res.Log.WriteText(os.Stdout)
	}
	if *gantt && res.Log != nil {
		fmt.Println("\n--- residency spans ---")
		for _, row := range res.Log.Gantt() {
			fmt.Printf("%-6s SMs[%2d,%2d) %12v .. %12v\n", row.Kernel, row.SMLo, row.SMHi, row.Start, row.End)
		}
	}
}

func policyName(opt core.Options) string {
	switch {
	case opt.Policy == "ffs":
		return "FFS"
	case opt.Spatial:
		return "HPF+spatial"
	default:
		return "HPF"
	}
}

func buildScenario(pair, triplet string, equal, spatial, ffs bool, horizon time.Duration) (workload.Scenario, core.Options, error) {
	var opt core.Options
	opt.Policy = "hpf"
	if ffs {
		opt.Policy = "ffs"
		opt.MaxOverhead = 0.10
		opt.Weights = map[int]float64{2: 2, 1: 1}
		opt.ShareWindow = 10 * time.Millisecond
	}
	if spatial {
		opt.Spatial = true
	}
	switch {
	case triplet != "":
		names := strings.Split(triplet, ",")
		if len(names) != 3 {
			return workload.Scenario{}, opt, fmt.Errorf("-triplet wants A,B,C")
		}
		a, b, c, err := three(names)
		if err != nil {
			return workload.Scenario{}, opt, err
		}
		return workload.Triplet(a, b, c), opt, nil
	case pair != "":
		names := strings.Split(pair, ",")
		if len(names) != 2 {
			return workload.Scenario{}, opt, fmt.Errorf("-pair wants A,B")
		}
		a, err := kernels.ByName(strings.TrimSpace(names[0]))
		if err != nil {
			return workload.Scenario{}, opt, err
		}
		b, err := kernels.ByName(strings.TrimSpace(names[1]))
		if err != nil {
			return workload.Scenario{}, opt, err
		}
		switch {
		case ffs:
			return workload.FairPair(a, b, horizon), opt, nil
		case spatial:
			return workload.SpatialPair(a, b), opt, nil
		case equal:
			return workload.EqualPair(a, b), opt, nil
		default:
			return workload.PriorityPair(a, b, 0), opt, nil
		}
	}
	return workload.Scenario{}, opt, fmt.Errorf("one of -pair or -triplet is required (benchmarks: %s)", strings.Join(kernels.Names(), ", "))
}

func three(names []string) (a, b, c *kernels.Benchmark, err error) {
	if a, err = kernels.ByName(strings.TrimSpace(names[0])); err != nil {
		return
	}
	if b, err = kernels.ByName(strings.TrimSpace(names[1])); err != nil {
		return
	}
	c, err = kernels.ByName(strings.TrimSpace(names[2]))
	return
}

func printComparison(sys *core.System, sc workload.Scenario, mps, flep *core.RunResult) {
	fmt.Printf("%-8s %-8s %14s %14s %9s\n", "kernel", "input", "MPS(us)", "FLEP(us)", "speedup")
	for _, item := range sc.Items {
		name := item.Bench.Name
		m := mps.ResultFor(name)
		f := flep.ResultFor(name)
		if m == nil || f == nil {
			continue
		}
		fmt.Printf("%-8s %-8s %14.1f %14.1f %8.2fx\n",
			name, item.Class,
			float64(m.Turnaround())/float64(time.Microsecond),
			float64(f.Turnaround())/float64(time.Microsecond),
			metrics.Speedup(m.Turnaround(), f.Turnaround()))
	}
	mRuns, err1 := sys.KernelRuns(sc, mps)
	fRuns, err2 := sys.KernelRuns(sc, flep)
	if err1 == nil && err2 == nil {
		fmt.Printf("\nANTT: MPS %.2f → FLEP %.2f (%.1fx better)\n",
			metrics.ANTT(mRuns), metrics.ANTT(fRuns), metrics.ANTT(mRuns)/metrics.ANTT(fRuns))
	}
}

func printFFS(sc workload.Scenario, res *core.RunResult) {
	fmt.Printf("%-8s %12s %12s\n", "kernel", "completions", "mean share")
	for _, item := range sc.Items {
		name := item.Bench.Name
		fmt.Printf("%-8s %12d %11.1f%%\n", name, res.Completions[name],
			metrics.MeanShare(res.Shares, name)*100)
	}
	fmt.Println("\nshare over time:")
	for _, s := range res.Shares {
		fmt.Printf("  t=%-12v", s.At)
		for _, item := range sc.Items {
			fmt.Printf("  %s=%5.1f%%", item.Bench.Name, s.Share[item.Bench.Name]*100)
		}
		fmt.Println()
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "flepsim: "+format+"\n", args...)
	os.Exit(1)
}
