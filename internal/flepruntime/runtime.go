package flepruntime

import (
	"fmt"
	"sort"
	"time"

	"flep/internal/gpu"
	"flep/internal/trace"
	"flep/internal/transform"
)

// Policy is a pluggable scheduling policy. The runtime calls it from its
// reconcile loop; implementations must not call back into the runtime
// except through the documented hooks.
type Policy interface {
	// Name identifies the policy in traces.
	Name() string
	// Enqueue inserts a newly waiting invocation into the policy's queue.
	Enqueue(v *Invocation)
	// Peek returns the invocation the policy would run next, or nil.
	Peek() *Invocation
	// Queued lists all waiting invocations in policy order (used for
	// memory-admission fallbacks).
	Queued() []*Invocation
	// Dequeue removes a previously peeked invocation.
	Dequeue(v *Invocation)
	// ShouldPreempt decides whether best should preempt running (both
	// non-nil).
	ShouldPreempt(r *Runtime, running, best *Invocation) bool
	// OnDispatch lets the policy arm timers (FFS epochs).
	OnDispatch(r *Runtime, v *Invocation)
}

// Config parameterizes the runtime engine.
type Config struct {
	// Policy selects HPF or FFS (required).
	Policy Policy
	// EnableSpatial turns on spatial preemption: when a higher-priority
	// kernel needs fewer SMs than the device has, only that many SMs are
	// yielded.
	EnableSpatial bool
	// SpatialSMs overrides the yielded SM count (0 = just enough to host
	// the guest's CTAs). Figure 16 sweeps this to trade guest performance
	// against preemption overhead.
	SpatialSMs int
	// OverheadEstimate returns the estimated preemption overhead for a
	// kernel (used by HPF's decision rule and FFS's epoch sizing). Nil
	// falls back to a drain-model estimate.
	OverheadEstimate func(kernel string) time.Duration
	// OnPreemptDrained, if set, observes every realized preemption drain
	// with its latency (flag raise → drain complete). Replay uses it to
	// collect exact drain-latency distributions; metrics histograms only
	// keep bucketed approximations. Called on the simulation goroutine.
	OnPreemptDrained func(v *Invocation, latency time.Duration)
	// Log, if set, receives runtime events.
	Log *trace.Log
	// Metrics, if set, receives runtime instrumentation (see NewMetrics).
	Metrics *Metrics
}

// completionObserver is an optional Policy extension: policies that keep
// per-kernel state (FFS's overhead table) implement it to learn when a
// kernel's invocation finishes, so departed tenants can be evicted.
type completionObserver interface {
	OnCompletion(r *Runtime, v *Invocation)
}

// Runtime is the FLEP online engine: it owns the device, buffers
// intercepted invocations in priority queues, and realizes preemption and
// scheduling decisions.
type Runtime struct {
	dev *gpu.Device
	cfg Config
	met *Metrics

	nextID  int
	running *Invocation // primary execution (nil if GPU free)
	guest   *Invocation // spatial guest on low SMs (nil if none)
	// draining is set while a preemption drain is in flight; scheduling
	// pauses until the drained callback.
	draining     bool
	pendingGuest *Invocation // waiting to land on spatially-freed SMs
}

// binder is implemented by policies that need a back-reference to their
// runtime (FFS's epoch bookkeeping).
type binder interface{ bind(*Runtime) }

// New builds a runtime on the device.
func New(dev *gpu.Device, cfg Config) *Runtime {
	if cfg.Policy == nil {
		panic("flepruntime: config without policy")
	}
	r := &Runtime{dev: dev, cfg: cfg, met: cfg.Metrics}
	if r.met == nil {
		r.met = &Metrics{} // inert: every instrument is nil-safe
	}
	if b, ok := cfg.Policy.(binder); ok {
		b.bind(r)
	}
	return r
}

// Metrics returns the runtime's instrument set (never nil).
func (r *Runtime) Metrics() *Metrics { return r.met }

// Device returns the underlying device.
func (r *Runtime) Device() *gpu.Device { return r.dev }

// Running returns the primary running invocation, or nil.
func (r *Runtime) Running() *Invocation { return r.running }

func (r *Runtime) log(kind, kernel, detail string) {
	if r.cfg.Log != nil {
		r.cfg.Log.Runtime(r.dev.Now(), kind, kernel, detail)
	}
}

// Submit intercepts a kernel invocation (the transformed host program's
// flep_intercept call) and enters it into scheduling. Invocations whose
// working set exceeds the device memory can never run and are rejected.
func (r *Runtime) Submit(v *Invocation) error {
	if v.WorkingSet > 0 && r.dev.Params().MemoryBytes > 0 &&
		v.WorkingSet > r.dev.Params().MemoryBytes {
		return fmt.Errorf("flepruntime: %s working set %d exceeds device memory %d",
			v.Kernel, v.WorkingSet, r.dev.Params().MemoryBytes)
	}
	r.nextID++
	v.ID = r.nextID
	v.submittedAt = r.dev.Now()
	if v.Tr == 0 {
		v.Tr = v.Te
	}
	if v.L <= 0 {
		v.L = 1
	}
	v.beginWait(r.dev.Now())
	r.cfg.Policy.Enqueue(v)
	r.met.Submits.Inc()
	if v.Dependent {
		r.met.DependentSubmits.Inc()
	}
	r.setQueueGauges()
	r.log("submit", v.Kernel, fmt.Sprintf("id=%d prio=%d Te=%v", v.ID, v.Priority, v.Te))
	r.schedule()
	return nil
}

// setQueueGauges refreshes the policy-queue depth gauges: total waiting
// invocations and the model-graph subset among them.
func (r *Runtime) setQueueGauges() {
	queued := r.cfg.Policy.Queued()
	dep := 0
	for _, q := range queued {
		if q.Dependent {
			dep++
		}
	}
	r.met.QueueLength.Set(float64(len(queued)))
	r.met.DependentQueueLength.Set(float64(dep))
}

// fits reports whether the invocation's working set can be (or already is)
// reserved.
func (r *Runtime) fits(v *Invocation) bool {
	return v.reserved || v.WorkingSet <= r.dev.MemoryFree()
}

// OverheadFor estimates the preemption overhead of the kernel: the
// configured profile-based estimate if available, otherwise a drain-model
// bound (flag propagation + poll + expected residual batch + relaunch).
// The residual term mirrors gpu.Exec.drainTime: a uniformly-positioned
// worker owes (L-1)/2 tasks on average before its next flag poll.
func (r *Runtime) OverheadFor(v *Invocation) time.Duration {
	if r.cfg.OverheadEstimate != nil {
		if d := r.cfg.OverheadEstimate(v.Kernel); d > 0 {
			return d
		}
	}
	par := r.dev.Params()
	batch := time.Duration(float64(v.L-1) / 2 * float64(v.TaskCost))
	return par.FlagPropagation + par.PinnedReadLatency + batch + 2*par.LaunchLatency
}

// smsNeeded computes the spatial footprint of an invocation: just enough
// SMs to host all its CTAs.
func (r *Runtime) smsNeeded(v *Invocation) int {
	occ := transform.Occupancy{CTAsPerSM: v.Profile.CTAsPerSM}
	return transform.SMsNeeded(occ, v.Tasks-v.doneTasks, r.dev.Params().Limits)
}

// schedule is the reconcile loop: called after every submit, completion,
// and drain. It decides at most one action per call.
func (r *Runtime) schedule() {
	if r.draining {
		return
	}
	best := r.cfg.Policy.Peek()
	if best == nil {
		return
	}
	if !r.fits(best) {
		// Memory admission: the policy's first choice cannot become
		// resident yet. Fall back to the first queued invocation that
		// fits, so neither an idle GPU nor a preemption opportunity
		// stalls behind a memory-blocked kernel.
		best = nil
		for _, q := range r.cfg.Policy.Queued() {
			if r.fits(q) {
				best = q
				break
			}
		}
		if best == nil {
			return // a completion will free memory; retry then
		}
	}
	if r.running == nil {
		if r.guest != nil {
			// A spatial guest holds [0, hi); the high SMs are free. Idling
			// them until the guest departs would stall the whole device
			// behind one small kernel, so dispatch the next invocation as
			// the new primary on [hi, NumSMs). When the guest completes,
			// onComplete expands the primary back down to SM 0.
			_, hi := r.guest.exec.SMRange()
			if hi >= r.dev.NumSMs() {
				return // guest covers the device; wait for it
			}
			r.cfg.Policy.Dequeue(best)
			r.dispatch(best, hi, r.dev.NumSMs(), false)
			return
		}
		r.cfg.Policy.Dequeue(best)
		r.dispatch(best, 0, r.dev.NumSMs(), false)
		return
	}
	// Decide preemption of the running invocation.
	if r.cfg.Policy.ShouldPreempt(r, r.running, best) {
		r.preemptFor(best)
	}
}

// PreemptRunning forces a temporal preemption of the running invocation
// (used by FFS at epoch boundaries). It is a no-op if nothing is running
// or a drain is already in flight.
func (r *Runtime) PreemptRunning() {
	if r.running == nil || r.draining {
		return
	}
	victim := r.running
	r.draining = true
	victim.preemptAt = r.dev.Now()
	victim.preemptPredicted = r.OverheadFor(victim)
	r.log("preempt", victim.Kernel, "epoch expired")
	if err := victim.exec.Preempt(r.dev.NumSMs()); err != nil {
		r.draining = false
		r.met.PreemptAborts.Inc()
	}
}

// preemptFor initiates preemption of the running invocation on behalf of
// best, choosing spatial preemption when best does not need the whole GPU.
func (r *Runtime) preemptFor(best *Invocation) {
	victim := r.running
	need := r.dev.NumSMs()
	spatial := false
	if r.cfg.EnableSpatial && r.guest == nil && best.Priority > victim.Priority {
		n := r.smsNeeded(best)
		if r.cfg.SpatialSMs > 0 && r.cfg.SpatialSMs >= n {
			n = r.cfg.SpatialSMs
		}
		if n < r.dev.NumSMs() {
			need = n
			spatial = true
		}
	}
	r.draining = true
	if spatial {
		r.pendingGuest = best
		r.cfg.Policy.Dequeue(best)
	}
	victim.preemptAt = r.dev.Now()
	victim.preemptPredicted = r.OverheadFor(victim)
	r.log("preempt", victim.Kernel, fmt.Sprintf("for=%s sms=%d spatial=%v", best.Kernel, need, spatial))
	if err := victim.exec.Preempt(need); err != nil {
		// The victim raced to completion; its completion callback will
		// reschedule.
		r.draining = false
		r.met.PreemptAborts.Inc()
		if spatial {
			r.pendingGuest = nil
			r.cfg.Policy.Enqueue(best)
		}
	}
}

// dispatch starts an invocation on the SM range.
func (r *Runtime) dispatch(v *Invocation, smLo, smHi int, asGuest bool) {
	now := r.dev.Now()
	if v.state == InvWaiting {
		r.met.QueueWait.Observe((now - v.waitingSince).Seconds())
	}
	if !v.reserved && v.WorkingSet > 0 {
		if err := r.dev.Reserve(v.WorkingSet); err != nil {
			panic(fmt.Sprintf("flepruntime: dispatch %s: %v (admission bug)", v.Kernel, err))
		}
		v.reserved = true
	}
	v.beginRun(now)
	v.guest = asGuest
	exec, err := r.dev.Start(gpu.ExecConfig{
		Profile:    v.Profile,
		TotalTasks: v.Tasks,
		DoneTasks:  v.doneTasks,
		TaskCost:   v.TaskCost,
		Persistent: true,
		L:          v.L,
		SMLo:       smLo,
		SMHi:       smHi,
		ColdStart:  v.doneTasks > 0,
		OnComplete: func() { r.onComplete(v) },
		OnDrained:  func(rem int) { r.onDrained(v, rem) },
	})
	if err != nil {
		panic(fmt.Sprintf("flepruntime: dispatch %s: %v", v.Kernel, err))
	}
	v.exec = exec
	if asGuest {
		r.guest = v
		r.met.GuestDispatches.Inc()
	} else {
		r.running = v
		r.met.Dispatches.Inc()
	}
	r.setQueueGauges()
	r.log("dispatch", v.Kernel, fmt.Sprintf("id=%d sms=[%d,%d) guest=%v", v.ID, smLo, smHi, asGuest))
	r.cfg.Policy.OnDispatch(r, v)
}

// onComplete handles an invocation finishing all tasks.
func (r *Runtime) onComplete(v *Invocation) {
	now := r.dev.Now()
	v.chargeRun(now)
	v.state = InvFinished
	v.finishedAt = now
	v.doneTasks = v.Tasks
	if v.reserved {
		r.dev.Release(v.WorkingSet)
		v.reserved = false
	}
	wasGuest := v.guest
	if r.guest == v {
		r.guest = nil
	}
	if r.running == v {
		r.running = nil
	}
	r.log("complete", v.Kernel, fmt.Sprintf("id=%d turnaround=%v Tw=%v", v.ID, v.Turnaround(), v.Tw))
	if wasGuest && !r.draining && r.running != nil && r.running.exec != nil {
		// Reclaim the guest's SMs for the shrunk victim. Skipped while the
		// primary itself is draining: a temporal drain tears the execution
		// down (it redispatches at full width later), and a spatial drain
		// has promised the freed SMs to the pending guest.
		lo, _ := r.running.exec.SMRange()
		if lo > 0 {
			if err := r.running.exec.Expand(0); err == nil {
				r.log("expand", r.running.Kernel, "reclaimed guest SMs")
			}
		}
	}
	if v.OnFinish != nil {
		v.OnFinish(v)
	}
	// After OnFinish, so a closed-loop client's immediate resubmission
	// counts as the kernel still being present (no eviction churn).
	if co, ok := r.cfg.Policy.(completionObserver); ok {
		co.OnCompletion(r, v)
	}
	r.schedule()
}

// onDrained handles the device reporting that a preemption drain finished.
func (r *Runtime) onDrained(v *Invocation, remaining int) {
	r.draining = false
	if remaining == 0 {
		// The victim completed before the drain; onComplete already ran.
		if g := r.pendingGuest; g != nil {
			r.pendingGuest = nil
			r.cfg.Policy.Enqueue(g)
		}
		r.schedule()
		return
	}
	now := r.dev.Now()
	v.chargeRun(now)
	v.doneTasks = v.Tasks - remaining
	v.Preemptions++
	drain := now - v.preemptAt
	r.met.DrainLatency.Observe(drain.Seconds())
	if r.cfg.OnPreemptDrained != nil {
		r.cfg.OnPreemptDrained(v, drain)
	}
	if predErr := (v.preemptPredicted - drain).Seconds(); predErr >= 0 {
		r.met.OverheadError.Observe(predErr)
	} else {
		r.met.OverheadError.Observe(-predErr)
	}
	if g := r.pendingGuest; g != nil {
		// Spatial: victim keeps running on its remaining SMs; the guest
		// takes the freed low SMs.
		r.pendingGuest = nil
		r.met.SpatialPreempts.Inc()
		lo, _ := v.exec.SMRange()
		r.log("drained", v.Kernel, fmt.Sprintf("spatial remaining=%d freed=[0,%d)", remaining, lo))
		r.dispatch(g, 0, lo, true)
		return
	}
	// Temporal: the victim stopped entirely; it goes back to the queue.
	r.met.TemporalPreempts.Inc()
	v.beginWait(now)
	v.exec = nil
	if r.running == v {
		r.running = nil
	}
	r.log("drained", v.Kernel, fmt.Sprintf("temporal remaining=%d", remaining))
	r.cfg.Policy.Enqueue(v)
	r.setQueueGauges()
	r.schedule()
}

// ---- HPF policy ----

// HPF is the paper's highest-priority-first policy with shortest-remaining-
// time ordering and overhead-aware preemption within a priority level
// (Figure 6, §5.2.1).
type HPF struct {
	queue []*Invocation
	// OverheadAware disables the preemption-overhead term when false
	// (the naive-SRT ablation). The paper's HPF sets it true.
	OverheadAware bool
}

// NewHPF returns the paper's HPF policy.
func NewHPF() *HPF { return &HPF{OverheadAware: true} }

// Name implements Policy.
func (h *HPF) Name() string { return "HPF" }

// Enqueue inserts keeping the queue sorted by (priority desc, Tr asc), so
// the head is always the next kernel to schedule. A binary search finds the
// slot in O(log n) and one copy shifts the tail, instead of re-sorting the
// whole queue per insert. Equal (priority, Tr) keys land after existing
// entries, preserving the FIFO tie-break sort.SliceStable used to give.
func (h *HPF) Enqueue(v *Invocation) {
	i := sort.Search(len(h.queue), func(i int) bool {
		q := h.queue[i]
		if q.Priority != v.Priority {
			return q.Priority < v.Priority
		}
		return q.Tr > v.Tr
	})
	h.queue = append(h.queue, nil)
	copy(h.queue[i+1:], h.queue[i:])
	h.queue[i] = v
}

// Peek implements Policy.
func (h *HPF) Peek() *Invocation {
	if len(h.queue) == 0 {
		return nil
	}
	return h.queue[0]
}

// Dequeue implements Policy.
func (h *HPF) Dequeue(v *Invocation) {
	for i, q := range h.queue {
		if q == v {
			h.queue = append(h.queue[:i], h.queue[i+1:]...)
			return
		}
	}
}

// ShouldPreempt applies Figure 6's rules: a strictly higher priority always
// preempts; within a priority level, shortest-remaining-time preempts only
// if the running kernel's remaining time exceeds the candidate's remaining
// time plus the preemption overhead (the overhead delays every waiter).
func (h *HPF) ShouldPreempt(r *Runtime, running, best *Invocation) bool {
	if best.Priority != running.Priority {
		return best.Priority > running.Priority
	}
	running.chargeRun(r.Device().Now())
	threshold := best.Tr
	if h.OverheadAware {
		threshold += r.OverheadFor(running)
	}
	return running.Tr > threshold
}

// OnDispatch implements Policy (no-op for HPF).
func (h *HPF) OnDispatch(*Runtime, *Invocation) {}

// Queued implements Policy.
func (h *HPF) Queued() []*Invocation { return h.queue }

// Pending returns the queued invocation count (for tests).
func (h *HPF) Pending() int { return len(h.queue) }
