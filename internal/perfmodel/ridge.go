// Package perfmodel implements FLEP's lightweight kernel-duration models
// (§4.2): per-kernel linear regression with an L2-norm penalty over four
// features — grid size, CTA size, input size, and shared memory size — plus
// the preemption-overhead estimator (mean of profiled runs).
package perfmodel

import (
	"encoding/json"
	"fmt"
	"math"
	"time"
)

// Features are the model inputs, "easily obtained given a kernel
// invocation".
type Features struct {
	GridSize    float64 // number of CTAs
	CTASize     float64 // threads per CTA
	InputBytes  float64 // input data size
	SharedBytes float64 // shared memory per CTA
}

func (f Features) vector() []float64 {
	return []float64{f.GridSize, f.CTASize, f.InputBytes, f.SharedBytes}
}

// Sample pairs features with an observed duration.
type Sample struct {
	F        Features
	Duration time.Duration
}

// Model is a trained ridge regression predicting kernel duration.
type Model struct {
	weights   []float64 // per standardized feature
	intercept float64
	mean, std []float64 // feature standardization
}

// DefaultLambda is the L2 penalty used when training FLEP models.
const DefaultLambda = 1e-3

// Train fits a ridge regression on the samples. At least two samples are
// required; lambda ≤ 0 uses DefaultLambda. Features are standardized
// internally, with constant features dropped (zero weight).
func Train(samples []Sample, lambda float64) (*Model, error) {
	if len(samples) < 2 {
		return nil, fmt.Errorf("perfmodel: need at least 2 samples, got %d", len(samples))
	}
	if lambda <= 0 {
		lambda = DefaultLambda
	}
	n := len(samples)
	d := 4
	// Standardize features for conditioning.
	mean := make([]float64, d)
	std := make([]float64, d)
	for _, s := range samples {
		v := s.F.vector()
		for j := 0; j < d; j++ {
			mean[j] += v[j]
		}
	}
	for j := 0; j < d; j++ {
		mean[j] /= float64(n)
	}
	for _, s := range samples {
		v := s.F.vector()
		for j := 0; j < d; j++ {
			diff := v[j] - mean[j]
			std[j] += diff * diff
		}
	}
	for j := 0; j < d; j++ {
		std[j] = math.Sqrt(std[j] / float64(n))
		if std[j] < 1e-12 {
			std[j] = 0 // constant feature: excluded
		}
	}

	// Normal equations on standardized features with unpenalized
	// intercept handled by centering the target.
	yMean := 0.0
	for _, s := range samples {
		yMean += s.Duration.Seconds()
	}
	yMean /= float64(n)

	xtx := make([][]float64, d)
	for j := range xtx {
		xtx[j] = make([]float64, d)
	}
	xty := make([]float64, d)
	row := make([]float64, d)
	for _, s := range samples {
		v := s.F.vector()
		for j := 0; j < d; j++ {
			if std[j] == 0 {
				row[j] = 0
			} else {
				row[j] = (v[j] - mean[j]) / std[j]
			}
		}
		yc := s.Duration.Seconds() - yMean
		for j := 0; j < d; j++ {
			for k := 0; k < d; k++ {
				xtx[j][k] += row[j] * row[k]
			}
			xty[j] += row[j] * yc
		}
	}
	for j := 0; j < d; j++ {
		xtx[j][j] += lambda * float64(n)
	}
	w, err := solve(xtx, xty)
	if err != nil {
		return nil, err
	}
	return &Model{weights: w, intercept: yMean, mean: mean, std: std}, nil
}

// Predict returns the modeled duration, floored at zero.
func (m *Model) Predict(f Features) time.Duration {
	v := f.vector()
	y := m.intercept
	for j, w := range m.weights {
		if m.std[j] == 0 {
			continue
		}
		y += w * (v[j] - m.mean[j]) / m.std[j]
	}
	if y < 0 {
		y = 0
	}
	return time.Duration(y * float64(time.Second))
}

// solve performs Gaussian elimination with partial pivoting on a (small)
// dense system Ax=b, destroying its inputs.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		if math.Abs(a[p][col]) < 1e-15 {
			return nil, fmt.Errorf("perfmodel: singular system at column %d", col)
		}
		a[col], a[p] = a[p], a[col]
		b[col], b[p] = b[p], b[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

// State is the serializable form of a trained Model: the standardized
// weights, intercept, and feature standardization. A Model round-trips
// exactly through State — FromState(m.State()) predicts bit-identically
// to m — so a replayer can start from the live system's warmed predictor
// instead of re-training from scratch.
type State struct {
	Weights   []float64 `json:"weights"`
	Intercept float64   `json:"intercept"`
	Mean      []float64 `json:"mean"`
	Std       []float64 `json:"std"`
}

// State exports the model's parameters.
func (m *Model) State() State {
	return State{
		Weights:   append([]float64(nil), m.weights...),
		Intercept: m.intercept,
		Mean:      append([]float64(nil), m.mean...),
		Std:       append([]float64(nil), m.std...),
	}
}

// FromState reconstructs a Model from exported parameters, validating
// that the dimensions are consistent.
func FromState(st State) (*Model, error) {
	d := len(st.Weights)
	if d == 0 || len(st.Mean) != d || len(st.Std) != d {
		return nil, fmt.Errorf("perfmodel: inconsistent state dimensions (weights=%d mean=%d std=%d)",
			len(st.Weights), len(st.Mean), len(st.Std))
	}
	for j, s := range st.Std {
		if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("perfmodel: bad std[%d] = %v", j, s)
		}
	}
	return &Model{
		weights:   append([]float64(nil), st.Weights...),
		intercept: st.Intercept,
		mean:      append([]float64(nil), st.Mean...),
		std:       append([]float64(nil), st.Std...),
	}, nil
}

// MarshalJSON serializes the model via its State.
func (m *Model) MarshalJSON() ([]byte, error) { return json.Marshal(m.State()) }

// UnmarshalJSON restores the model from its State form.
func (m *Model) UnmarshalJSON(b []byte) error {
	var st State
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	restored, err := FromState(st)
	if err != nil {
		return err
	}
	*m = *restored
	return nil
}

// MAPE returns the mean absolute percentage error of the model over the
// evaluation samples.
func (m *Model) MAPE(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range samples {
		truth := s.Duration.Seconds()
		if truth <= 0 {
			continue
		}
		pred := m.Predict(s.F).Seconds()
		sum += math.Abs(pred-truth) / truth
	}
	return sum / float64(len(samples))
}
