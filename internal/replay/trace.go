// Package replay is FLEP's trace record/replay engine: it captures the
// launch stream a live flepd admits, persists it as a versioned JSONL
// trace, and re-drives it through fresh simulator instances to answer
// what-if questions offline — "what if we had run FFS instead of HPF?",
// "what if the node had four devices?", "what if spa_P were larger?".
//
// The whole device layer is a deterministic discrete-event simulator, so
// unlike a real GPU stack a captured trace can be replayed bit-for-bit:
// the same trace and seed always produce byte-identical summary reports,
// and a trace recorded from flepd replays to exactly the live run's
// per-tenant completion and preemption counts (the recorder stores each
// admission's engine step index, so the replayer reproduces the precise
// arrival/step interleaving the live scheduler saw).
//
// Trace format (version 1): a JSONL file whose first line is a Header
// carrying {"flep_trace":true,"version":1,...} plus the recording
// daemon's configuration, followed by one Record per admitted launch in
// admission order. A truncated final line (crash mid-write) is tolerated
// on load; an unknown version or a non-trace file is rejected with a
// clear error. See DESIGN.md §10 for the full determinism contract.
package replay

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Version is the trace-format version this package reads and writes.
// Loaders reject any other version: trace semantics (what "at_ns" means,
// which fields drive replay) are frozen per version, and silently
// misreading a future format would poison every downstream report.
const Version = 1

// Trace sources.
const (
	// SourceFlepd marks a server-side capture: At is the shard's virtual
	// admission time and Step the shard's engine step index, so replay can
	// be exact.
	SourceFlepd = "flepd"
	// SourceFlepload marks a client-side capture from the load generator:
	// At is a wall-clock offset since the run began.
	SourceFlepload = "flepload"
	// SourceFlepgw marks a cluster-gateway capture: one record per launch
	// the gateway saw accepted by any node, with At a wall-clock offset
	// since the gateway opened its recorder and Node naming the serving
	// node. No single virtual clock spans the cluster, so gateway traces
	// replay in timed mode (like flepload's).
	SourceFlepgw = "flepgw"
	// SourceScenario marks a trace converted from a workload.Scenario or
	// synthesized mix: At is the scripted arrival offset.
	SourceScenario = "scenario"
)

// Header is the first line of a trace file: the recording side's identity
// and configuration, so a replay can default to "as recorded" and a
// what-if run knows what it is deviating from.
type Header struct {
	// Magic distinguishes a FLEP trace from arbitrary JSONL; it is always
	// true in a valid trace.
	Magic bool `json:"flep_trace"`
	// TraceVersion is the format version (see Version).
	TraceVersion int `json:"version"`
	// Source is flepd, flepload, or scenario.
	Source string `json:"source"`
	// CreatedUnixMS timestamps the recording (informational only; it is
	// never consulted by replay, which must be deterministic).
	CreatedUnixMS int64 `json:"created_unix_ms,omitempty"`
	// Policy and the fields after it mirror the recording daemon's
	// server.Config, so replay reproduces the same scheduler by default.
	Policy      string             `json:"policy,omitempty"`
	Spatial     bool               `json:"spatial,omitempty"`
	SpatialSMs  int                `json:"spatial_sms,omitempty"`
	MaxOverhead float64            `json:"max_overhead,omitempty"`
	Weights     map[string]float64 `json:"weights,omitempty"`
	// Benchmarks names the kernels loaded at record time (the replayer
	// builds offline artifacts for exactly these).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Devices is the recording fleet's shard count.
	Devices int `json:"devices,omitempty"`
	// Seed is the workload seed for synthetic traces (flepload/scenario).
	Seed int64 `json:"seed,omitempty"`
}

// Record is one admitted kernel launch. The replay-critical fields are
// At/Step/Device (when), Client (who), and Bench/Class/Priority/Weight/
// TasksOverride (what); Grid, Block, WorkingSet, and Te snapshot what the
// live system derived at admission so a replay can detect divergence.
type Record struct {
	// Seq is the global admission sequence number (assigned by the
	// recorder; the deterministic tie-break for equal arrival times).
	Seq int64 `json:"seq"`
	// At is the arrival offset in nanoseconds. For flepd traces this is
	// the shard's virtual clock at admission; for flepload/scenario
	// traces it is the offset on the synthetic timeline.
	At int64 `json:"at_ns"`
	// Step is the shard engine's step count at admission (flepd traces
	// only). Replaying "step exactly Step events, then submit" reproduces
	// the live loop's arrival interleaving precisely, including ties the
	// virtual timestamp alone cannot order.
	Step int64 `json:"step,omitempty"`
	// Wall is the real-time offset since the recorder opened
	// (informational; replay never reads it).
	Wall int64 `json:"wall_ns,omitempty"`
	// Device is the fleet shard that admitted the launch (-1 if unknown).
	Device int `json:"device"`
	// Node is the cluster node that served the launch (flepgw traces
	// only; empty otherwise). Informational for replay — a replayed
	// cluster collapses onto one simulated fleet — but it keeps the
	// record attributable when reconciling a gateway trace against
	// per-node accounting.
	Node string `json:"node,omitempty"`

	Client        string  `json:"client"`
	Bench         string  `json:"bench"`
	Class         string  `json:"class,omitempty"`
	Priority      int     `json:"priority"`
	Weight        float64 `json:"weight,omitempty"`
	TasksOverride int     `json:"tasks_override,omitempty"`

	// Grid and Block are the launch dimensions (CTAs and threads/CTA) the
	// live system resolved; WorkingSet its resident footprint in bytes;
	// Te the live predictor's duration estimate. All informational for
	// replay (the replayer re-derives them) but load-bearing for the
	// divergence check: a replayed Te that disagrees with the recorded
	// one means the offline artifacts differ from the recording system's.
	Grid       int   `json:"grid,omitempty"`
	Block      int   `json:"block,omitempty"`
	WorkingSet int64 `json:"working_set,omitempty"`
	Te         int64 `json:"te_ns,omitempty"`

	// DeadlineNS is the launch's SLO budget in virtual nanoseconds from
	// admission (zero = best-effort) and SLOClass its tier name
	// ("latency"; empty for best-effort). Replay re-applies the budget at
	// submission, so SLO attainment is reproducible and scoreable across
	// what-if configurations. Both are omitted for best-effort launches,
	// keeping pre-SLO traces byte-identical.
	DeadlineNS int64  `json:"deadline_ns,omitempty"`
	SLOClass   string `json:"slo_class,omitempty"`

	// Model-graph coordinates: Model is the (folded) model name the serving
	// daemon accounted this launch under, GraphID the graph instance, Stage
	// this launch's stage name, and After its declared prerequisites. All
	// omitted for plain launches, keeping pre-DAG traces byte-identical.
	// Replay uses them to reproduce per-model aggregation and, in timed
	// mode, to respect stage ordering.
	Model   string   `json:"model,omitempty"`
	GraphID string   `json:"graph_id,omitempty"`
	Stage   string   `json:"stage,omitempty"`
	After   []string `json:"after,omitempty"`
}

// Trace is a loaded trace: header plus records in admission (Seq) order.
type Trace struct {
	Header  Header
	Records []Record
}

// Exact reports whether the trace supports step-exact replay: a flepd
// capture where every record carries its engine step index.
func (t *Trace) Exact() bool {
	if t.Header.Source != SourceFlepd {
		return false
	}
	for _, r := range t.Records {
		if r.Step == 0 && r.At != 0 {
			// A record admitted before the engine ever stepped legitimately
			// has Step 0 but then also At 0.
			return false
		}
	}
	return true
}

// Clients returns the distinct client IDs in the trace, sorted.
func (t *Trace) Clients() []string {
	seen := map[string]bool{}
	for _, r := range t.Records {
		seen[r.Client] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Benchmarks returns the distinct benchmark names in the trace, sorted.
// It prefers the header's list (which names everything the recording
// daemon had loaded) and falls back to the records.
func (t *Trace) Benchmarks() []string {
	if len(t.Header.Benchmarks) > 0 {
		out := append([]string(nil), t.Header.Benchmarks...)
		sort.Strings(out)
		return out
	}
	seen := map[string]bool{}
	for _, r := range t.Records {
		seen[r.Bench] = true
	}
	out := make([]string, 0, len(seen))
	for b := range seen {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// parseHeader validates the first line of a trace file.
func parseHeader(line []byte) (Header, error) {
	// Distinguish "not a trace" from "a trace we cannot read": the magic
	// key must be present before the version is even considered.
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(line, &probe); err != nil {
		return Header{}, fmt.Errorf("replay: not a FLEP trace (first line is not JSON: %v)", err)
	}
	if _, ok := probe["flep_trace"]; !ok {
		return Header{}, fmt.Errorf("replay: not a FLEP trace (first line lacks the flep_trace marker)")
	}
	var h Header
	if err := json.Unmarshal(line, &h); err != nil {
		return Header{}, fmt.Errorf("replay: bad trace header: %v", err)
	}
	if !h.Magic {
		return Header{}, fmt.Errorf("replay: not a FLEP trace (flep_trace marker is false)")
	}
	if h.TraceVersion != Version {
		return Header{}, fmt.Errorf("replay: unsupported trace version %d (this build reads version %d)",
			h.TraceVersion, Version)
	}
	return h, nil
}

// Read parses one trace segment from r. A truncated final line — the
// tail of a crashed or still-recording daemon's buffer — is tolerated:
// every complete record before it loads, and the partial line is
// dropped. Any other malformed record line is an error (silent skips
// would bias every downstream report).
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	headerLine, err := br.ReadBytes('\n')
	if err == io.EOF && len(bytes.TrimSpace(headerLine)) == 0 {
		return nil, fmt.Errorf("replay: empty trace")
	}
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("replay: reading trace header: %w", err)
	}
	h, herr := parseHeader(bytes.TrimSpace(headerLine))
	if herr != nil {
		return nil, herr
	}
	t := &Trace{Header: h}
	for lineNo := 2; ; lineNo++ {
		line, err := br.ReadBytes('\n')
		complete := err == nil
		line = bytes.TrimSpace(line)
		if len(line) > 0 {
			var rec Record
			if jerr := json.Unmarshal(line, &rec); jerr != nil {
				if !complete {
					break // truncated tail: keep everything before it
				}
				return nil, fmt.Errorf("replay: trace line %d: %v", lineNo, jerr)
			}
			t.Records = append(t.Records, rec)
		}
		if err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("replay: reading trace: %w", err)
		}
	}
	return t, nil
}

// LoadFile loads a single trace segment from disk.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	defer f.Close()
	t, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("replay: %s: %w", path, err)
	}
	return t, nil
}

// Load loads a trace including any rotated segments: `path.1` (oldest)
// through `path.N`, then `path` itself (the segment currently being
// written). Records are concatenated in segment order and re-sorted by
// Seq, so a trace that rotated mid-burst loads as one stream.
func Load(path string) (*Trace, error) {
	var segments []string
	for i := 1; ; i++ {
		seg := fmt.Sprintf("%s.%d", path, i)
		if _, err := os.Stat(seg); err != nil {
			break
		}
		segments = append(segments, seg)
	}
	segments = append(segments, path)

	var merged *Trace
	for _, seg := range segments {
		t, err := LoadFile(seg)
		if err != nil {
			return nil, err
		}
		if merged == nil {
			merged = t
			continue
		}
		merged.Records = append(merged.Records, t.Records...)
	}
	sort.SliceStable(merged.Records, func(i, j int) bool {
		return merged.Records[i].Seq < merged.Records[j].Seq
	})
	return merged, nil
}
