// Package kernels defines the paper's eight benchmarks (Table 1): their
// MiniCUDA sources, hardware profiles, calibrated input classes, and
// deterministic data generators for interpreter-level validation.
//
// Timing calibration: per-task base costs and task counts are chosen so the
// simulated solo runtimes reproduce Table 1's measured times on the K40,
// and so the offline amortizing-factor tuner lands near the paper's values
// (L=1 for the heavy-task kernels CFD/MD through L≈200 for VA).
package kernels

import (
	"fmt"
	"math/rand"
	"time"

	"flep/internal/cudalite"
	"flep/internal/gpu"
	"flep/internal/transform"
)

// InputClass selects one of the paper's three evaluation inputs.
type InputClass int

// Input classes (Table 1 columns).
const (
	Large InputClass = iota
	Small
	Trivial
)

// String names the input class.
func (c InputClass) String() string {
	switch c {
	case Large:
		return "large"
	case Small:
		return "small"
	case Trivial:
		return "trivial"
	default:
		return "?"
	}
}

// Classes lists all input classes in Table 1 order.
func Classes() []InputClass { return []InputClass{Large, Small, Trivial} }

// Input is one concrete workload: the task count (original grid size) and
// the calibrated per-task cost, plus the features the performance model
// sees (§4.2: grid size, CTA size, input size, shared memory size).
type Input struct {
	Class InputClass
	// Tasks is the original kernel's grid size (one task per CTA).
	Tasks int
	// TaskCost is the per-task duration at full occupancy. Small inputs
	// share the large input's cost; trivial inputs pay a latency-hiding
	// penalty (too few resident warps to cover memory latency).
	TaskCost time.Duration
	// Bytes is the input-size feature.
	Bytes int64
}

// Benchmark is one of the paper's eight applications.
type Benchmark struct {
	Name        string
	Suite       string
	Description string
	// Source is the MiniCUDA translation unit; KernelName its kernel.
	Source     string
	KernelName string
	// ThreadsPerCTA is the CTA size (256 for every benchmark; MM as 16x16).
	ThreadsPerCTA int
	// Block is the CTA shape for interpreter runs.
	Block cudalite.Dim3
	// MemoryIntensity and ContentionFloor parameterize the GPU model.
	MemoryIntensity float64
	ContentionFloor float64
	// Irregularity scales input-dependent duration noise: how much the
	// true runtime deviates from what the linear features predict
	// (drives Figure 7's per-benchmark error spread).
	Irregularity float64
	// BytesPerTask converts tasks to the input-size feature.
	BytesPerTask int64
	// PaperL is Table 1's amortizing factor, kept for comparison.
	PaperL int
	// PaperTime are Table 1's measured solo runtimes.
	PaperTime map[InputClass]time.Duration
	// inputs are the calibrated workload classes.
	inputs map[InputClass]Input
}

// Input returns the calibrated workload for the class.
func (b *Benchmark) Input(c InputClass) Input { return b.inputs[c] }

// Parse returns the benchmark's parsed MiniCUDA program.
func (b *Benchmark) Parse() (*cudalite.Program, error) {
	return cudalite.Parse(b.Source)
}

// Profile derives the benchmark's GPU execution profile: occupancy from the
// compilation engine's resource scan plus the calibrated intensity knobs.
func (b *Benchmark) Profile(limits transform.DeviceLimits) (*gpu.KernelProfile, error) {
	prog, err := b.Parse()
	if err != nil {
		return nil, fmt.Errorf("kernels: %s: %w", b.Name, err)
	}
	k := prog.Kernel(b.KernelName)
	if k == nil {
		return nil, fmt.Errorf("kernels: %s: kernel %q missing", b.Name, b.KernelName)
	}
	res, err := transform.EstimateResources(prog, k)
	if err != nil {
		return nil, err
	}
	occ, err := transform.ComputeOccupancy(limits, res, b.ThreadsPerCTA, 0)
	if err != nil {
		return nil, err
	}
	return &gpu.KernelProfile{
		Name:            b.Name,
		ThreadsPerCTA:   b.ThreadsPerCTA,
		CTAsPerSM:       occ.CTAsPerSM,
		MemoryIntensity: b.MemoryIntensity,
		ContentionFloor: b.ContentionFloor,
	}, nil
}

// NoiseAt returns the deterministic input-dependent duration multiplier for
// the benchmark at input seed: 1 + η with η ~ clipped Gaussian scaled by
// the benchmark's irregularity. Regular kernels (NN, MM, VA) have small η;
// SPMV's η is the largest, echoing Figure 7.
func (b *Benchmark) NoiseAt(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed*1_000_003 + int64(len(b.Name))*7919 + int64(b.Name[0])))
	eta := rng.NormFloat64() * b.Irregularity
	limit := 2.5 * b.Irregularity
	if eta > limit {
		eta = limit
	}
	if eta < -limit {
		eta = -limit
	}
	return 1 + eta
}

// ScaledInput synthesizes a workload between trivial and large scale for
// performance-model training (§4.2 uses 100 randomly generated inputs).
// scale in (0, 1]; the returned input's TaskCost carries the benchmark's
// deterministic irregularity noise for the given seed.
func (b *Benchmark) ScaledInput(scale float64, seed int64) Input {
	if scale <= 0 {
		scale = 1e-4
	}
	if scale > 1 {
		scale = 1
	}
	large := b.inputs[Large]
	tasks := int(float64(large.Tasks) * scale)
	if tasks < 1 {
		tasks = 1
	}
	cost := time.Duration(float64(large.TaskCost) * b.NoiseAt(seed))
	return Input{
		Class:    Large, // synthetic inputs have no class; Large placeholder
		Tasks:    tasks,
		TaskCost: cost,
		Bytes:    int64(tasks) * b.BytesPerTask,
	}
}

func us(v float64) time.Duration { return time.Duration(v * float64(time.Microsecond)) }

func mkInputs(b *Benchmark, largeCost, trivialCost time.Duration, largeTasks, smallTasks int) {
	b.inputs = map[InputClass]Input{
		Large:   {Class: Large, Tasks: largeTasks, TaskCost: largeCost, Bytes: int64(largeTasks) * b.BytesPerTask},
		Small:   {Class: Small, Tasks: smallTasks, TaskCost: largeCost, Bytes: int64(smallTasks) * b.BytesPerTask},
		Trivial: {Class: Trivial, Tasks: 40, TaskCost: trivialCost, Bytes: 40 * b.BytesPerTask},
	}
}

var all []*Benchmark

func init() {
	mk := func(b *Benchmark, largeCost, trivialCost time.Duration, largeTasks, smallTasks int, paperTimes [3]float64) {
		b.PaperTime = map[InputClass]time.Duration{
			Large:   us(paperTimes[0]),
			Small:   us(paperTimes[1]),
			Trivial: us(paperTimes[2]),
		}
		mkInputs(b, largeCost, trivialCost, largeTasks, smallTasks)
		all = append(all, b)
	}

	mk(&Benchmark{
		Name: "CFD", Suite: "Rodinia", Description: "finite volume solver",
		Source: SrcCFD, KernelName: "cfd", ThreadsPerCTA: 256, Block: cudalite.D1(256),
		MemoryIntensity: 0.60, ContentionFloor: 0.85, Irregularity: 0.100,
		BytesPerTask: 9216, PaperL: 1,
	}, us(120), us(83.2), 11100, 515, [3]float64{11106, 521, 81})

	mk(&Benchmark{
		Name: "NN", Suite: "Rodinia", Description: "nearest neighbor",
		Source: SrcNN, KernelName: "nn", ThreadsPerCTA: 256, Block: cudalite.D1(256),
		MemoryIntensity: 0.75, ContentionFloor: 0.55, Irregularity: 0.034,
		BytesPerTask: 3072, PaperL: 100,
	}, us(0.551), us(69.6), 3434265, 157241, [3]float64{15775, 728, 55})

	mk(&Benchmark{
		Name: "PF", Suite: "Rodinia", Description: "dynamic programming (pathfinder)",
		Source: SrcPF, KernelName: "pf", ThreadsPerCTA: 256, Block: cudalite.D1(256),
		MemoryIntensity: 0.55, ContentionFloor: 0.70, Irregularity: 0.090,
		BytesPerTask: 2048, PaperL: 150,
	}, us(0.451), us(63.5), 1957783, 214190, [3]float64{7364, 811, 57})

	mk(&Benchmark{
		Name: "PL", Suite: "Rodinia", Description: "Bayesian framework (particlefilter)",
		Source: SrcPL, KernelName: "pl", ThreadsPerCTA: 256, Block: cudalite.D1(256),
		MemoryIntensity: 0.50, ContentionFloor: 0.75, Irregularity: 0.100,
		BytesPerTask: 4096, PaperL: 100,
	}, us(0.551), us(92.1), 1178875, 206025, [3]float64{5419, 952, 83})

	mk(&Benchmark{
		Name: "MD", Suite: "SHOC", Description: "molecular dynamics",
		Source: SrcMD, KernelName: "md", ThreadsPerCTA: 256, Block: cudalite.D1(256),
		MemoryIntensity: 0.35, ContentionFloor: 0.90, Irregularity: 0.110,
		BytesPerTask: 16640, PaperL: 1,
	}, us(150), us(89.9), 12719, 746, [3]float64{15905, 938, 90})

	mk(&Benchmark{
		Name: "SPMV", Suite: "SHOC", Description: "sparse matrix vector multiply",
		Source: SrcSPMV, KernelName: "spmv", ThreadsPerCTA: 256, Block: cudalite.D1(256),
		MemoryIntensity: 0.90, ContentionFloor: 0.50, Irregularity: 0.1525,
		BytesPerTask: 8192, PaperL: 2,
	}, us(28), us(92.4), 25003, 2049, [3]float64{5840, 484, 68})

	mk(&Benchmark{
		Name: "MM", Suite: "CUDA SDK", Description: "dense matrix multiplication",
		Source: SrcMM, KernelName: "mm", ThreadsPerCTA: 256, Block: cudalite.D2(16, 16),
		MemoryIntensity: 0.30, ContentionFloor: 0.80, Irregularity: 0.036,
		BytesPerTask: 2048, PaperL: 2,
	}, us(28), us(77.1), 11027, 6399, [3]float64{2579, 1499, 73})

	mk(&Benchmark{
		Name: "VA", Suite: "CUDA SDK", Description: "vector addition",
		Source: SrcVA, KernelName: "va", ThreadsPerCTA: 256, Block: cudalite.D1(256),
		MemoryIntensity: 1.00, ContentionFloor: 0.45, Irregularity: 0.042,
		BytesPerTask: 3072, PaperL: 200,
	}, us(0.401), us(67.4), 9181514, 213673, [3]float64{30634, 720, 49})
}

// All returns the eight benchmarks in Table 1 order.
func All() []*Benchmark { return all }

// ByName returns the named benchmark or an error.
func ByName(name string) (*Benchmark, error) {
	for _, b := range all {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("kernels: unknown benchmark %q", name)
}

// Names returns the benchmark names in Table 1 order.
func Names() []string {
	out := make([]string, len(all))
	for i, b := range all {
		out[i] = b.Name
	}
	return out
}
