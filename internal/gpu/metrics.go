package gpu

import (
	"flep/internal/obs"
)

// DeviceMetrics instruments the device model: execution lifecycle counts
// and the live occupancy gauges (busy SMs, resident CTAs, reserved
// memory) that back the paper's utilization claims (§7, Figure 16's
// SM-partitioning sweep). All instruments are nil-safe, so an
// uninstrumented device (the zero value) costs nothing.
type DeviceMetrics struct {
	// Launches counts Start calls; Residencies counts CTA placements
	// becoming resident (launches plus post-expand relandings).
	Launches    *obs.Counter
	Residencies *obs.Counter
	// Completions counts executions finishing their last task.
	Completions *obs.Counter
	// PreemptRequests counts Preempt calls on running executions; Drains
	// counts completed drains (flag observed, SMs freed).
	PreemptRequests *obs.Counter
	Drains          *obs.Counter
	// CTAsPlaced accumulates CTAs made resident across all placements
	// (the paper's per-CTA dispatch accounting).
	CTAsPlaced *obs.Counter

	// BusySMs is the number of SMs with at least one resident CTA;
	// ResidentCTAs the device-wide resident CTA count; Executions the
	// number of registered executions (launching or running).
	BusySMs      *obs.Gauge
	ResidentCTAs *obs.Gauge
	Executions   *obs.Gauge
	// MemoryReserved is the reserved device memory in bytes.
	MemoryReserved *obs.Gauge
}

// NewDeviceMetrics registers the device metric families on reg.
func NewDeviceMetrics(reg *obs.Registry) *DeviceMetrics {
	return &DeviceMetrics{
		Launches:    reg.Counter("flep_device_launches_total", "Kernel executions started on the device"),
		Residencies: reg.Counter("flep_device_residencies_total", "CTA placements becoming resident"),
		Completions: reg.Counter("flep_device_completions_total", "Executions that finished their last task"),
		PreemptRequests: reg.Counter("flep_device_preempt_requests_total",
			"Preemption flags raised on running executions"),
		Drains:     reg.Counter("flep_device_drains_total", "Completed preemption drains"),
		CTAsPlaced: reg.Counter("flep_device_ctas_placed_total", "CTAs made resident across all placements"),
		BusySMs: reg.Gauge("flep_device_sm_busy",
			"SMs with at least one resident CTA"),
		ResidentCTAs: reg.Gauge("flep_device_resident_ctas", "Device-wide resident CTA count"),
		Executions:   reg.Gauge("flep_device_executions", "Registered executions (launching or running)"),
		MemoryReserved: reg.Gauge("flep_device_memory_reserved_bytes",
			"Device memory currently reserved by working sets"),
	}
}

// Instrument attaches a metrics set to the device. Pass the result of
// NewDeviceMetrics; a nil m detaches.
func (d *Device) Instrument(m *DeviceMetrics) {
	if m == nil {
		d.met = DeviceMetrics{}
		return
	}
	d.met = *m
	d.updateGauges()
}

// updateGauges refreshes the occupancy gauges from current device state.
// Called wherever placement, registration, or reservations change.
func (d *Device) updateGauges() {
	busy, ctas := 0, 0
	for _, e := range d.execs {
		if e.state != StateRunning {
			continue
		}
		for _, k := range e.ctas {
			if k > 0 {
				busy++
				ctas += k
			}
		}
	}
	d.met.BusySMs.Set(float64(busy))
	d.met.ResidentCTAs.Set(float64(ctas))
	d.met.Executions.Set(float64(len(d.execs)))
	d.met.MemoryReserved.Set(float64(d.reserved))
}
