package flepruntime

import (
	"testing"
	"time"

	"flep/internal/trace"
)

// linv builds a deadline-bearing ("latency-critical") invocation; the
// deadline is absolute virtual time, as the server's admit path sets it.
func linv(name string, tasks int, cost, deadline time.Duration) *Invocation {
	v := inv(name, 1, tasks, cost, 2)
	v.Deadline = deadline
	return v
}

func TestEDFQueueOrder(t *testing.T) {
	// Pure queue-discipline test: no runtime bound, so rearm is a no-op.
	e := NewEDF()
	be1 := inv("be1", 1, 1200, us(100), 2)
	be2 := inv("be2", 3, 1200, us(100), 2)
	be3 := inv("be3", 3, 1200, us(100), 2)
	lc1 := linv("lc1", 1200, us(100), us(9000))
	lc2 := linv("lc2", 1200, us(100), us(3000))
	lc3 := linv("lc3", 1200, us(100), us(9000)) // ties with lc1 → FIFO
	for _, v := range []*Invocation{be1, lc1, be2, lc2, lc3, be3} {
		e.Enqueue(v)
	}
	want := []string{"lc2", "lc1", "lc3", "be2", "be3", "be1"}
	got := e.Queued()
	if len(got) != len(want) {
		t.Fatalf("queued %d, want %d", len(got), len(want))
	}
	for i, name := range want {
		if got[i].Kernel != name {
			names := make([]string, len(got))
			for j, q := range got {
				names[j] = q.Kernel
			}
			t.Fatalf("order = %v, want %v", names, want)
		}
	}
	e.Dequeue(lc2)
	if e.Peek() != lc1 {
		t.Fatalf("after dequeue head = %v", e.Peek().Kernel)
	}
}

func TestEDFFinishesInDeadlineOrder(t *testing.T) {
	// Three LC kernels queued in reverse-deadline order behind a runner:
	// completions must follow deadlines, not submission order.
	eng, rt := newRT(NewEDF(), false)
	first := inv("first", 1, 6000, us(100), 2) // 5ms, keeps the GPU busy
	rt.Submit(first)
	var order []string
	eng.Schedule(us(500), func() {
		deadlines := map[string]time.Duration{
			"late": us(40000), "mid": us(30000), "early": us(20000),
		}
		for _, name := range []string{"late", "mid", "early"} {
			v := linv(name, 1200, us(100), eng.Now()+deadlines[name])
			v.OnFinish = func(x *Invocation) { order = append(order, x.Kernel) }
			rt.Submit(v)
		}
	})
	eng.Run()
	want := []string{"early", "mid", "late"}
	if len(order) != 3 {
		t.Fatalf("finished %d kernels", len(order))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("finish order = %v, want %v", order, want)
		}
	}
}

func TestEDFTightDeadlinePreemptsBestEffort(t *testing.T) {
	eng, rt := newRT(NewEDF(), false)
	log := &trace.Log{}
	rt.cfg.Log = log
	be := inv("be", 1, 120000, us(100), 2) // 100ms best-effort
	rt.Submit(be)
	var lc *Invocation
	eng.Schedule(us(500), func() {
		// 1ms of work, 5ms of budget: waiting for the 100ms runner would
		// miss; draining it meets comfortably.
		lc = linv("lc", 1200, us(100), eng.Now()+us(5000))
		rt.Submit(lc)
	})
	eng.Run()
	if len(log.Filter("preempt")) == 0 {
		t.Fatal("EDF should have preempted the best-effort runner")
	}
	if lc.FinishedAt() == 0 || lc.FinishedAt() > lc.Deadline {
		t.Fatalf("lc finished %v, deadline %v: missed despite preemption",
			lc.FinishedAt(), lc.Deadline)
	}
	if be.State() != InvFinished {
		t.Fatal("preempted best-effort work never finished")
	}
}

func TestEDFAmpleSlackDoesNotPreempt(t *testing.T) {
	// The runner finishes soon enough that waiting still meets: lazy EDF
	// must not pay a drain it doesn't need.
	eng, rt := newRT(NewEDF(), false)
	log := &trace.Log{}
	rt.cfg.Log = log
	be := inv("be", 1, 2400, us(100), 2) // 2ms
	rt.Submit(be)
	var lc *Invocation
	eng.Schedule(us(500), func() {
		lc = linv("lc", 1200, us(100), eng.Now()+us(10000))
		rt.Submit(lc)
	})
	eng.Run()
	if n := len(log.Filter("preempt")); n != 0 {
		t.Fatalf("preempted %d times with ample slack", n)
	}
	if lc.FinishedAt() > lc.Deadline {
		t.Fatalf("lc finished %v after deadline %v without contention",
			lc.FinishedAt(), lc.Deadline)
	}
}

func TestEDFHopelessDeadlineDoesNotPreempt(t *testing.T) {
	// The deadline is unmeetable even on an idle GPU (budget < Te): the
	// cost-aware rule must not burn a drain on a lost cause.
	eng, rt := newRT(NewEDF(), false)
	log := &trace.Log{}
	rt.cfg.Log = log
	be := inv("be", 1, 120000, us(100), 2)
	rt.Submit(be)
	var lc *Invocation
	eng.Schedule(us(500), func() {
		lc = linv("lc", 1200, us(100), eng.Now()+us(800)) // needs ~1ms
		rt.Submit(lc)
	})
	eng.Run()
	if n := len(log.Filter("preempt")); n != 0 {
		t.Fatalf("preempted %d times for an unmeetable deadline", n)
	}
	if lc.State() != InvFinished {
		t.Fatal("hopeless invocation must still run to completion")
	}
	if lc.FinishedAt() <= lc.Deadline {
		t.Fatal("test premise broken: deadline was meetable")
	}
}

func TestEDFNeverPreemptsEarlierDeadline(t *testing.T) {
	// The runner's own deadline is earlier: EDF order says it keeps the
	// GPU even though the arrival's deadline is at risk.
	eng, rt := newRT(NewEDF(), false)
	log := &trace.Log{}
	rt.cfg.Log = log
	a := linv("a", 6000, us(100), us(10000)) // 5ms of work, deadline 10ms
	rt.Submit(a)
	var order []string
	a.OnFinish = func(*Invocation) { order = append(order, "a") }
	eng.Schedule(us(1000), func() {
		b := linv("b", 9600, us(100), eng.Now()+us(10000)) // 8ms work, misses by waiting
		b.OnFinish = func(*Invocation) { order = append(order, "b") }
		rt.Submit(b)
	})
	eng.Run()
	if n := len(log.Filter("preempt")); n != 0 {
		t.Fatalf("preempted the earlier deadline %d times", n)
	}
	if len(order) != 2 || order[0] != "a" {
		t.Fatalf("finish order = %v, want a first", order)
	}
	if a.FinishedAt() > a.Deadline {
		t.Fatalf("a finished %v after its %v deadline", a.FinishedAt(), a.Deadline)
	}
}

func TestEDFBestEffortNeverPreempts(t *testing.T) {
	// Under HPF's SRT rule a short arrival would preempt the long runner;
	// EDF gives deadline-free work no preemption rights at all.
	eng, rt := newRT(NewEDF(), false)
	log := &trace.Log{}
	rt.cfg.Log = log
	long := inv("long", 1, 120000, us(100), 2)
	short := inv("short", 2, 1200, us(100), 2) // higher priority, still BE
	var order []string
	long.OnFinish = func(*Invocation) { order = append(order, "long") }
	short.OnFinish = func(*Invocation) { order = append(order, "short") }
	rt.Submit(long)
	eng.Schedule(us(1000), func() { rt.Submit(short) })
	eng.Run()
	if n := len(log.Filter("preempt")); n != 0 {
		t.Fatalf("best-effort work preempted %d times", n)
	}
	if len(order) != 2 || order[0] != "long" {
		t.Fatalf("finish order = %v, want long first", order)
	}
}

func TestEDFRiskTimerFiresOnStalePrediction(t *testing.T) {
	// Underestimate the runner's Te so "waiting meets" is decided on a
	// prediction that goes stale: the risk timer must fire (edf-risk in
	// the log) and the run must still complete every invocation. This
	// also exercises timer re-arm/invalidation across dispatches.
	eng, rt := newRT(NewEDF(), false)
	log := &trace.Log{}
	rt.cfg.Log = log
	be := inv("be", 1, 12000, us(100), 2) // truly 10ms...
	be.Te = us(2000)                      // ...predicted as 2ms
	rt.Submit(be)
	var lc *Invocation
	eng.Schedule(us(500), func() {
		lc = linv("lc", 1200, us(100), eng.Now()+us(3500))
		rt.Submit(lc)
	})
	eng.Run()
	if len(log.Filter("edf-risk")) == 0 {
		t.Fatal("risk timer never fired despite the stale prediction")
	}
	if be.State() != InvFinished || lc.State() != InvFinished {
		t.Fatalf("states be=%v lc=%v, want both finished", be.State(), lc.State())
	}
	e := rt.cfg.Policy.(*EDF)
	if e.Pending() != 0 {
		t.Fatalf("queue not drained: %d pending", e.Pending())
	}
}
