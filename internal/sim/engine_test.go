package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestZeroValueReady(t *testing.T) {
	var e Engine
	fired := false
	e.Schedule(5, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("event did not fire")
	}
	if e.Now() != 5 {
		t.Fatalf("Now = %v, want 5", e.Now())
	}
}

func TestOrderingByTime(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestFIFOAtSameTime(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(7, func() { order = append(order, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-time events not FIFO: %v", order)
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(5, func() { fired = true })
	ev.Cancel()
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	e := New()
	ev := e.Schedule(1, func() {})
	ev.Cancel()
	ev.Cancel() // must not panic
	e.Run()
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	var times []time.Duration
	e.Schedule(10, func() {
		times = append(times, e.Now())
		e.Schedule(5, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("times = %v, want [10 15]", times)
	}
}

func TestScheduleZeroDelayFiresAtNow(t *testing.T) {
	e := New()
	e.Schedule(10, func() {
		e.Schedule(0, func() {
			if e.Now() != 10 {
				t.Errorf("zero-delay event at %v, want 10", e.Now())
			}
		})
	})
	e.Run()
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := New()
	var fired []time.Duration
	for _, d := range []time.Duration{5, 10, 15, 20} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want events at 5 and 10", fired)
	}
	if e.Now() != 12 {
		t.Fatalf("Now = %v, want 12", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("remaining events lost: %v", fired)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := New()
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want 100", e.Now())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative delay")
		}
	}()
	New().Schedule(-1, func() {})
}

func TestAtPastPanics(t *testing.T) {
	e := New()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic scheduling into the past")
		}
	}()
	e.At(5, func() {})
}

func TestNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on nil func")
		}
	}()
	New().Schedule(1, nil)
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
	ev := e.Schedule(1, func() {})
	ev.Cancel()
	if e.Step() {
		t.Fatal("Step with only canceled events returned true")
	}
}

func TestPending(t *testing.T) {
	e := New()
	e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
}

func TestPendingIgnoresCanceledEvents(t *testing.T) {
	e := New()
	a := e.Schedule(1, func() {})
	b := e.Schedule(2, func() {})
	c := e.Schedule(3, func() {})
	a.Cancel()
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending = %d after one cancel, want 2", got)
	}
	c.Cancel()
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending = %d after two cancels, want 1", got)
	}
	// A daemon that cancels every timer it armed must read as idle.
	b.Cancel()
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending = %d with all events canceled, want 0", got)
	}
	if e.Step() {
		t.Fatal("Step fired a canceled event")
	}
}

// Property: events always fire in nondecreasing time order, and every
// non-canceled event fires exactly once.
func TestPropertyOrderAndExactlyOnce(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		count := int(n)%64 + 1
		fires := make([]int, count)
		var last time.Duration = -1
		ok := true
		canceled := make([]bool, count)
		events := make([]*Event, count)
		for i := 0; i < count; i++ {
			i := i
			d := time.Duration(rng.Intn(1000))
			events[i] = e.Schedule(d, func() {
				fires[i]++
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		for i := range events {
			if rng.Intn(3) == 0 {
				events[i].Cancel()
				canceled[i] = true
			}
		}
		e.Run()
		for i, c := range fires {
			want := 1
			if canceled[i] {
				want = 0
			}
			if c != want {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
