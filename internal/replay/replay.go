package replay

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"flep/internal/core"
	"flep/internal/flepruntime"
	"flep/internal/gpu"
	"flep/internal/kernels"
	"flep/internal/obs"
	"flep/internal/perfmodel"
	"flep/internal/sim"
)

// Replay modes.
const (
	// ModeExact re-steps each shard's engine to every record's captured
	// step index before submitting, reproducing the live run's arrival
	// interleaving precisely. Available only when the trace came from
	// flepd and the replay configuration matches the recording one.
	ModeExact = "exact"
	// ModeTimed schedules each record at its captured arrival offset in
	// virtual time. Deterministic given the trace and seed, and the only
	// option once the configuration deviates from the recorded one.
	ModeTimed = "timed"
)

// ReplayerOptions tune the offline phase a Replayer performs once and
// shares across all of its runs.
type ReplayerOptions struct {
	// Params overrides the device model (zero value = the paper's K40).
	Params gpu.Params
	// Models warm-starts the duration predictors: artifacts for these
	// kernels use the supplied (e.g. live-exported) ridge state instead
	// of the freshly trained one. See SaveModels/LoadModels.
	Models map[string]*perfmodel.Model
	// Logf, when set, receives offline-phase progress lines.
	Logf func(format string, args ...any)
}

// Replayer owns a loaded trace plus the offline artifacts needed to
// re-drive it. Building one is expensive (the full offline phase runs
// per benchmark); each Run then clones the system and is cheap, so a
// what-if matrix amortizes the offline cost across all its cells.
type Replayer struct {
	trace   *Trace
	opts    ReplayerOptions
	sys     *core.System
	benches map[string]*kernels.Benchmark
	solo    map[soloKey]time.Duration
}

type soloKey struct {
	bench string
	class kernels.InputClass
}

// NewReplayer builds the offline artifacts for every benchmark the trace
// references and precomputes the solo baselines (ANTT denominators).
func NewReplayer(t *Trace, opts ReplayerOptions) (*Replayer, error) {
	if len(t.Records) == 0 {
		return nil, fmt.Errorf("replay: trace has no records")
	}
	if opts.Params.Limits.NumSMs == 0 {
		opts.Params = gpu.DefaultParams()
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	rp := &Replayer{
		trace:   t,
		opts:    opts,
		sys:     core.NewSystem(opts.Params),
		benches: map[string]*kernels.Benchmark{},
		solo:    map[soloKey]time.Duration{},
	}
	for _, name := range t.Benchmarks() {
		b, err := kernels.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("replay: trace references %s: %w", name, err)
		}
		start := time.Now() //flepvet:allow wallclock -- measures real offline-phase duration for progress logs only; never enters the Summary
		if err := rp.sys.Offline([]*kernels.Benchmark{b}); err != nil {
			return nil, fmt.Errorf("replay: offline %s: %w", name, err)
		}
		if m := opts.Models[name]; m != nil {
			rp.sys.Artifacts(name).Model = m
			opts.Logf("offline %-5s (%v) [warm predictor]", name, time.Since(start).Round(time.Millisecond)) //flepvet:allow wallclock -- progress log timing only; never enters the Summary
		} else {
			opts.Logf("offline %-5s (%v)", name, time.Since(start).Round(time.Millisecond)) //flepvet:allow wallclock -- progress log timing only; never enters the Summary
		}
		rp.benches[name] = b
	}
	for name, b := range rp.benches {
		for _, c := range kernels.Classes() {
			d, err := rp.sys.SoloTime(b, c)
			if err != nil {
				return nil, fmt.Errorf("replay: solo %s/%s: %w", name, c, err)
			}
			rp.solo[soloKey{name, c}] = d
		}
	}
	return rp, nil
}

// Trace returns the loaded trace.
func (rp *Replayer) Trace() *Trace { return rp.trace }

// System exposes the replayer's offline artifacts (for model export).
func (rp *Replayer) System() *core.System { return rp.sys }

// ReplayConfig parameterizes one replay run. The zero value replays "as
// recorded": the header's policy and device count, recorded placement,
// and step-exact timing when the trace supports it.
type ReplayConfig struct {
	// Policy overrides the scheduling policy: hpf, hpf-naive, ffs, fifo
	// (the non-preemptive baseline), or edf (deadline-first). Empty = the
	// trace header's policy (hpf if the header has none).
	Policy string
	// Spatial / SpatialSMs / MaxOverhead / Weights override the
	// corresponding recorded scheduler knobs. SpatialSMs is the paper's
	// spa_P. Nil/zero values inherit from the header.
	Spatial     *bool
	SpatialSMs  int
	MaxOverhead float64
	Weights     map[int]float64
	// Devices overrides the device count (0 = as recorded).
	Devices int
	// L, when positive, overrides every kernel's tuned amortizing factor.
	L int
	// Seed drives the placement router's tie-break rotation. Replaying
	// the same trace with the same seed is fully deterministic.
	Seed int64
	// Registry, when set, receives replay divergence counters.
	Registry *obs.Registry
}

// effective resolves a run configuration against the trace header.
func (rp *Replayer) effective(cfg ReplayConfig) ReplayConfig {
	h := rp.trace.Header
	if cfg.Policy == "" {
		cfg.Policy = h.Policy
	}
	if cfg.Policy == "" {
		cfg.Policy = "hpf"
	}
	if cfg.Spatial == nil {
		s := h.Spatial
		cfg.Spatial = &s
	}
	if cfg.SpatialSMs == 0 {
		cfg.SpatialSMs = h.SpatialSMs
	}
	if cfg.MaxOverhead == 0 {
		cfg.MaxOverhead = h.MaxOverhead
	}
	if cfg.MaxOverhead == 0 {
		cfg.MaxOverhead = 0.10
	}
	if cfg.Weights == nil && len(h.Weights) > 0 {
		cfg.Weights = map[int]float64{}
		for k, v := range h.Weights {
			if p, err := strconv.Atoi(k); err == nil {
				cfg.Weights[p] = v
			}
		}
	}
	if cfg.Devices <= 0 {
		cfg.Devices = h.Devices
	}
	if cfg.Devices <= 0 {
		cfg.Devices = 1
	}
	return cfg
}

// matchesRecorded reports whether the effective config reproduces the
// recording one, which is what step-exact replay requires.
func (rp *Replayer) matchesRecorded(cfg ReplayConfig) bool {
	h := rp.trace.Header
	policy := h.Policy
	if policy == "" {
		policy = "hpf"
	}
	return cfg.Policy == policy &&
		*cfg.Spatial == h.Spatial &&
		cfg.SpatialSMs == h.SpatialSMs &&
		cfg.L == 0 &&
		cfg.Devices >= rp.maxRecordedDevice()+1 &&
		(h.Devices == 0 || cfg.Devices == h.Devices)
}

func (rp *Replayer) maxRecordedDevice() int {
	max := 0
	for _, r := range rp.trace.Records {
		if r.Device > max {
			max = r.Device
		}
	}
	return max
}

// newPolicy constructs a scheduling policy by name.
func newPolicy(cfg ReplayConfig) (flepruntime.Policy, *flepruntime.FFS, error) {
	switch cfg.Policy {
	case "hpf":
		return flepruntime.NewHPF(), nil, nil
	case "hpf-naive":
		h := flepruntime.NewHPF()
		h.OverheadAware = false
		return h, nil, nil
	case "ffs":
		f := flepruntime.NewFFS(cfg.MaxOverhead)
		f.Weights = map[int]float64{}
		for p, w := range cfg.Weights {
			f.Weights[p] = w
		}
		return f, f, nil
	case "fifo":
		return flepruntime.NewFIFO(), nil, nil
	case "edf":
		return flepruntime.NewEDF(), nil, nil
	}
	return nil, nil, fmt.Errorf("replay: unknown policy %q (want hpf, hpf-naive, ffs, fifo, or edf)", cfg.Policy)
}

// devRun is one replayed device shard: engine, device, runtime, and the
// step/bookkeeping counters the drivers need.
type devRun struct {
	eng       *sim.Engine
	dev       *gpu.Device
	rt        *flepruntime.Runtime
	ffs       *flepruntime.FFS
	stepped   int64
	inFlight  int
	drains    []time.Duration
	completed int
}

// outcome is one finished replayed launch joined with its trace record.
type outcome struct {
	rec         Record
	device      int
	te          time.Duration
	turnaround  time.Duration
	waiting     time.Duration
	finishedAt  time.Duration
	preemptions int
	// deadline is the absolute virtual-time deadline (submission time plus
	// the record's budget); zero for best-effort records.
	deadline time.Duration
}

// parseClass maps a record's class name (replay mirrors the server's
// parsing: empty means small).
func parseClass(name string) (kernels.InputClass, error) {
	switch name {
	case "", "small":
		return kernels.Small, nil
	case "large":
		return kernels.Large, nil
	case "trivial":
		return kernels.Trivial, nil
	}
	return 0, fmt.Errorf("replay: unknown input class %q", name)
}

// Run replays the trace under the configuration and summarizes the
// result. It is single-threaded and fully deterministic: the same trace,
// configuration, and seed always produce a byte-identical summary.
func (rp *Replayer) Run(cfg ReplayConfig) (*Summary, error) {
	eff := rp.effective(cfg)
	policyName := eff.Policy

	mode := ModeTimed
	if rp.trace.Exact() && rp.matchesRecorded(eff) {
		mode = ModeExact
	}

	devs := make([]*devRun, eff.Devices)
	var divTe, divStep, divPlacement, divDependency, submitErrors int64
	var outcomes []*outcome
	// Model-graph bookkeeping: which recorded stages have finished in the
	// replay and which shard each landed on, so timed mode can hold a
	// dependent stage until its prerequisites complete (the live daemon's
	// pending-dependency table, replayed).
	stageDone := map[stageKey]bool{}
	stageDev := map[stageKey]int{}
	for i := range devs {
		policy, ffs, err := newPolicy(eff)
		if err != nil {
			return nil, err
		}
		d := &devRun{eng: sim.New(), ffs: ffs}
		d.dev = gpu.New(d.eng, rp.opts.Params)
		sys := rp.sys.Clone()
		d.rt = flepruntime.New(d.dev, flepruntime.Config{
			Policy:        policy,
			EnableSpatial: *eff.Spatial,
			SpatialSMs:    eff.SpatialSMs,
			OverheadEstimate: func(kernel string) time.Duration {
				if a := sys.Artifacts(kernel); a != nil {
					return a.PreemptOverhead
				}
				return 0
			},
			OnPreemptDrained: func(_ *flepruntime.Invocation, latency time.Duration) {
				d.drains = append(d.drains, latency)
			},
		})
		devs[i] = d
	}

	// submit mirrors the daemon's admission path for one record on one
	// replayed device.
	submit := func(d *devRun, devIdx int, rec Record) error {
		b := rp.benches[rec.Bench]
		if b == nil {
			return fmt.Errorf("replay: record %d references unknown benchmark %q", rec.Seq, rec.Bench)
		}
		class, err := parseClass(rec.Class)
		if err != nil {
			return fmt.Errorf("replay: record %d: %w", rec.Seq, err)
		}
		a := rp.sys.Artifacts(rec.Bench)
		in := b.Input(class)
		if rec.TasksOverride > 0 {
			in.Tasks = rec.TasksOverride
			in.Bytes = int64(in.Tasks) * b.BytesPerTask
		}
		te, _ := rp.sys.Predict(b, in)
		if rec.Te > 0 && int64(te) != rec.Te {
			divTe++
		}
		if d.ffs != nil && rec.Weight > 0 {
			d.ffs.SetKernelWeight(rec.Bench, rec.Weight)
		}
		L := a.L
		if eff.L > 0 {
			L = eff.L
		}
		o := &outcome{rec: rec, device: devIdx, te: te}
		// Re-apply the recorded SLO budget relative to the replayed
		// submission instant, mirroring the daemon's admit path: the
		// deadline is a virtual-time budget from admission, not an
		// absolute timestamp, so it survives timing divergence.
		var deadline time.Duration
		if rec.DeadlineNS > 0 {
			deadline = d.eng.Now() + time.Duration(rec.DeadlineNS)
			o.deadline = deadline
		}
		v := &flepruntime.Invocation{
			Kernel:     rec.Bench,
			Deadline:   deadline,
			Priority:   rec.Priority,
			Profile:    a.Profile,
			Tasks:      in.Tasks,
			TaskCost:   in.TaskCost,
			L:          L,
			WorkingSet: in.Bytes / 8,
			Te:         te,
			Dependent:  rec.GraphID != "",
			OnFinish: func(fv *flepruntime.Invocation) {
				o.turnaround = fv.Turnaround()
				o.waiting = fv.Tw
				o.finishedAt = fv.FinishedAt()
				o.preemptions = fv.Preemptions
				d.inFlight--
				d.completed++
				if rec.GraphID != "" && rec.Stage != "" {
					stageDone[stageKey{rec.Client, rec.GraphID, rec.Stage}] = true
				}
				outcomes = append(outcomes, o)
			},
		}
		if err := d.rt.Submit(v); err != nil {
			// The live daemon records only successful admissions, so a
			// replay rejection is itself a divergence worth counting.
			submitErrors++
			return nil
		}
		d.inFlight++
		if rec.GraphID != "" && rec.Stage != "" {
			stageDev[stageKey{rec.Client, rec.GraphID, rec.Stage}] = devIdx
		}
		return nil
	}

	// awaitPrereqs holds a dependent record until its prerequisites have
	// finished, stepping each prerequisite's shard forward (timed mode
	// only; exact mode's step indices already encode the live ordering). A
	// prerequisite that never completes — not in the trace, or stuck — is
	// a dependency divergence: the live daemon only admitted this stage
	// because its prerequisites completed there.
	awaitPrereqs := func(rec Record) {
		for _, pre := range rec.After {
			k := stageKey{rec.Client, rec.GraphID, pre}
			if stageDone[k] {
				continue
			}
			di, ok := stageDev[k]
			if !ok {
				divDependency++
				continue
			}
			for !stageDone[k] && devs[di].eng.Step() {
			}
			if !stageDone[k] {
				divDependency++
			}
		}
	}

	switch mode {
	case ModeExact:
		// Replay each shard independently: records in admission order,
		// engine stepped to each record's captured step index first —
		// exactly the interleaving the live loop produced.
		perDev := make([][]Record, eff.Devices)
		for _, rec := range rp.trace.Records {
			dv := rec.Device
			if dv < 0 || dv >= eff.Devices {
				dv = 0
			}
			perDev[dv] = append(perDev[dv], rec)
		}
		for i, recs := range perDev {
			d := devs[i]
			sort.SliceStable(recs, func(a, b int) bool { return recs[a].Seq < recs[b].Seq })
			for _, rec := range recs {
				for d.stepped < rec.Step {
					if !d.eng.Step() {
						divStep++
						break
					}
					d.stepped++
				}
				if err := submit(d, i, rec); err != nil {
					return nil, err
				}
			}
		}
	case ModeTimed:
		// One global timeline: records sorted by arrival offset, each
		// submitted at its offset, placed on the recorded device when it
		// exists or routed least-loaded with a seeded rotating tie-break.
		recs := append([]Record(nil), rp.trace.Records...)
		sort.SliceStable(recs, func(a, b int) bool {
			if recs[a].At != recs[b].At {
				return recs[a].At < recs[b].At
			}
			return recs[a].Seq < recs[b].Seq
		})
		route := eff.Devices > 1 && (eff.Devices != rp.trace.Header.Devices || rp.maxRecordedDevice() >= eff.Devices)
		rng := rand.New(rand.NewSource(eff.Seed))
		for _, rec := range recs {
			at := time.Duration(rec.At)
			var target int
			if !route && rec.Device >= 0 && rec.Device < eff.Devices {
				target = rec.Device
				devs[target].eng.RunUntil(at)
			} else {
				// Advance every shard to the arrival so the router scores
				// fresh state, then pick the least loaded, ties broken from
				// a seeded rotating start.
				for _, d := range devs {
					d.eng.RunUntil(at)
				}
				start := rng.Intn(eff.Devices)
				best, bestLoad := -1, int(^uint(0)>>1)
				for k := 0; k < eff.Devices; k++ {
					i := (start + k) % eff.Devices
					if devs[i].inFlight < bestLoad {
						best, bestLoad = i, devs[i].inFlight
					}
				}
				target = best
				if rec.Device >= 0 && rec.Device != target {
					divPlacement++
				}
			}
			if rec.GraphID != "" && len(rec.After) > 0 {
				awaitPrereqs(rec)
			}
			if err := submit(devs[target], target, rec); err != nil {
				return nil, err
			}
		}
	}

	// Drain: run every shard to completion.
	for _, d := range devs {
		d.eng.Run()
	}

	sum := rp.summarize(eff, policyName, mode, devs, outcomes, divTe, divStep, divPlacement, divDependency, submitErrors)
	if eff.Registry != nil {
		reg := eff.Registry
		reg.Counter("flep_replay_records_total", "Trace records replayed").Add(int64(len(rp.trace.Records)))
		reg.Counter("flep_replay_completed_total", "Replayed launches that completed").Add(int64(sum.Completed))
		div := func(kind string) *obs.Counter {
			return reg.Counter("flep_replay_divergence_total",
				"Replay divergences from the recorded run", "kind", kind) //flepvet:allow metriclabel -- kind is one of five compile-time literals below; cardinality is fixed
		}
		div("te_prediction").Add(divTe)
		div("step_shortfall").Add(divStep)
		div("placement").Add(divPlacement)
		div("dependency").Add(divDependency)
		div("submit_error").Add(submitErrors)
	}
	return sum, nil
}

// stageKey identifies one graph stage across the replay: the recording
// daemon keys its dependency table by (client, graph), so the replayed
// identity must too.
type stageKey struct{ client, graph, stage string }
