#!/usr/bin/env bash
# Record → replay smoke: a live flepd records its admission stream while
# flepload drives it; flepreplay then re-drives the trace and the
# completed-launch counts must match the live run exactly. The daemon
# and load generator are built with -race so the smoke also gates on the
# recorder's concurrency.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${ADDR:-127.0.0.1:7459}"
WORK="$(mktemp -d)"
trap 'kill "$FLEPD_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -race -o "$WORK/flepd" ./cmd/flepd
go build -race -o "$WORK/flepload" ./cmd/flepload
go build -o "$WORK/flepreplay" ./cmd/flepreplay

"$WORK/flepd" -addr "$ADDR" -bench VA,MM -record "$WORK/run.trace" \
    -record-rotate 16384 >"$WORK/flepd.log" 2>&1 &
FLEPD_PID=$!

for _ in $(seq 150); do
    curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done
curl -sf "http://$ADDR/healthz" >/dev/null

"$WORK/flepload" -addr "http://$ADDR" -clients 8 -n 4 -bench VA,MM \
    -class small -seed 11 -record "$WORK/client.trace" | tee "$WORK/flepload.out"
LIVE_OK=$(sed -n 's/^requests:[[:space:]]*ok=\([0-9]*\).*/\1/p' "$WORK/flepload.out")

# SIGTERM → graceful drain; the recorder flushes before the loop exits.
kill -TERM "$FLEPD_PID"
wait "$FLEPD_PID"

"$WORK/flepreplay" replay -trace "$WORK/run.trace" -q -json >"$WORK/replay.json"
python3 - "$WORK/replay.json" "$LIVE_OK" <<'EOF'
import json, sys
sum_ = json.load(open(sys.argv[1]))
live = int(sys.argv[2])
problems = []
if sum_["completed"] != live:
    problems.append(f'replay completed {sum_["completed"]} != live {live}')
if sum_["records"] != live:
    problems.append(f'trace recorded {sum_["records"]} != live {live}')
if sum_["mode"] != "exact":
    problems.append(f'replay mode {sum_["mode"]} != exact')
div = sum_["divergence"]
if any(div.values()):
    problems.append(f"replay diverged: {div}")
if problems:
    sys.exit("replay smoke FAILED:\n  " + "\n  ".join(problems))
print(f"replay smoke OK: {live} launches recorded, replayed exactly (mode={sum_['mode']})")
EOF

# The client-side trace (wall-clock offsets) replays in timed mode and
# must still complete every recorded launch.
"$WORK/flepreplay" replay -trace "$WORK/client.trace" -q -json >"$WORK/client-replay.json"
python3 - "$WORK/client-replay.json" "$LIVE_OK" <<'EOF'
import json, sys
sum_ = json.load(open(sys.argv[1]))
live = int(sys.argv[2])
if sum_["mode"] != "timed" or sum_["records"] != live or sum_["completed"] != live:
    sys.exit(f'client-trace smoke FAILED: mode={sum_["mode"]} records={sum_["records"]} completed={sum_["completed"]} live={live}')
print(f"client-trace smoke OK: {live} launches replayed in timed mode")
EOF

# SLO what-if: a synthesized deadline mix whose priority order
# deliberately disagrees with deadline order (the latency tenant is
# LOW priority). The advisor must fold edf into the default policy set
# and EDF must attain strictly more deadlines than HPF.
"$WORK/flepreplay" record -o "$WORK/slo.trace" -seed 11 \
    -mix "lc:VA:small:1::2ms:40:10ms,batch:CFD:large:2::8ms:10"
"$WORK/flepreplay" whatif -trace "$WORK/slo.trace" -q -json >"$WORK/slo-whatif.json"
python3 - "$WORK/slo-whatif.json" <<'EOF'
import json, sys
cmp_ = json.load(open(sys.argv[1]))
by_policy = {c["policy"]: c["summary"] for c in cmp_["cells"]}
problems = []
if "edf" not in by_policy:
    problems.append(f"default matrix on a deadline trace omits edf: {cmp_['ranking']}")
else:
    edf, hpf = by_policy["edf"], by_policy["hpf"]
    if edf.get("slo_tracked", 0) != 40 or hpf.get("slo_tracked", 0) != 40:
        problems.append(f"slo_tracked edf={edf.get('slo_tracked')} hpf={hpf.get('slo_tracked')}, want 40")
    if edf.get("slo_attain_rate", 0) <= hpf.get("slo_attain_rate", 0):
        problems.append(f"EDF attain rate {edf.get('slo_attain_rate', 0):.3f} "
                        f"not above HPF {hpf.get('slo_attain_rate', 0):.3f}")
    if not any(f.startswith("EDF attains") for f in cmp_["findings"]):
        problems.append(f"findings lack the EDF-vs-HPF attainment gap: {cmp_['findings']}")
if problems:
    sys.exit("SLO what-if smoke FAILED:\n  " + "\n  ".join(problems))
print(f"SLO what-if smoke OK: EDF attains {by_policy['edf']['slo_attain_rate']:.1%} "
      f"vs HPF {by_policy['hpf'].get('slo_attain_rate', 0):.1%} on the deadline mix")
EOF
