package server

import (
	"sync"
	"time"

	"flep/internal/flepruntime"
	"flep/internal/kernels"
	"flep/internal/replay"
)

// launchReq is one admitted (or to-be-admitted) kernel-launch request on
// its way through the daemon. The HTTP handler owns it until the enqueue
// succeeds; the event loop owns it afterwards. done is buffered so the
// loop's terminal send never blocks, even if the handler timed out and
// went away — the invocation is accounted for regardless.
type launchReq struct {
	client        string
	bench         *kernels.Benchmark
	class         kernels.InputClass
	priority      int
	weight        float64
	tasksOverride int
	// deadline is the SLO budget in virtual time from admission (zero =
	// best-effort). The loop converts it to an absolute virtual deadline
	// when it stamps the invocation onto the clock.
	deadline time.Duration

	// Graph coordinates (empty for plain launches): graph is the
	// client-chosen instance id, stage this launch's name within it,
	// after its prerequisite stage names, stages the declared total, and
	// model the workload name the graph aggregates under (see deps.go).
	graph  string
	stage  string
	model  string
	after  []string
	stages int

	enqueuedReal time.Time // handler enqueue time
	admitReal    time.Time // loop admission time (queue-wait metric)

	done chan LaunchResult
}

// launchReqPool recycles launchReq shells (and their buffered done
// channels) across requests, so the steady-state admission path performs
// zero allocations per launch. Ownership protocol: the handler owns the
// request until tryEnqueue succeeds; afterwards only the goroutine that
// proved the loop is finished with it — by receiving the terminal result
// from done, or by having had tryEnqueue fail — may return it with
// putLaunchReq. A handler that times out or is canceled must NOT return
// it: the loop's buffered send still lands in done and the object is
// simply garbage collected (leak-safe, never reuse-unsafe).
var launchReqPool = sync.Pool{
	New: func() any { return &launchReq{done: make(chan LaunchResult, 1)} },
}

// getLaunchReq returns a zeroed launchReq with its done channel ready.
func getLaunchReq() *launchReq {
	return launchReqPool.Get().(*launchReq)
}

// putLaunchReq resets and recycles q. Callers must hold exclusive
// ownership per the protocol above, which also guarantees done is empty.
func putLaunchReq(q *launchReq) {
	done := q.done
	*q = launchReq{}
	q.done = done
	launchReqPool.Put(q)
}

// LaunchResult is the structured per-request outcome (§5.1's execution
// log, serialized). Exactly one is delivered per accepted launch.
type LaunchResult struct {
	ID       int    `json:"id"`
	Client   string `json:"client"`
	Kernel   string `json:"kernel"`
	Class    string `json:"class"`
	Priority int    `json:"priority"`
	// Device is the fleet shard that executed the invocation (0 on a
	// single-device daemon).
	Device int `json:"device"`
	// Virtual-clock timings (the simulation's currency).
	SubmittedVirtualNS int64 `json:"submitted_virtual_ns"`
	FinishedVirtualNS  int64 `json:"finished_virtual_ns"`
	TurnaroundNS       int64 `json:"turnaround_ns"`
	WaitingNS          int64 `json:"waiting_ns"`
	ExecutionNS        int64 `json:"execution_ns"`
	// NTT is turnaround normalized by the solo baseline (ANTT's per-run
	// term); zero when no baseline applies (tasks_override).
	NTT float64 `json:"ntt,omitempty"`
	// Preemptions counts realized preemptions of this invocation;
	// OverheadNS estimates their total cost (count × profiled mean).
	Preemptions       int   `json:"preemptions"`
	PreemptEstimateNS int64 `json:"preempt_overhead_estimate_ns"`
	OverheadNS        int64 `json:"overhead_ns"`
	// QueueWaitRealNS is the real time spent in the admission queue.
	QueueWaitRealNS int64 `json:"queue_wait_real_ns"`
	// SLO fields, present only for deadline-bearing launches:
	// DeadlineVirtualNS is the absolute virtual-time deadline, SLO is
	// "attained" or "missed", and SLOMarginNS is deadline minus
	// completion (negative when missed).
	DeadlineVirtualNS int64  `json:"deadline_virtual_ns,omitempty"`
	SLO               string `json:"slo,omitempty"`
	SLOMarginNS       int64  `json:"slo_margin_ns,omitempty"`
	// Canceled is set when a graph stage was canceled before admission —
	// a prerequisite failed or the daemon drained while it was parked
	// (HTTP 409). The stage never entered the exactly-once ledger.
	Canceled string `json:"canceled,omitempty"`
	// Err is set when the runtime rejected the invocation (HTTP 422).
	Err string `json:"error,omitempty"`
}

type ctrlKind int

const (
	ctrlPause ctrlKind = iota
	ctrlResume
)

type ctrlMsg struct {
	kind ctrlKind
	ack  chan struct{}
}

// ctrl sends a control message to the loop and waits for acknowledgement.
func (s *Server) ctrl(kind ctrlKind) error {
	m := ctrlMsg{kind: kind, ack: make(chan struct{})}
	select {
	case s.ctrlCh <- m:
	case <-s.loopDone:
		return ErrStopped
	}
	select {
	case <-m.ack:
		return nil
	case <-s.loopDone:
		return ErrStopped
	}
}

// tryEnqueue admits a launch into the bounded queue without blocking.
// The RLock pairs with Shutdown's Lock: once draining is set, no new
// send can be in flight, so the loop's final queue length is stable.
//
// SLO-aware shedding: while deadline-bearing work is outstanding,
// best-effort launches stop being admitted once the queue crowds past
// the cost-aware best-effort share (beLimit), so deadline work always
// finds queue headroom before latency-critical launches start missing.
// With no deadlines in play the full queue belongs to best-effort work
// and admission behaves exactly as before.
//
// The shed decision is atomic with admission: a best-effort launch must
// CAS a slot reservation into s.queued under the beLimit before it may
// send, so N racing best-effort handlers cannot all read a stale queue
// length and collectively overshoot the cost-aware share. The loop
// releases the reservation when it pops the launch (admit); a failed
// channel send releases it immediately.
func (s *Server) tryEnqueue(q *launchReq) error {
	s.acceptMu.RLock()
	defer s.acceptMu.RUnlock()
	if s.draining {
		return ErrDraining
	}
	if q.deadline == 0 {
		for {
			n := s.queued.Load()
			if s.lcOutstanding.Load() > 0 && n >= int64(s.beLimit) {
				return ErrBestEffortShed
			}
			if s.queued.CompareAndSwap(n, n+1) {
				break
			}
		}
	} else {
		s.queued.Add(1)
	}
	select {
	case s.submitCh <- q:
		if q.deadline > 0 {
			s.lcOutstanding.Add(1)
		}
		return nil
	default:
		s.queued.Add(-1)
		return ErrQueueFull
	}
}

// loop is the daemon's scheduling thread. It is the only goroutine that
// touches the engine, device, runtime, policy, and core.System after
// startup; everything reaches it through submitCh/ctrlCh. Each iteration
// first absorbs every pending arrival (stamping them onto the virtual
// clock in arrival order), then advances the simulation by one event.
func (s *Server) loop() {
	defer close(s.loopDone)
	if s.cfg.Recorder != nil {
		// Runs before loopDone closes: a drained daemon's trace is readable
		// the moment Shutdown returns, even if nobody calls Close.
		defer func() { _ = s.cfg.Recorder.Flush() }()
	}
	stop := (<-chan struct{})(s.stopCh)
	draining := false
	paused := false

	beginDrain := func() {
		draining = true
		stop = nil
		paused = false
		s.paused.Store(false)
	}

	// paceDebt is the unserved remainder of the current pace interval: a
	// pause arriving mid-sleep parks the loop, and the owed balance is
	// slept off after Resume instead of being forgotten (which would let a
	// pause/resume storm advance virtual time faster than the pace floor).
	var paceDebt time.Duration

	for {
		// Absorb everything already pending, without blocking. Arrivals
		// drain into the reusable batch and are admitted in one pass —
		// submitCh is FIFO, so batch order is arrival order and the
		// virtual-clock stamping (hence the replay trace) is byte-identical
		// to one-at-a-time admission.
	absorb:
		for {
			select {
			case q := <-s.submitCh:
				s.batch = append(s.batch, q)
			case m := <-s.ctrlCh:
				paused = s.handleCtrl(m, paused, draining)
			case <-stop:
				beginDrain()
			default:
				break absorb
			}
		}
		s.admitAll()
		s.admitReleased()

		if paused {
			// Parked: arrivals pile up in submitCh (backpressure) until
			// Resume or Shutdown.
			select {
			case m := <-s.ctrlCh:
				paused = s.handleCtrl(m, paused, draining)
			case <-stop:
				beginDrain()
			}
			continue
		}

		if paceDebt > 0 {
			paceDebt = s.sleepAbsorb(paceDebt, &paused, &draining, &stop)
			if paceDebt > 0 {
				continue // paused again mid-interval; settle after Resume
			}
		}

		if s.eng.Step() {
			s.vnow.Store(int64(s.eng.Now()))
			s.steps.Add(1)
			if s.cfg.Pace > 0 {
				paceDebt = s.sleepAbsorb(s.cfg.Pace, &paused, &draining, &stop)
			}
			continue
		}

		// Simulator idle: nothing left to run.
		if draining && len(s.submitCh) == 0 && len(s.depReady) == 0 {
			// Parked graph stages can never be released now — the engine is
			// idle, the queue is empty, and admission is closed — so cancel
			// them deterministically instead of leaving handlers to time out.
			s.depDrainCancel()
			return
		}
		select {
		case q := <-s.submitCh:
			s.admit(q)
		case m := <-s.ctrlCh:
			paused = s.handleCtrl(m, paused, draining)
		case <-stop:
			beginDrain()
		}
	}
}

// sleepAbsorb waits out one pace interval while still admitting arrivals
// and control messages, so paced operation keeps the admission latency
// low. Control messages that leave the loop running (Resume, a redundant
// ctrl) are drained without abandoning the interval: the single timer
// keeps ticking toward the original deadline. A Pause parks the loop
// promptly and the unserved remainder is returned so the caller can
// settle the debt after Resume; a timer expiry or a Shutdown returns 0
// (drain runs the remaining work without further pacing of this
// interval).
func (s *Server) sleepAbsorb(d time.Duration, paused, draining *bool, stop *<-chan struct{}) time.Duration {
	deadline := time.Now().Add(d)
	timer := time.NewTimer(d)
	defer timer.Stop()
	for {
		select {
		case <-timer.C:
			return 0
		case q := <-s.submitCh:
			s.admit(q)
		case m := <-s.ctrlCh:
			*paused = s.handleCtrl(m, *paused, *draining)
			if *paused {
				// Park promptly; the loop owes the rest of the interval.
				if rem := time.Until(deadline); rem > 0 {
					return rem
				}
				return 0
			}
		case <-*stop:
			*draining = true
			*stop = nil
			*paused = false
			s.paused.Store(false)
			return 0
		}
	}
}

func (s *Server) handleCtrl(m ctrlMsg, paused, draining bool) bool {
	switch m.kind {
	case ctrlPause:
		if !draining { // a draining daemon must keep making progress
			paused = true
		}
	case ctrlResume:
		paused = false
	}
	s.paused.Store(paused)
	close(m.ack)
	return paused
}

// admitAll stamps and submits every launch drained into the batch, in
// arrival order, sharing one wall-clock read across the whole pass.
// Runs on the loop goroutine.
func (s *Server) admitAll() {
	if len(s.batch) == 0 {
		return
	}
	s.met.AdmitBatches.Inc()
	s.met.AdmitBatchSize.Observe(float64(len(s.batch)))
	now := time.Now()
	for i, q := range s.batch {
		q.admitReal = now
		s.admit(q)
		s.batch[i] = nil // the loop may not retain a reference past admission
	}
	s.batch = s.batch[:0]
}

// admit stamps the request onto the virtual clock and submits it to the
// runtime. Runs on the loop goroutine.
func (s *Server) admit(q *launchReq) {
	s.queued.Add(-1)
	if q.admitReal.IsZero() {
		q.admitReal = time.Now()
	}
	s.met.AdmissionWait.Observe(q.admitReal.Sub(q.enqueuedReal).Seconds())
	a := s.sys.Artifacts(q.bench.Name)
	in := q.bench.Input(q.class)
	if q.tasksOverride > 0 {
		in.Tasks = q.tasksOverride
		in.Bytes = int64(in.Tasks) * q.bench.BytesPerTask
	}
	te, _ := s.sys.Predict(q.bench, in)
	if s.ffs != nil && q.weight > 0 {
		// Scope the requested share weight to this tenant's kernel: keying
		// by priority level would let two tenants at the same priority
		// clobber each other's share, and a departed tenant's weight would
		// linger forever. The per-kernel entry is evicted with the kernel's
		// overhead record when the tenant departs (FFS.OnCompletion).
		s.ffs.SetKernelWeight(q.bench.Name, q.weight)
	}
	v := &flepruntime.Invocation{
		Kernel:   q.bench.Name,
		Priority: q.priority,
		Profile:  a.Profile,
		Tasks:    in.Tasks,
		TaskCost: in.TaskCost,
		L:        a.L,
		// Same resident-footprint model as core.RunFLEP: /8 keeps the
		// largest benchmark within the K40's 12 GB (§8).
		WorkingSet: in.Bytes / 8,
		Te:         te,
		Dependent:  q.graph != "",
		OnFinish:   func(fv *flepruntime.Invocation) { s.complete(q, fv) },
	}
	if q.deadline > 0 {
		// The SLO clock starts at admission: the budget is measured on the
		// virtual clock the invocation was stamped onto, so replays
		// reproduce attainment exactly.
		v.Deadline = s.eng.Now() + q.deadline
	}
	// Capture the engine position before Submit: the trace must describe
	// the state the launch arrived into, and Submit's own scheduling may
	// not step the engine (steps only advance in the loop), but the
	// invariant "step exactly Step events, then submit" depends on
	// reading the counter at the admission boundary.
	atVirtual := s.eng.Now()
	atStep := s.steps.Load()
	if err := s.rt.Submit(v); err != nil {
		if q.deadline > 0 {
			s.lcOutstanding.Add(-1)
		}
		s.met.SubmitErrors.Inc()
		//flepvet:allow sharedlock -- bounded counter bump; handlers only copy under s.mu, never block
		s.mu.Lock()
		s.c.SubmitErrors++
		if sess := s.sessions[q.client]; sess != nil {
			sess.SubmitErrors++
		}
		s.mu.Unlock()
		if q.graph != "" {
			// A failed stage dooms its descendants: cancel parked dependents
			// now so the graph's outcome is decided deterministically.
			s.depStageFailed(q)
		}
		//flepvet:allow blockingsend -- q.done is per-request with capacity 1 (http.go) and sees exactly one send
		q.done <- LaunchResult{
			Client: q.client, Kernel: q.bench.Name, Class: q.class.String(),
			Priority: q.priority, Device: s.cfg.Device, Err: err.Error(),
		}
		return
	}
	if rec := s.cfg.Recorder; rec != nil {
		// Record only successful admissions: the trace is the stream of
		// launches the runtime accepted, which is exactly what a replay
		// re-submits (a replay-side rejection is then a divergence).
		rec.Record(replay.Record{
			At:            int64(atVirtual),
			Step:          atStep,
			Device:        s.cfg.Device,
			Client:        q.client,
			Bench:         q.bench.Name,
			Class:         q.class.String(),
			Priority:      q.priority,
			Weight:        q.weight,
			TasksOverride: q.tasksOverride,
			Grid:          in.Tasks,
			Block:         q.bench.ThreadsPerCTA,
			WorkingSet:    v.WorkingSet,
			Te:            int64(te),
			DeadlineNS:    int64(q.deadline),
			SLOClass:      recordSLOClass(q.deadline),
			Model:         q.model,
			GraphID:       q.graph,
			Stage:         q.stage,
			After:         q.after,
		})
	}
	s.vnow.Store(int64(s.eng.Now()))
}

// recordSLOClass names the SLO tier for trace records. Best-effort maps
// to the empty string so deadline-free traces stay byte-identical to
// those written before the SLO tier existed.
func recordSLOClass(deadline time.Duration) string {
	if deadline > 0 {
		return "latency"
	}
	return ""
}

// complete delivers the terminal result for a finished invocation. Runs
// on the loop goroutine (from the runtime's OnFinish hook).
func (s *Server) complete(q *launchReq, fv *flepruntime.Invocation) {
	s.vnow.Store(int64(s.dev.Now()))
	a := s.sys.Artifacts(q.bench.Name)
	res := LaunchResult{
		ID:     fv.ID,
		Client: q.client, Kernel: fv.Kernel, Class: q.class.String(),
		Priority:           fv.Priority,
		Device:             s.cfg.Device,
		SubmittedVirtualNS: int64(fv.SubmittedAt()),
		FinishedVirtualNS:  int64(fv.FinishedAt()),
		TurnaroundNS:       int64(fv.Turnaround()),
		WaitingNS:          int64(fv.Tw),
		ExecutionNS:        int64(fv.Turnaround() - fv.Tw),
		Preemptions:        fv.Preemptions,
		PreemptEstimateNS:  int64(a.PreemptOverhead),
		OverheadNS:         int64(a.PreemptOverhead) * int64(fv.Preemptions),
		QueueWaitRealNS:    q.admitReal.Sub(q.enqueuedReal).Nanoseconds(),
	}
	if q.tasksOverride == 0 {
		if solo := s.solo[soloKey{q.bench.Name, q.class}]; solo > 0 {
			res.NTT = fv.Turnaround().Seconds() / solo.Seconds()
			s.met.NTT.Observe(res.NTT)
		}
	}
	var margin time.Duration
	if fv.Deadline > 0 {
		margin = fv.Deadline - fv.FinishedAt()
		res.DeadlineVirtualNS = int64(fv.Deadline)
		res.SLOMarginNS = int64(margin)
		s.met.SLOMargin.Observe(margin.Seconds())
		if margin >= 0 {
			res.SLO = "attained"
			s.met.SLOAttained.Inc()
		} else {
			res.SLO = "missed"
			s.met.SLOMissed.Inc()
		}
		s.lcOutstanding.Add(-1)
	}
	// Price one queue slot for Retry-After: EWMA of the real time between
	// consecutive completions (the pipeline's observed drain rate). Only
	// this goroutine writes; rejected handlers read the atomic.
	nowReal := time.Now().UnixNano()
	if last := s.lastCompleteNS.Swap(nowReal); last != 0 {
		delta := nowReal - last
		if old := s.svcEWMANS.Load(); old == 0 {
			s.svcEWMANS.Store(delta)
		} else {
			s.svcEWMANS.Store(old + (delta-old)/4)
		}
	}
	s.met.Completed.Inc()
	//flepvet:allow sharedlock -- bounded counter bump; handlers only copy under s.mu, never block
	s.mu.Lock()
	s.c.Completed++
	switch res.SLO {
	case "attained":
		s.c.SLOAttained++
		s.sloMarginSum += margin
	case "missed":
		s.c.SLOMissed++
		s.sloMarginSum += margin
	}
	if sess := s.sessions[q.client]; sess != nil {
		sess.noteCompletion(res)
	}
	s.mu.Unlock()
	if q.graph != "" {
		// Fold the stage into its graph and collect newly-unblocked
		// dependents before the handler learns the result, so a client that
		// reacts instantly still observes its dependents as released.
		s.depStageDone(q, &res)
	}
	//flepvet:allow blockingsend -- q.done is per-request with capacity 1 (http.go) and sees exactly one send
	q.done <- res
}
