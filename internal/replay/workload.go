package replay

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"flep/internal/kernels"
	"flep/internal/workload"
)

// FromScenario converts a scripted workload.Scenario into a trace, so
// the EXPERIMENTS scenarios can be fed to the replayer and what-if
// advisor directly. Closed-loop (Loop) items have no finite arrival
// list — their arrivals depend on completions — and are rejected;
// record a live run instead.
func FromScenario(sc workload.Scenario, seed int64) (*Trace, error) {
	t := &Trace{Header: Header{
		Magic: true, TraceVersion: Version, Source: SourceScenario,
		Seed: seed,
	}}
	seen := map[string]bool{}
	for i, it := range sc.Items {
		if it.Loop {
			return nil, fmt.Errorf("replay: scenario %s item %d is closed-loop; record a live run to trace it", sc.Name, i)
		}
		if !seen[it.Bench.Name] {
			seen[it.Bench.Name] = true
			t.Header.Benchmarks = append(t.Header.Benchmarks, it.Bench.Name)
		}
		t.Records = append(t.Records, Record{
			Seq: int64(i + 1), At: int64(it.At), Device: -1,
			Client:        fmt.Sprintf("%s-p%d", it.Bench.Name, it.Priority),
			Bench:         it.Bench.Name,
			Class:         it.Class.String(),
			Priority:      it.Priority,
			TasksOverride: it.TasksOverride,
		})
	}
	sort.Strings(t.Header.Benchmarks)
	return t, nil
}

// ToScenario converts a trace back into a scripted scenario (arrivals at
// the recorded offsets), so trace-driven runs compose with the existing
// scenario tooling.
func (t *Trace) ToScenario(name string) (workload.Scenario, error) {
	sc := workload.Scenario{Name: name}
	recs := append([]Record(nil), t.Records...)
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].At != recs[j].At {
			return recs[i].At < recs[j].At
		}
		return recs[i].Seq < recs[j].Seq
	})
	for _, r := range recs {
		b, err := kernels.ByName(r.Bench)
		if err != nil {
			return workload.Scenario{}, fmt.Errorf("replay: %w", err)
		}
		class, err := parseClass(r.Class)
		if err != nil {
			return workload.Scenario{}, err
		}
		sc.Items = append(sc.Items, workload.Item{
			Bench: b, Class: class, Priority: r.Priority,
			At: time.Duration(r.At), TasksOverride: r.TasksOverride,
		})
	}
	return sc, nil
}

// MixTenant describes one tenant of a synthesized multi-tenant trace: a
// client submitting Count launches of Bench/Class at Priority, one every
// Period with seeded jitter. A positive Deadline makes every launch
// latency-critical with that SLO budget from admission.
type MixTenant struct {
	Client   string
	Bench    string
	Class    string
	Priority int
	Weight   float64
	Period   time.Duration
	Count    int
	Deadline time.Duration
}

// SynthesizeMix builds a deterministic open-loop trace from tenant specs:
// the canonical way to produce a what-if input without a live daemon
// (flepreplay record uses it for its two-tenant demo mix). Arrival
// jitter is drawn from the seed, so the same specs and seed always yield
// the identical trace.
func SynthesizeMix(tenants []MixTenant, seed int64) (*Trace, error) {
	t := &Trace{Header: Header{
		Magic: true, TraceVersion: Version, Source: SourceScenario,
		Seed: seed,
	}}
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	for i, ten := range tenants {
		if _, err := kernels.ByName(ten.Bench); err != nil {
			return nil, fmt.Errorf("replay: mix tenant %d: %w", i, err)
		}
		if _, err := parseClass(ten.Class); err != nil {
			return nil, fmt.Errorf("replay: mix tenant %d: %w", i, err)
		}
		if ten.Count <= 0 || ten.Period <= 0 {
			return nil, fmt.Errorf("replay: mix tenant %d: need positive count and period", i)
		}
		if !seen[ten.Bench] {
			seen[ten.Bench] = true
			t.Header.Benchmarks = append(t.Header.Benchmarks, ten.Bench)
		}
		sloClass := ""
		if ten.Deadline > 0 {
			sloClass = "latency"
		}
		for k := 0; k < ten.Count; k++ {
			jitter := time.Duration(rng.Int63n(int64(ten.Period)/4 + 1))
			t.Records = append(t.Records, Record{
				At:         int64(time.Duration(k)*ten.Period + jitter),
				Device:     -1,
				Client:     ten.Client,
				Bench:      ten.Bench,
				Class:      ten.Class,
				Priority:   ten.Priority,
				Weight:     ten.Weight,
				DeadlineNS: int64(ten.Deadline),
				SLOClass:   sloClass,
			})
		}
	}
	sort.SliceStable(t.Records, func(i, j int) bool { return t.Records[i].At < t.Records[j].At })
	for i := range t.Records {
		t.Records[i].Seq = int64(i + 1)
	}
	sort.Strings(t.Header.Benchmarks)
	return t, nil
}

// WriteFile persists the trace as a single JSONL segment at path.
func (t *Trace) WriteFile(path string) error {
	rec, err := NewRecorder(path, t.Header, RecorderOptions{})
	if err != nil {
		return err
	}
	// The recorder reassigns Seq in append order; records are already in
	// Seq order here, so the assignment is identity-preserving.
	for _, r := range t.Records {
		rec.Record(r)
	}
	return rec.Close()
}
