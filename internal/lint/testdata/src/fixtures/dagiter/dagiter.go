// Package dagiter exercises the map-order analyzer on the DAG-release
// pattern the serving daemon's dependency table uses: a graph keeps its
// stages in a map, and releasing newly-unblocked stages by ranging that
// map leaks Go's randomized iteration order into the admission
// sequence — the exact bug class that breaks byte-identical replay of a
// recorded model run.
package dagiter

import "sort"

type stage struct {
	after  []string
	done   bool
	parked bool
}

type graph struct {
	stages map[string]*stage
	order  []string // registration order
}

func ready(g *graph, s *stage) bool {
	for _, dep := range s.after {
		p := g.stages[dep]
		if p == nil || !p.done {
			return false
		}
	}
	return true
}

// ReleaseFromMap collects newly-unblocked stages by ranging the stage
// map: the release order differs run to run, so a replay of the same
// graph admits stages in a different sequence.
func ReleaseFromMap(g *graph) []string {
	var released []string
	for name, s := range g.stages {
		if s.parked && ready(g, s) {
			released = append(released, name) // want `maporder append to released inside map iteration`
		}
	}
	return released
}

// ReleaseSorted is the sanctioned collect-then-sort escape: the map
// range still feeds the slice, but a sort follows in the same function.
func ReleaseSorted(g *graph) []string {
	var released []string
	for name, s := range g.stages {
		if s.parked && ready(g, s) {
			released = append(released, name)
		}
	}
	sort.Strings(released)
	return released
}

// ReleaseInOrder walks the registration-order slice and only indexes
// the map — the dependency table's real idiom, deterministic by
// construction.
func ReleaseInOrder(g *graph) []string {
	var released []string
	for _, name := range g.order {
		s := g.stages[name]
		if s.parked && ready(g, s) {
			released = append(released, name)
		}
	}
	return released
}
