package gpu

import (
	"math"
	"testing"
	"time"

	"flep/internal/sim"
)

// testProfile returns a full-occupancy-8 profile (the paper's 256-thread
// CTA on K40: 120 active CTAs device-wide).
func testProfile(name string, mi, floor float64) *KernelProfile {
	return &KernelProfile{
		Name:            name,
		ThreadsPerCTA:   256,
		CTAsPerSM:       8,
		MemoryIntensity: mi,
		ContentionFloor: floor,
	}
}

func newDev() (*sim.Engine, *Device) {
	eng := sim.New()
	return eng, New(eng, DefaultParams())
}

func us(n float64) time.Duration { return time.Duration(n * float64(time.Microsecond)) }

// within reports |a-b| <= tol.
func within(a, b, tol time.Duration) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestOriginalSoloRuntimeMatchesWaveModel(t *testing.T) {
	eng, dev := newDev()
	prof := testProfile("k", 0.5, 0.8)
	// 1200 tasks at 100us on 120 active CTAs = 10 waves = 1000us + launch.
	var doneAt time.Duration
	_, err := dev.Start(ExecConfig{
		Profile: prof, TotalTasks: 1200, TaskCost: us(100),
		SMLo: 0, SMHi: 15,
		OnComplete: func() { doneAt = eng.Now() },
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	want := us(1000) + dev.Params().LaunchLatency
	if !within(doneAt, want, us(1)) {
		t.Fatalf("done at %v, want ~%v", doneAt, want)
	}
}

func TestPersistentOverheadMatchesModel(t *testing.T) {
	eng, dev := newDev()
	prof := testProfile("k", 0.5, 0.8)
	par := dev.Params()
	tasks, cost, L := 1200, us(100), 4
	var doneAt time.Duration
	_, err := dev.Start(ExecConfig{
		Profile: prof, TotalTasks: tasks, TaskCost: cost,
		Persistent: true, L: L, SMLo: 0, SMHi: 15,
		OnComplete: func() { doneAt = eng.Now() },
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	perTask := cost.Seconds() + par.TaskAtomicLatency.Seconds() + par.PinnedReadLatency.Seconds()/float64(L)
	want := time.Duration(float64(tasks)/120*perTask*1e9) + par.LaunchLatency
	if !within(doneAt, want, us(1)) {
		t.Fatalf("done at %v, want ~%v", doneAt, want)
	}
	// Overhead vs original must be small and positive.
	overhead := float64(doneAt-us(1000)-par.LaunchLatency) / float64(us(1000))
	if overhead <= 0 || overhead > 0.05 {
		t.Fatalf("persistent overhead = %.4f, want (0, 0.05]", overhead)
	}
}

func TestLargerLReducesOverhead(t *testing.T) {
	run := func(L int) time.Duration {
		eng, dev := newDev()
		var doneAt time.Duration
		_, err := dev.Start(ExecConfig{
			Profile: testProfile("k", 0.5, 0.8), TotalTasks: 2400, TaskCost: us(5),
			Persistent: true, L: L, SMLo: 0, SMHi: 15,
			OnComplete: func() { doneAt = eng.Now() },
		})
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return doneAt
	}
	if !(run(1) > run(10) && run(10) > run(100)) {
		t.Fatalf("overhead not decreasing in L: L1=%v L10=%v L100=%v", run(1), run(10), run(100))
	}
}

func TestTemporalPreemptDrainsAndStops(t *testing.T) {
	eng, dev := newDev()
	prof := testProfile("victim", 0.5, 0.8)
	var drainedAt time.Duration
	var remaining int
	completed := false
	e, err := dev.Start(ExecConfig{
		Profile: prof, TotalTasks: 12000, TaskCost: us(100),
		Persistent: true, L: 2, SMLo: 0, SMHi: 15,
		OnComplete: func() { completed = true },
		OnDrained:  func(rem int) { drainedAt, remaining = eng.Now(), rem },
	})
	if err != nil {
		t.Fatal(err)
	}
	preemptAt := us(2000)
	eng.Schedule(preemptAt, func() {
		if err := e.Preempt(dev.NumSMs()); err != nil {
			t.Errorf("preempt: %v", err)
		}
	})
	eng.Run()
	if completed {
		t.Fatal("victim completed despite preemption")
	}
	if e.State() != StateStopped {
		t.Fatalf("state = %v, want stopped", e.State())
	}
	if remaining <= 0 || remaining >= 12000 {
		t.Fatalf("remaining = %d", remaining)
	}
	// Drain latency should be flag prop + pinned + ~1.5 task batches.
	drain := drainedAt - preemptAt
	if drain <= 0 || drain > us(500) {
		t.Fatalf("drain latency %v out of range", drain)
	}
	// Progress must be conserved: done + remaining == total.
	progressed := 12000 - remaining
	// ~2ms of 120-CTA progress at ~100us/task ≈ 2400 tasks (+drain work).
	if progressed < 2000 || progressed > 3500 {
		t.Fatalf("progressed = %d tasks, implausible", progressed)
	}
}

func TestPreemptResumeConservesWork(t *testing.T) {
	eng, dev := newDev()
	prof := testProfile("k", 0.5, 0.8)
	total := 6000
	var firstRemaining int
	var doneAt time.Duration
	e, err := dev.Start(ExecConfig{
		Profile: prof, TotalTasks: total, TaskCost: us(100),
		Persistent: true, L: 2, SMLo: 0, SMHi: 15,
		OnDrained: func(rem int) { firstRemaining = rem },
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Schedule(us(1000), func() { e.Preempt(15) })
	eng.Run()
	if firstRemaining == 0 {
		t.Fatal("no remaining work after preempt")
	}
	// Resume with the counter preserved.
	_, err = dev.Start(ExecConfig{
		Profile: prof, TotalTasks: total, DoneTasks: total - firstRemaining,
		TaskCost: us(100), Persistent: true, L: 2, SMLo: 0, SMHi: 15,
		OnComplete: func() { doneAt = eng.Now() },
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if doneAt == 0 {
		t.Fatal("resumed execution never completed")
	}
	// Total elapsed ≈ solo time + preemption overhead; must exceed solo
	// but not by much more than drain + relaunch.
	solo := us(5000) + dev.Params().LaunchLatency
	if doneAt <= solo {
		t.Fatalf("resume finished impossibly fast: %v <= %v", doneAt, solo)
	}
	if doneAt > solo+us(700) {
		t.Fatalf("preemption overhead too large: %v vs solo %v", doneAt, solo)
	}
}

func TestSpatialPreemptKeepsHighSMsRunning(t *testing.T) {
	eng, dev := newDev()
	prof := testProfile("victim", 0.5, 0.8)
	var drainRem int
	var doneAt time.Duration
	e, err := dev.Start(ExecConfig{
		Profile: prof, TotalTasks: 12000, TaskCost: us(100),
		Persistent: true, L: 2, SMLo: 0, SMHi: 15,
		OnComplete: func() { doneAt = eng.Now() },
		OnDrained:  func(rem int) { drainRem = rem },
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Schedule(us(1000), func() { e.Preempt(5) })
	eng.Run()
	if doneAt == 0 {
		t.Fatal("victim never completed despite spatial preemption")
	}
	if drainRem == 0 {
		t.Fatal("drain callback remaining = 0")
	}
	lo, hi := e.SMRange()
	if lo != 5 || hi != 15 {
		t.Fatalf("SM range after spatial preempt = [%d,%d), want [5,15)", lo, hi)
	}
	// Running on 10/15 SMs: completion should be ~1.5x the solo tail.
	solo := us(10000) + dev.Params().LaunchLatency
	if doneAt <= solo {
		t.Fatalf("spatial preemption cannot speed up the victim: %v <= %v", doneAt, solo)
	}
}

func TestSpatialFreedSMsCanHostAnotherKernel(t *testing.T) {
	eng, dev := newDev()
	victim := testProfile("victim", 0.8, 0.6)
	guest := testProfile("guest", 0.2, 0.9)
	var guestDone time.Duration
	e, err := dev.Start(ExecConfig{
		Profile: victim, TotalTasks: 12000, TaskCost: us(100),
		Persistent: true, L: 2, SMLo: 0, SMHi: 15,
		OnDrained: func(rem int) {
			// Place the guest on the freed SMs [0,5).
			_, err := dev.Start(ExecConfig{
				Profile: guest, TotalTasks: 40, TaskCost: us(50),
				Persistent: true, L: 1, SMLo: 0, SMHi: 5,
				OnComplete: func() { guestDone = eng.Now() },
			})
			if err != nil {
				t.Errorf("guest start: %v", err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Schedule(us(1000), func() { e.Preempt(5) })
	eng.Run()
	if guestDone == 0 {
		t.Fatal("guest never ran")
	}
}

func TestOverlapRejected(t *testing.T) {
	_, dev := newDev()
	prof := testProfile("a", 0.5, 0.8)
	if _, err := dev.Start(ExecConfig{Profile: prof, TotalTasks: 100, TaskCost: us(10), SMLo: 0, SMHi: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Start(ExecConfig{Profile: prof, TotalTasks: 100, TaskCost: us(10), SMLo: 9, SMHi: 15}); err == nil {
		t.Fatal("overlapping placement accepted")
	}
	if _, err := dev.Start(ExecConfig{Profile: prof, TotalTasks: 100, TaskCost: us(10), SMLo: 10, SMHi: 15}); err != nil {
		t.Fatalf("disjoint placement rejected: %v", err)
	}
}

func TestStartValidation(t *testing.T) {
	_, dev := newDev()
	prof := testProfile("a", 0.5, 0.8)
	bad := []ExecConfig{
		{TotalTasks: 1, TaskCost: us(1), SMLo: 0, SMHi: 15},                // nil profile
		{Profile: prof, TotalTasks: 1, TaskCost: us(1), SMLo: -1, SMHi: 5}, // bad range
		{Profile: prof, TotalTasks: 1, TaskCost: us(1), SMLo: 5, SMHi: 5},  // empty range
		{Profile: prof, TotalTasks: 1, TaskCost: us(1), SMLo: 0, SMHi: 16}, // beyond device
		{Profile: prof, TotalTasks: 1, SMLo: 0, SMHi: 15},                  // no cost
		{Profile: prof, TotalTasks: 1, DoneTasks: 2, TaskCost: us(1), SMLo: 0, SMHi: 15},
	}
	for i, cfg := range bad {
		if _, err := dev.Start(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestFewTasksThanCapacityRunsInOneWave(t *testing.T) {
	eng, dev := newDev()
	prof := testProfile("trivial", 0.5, 0.8)
	var doneAt time.Duration
	// 40 tasks, capacity 120: single wave, but sparse CTAs run faster
	// than full-occupancy (contention floor < 1).
	_, err := dev.Start(ExecConfig{
		Profile: prof, TotalTasks: 40, TaskCost: us(80),
		SMLo: 0, SMHi: 15,
		OnComplete: func() { doneAt = eng.Now() },
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	oneWaveFull := us(80) + dev.Params().LaunchLatency
	if doneAt >= oneWaveFull {
		t.Fatalf("sparse wave %v not faster than full-occupancy wave %v", doneAt, oneWaveFull)
	}
}

func TestSparserPlacementRunsFaster(t *testing.T) {
	// Figure 16's mechanism: the same 16 CTAs on more SMs finish sooner.
	run := func(sms int) time.Duration {
		eng, dev := newDev()
		var doneAt time.Duration
		_, err := dev.Start(ExecConfig{
			Profile: testProfile("k", 0.7, 0.5), TotalTasks: 16, TaskCost: us(100),
			Persistent: true, L: 1, SMLo: 0, SMHi: sms,
			OnComplete: func() { doneAt = eng.Now() },
		})
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return doneAt
	}
	t2, t4, t8 := run(2), run(4), run(8)
	if !(t2 > t4 && t4 > t8) {
		t.Fatalf("not monotone: 2SM=%v 4SM=%v 8SM=%v", t2, t4, t8)
	}
	// The speedup saturates near 1/floor ≈ 2x, echoing the paper's 2.22x.
	if ratio := float64(t2) / float64(t8); ratio < 1.2 || ratio > 2.5 {
		t.Fatalf("2SM/8SM ratio = %.2f, want within (1.2, 2.5)", ratio)
	}
}

func TestHeterogeneousMixBonus(t *testing.T) {
	// Two kernels with very different memory intensity sharing the device
	// spatially run slightly faster than the contention-free model alone.
	runPair := func(miB float64) time.Duration {
		eng, dev := newDev()
		var doneB time.Duration
		_, err := dev.Start(ExecConfig{
			Profile: testProfile("a", 0.9, 0.8), TotalTasks: 100000, TaskCost: us(100),
			Persistent: true, L: 2, SMLo: 5, SMHi: 15,
		})
		if err != nil {
			t.Fatal(err)
		}
		_, err = dev.Start(ExecConfig{
			Profile: testProfile("b", miB, 0.8), TotalTasks: 4000, TaskCost: us(100),
			Persistent: true, L: 2, SMLo: 0, SMHi: 5,
			OnComplete: func() { doneB = eng.Now() },
		})
		if err != nil {
			t.Fatal(err)
		}
		eng.RunUntil(5 * time.Second)
		return doneB
	}
	homogeneous := runPair(0.9)
	heterogeneous := runPair(0.1)
	if heterogeneous >= homogeneous {
		t.Fatalf("no mix bonus: hetero %v >= homo %v", heterogeneous, homogeneous)
	}
}

func TestBandwidthPressureSlowsSaturatedCoRuns(t *testing.T) {
	// Two fully memory-bound kernels co-resident must run slower than the
	// nominal rate (pressure > 1).
	eng, dev := newDev()
	var doneA time.Duration
	_, err := dev.Start(ExecConfig{
		Profile: testProfile("a", 1.0, 0.8), TotalTasks: 1200, TaskCost: us(100),
		Persistent: true, L: 2, SMLo: 0, SMHi: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = dev.Start(ExecConfig{
		Profile: testProfile("b", 1.0, 0.8), TotalTasks: 1200, TaskCost: us(100),
		Persistent: true, L: 2, SMLo: 10, SMHi: 15,
		OnComplete: func() { doneA = eng.Now() },
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if doneA == 0 {
		t.Fatal("no completion")
	}
	// Nominal: 1200 tasks on 5 SMs * 8 CTAs = 30 waves = 3000us; pressure
	// (10+5)/15 of full demand = 1.0 → combined demand 1.0; a's demand
	// 10/15*1 + b 5/15*1 = 1 → no slowdown. Use bigger demand: skip exact
	// value, just assert it completed.
	_ = doneA
}

func TestPreemptDuringLaunchCancels(t *testing.T) {
	eng, dev := newDev()
	var rem = -1
	e, err := dev.Start(ExecConfig{
		Profile: testProfile("k", 0.5, 0.8), TotalTasks: 100, TaskCost: us(10),
		Persistent: true, L: 1, SMLo: 0, SMHi: 15,
		OnDrained: func(r int) { rem = r },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Preempt before launch latency elapses.
	if err := e.Preempt(15); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if rem != 100 {
		t.Fatalf("remaining = %d, want all 100 tasks", rem)
	}
	if dev.Busy() {
		t.Fatal("device still busy")
	}
}

func TestPreemptCompletedExecErrors(t *testing.T) {
	eng, dev := newDev()
	e, err := dev.Start(ExecConfig{
		Profile: testProfile("k", 0.5, 0.8), TotalTasks: 10, TaskCost: us(10),
		Persistent: true, L: 1, SMLo: 0, SMHi: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if err := e.Preempt(15); err == nil {
		t.Fatal("preempting a done execution must error")
	}
}

func TestCompletionDuringDrainResolvesBoth(t *testing.T) {
	eng, dev := newDev()
	completed := false
	drainRem := -1
	e, err := dev.Start(ExecConfig{
		Profile: testProfile("k", 0.5, 0.8), TotalTasks: 120, TaskCost: us(10),
		Persistent: true, L: 50, SMLo: 0, SMHi: 15,
		OnComplete: func() { completed = true },
		OnDrained:  func(r int) { drainRem = r },
	})
	if err != nil {
		t.Fatal(err)
	}
	// One wave ≈ 10us+overheads; preempt right before the end with a huge
	// L so the drain deadline lands after completion.
	eng.Schedule(us(14), func() { e.Preempt(15) })
	eng.Run()
	if !completed {
		t.Fatal("execution did not complete")
	}
	if drainRem != 0 {
		t.Fatalf("drain remaining = %d, want 0 (completed first)", drainRem)
	}
}

func TestObserverSeesLifecycle(t *testing.T) {
	eng, dev := newDev()
	var kinds []EventKind
	dev.Observer = func(ev Event) { kinds = append(kinds, ev.Kind) }
	e, err := dev.Start(ExecConfig{
		Profile: testProfile("k", 0.5, 0.8), TotalTasks: 12000, TaskCost: us(100),
		Persistent: true, L: 2, SMLo: 0, SMHi: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Schedule(us(1000), func() { e.Preempt(15) })
	eng.Run()
	want := []EventKind{EvLaunch, EvResident, EvPreemptRequest, EvDrained}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("events = %v, want %v", kinds, want)
		}
	}
}

// Fluid-progress invariant: at any observation time, done+remaining == total
// and done is nondecreasing.
func TestProgressInvariant(t *testing.T) {
	eng, dev := newDev()
	e, err := dev.Start(ExecConfig{
		Profile: testProfile("k", 0.5, 0.8), TotalTasks: 5000, TaskCost: us(50),
		Persistent: true, L: 4, SMLo: 0, SMHi: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for probe := us(100); probe < us(3000); probe += us(100) {
		probe := probe
		eng.Schedule(probe, func() {
			dev.sync()
			done := 5000 - e.Remaining()
			if done < prev {
				t.Errorf("progress went backwards: %d < %d", done, prev)
			}
			prev = done
			if e.done < 0 || e.done > 5000+1e-6 {
				t.Errorf("fluid done out of range: %f", e.done)
			}
			if math.IsNaN(e.done) {
				t.Error("NaN progress")
			}
		})
	}
	eng.Run()
}

func TestBandwidthPressureAboveOne(t *testing.T) {
	// Two fully memory-bound kernels, each demanding the whole device's
	// bandwidth at its share of CTAs, must slow down versus the
	// contention-free model.
	solo := func() time.Duration {
		eng, dev := newDev()
		var done time.Duration
		_, err := dev.Start(ExecConfig{
			Profile: testProfile("a", 1.0, 1.0), TotalTasks: 8000, TaskCost: us(100),
			SMLo: 0, SMHi: 10,
			OnComplete: func() { done = eng.Now() },
		})
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return done
	}()
	coRun := func() time.Duration {
		eng, dev := newDev()
		var done time.Duration
		_, err := dev.Start(ExecConfig{
			Profile: testProfile("a", 1.0, 1.0), TotalTasks: 8000, TaskCost: us(100),
			SMLo: 0, SMHi: 10,
			OnComplete: func() { done = eng.Now() },
		})
		if err != nil {
			t.Fatal(err)
		}
		_, err = dev.Start(ExecConfig{
			Profile: testProfile("b", 1.0, 1.0), TotalTasks: 100000, TaskCost: us(100),
			SMLo: 10, SMHi: 15,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng.RunUntil(5 * time.Second)
		return done
	}()
	// Combined demand = 10/15 + 5/15 = 1.0 at identical intensity →
	// pressure stays 1; but kernel a runs on fewer-than-all SMs in both
	// cases, so co-run time must not be *faster* (same-intensity kernels
	// get no mix bonus).
	if coRun < solo {
		t.Fatalf("identical-intensity co-run sped up: %v < %v", coRun, solo)
	}
}

func TestExpandValidation(t *testing.T) {
	eng, dev := newDev()
	e, err := dev.Start(ExecConfig{
		Profile: testProfile("a", 0.5, 0.8), TotalTasks: 12000, TaskCost: us(100),
		Persistent: true, L: 2, SMLo: 5, SMHi: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Schedule(us(100), func() {
		if err := e.Expand(5); err == nil {
			t.Error("expand to own smLo accepted")
		}
		if err := e.Expand(-1); err == nil {
			t.Error("negative expand accepted")
		}
	})
	// Another long-running exec takes [0,3): expand to 0 must be rejected.
	eng.Schedule(us(200), func() {
		if _, err := dev.Start(ExecConfig{
			Profile: testProfile("b", 0.5, 0.8), TotalTasks: 100000, TaskCost: us(10),
			SMLo: 0, SMHi: 3,
		}); err != nil {
			t.Error(err)
		}
	})
	eng.Schedule(us(300), func() {
		if err := e.Expand(0); err == nil {
			t.Error("overlapping expand accepted")
		}
		if err := e.Expand(3); err != nil {
			t.Errorf("legal expand rejected: %v", err)
		}
	})
	eng.Run()
	lo, _ := e.SMRange()
	if lo != 3 {
		t.Fatalf("smLo = %d after expand, want 3", lo)
	}
}

func TestExpandOnStoppedExecErrors(t *testing.T) {
	eng, dev := newDev()
	e, err := dev.Start(ExecConfig{
		Profile: testProfile("a", 0.5, 0.8), TotalTasks: 12000, TaskCost: us(100),
		Persistent: true, L: 2, SMLo: 5, SMHi: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Schedule(us(100), func() { e.Preempt(10) })
	eng.Run()
	if e.State() != StateStopped {
		t.Fatalf("state %v", e.State())
	}
	if err := e.Expand(0); err == nil {
		t.Fatal("expand on stopped exec accepted")
	}
}

func TestDrainTimeScalesWithL(t *testing.T) {
	// A larger amortizing factor means a longer drain.
	measure := func(L int) time.Duration {
		eng, dev := newDev()
		var drainedAt time.Duration
		preemptAt := us(1000)
		e, err := dev.Start(ExecConfig{
			Profile: testProfile("k", 0.5, 0.8), TotalTasks: 120000, TaskCost: us(50),
			Persistent: true, L: L, SMLo: 0, SMHi: 15,
			OnDrained: func(int) { drainedAt = eng.Now() },
		})
		if err != nil {
			t.Fatal(err)
		}
		eng.Schedule(preemptAt, func() { e.Preempt(15) })
		eng.Run()
		return drainedAt - preemptAt
	}
	d1, d4, d16 := measure(1), measure(4), measure(16)
	if !(d1 < d4 && d4 < d16) {
		t.Fatalf("drain not increasing with L: %v %v %v", d1, d4, d16)
	}
}
