// Package poolown exercises the poolownership analyzer: sync.Pool
// values tracked interprocedurally through returns-pooled helpers,
// releasing helpers, conditional consumers, and channel hand-offs.
package poolown

import (
	"errors"
	"sync"
)

type buf struct {
	data []byte
	done chan int
}

var bufPool = sync.Pool{New: func() any { return &buf{done: make(chan int, 1)} }}

// getBuf hands the pooled value straight out of Get; callers become
// owners (the return itself is clean: ownership transfers).
func getBuf() *buf { return bufPool.Get().(*buf) }

// putBuf releases on every exit, so its summary is must-release.
func putBuf(b *buf) { bufPool.Put(b) }

var errFull = errors.New("full")

// send consumes b only on the nil-error exit; its per-exit summary
// lets callers keep the error path's ownership.
func send(ch chan *buf, b *buf, full bool) error {
	if full {
		return errFull
	}
	ch <- b
	return nil
}

// ---------------------------------------------------------- violations

func UseAfterPut() int {
	b := getBuf()
	putBuf(b)
	return len(b.data) // want `useafterput pooled value used after it was returned to the pool`
}

func DoublePutDirect() {
	b := getBuf()
	bufPool.Put(b)
	bufPool.Put(b) // want `doubleput pooled value Put twice on this path`
}

func DoublePutHelper() {
	b := getBuf()
	putBuf(b)
	putBuf(b) // want `doubleput pooled value passed to a releasing function after it was already returned to the pool`
}

var stash *buf

func PutEscaped() {
	b := getBuf()
	stash = b
	bufPool.Put(b) // want `putescaped pooled value Put after it escaped; another holder may still use it`
}

func LeakOnError(fail bool) error {
	b := getBuf()
	if fail {
		return errFull // want `poolleak pool-originated value still owned at function exit \(no Put on this path\)`
	}
	putBuf(b)
	return nil
}

// AbandonHandoff hands b off and normally reclaims it from b.done; the
// timeout arm walks away, orphaning the recycled value.
func AbandonHandoff(ch chan *buf, timeout chan int) {
	b := getBuf()
	ch <- b
	select {
	case <-b.done:
		putBuf(b)
	case <-timeout: // want `poolleak pool-originated value abandoned after hand-off: this exit path never reclaims it`
	}
}

// --------------------------------------------------------------- clean

// CleanRoundTrip is the basic get/use/put protocol.
func CleanRoundTrip() int {
	b := getBuf()
	n := len(b.data)
	putBuf(b)
	return n
}

// CleanConditionalConsume reclaims on the error path and waits out the
// hand-off on success — the serveLaunch shape, done right. The
// conditional summary of send plus `err != nil` narrowing keeps both
// paths clean.
func CleanConditionalConsume(ch chan *buf, full bool) {
	b := getBuf()
	if err := send(ch, b, full); err != nil {
		putBuf(b)
		return
	}
	<-b.done
	putBuf(b)
}

// CleanDeferredPut releases through a defer; the engine runs deferred
// calls at every exit before the leak check.
func CleanDeferredPut() int {
	b := getBuf()
	defer putBuf(b)
	return len(b.data)
}
