// Package fixturelockpair proves the declared internal/server nesting
// contract — Server.mu and Server.depMu are never held together — fires
// on the nested shapes (direct and through a helper) and stays silent
// on the sequential one. The matcher keys on the package path and the
// Type.field tail, so this fixture package under internal/server/ hits
// the same contract as the real deps.go.
package fixturelockpair

import "sync"

type Server struct {
	mu    sync.Mutex
	depMu sync.Mutex
	n     int
}

// BadNested holds the loop mu across a dep-table acquisition.
func (s *Server) BadNested() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.depMu.Lock() // want `lockpair acquires fixturelockpair.Server.depMu while holding fixturelockpair.Server.mu — deps.go contract: the dep-table mutex is never held together with the loop mu`
	s.n++
	s.depMu.Unlock()
}

// BadInterprocedural reaches the dep mu through a helper; the edge is
// attributed to the call made while mu is held.
func (s *Server) BadInterprocedural() {
	s.mu.Lock()
	s.bumpDep() // want `lockpair acquires fixturelockpair.Server.depMu while holding fixturelockpair.Server.mu`
	s.mu.Unlock()
}

func (s *Server) bumpDep() {
	s.depMu.Lock()
	s.n++
	s.depMu.Unlock()
}

// CleanSequential takes the two in sequence, never nested.
func (s *Server) CleanSequential() {
	s.depMu.Lock()
	s.n++
	s.depMu.Unlock()
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// CleanHelperAfterRelease calls the dep helper only after dropping mu.
func (s *Server) CleanHelperAfterRelease() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.bumpDep()
}
