// Package a exercises the call-graph builder's edge classification:
// static calls (direct, method, cross-package), self- and mutual
// recursion, method values, and function-typed field binds whose later
// dynamic calls stay unresolved.
package a

import "fixtures/callgraph/b"

// Rec is self-recursive.
func Rec(n int) int {
	if n == 0 {
		return 0
	}
	return Rec(n - 1)
}

// PingA and pingB are mutually recursive: one SCC.
func PingA() { pingB() }
func pingB() { PingA() }

type S struct{ closed bool }

func (s *S) Close() { s.closed = true }

// MethodValue returns s.Close as a value: a bind edge, not a call.
func MethodValue(s *S) func() { return s.Close }

// Node carries an On*-style callback field.
type Node struct{ OnFire func() }

func fire() {}

// Register binds fire into the field (bind edge); Run's dynamic call
// through the field contributes no edge.
func Register(n *Node) { n.OnFire = fire }

func Run(n *Node) { n.OnFire() }

// Cross statically calls into the sibling package.
func Cross() { b.Helper() }
