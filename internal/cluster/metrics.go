package cluster

import "flep/internal/obs"

// gwMetrics are the gateway's own instruments (flep_gateway_* families);
// node families arrive via /metrics relabeling, not re-registration.
type gwMetrics struct {
	Launches           *obs.Counter
	Accepted           *obs.Counter
	Retries            *obs.Counter
	RejectedSaturated  *obs.Counter
	RejectedUnroutable *obs.Counter
}

func newGWMetrics(reg *obs.Registry, g *Gateway) *gwMetrics {
	m := &gwMetrics{
		Launches: reg.Counter("flep_gateway_launches_total",
			"Launches the gateway received"),
		Accepted: reg.Counter("flep_gateway_accepted_total",
			"Launches a node accepted and completed with 200"),
		Retries: reg.Counter("flep_gateway_retries_total",
			"Launch attempts beyond the first candidate node"),
		RejectedSaturated: reg.Counter("flep_gateway_rejected_saturated_total",
			"Launches refused 429 because every node was saturated"),
		RejectedUnroutable: reg.Counter("flep_gateway_rejected_unroutable_total",
			"Launches refused 503 because no node was routable"),
	}
	reg.GaugeFunc("flep_gateway_nodes_ready",
		"Nodes currently eligible for routing", func() float64 { return float64(g.ReadyNodes()) })
	reg.GaugeFunc("flep_gateway_inflight",
		"Proxied launches currently awaiting a node response", func() float64 {
			g.mu.Lock()
			defer g.mu.Unlock()
			var total int64
			for _, n := range g.nodes {
				total += n.inflight
			}
			return float64(total)
		})
	return m
}
