// Package fixturedag exercises the looppurity analyzer on the
// dependency-table shape: a loop-rooted completion handler walks a
// graph's stages under a mutex that handler-side code also takes and
// answers canceled stages over per-request channels. The bare send and
// the shared lock are exactly what deps.go must annotate (bounded
// critical section, provably buffered channel) or restructure.
package fixturedag

import "sync"

type stage struct {
	parked bool
	done   chan string
}

// Server mirrors the daemon's shape: mu guards the stage table and is
// taken from both the loop goroutine and HTTP handlers.
type Server struct {
	mu     sync.Mutex // also taken by Park (handler side)
	stages map[string]*stage
	order  []string
}

// complete runs on the loop goroutine (rooted by name in
// internal/server packages).
func (s *Server) complete() {
	s.mu.Lock() // want `sharedlock s\.mu\.Lock`
	for _, name := range s.order {
		st := s.stages[name]
		if st.parked {
			st.parked = false
			st.done <- "canceled" // want `blockingsend channel send`
		}
	}
	s.mu.Unlock()
}

// Park is handler-side: it takes the same mutex the loop walks the
// table under, which is what makes mu a shared lock.
func (s *Server) Park(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stages[name] = &stage{parked: true, done: make(chan string, 1)}
	s.order = append(s.order, name)
}

// admit is also loop-rooted by name; its select-with-default send is
// the sanctioned non-blocking delivery.
func (s *Server) admit(name string) {
	st := s.stages[name]
	if st == nil {
		return
	}
	select {
	case st.done <- "admitted":
	default:
	}
}
