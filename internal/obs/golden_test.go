package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// populate builds a registry with a representative instrument mix. The
// order slice permutes family registration order, so two registries
// populated in different orders must still render identically — the
// exposition is sorted, never insertion-ordered.
func populate(order []int) *Registry {
	reg := NewRegistry()
	fams := []func(){
		func() {
			reg.Counter("flep_golden_launches_total", "Launches by outcome", "outcome", "completed").Add(41)
			reg.Counter("flep_golden_launches_total", "Launches by outcome", "outcome", "rejected").Add(3)
		},
		func() {
			reg.Gauge("flep_golden_queue_depth", "Pending launches").Set(7)
		},
		func() {
			h := reg.Histogram("flep_golden_wait_seconds", "Admission wait", []float64{0.001, 0.01, 0.1})
			h.Observe(0.0004)
			h.Observe(0.02)
			h.Observe(2.5)
		},
		func() {
			reg.GaugeFunc("flep_golden_uptime_ratio", "Constant for the golden file", func() float64 { return 0.5 })
		},
	}
	for _, i := range order {
		fams[i]()
	}
	return reg
}

// TestWritePrometheusGolden pins the exposition byte for byte against
// a checked-in golden file and proves registration order cannot leak
// into it. Run with -update to regenerate after deliberate format
// changes.
func TestWritePrometheusGolden(t *testing.T) {
	orders := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}}
	var rendered [][]byte
	for _, order := range orders {
		var b bytes.Buffer
		if err := populate(order).WritePrometheus(&b, "device", "0"); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		rendered = append(rendered, b.Bytes())
	}
	for i := 1; i < len(rendered); i++ {
		if !bytes.Equal(rendered[0], rendered[i]) {
			t.Fatalf("registration order %v leaked into the exposition:\n--- order %v ---\n%s\n--- order %v ---\n%s",
				orders[i], orders[0], rendered[0], orders[i], rendered[i])
		}
	}

	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, rendered[0], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run `go test ./internal/obs -run Golden -update` after deliberate format changes): %v", err)
	}
	if !bytes.Equal(rendered[0], want) {
		t.Fatalf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", rendered[0], want)
	}
}
