// Package metrics exercises the metrichygiene analyzer against the
// real obs API (resolved from the module via export data).
package metrics

import "flep/internal/obs"

// Register exercises naming and label rules.
func Register(r *obs.Registry, session string) {
	r.Counter("flep_fixture_events_total", "events observed")

	r.Counter("fixture_bad_name_total", "missing namespace") // want `metricname .*does not match flep_`

	name := "flep_computed_total"
	r.Counter(name, "computed name") // want `metricname metric name passed to Counter must be a string literal`

	r.Gauge("flep_fixture_sessions", "sessions by id", "session", session) // want `metriclabel label value is not a literal`

	// Distinct label values inside one family are the sanctioned
	// pattern (kind=primary / kind=guest in the runtime).
	r.Counter("flep_fixture_kind_total", "per-kind", "kind", "primary")
	r.Counter("flep_fixture_kind_total", "per-kind", "kind", "guest")
}

// RegisterDup registers families incoherently.
func RegisterDup(r *obs.Registry) {
	r.Gauge("flep_fixture_events_total", "events observed") // want `metricdup .*registered as Gauge but first registered as Counter`
	r.Counter("flep_fixture_kind_total", "different help")  // want `metricdup .*different help string`
	r.Counter("flep_fixture_once_total", "once")
	r.Counter("flep_fixture_once_total", "once") // want `metricdup .*more than one site`
}
