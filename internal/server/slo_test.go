package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestSLOAttainmentEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{Policy: "edf"})

	// VA/small solo is ~720µs: a 100ms budget attains comfortably.
	code, res := launch(t, ts.URL, LaunchRequest{
		Client: "lc", Benchmark: "VA", Class: "small", DeadlineMS: 100,
	})
	if code != http.StatusOK {
		t.Fatalf("code = %d (%+v)", code, res)
	}
	if res.SLO != "attained" || res.SLOMarginNS <= 0 || res.DeadlineVirtualNS == 0 {
		t.Fatalf("SLO fields: %+v", res)
	}
	if res.DeadlineVirtualNS-res.FinishedVirtualNS != res.SLOMarginNS {
		t.Fatalf("margin does not reconcile: %+v", res)
	}

	// VA/large runs ~30ms solo: a 1ms budget must be missed (and the
	// cost-aware EDF rule must not have drained anything for it).
	code, res = launch(t, ts.URL, LaunchRequest{
		Client: "lc", Benchmark: "VA", Class: "large", DeadlineMS: 1,
	})
	if code != http.StatusOK {
		t.Fatalf("code = %d (%+v)", code, res)
	}
	if res.SLO != "missed" || res.SLOMarginNS >= 0 {
		t.Fatalf("SLO fields: %+v", res)
	}

	// A best-effort launch carries no SLO fields.
	code, res = launch(t, ts.URL, LaunchRequest{Client: "be", Benchmark: "VA", Class: "small"})
	if code != http.StatusOK || res.SLO != "" || res.DeadlineVirtualNS != 0 {
		t.Fatalf("best-effort result carries SLO fields: %+v", res)
	}

	// Status, metrics, and sessions must all tell the same story.
	st := getStatus(t, ts.URL)
	if st.SLO.Attained != 1 || st.SLO.Missed != 1 || st.SLO.AttainRate != 0.5 {
		t.Fatalf("status SLO: %+v", st.SLO)
	}
	if st.Counters.SLOAttained != 1 || st.Counters.SLOMissed != 1 {
		t.Fatalf("status counters: %+v", st.Counters)
	}
	if got := s.met.SLOAttained.Value(); got != st.Counters.SLOAttained {
		t.Fatalf("flep_slo_attained_total = %d, status says %d", got, st.Counters.SLOAttained)
	}
	if got := s.met.SLOMissed.Value(); got != st.Counters.SLOMissed {
		t.Fatalf("flep_slo_missed_total = %d, status says %d", got, st.Counters.SLOMissed)
	}
	if n := s.met.SLOMargin.Count(); n != 2 {
		t.Fatalf("flep_slo_margin_seconds count = %d, want 2", n)
	}
	for _, snap := range s.SessionSnapshots() {
		switch snap.ID {
		case "lc":
			if snap.SLOAttained != 1 || snap.SLOMissed != 1 {
				t.Fatalf("lc session SLO: %+v", snap)
			}
		case "be":
			if snap.SLOAttained != 0 || snap.SLOMissed != 0 {
				t.Fatalf("be session SLO: %+v", snap)
			}
		}
	}
}

func TestSLOValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, req := range []LaunchRequest{
		{Benchmark: "VA", DeadlineMS: -5},
		{Benchmark: "VA", SLOClass: "latency"},                    // latency requires a deadline
		{Benchmark: "VA", SLOClass: "best_effort", DeadlineMS: 3}, // BE forbids one
		{Benchmark: "VA", SLOClass: "premium"},
	} {
		code, _ := launch(t, ts.URL, req)
		if code != http.StatusBadRequest {
			t.Fatalf("req %+v: code = %d, want 400", req, code)
		}
	}
	st := getStatus(t, ts.URL)
	if st.Counters.RejectedInvalid != 4 || st.Counters.Enqueued != 0 {
		t.Fatalf("counters: %+v", st.Counters)
	}
}

func TestBestEffortShedProtectsDeadlines(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 8})
	if err := s.Pause(); err != nil {
		t.Fatal(err)
	}
	results := make(chan LaunchResult, 16)
	post := func(req LaunchRequest) int {
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/launch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	accepted := 0
	goLaunch := func(req LaunchRequest) {
		go func() {
			_, res := launch(t, ts.URL, req)
			results <- res
		}()
		accepted++
	}

	// One deadline-bearing launch makes LC work outstanding.
	goLaunch(LaunchRequest{Client: "lc", Benchmark: "VA", Class: "trivial", DeadlineMS: 60000})
	waitFor(t, "LC launch queued", func() bool { return getStatus(t, ts.URL).QueueLen == 1 })

	// Fill the queue with best-effort work up to the shed limit.
	for getStatus(t, ts.URL).QueueLen < s.beLimit {
		goLaunch(LaunchRequest{Client: "be", Benchmark: "VA", Class: "trivial"})
		waitFor(t, "BE launch queued", func() bool { return getStatus(t, ts.URL).QueueLen == accepted })
	}

	// The next best-effort launch is shed with 429 even though the queue
	// still has room...
	if code := post(LaunchRequest{Client: "be", Benchmark: "VA", Class: "trivial"}); code != http.StatusTooManyRequests {
		t.Fatalf("BE past shed limit: code = %d, want 429", code)
	}
	// ...and that room is exactly what keeps deadline work admissible.
	goLaunch(LaunchRequest{Client: "lc", Benchmark: "VA", Class: "trivial", DeadlineMS: 60000})
	waitFor(t, "second LC queued", func() bool { return getStatus(t, ts.URL).QueueLen == accepted })

	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < accepted; i++ {
		if res := <-results; res.Err != "" {
			t.Fatalf("accepted launch failed: %+v", res)
		}
	}
	st := getStatus(t, ts.URL)
	if st.Counters.RejectedShed != 1 || st.SLO.BestEffortShed != 1 {
		t.Fatalf("shed accounting: counters=%+v slo=%+v", st.Counters, st.SLO)
	}
	if got := s.met.RejectedShed.Value(); got != 1 {
		t.Fatalf("rejected_best_effort_shed metric = %d, want 1", got)
	}
	// With no LC outstanding, best-effort admission is back to the full
	// queue: the same launch that was just shed now completes.
	if code := post(LaunchRequest{Client: "be", Benchmark: "VA", Class: "trivial"}); code != http.StatusOK {
		t.Fatalf("BE after LC drained: code = %d, want 200", code)
	}
}

func TestRetryAfterScalesWithQueueDepth(t *testing.T) {
	// Unit check on the estimator: deeper queues and slower drains wait
	// longer, clamped to [1, 60].
	perLaunch := 500 * time.Millisecond
	if got := retryAfterFor(1, perLaunch, 1); got != 1 {
		t.Fatalf("retryAfterFor(1) = %d, want 1", got)
	}
	if got := retryAfterFor(9, perLaunch, 1); got != 5 {
		t.Fatalf("retryAfterFor(9) = %d, want 5", got)
	}
	if got := retryAfterFor(1000, perLaunch, 1); got != 60 {
		t.Fatalf("retryAfterFor(1000) = %d, want clamp 60", got)
	}
	if got := retryAfterFor(50, 0, 1); got != 1 {
		t.Fatalf("retryAfterFor with no estimate = %d, want fallback 1", got)
	}
	// A fleet drains shards-times faster: the same backlog prices shorter.
	if got := retryAfterFor(9, perLaunch, 5); got != 1 {
		t.Fatalf("retryAfterFor(9, shards=5) = %d, want 1", got)
	}
	if got := retryAfterFor(1000, perLaunch, 10); got != 51 {
		t.Fatalf("retryAfterFor(1000, shards=10) = %d, want 51", got)
	}
	if got := retryAfterFor(1000, perLaunch, 2); got != 60 {
		t.Fatalf("retryAfterFor(1000, shards=2) = %d, want clamp 60", got)
	}
	if got := retryAfterFor(9, perLaunch, 0); got != 5 {
		t.Fatalf("retryAfterFor with shards=0 = %d, want single-shard 5", got)
	}

	// Regression check over HTTP: the header must scale with the rejected
	// request's observed queue depth (the old code always said 1).
	headerAt := func(depth int) int {
		s, ts := newTestServer(t, Config{QueueDepth: depth})
		s.svcEWMANS.Store(int64(time.Second)) // one completion per second
		if err := s.Pause(); err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		results := make(chan LaunchResult, depth)
		for i := 0; i < depth; i++ {
			go func() {
				_, res := launch(t, ts.URL, LaunchRequest{Client: "c", Benchmark: "VA", Class: "trivial"})
				results <- res
			}()
		}
		waitFor(t, "queue full", func() bool { return getStatus(t, ts.URL).QueueLen == depth })
		body, _ := json.Marshal(LaunchRequest{Client: "c", Benchmark: "VA", Class: "trivial"})
		resp, err := http.Post(ts.URL+"/v1/launch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("code = %d, want 429", resp.StatusCode)
		}
		var secs int
		if _, err := fmt.Sscanf(resp.Header.Get("Retry-After"), "%d", &secs); err != nil {
			t.Fatalf("Retry-After %q: %v", resp.Header.Get("Retry-After"), err)
		}
		if err := s.Resume(); err != nil {
			t.Fatal(err)
		}
		go func() {
			for i := 0; i < depth; i++ {
				<-results
			}
			close(done)
		}()
		<-done
		return secs
	}
	shallow := headerAt(2)
	deep := headerAt(16)
	if deep <= shallow {
		t.Fatalf("Retry-After did not scale with queue depth: depth 2 → %ds, depth 16 → %ds", shallow, deep)
	}
}

func TestValidationRejectsDoNotMaterializeSessions(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for i := 0; i < 8; i++ {
		req := LaunchRequest{Client: fmt.Sprintf("garbage-%d", i), Benchmark: "NOPE"}
		if code, _ := launch(t, ts.URL, req); code != http.StatusBadRequest {
			t.Fatalf("code = %d, want 400", code)
		}
	}
	if n := len(s.SessionSnapshots()); n != 0 {
		t.Fatalf("validation rejects created %d sessions, want 0", n)
	}
	// An established client's invalid request IS recorded on its session.
	if code, _ := launch(t, ts.URL, LaunchRequest{Client: "real", Benchmark: "VA", Class: "trivial"}); code != http.StatusOK {
		t.Fatal("setup launch failed")
	}
	if code, _ := launch(t, ts.URL, LaunchRequest{Client: "real", Benchmark: "NOPE"}); code != http.StatusBadRequest {
		t.Fatal("invalid launch not rejected")
	}
	snaps := s.SessionSnapshots()
	if len(snaps) != 1 || snaps[0].RejectedInvalid != 1 {
		t.Fatalf("sessions: %+v", snaps)
	}
}

func TestDrainingRejectsAccountedWithoutNewSessions(t *testing.T) {
	cfg := Config{Benchmarks: []string{"VA", "MM"}}
	s, err := NewWithSystem(testSystem(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := launch(t, ts.URL, LaunchRequest{Client: "known", Benchmark: "VA", Class: "trivial"}); code != http.StatusOK {
		t.Fatal("setup launch failed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// A known client's launch while draining lands on its session...
	if code, _ := launch(t, ts.URL, LaunchRequest{Client: "known", Benchmark: "VA"}); code != http.StatusServiceUnavailable {
		t.Fatal("draining daemon accepted a launch")
	}
	// ...and a stranger's creates no session at all.
	if code, _ := launch(t, ts.URL, LaunchRequest{Client: "stranger", Benchmark: "VA"}); code != http.StatusServiceUnavailable {
		t.Fatal("draining daemon accepted a launch")
	}
	snaps := s.SessionSnapshots()
	if len(snaps) != 1 || snaps[0].ID != "known" || snaps[0].RejectedDraining != 1 {
		t.Fatalf("sessions after draining rejects: %+v", snaps)
	}
	if c := s.Counters(); c["rejected_draining"] != 2 {
		t.Fatalf("counters: %+v", c)
	}
}

func TestCanceledWaiterTrackedPerSession(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if err := s.Pause(); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(LaunchRequest{Client: "quitter", Benchmark: "VA", Class: "trivial"})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/launch", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	errCh := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errCh <- err
	}()
	waitFor(t, "launch queued", func() bool { return getStatus(t, ts.URL).QueueLen == 1 })
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("canceled request did not error client-side")
	}
	waitFor(t, "cancel recorded", func() bool { return s.Counters()["canceled"] == 1 })

	snaps := s.SessionSnapshots()
	if len(snaps) != 1 || snaps[0].Canceled != 1 {
		t.Fatalf("sessions: %+v", snaps)
	}
	// The invocation is not lost: resume and it completes.
	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "invocation completed", func() bool { return s.Counters()["completed"] == 1 })
}
