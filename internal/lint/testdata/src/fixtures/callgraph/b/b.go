// Package b is the cross-package callee half of the call-graph fixture.
package b

func Helper() {}
