package core

import (
	"testing"
	"time"

	"flep/internal/kernels"
	"flep/internal/workload"
)

func TestKernelRunsNormalization(t *testing.T) {
	s := testSystem(t)
	va, _ := kernels.ByName("VA")
	nn, _ := kernels.ByName("NN")
	sc := workload.EqualPair(va, nn)
	res, err := s.RunMPS(sc)
	if err != nil {
		t.Fatal(err)
	}
	runs, err := s.KernelRuns(sc, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("runs = %d", len(runs))
	}
	for _, r := range runs {
		if r.Alone <= 0 || r.Turnaround < r.Alone {
			t.Fatalf("run %+v: turnaround below solo time", r)
		}
	}
}

func TestSoloPersistentSlowerThanOriginal(t *testing.T) {
	s := testSystem(t)
	for _, name := range []string{"VA", "CFD"} {
		b, _ := kernels.ByName(name)
		a := s.Artifacts(name)
		orig, err := s.SoloTime(b, kernels.Large)
		if err != nil {
			t.Fatal(err)
		}
		pers, err := s.SoloPersistentTime(b, kernels.Large, a.L)
		if err != nil {
			t.Fatal(err)
		}
		if pers <= orig {
			t.Fatalf("%s: persistent (%v) not slower than original (%v)", name, pers, orig)
		}
		overhead := (pers - orig).Seconds() / orig.Seconds()
		if overhead >= 0.045 {
			t.Fatalf("%s: overhead %.2f%% above the tuning budget", name, overhead*100)
		}
	}
}

func TestArtifactTransformedSourceValid(t *testing.T) {
	s := testSystem(t)
	for _, b := range kernels.All() {
		a := s.Artifacts(b.Name)
		if a.Info.Mode.String() != "spatial" {
			t.Errorf("%s: artifacts built in %v mode, want spatial", b.Name, a.Info.Mode)
		}
		if a.Transformed.Kernel(a.Info.Preemptable) == nil {
			t.Errorf("%s: preemptable kernel missing from transformed program", b.Name)
		}
	}
}

func TestResultForMissing(t *testing.T) {
	r := &RunResult{}
	if r.ResultFor("nope") != nil {
		t.Fatal("ResultFor on empty result")
	}
}

func TestTasksOverrideRespected(t *testing.T) {
	s := testSystem(t)
	nn, _ := kernels.ByName("NN")
	cfd, _ := kernels.ByName("CFD")
	sc := workload.SpatialPair(nn, cfd)
	sc.Items[1].TasksOverride = 16
	res, err := s.RunFLEP(sc, Options{Policy: "hpf", Spatial: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	// With only 16 CTAs (2 SMs at occupancy 8), the spatial drain must
	// free exactly 2 SMs.
	saw := false
	for _, e := range res.Log.Filter("drained") {
		if e.Kernel == "CFD" && e.SMHi-e.SMLo == 2 {
			saw = true
		}
	}
	if !saw {
		t.Fatal("16-CTA override did not yield a 2-SM spatial drain")
	}
}

func TestFigure9StyleDelayBeyondCompletion(t *testing.T) {
	s := testSystem(t)
	spmv, _ := kernels.ByName("SPMV")
	nn, _ := kernels.ByName("NN")
	nnSolo, err := s.SoloTime(nn, kernels.Large)
	if err != nil {
		t.Fatal(err)
	}
	// High-priority kernel arrives after the low one already finished:
	// speedup must be ≈ 1 (nothing to preempt).
	sc := workload.PriorityPair(spmv, nn, nnSolo+time.Millisecond)
	mps, err := s.RunMPS(sc)
	if err != nil {
		t.Fatal(err)
	}
	flep, err := s.RunFLEP(sc, Options{Policy: "hpf"})
	if err != nil {
		t.Fatal(err)
	}
	ratio := mps.ResultFor("SPMV").Turnaround().Seconds() / flep.ResultFor("SPMV").Turnaround().Seconds()
	if ratio < 0.9 || ratio > 1.15 {
		t.Fatalf("speedup with idle GPU = %.2f, want ≈1", ratio)
	}
}
