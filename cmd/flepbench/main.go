// Command flepbench regenerates every table and figure of the paper's
// evaluation and prints them as aligned text tables (or writes them to a
// file). The "note:" lines under each table state the paper's reported
// values next to the measured ones.
//
// Usage:
//
//	flepbench                  # all artifacts
//	flepbench -only fig8,fig15 # a subset
//	flepbench -out results.txt # write to a file
//	flepbench -list            # list artifact IDs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"flep/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated artifact IDs (default: all)")
	out := flag.String("out", "", "output file (default: stdout)")
	list := flag.Bool("list", false, "list artifact IDs and exit")
	flag.Parse()

	gens := experiments.Generators()
	if *list {
		for _, g := range gens {
			fmt.Println(g.ID)
		}
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}

	fmt.Fprintln(os.Stderr, "flepbench: offline phase (transform, tune, train, profile all kernels)...")
	start := time.Now()
	suite, err := experiments.NewSuite()
	if err != nil {
		fatalf("offline: %v", err)
	}
	fmt.Fprintf(os.Stderr, "flepbench: offline done in %v\n", time.Since(start).Round(time.Millisecond))

	for _, g := range gens {
		if len(want) > 0 && !want[g.ID] {
			continue
		}
		t0 := time.Now()
		tab, err := g.Run(suite)
		if err != nil {
			fatalf("%s: %v", g.ID, err)
		}
		fmt.Fprintln(w, tab.Format())
		fmt.Fprintf(os.Stderr, "flepbench: %s regenerated in %v\n", g.ID, time.Since(t0).Round(time.Millisecond))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "flepbench: "+format+"\n", args...)
	os.Exit(1)
}
