package cluster

import (
	"encoding/json"
	"net/http"
	"net/url"
	"sort"
	"sync"

	"flep/internal/obs"
	"flep/internal/server"
	"flep/internal/trace"
)

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Handler returns the gateway's HTTP API: the flepd /v1 surface plus the
// cluster-management endpoints.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/launch", g.handleLaunch)
	mux.HandleFunc("GET /v1/status", g.handleStatus)
	mux.HandleFunc("GET /v1/sessions", g.handleSessions)
	mux.HandleFunc("GET /v1/benchmarks", g.handleBenchmarks)
	mux.HandleFunc("GET /v1/trace", g.handleTrace)
	mux.HandleFunc("GET /v1/nodes", g.handleNodes)
	mux.HandleFunc("POST /v1/nodes/{id}/drain", g.handleDrain)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /readyz", g.handleReadyz)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	return mux
}

// fetchTarget is one node to aggregate from, snapshotted outside I/O.
type fetchTarget struct {
	id, addr string
}

// fetchTargets lists the nodes aggregation endpoints consult: everything
// not removed (a draining or momentarily-down node still holds state the
// cluster view must include).
func (g *Gateway) fetchTargets() []fetchTarget {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]fetchTarget, 0, len(g.nodes))
	for _, n := range g.nodes {
		if n.removed {
			continue
		}
		out = append(out, fetchTarget{id: n.id, addr: n.addr})
	}
	return out
}

// fetchEach runs one fetch per target concurrently and hands each result
// to merge in target order (merge runs on the caller's goroutine, so it
// needs no locking of its own). Unreachable nodes are skipped: the
// cluster view is the view of the nodes that answered.
func fetchEach[T any](targets []fetchTarget, fetch func(fetchTarget) (T, error), merge func(fetchTarget, T)) {
	results := make([]*T, len(targets))
	var wg sync.WaitGroup
	for i, tgt := range targets {
		wg.Add(1)
		go func(i int, tgt fetchTarget) {
			defer wg.Done()
			if v, err := fetch(tgt); err == nil {
				results[i] = &v
			}
		}(i, tgt)
	}
	wg.Wait()
	for i, tgt := range targets {
		if results[i] != nil {
			merge(tgt, *results[i])
		}
	}
}

// ClusterStatus is the gateway's /v1/status: the familiar flepd status
// shape with counters and queue figures summed over the nodes that
// answered (so a client's exactly-once verification works against the
// gateway unchanged), plus the per-node breakdown.
type ClusterStatus struct {
	server.Status
	Nodes []NodeStatus `json:"nodes"`
}

func (g *Gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	targets := g.fetchTargets()
	cs := ClusterStatus{}
	cs.Device = -1
	cs.UptimeMS = g.uptimeMS()
	cs.ExactlyOnceOK = true
	first := true
	fetchEach(targets,
		func(tgt fetchTarget) (server.Status, error) {
			var st server.Status
			err := getJSON(g.cfg.Client, tgt.addr+"/v1/status", &st)
			return st, err
		},
		func(tgt fetchTarget, st server.Status) {
			if first {
				cs.Policy, cs.Spatial = st.Policy, st.Spatial
				first = false
			}
			cs.QueueLen += st.QueueLen
			cs.QueueCap += st.QueueCap
			cs.MemoryFreeBytes += st.MemoryFreeBytes
			cs.Sessions += st.Sessions
			cs.TraceEntries += st.TraceEntries
			cs.TraceDropped += st.TraceDropped
			cs.Paused = cs.Paused || st.Paused
			cs.Draining = cs.Draining || st.Draining
			if st.VirtualNowUS > cs.VirtualNowUS {
				cs.VirtualNowUS = st.VirtualNowUS
			}
			cs.ExactlyOnceOK = cs.ExactlyOnceOK && st.ExactlyOnceOK
			a, b := &cs.Counters, st.Counters
			a.Enqueued += b.Enqueued
			a.Completed += b.Completed
			a.SubmitErrors += b.SubmitErrors
			a.RejectedFull += b.RejectedFull
			a.RejectedDraining += b.RejectedDraining
			a.RejectedInvalid += b.RejectedInvalid
			a.TimedOut += b.TimedOut
			a.Canceled += b.Canceled
		})
	cs.Nodes = g.nodeStatuses()
	writeJSON(w, http.StatusOK, cs)
}

// ClusterSession is one client's cluster-wide session view: the merged
// per-node snapshot plus which nodes served it (one node per client
// while its home node stays healthy — the affinity contract).
type ClusterSession struct {
	server.SessionSnapshot
	Nodes []string `json:"nodes"`
}

func (g *Gateway) handleSessions(w http.ResponseWriter, r *http.Request) {
	merged := map[string]*ClusterSession{}
	fetchEach(g.fetchTargets(),
		func(tgt fetchTarget) ([]server.SessionSnapshot, error) {
			var snaps []server.SessionSnapshot
			err := getJSON(g.cfg.Client, tgt.addr+"/v1/sessions", &snaps)
			return snaps, err
		},
		func(tgt fetchTarget, snaps []server.SessionSnapshot) {
			for _, snap := range snaps {
				m, ok := merged[snap.ID]
				if !ok {
					merged[snap.ID] = &ClusterSession{SessionSnapshot: snap, Nodes: []string{tgt.id}}
					continue
				}
				// Same completion-weighted merge the fleet applies across
				// shards, lifted across nodes.
				total := m.Completed + snap.Completed
				if total > 0 {
					m.MeanTurnUS = (m.MeanTurnUS*float64(m.Completed) + snap.MeanTurnUS*float64(snap.Completed)) / float64(total)
					m.MeanWaitUS = (m.MeanWaitUS*float64(m.Completed) + snap.MeanWaitUS*float64(snap.Completed)) / float64(total)
				}
				m.Launches += snap.Launches
				m.InFlight += snap.InFlight
				m.Completed += snap.Completed
				m.SubmitErrors += snap.SubmitErrors
				m.RejectedFull += snap.RejectedFull
				m.TimedOut += snap.TimedOut
				m.Preemptions += snap.Preemptions
				if snap.FirstSeenUnix < m.FirstSeenUnix {
					m.FirstSeenUnix = snap.FirstSeenUnix
				}
				if snap.LastFinishUS > m.LastFinishUS {
					m.LastFinishUS = snap.LastFinishUS
				}
				if m.Launches > m.Completed+m.SubmitErrors {
					m.HostState = "S2/S3 (awaiting schedule or GPU)"
				} else {
					m.HostState = "S1 (cpu)"
				}
				m.Nodes = append(m.Nodes, tgt.id)
			}
		})
	ids := make([]string, 0, len(merged))
	for id := range merged {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]ClusterSession, 0, len(ids))
	for _, id := range ids {
		out = append(out, *merged[id])
	}
	writeJSON(w, http.StatusOK, out)
}

// handleBenchmarks relays the first answering node's catalog (catalogs
// are identical across a homogeneous cluster).
func (g *Gateway) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	for _, tgt := range g.fetchTargets() {
		var benches []server.BenchmarkInfo
		if err := getJSON(g.cfg.Client, tgt.addr+"/v1/benchmarks", &benches); err == nil {
			writeJSON(w, http.StatusOK, benches)
			return
		}
	}
	writeJSON(w, http.StatusServiceUnavailable, apiError{"no node answered /v1/benchmarks"})
}

// handleTrace merges the nodes' trace streams into one global
// (Time, Node, Device)-ordered stream, each entry stamped with its node.
func (g *Gateway) handleTrace(w http.ResponseWriter, r *http.Request) {
	targets := g.fetchTargets()
	q := ""
	if kind := r.URL.Query().Get("kind"); kind != "" {
		q = "?kind=" + url.QueryEscape(kind)
	}
	streams := make([][]trace.Entry, 0, len(targets))
	fetchEach(targets,
		func(tgt fetchTarget) ([]trace.Entry, error) {
			var entries []trace.Entry
			err := getJSON(g.cfg.Client, tgt.addr+"/v1/trace"+q, &entries)
			return entries, err
		},
		func(tgt fetchTarget, entries []trace.Entry) {
			for i := range entries {
				entries[i].Node = tgt.id
			}
			streams = append(streams, entries)
		})
	if len(streams) == 0 {
		writeJSON(w, http.StatusNotFound, apiError{"no node served a trace (start flepd with -trace)"})
		return
	}
	writeJSON(w, http.StatusOK, trace.Merge(streams))
}

func (g *Gateway) handleNodes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.nodeStatuses())
}

func (g *Gateway) handleDrain(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := g.Drain(id); err != nil {
		writeJSON(w, http.StatusNotFound, apiError{err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"node": id, "state": "draining"})
}

// handleHealthz is the gateway's own liveness: 200 while it serves.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}

// handleReadyz is routability: the gateway is ready iff at least one
// node is.
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if g.ReadyNodes() == 0 {
		http.Error(w, "no ready nodes", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ready\n"))
}

// handleMetrics writes the gateway's own families, then each node's
// exposition with a node label injected into every sample — one scrape
// answers both "how is the gateway routing?" and "what is each node
// doing?", and label-subset sums (obs.SumMatching without the node key)
// recover cluster-wide totals.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := g.reg.WritePrometheus(w); err != nil {
		return
	}
	for _, tgt := range g.fetchTargets() {
		resp, err := g.cfg.Client.Get(tgt.addr + "/metrics")
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			continue
		}
		err = obs.RelabelText(w, resp.Body, "node", tgt.id)
		resp.Body.Close()
		if err != nil {
			return
		}
	}
}
