package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"flep/internal/lint/analysis"
)

// MapOrderAnalyzer flags `range` over a map whose body feeds an
// order-sensitive sink: appending to a slice declared outside the loop
// (unless the slice is sorted later in the same function), printing,
// writing to a writer/builder, or feeding an encoder or hash. This is
// the exact bug class that breaks byte-identical Summary/what-if
// output — Go randomizes map iteration order on purpose, so any output
// assembled in that order differs run to run.
var MapOrderAnalyzer = &analysis.Analyzer{
	Name:       "maporder",
	Doc:        "flag map iteration feeding ordered output without an intervening sort",
	Categories: []string{"maporder"},
	Run:        runMapOrder,
}

func runMapOrder(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		// Walk function by function so "is it sorted later?" has a scope
		// to search.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			checkMapRanges(pass, body)
			return true
		})
	}
	return nil, nil
}

// checkMapRanges finds map-ranges directly inside fnBody (not inside
// nested function literals, which are walked as their own functions).
func checkMapRanges(pass *analysis.Pass, fnBody *ast.BlockStmt) {
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != fnBody.Pos() {
			return false // separate function scope
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, fnBody, rs)
		return true
	})
}

func checkMapRangeBody(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		// A function literal built inside the loop runs when invoked,
		// not per-iteration: appends/writes in a callback body take
		// their order from the call site, not from the map.
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				target, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Uses[target]
				if obj == nil {
					obj = pass.TypesInfo.Defs[target]
				}
				// Only slices that outlive the loop leak its order.
				if obj == nil || obj.Pos() >= rs.Pos() {
					continue
				}
				if sortedAfter(pass, fnBody, rs, obj) {
					continue
				}
				pass.Reportf(n.Pos(), "maporder",
					"append to %s inside map iteration leaks nondeterministic order (no sort of %s follows in this function); sort it or collect keys first",
					target.Name, target.Name)
			}
		case *ast.CallExpr:
			if sink, name := outputSink(pass, n); sink {
				pass.Reportf(n.Pos(), "maporder",
					"%s inside map iteration emits output in nondeterministic order; iterate sorted keys instead",
					name)
			}
		}
		return true
	})
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether the function body contains, after the
// range statement, a call into sort or slices that mentions obj — the
// canonical collect-then-sort idiom.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentions(pass, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func mentions(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	hit := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			hit = true
			return false
		}
		return true
	})
	return hit
}

// outputSink classifies calls that serialize in call order: fmt
// printing, writer/builder writes, and encoder/hash feeds.
func outputSink(pass *analysis.Pass, call *ast.CallExpr) (bool, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false, ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false, ""
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		name := fn.Name()
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") {
			return true, "fmt." + name
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
			return true, fn.Name()
		}
	}
	return false, ""
}
