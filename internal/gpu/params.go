// Package gpu models a Kepler-class GPU at the granularity FLEP cares
// about: SMs with CTA slots, a non-preemptive hardware CTA dispatcher,
// persistent-thread executions with flag polling, and the latency costs of
// preemption. Execution progress is fluid (task rates between events)
// driven by a discrete-event engine, which keeps million-task kernels cheap
// to simulate while preserving wave, drain and contention behaviour.
package gpu

import (
	"time"

	"flep/internal/transform"
)

// Params are the device's calibration constants. All latencies model the
// paper's testbed (K40, PCIe 3, CUDA 7.0); see DESIGN.md §6.
type Params struct {
	// Limits are the SM resource limits used for occupancy.
	Limits transform.DeviceLimits

	// LaunchLatency is the host-side cost of one kernel launch command
	// (driver + command queue). Paid by every launch, which is what makes
	// fine-grained kernel slicing expensive.
	LaunchLatency time.Duration

	// PinnedReadLatency is the device-visible cost of the CTA leader's
	// read of the preemption flag in host pinned memory (one PCIe round
	// trip amortized over the CTA), paid once per L tasks.
	PinnedReadLatency time.Duration

	// TaskAtomicLatency is the per-task cost of the global task-counter
	// atomicAdd (pipelined device atomics).
	TaskAtomicLatency time.Duration

	// FlagPropagation is the delay from the CPU writing the pinned flag
	// to device visibility.
	FlagPropagation time.Duration

	// ColdRestart is the warm-up penalty paid when a preempted kernel is
	// relaunched: its working set (L2, TLB, icache) was evicted by the
	// preempting kernel and must be re-fetched. Sequential slices of the
	// same kernel do not pay it; preemption resumes do.
	ColdRestart time.Duration

	// MixBonus is the maximum per-task speedup when CTAs of kernels with
	// different memory intensity co-reside on an SM (heterogeneous
	// spatial sharing utilizes the SM better; paper §6.4).
	MixBonus float64

	// MemoryBytes is the device memory capacity. FLEP assumes co-running
	// working sets fit (§8, "FLEP currently assumes the combined working
	// set can fit into the device memory"); the model makes that
	// assumption explicit: reservations beyond capacity are rejected.
	MemoryBytes int64
}

// DefaultParams returns the calibrated K40 model.
func DefaultParams() Params {
	return Params{
		Limits:            transform.K40(),
		LaunchLatency:     6 * time.Microsecond,
		PinnedReadLatency: 1200 * time.Nanosecond,
		TaskAtomicLatency: 10 * time.Nanosecond,
		FlagPropagation:   1 * time.Microsecond,
		ColdRestart:       15 * time.Microsecond,
		MixBonus:          0.08,
		MemoryBytes:       12 << 30, // K40: 12 GB GDDR5
	}
}

// KernelProfile is the execution-relevant shape of one kernel, derived
// offline by the compilation engine (occupancy) and profiling (intensity).
type KernelProfile struct {
	// Name identifies the kernel in traces and metrics.
	Name string
	// ThreadsPerCTA is the CTA size.
	ThreadsPerCTA int
	// CTAsPerSM is the kernel's occupancy (max active CTAs per SM).
	CTAsPerSM int
	// MemoryIntensity in [0,1]: fraction of task time bound by the
	// memory system; drives contention and mix effects.
	MemoryIntensity float64
	// ContentionFloor in (0,1]: relative task duration when a CTA runs
	// alone on an SM versus at full occupancy. Memory-bound kernels with
	// good latency hiding have a low floor (lone CTAs run much faster);
	// compute-saturated kernels sit near 1.
	ContentionFloor float64
}

// speedFactor returns the task-duration multiplier when the host SM has k
// resident CTAs, with kmax the kernel's occupancy. Calibrated so full
// occupancy is 1.0 (solo-run times are measured at full occupancy).
func (p *KernelProfile) speedFactor(k int) float64 {
	kmax := p.CTAsPerSM
	if kmax <= 0 {
		kmax = 1
	}
	if k > kmax {
		k = kmax
	}
	if k < 1 {
		k = 1
	}
	f := p.ContentionFloor
	if f <= 0 || f > 1 {
		f = 1
	}
	return f + (1-f)*float64(k)/float64(kmax)
}
