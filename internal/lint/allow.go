package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"

	"flep/internal/lint/analysis"
)

// The escape hatch. A finding is deliberate — the server boundary reads
// the wall clock, a send is provably non-blocking — exactly when a
// comment says so:
//
//	//flepvet:allow wallclock -- flepd stamps real arrival times at the boundary
//
// The annotation names one or more categories (comma-separated) and
// MUST carry a reason after ` -- `; an annotation without a reason is
// itself a diagnostic, so the suite's acceptance bar ("every allow has
// a reason") is machine-checked rather than reviewed. An annotation
// suppresses matching findings on its own line and on the line below
// it (comment-above-statement style).
var allowRE = regexp.MustCompile(`^//flepvet:allow\s+([a-z][a-z0-9_,]*)\s*(?:--\s*(.*))?$`)

// allowEntry is one parsed annotation.
type allowEntry struct {
	categories map[string]bool
	line       int
	file       string
}

// allowIndex locates annotations by (file, line).
type allowIndex struct {
	entries []allowEntry
}

// suppressed reports whether a finding at pos with the category is
// covered by an annotation on its line or the line above.
func (ai *allowIndex) suppressed(pos token.Position, category string) bool {
	for _, e := range ai.entries {
		if e.file != pos.Filename {
			continue
		}
		if (e.line == pos.Line || e.line == pos.Line-1) && e.categories[category] {
			return true
		}
	}
	return false
}

// collectAllows parses every flepvet:allow annotation in the files and
// diagnoses malformed ones (missing reason, unknown category).
func collectAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) (*allowIndex, []analysis.Diagnostic) {
	idx := &allowIndex{}
	var diags []analysis.Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, "//flepvet:allow") {
					continue
				}
				m := allowRE.FindStringSubmatch(text)
				if m == nil {
					diags = append(diags, analysis.Diagnostic{
						Pos: c.Pos(), Category: "allowform",
						Message: "malformed flepvet:allow annotation (want `//flepvet:allow <category>[,<category>] -- reason`)",
					})
					continue
				}
				if strings.TrimSpace(m[2]) == "" {
					diags = append(diags, analysis.Diagnostic{
						Pos: c.Pos(), Category: "allowform",
						Message: "flepvet:allow annotation is missing its reason (append ` -- <why this is safe>`)",
					})
					continue
				}
				cats := map[string]bool{}
				for _, cat := range strings.Split(m[1], ",") {
					cat = strings.TrimSpace(cat)
					if cat == "" {
						continue
					}
					if !known[cat] {
						diags = append(diags, analysis.Diagnostic{
							Pos: c.Pos(), Category: "allowform",
							Message: "flepvet:allow names unknown category " + cat,
						})
						continue
					}
					cats[cat] = true
				}
				pos := fset.Position(c.Pos())
				idx.entries = append(idx.entries, allowEntry{
					categories: cats, line: pos.Line, file: pos.Filename,
				})
			}
		}
	}
	return idx, diags
}
