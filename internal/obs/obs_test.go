package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(2)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	var r *Registry
	if r.Counter("x", "h") != nil || r.Gauge("x", "h") != nil || r.Histogram("x", "h", nil) != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	r.GaugeFunc("x", "h", func() float64 { return 1 })
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("flep_test_total", "test counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	// Idempotent registration returns the same instrument.
	if r.Counter("flep_test_total", "test counter") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("flep_test_gauge", "test gauge")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %g", g.Value())
	}
}

func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("flep_preemptions_total", "preemptions", "mode", "temporal")
	b := r.Counter("flep_preemptions_total", "preemptions", "mode", "spatial")
	if a == b {
		t.Fatal("distinct labels must get distinct counters")
	}
	a.Add(3)
	b.Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if strings.Count(text, "# TYPE flep_preemptions_total counter") != 1 {
		t.Fatalf("family header not emitted exactly once:\n%s", text)
	}
	for _, want := range []string{
		`flep_preemptions_total{mode="temporal"} 3`,
		`flep_preemptions_total{mode="spatial"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("flep_lat_seconds", "latency", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.05, 0.5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-0.5555) > 1e-9 {
		t.Fatalf("sum = %g", h.Sum())
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`flep_lat_seconds_bucket{le="0.001"} 1`,
		`flep_lat_seconds_bucket{le="0.01"} 2`,
		`flep_lat_seconds_bucket{le="0.1"} 3`,
		`flep_lat_seconds_bucket{le="+Inf"} 4`,
		`flep_lat_seconds_count 4`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
}

func TestGaugeFuncEvaluatedAtScrape(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.GaugeFunc("flep_depth", "depth", func() float64 { return v })
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "flep_depth 1") {
		t.Fatalf("scrape 1:\n%s", buf.String())
	}
	v = 7
	buf.Reset()
	r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "flep_depth 7") {
		t.Fatalf("scrape 2:\n%s", buf.String())
	}
}

func TestDurationBucketsAscending(t *testing.T) {
	b := DurationBuckets()
	if len(b) < 10 {
		t.Fatalf("too few buckets: %v", b)
	}
	if b[0] > 1e-6 || b[len(b)-1] < 10 {
		t.Fatalf("bucket range [%g, %g] does not cover 1µs..10s", b[0], b[len(b)-1])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %v", i, b)
		}
	}
}

func TestParseTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("flep_a_total", "a").Add(12)
	r.Counter("flep_b_total", "b", "mode", "x").Add(3)
	r.Counter("flep_b_total", "b", "mode", "y").Add(4)
	r.Gauge("flep_g", "g").Set(2.25)
	h := r.Histogram("flep_h_seconds", "h", []float64{0.01})
	h.Observe(0.005)
	h.Observe(1)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("ParseText: %v\n%s", err, buf.String())
	}
	if v, _ := snap.Get("flep_a_total"); v != 12 {
		t.Fatalf("a = %g", v)
	}
	if snap.SumFamily("flep_b_total") != 7 {
		t.Fatalf("b family sum = %g", snap.SumFamily("flep_b_total"))
	}
	if v, _ := snap.Get("flep_g"); v != 2.25 {
		t.Fatalf("g = %g", v)
	}
	if v, _ := snap.Get(`flep_h_seconds_bucket{le="+Inf"}`); v != 2 {
		t.Fatalf("+Inf bucket = %g", v)
	}
	if v, _ := snap.Get("flep_h_seconds_count"); v != 2 {
		t.Fatalf("count = %g", v)
	}
	if Delta(Snapshot{"flep_a_total": 2}, snap, "flep_a_total") != 10 {
		t.Fatal("delta arithmetic broken")
	}
}

func TestParseTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"nonsense", "x{unterminated 3", "x notanumber"} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Fatalf("ParseText accepted %q", bad)
		}
	}
}

func TestConcurrentScrapeAndUpdate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("flep_c_total", "c")
	h := r.Histogram("flep_h_seconds", "h", nil)
	g := r.Gauge("flep_g", "g")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Inc()
			g.Add(1)
			h.Observe(float64(i%10) / 1000)
		}
	}()
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseText(&buf); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
