package perfmodel

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func secs(v float64) time.Duration { return time.Duration(v * float64(time.Second)) }

func TestTrainRecoversLinearRelation(t *testing.T) {
	// duration = 2e-9*grid + 1e-12*bytes + 5e-6
	rng := rand.New(rand.NewSource(1))
	var samples []Sample
	for i := 0; i < 100; i++ {
		g := float64(rng.Intn(1_000_000) + 100)
		by := g * 3072
		d := 2e-9*g + 1e-12*by + 5e-6
		samples = append(samples, Sample{
			F:        Features{GridSize: g, CTASize: 256, InputBytes: by, SharedBytes: 0},
			Duration: secs(d),
		})
	}
	m, err := Train(samples, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		g := float64(rng.Intn(1_000_000) + 100)
		by := g * 3072
		want := 2e-9*g + 1e-12*by + 5e-6
		got := m.Predict(Features{GridSize: g, CTASize: 256, InputBytes: by}).Seconds()
		if math.Abs(got-want)/want > 0.02 {
			t.Fatalf("predict(%g) = %g, want %g", g, got, want)
		}
	}
}

func TestTrainHandlesConstantFeatures(t *testing.T) {
	// CTASize and SharedBytes constant: must not blow up.
	var samples []Sample
	for i := 1; i <= 50; i++ {
		g := float64(i * 1000)
		samples = append(samples, Sample{
			F:        Features{GridSize: g, CTASize: 256, InputBytes: g * 4, SharedBytes: 2048},
			Duration: secs(1e-8 * g),
		})
	}
	m, err := Train(samples, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Predict(Features{GridSize: 25500, CTASize: 256, InputBytes: 25500 * 4, SharedBytes: 2048})
	want := secs(1e-8 * 25500)
	if math.Abs(got.Seconds()-want.Seconds())/want.Seconds() > 0.02 {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTrainTooFewSamples(t *testing.T) {
	if _, err := Train([]Sample{{Duration: time.Second}}, 0); err == nil {
		t.Fatal("expected error for 1 sample")
	}
}

func TestPredictNeverNegative(t *testing.T) {
	samples := []Sample{
		{F: Features{GridSize: 100}, Duration: secs(1e-6)},
		{F: Features{GridSize: 200}, Duration: secs(2e-6)},
		{F: Features{GridSize: 300}, Duration: secs(3e-6)},
	}
	m, err := Train(samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := m.Predict(Features{GridSize: -1e9}); d < 0 {
		t.Fatalf("negative prediction %v", d)
	}
}

func TestRidgeShrinksWithLambda(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var samples []Sample
	for i := 0; i < 60; i++ {
		g := float64(rng.Intn(100000) + 1)
		samples = append(samples, Sample{
			F:        Features{GridSize: g, CTASize: float64(64 * (rng.Intn(4) + 1)), InputBytes: g * 8, SharedBytes: float64(rng.Intn(4096))},
			Duration: secs(1e-8*g + rng.Float64()*1e-5),
		})
	}
	small, err := Train(samples, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Train(samples, 1e3)
	if err != nil {
		t.Fatal(err)
	}
	norm := func(m *Model) float64 {
		s := 0.0
		for _, w := range m.weights {
			s += w * w
		}
		return s
	}
	if norm(big) >= norm(small) {
		t.Fatalf("ridge penalty did not shrink weights: %g vs %g", norm(big), norm(small))
	}
}

func TestMAPEZeroOnPerfectFit(t *testing.T) {
	var samples []Sample
	for i := 1; i <= 30; i++ {
		g := float64(i * 100)
		samples = append(samples, Sample{F: Features{GridSize: g}, Duration: secs(1e-7 * g)})
	}
	m, err := Train(samples, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if e := m.MAPE(samples); e > 0.01 {
		t.Fatalf("MAPE on training set = %f", e)
	}
	if e := m.MAPE(nil); e != 0 {
		t.Fatalf("MAPE(nil) = %f", e)
	}
}

func TestNoisyDataMAPETracksNoise(t *testing.T) {
	// With multiplicative noise sigma, a correct linear model's MAPE
	// should land near E|eta| = sigma*sqrt(2/pi).
	rng := rand.New(rand.NewSource(3))
	sigma := 0.10
	gen := func(n int, seedOff int64) []Sample {
		r := rand.New(rand.NewSource(3 + seedOff))
		var out []Sample
		for i := 0; i < n; i++ {
			g := float64(r.Intn(1_000_000) + 1000)
			d := 1e-8 * g * (1 + sigma*r.NormFloat64())
			out = append(out, Sample{F: Features{GridSize: g, InputBytes: g * 4}, Duration: secs(d)})
		}
		return out
	}
	_ = rng
	train := gen(100, 0)
	test := gen(50, 99)
	m, err := Train(train, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	mape := m.MAPE(test)
	expected := sigma * math.Sqrt(2/math.Pi)
	if mape < expected*0.5 || mape > expected*1.8 {
		t.Fatalf("MAPE = %.4f, expected near %.4f", mape, expected)
	}
}

// Property: training on exactly-linear data yields near-zero error on any
// in-range point.
func TestPropertyLinearExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := rng.Float64()*1e-8 + 1e-10
		c := rng.Float64() * 1e-5
		var samples []Sample
		for i := 0; i < 40; i++ {
			g := float64(rng.Intn(500000) + 500)
			samples = append(samples, Sample{F: Features{GridSize: g}, Duration: secs(a*g + c)})
		}
		m, err := Train(samples, 1e-9)
		if err != nil {
			return false
		}
		g := float64(rng.Intn(500000) + 500)
		want := a*g + c
		got := m.Predict(Features{GridSize: g}).Seconds()
		return math.Abs(got-want)/want < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveSingular(t *testing.T) {
	_, err := solve([][]float64{{1, 1}, {1, 1}}, []float64{1, 2})
	if err == nil {
		t.Fatal("singular system solved")
	}
}

func TestOverheadProfileMean(t *testing.T) {
	var o OverheadProfile
	if o.Mean() != 0 || o.N() != 0 {
		t.Fatal("zero value not empty")
	}
	for i := 1; i <= 50; i++ {
		o.Add(time.Duration(i) * time.Microsecond)
	}
	if o.N() != 50 {
		t.Fatalf("N = %d", o.N())
	}
	want := time.Duration(51*50/2/50) * time.Microsecond // 25.5 -> truncated
	got := o.Mean()
	if got < 25*time.Microsecond || got > 26*time.Microsecond {
		t.Fatalf("mean = %v, want ~%v", got, want)
	}
}

// A model round-trips through State (and its JSON form) bit-identically:
// every prediction of the restored model equals the original's exactly.
// This is what lets a replayer warmed from a live daemon's export
// reproduce the live Te estimates with zero divergence.
func TestStateRoundTripBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var samples []Sample
	for i := 0; i < 60; i++ {
		g := float64(rng.Intn(500_000) + 64)
		samples = append(samples, Sample{
			F:        Features{GridSize: g, CTASize: 128, InputBytes: g * 4096, SharedBytes: float64(rng.Intn(4)) * 1024},
			Duration: secs(3e-9*g + 2e-6),
		})
	}
	m, err := Train(samples, DefaultLambda)
	if err != nil {
		t.Fatal(err)
	}

	back, err := FromState(m.State())
	if err != nil {
		t.Fatalf("FromState: %v", err)
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var viaJSON Model
	if err := json.Unmarshal(b, &viaJSON); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for i := 0; i < 200; i++ {
		f := Features{
			GridSize:    float64(rng.Intn(2_000_000) + 1),
			CTASize:     float64(32 * (rng.Intn(32) + 1)),
			InputBytes:  float64(rng.Intn(1 << 30)),
			SharedBytes: float64(rng.Intn(48)) * 1024,
		}
		want := m.Predict(f)
		if got := back.Predict(f); got != want {
			t.Fatalf("FromState prediction differs at %d: %v vs %v", i, got, want)
		}
		if got := viaJSON.Predict(f); got != want {
			t.Fatalf("JSON round-trip prediction differs at %d: %v vs %v", i, got, want)
		}
	}

	// State is defensive: mutating the export must not reach the model.
	st := m.State()
	st.Weights[0] = math.Inf(1)
	if got := m.Predict(samples[0].F); got != back.Predict(samples[0].F) {
		t.Fatal("State shares memory with the model")
	}
}

func TestFromStateRejectsBadState(t *testing.T) {
	valid := State{Weights: []float64{1, 2}, Mean: []float64{0, 0}, Std: []float64{1, 1}}
	if _, err := FromState(valid); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
	for name, st := range map[string]State{
		"empty":        {},
		"dim mismatch": {Weights: []float64{1, 2}, Mean: []float64{0}, Std: []float64{1, 1}},
		"negative std": {Weights: []float64{1}, Mean: []float64{0}, Std: []float64{-1}},
		"nan std":      {Weights: []float64{1}, Mean: []float64{0}, Std: []float64{math.NaN()}},
	} {
		if _, err := FromState(st); err == nil {
			t.Fatalf("%s state accepted", name)
		}
	}
}
