package cudalite

import (
	"strings"
	"testing"
)

const vaSrc = `
__global__ void vecadd(float* a, float* b, float* c, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        c[i] = a[i] + b[i];
    }
}
`

func TestParseVecAdd(t *testing.T) {
	prog, err := Parse(vaSrc)
	if err != nil {
		t.Fatal(err)
	}
	k := prog.Kernel("vecadd")
	if k == nil {
		t.Fatal("kernel vecadd not found")
	}
	if len(k.Params) != 4 {
		t.Fatalf("params = %d, want 4", len(k.Params))
	}
	if !k.Params[0].Type.IsPointer() || k.Params[0].Type.Base != TFloat {
		t.Fatalf("param 0 type = %v, want float*", k.Params[0].Type)
	}
	if k.Params[3].Type.IsPointer() || k.Params[3].Type.Base != TInt {
		t.Fatalf("param 3 type = %v, want int", k.Params[3].Type)
	}
	if len(k.Body.Stmts) != 2 {
		t.Fatalf("body stmts = %d, want 2", len(k.Body.Stmts))
	}
}

func TestParsePrecedence(t *testing.T) {
	f, err := ParseKernel("void f() { int x = 1 + 2 * 3; }")
	if err != nil {
		t.Fatal(err)
	}
	decl := f.Body.Stmts[0].(*DeclStmt)
	bin, ok := decl.Decls[0].Init.(*Binary)
	if !ok || bin.Op != OpAdd {
		t.Fatalf("top op = %v, want +", decl.Decls[0].Init)
	}
	r, ok := bin.R.(*Binary)
	if !ok || r.Op != OpMul {
		t.Fatalf("right op not *: %v", bin.R)
	}
}

func TestParseRightAssocAssign(t *testing.T) {
	f, err := ParseKernel("void f(int* p) { int a; int b; a = b = p[0]; }")
	if err != nil {
		t.Fatal(err)
	}
	es := f.Body.Stmts[2].(*ExprStmt)
	outer := es.X.(*Assign)
	if _, ok := outer.R.(*Assign); !ok {
		t.Fatalf("assignment not right-associative: %T", outer.R)
	}
}

func TestParseTernary(t *testing.T) {
	f, err := ParseKernel("void f(int a) { int b = a > 0 ? a : -a; }")
	if err != nil {
		t.Fatal(err)
	}
	decl := f.Body.Stmts[0].(*DeclStmt)
	if _, ok := decl.Decls[0].Init.(*Cond); !ok {
		t.Fatalf("init = %T, want *Cond", decl.Decls[0].Init)
	}
}

func TestParseForLoop(t *testing.T) {
	f, err := ParseKernel("void f(int n) { for (int i = 0; i < n; ++i) { n += i; } }")
	if err != nil {
		t.Fatal(err)
	}
	fs, ok := f.Body.Stmts[0].(*ForStmt)
	if !ok {
		t.Fatalf("stmt = %T, want *ForStmt", f.Body.Stmts[0])
	}
	if fs.Init == nil || fs.Cond == nil || fs.Post == nil {
		t.Fatal("for components missing")
	}
}

func TestParseForEmptyClauses(t *testing.T) {
	f, err := ParseKernel("void f() { for (;;) { break; } }")
	if err != nil {
		t.Fatal(err)
	}
	fs := f.Body.Stmts[0].(*ForStmt)
	if fs.Init != nil || fs.Cond != nil || fs.Post != nil {
		t.Fatal("expected all-nil for clauses")
	}
}

func TestParseWhileOne(t *testing.T) {
	f, err := ParseKernel("void f(volatile bool* p) { while (1) { if (*p == true) return; } }")
	if err != nil {
		t.Fatal(err)
	}
	ws, ok := f.Body.Stmts[0].(*WhileStmt)
	if !ok {
		t.Fatal("no while statement")
	}
	ifs := ws.Body.(*Block).Stmts[0].(*IfStmt)
	cond := ifs.Cond.(*Binary)
	if cond.Op != OpEq {
		t.Fatalf("cond op = %v", cond.Op)
	}
	if u, ok := cond.L.(*Unary); !ok || u.Op != OpDeref {
		t.Fatalf("lhs not deref: %v", cond.L)
	}
}

func TestParseLaunchStatement(t *testing.T) {
	prog, err := Parse(`
void host(float* a, int n) {
    vecadd<<<n / 256, 256>>>(a, a, a, n);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	ls, ok := prog.Funcs[0].Body.Stmts[0].(*LaunchStmt)
	if !ok {
		t.Fatalf("stmt = %T, want *LaunchStmt", prog.Funcs[0].Body.Stmts[0])
	}
	if ls.Kernel != "vecadd" || len(ls.Args) != 4 {
		t.Fatalf("launch = %+v", ls)
	}
	if ls.Shmem != nil {
		t.Fatal("unexpected shmem arg")
	}
}

func TestParseLaunchWithShmem(t *testing.T) {
	prog, err := Parse("void h() { k<<<1, 64, 1024>>>(); }")
	if err != nil {
		t.Fatal(err)
	}
	ls := prog.Funcs[0].Body.Stmts[0].(*LaunchStmt)
	if ls.Shmem == nil {
		t.Fatal("shmem arg not parsed")
	}
}

func TestParseSharedDecl(t *testing.T) {
	f, err := ParseKernel("__global__ void k() { __shared__ float tile[256]; tile[threadIdx.x] = 0.0; }")
	if err != nil {
		t.Fatal(err)
	}
	ds := f.Body.Stmts[0].(*DeclStmt)
	if !ds.Shared || ds.Decls[0].ArrayLen == nil {
		t.Fatalf("shared decl wrong: %+v", ds)
	}
}

func TestParseMultiDeclarator(t *testing.T) {
	f, err := ParseKernel("void f() { int i = 0, j = 1, k; }")
	if err != nil {
		t.Fatal(err)
	}
	ds := f.Body.Stmts[0].(*DeclStmt)
	if len(ds.Decls) != 3 {
		t.Fatalf("decls = %d, want 3", len(ds.Decls))
	}
	if ds.Decls[2].Init != nil {
		t.Fatal("k should have no initializer")
	}
}

func TestParseCastVsParen(t *testing.T) {
	f, err := ParseKernel("void f(float x) { int a = (int)x; float b = (x); }")
	if err != nil {
		t.Fatal(err)
	}
	d0 := f.Body.Stmts[0].(*DeclStmt)
	if _, ok := d0.Decls[0].Init.(*Cast); !ok {
		t.Fatalf("(int)x parsed as %T", d0.Decls[0].Init)
	}
	d1 := f.Body.Stmts[1].(*DeclStmt)
	if _, ok := d1.Decls[0].Init.(*Paren); !ok {
		t.Fatalf("(x) parsed as %T", d1.Decls[0].Init)
	}
}

func TestParseDeviceFunction(t *testing.T) {
	prog, err := Parse(`
__device__ float sq(float x) { return x * x; }
__global__ void k(float* a) { a[0] = sq(a[0]); }
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Func("sq").Qual != QualDevice {
		t.Fatal("sq not __device__")
	}
	if prog.Kernel("sq") != nil {
		t.Fatal("Kernel() should not return device functions")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"void f( { }",
		"void f() { int; }",
		"void f() { 1 = 2; }",
		"void f() { if (1 { } }",
		"void f() { a[1; }",
		"void f() { return 1 }",
		"void { }",
		"void f() {",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("void f() {\n  int = 3;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Fatalf("error lacks line 2 position: %v", err)
	}
}

func TestParseAssignToNonLValue(t *testing.T) {
	_, err := Parse("void f(int a) { a + 1 = 2; }")
	if err == nil {
		t.Fatal("expected lvalue error")
	}
	if !strings.Contains(err.Error(), "assignable") {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestParseKernelRejectsMulti(t *testing.T) {
	_, err := ParseKernel("void f() { } void g() { }")
	if err == nil {
		t.Fatal("expected error for two functions")
	}
}
