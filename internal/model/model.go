// Package model defines DAG-shaped "model" workloads over the kernel
// benchmark suite: named stages with explicit prerequisite edges, the
// multi-kernel shape real GPU tenants submit (a DNN inference is a chain
// or fan-out of kernels, not one launch). The serving layer admits a
// stage only when its prerequisites have completed, so a graph stresses
// the scheduler in ways single kernels cannot — priority inversion
// through dependencies, head-of-line blocking across the DAG, and
// per-model (not per-kernel) SLOs on the final stage.
//
// Three presets ship with the package: a resnet-shaped layer chain, a
// bert-shaped wide-then-narrow attention block, and a diamond fan-out.
// Custom graphs load from JSON (see Parse) and validate the same way:
// known benchmarks, known prerequisite references, and no cycles.
package model

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"flep/internal/kernels"
)

// Limits on graph shape. They bound the serving daemon's
// pending-dependency table entries per graph, so they are part of the
// wire contract, not just a convenience.
const (
	// MaxStages bounds how many stages one graph may declare.
	MaxStages = 64
	// MaxAfter bounds one stage's prerequisite list.
	MaxAfter = 16
)

// Stage is one kernel launch within a graph: a named node whose After
// edges name the stages that must complete before it may be admitted.
type Stage struct {
	// Name identifies the stage within its graph.
	Name string `json:"name"`
	// Bench names a kernel benchmark (see internal/kernels).
	Bench string `json:"bench"`
	// Class is the input class: "large", "small" (default), or "trivial".
	Class string `json:"class,omitempty"`
	// After lists the names of this stage's prerequisite stages.
	After []string `json:"after,omitempty"`
}

// Graph is one DAG-shaped workload. The declaration order of Stages is
// load-bearing in one place: when DeadlineMS is set, the SLO budget
// applies to the last declared stage, which Validate then requires to
// depend (transitively) on every other stage — so "the last stage
// finished within the deadline" means "the whole model did".
type Graph struct {
	// Name is the model's identity for per-model accounting.
	Name string `json:"name"`
	// DeadlineMS, when positive, is the model's SLO budget: the last
	// stage must finish within this many virtual milliseconds of its
	// admission (which happens when its prerequisites complete).
	DeadlineMS int     `json:"deadline_ms,omitempty"`
	Stages     []Stage `json:"stages"`
}

// Terminal returns the last declared stage: the one a graph deadline
// applies to.
func (g *Graph) Terminal() *Stage {
	if len(g.Stages) == 0 {
		return nil
	}
	return &g.Stages[len(g.Stages)-1]
}

// Benchmarks returns the distinct benchmark names the graph references,
// sorted — what a flepd serving this model must have loaded.
func (g *Graph) Benchmarks() []string {
	seen := map[string]bool{}
	for _, st := range g.Stages {
		seen[st.Bench] = true
	}
	out := make([]string, 0, len(seen))
	for b := range seen {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Validate checks the graph's static well-formedness: shape limits,
// unique non-empty stage names, loadable benchmarks, parseable input
// classes, prerequisite references that exist, acyclicity, and — when a
// deadline is declared — that the last stage transitively depends on
// every other stage.
func (g *Graph) Validate() error {
	if strings.TrimSpace(g.Name) == "" {
		return fmt.Errorf("model: graph has no name")
	}
	if len(g.Stages) == 0 {
		return fmt.Errorf("model: graph %q has no stages", g.Name)
	}
	if len(g.Stages) > MaxStages {
		return fmt.Errorf("model: graph %q has %d stages (max %d)", g.Name, len(g.Stages), MaxStages)
	}
	if g.DeadlineMS < 0 {
		return fmt.Errorf("model: graph %q has a negative deadline", g.Name)
	}
	idx := map[string]int{}
	for i, st := range g.Stages {
		if strings.TrimSpace(st.Name) == "" {
			return fmt.Errorf("model: graph %q stage %d has no name", g.Name, i)
		}
		if _, dup := idx[st.Name]; dup {
			return fmt.Errorf("model: graph %q declares stage %q twice", g.Name, st.Name)
		}
		idx[st.Name] = i
		if _, err := kernels.ByName(st.Bench); err != nil {
			return fmt.Errorf("model: graph %q stage %q: %w", g.Name, st.Name, err)
		}
		switch st.Class {
		case "", "small", "large", "trivial":
		default:
			return fmt.Errorf("model: graph %q stage %q: unknown input class %q", g.Name, st.Name, st.Class)
		}
		if len(st.After) > MaxAfter {
			return fmt.Errorf("model: graph %q stage %q lists %d prerequisites (max %d)",
				g.Name, st.Name, len(st.After), MaxAfter)
		}
		seen := map[string]bool{}
		for _, dep := range st.After {
			if dep == st.Name {
				return fmt.Errorf("model: graph %q stage %q depends on itself", g.Name, st.Name)
			}
			if seen[dep] {
				return fmt.Errorf("model: graph %q stage %q lists prerequisite %q twice", g.Name, st.Name, dep)
			}
			seen[dep] = true
		}
	}
	// Unknown references and cycles, found in one topological pass.
	order, err := g.TopoOrder()
	if err != nil {
		return err
	}
	if g.DeadlineMS > 0 {
		// The deadline's target must be downstream of everything, or "the
		// last stage met its budget" would not mean the model did.
		last := g.Stages[len(g.Stages)-1].Name
		anc := g.ancestors(last)
		for _, st := range g.Stages {
			if st.Name != last && !anc[st.Name] {
				return fmt.Errorf("model: graph %q carries a deadline but its last stage %q does not depend on stage %q",
					g.Name, last, st.Name)
			}
		}
	}
	_ = order
	return nil
}

// TopoOrder returns the stage indices in a deterministic topological
// order (Kahn's algorithm, declaration order as the tie-break). It
// reports unknown prerequisite references and cycles.
func (g *Graph) TopoOrder() ([]int, error) {
	idx := map[string]int{}
	for i, st := range g.Stages {
		idx[st.Name] = i
	}
	for _, st := range g.Stages {
		for _, dep := range st.After {
			if _, ok := idx[dep]; !ok {
				return nil, fmt.Errorf("model: graph %q stage %q references unknown prerequisite %q",
					g.Name, st.Name, dep)
			}
		}
	}
	emitted := make([]bool, len(g.Stages))
	var order []int
	for len(order) < len(g.Stages) {
		progressed := false
		for i, st := range g.Stages {
			if emitted[i] {
				continue
			}
			ready := true
			for _, dep := range st.After {
				if !emitted[idx[dep]] {
					ready = false
					break
				}
			}
			if ready {
				emitted[i] = true
				order = append(order, i)
				progressed = true
			}
		}
		if !progressed {
			// Everything unemitted participates in (or depends on) a cycle;
			// name the first one in declaration order for the error.
			for i, st := range g.Stages {
				if !emitted[i] {
					return nil, fmt.Errorf("model: graph %q has a dependency cycle through stage %q",
						g.Name, st.Name)
				}
			}
		}
	}
	return order, nil
}

// ancestors returns the set of stage names the named stage transitively
// depends on. Unknown names resolve to an empty set.
func (g *Graph) ancestors(name string) map[string]bool {
	idx := map[string]int{}
	for i, st := range g.Stages {
		idx[st.Name] = i
	}
	out := map[string]bool{}
	stack := []string{name}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		i, ok := idx[n]
		if !ok {
			continue
		}
		for _, dep := range g.Stages[i].After {
			if !out[dep] {
				out[dep] = true
				stack = append(stack, dep)
			}
		}
	}
	return out
}

// Parse decodes and validates a graph from JSON.
func Parse(data []byte) (*Graph, error) {
	var g Graph
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("model: %v", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// Load reads and validates a graph from a JSON file.
func Load(path string) (*Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	g, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("model: %s: %w", path, err)
	}
	return g, nil
}

// Presets returns the built-in model graphs, sorted by name. Each call
// returns fresh copies, so callers may set DeadlineMS without aliasing.
func Presets() []*Graph {
	out := []*Graph{resnet(), bert(), diamond()}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName resolves a preset by name.
func ByName(name string) (*Graph, error) {
	for _, g := range Presets() {
		if g.Name == name {
			return g, nil
		}
	}
	names := make([]string, 0, 3)
	for _, g := range Presets() {
		names = append(names, g.Name)
	}
	return nil, fmt.Errorf("model: unknown preset %q (have %s)", name, strings.Join(names, ", "))
}

// resnet is the layer-chain shape: a stem, a run of residual blocks,
// and a classifier head, each stage strictly after the previous one.
// Chains expose head-of-line blocking: one slow or preempted stage
// stalls the whole model.
func resnet() *Graph {
	return &Graph{
		Name: "resnet",
		Stages: []Stage{
			{Name: "stem", Bench: "NN", Class: "small"},
			{Name: "block1", Bench: "MM", Class: "small", After: []string{"stem"}},
			{Name: "block2", Bench: "MM", Class: "small", After: []string{"block1"}},
			{Name: "block3", Bench: "MM", Class: "small", After: []string{"block2"}},
			{Name: "fc", Bench: "VA", Class: "small", After: []string{"block3"}},
		},
	}
}

// bert is the wide-then-narrow shape: an embedding stage fans out to
// four parallel attention heads, which merge and feed a feed-forward
// tail. The wide middle exercises concurrent admission of sibling
// stages; the narrow merge exercises barrier dependencies.
func bert() *Graph {
	return &Graph{
		Name: "bert",
		Stages: []Stage{
			{Name: "embed", Bench: "VA", Class: "small"},
			{Name: "att0", Bench: "MM", Class: "small", After: []string{"embed"}},
			{Name: "att1", Bench: "MM", Class: "small", After: []string{"embed"}},
			{Name: "att2", Bench: "MM", Class: "small", After: []string{"embed"}},
			{Name: "att3", Bench: "MM", Class: "small", After: []string{"embed"}},
			{Name: "merge", Bench: "SPMV", Class: "small", After: []string{"att0", "att1", "att2", "att3"}},
			{Name: "ffn", Bench: "MM", Class: "small", After: []string{"merge"}},
			{Name: "out", Bench: "VA", Class: "small", After: []string{"ffn"}},
		},
	}
}

// diamond is the minimal fan-out/fan-in: one root, two independent
// branches, one join — the smallest graph where dependency-aware
// admission differs from a chain.
func diamond() *Graph {
	return &Graph{
		Name: "diamond",
		Stages: []Stage{
			{Name: "pre", Bench: "VA", Class: "small"},
			{Name: "left", Bench: "MM", Class: "small", After: []string{"pre"}},
			{Name: "right", Bench: "SPMV", Class: "small", After: []string{"pre"}},
			{Name: "post", Bench: "VA", Class: "small", After: []string{"left", "right"}},
		},
	}
}
