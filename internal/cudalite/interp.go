package cudalite

import (
	"fmt"
	"sync"
)

// RuntimeError is an error raised while interpreting a kernel.
type RuntimeError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *RuntimeError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func rtErr(pos Pos, format string, args ...any) error {
	return &RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Machine interprets MiniCUDA kernels with SIMT semantics: CTAs execute
// sequentially (hardware interleaving is the gpu package's concern); the
// threads of one CTA run concurrently with a real __syncthreads barrier.
type Machine struct {
	prog *Program

	// StepBudget caps interpreted statements+expressions per thread, to
	// turn accidental infinite loops into errors. 0 means the default.
	StepBudget int64

	// OnVolatileRead, if set, is invoked before every load from a Buffer
	// with Volatile set. Tests use it to flip preemption flags at
	// realistic points (each poll of temp_P / spa_P).
	OnVolatileRead func(b *Buffer, idx int)

	// HostCall, if set, resolves calls to functions the program does not
	// define when interpreting host code (CallHost): the FLEP runtime
	// interceptor (flep_intercept), host sleeps, and similar externals.
	// Returning handled=false falls through to an undefined-function
	// error. Device code never consults it.
	HostCall func(name string, args []Value) (v Value, handled bool, err error)

	atomicMu sync.Mutex
}

const defaultStepBudget = 50_000_000

// NewMachine builds an interpreter for prog.
func NewMachine(prog *Program) *Machine { return &Machine{prog: prog} }

// Program returns the machine's program.
func (m *Machine) Program() *Program { return m.prog }

// CallHost interprets a host (unqualified) function: a single sequential
// thread with no CTA context. Calls to undefined functions are routed to
// the machine's HostCall hook, which is how transformed host programs reach
// the FLEP runtime.
func (m *Machine) CallHost(name string, args []Value) error {
	fn := m.prog.Func(name)
	if fn == nil {
		return fmt.Errorf("cudalite: no function %q", name)
	}
	if fn.Qual != QualHost {
		return fmt.Errorf("cudalite: %q is %s code, not host code", name, fn.Qual)
	}
	if len(args) != len(fn.Params) {
		return fmt.Errorf("cudalite: host %q wants %d args, got %d", name, len(fn.Params), len(args))
	}
	tc := &threadCtx{
		m: m, bdim: Dim3{X: 1, Y: 1, Z: 1}, gdim: Dim3{X: 1, Y: 1, Z: 1},
		budget: m.stepBudget(),
	}
	return tc.callFunc(fn, args)
}

// LaunchConfig describes one kernel launch.
type LaunchConfig struct {
	Grid  Dim3
	Block Dim3
	Args  []Value

	// SMID maps a linear CTA index to the SM hosting it; the __smid()
	// intrinsic returns this. Defaults to CTA%15 when nil.
	SMID func(ctaLinear int) int

	// OnCTADone runs after each CTA completes (CTAs are sequential).
	OnCTADone func(ctaLinear int)
}

// Launch runs the named __global__ kernel to completion.
func (m *Machine) Launch(name string, cfg LaunchConfig) error {
	fn := m.prog.Kernel(name)
	if fn == nil {
		return fmt.Errorf("cudalite: no __global__ kernel %q", name)
	}
	if len(cfg.Args) != len(fn.Params) {
		return fmt.Errorf("cudalite: kernel %q wants %d args, got %d", name, len(fn.Params), len(cfg.Args))
	}
	grid := cfg.Grid.Norm()
	block := cfg.Block.Norm()
	nThreads := block.Count()
	if nThreads == 0 || nThreads > 1024 {
		return fmt.Errorf("cudalite: bad block size %d", nThreads)
	}
	smid := cfg.SMID
	if smid == nil {
		smid = func(cta int) int { return cta % 15 }
	}

	cta := 0
	for bz := 0; bz < grid.Z; bz++ {
		for by := 0; by < grid.Y; by++ {
			for bx := 0; bx < grid.X; bx++ {
				bid := Dim3{X: bx, Y: by, Z: bz}
				if err := m.runCTA(fn, cfg.Args, bid, grid, block, smid(cta)); err != nil {
					return err
				}
				if cfg.OnCTADone != nil {
					cfg.OnCTADone(cta)
				}
				cta++
			}
		}
	}
	return nil
}

// runCTA executes one CTA: all threads concurrently, sharing shared memory
// and a barrier.
func (m *Machine) runCTA(fn *FuncDecl, args []Value, bid, grid, block Dim3, smid int) error {
	shared, err := m.allocShared(fn, args, grid, block)
	if err != nil {
		return err
	}
	bar := newBarrier(block.Count())
	var (
		errOnce sync.Once
		ctaErr  error
		wg      sync.WaitGroup
	)
	fail := func(e error) {
		errOnce.Do(func() {
			ctaErr = e
			bar.abort()
		})
	}
	for tz := 0; tz < block.Z; tz++ {
		for ty := 0; ty < block.Y; ty++ {
			for tx := 0; tx < block.X; tx++ {
				tid := Dim3{X: tx, Y: ty, Z: tz}
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer bar.leave()
					tc := &threadCtx{
						m: m, tid: tid, bid: bid, bdim: block, gdim: grid,
						shared: shared, bar: bar, smid: smid,
						budget: m.stepBudget(),
					}
					if err := tc.callFunc(fn, args); err != nil {
						fail(err)
					}
				}()
			}
		}
	}
	wg.Wait()
	return ctaErr
}

func (m *Machine) stepBudget() int64 {
	if m.StepBudget > 0 {
		return m.StepBudget
	}
	return defaultStepBudget
}

// reachableFuncs returns fn plus every function transitively called from it
// (ignoring unresolved names, which are builtins).
func (m *Machine) reachableFuncs(fn *FuncDecl) []*FuncDecl {
	seen := map[string]bool{fn.Name: true}
	order := []*FuncDecl{fn}
	for i := 0; i < len(order); i++ {
		Inspect(order[i].Body, func(n Node) bool {
			if c, ok := n.(*Call); ok && !seen[c.Fun] {
				seen[c.Fun] = true
				if callee := m.prog.Func(c.Fun); callee != nil {
					order = append(order, callee)
				}
			}
			return true
		})
	}
	return order
}

// allocShared evaluates the __shared__ declarations of the kernel and every
// function it transitively calls, once per CTA (CUDA static shared
// semantics). Shared declarations must not have initializers; sizes may
// reference kernel parameters and builtin dims.
func (m *Machine) allocShared(fn *FuncDecl, args []Value, grid, block Dim3) (map[string]*Buffer, error) {
	shared := map[string]*Buffer{}
	var walkErr error
	for _, reach := range m.reachableFuncs(fn) {
		m.allocSharedIn(reach, fn, args, grid, block, shared, &walkErr)
		if walkErr != nil {
			return nil, walkErr
		}
	}
	return shared, nil
}

func (m *Machine) allocSharedIn(in, kernel *FuncDecl, args []Value, grid, block Dim3, shared map[string]*Buffer, walkErr *error) {
	Inspect(in.Body, func(n Node) bool {
		ds, ok := n.(*DeclStmt)
		if !ok || !ds.Shared || *walkErr != nil {
			return true
		}
		for _, d := range ds.Decls {
			if d.Init != nil {
				*walkErr = rtErr(d.Pos, "__shared__ %s: initializers are not supported", d.Name)
				return false
			}
			n := 1
			if d.ArrayLen != nil {
				tc := &threadCtx{m: m, bdim: block, gdim: grid, budget: 1 << 20}
				tc.pushScope()
				for i, p := range kernel.Params {
					tc.declare(p.Name, p.Type, args[i], nil)
				}
				v, err := tc.eval(d.ArrayLen)
				if err != nil {
					*walkErr = err
					return false
				}
				n = int(v.Int())
				if n <= 0 {
					*walkErr = rtErr(d.Pos, "__shared__ %s: non-positive size %d", d.Name, n)
					return false
				}
			}
			buf := &Buffer{Name: d.Name, Kind: ds.Type.Base}
			if ds.Type.Base == TFloat {
				buf.F = make([]float64, n)
			} else {
				buf.I = make([]int64, n)
			}
			shared[d.Name] = buf
		}
		return true
	})
}

// barrier implements __syncthreads with support for threads leaving early
// (returned threads stop participating) and abort on error.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	gen     int
	aborted bool
}

func newBarrier(n int) *barrier {
	b := &barrier{parties: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

var errBarrierAborted = fmt.Errorf("cudalite: barrier aborted")

func (b *barrier) wait() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		return errBarrierAborted
	}
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		return nil
	}
	gen := b.gen
	for b.gen == gen && !b.aborted {
		b.cond.Wait()
	}
	if b.aborted {
		return errBarrierAborted
	}
	return nil
}

// leave removes a finished thread from the barrier's party count.
func (b *barrier) leave() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.parties--
	if b.waiting > 0 && b.waiting == b.parties {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
	}
}

func (b *barrier) abort() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.aborted = true
	b.cond.Broadcast()
}

// cell is one named variable slot in a scope.
type cell struct {
	typ Type
	val Value   // scalar storage
	buf *Buffer // local array storage (arrays decay to pointers)
}

// ctrl is the statement-level control-flow result.
type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

// threadCtx is the per-thread interpreter state.
type threadCtx struct {
	m      *Machine
	tid    Dim3
	bid    Dim3
	bdim   Dim3
	gdim   Dim3
	shared map[string]*Buffer
	bar    *barrier
	smid   int

	scopes []map[string]*cell
	retVal Value
	budget int64
	depth  int
}

func (tc *threadCtx) pushScope() { tc.scopes = append(tc.scopes, map[string]*cell{}) }
func (tc *threadCtx) popScope()  { tc.scopes = tc.scopes[:len(tc.scopes)-1] }

func (tc *threadCtx) lookup(name string) *cell {
	for i := len(tc.scopes) - 1; i >= 0; i-- {
		if c, ok := tc.scopes[i][name]; ok {
			return c
		}
	}
	return nil
}

// declare binds a new variable in the innermost scope, converting the
// initial value to the declared type.
func (tc *threadCtx) declare(name string, typ Type, v Value, buf *Buffer) {
	c := &cell{typ: typ, buf: buf}
	if buf == nil {
		c.val = convert(v, typ)
	}
	tc.scopes[len(tc.scopes)-1][name] = c
}

// convert coerces v to the declared type t (C assignment semantics).
func convert(v Value, t Type) Value {
	if t.IsPointer() {
		if v.Kind == KPtr {
			return v
		}
		if v.Int() == 0 {
			return NullValue()
		}
		return v
	}
	switch t.Base {
	case TFloat:
		return FloatValue(v.Float())
	case TBool:
		return BoolValue(v.Bool())
	default:
		return IntValue(v.Int())
	}
}

// callFunc executes fn with args in a fresh scope and returns its value in
// tc.retVal.
func (tc *threadCtx) callFunc(fn *FuncDecl, args []Value) error {
	if tc.depth >= 64 {
		return rtErr(fn.Pos, "call depth limit exceeded in %s", fn.Name)
	}
	tc.depth++
	base := len(tc.scopes)
	tc.pushScope()
	for i, p := range fn.Params {
		tc.declare(p.Name, p.Type, args[i], nil)
	}
	_, err := tc.execStmt(fn.Body)
	tc.scopes = tc.scopes[:base]
	tc.depth--
	return err
}

func (tc *threadCtx) step(pos Pos) error {
	tc.budget--
	if tc.budget < 0 {
		return rtErr(pos, "step budget exceeded (possible infinite loop)")
	}
	return nil
}

// execStmt executes one statement.
func (tc *threadCtx) execStmt(s Stmt) (ctrl, error) {
	if err := tc.step(s.NodePos()); err != nil {
		return ctrlNone, err
	}
	switch x := s.(type) {
	case *Block:
		tc.pushScope()
		defer tc.popScope()
		for _, st := range x.Stmts {
			c, err := tc.execStmt(st)
			if err != nil || c != ctrlNone {
				return c, err
			}
		}
		return ctrlNone, nil
	case *DeclStmt:
		return tc.execDecl(x)
	case *ExprStmt:
		_, err := tc.eval(x.X)
		return ctrlNone, err
	case *IfStmt:
		cond, err := tc.eval(x.Cond)
		if err != nil {
			return ctrlNone, err
		}
		if cond.Bool() {
			return tc.execStmt(x.Then)
		}
		if x.Else != nil {
			return tc.execStmt(x.Else)
		}
		return ctrlNone, nil
	case *ForStmt:
		tc.pushScope()
		defer tc.popScope()
		if x.Init != nil {
			if c, err := tc.execStmt(x.Init); err != nil || c != ctrlNone {
				return c, err
			}
		}
		for {
			if x.Cond != nil {
				cond, err := tc.eval(x.Cond)
				if err != nil {
					return ctrlNone, err
				}
				if !cond.Bool() {
					break
				}
			}
			c, err := tc.execStmt(x.Body)
			if err != nil {
				return ctrlNone, err
			}
			if c == ctrlReturn {
				return c, nil
			}
			if c == ctrlBreak {
				break
			}
			if x.Post != nil {
				if _, err := tc.eval(x.Post); err != nil {
					return ctrlNone, err
				}
			}
		}
		return ctrlNone, nil
	case *WhileStmt:
		for {
			cond, err := tc.eval(x.Cond)
			if err != nil {
				return ctrlNone, err
			}
			if !cond.Bool() {
				return ctrlNone, nil
			}
			c, err := tc.execStmt(x.Body)
			if err != nil {
				return ctrlNone, err
			}
			if c == ctrlReturn {
				return c, nil
			}
			if c == ctrlBreak {
				return ctrlNone, nil
			}
		}
	case *ReturnStmt:
		if x.X != nil {
			v, err := tc.eval(x.X)
			if err != nil {
				return ctrlNone, err
			}
			tc.retVal = v
		}
		return ctrlReturn, nil
	case *BreakStmt:
		return ctrlBreak, nil
	case *ContinueStmt:
		return ctrlContinue, nil
	case *LaunchStmt:
		return ctrlNone, rtErr(x.Pos, "kernel launch inside device code is not supported")
	}
	return ctrlNone, rtErr(s.NodePos(), "unknown statement %T", s)
}

func (tc *threadCtx) execDecl(x *DeclStmt) (ctrl, error) {
	for _, d := range x.Decls {
		if x.Shared {
			// Shared buffers are allocated per-CTA before threads start;
			// the declaration itself is a no-op at thread level.
			if tc.shared == nil || tc.shared[d.Name] == nil {
				return ctrlNone, rtErr(d.Pos, "__shared__ %s not pre-allocated", d.Name)
			}
			continue
		}
		if d.ArrayLen != nil {
			n, err := tc.eval(d.ArrayLen)
			if err != nil {
				return ctrlNone, err
			}
			ln := int(n.Int())
			if ln <= 0 {
				return ctrlNone, rtErr(d.Pos, "array %s: non-positive size %d", d.Name, ln)
			}
			buf := &Buffer{Name: d.Name, Kind: x.Type.Base}
			if x.Type.Base == TFloat {
				buf.F = make([]float64, ln)
			} else {
				buf.I = make([]int64, ln)
			}
			tc.declare(d.Name, x.Type, Value{}, buf)
			continue
		}
		var init Value
		if d.Init != nil {
			v, err := tc.eval(d.Init)
			if err != nil {
				return ctrlNone, err
			}
			init = v
		}
		tc.declare(d.Name, x.Type, init, nil)
	}
	return ctrlNone, nil
}
