package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"flep/internal/core"
	"flep/internal/gpu"
	"flep/internal/kernels"
)

// One shared system: the offline phase is deterministic, so every test
// can reuse it (servers own their engines, not the system's artifacts).
var (
	sysOnce sync.Once
	sysInst *core.System
	sysErr  error
)

func testSystem(t testing.TB) *core.System {
	t.Helper()
	sysOnce.Do(func() {
		s := core.NewSystem(gpu.DefaultParams())
		var benchs []*kernels.Benchmark
		for _, n := range []string{"VA", "MM"} {
			b, err := kernels.ByName(n)
			if err != nil {
				sysErr = err
				return
			}
			benchs = append(benchs, b)
		}
		sysErr = s.Offline(benchs)
		sysInst = s
	})
	if sysErr != nil {
		t.Fatalf("offline: %v", sysErr)
	}
	return sysInst
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if len(cfg.Benchmarks) == 0 {
		cfg.Benchmarks = []string{"VA", "MM"}
	}
	s, err := NewWithSystem(testSystem(t), cfg)
	if err != nil {
		t.Fatalf("NewWithSystem: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

// launch POSTs a launch request and decodes the response body.
func launch(t *testing.T, url string, req LaunchRequest) (int, LaunchResult) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/launch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/launch: %v", err)
	}
	defer resp.Body.Close()
	var res LaunchResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, res
}

func getStatus(t *testing.T, url string) Status {
	t.Helper()
	resp, err := http.Get(url + "/v1/status")
	if err != nil {
		t.Fatalf("GET /v1/status: %v", err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestLaunchCompletesWithStructuredResult(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, res := launch(t, ts.URL, LaunchRequest{Client: "c1", Benchmark: "MM", Class: "small", Priority: 2})
	if code != http.StatusOK {
		t.Fatalf("code = %d, body %+v", code, res)
	}
	if res.ID == 0 || res.Kernel != "MM" || res.Class != "small" || res.Priority != 2 {
		t.Fatalf("bad identity fields: %+v", res)
	}
	if res.TurnaroundNS <= 0 || res.ExecutionNS <= 0 || res.FinishedVirtualNS < res.SubmittedVirtualNS {
		t.Fatalf("bad timings: %+v", res)
	}
	if res.NTT < 0.99 {
		t.Fatalf("solo-normalized turnaround below 1: %+v", res)
	}
	if res.Preemptions != 0 {
		t.Fatalf("uncontended run was preempted: %+v", res)
	}
}

func TestRejectsInvalidRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, req := range []LaunchRequest{
		{Benchmark: "NOPE"},
		{Benchmark: "VA", Class: "gigantic"},
		{Benchmark: "VA", Priority: -1},
	} {
		code, _ := launch(t, ts.URL, req)
		if code != http.StatusBadRequest {
			t.Fatalf("req %+v: code = %d, want 400", req, code)
		}
	}
	st := getStatus(t, ts.URL)
	if st.Counters.RejectedInvalid != 3 || st.Counters.Enqueued != 0 {
		t.Fatalf("counters: %+v", st.Counters)
	}
}

func TestOversizedWorkingSetRejectedByRuntime(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// A task count whose modeled working set exceeds the K40's 12 GB.
	code, res := launch(t, ts.URL, LaunchRequest{Benchmark: "VA", TasksOverride: 1 << 34})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("code = %d (%+v), want 422", code, res)
	}
	if res.Err == "" {
		t.Fatalf("missing error: %+v", res)
	}
	st := getStatus(t, ts.URL)
	if st.Counters.SubmitErrors != 1 || st.Counters.Completed != 0 {
		t.Fatalf("counters: %+v", st.Counters)
	}
}

func TestAdmissionFullYields429WithRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 1})
	// Park the scheduler so the queued launch cannot drain: the second
	// launch must hit a genuinely full queue.
	if err := s.Pause(); err != nil {
		t.Fatal(err)
	}
	firstDone := make(chan LaunchResult, 1)
	go func() {
		_, res := launch(t, ts.URL, LaunchRequest{Client: "c1", Benchmark: "VA"})
		firstDone <- res
	}()
	waitFor(t, "first launch queued", func() bool {
		return getStatus(t, ts.URL).QueueLen == 1
	})

	body, _ := json.Marshal(LaunchRequest{Client: "c2", Benchmark: "MM"})
	resp, err := http.Post(ts.URL+"/v1/launch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("code = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}

	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}
	res := <-firstDone
	if res.Err != "" || res.TurnaroundNS <= 0 {
		t.Fatalf("queued launch failed after resume: %+v", res)
	}
	st := getStatus(t, ts.URL)
	if st.Counters.RejectedFull != 1 || st.Counters.Enqueued != 1 || st.Counters.Completed != 1 {
		t.Fatalf("counters: %+v", st.Counters)
	}
}

func TestRequestTimeoutDoesNotLoseInvocation(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if err := s.Pause(); err != nil {
		t.Fatal(err)
	}
	code, _ := launch(t, ts.URL, LaunchRequest{Client: "slow", Benchmark: "VA", TimeoutMS: 50})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("code = %d, want 504", code)
	}
	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}
	// The handler gave up but the invocation must still complete exactly
	// once.
	waitFor(t, "abandoned invocation completion", func() bool {
		return getStatus(t, ts.URL).Counters.Completed == 1
	})
	st := getStatus(t, ts.URL)
	if st.Counters.TimedOut != 1 || st.Counters.Enqueued != 1 {
		t.Fatalf("counters: %+v", st.Counters)
	}
}

func TestGracefulShutdownDrainsQueueWithPreemption(t *testing.T) {
	cfg := Config{Trace: true}
	s, ts := newTestServer(t, cfg)
	if err := s.Pause(); err != nil {
		t.Fatal(err)
	}
	// Queue a long low-priority kernel, then a short high-priority one,
	// in that arrival order.
	lowDone := make(chan LaunchResult, 1)
	go func() {
		_, res := launch(t, ts.URL, LaunchRequest{Client: "low", Benchmark: "VA", Class: "large", Priority: 1})
		lowDone <- res
	}()
	waitFor(t, "low-priority launch queued", func() bool {
		return getStatus(t, ts.URL).QueueLen == 1
	})
	highDone := make(chan LaunchResult, 1)
	go func() {
		_, res := launch(t, ts.URL, LaunchRequest{Client: "high", Benchmark: "MM", Class: "small", Priority: 2})
		highDone <- res
	}()
	waitFor(t, "high-priority launch queued", func() bool {
		return getStatus(t, ts.URL).QueueLen == 2
	})

	// Shutdown while both sit in the admission queue: the drain must
	// admit them in arrival order, let the high-priority kernel preempt
	// the low one, and run both to completion.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	low, high := <-lowDone, <-highDone
	if low.Err != "" || high.Err != "" {
		t.Fatalf("drain lost invocations: low=%+v high=%+v", low, high)
	}
	if high.FinishedVirtualNS >= low.FinishedVirtualNS {
		t.Fatalf("high priority did not finish first: high=%d low=%d",
			high.FinishedVirtualNS, low.FinishedVirtualNS)
	}
	if low.Preemptions < 1 {
		t.Fatalf("low-priority kernel was never preempted: %+v", low)
	}
	if got := s.TraceLog().Filter("preempt"); len(got) == 0 {
		t.Fatal("trace recorded no preempt event")
	}

	// A post-drain launch is rejected with 503.
	code, _ := launch(t, ts.URL, LaunchRequest{Benchmark: "MM"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown launch code = %d, want 503", code)
	}
	// Drained at rest: the exactly-once invariant holds with equality.
	st := getStatus(t, ts.URL)
	if st.Counters.Completed != st.Counters.Enqueued || st.Counters.Completed != 2 {
		t.Fatalf("exactly-once violated after drain: %+v", st.Counters)
	}
}

func TestConcurrentSessionsExactlyOnce(t *testing.T) {
	const clients = 100
	const perClient = 3
	s, ts := newTestServer(t, Config{QueueDepth: 64, RequestTimeout: time.Minute})
	ts.Config.SetKeepAlivesEnabled(false) // don't exhaust fds on 100 conns

	var wg sync.WaitGroup
	var mu sync.Mutex
	ids := map[int]int{}
	var oks, retries int
	benchNames := []string{"VA", "MM"}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := fmt.Sprintf("c%03d", c)
			for i := 0; i < perClient; i++ {
				req := LaunchRequest{
					Client:    client,
					Benchmark: benchNames[(c+i)%len(benchNames)],
					Class:     "small",
					Priority:  1 + (c+i)%2,
				}
				for {
					body, _ := json.Marshal(req)
					resp, err := http.Post(ts.URL+"/v1/launch", "application/json", bytes.NewReader(body))
					if err != nil {
						t.Errorf("%s: %v", client, err)
						return
					}
					var res LaunchResult
					code := resp.StatusCode
					if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
						resp.Body.Close()
						t.Errorf("%s: decode: %v", client, err)
						return
					}
					resp.Body.Close()
					if code == http.StatusTooManyRequests {
						mu.Lock()
						retries++
						mu.Unlock()
						time.Sleep(5 * time.Millisecond)
						continue
					}
					if code != http.StatusOK {
						t.Errorf("%s: code %d (%+v)", client, code, res)
						return
					}
					mu.Lock()
					ids[res.ID]++
					oks++
					mu.Unlock()
					break
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if oks != clients*perClient {
		t.Fatalf("oks = %d, want %d", oks, clients*perClient)
	}
	for id, n := range ids {
		if n != 1 {
			t.Fatalf("invocation id %d delivered %d times", id, n)
		}
	}
	// At rest (all responses received ⇒ all invocations completed), the
	// exactly-once invariant holds with equality.
	waitFor(t, "all invocations accounted", func() bool {
		st := getStatus(t, ts.URL)
		return st.Counters.Completed == st.Counters.Enqueued
	})
	st := getStatus(t, ts.URL)
	if st.Counters.Completed != int64(oks) {
		t.Fatalf("completed %d != accepted %d (retries seen: %d)", st.Counters.Completed, oks, retries)
	}
	if st.Sessions != clients {
		t.Fatalf("sessions = %d, want %d", st.Sessions, clients)
	}

	// Every session drained back to S1 with consistent accounting.
	for _, snap := range s.SessionSnapshots() {
		if snap.InFlight != 0 || snap.Completed != perClient {
			t.Fatalf("session %s inconsistent: %+v", snap.ID, snap)
		}
	}
}

func TestSessionsAndBenchmarksEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, _ := launch(t, ts.URL, LaunchRequest{Client: "alice", Benchmark: "VA"}); code != 200 {
		t.Fatalf("launch failed: %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var sessions []SessionSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&sessions); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(sessions) != 1 || sessions[0].ID != "alice" || sessions[0].Completed != 1 {
		t.Fatalf("sessions: %+v", sessions)
	}
	if sessions[0].HostState != "S1 (cpu)" {
		t.Fatalf("idle session not in S1: %+v", sessions[0])
	}

	resp, err = http.Get(ts.URL + "/v1/benchmarks")
	if err != nil {
		t.Fatal(err)
	}
	var infos []BenchmarkInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 2 {
		t.Fatalf("benchmarks: %+v", infos)
	}
	for _, bi := range infos {
		if bi.Classes["small"].SoloNS <= 0 {
			t.Fatalf("%s: missing solo baseline: %+v", bi.Name, bi)
		}
	}
}

func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Trace: true})
	if code, _ := launch(t, ts.URL, LaunchRequest{Benchmark: "MM"}); code != 200 {
		t.Fatal("launch failed")
	}
	resp, err := http.Get(ts.URL + "/v1/trace?kind=submit")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var entries []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("submit entries = %d, want 1", len(entries))
	}
}

func TestPauseResumeEndpointsAndHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/pause", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !getStatus(t, ts.URL).Paused {
		t.Fatal("pause endpoint did not pause")
	}
	resp, err = http.Post(ts.URL+"/v1/resume", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if getStatus(t, ts.URL).Paused {
		t.Fatal("resume endpoint did not resume")
	}
	for _, probe := range []string{"/healthz", "/readyz"} {
		resp, err = http.Get(ts.URL + probe)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s = %d, want 200", probe, resp.StatusCode)
		}
	}
}

// The liveness/readiness split: /readyz flips to 503 the instant drain
// begins — so a load balancer stops routing — while /healthz stays 200
// for as long as the process serves HTTP (a draining daemon is alive by
// definition; killing it over a failed liveness probe would abort the
// drain it is performing).
func TestReadyzFlipsDuringDrain(t *testing.T) {
	// A pace slow enough that the drain is still in progress when we
	// probe, fast enough that cleanup's 30s shutdown budget holds.
	s, ts := newTestServer(t, Config{Pace: 2 * time.Millisecond})

	probe := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := probe("/readyz"); code != 200 {
		t.Fatalf("pre-drain readyz = %d, want 200", code)
	}

	// Keep work in flight while the drain runs.
	done := make(chan struct{})
	go func() {
		defer close(done)
		launch(t, ts.URL, LaunchRequest{Benchmark: "VA"})
	}()
	waitFor(t, "launch admitted", func() bool { return getStatus(t, ts.URL).Counters.Enqueued >= 1 })

	go s.Shutdown(context.Background())
	waitFor(t, "readyz to flip", func() bool { return probe("/readyz") == http.StatusServiceUnavailable })
	if code := probe("/healthz"); code != 200 {
		t.Fatalf("healthz during drain = %d, want 200 (liveness must not follow drain)", code)
	}
	// The in-flight launch still completes: drain refuses new work, it
	// does not abandon admitted work.
	<-done
	if c := getStatus(t, ts.URL).Counters; c.Completed+c.SubmitErrors != c.Enqueued {
		t.Fatalf("drain abandoned admitted work: %+v", c)
	}
}
