// Package server implements flepd's serving layer: a long-running daemon
// that owns one core.System (offline artifacts built at startup) and
// schedules kernel-launch requests from many concurrent clients through
// the FLEP runtime engine on the simulated device.
//
// The paper's runtime engine (§5) is an always-on interceptor: host
// programs hand it kernel invocations and block until the scheduler
// dispatches them (Figure 5's S2→S3 transition). The daemon realizes that
// shape over HTTP: POST /v1/launch is the interception point, the
// response is the S3→S1 return, and a single event-loop goroutine plays
// the role of the scheduling thread — it owns the discrete-event engine,
// the device model, and the policy, so no lock ever guards simulator
// state. Arrivals are stamped onto the virtual clock in arrival order,
// which makes concurrent clients reproduce exactly the preemption
// behaviour of the paper's co-run scenarios.
package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"flep/internal/core"
	"flep/internal/flepruntime"
	"flep/internal/gpu"
	"flep/internal/kernels"
	"flep/internal/obs"
	"flep/internal/replay"
	"flep/internal/sim"
	"flep/internal/trace"
)

// Config parameterizes a daemon instance.
type Config struct {
	// Policy selects the scheduling policy: "hpf" (default), "hpf-naive",
	// "ffs", "edf" (earliest-deadline-first over launches carrying
	// deadline_ms, best-effort behind), or "fifo" (non-preemptive
	// baseline).
	Policy string
	// Spatial enables spatial preemption (HPF only).
	Spatial bool
	// SpatialSMs overrides how many SMs a spatial preemption yields.
	SpatialSMs int
	// MaxOverhead is FFS's overhead budget (default 0.10).
	MaxOverhead float64
	// Weights seeds the FFS priority-level → share-weight map; launch
	// requests may extend it.
	Weights map[int]float64
	// Benchmarks names the kernels to build offline artifacts for
	// (nil/empty = the full Table 1 suite).
	Benchmarks []string
	// QueueDepth bounds the admission queue; a full queue rejects
	// launches with 429 + Retry-After (default 256).
	QueueDepth int
	// DepPending bounds how many graph stages may sit in the
	// pending-dependency table awaiting prerequisites; at the cap new
	// stages that would park are rejected with 429 (default 256).
	DepPending int
	// DepGraphs bounds how many graph instances the table tracks at
	// once. At the cap a new graph evicts the oldest stalled graph (no
	// parked stages, nothing in flight) or is rejected with 429
	// (default 256).
	DepGraphs int
	// RequestTimeout caps how long a launch handler waits for its result
	// before answering 504; the invocation itself is never abandoned
	// (default 30s).
	RequestTimeout time.Duration
	// Trace keeps a bounded runtime+device event log served at /v1/trace.
	Trace bool
	// TraceLimit bounds the retained trace entries (default 65536).
	TraceLimit int
	// Pace, when positive, sleeps this long of real time per simulated
	// event, so virtual time advances at a human-observable rate and
	// clients can genuinely race the simulation (default 0: run the
	// simulator as fast as the host allows).
	Pace time.Duration
	// Device is this instance's shard index within a fleet (0 for a
	// standalone daemon). It is stamped onto launch results so clients can
	// attribute work to a device.
	Device int
	// FleetShards is how many device shards drain work concurrently in
	// the fleet this shard belongs to (1 for a standalone daemon). It
	// scales the Retry-After estimate: a rejected client's wait is priced
	// at the whole fleet's drain rate, not one shard's.
	FleetShards int
	// Recorder, when set, captures every admitted launch into a replay
	// trace (see internal/replay). A fleet's shards share one recorder; it
	// is flushed when the event loop drains, so a SIGTERM'd daemon leaves
	// a readable trace.
	Recorder *replay.Recorder
	// Logf, when set, receives startup progress lines.
	Logf func(format string, args ...any)
	// Params overrides the device model (zero value = the paper's K40).
	Params gpu.Params
}

func (c *Config) applyDefaults() {
	if c.Policy == "" {
		c.Policy = "hpf"
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.DepPending <= 0 {
		c.DepPending = 256
	}
	if c.DepGraphs <= 0 {
		c.DepGraphs = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.TraceLimit <= 0 {
		c.TraceLimit = 65536
	}
	if c.FleetShards <= 0 {
		c.FleetShards = 1
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Params.Limits.NumSMs == 0 {
		c.Params = gpu.DefaultParams()
	}
}

// Sentinel errors surfaced by admission.
var (
	// ErrQueueFull reports a full admission queue (HTTP 429).
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrDraining reports a shutting-down daemon (HTTP 503).
	ErrDraining = errors.New("server: draining, not accepting launches")
	// ErrBestEffortShed reports a best-effort launch shed by SLO-aware
	// admission: deadline-bearing work is outstanding and the queue has
	// crowded past the cost-aware best-effort share (HTTP 429).
	ErrBestEffortShed = errors.New("server: best-effort launch shed to protect outstanding deadlines")
	// ErrStopped reports a daemon whose event loop has exited.
	ErrStopped = errors.New("server: stopped")
)

// counters aggregates the daemon's request accounting. The exactly-once
// invariant is Enqueued == Completed + SubmitErrors once drained: every
// accepted launch reaches the runtime exactly once and produces exactly
// one terminal event.
type counters struct {
	Enqueued         int64 `json:"enqueued"`
	Completed        int64 `json:"completed"`
	SubmitErrors     int64 `json:"submit_errors"`
	RejectedFull     int64 `json:"rejected_queue_full"`
	RejectedDraining int64 `json:"rejected_draining"`
	RejectedInvalid  int64 `json:"rejected_invalid"`
	RejectedShed     int64 `json:"rejected_best_effort_shed"`
	TimedOut         int64 `json:"timed_out"`
	Canceled         int64 `json:"canceled"`
	// SLOAttained/SLOMissed partition deadline-bearing completions (a
	// subset of Completed) by whether they met their virtual deadline.
	SLOAttained int64 `json:"slo_attained"`
	SLOMissed   int64 `json:"slo_missed"`
	// DepCanceled counts graph stages canceled before admission (a
	// prerequisite failed, or the daemon drained while they were
	// parked); they never entered the queue, so they sit outside the
	// Enqueued ledger by design. RejectedDepFull counts stages bounced
	// off a full pending-dependency table.
	DepCanceled     int64 `json:"dep_canceled"`
	RejectedDepFull int64 `json:"rejected_dep_table_full"`
}

type soloKey struct {
	bench string
	class kernels.InputClass
}

// Server is one flepd instance. Create it with New or NewWithSystem; it
// serves HTTP through Handler and stops through Shutdown.
type Server struct {
	cfg     Config
	sys     *core.System
	eng     *sim.Engine
	dev     *gpu.Device
	devMet  *gpu.DeviceMetrics // atomic instruments, readable cross-goroutine
	rt      *flepruntime.Runtime
	ffs     *flepruntime.FFS // non-nil iff cfg.Policy == "ffs"
	tlog    *trace.Log       // nil unless cfg.Trace
	reg     *obs.Registry
	met     *serverMetrics
	benches map[string]*kernels.Benchmark
	solo    map[soloKey]time.Duration // immutable after New
	info    []BenchmarkInfo           // immutable after New

	submitCh chan *launchReq
	ctrlCh   chan ctrlMsg
	stopCh   chan struct{}
	loopDone chan struct{}

	// acceptMu serializes admission against the start of draining so no
	// enqueue can slip in after the loop decided the queue is final.
	acceptMu sync.RWMutex
	draining bool

	vnow   atomic.Int64 // last observed virtual clock (ns)
	paused atomic.Bool
	steps  atomic.Int64 // simulation events stepped by the loop

	// SLO-tier admission state. beLimit is the queue occupancy at which
	// best-effort launches are shed while deadline-bearing work is
	// outstanding; it is derived once at startup from the loaded kernels'
	// preemption-cost ratio (see NewWithSystem) and immutable afterwards.
	// lcOutstanding counts deadline-bearing launches between enqueue and
	// their terminal event; svcEWMANS/lastCompleteNS feed the Retry-After
	// estimate (written only by the loop goroutine, read by handlers).
	beLimit        int
	lcOutstanding  atomic.Int64
	svcEWMANS      atomic.Int64
	lastCompleteNS atomic.Int64

	// queued counts launches reserved or resident in submitCh that the
	// loop has not yet popped. tryEnqueue reserves a slot (CAS under the
	// best-effort share) BEFORE the channel send and admit releases it,
	// so the shed decision and the enqueue are one atomic step — N
	// concurrent best-effort handlers cannot all pass a stale length
	// check and overshoot beLimit.
	queued atomic.Int64

	// batch is the loop-owned scratch slice absorb passes drain submitCh
	// into, so a burst of arrivals is admitted in one pass with a single
	// wall-clock read instead of one select iteration (and one time.Now)
	// per launch. Only the loop goroutine touches it.
	batch []*launchReq

	// Pending-dependency table (see deps.go). depMu guards the table and
	// the per-model aggregates; it is never held across a channel send
	// and never acquired while holding mu. depReady is loop-owned: only
	// depStageDone (running on the loop, from complete) appends to it and
	// only admitReleased drains it.
	depMu     sync.Mutex
	depGraphs map[depKey]*depGraph
	depSeq    int64
	depParked int
	models    map[string]*modelStats
	depReady  []*launchReq

	mu        sync.Mutex
	startReal time.Time
	c         counters
	// sloMarginSum accumulates (deadline − completion) across all
	// deadline-bearing completions, so /v1/status can report the mean
	// margin without a second pass. Guarded by mu like the counters.
	sloMarginSum time.Duration
	sessions     map[string]*Session
}

// New builds the offline artifacts for cfg.Benchmarks on a fresh system
// and starts the daemon's event loop.
func New(cfg Config) (*Server, error) {
	cfg.applyDefaults()
	benchs, err := resolveBenchmarks(cfg.Benchmarks)
	if err != nil {
		return nil, err
	}
	sys := core.NewSystem(cfg.Params)
	for _, b := range benchs {
		start := time.Now()
		if err := sys.Offline([]*kernels.Benchmark{b}); err != nil {
			return nil, fmt.Errorf("server: offline %s: %w", b.Name, err)
		}
		a := sys.Artifacts(b.Name)
		cfg.Logf("offline %-5s L=%-4d overhead=%.2f%% preempt=%v (%v)",
			b.Name, a.L, a.TunedOverhead*100, a.PreemptOverhead.Round(time.Microsecond),
			time.Since(start).Round(time.Millisecond))
	}
	return NewWithSystem(sys, cfg)
}

// NewWithSystem starts a daemon over an existing system (whose Offline
// phase must already cover cfg.Benchmarks). The system must not be used
// concurrently by anyone else afterwards: the event loop owns it.
func NewWithSystem(sys *core.System, cfg Config) (*Server, error) {
	cfg.applyDefaults()
	benchs, err := resolveBenchmarks(cfg.Benchmarks)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		sys:      sys,
		benches:  map[string]*kernels.Benchmark{},
		solo:     map[soloKey]time.Duration{},
		submitCh: make(chan *launchReq, cfg.QueueDepth),
		ctrlCh:   make(chan ctrlMsg),
		stopCh:   make(chan struct{}),
		loopDone: make(chan struct{}),
		sessions: map[string]*Session{},

		depGraphs: map[depKey]*depGraph{},
		models:    map[string]*modelStats{},
	}
	for _, b := range benchs {
		if sys.Artifacts(b.Name) == nil {
			return nil, fmt.Errorf("server: system lacks offline artifacts for %s", b.Name)
		}
		s.benches[b.Name] = b
	}

	// Precompute solo baselines (the ANTT denominators) while we are
	// still single-threaded: core.System caches them in a plain map, so
	// they must never be computed lazily once the loop is running.
	for _, b := range benchs {
		for _, c := range kernels.Classes() {
			d, err := sys.SoloTime(b, c)
			if err != nil {
				return nil, fmt.Errorf("server: solo %s/%s: %w", b.Name, c, err)
			}
			s.solo[soloKey{b.Name, c}] = d
		}
	}
	s.info = buildBenchmarkInfo(sys, benchs, s.solo)

	var policy flepruntime.Policy
	switch cfg.Policy {
	case "hpf":
		policy = flepruntime.NewHPF()
	case "hpf-naive":
		h := flepruntime.NewHPF()
		h.OverheadAware = false
		policy = h
	case "ffs":
		f := flepruntime.NewFFS(cfg.MaxOverhead)
		f.Weights = map[int]float64{}
		for p, w := range cfg.Weights {
			f.Weights[p] = w
		}
		s.ffs = f
		policy = f
	case "edf":
		policy = flepruntime.NewEDF()
	case "fifo":
		policy = flepruntime.NewFIFO()
	default:
		return nil, fmt.Errorf("server: unknown policy %q", cfg.Policy)
	}
	s.beLimit = bestEffortLimit(s.info, cfg.QueueDepth)

	s.reg = obs.NewRegistry()
	s.met = newServerMetrics(s.reg, s)
	s.eng = sim.New()
	s.dev = gpu.New(s.eng, cfg.Params)
	s.devMet = gpu.NewDeviceMetrics(s.reg)
	s.dev.Instrument(s.devMet)
	if cfg.Trace {
		s.tlog = &trace.Log{Limit: cfg.TraceLimit}
		s.dev.Observer = s.tlog.DeviceObserver()
	}
	s.rt = flepruntime.New(s.dev, flepruntime.Config{
		Policy:        policy,
		Metrics:       flepruntime.NewMetrics(s.reg),
		EnableSpatial: cfg.Spatial,
		SpatialSMs:    cfg.SpatialSMs,
		OverheadEstimate: func(kernel string) time.Duration {
			if a := sys.Artifacts(kernel); a != nil {
				return a.PreemptOverhead
			}
			return 0
		},
		Log: s.tlog,
	})
	if cfg.Recorder != nil && cfg.Device == 0 {
		// One shard (by convention the first) owns the shared recorder's
		// instrumentation, so fleet expositions carry it exactly once.
		cfg.Recorder.Bind(s.reg)
	}
	s.startReal = time.Now()
	go s.loop()
	return s, nil
}

// bestEffortLimit derives the queue occupancy at which best-effort
// launches are shed while deadlines are outstanding. The share is
// cost-of-preemption-aware: rescuing a deadline behind best-effort work
// means draining that work, so the more a drain costs relative to the
// work it interrupts (the fleet's mean preempt-overhead ratio), the
// less queue the best-effort tier may fill before shedding starts. The
// share runs from 90% (cheap preemption: admission can afford to let
// best-effort work in and evict it on demand) down to 50% (expensive
// preemption: keep headroom so deadlines rarely need a drain at all).
func bestEffortLimit(info []BenchmarkInfo, queueDepth int) int {
	var ratioSum float64
	var n int
	for _, bi := range info {
		ci, ok := bi.Classes[kernels.Small.String()]
		if !ok || ci.PredictedNS <= 0 {
			continue
		}
		ratioSum += float64(bi.PreemptOverheadNS) / float64(ci.PredictedNS)
		n++
	}
	share := 0.9
	if n > 0 {
		share -= 2 * (ratioSum / float64(n))
	}
	if share < 0.5 {
		share = 0.5
	}
	limit := int(share * float64(queueDepth))
	if limit < 1 {
		limit = 1
	}
	return limit
}

// serviceEstimate returns the EWMA of real inter-completion time: the
// observed drain rate of the pipeline, which prices one queue slot in
// wall-clock seconds for Retry-After.
func (s *Server) serviceEstimate() time.Duration {
	return time.Duration(s.svcEWMANS.Load())
}

// retryAfter estimates, in whole seconds, when a rejected client should
// try again: the current queue depth priced at the observed
// per-completion drain rate across the fleet's active shards.
func (s *Server) retryAfter() int {
	return retryAfterFor(len(s.submitCh), s.serviceEstimate(), s.cfg.FleetShards)
}

// retryAfterFor converts a queue depth and a per-launch service-time
// estimate into a Retry-After header value, clamped to [1, 60] seconds
// (1 when no completions have been observed yet). shards is how many
// device shards drain concurrently: the per-shard completion EWMA prices
// one shard's throughput, so a fleet works the backlog off shards times
// faster and the header must shrink accordingly.
func retryAfterFor(depth int, perLaunch time.Duration, shards int) int {
	if depth < 0 {
		depth = 0
	}
	if shards < 1 {
		shards = 1
	}
	wait := time.Duration(depth+1) * perLaunch / time.Duration(shards)
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return secs
}

// RecorderHeader builds the replay trace header describing this
// configuration, so a recording daemon stamps its trace with everything
// a replay needs to default to "as recorded".
func (c Config) RecorderHeader(devices int) replay.Header {
	c.applyDefaults()
	h := replay.Header{
		Source:      replay.SourceFlepd,
		Policy:      c.Policy,
		Spatial:     c.Spatial,
		SpatialSMs:  c.SpatialSMs,
		MaxOverhead: c.MaxOverhead,
		Devices:     devices,
	}
	if len(c.Weights) > 0 {
		h.Weights = map[string]float64{}
		for p, w := range c.Weights {
			h.Weights[strconv.Itoa(p)] = w
		}
	}
	if len(c.Benchmarks) == 0 {
		for _, b := range kernels.All() {
			h.Benchmarks = append(h.Benchmarks, b.Name)
		}
	} else {
		h.Benchmarks = append(h.Benchmarks, c.Benchmarks...)
	}
	sort.Strings(h.Benchmarks)
	return h
}

func resolveBenchmarks(names []string) ([]*kernels.Benchmark, error) {
	if len(names) == 0 {
		return kernels.All(), nil
	}
	out := make([]*kernels.Benchmark, 0, len(names))
	for _, n := range names {
		b, err := kernels.ByName(n)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		out = append(out, b)
	}
	return out, nil
}

// Shutdown drains the daemon: new launches are rejected with 503, queued
// and in-flight invocations run to completion, then the event loop exits.
// It returns early with ctx's error if the drain outlives the context
// (the loop keeps draining in the background).
func (s *Server) Shutdown(ctx context.Context) error {
	s.acceptMu.Lock()
	already := s.draining
	s.draining = true
	s.acceptMu.Unlock()
	if !already {
		close(s.stopCh)
	}
	select {
	case <-s.loopDone:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.acceptMu.RLock()
	defer s.acceptMu.RUnlock()
	return s.draining
}

// VirtualNow returns the last observed virtual-clock reading.
func (s *Server) VirtualNow() time.Duration { return time.Duration(s.vnow.Load()) }

// Steps returns how many simulation events the loop has stepped. Under a
// positive Pace, each step costs at least one pace interval of wall time,
// even across pause/resume cycles.
func (s *Server) Steps() int64 { return s.steps.Load() }

// Load reports the shard's placement-scoring inputs: launches waiting in
// the admission queue plus launches admitted but not yet terminal. Both
// reads are safe from any goroutine.
func (s *Server) Load() int64 {
	s.mu.Lock()
	inFlight := s.c.Enqueued - s.c.Completed - s.c.SubmitErrors
	s.mu.Unlock()
	return int64(len(s.submitCh)) + inFlight
}

// MemoryAvailable estimates the shard's unreserved device memory from the
// atomically-updated device gauge (the loop goroutine owns the device
// itself). Zero-capacity devices report MaxInt64 (admission never blocks
// on memory).
func (s *Server) MemoryAvailable() int64 {
	if s.cfg.Params.MemoryBytes <= 0 {
		return int64(^uint64(0) >> 1)
	}
	free := s.cfg.Params.MemoryBytes - int64(s.devMet.MemoryReserved.Value())
	if free < 0 {
		return 0
	}
	return free
}

// TraceLog returns the daemon's event log (nil unless Config.Trace).
func (s *Server) TraceLog() *trace.Log { return s.tlog }

// Paused reports whether the scheduler is paused.
func (s *Server) Paused() bool { return s.paused.Load() }

// Pause parks the event loop: arrivals accumulate in the admission queue
// (exercising backpressure) and virtual time stands still. It returns
// once the loop has acknowledged, so the pause is fully in effect.
func (s *Server) Pause() error { return s.ctrl(ctrlPause) }

// Resume unparks a paused event loop.
func (s *Server) Resume() error { return s.ctrl(ctrlResume) }

// Counters returns a snapshot of the request accounting.
func (s *Server) Counters() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return map[string]int64{
		"enqueued":                  s.c.Enqueued,
		"completed":                 s.c.Completed,
		"submit_errors":             s.c.SubmitErrors,
		"rejected_queue_full":       s.c.RejectedFull,
		"rejected_draining":         s.c.RejectedDraining,
		"rejected_invalid":          s.c.RejectedInvalid,
		"rejected_best_effort_shed": s.c.RejectedShed,
		"timed_out":                 s.c.TimedOut,
		"canceled":                  s.c.Canceled,
		"slo_attained":              s.c.SLOAttained,
		"slo_missed":                s.c.SLOMissed,
		"dep_canceled":              s.c.DepCanceled,
		"rejected_dep_table_full":   s.c.RejectedDepFull,
	}
}

// BenchmarkInfo describes one loaded benchmark for /v1/benchmarks.
type BenchmarkInfo struct {
	Name              string               `json:"name"`
	Kernel            string               `json:"kernel"`
	L                 int                  `json:"amortizing_factor"`
	TuneOK            bool                 `json:"tune_ok"`
	PreemptOverheadNS int64                `json:"preempt_overhead_ns"`
	Classes           map[string]ClassInfo `json:"classes"`
}

// ClassInfo describes one input class of a benchmark.
type ClassInfo struct {
	Tasks       int   `json:"tasks"`
	Bytes       int64 `json:"bytes"`
	SoloNS      int64 `json:"solo_ns"`
	PredictedNS int64 `json:"predicted_ns"`
}

func buildBenchmarkInfo(sys *core.System, benchs []*kernels.Benchmark, solo map[soloKey]time.Duration) []BenchmarkInfo {
	out := make([]BenchmarkInfo, 0, len(benchs))
	for _, b := range benchs {
		a := sys.Artifacts(b.Name)
		bi := BenchmarkInfo{
			Name: b.Name, Kernel: b.KernelName,
			L: a.L, TuneOK: a.TuneOK,
			PreemptOverheadNS: int64(a.PreemptOverhead),
			Classes:           map[string]ClassInfo{},
		}
		for _, c := range kernels.Classes() {
			in := b.Input(c)
			pred, _ := sys.Predict(b, in)
			bi.Classes[c.String()] = ClassInfo{
				Tasks: in.Tasks, Bytes: in.Bytes,
				SoloNS:      int64(solo[soloKey{b.Name, c}]),
				PredictedNS: int64(pred),
			}
		}
		out = append(out, bi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// parseClass maps an input-class name to its kernels.InputClass.
func parseClass(name string) (kernels.InputClass, error) {
	switch name {
	case "", "small":
		return kernels.Small, nil
	case "large":
		return kernels.Large, nil
	case "trivial":
		return kernels.Trivial, nil
	}
	return 0, fmt.Errorf("unknown input class %q (want large, small, or trivial)", name)
}
