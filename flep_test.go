package flep

import (
	"strings"
	"sync"
	"testing"
)

var (
	facadeOnce sync.Once
	facadeSys  *System
)

func facadeSystem(t *testing.T) *System {
	t.Helper()
	facadeOnce.Do(func() {
		s := NewSystem()
		if err := s.OfflineAll(); err != nil {
			t.Fatalf("offline: %v", err)
		}
		facadeSys = s
	})
	if facadeSys == nil {
		t.Fatal("offline failed earlier")
	}
	return facadeSys
}

func TestTransformSource(t *testing.T) {
	src := `
__global__ void saxpy(float* x, float* y, float a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}

void host(float* x, float* y, float a, int n) {
    saxpy<<<(n + 255) / 256, 256>>>(x, y, a, n);
}
`
	out, err := TransformSource(src, Temporal)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"saxpy_flep", "flep_intercept", "flep_preempt", "while (1)"} {
		if !strings.Contains(out, want) {
			t.Errorf("transformed source missing %q", want)
		}
	}
	if strings.Contains(out, "<<<") {
		t.Error("raw launch left in host code")
	}
}

func TestTransformKernelSource(t *testing.T) {
	src := `__global__ void k(int* a) { a[blockIdx.x] = 1; }`
	out, name, params, err := TransformKernelSource(src, "k", Spatial)
	if err != nil {
		t.Fatal(err)
	}
	if name != "k_flep" {
		t.Fatalf("preemptable name %q", name)
	}
	if len(params) != 6 {
		t.Fatalf("extra params %v", params)
	}
	if !strings.Contains(out, "__smid()") {
		t.Error("spatial form missing __smid")
	}
}

func TestTransformSourceBadInput(t *testing.T) {
	if _, err := TransformSource("not cuda at all {{{", Temporal); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestPublicEndToEnd(t *testing.T) {
	s := facadeSystem(t)
	spmv, err := BenchmarkByName("SPMV")
	if err != nil {
		t.Fatal(err)
	}
	nn, err := BenchmarkByName("NN")
	if err != nil {
		t.Fatal(err)
	}
	sc := PriorityPair(spmv, nn, 0)
	mps, err := s.RunMPS(sc)
	if err != nil {
		t.Fatal(err)
	}
	flep, err := s.RunFLEP(sc, Options{Policy: "hpf"})
	if err != nil {
		t.Fatal(err)
	}
	if flep.ResultFor("SPMV").Turnaround() >= mps.ResultFor("SPMV").Turnaround() {
		t.Fatal("FLEP did not improve the high-priority kernel")
	}
}

func TestBenchmarksExposed(t *testing.T) {
	if len(Benchmarks()) != 8 {
		t.Fatalf("benchmarks = %d", len(Benchmarks()))
	}
	if _, err := BenchmarkByName("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	par := DefaultParams()
	if par.Limits.NumSMs != 15 {
		t.Fatalf("default device has %d SMs, want 15 (K40)", par.Limits.NumSMs)
	}
}

func TestCompileAndRunProgram(t *testing.T) {
	prog, err := CompileProgram(`
__global__ void doubleit(float* a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        a[i] = a[i] * 2.0;
    }
}
void run(float* a, int n) {
    doubleit<<<(n + 255) / 256, 256>>>(a, n);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	buf := NewFloatBuffer("a", 300)
	for i := range buf.F {
		buf.F[i] = float64(i)
	}
	rep, err := RunProgram(prog, RunOptions{}, HostProc{
		Func: "run", Priority: 1,
		Args: []Value{Ptr(buf, 0), Int(300)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Invocations) != 1 || !rep.Invocations[0].Functional {
		t.Fatalf("invocations %+v", rep.Invocations)
	}
	for i := range buf.F {
		if buf.F[i] != 2*float64(i) {
			t.Fatalf("a[%d] = %g", i, buf.F[i])
		}
	}
}
