package transform

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	cl "flep/internal/cudalite"
)

const vaSrc = `
__global__ void vecadd(float* a, float* b, float* c, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        c[i] = a[i] + b[i];
    }
}

void host(float* a, float* b, float* c, int n) {
    vecadd<<<(n + 255) / 256, 256>>>(a, b, c, n);
}
`

func mustParse(t *testing.T, src string) *cl.Program {
	t.Helper()
	p, err := cl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTransformProducesExpectedFunctions(t *testing.T) {
	prog := mustParse(t, vaSrc)
	out, info, err := TransformKernel(prog, "vecadd", ModeTemporal)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kernel("vecadd") == nil {
		t.Error("original kernel dropped")
	}
	if out.Func(info.TaskFunc) == nil || out.Func(info.TaskFunc).Qual != cl.QualDevice {
		t.Errorf("task function %s missing or not __device__", info.TaskFunc)
	}
	wrapper := out.Kernel(info.Preemptable)
	if wrapper == nil {
		t.Fatalf("preemptable kernel %s missing", info.Preemptable)
	}
	// Appended parameters in documented order.
	got := make([]string, 0, 6)
	for _, p := range wrapper.Params[4:] {
		got = append(got, p.Name)
	}
	want := []string{ParamPreempt, ParamNextTask, ParamNumTasks, ParamGridX, ParamGridY, ParamL}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("extra params = %v, want %v", got, want)
	}
	// The flag parameter must be volatile (pinned-memory semantics).
	if !wrapper.Params[4].Type.Volatile || wrapper.Params[4].Type.Base != cl.TUInt || !wrapper.Params[4].Type.IsPointer() {
		t.Errorf("flag param type = %v, want volatile unsigned int*", wrapper.Params[4].Type)
	}
	// Output must re-parse (valid MiniCUDA).
	if _, err := cl.Parse(cl.Format(out)); err != nil {
		t.Fatalf("transformed program does not re-parse: %v\n%s", err, cl.Format(out))
	}
}

func TestTransformNaiveHasNoL(t *testing.T) {
	prog := mustParse(t, vaSrc)
	_, info, err := TransformKernel(prog, "vecadd", ModeTemporalNaive)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range info.ExtraParams {
		if p == ParamL {
			t.Fatal("naive mode must not take an amortizing factor")
		}
	}
}

func TestTransformRewritesBlockIdx(t *testing.T) {
	prog := mustParse(t, vaSrc)
	out, info, err := TransformKernel(prog, "vecadd", ModeTemporal)
	if err != nil {
		t.Fatal(err)
	}
	task := cl.FormatFunc(out.Func(info.TaskFunc))
	if strings.Contains(task, "blockIdx") {
		t.Fatalf("task func still references blockIdx:\n%s", task)
	}
	if !strings.Contains(task, "flep_bx") {
		t.Fatalf("task func does not use flep_bx:\n%s", task)
	}
}

func TestTransformSpatialUsesSMID(t *testing.T) {
	prog := mustParse(t, vaSrc)
	out, info, err := TransformKernel(prog, "vecadd", ModeSpatial)
	if err != nil {
		t.Fatal(err)
	}
	src := cl.FormatFunc(out.Kernel(info.Preemptable))
	if !strings.Contains(src, "__smid()") {
		t.Fatalf("spatial wrapper lacks __smid():\n%s", src)
	}
}

func TestTransformTemporalPollsFlag(t *testing.T) {
	prog := mustParse(t, vaSrc)
	out, info, err := TransformKernel(prog, "vecadd", ModeTemporal)
	if err != nil {
		t.Fatal(err)
	}
	src := cl.FormatFunc(out.Kernel(info.Preemptable))
	if !strings.Contains(src, "*"+ParamPreempt) {
		t.Fatalf("wrapper does not poll the flag:\n%s", src)
	}
	if strings.Contains(src, "__smid") {
		t.Fatal("temporal wrapper must not use __smid")
	}
}

func TestTransformRejectsReservedIdents(t *testing.T) {
	prog := mustParse(t, `__global__ void k(int* flep_x) { flep_x[0] = 1; }`)
	if _, _, err := TransformKernel(prog, "k", ModeTemporal); err == nil {
		t.Fatal("expected reserved-identifier error")
	}
}

func TestTransformRejects3D(t *testing.T) {
	prog := mustParse(t, `__global__ void k(int* a) { a[blockIdx.z] = 1; }`)
	if _, _, err := TransformKernel(prog, "k", ModeTemporal); err == nil {
		t.Fatal("expected 3D rejection")
	}
}

func TestTransformUnknownKernel(t *testing.T) {
	prog := mustParse(t, vaSrc)
	if _, _, err := TransformKernel(prog, "nope", ModeTemporal); err == nil {
		t.Fatal("expected unknown kernel error")
	}
}

func TestTransformTwiceFails(t *testing.T) {
	prog := mustParse(t, vaSrc)
	out, _, err := TransformKernel(prog, "vecadd", ModeTemporal)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := TransformKernel(out, "vecadd", ModeTemporal); err == nil {
		t.Fatal("expected already-transformed error")
	}
}

func TestTransformDoesNotMutateInput(t *testing.T) {
	prog := mustParse(t, vaSrc)
	before := cl.Format(prog)
	if _, _, err := TransformKernel(prog, "vecadd", ModeSpatial); err != nil {
		t.Fatal(err)
	}
	if cl.Format(prog) != before {
		t.Fatal("input program was mutated")
	}
}

func TestTransformHostRewritesLaunch(t *testing.T) {
	prog := mustParse(t, vaSrc)
	out, infos, err := TransformProgram(prog, ModeTemporal)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("infos = %v", infos)
	}
	src := cl.Format(out)
	if strings.Contains(src, "<<<") {
		t.Fatalf("raw launch still present:\n%s", src)
	}
	if !strings.Contains(src, InterceptFunc+"(\"vecadd\"") {
		t.Fatalf("intercept call missing:\n%s", src)
	}
}

func TestTransformHostNestedLaunch(t *testing.T) {
	prog := mustParse(t, `
__global__ void k(int* a) { a[blockIdx.x] = 1; }
void host(int* a, int n) {
    for (int i = 0; i < n; ++i) {
        if (i > 2) {
            k<<<n, 32>>>(a);
        }
    }
}
`)
	out, _, err := TransformProgram(prog, ModeTemporal)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(cl.Format(out), "<<<") {
		t.Fatal("nested launch not rewritten")
	}
}

// ---- semantic equivalence via the interpreter ----

// runOriginal executes the original kernel; runTransformed executes the
// persistent-thread form with the given flag value and active CTA count.
func runTransformed(t *testing.T, prog *cl.Program, info *KernelInfo, origArgs []cl.Value, grid cl.Dim3, block cl.Dim3, activeCTAs, L int) (*cl.Buffer, *cl.Buffer) {
	t.Helper()
	m := cl.NewMachine(prog)
	flag := cl.NewIntBuffer("flep_preempt", 1)
	flag.Volatile = true
	counter := cl.NewIntBuffer("flep_next_task", 1)
	numTasks := grid.Count()
	args := append(append([]cl.Value{}, origArgs...),
		cl.PtrValue(flag, 0),
		cl.PtrValue(counter, 0),
		cl.IntValue(int64(numTasks)),
		cl.IntValue(int64(grid.Norm().X)),
		cl.IntValue(int64(grid.Norm().Y)),
	)
	if info.Mode != ModeTemporalNaive {
		args = append(args, cl.IntValue(int64(L)))
	}
	err := m.Launch(info.Preemptable, cl.LaunchConfig{
		Grid:  cl.D1(activeCTAs),
		Block: block,
		Args:  args,
	})
	if err != nil {
		t.Fatalf("transformed launch: %v", err)
	}
	return flag, counter
}

func TestTransformedVecAddEquivalent(t *testing.T) {
	for _, mode := range []Mode{ModeTemporalNaive, ModeTemporal, ModeSpatial} {
		prog := mustParse(t, vaSrc)
		out, info, err := TransformKernel(prog, "vecadd", mode)
		if err != nil {
			t.Fatal(err)
		}
		n := 1000
		mkArgs := func() ([]cl.Value, *cl.Buffer) {
			a := cl.NewFloatBuffer("a", n)
			b := cl.NewFloatBuffer("b", n)
			c := cl.NewFloatBuffer("c", n)
			for i := 0; i < n; i++ {
				a.F[i] = float64(i)
				b.F[i] = float64(2 * i)
			}
			return []cl.Value{cl.PtrValue(a, 0), cl.PtrValue(b, 0), cl.PtrValue(c, 0), cl.IntValue(int64(n))}, c
		}

		// Reference: original kernel.
		refArgs, refC := mkArgs()
		m := cl.NewMachine(out)
		grid := cl.D1((n + 255) / 256)
		if err := m.Launch("vecadd", cl.LaunchConfig{Grid: grid, Block: cl.D1(256), Args: refArgs}); err != nil {
			t.Fatal(err)
		}

		// Transformed with 3 persistent CTAs (fewer than tasks) and L=2.
		trArgs, trC := mkArgs()
		runTransformed(t, out, info, trArgs, grid, cl.D1(256), 3, 2)

		for i := 0; i < n; i++ {
			if refC.F[i] != trC.F[i] {
				t.Fatalf("mode %v: c[%d] = %g, want %g", mode, i, trC.F[i], refC.F[i])
			}
		}
	}
}

const tiledMMSrc = `
__global__ void mm(float* a, float* b, float* c, int n) {
    __shared__ float ta[64];
    __shared__ float tb[64];
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    int row = blockIdx.y * 8 + ty;
    int col = blockIdx.x * 8 + tx;
    float acc = 0.0;
    for (int t = 0; t < n / 8; ++t) {
        ta[ty * 8 + tx] = a[row * n + t * 8 + tx];
        tb[ty * 8 + tx] = b[(t * 8 + ty) * n + col];
        __syncthreads();
        for (int k = 0; k < 8; ++k) {
            acc += ta[ty * 8 + k] * tb[k * 8 + tx];
        }
        __syncthreads();
    }
    c[row * n + col] = acc;
}
`

// The 2D tiled matrix multiply exercises blockIdx.y linearization and
// __shared__ extraction into the task function.
func TestTransformedTiledMMEquivalent(t *testing.T) {
	prog := mustParse(t, tiledMMSrc)
	out, info, err := TransformKernel(prog, "mm", ModeTemporal)
	if err != nil {
		t.Fatal(err)
	}
	n := 16
	mk := func() ([]cl.Value, *cl.Buffer) {
		a := cl.NewFloatBuffer("a", n*n)
		b := cl.NewFloatBuffer("b", n*n)
		c := cl.NewFloatBuffer("c", n*n)
		rng := rand.New(rand.NewSource(3))
		for i := range a.F {
			a.F[i] = rng.Float64()
			b.F[i] = rng.Float64()
		}
		return []cl.Value{cl.PtrValue(a, 0), cl.PtrValue(b, 0), cl.PtrValue(c, 0), cl.IntValue(int64(n))}, c
	}
	refArgs, refC := mk()
	m := cl.NewMachine(out)
	grid := cl.D2(n/8, n/8)
	if err := m.Launch("mm", cl.LaunchConfig{Grid: grid, Block: cl.D2(8, 8), Args: refArgs}); err != nil {
		t.Fatal(err)
	}
	trArgs, trC := mk()
	runTransformed(t, out, info, trArgs, grid, cl.D2(8, 8), 2, 1)
	for i := range refC.F {
		if math.Abs(refC.F[i]-trC.F[i]) > 1e-12 {
			t.Fatalf("c[%d] = %g, want %g", i, trC.F[i], refC.F[i])
		}
	}
}

// Preempting mid-run and resuming must execute every task exactly once.
func TestTransformedPreemptResumeExactlyOnce(t *testing.T) {
	prog := mustParse(t, `
__global__ void mark(int* hits, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        atomicAdd(&hits[i], 1);
    }
}
`)
	out, info, err := TransformKernel(prog, "mark", ModeTemporal)
	if err != nil {
		t.Fatal(err)
	}
	n := 64 * 32
	hits := cl.NewIntBuffer("hits", n)
	flag := cl.NewIntBuffer("flag", 1)
	flag.Volatile = true
	counter := cl.NewIntBuffer("counter", 1)
	grid := cl.D1(64)

	m := cl.NewMachine(out)
	polls := 0
	m.OnVolatileRead = func(b *cl.Buffer, idx int) {
		polls++
		if polls == 10 { // preempt partway through
			b.I[0] = 1
		}
	}
	args := []cl.Value{
		cl.PtrValue(hits, 0), cl.IntValue(int64(n)),
		cl.PtrValue(flag, 0), cl.PtrValue(counter, 0),
		cl.IntValue(int64(grid.Count())), cl.IntValue(int64(grid.X)), cl.IntValue(1),
		cl.IntValue(4), // L
	}
	launch := func() error {
		return m.Launch(info.Preemptable, cl.LaunchConfig{Grid: cl.D1(4), Block: cl.D1(32), Args: args})
	}
	if err := launch(); err != nil {
		t.Fatal(err)
	}
	if counter.I[0] >= int64(grid.Count()) {
		t.Fatalf("kernel finished before preemption (counter=%d); test needs a mid-run yield", counter.I[0])
	}
	// Resume: clear the flag, relaunch; the device-resident counter keeps
	// its value so no task repeats.
	flag.I[0] = 0
	m.OnVolatileRead = nil
	if err := launch(); err != nil {
		t.Fatal(err)
	}
	for i, h := range hits.I {
		if h != 1 {
			t.Fatalf("task element %d executed %d times, want exactly 1", i, h)
		}
	}
}

// Spatial preemption: CTAs on SMs below the flag value stop; others finish
// all remaining tasks, so one launch still completes every task.
func TestTransformedSpatialPartialYield(t *testing.T) {
	prog := mustParse(t, `
__global__ void mark(int* hits, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        atomicAdd(&hits[i], 1);
    }
}
`)
	out, info, err := TransformKernel(prog, "mark", ModeSpatial)
	if err != nil {
		t.Fatal(err)
	}
	n := 256
	hits := cl.NewIntBuffer("hits", n)
	flag := cl.NewIntBuffer("flag", 1)
	flag.Volatile = true
	flag.I[0] = 2 // SMs 0 and 1 must yield immediately
	counter := cl.NewIntBuffer("counter", 1)
	grid := cl.D1(8)
	m := cl.NewMachine(out)
	args := []cl.Value{
		cl.PtrValue(hits, 0), cl.IntValue(int64(n)),
		cl.PtrValue(flag, 0), cl.PtrValue(counter, 0),
		cl.IntValue(int64(grid.Count())), cl.IntValue(int64(grid.X)), cl.IntValue(1),
		cl.IntValue(1),
	}
	// 4 persistent CTAs on SMs 0..3: CTAs 0,1 yield; CTAs 2,3 do the work.
	err = m.Launch(info.Preemptable, cl.LaunchConfig{
		Grid: cl.D1(4), Block: cl.D1(32), Args: args,
		SMID: func(cta int) int { return cta },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits.I {
		if h != 1 {
			t.Fatalf("element %d hit %d times", i, h)
		}
	}
}

func TestAutotuneFindsSmallestL(t *testing.T) {
	// Synthetic overhead model: poll cost 1.6 per batch amortized over L
	// tasks of cost 10 → overhead = 1.6/(10L)+0.005.
	measure := func(L int) float64 { return 1.6/(10*float64(L)) + 0.005 }
	l, ov, ok := Autotune(measure, 0.04, DefaultMaxAmortize)
	if !ok {
		t.Fatal("tuner failed")
	}
	// Need 1.6/(10L) < 0.035 → L > 4.57 → L = 5.
	if l != 5 {
		t.Fatalf("L = %d (overhead %.4f), want 5", l, ov)
	}
	if measure(l-1) < 0.04 {
		t.Fatal("L-1 also satisfies: not minimal")
	}
}

func TestAutotuneL1Satisfies(t *testing.T) {
	l, _, ok := Autotune(func(int) float64 { return 0.01 }, 0.04, 100)
	if !ok || l != 1 {
		t.Fatalf("L = %d ok=%v, want 1 true", l, ok)
	}
}

func TestAutotuneImpossible(t *testing.T) {
	l, ov, ok := Autotune(func(L int) float64 { return 0.5 }, 0.04, 64)
	if ok {
		t.Fatal("tuner claims success on impossible constraint")
	}
	if l < 1 || ov != 0.5 {
		t.Fatalf("l=%d ov=%v", l, ov)
	}
}

func TestAutotuneMonotoneRandomModels(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		pollCost := rng.Float64()*5 + 0.1
		taskCost := rng.Float64()*20 + 0.5
		base := rng.Float64() * 0.03
		measure := func(L int) float64 { return pollCost/(taskCost*float64(L)) + base }
		l, ov, ok := Autotune(measure, 0.04, DefaultMaxAmortize)
		if !ok {
			if base >= 0.04 {
				continue // genuinely impossible
			}
			if measure(DefaultMaxAmortize) < 0.04 {
				t.Fatalf("trial %d: tuner failed but maxL satisfies", trial)
			}
			continue
		}
		if ov >= 0.04 {
			t.Fatalf("trial %d: returned overhead %.4f ≥ threshold", trial, ov)
		}
		if l > 1 && measure(l-1) < 0.04 {
			t.Fatalf("trial %d: L=%d not minimal", trial, l)
		}
	}
}

func TestEstimateResourcesShared(t *testing.T) {
	prog := mustParse(t, tiledMMSrc)
	res, err := EstimateResources(prog, prog.Kernel("mm"))
	if err != nil {
		t.Fatal(err)
	}
	if res.StaticSharedBytes != 2*64*4 {
		t.Fatalf("shared bytes = %d, want 512", res.StaticSharedBytes)
	}
	if res.RegsPerThread < 8 {
		t.Fatalf("regs = %d", res.RegsPerThread)
	}
}

func TestEstimateResourcesRejectsDynamicShared(t *testing.T) {
	prog := mustParse(t, `__global__ void k(int n) { __shared__ float s[n]; s[0] = 1.0; }`)
	if _, err := EstimateResources(prog, prog.Kernel("k")); err == nil {
		t.Fatal("expected error for runtime shared size")
	}
}

func TestEstimateResourcesFollowsCallees(t *testing.T) {
	prog := mustParse(t, `
__device__ void helper() { __shared__ float s[32]; s[0] = 1.0; }
__global__ void k() { helper(); }
`)
	res, err := EstimateResources(prog, prog.Kernel("k"))
	if err != nil {
		t.Fatal(err)
	}
	if res.StaticSharedBytes != 32*4 {
		t.Fatalf("shared bytes = %d, want 128", res.StaticSharedBytes)
	}
}

func TestComputeOccupancyLimiters(t *testing.T) {
	d := K40()
	cases := []struct {
		name    string
		res     Resources
		threads int
		dyn     int
		want    int
		limiter string
	}{
		{"threads-bound", Resources{RegsPerThread: 16}, 256, 0, 8, "threads"},
		{"cta-bound", Resources{RegsPerThread: 8}, 64, 0, 16, "ctas"},
		{"regs-bound", Resources{RegsPerThread: 128}, 256, 0, 2, "regs"},
		{"shared-bound", Resources{RegsPerThread: 16, StaticSharedBytes: 24 * 1024}, 128, 0, 2, "shared"},
		{"dynamic-shared", Resources{RegsPerThread: 16}, 128, 48 * 1024, 1, "shared"},
	}
	for _, c := range cases {
		occ, err := ComputeOccupancy(d, c.res, c.threads, c.dyn)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if occ.CTAsPerSM != c.want || occ.Limiter != c.limiter {
			t.Errorf("%s: got %d CTAs/SM (%s), want %d (%s)", c.name, occ.CTAsPerSM, occ.Limiter, c.want, c.limiter)
		}
		if occ.ActiveCTAs != occ.CTAsPerSM*d.NumSMs {
			t.Errorf("%s: ActiveCTAs inconsistent", c.name)
		}
	}
}

func TestComputeOccupancyPaperExample(t *testing.T) {
	// "the Kepler GPU supports concurrent execution of 120 active CTAs of
	// size 256" — 8 CTAs/SM × 15 SMs.
	occ, err := ComputeOccupancy(K40(), Resources{RegsPerThread: 24}, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	if occ.ActiveCTAs != 120 {
		t.Fatalf("active CTAs = %d, want 120", occ.ActiveCTAs)
	}
}

func TestComputeOccupancyErrors(t *testing.T) {
	d := K40()
	if _, err := ComputeOccupancy(d, Resources{}, 0, 0); err == nil {
		t.Error("no error for zero CTA size")
	}
	if _, err := ComputeOccupancy(d, Resources{}, 2048, 0); err == nil {
		t.Error("no error for oversized CTA")
	}
	if _, err := ComputeOccupancy(d, Resources{StaticSharedBytes: 64 * 1024}, 256, 0); err == nil {
		t.Error("no error for unfittable shared memory")
	}
}

func TestSMsNeeded(t *testing.T) {
	d := K40()
	occ := Occupancy{CTAsPerSM: 8, ActiveCTAs: 120}
	cases := []struct{ ctas, want int }{
		{0, 0}, {1, 1}, {8, 1}, {9, 2}, {40, 5}, {120, 15}, {500, 15},
	}
	for _, c := range cases {
		if got := SMsNeeded(occ, c.ctas, d); got != c.want {
			t.Errorf("SMsNeeded(%d) = %d, want %d", c.ctas, got, c.want)
		}
	}
}
