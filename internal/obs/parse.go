package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its rendered label
// set (possibly ""), and the value.
type Sample struct {
	Name   string
	Labels string // canonical {k="v",...} rendering, "" when unlabeled
	Value  float64
}

// Key returns the name+labels identity used by Snapshot maps.
func (s Sample) Key() string { return s.Name + s.Labels }

// Snapshot is a parsed scrape: metric key (name plus rendered labels) →
// value. Histograms appear as their _bucket/_sum/_count series.
type Snapshot map[string]float64

// Get returns the value for a bare metric name or full key, and whether
// it was present.
func (s Snapshot) Get(key string) (float64, bool) {
	v, ok := s[key]
	return v, ok
}

// SumFamily adds up every sample whose name (ignoring labels) equals
// name: the family-wide total of a labeled counter.
func (s Snapshot) SumFamily(name string) float64 {
	total := 0.0
	for k, v := range s {
		if k == name || strings.HasPrefix(k, name+"{") {
			total += v
		}
	}
	return total
}

// SumMatching adds up every sample of the named family whose label set
// contains all of the given label pairs. SumMatching("x_total", "kind",
// "primary") sums x_total{kind="primary",...} across any remaining labels
// (such as a fleet's device label); with no pairs it equals SumFamily.
func (s Snapshot) SumMatching(name string, labelPairs ...string) float64 {
	if len(labelPairs)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label pairs %v", labelPairs))
	}
	want := make([]string, 0, len(labelPairs)/2)
	for i := 0; i+1 < len(labelPairs); i += 2 {
		want = append(want, fmt.Sprintf("%s=%q", labelPairs[i], labelPairs[i+1]))
	}
	total := 0.0
	for k, v := range s {
		if k != name && !strings.HasPrefix(k, name+"{") {
			continue
		}
		have := strings.Split(strings.TrimSuffix(strings.TrimPrefix(k[len(name):], "{"), "}"), ",")
		matched := true
		for _, w := range want {
			found := false
			for _, h := range have {
				if h == w {
					found = true
					break
				}
			}
			if !found {
				matched = false
				break
			}
		}
		if matched {
			total += v
		}
	}
	return total
}

// Delta returns after − before for the key (missing keys read as 0).
func Delta(before, after Snapshot, key string) float64 {
	return after[key] - before[key]
}

// ParseText parses Prometheus text exposition (the subset WritePrometheus
// emits: HELP/TYPE comments and simple sample lines) into a Snapshot.
// Malformed sample lines are an error; comments and blanks are skipped.
func ParseText(r io.Reader) (Snapshot, error) {
	out := Snapshot{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sample, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		out[sample.Key()] = sample.Value
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseLine splits `name{labels} value` (labels optional).
func parseLine(line string) (Sample, error) {
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd <= 0 {
		return Sample{}, fmt.Errorf("obs: malformed sample line %q", line)
	}
	s := Sample{Name: line[:nameEnd]}
	rest := line[nameEnd:]
	if rest[0] == '{' {
		end := strings.Index(rest, "}")
		if end < 0 {
			return Sample{}, fmt.Errorf("obs: unterminated labels in %q", line)
		}
		s.Labels = rest[:end+1]
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// A timestamp after the value is legal Prometheus; keep the first field.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	v, err := parseValue(rest)
	if err != nil {
		return Sample{}, fmt.Errorf("obs: bad value in %q: %v", line, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-inf", 64)
	}
	return strconv.ParseFloat(s, 64)
}
