package cudalite

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("__global__ void f(int* a) { a[0] = 1; }")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwGlobal, KwVoid, IDENT, LParen, KwInt, Star, IDENT, RParen,
		LBrace, IDENT, LBracket, INTLIT, RBracket, AssignTok, INTLIT, Semicolon, RBrace}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexLaunchChevrons(t *testing.T) {
	toks, err := Lex("k<<<n, m>>>(a);")
	if err != nil {
		t.Fatal(err)
	}
	var sawOpen, sawClose bool
	for _, tok := range toks {
		if tok.Kind == LaunchOpen {
			sawOpen = true
		}
		if tok.Kind == LaunchClose {
			sawClose = true
		}
	}
	if !sawOpen || !sawClose {
		t.Fatalf("launch chevrons not lexed: %v", kinds(toks))
	}
}

func TestLexShiftVsLaunch(t *testing.T) {
	toks, err := Lex("a << b >> c")
	if err != nil {
		t.Fatal(err)
	}
	got := kinds(toks)
	want := []Kind{IDENT, Shl, IDENT, Shr, IDENT}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind Kind
		text string
	}{
		{"42", INTLIT, "42"},
		{"0x1F", INTLIT, "0x1F"},
		{"3.14", FLOATLIT, "3.14"},
		{"1e10", FLOATLIT, "1e10"},
		{"2.5e-3", FLOATLIT, "2.5e-3"},
		{"0.5f", FLOATLIT, "0.5"},
		{".25", FLOATLIT, ".25"},
		{"7f", FLOATLIT, "7"},
	}
	for _, c := range cases {
		toks, err := Lex(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if len(toks) != 1 || toks[0].Kind != c.kind || toks[0].Text != c.text {
			t.Errorf("Lex(%q) = %v (%q), want %v (%q)", c.src, toks[0].Kind, toks[0].Text, c.kind, c.text)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("a // line comment\n/* block\ncomment */ b")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 2 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Fatalf("comments not skipped: %v", toks)
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	_, err := Lex("a /* never closed")
	if err == nil {
		t.Fatal("no error for unterminated comment")
	}
	if !strings.Contains(err.Error(), "unterminated") {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("a at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("b at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexBadCharacter(t *testing.T) {
	_, err := Lex("a @ b")
	if err == nil {
		t.Fatal("no error for @")
	}
	var se *SyntaxError
	if !asSyntaxError(err, &se) {
		t.Fatalf("error type %T, want *SyntaxError", err)
	}
}

func asSyntaxError(err error, out **SyntaxError) bool {
	se, ok := err.(*SyntaxError)
	if ok {
		*out = se
	}
	return ok
}

func TestLexString(t *testing.T) {
	toks, err := Lex(`"hi\nthere"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != STRINGLIT || toks[0].Text != "hi\nthere" {
		t.Fatalf("got %v %q", toks[0].Kind, toks[0].Text)
	}
}

func TestLexKeywords(t *testing.T) {
	toks, err := Lex("unsigned int volatile const bool true false NULL")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwUnsigned, KwInt, KwVolatile, KwConst, KwBool, KwTrue, KwFalse, KwNull}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
