package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"flep/internal/trace"
)

// formatEntry renders one trace entry like trace.Log.WriteText.
func formatEntry(e trace.Entry) string {
	return fmt.Sprintf("%12v %-8s %-8s %-8s [%2d,%2d) %s\n",
		e.Time, e.Source, e.Kind, e.Kernel, e.SMLo, e.SMHi, e.Detail)
}

// LaunchRequest is the JSON body of POST /v1/launch: the serving-layer
// equivalent of the transformed host program's flep_intercept call.
type LaunchRequest struct {
	// Client identifies the session; the X-Flep-Client header takes
	// precedence. Empty means "anonymous".
	Client string `json:"client,omitempty"`
	// Benchmark names a loaded kernel (see /v1/benchmarks).
	Benchmark string `json:"benchmark"`
	// Class is "large", "small" (default), or "trivial".
	Class string `json:"class,omitempty"`
	// Priority is the HPF level / FFS weight key (default 1).
	Priority int `json:"priority,omitempty"`
	// Weight, when positive on an FFS daemon, sets this priority level's
	// share weight.
	Weight float64 `json:"weight,omitempty"`
	// TasksOverride replaces the input's task count when positive.
	TasksOverride int `json:"tasks_override,omitempty"`
	// TimeoutMS caps this request's wait (bounded by the server default).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// DeadlineMS, when positive, is the launch's SLO budget: the
	// invocation must finish within this many virtual milliseconds of
	// admission. Missing it is an accounting event (flep_slo_missed_total,
	// "slo":"missed" in the result), never an execution error.
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// SLOClass is "latency" (requires deadline_ms) or "best_effort" (the
	// default; forbids deadline_ms). Empty infers the class from
	// deadline_ms's presence. Best-effort launches are shed with 429 when
	// the queue crowds past the cost-aware share while deadline-bearing
	// work is outstanding.
	SLOClass string `json:"slo_class,omitempty"`
	// Graph coordinates turn this launch into one stage of a DAG-shaped
	// model workload (see internal/model and deps.go). Graph is the
	// client-chosen instance id (scoped per client), Stage this launch's
	// name within it, After the stage names that must complete before it
	// is admitted, and Stages the graph's declared total stage count
	// (required, consistent across the instance — it is how the daemon
	// knows when the graph is finished). A stage whose prerequisites are
	// outstanding is parked in a bounded pending-dependency table; a
	// failed or shed prerequisite cancels it with 409.
	Graph  string   `json:"graph,omitempty"`
	Stage  string   `json:"stage,omitempty"`
	After  []string `json:"after,omitempty"`
	Stages int      `json:"stages,omitempty"`
	// Model names the workload the graph instance aggregates under in
	// per-model accounting (default "default").
	Model string `json:"model,omitempty"`
}

// Status is the JSON body of GET /v1/status. On a fleet daemon the
// top-level Status carries the aggregated counters and queue figures, with
// per-shard breakdowns under Devices.
type Status struct {
	Policy       string   `json:"policy"`
	Spatial      bool     `json:"spatial"`
	Device       int      `json:"device"`
	Devices      []Status `json:"devices,omitempty"`
	Benchmarks   []string `json:"benchmarks"`
	UptimeMS     int64    `json:"uptime_ms"`
	VirtualNowUS float64  `json:"virtual_now_us"`
	QueueLen     int      `json:"queue_len"`
	QueueCap     int      `json:"queue_cap"`
	// MemoryFreeBytes is the unreserved simulated device memory (summed
	// across shards on a fleet): the placement signal a cluster gateway
	// reads from this snapshot.
	MemoryFreeBytes int64     `json:"memory_free_bytes"`
	Paused          bool      `json:"paused"`
	Draining        bool      `json:"draining"`
	Sessions        int       `json:"sessions"`
	Counters        counters  `json:"counters"`
	TraceEntries    int       `json:"trace_entries,omitempty"`
	TraceDropped    int       `json:"trace_dropped,omitempty"`
	ExactlyOnceOK   bool      `json:"exactly_once_ok"`
	SLO             SLOStatus `json:"slo"`
	// Models is the per-model accounting block (one row per model name
	// seen in graph-bearing launches); its counts reconcile exactly with
	// the flep_model_* metric families.
	Models []ModelStatus `json:"models,omitempty"`
}

// SLOStatus summarizes the deadline tier: how many deadline-bearing
// launches met their budget, how many best-effort launches were shed to
// protect them, and the mean completion margin (negative pulls from
// misses). The raw counts also live in Counters so metrics reconcile.
type SLOStatus struct {
	Attained       int64   `json:"attained"`
	Missed         int64   `json:"missed"`
	BestEffortShed int64   `json:"best_effort_shed"`
	AttainRate     float64 `json:"attain_rate"`
	MeanMarginUS   float64 `json:"mean_margin_us"`
}

type apiError struct {
	Error string `json:"error"`
}

// jsonEnc pairs a reusable buffer with an encoder bound to it, so hot
// handlers (launch results, status polls) serialize each response with
// zero per-call encoder/buffer allocations.
type jsonEnc struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonEncPool = sync.Pool{New: func() any {
	e := &jsonEnc{}
	e.enc = json.NewEncoder(&e.buf)
	e.enc.SetIndent("", "  ")
	return e
}}

// jsonEncKeepBytes bounds what a recycled buffer may retain: one giant
// /v1/sessions or /v1/trace dump must not pin its backing array in the
// pool forever.
const jsonEncKeepBytes = 64 << 10

func writeJSON(w http.ResponseWriter, code int, v any) {
	e := jsonEncPool.Get().(*jsonEnc)
	e.buf.Reset()
	err := e.enc.Encode(v)
	w.Header().Set("Content-Type", "application/json")
	if err != nil {
		jsonEncPool.Put(e)
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "{\n  \"error\": %q\n}\n", "encode response: "+err.Error())
		return
	}
	w.WriteHeader(code)
	_, _ = w.Write(e.buf.Bytes())
	if e.buf.Cap() > jsonEncKeepBytes {
		//flepvet:allow poolleak -- oversized buffer dropped on purpose so one giant dump cannot pin its backing array in the pool
		return
	}
	jsonEncPool.Put(e)
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/launch", s.handleLaunch)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /v1/sessions", s.handleSessions)
	mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	mux.HandleFunc("GET /v1/trace", s.handleTrace)
	mux.HandleFunc("POST /v1/pause", s.handlePause)
	mux.HandleFunc("POST /v1/resume", s.handleResume)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// decodeLaunch parses the request body and resolves the client identity
// (X-Flep-Client header over body field over "anonymous").
func decodeLaunch(w http.ResponseWriter, r *http.Request) (LaunchRequest, string, error) {
	var req LaunchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		return LaunchRequest{}, "", err
	}
	client := r.Header.Get("X-Flep-Client")
	if client == "" {
		client = req.Client
	}
	if client == "" {
		client = "anonymous"
	}
	return req, client, nil
}

func (s *Server) handleLaunch(w http.ResponseWriter, r *http.Request) {
	req, client, err := decodeLaunch(w, r)
	if err != nil {
		s.countInvalid("")
		writeJSON(w, http.StatusBadRequest, apiError{"bad request body: " + err.Error()})
		return
	}
	s.serveLaunch(w, r, req, client)
}

// serveLaunch validates, admits, and awaits one parsed launch on this
// shard. The fleet router calls it directly after placement, so every
// outcome — including validation rejects — is accounted on the shard that
// handled it.
func (s *Server) serveLaunch(w http.ResponseWriter, r *http.Request, req LaunchRequest, client string) {
	bench, ok := s.benches[req.Benchmark]
	if !ok {
		s.countInvalid(client)
		writeJSON(w, http.StatusBadRequest, apiError{"unknown or unloaded benchmark " + strconv.Quote(req.Benchmark)})
		return
	}
	class, err := parseClass(req.Class)
	if err != nil {
		s.countInvalid(client)
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	prio := req.Priority
	if prio == 0 {
		prio = 1
	}
	if prio < 0 || req.TasksOverride < 0 || req.Weight < 0 {
		s.countInvalid(client)
		writeJSON(w, http.StatusBadRequest, apiError{"priority, weight and tasks_override must be non-negative"})
		return
	}
	deadline, err := parseSLO(req.SLOClass, req.DeadlineMS)
	if err != nil {
		s.countInvalid(client)
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	if err := validateDepSpec(&req); err != nil {
		s.countInvalid(client)
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}

	q := getLaunchReq()
	q.client, q.bench, q.class = client, bench, class
	q.priority, q.weight, q.tasksOverride = prio, req.Weight, req.TasksOverride
	q.deadline = deadline
	q.graph, q.stage, q.model = req.Graph, req.Stage, req.Model
	q.after, q.stages = req.After, req.Stages
	q.enqueuedReal = time.Now()

	parked := false
	if q.graph != "" {
		verdict, derr := s.depAdmit(q)
		switch verdict {
		case depRejectInvalid:
			putLaunchReq(q)
			s.countInvalid(client)
			writeJSON(w, http.StatusBadRequest, apiError{derr.Error()})
			return
		case depRejectDraining:
			putLaunchReq(q)
			s.met.RejectedDraining.Inc()
			s.mu.Lock()
			s.c.RejectedDraining++
			if sess := s.sessions[client]; sess != nil {
				sess.RejectedDraining++
			}
			s.mu.Unlock()
			writeJSON(w, http.StatusServiceUnavailable, apiError{derr.Error()})
			return
		case depRejectFull:
			putLaunchReq(q)
			s.met.RejectedDepFull.Inc()
			s.mu.Lock()
			s.c.RejectedDepFull++
			if sess := s.sessions[client]; sess != nil {
				sess.RejectedDepFull++
			}
			s.mu.Unlock()
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
			writeJSON(w, http.StatusTooManyRequests, apiError{derr.Error()})
			return
		case depCancelStage:
			// The stage is registered (and counted) as canceled; it never
			// becomes queue work, so it stays outside the Enqueued ledger.
			putLaunchReq(q)
			s.met.DepCanceled.Inc()
			s.mu.Lock()
			s.c.DepCanceled++
			if sess := s.sessions[client]; sess != nil {
				sess.DepCanceled++
			}
			s.mu.Unlock()
			writeJSON(w, http.StatusConflict, apiError{derr.Error()})
			return
		case depParkStage:
			// Parked: the table owns q until a completion releases it or a
			// cascade cancels it; this handler just waits on q.done. The
			// session is materialized — a parked stage passed validation and
			// occupies a bounded table slot, so it is accepted work.
			parked = true
			s.mu.Lock()
			s.session(client)
			s.mu.Unlock()
		case depReady:
			// Prerequisites already complete: admit through the normal
			// bounded queue below.
		}
	}

	if !parked {
		if err := s.tryEnqueue(q); err != nil {
			s.rejectLaunch(w, q, client, err)
			return
		}
		s.met.Enqueued.Inc()
		s.mu.Lock()
		s.c.Enqueued++
		s.session(client).Launches++
		s.mu.Unlock()
	}

	timeout := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-q.done:
		s.met.RequestLatency.Observe(time.Since(q.enqueuedReal).Seconds())
		// The terminal result arrived, so the loop is finished with q and
		// this handler holds exclusive ownership again (res is a copy).
		putLaunchReq(q)
		if res.Canceled != "" {
			writeJSON(w, http.StatusConflict, &res)
			return
		}
		if res.Err != "" {
			writeJSON(w, http.StatusUnprocessableEntity, &res)
			return
		}
		writeJSON(w, http.StatusOK, &res)
	//flepvet:allow poolleak -- timeout abandons the wait on purpose; the loop still owns q (see comment below) so recycling here would be a use-after-free
	case <-timer.C:
		// q is deliberately NOT recycled on the timeout and cancel paths:
		// the loop (or the dependency table) still owns it until the
		// buffered terminal send lands, after which nothing references it
		// and it is garbage collected. The invocation is NOT lost: the loop
		// finishes and accounts it; only this handler stops waiting.
		s.met.TimedOut.Inc()
		s.mu.Lock()
		s.c.TimedOut++
		s.session(client).TimedOut++
		s.mu.Unlock()
		writeJSON(w, http.StatusGatewayTimeout,
			apiError{"timed out waiting for completion; the invocation still runs to completion"})
	//flepvet:allow poolleak -- client cancel abandons the wait; ownership of q stays with the loop, same as the timeout arm
	case <-r.Context().Done():
		// The launch was accepted, so the session exists; record the
		// abandonment there too, or /v1/sessions cannot tell a canceled
		// waiter from a live one.
		s.met.Canceled.Inc()
		s.mu.Lock()
		s.c.Canceled++
		s.session(client).Canceled++
		s.mu.Unlock()
	}
}

// rejectLaunch accounts a tryEnqueue failure and answers the client.
// For graph stages the failure also dooms the stage's descendants: the
// cascade runs before q is recycled, because depStageFailed reads q's
// graph coordinates.
func (s *Server) rejectLaunch(w http.ResponseWriter, q *launchReq, client string, err error) {
	if q.graph != "" {
		s.depStageFailed(q)
	}
	putLaunchReq(q) // the loop never saw it; safe to recycle now
	s.mu.Lock()
	// Record the reject on the client's session only if one already
	// exists: a launch that never entered the queue must not
	// materialize per-client state (it would be an unbounded-memory
	// vector, and the draining path used to create sessions it then
	// never even recorded the rejection on).
	sess := s.sessions[client]
	switch {
	case errors.Is(err, ErrQueueFull):
		s.c.RejectedFull++
		if sess != nil {
			sess.RejectedFull++
		}
		s.met.RejectedFull.Inc()
	case errors.Is(err, ErrBestEffortShed):
		s.c.RejectedShed++
		if sess != nil {
			sess.RejectedShed++
		}
		s.met.RejectedShed.Inc()
	default:
		s.c.RejectedDraining++
		if sess != nil {
			sess.RejectedDraining++
		}
		s.met.RejectedDraining.Inc()
	}
	s.mu.Unlock()
	if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrBestEffortShed) {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		writeJSON(w, http.StatusTooManyRequests, apiError{err.Error()})
	} else {
		writeJSON(w, http.StatusServiceUnavailable, apiError{err.Error()})
	}
}

// countInvalid accounts a validation reject. It deliberately does NOT
// materialize a session: invalid requests carry attacker-controlled
// client names, and creating state per garbage name is an
// unbounded-memory vector.
func (s *Server) countInvalid(client string) {
	s.met.RejectedInvalid.Inc()
	s.mu.Lock()
	s.c.RejectedInvalid++
	if sess := s.sessions[client]; sess != nil {
		sess.RejectedInvalid++
	}
	s.mu.Unlock()
}

// parseSLO resolves the request's SLO class and deadline into the
// virtual-time budget the admitted invocation will carry (zero =
// best-effort).
func parseSLO(class string, deadlineMS int) (time.Duration, error) {
	if deadlineMS < 0 {
		return 0, fmt.Errorf("deadline_ms must be non-negative")
	}
	d := time.Duration(deadlineMS) * time.Millisecond
	switch class {
	case "":
		return d, nil
	case "latency":
		if d == 0 {
			return 0, fmt.Errorf(`slo_class "latency" requires a positive deadline_ms`)
		}
		return d, nil
	case "best_effort":
		if d > 0 {
			return 0, fmt.Errorf(`slo_class "best_effort" cannot carry a deadline_ms`)
		}
		return 0, nil
	}
	return 0, fmt.Errorf("unknown slo_class %q (want latency or best_effort)", class)
}

// statusSnapshot assembles the shard's live status (the fleet aggregates
// these across devices).
func (s *Server) statusSnapshot() Status {
	names := make([]string, 0, len(s.info))
	for _, bi := range s.info {
		names = append(names, bi.Name)
	}
	s.mu.Lock()
	st := Status{
		Policy:          s.cfg.Policy,
		Spatial:         s.cfg.Spatial,
		Device:          s.cfg.Device,
		Benchmarks:      names,
		UptimeMS:        time.Since(s.startReal).Milliseconds(),
		VirtualNowUS:    float64(s.vnow.Load()) / 1e3,
		QueueLen:        len(s.submitCh),
		QueueCap:        cap(s.submitCh),
		MemoryFreeBytes: s.MemoryAvailable(),
		Paused:          s.paused.Load(),
		Sessions:        len(s.sessions),
		Counters:        s.c,
		// In-flight work keeps the invariant an inequality; at rest
		// (drained or idle) it must hold with equality.
		ExactlyOnceOK: s.c.Completed+s.c.SubmitErrors <= s.c.Enqueued,
		SLO: SLOStatus{
			Attained:       s.c.SLOAttained,
			Missed:         s.c.SLOMissed,
			BestEffortShed: s.c.RejectedShed,
		},
	}
	if n := st.SLO.Attained + st.SLO.Missed; n > 0 {
		st.SLO.AttainRate = float64(st.SLO.Attained) / float64(n)
		st.SLO.MeanMarginUS = float64(s.sloMarginSum) / float64(n) / 1e3
	}
	s.mu.Unlock()
	st.Draining = s.Draining()
	// Models snapshots under depMu, taken after mu is released (depMu is
	// never acquired while holding mu).
	st.Models = s.modelStatuses()
	if s.tlog != nil {
		st.TraceEntries = s.tlog.Len()
		st.TraceDropped = s.tlog.Dropped()
	}
	return st
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statusSnapshot())
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.SessionSnapshots())
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.info)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.tlog == nil {
		writeJSON(w, http.StatusNotFound, apiError{"trace disabled; start flepd with -trace"})
		return
	}
	entries := s.tlog.Filter(r.URL.Query().Get("kind"))
	if n, err := strconv.Atoi(r.URL.Query().Get("limit")); err == nil && n > 0 && n < len(entries) {
		entries = entries[len(entries)-n:]
	}
	switch r.URL.Query().Get("format") {
	case "", "json":
		writeJSON(w, http.StatusOK, entries)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, e := range entries {
			if _, err := w.Write([]byte(formatEntry(e))); err != nil {
				return
			}
		}
	default:
		writeJSON(w, http.StatusBadRequest, apiError{"unknown format (want json or text)"})
	}
}

func (s *Server) handlePause(w http.ResponseWriter, r *http.Request) {
	if err := s.Pause(); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, apiError{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"paused": true})
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	if err := s.Resume(); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, apiError{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"paused": false})
}

// handleHealthz is pure liveness: it answers 200 for as long as the
// process can serve HTTP, draining or not. A draining daemon is alive —
// it is finishing accepted work — and restarting it on a failed liveness
// probe would lose exactly that work.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

// handleReadyz is the routing signal: 503 from the instant drain begins
// (before in-flight work finishes), so a load balancer or the flepgw
// gateway stops routing new launches here immediately.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ready\n"))
}
