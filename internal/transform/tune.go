package transform

import "fmt"

// DefaultOverheadThreshold is the paper's tuning target: FLEP picks the
// smallest amortizing factor whose runtime overhead stays below 4%.
const DefaultOverheadThreshold = 0.04

// DefaultMaxAmortize bounds the offline search. The paper's largest tuned
// factor is 200 (VA); 4096 leaves generous headroom for heavier polls.
const DefaultMaxAmortize = 4096

// OverheadFunc measures the relative runtime overhead of the transformed
// kernel at amortizing factor L against the original kernel (e.g. 0.025 for
// 2.5%). Implementations typically run both forms on the GPU model.
type OverheadFunc func(L int) float64

// Autotune finds the smallest amortizing factor L in [1, maxL] whose
// measured overhead is below threshold, reproducing the paper's offline
// tuning ("trying different values from small to large"). Overhead is
// monotonically non-increasing in L apart from measurement noise, so the
// search doubles L until the constraint holds and then binary-searches the
// last interval. If no L satisfies the constraint, the L with the smallest
// measured overhead is returned along with that overhead and ok=false.
func Autotune(measure OverheadFunc, threshold float64, maxL int) (l int, overhead float64, ok bool) {
	if measure == nil {
		panic("transform: Autotune with nil measure func")
	}
	if threshold <= 0 {
		threshold = DefaultOverheadThreshold
	}
	if maxL <= 0 {
		maxL = DefaultMaxAmortize
	}

	bestL, bestOv := 1, measure(1)
	if bestOv < threshold {
		return 1, bestOv, true
	}
	// Exponential probe for the first satisfying L.
	lo, hi := 1, 2
	var hiOv float64
	for {
		if hi > maxL {
			hi = maxL
		}
		hiOv = measure(hi)
		if hiOv < bestOv {
			bestL, bestOv = hi, hiOv
		}
		if hiOv < threshold || hi == maxL {
			break
		}
		lo = hi
		hi *= 2
	}
	if hiOv >= threshold {
		return bestL, bestOv, false
	}
	// Binary search in (lo, hi] for the smallest satisfying L.
	for lo+1 < hi {
		mid := (lo + hi) / 2
		ov := measure(mid)
		if ov < threshold {
			hi = mid
			hiOv = ov
		} else {
			lo = mid
		}
	}
	return hi, hiOv, true
}

// TuneResult records one kernel's offline tuning outcome for reporting.
type TuneResult struct {
	Kernel    string
	L         int
	Overhead  float64
	Satisfied bool
}

// String formats the result like the paper's Table 1 column.
func (t TuneResult) String() string {
	status := ""
	if !t.Satisfied {
		status = " (threshold not met)"
	}
	return fmt.Sprintf("%s: L=%d overhead=%.2f%%%s", t.Kernel, t.L, t.Overhead*100, status)
}
