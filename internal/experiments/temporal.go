package experiments

import (
	"time"

	"flep/internal/core"
	"flep/internal/kernels"
	"flep/internal/metrics"
	"flep/internal/workload"
)

// Figure8 regenerates the HPF priority experiment: speedup of the
// high-priority kernel's turnaround under FLEP over the MPS co-run, across
// the 28 pairs. Paper: mean 10.1x, max 24.2x (SPMV_NN), min 4.1x.
func (s *Suite) Figure8() (*Table, error) {
	t := &Table{
		ID:      "fig8",
		Title:   "Performance improvement for high-priority kernels (HPF vs MPS)",
		Columns: []string{"pair", "MPS(us)", "FLEP(us)", "speedup"},
	}
	var sum, maxV float64
	minV := 1e18
	pairs := workload.PriorityPairs()
	for _, sc := range pairs {
		mps, err := s.Sys.RunMPS(sc)
		if err != nil {
			return nil, err
		}
		flep, err := s.Sys.RunFLEP(sc, core.Options{Policy: "hpf"})
		if err != nil {
			return nil, err
		}
		high := sc.Items[1].Bench.Name
		sp := metrics.Speedup(mps.ResultFor(high).Turnaround(), flep.ResultFor(high).Turnaround())
		sum += sp
		if sp > maxV {
			maxV = sp
		}
		if sp < minV {
			minV = sp
		}
		t.AddRow(sc.Name, mps.ResultFor(high).Turnaround(), flep.ResultFor(high).Turnaround(), x(sp))
	}
	t.Note("mean %.1fx, max %.1fx, min %.1fx over %d pairs (paper: mean 10.1x, max 24.2x, min 4.1x)",
		sum/float64(len(pairs)), maxV, minV, len(pairs))
	return t, nil
}

// Figure9 regenerates the delayed-invocation sweep: the high-priority
// speedup as a function of the delay between the low- and high-priority
// launches. Paper: near-linear decay to a plateau at 1 once the delay
// exceeds the low-priority kernel's duration.
func (s *Suite) Figure9() (*Table, error) {
	t := &Table{
		ID:      "fig9",
		Title:   "High-priority speedup vs invocation delay",
		Columns: []string{"pair", "delay(us)", "speedup"},
	}
	cases := [][2]string{{"SPMV", "NN"}, {"MM", "PF"}, {"VA", "CFD"}, {"NN", "PL"}}
	for _, c := range cases {
		high, _ := kernels.ByName(c[0])
		low, _ := kernels.ByName(c[1])
		lowSolo, err := s.Sys.SoloTime(low, kernels.Large)
		if err != nil {
			return nil, err
		}
		for _, frac := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2} {
			delay := time.Duration(frac * float64(lowSolo))
			sc := workload.PriorityPair(high, low, delay)
			mps, err := s.Sys.RunMPS(sc)
			if err != nil {
				return nil, err
			}
			flep, err := s.Sys.RunFLEP(sc, core.Options{Policy: "hpf"})
			if err != nil {
				return nil, err
			}
			sp := metrics.Speedup(mps.ResultFor(c[0]).Turnaround(), flep.ResultFor(c[0]).Turnaround())
			t.AddRow(sc.Name, delay, x(sp))
		}
	}
	t.Note("speedup decays with delay and plateaus near 1 once the delay exceeds the low-priority duration")
	return t, nil
}

// equalPairMetrics runs one equal-priority scenario under MPS and FLEP and
// returns (ANTT_MPS, ANTT_FLEP, STPexec_MPS, STPexec_FLEP). STP uses
// execution time (turnaround minus waiting): Figure 11 measures the
// throughput cost of FLEP's overheads, not of queueing.
func (s *Suite) equalPairMetrics(sc workload.Scenario) (anttM, anttF, stpM, stpF float64, err error) {
	mps, err := s.Sys.RunMPS(sc)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	flep, err := s.Sys.RunFLEP(sc, core.Options{Policy: "hpf"})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	tRuns, err := s.Sys.KernelRuns(sc, mps)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	fRuns, err := s.Sys.KernelRuns(sc, flep)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	anttM, anttF = metrics.ANTT(tRuns), metrics.ANTT(fRuns)
	stpM = metrics.STP(execRuns(s, sc, mps))
	stpF = metrics.STP(execRuns(s, sc, flep))
	return anttM, anttF, stpM, stpF, nil
}

// execRuns converts results into runs normalized by execution time
// (turnaround − waiting) for throughput accounting.
func execRuns(s *Suite, sc workload.Scenario, res *core.RunResult) []metrics.KernelRun {
	classOf := map[string]kernels.InputClass{}
	benchOf := map[string]*kernels.Benchmark{}
	for _, item := range sc.Items {
		classOf[item.Bench.Name] = item.Class
		benchOf[item.Bench.Name] = item.Bench
	}
	var out []metrics.KernelRun
	for _, r := range res.Results {
		alone, err := s.Sys.SoloTime(benchOf[r.Kernel], classOf[r.Kernel])
		if err != nil {
			continue
		}
		out = append(out, metrics.KernelRun{
			Name: r.Kernel, Alone: alone, Turnaround: r.Turnaround() - r.Waiting,
		})
	}
	return out
}

// Figure10 regenerates the equal-priority ANTT improvement over MPS across
// the 28 pairs. Paper: 8x average.
func (s *Suite) Figure10() (*Table, error) {
	t := &Table{
		ID:      "fig10",
		Title:   "ANTT improvement, equal-priority two-kernel co-runs",
		Columns: []string{"pair", "ANTT-MPS", "ANTT-FLEP", "improvement"},
	}
	sum := 0.0
	pairs := workload.EqualPairs()
	for _, sc := range pairs {
		am, af, _, _, err := s.equalPairMetrics(sc)
		if err != nil {
			return nil, err
		}
		imp := am / af
		sum += imp
		t.AddRow(sc.Name, am, af, x(imp))
	}
	t.Note("mean ANTT improvement %.1fx over %d pairs (paper: 8x average)", sum/float64(len(pairs)), len(pairs))
	return t, nil
}

// Figure11 regenerates the STP degradation of the same runs. Paper: ~5.4%
// average (throughput sacrificed for responsiveness).
func (s *Suite) Figure11() (*Table, error) {
	t := &Table{
		ID:      "fig11",
		Title:   "System throughput degradation, equal-priority co-runs",
		Columns: []string{"pair", "STP-MPS", "STP-FLEP", "degradation"},
	}
	sum := 0.0
	pairs := workload.EqualPairs()
	for _, sc := range pairs {
		_, _, sm, sf, err := s.equalPairMetrics(sc)
		if err != nil {
			return nil, err
		}
		deg := 1 - sf/sm
		sum += deg
		t.AddRow(sc.Name, sm, sf, pct(deg))
	}
	t.Note("mean STP degradation %s over %d pairs (paper: ~5.4%%)", pct(sum/float64(len(pairs))), len(pairs))
	return t, nil
}

// Figure12 regenerates the three-kernel co-runs: FLEP's ANTT improvement
// over MPS for 28 triplets, against the kernel-reordering baseline.
// Paper: FLEP up to 20.2x (VA_SPMV_MM), mean 6.6x; reordering only 2.3%.
func (s *Suite) Figure12() (*Table, error) {
	t := &Table{
		ID:      "fig12",
		Title:   "ANTT improvement on three-kernel co-runs (FLEP vs reordering)",
		Columns: []string{"triplet", "ANTT-MPS", "ANTT-FLEP", "FLEP-impr", "ANTT-reorder", "reorder-impr"},
	}
	var sumF, sumR, maxF float64
	trips := workload.Triplets()
	for _, sc := range trips {
		mps, err := s.Sys.RunMPS(sc)
		if err != nil {
			return nil, err
		}
		flep, err := s.Sys.RunFLEP(sc, core.Options{Policy: "hpf"})
		if err != nil {
			return nil, err
		}
		reorder, err := s.Sys.RunReorder(sc)
		if err != nil {
			return nil, err
		}
		mRuns, err := s.Sys.KernelRuns(sc, mps)
		if err != nil {
			return nil, err
		}
		fRuns, err := s.Sys.KernelRuns(sc, flep)
		if err != nil {
			return nil, err
		}
		rRuns, err := s.Sys.KernelRuns(sc, reorder)
		if err != nil {
			return nil, err
		}
		am, af, ar := metrics.ANTT(mRuns), metrics.ANTT(fRuns), metrics.ANTT(rRuns)
		impF, impR := am/af, am/ar
		sumF += impF
		sumR += impR
		if impF > maxF {
			maxF = impF
		}
		t.AddRow(sc.Name, am, af, x(impF), ar, x(impR))
	}
	n := float64(len(trips))
	t.Note("FLEP mean %.1fx, max %.1fx (paper: 6.6x mean, 20.2x max for VA_SPMV_MM)", sumF/n, maxF)
	t.Note("reordering mean improvement %s (paper: ~2.3%%)", pct(sumR/n-1))
	return t, nil
}
