package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"flep/internal/trace"
)

func newTestFleet(t *testing.T, cfg FleetConfig) (*Fleet, *httptest.Server) {
	t.Helper()
	if len(cfg.Benchmarks) == 0 {
		cfg.Benchmarks = []string{"VA", "MM"}
	}
	f, err := NewFleetWithSystem(testSystem(t), cfg)
	if err != nil {
		t.Fatalf("NewFleetWithSystem: %v", err)
	}
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := f.Shutdown(ctx); err != nil {
			t.Errorf("fleet shutdown: %v", err)
		}
	})
	return f, ts
}

// TestFleetSpreadsLoadAcrossShards checks the placement router: with
// affinity off and all shards parked, successive launches must land on
// successively less-loaded shards — an even spread — rather than piling
// onto shard 0.
func TestFleetSpreadsLoadAcrossShards(t *testing.T) {
	const devices = 4
	f, ts := newTestFleet(t, FleetConfig{Devices: devices})
	if err := f.Pause(); err != nil {
		t.Fatal(err)
	}

	results := make(chan LaunchResult, 2*devices)
	for i := 0; i < 2*devices; i++ {
		i := i
		go func() {
			_, res := launch(t, ts.URL, LaunchRequest{
				Client: fmt.Sprintf("c%d", i), Benchmark: "VA", Class: "small",
			})
			results <- res
		}()
		// Wait until this launch is visibly queued before firing the next,
		// so every placement sees the previous one's load.
		waitFor(t, "launch queued", func() bool {
			return getStatus(t, ts.URL).QueueLen == i+1
		})
	}

	st := getStatus(t, ts.URL)
	if len(st.Devices) != devices {
		t.Fatalf("status lists %d devices, want %d", len(st.Devices), devices)
	}
	for i, d := range st.Devices {
		if d.Device != i {
			t.Fatalf("devices[%d] carries index %d", i, d.Device)
		}
		if d.QueueLen != 2 {
			t.Fatalf("shard %d queued %d launches, want 2 (router did not spread)", i, d.QueueLen)
		}
	}

	if err := f.Resume(); err != nil {
		t.Fatal(err)
	}
	perDev := map[int]int{}
	for i := 0; i < 2*devices; i++ {
		res := <-results
		if res.Err != "" {
			t.Fatalf("launch failed: %+v", res)
		}
		perDev[res.Device]++
	}
	for i := 0; i < devices; i++ {
		if perDev[i] != 2 {
			t.Fatalf("device %d executed %d launches, want 2 (spread %v)", i, perDev[i], perDev)
		}
	}
}

// TestFleetSessionAffinityPinsClients checks that with affinity on, a
// client's first placement sticks: later launches go to the same shard
// even when other shards are idle.
func TestFleetSessionAffinityPinsClients(t *testing.T) {
	f, ts := newTestFleet(t, FleetConfig{Devices: 2, Affinity: true})
	if err := f.Pause(); err != nil {
		t.Fatal(err)
	}

	// alice pins to shard 0 (idle tie → lowest index); bob then sees
	// alice's queued launch and pins to shard 1.
	results := make(chan LaunchResult, 3)
	for i, client := range []string{"alice", "bob"} {
		client := client
		go func() {
			_, res := launch(t, ts.URL, LaunchRequest{Client: client, Benchmark: "VA"})
			results <- res
		}()
		waitFor(t, client+" queued", func() bool {
			return getStatus(t, ts.URL).QueueLen == i+1
		})
	}
	if i, ok := f.AffinityFor("alice"); !ok || i != 0 {
		t.Fatalf("alice pinned to %d (ok=%v), want 0", i, ok)
	}
	if i, ok := f.AffinityFor("bob"); !ok || i != 1 {
		t.Fatalf("bob pinned to %d (ok=%v), want 1", i, ok)
	}

	if err := f.Resume(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if res := <-results; res.Err != "" {
			t.Fatalf("launch failed: %+v", res)
		}
	}

	// Shard 1 is now idle, but alice must still land on her pinned shard 0.
	_, res := launch(t, ts.URL, LaunchRequest{Client: "alice", Benchmark: "MM"})
	if res.Err != "" || res.Device != 0 {
		t.Fatalf("alice's follow-up ran on device %d (%+v), want pinned 0", res.Device, res)
	}

	// The merged session view attributes each client to exactly one shard.
	resp, err := http.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sessions []SessionSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&sessions); err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 2 {
		t.Fatalf("sessions: %+v", sessions)
	}
	for _, snap := range sessions {
		if len(snap.Devices) != 1 {
			t.Fatalf("session %s touched devices %v, want exactly one under affinity", snap.ID, snap.Devices)
		}
	}
}

// TestFleetMetricsReconcileWithStatus drives load across 4 shards and
// checks the exposition end to end: every sample carries a device label,
// per-device launch counters match that shard's /v1/status numbers, and
// the device sums match the fleet aggregate exactly.
func TestFleetMetricsReconcileWithStatus(t *testing.T) {
	const devices = 4
	_, ts := newTestFleet(t, FleetConfig{Devices: devices})

	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bench := []string{"VA", "MM"}[i%2]
			_, res := launch(t, ts.URL, LaunchRequest{
				Client: fmt.Sprintf("c%d", i%3), Benchmark: bench, Priority: 1 + i%2,
			})
			if res.Err != "" {
				t.Errorf("launch %d: %+v", i, res)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	waitFor(t, "fleet at rest", func() bool {
		st := getStatus(t, ts.URL)
		return st.Counters.Completed+st.Counters.SubmitErrors == st.Counters.Enqueued
	})

	st := getStatus(t, ts.URL)
	snap := scrape(t, ts.URL)
	var sumEnq, sumDone float64
	for i := 0; i < devices; i++ {
		dev := strconv.Itoa(i)
		enq := snap.SumMatching("flep_server_launches_total", "device", dev, "outcome", "enqueued")
		done := snap.SumMatching("flep_server_launches_total", "device", dev, "outcome", "completed")
		ds := st.Devices[i]
		if int64(enq) != ds.Counters.Enqueued || int64(done) != ds.Counters.Completed {
			t.Fatalf("device %d: metrics (enq=%v done=%v) != status %+v", i, enq, done, ds.Counters)
		}
		sumEnq += enq
		sumDone += done
	}
	if int64(sumEnq) != st.Counters.Enqueued || int64(sumDone) != st.Counters.Completed {
		t.Fatalf("device sums (enq=%v done=%v) != aggregate %+v", sumEnq, sumDone, st.Counters)
	}
	if st.Counters.Completed != 12 {
		t.Fatalf("completed = %d, want 12", st.Counters.Completed)
	}
	// The runtime families aggregate the same way: every shard dispatched
	// what it completed.
	if disp := snap.SumMatching("flep_runtime_dispatches_total"); disp < 12 {
		t.Fatalf("runtime dispatches across devices = %v, want >= 12", disp)
	}
}

// TestFleetEndToEndDrainExactlyOnce is the fleet e2e: 4 shards, a burst of
// concurrent clients, a drain racing the tail of the load, and fleet-wide
// exactly-once accounting at rest. Every accepted launch must deliver
// exactly one result — (device, id) identifies an invocation fleet-wide,
// since each shard numbers its own — and the summed counters must balance.
// CI runs this under -race.
func TestFleetEndToEndDrainExactlyOnce(t *testing.T) {
	const devices = 4
	const clients = 24
	const perClient = 3
	f, ts := newTestFleet(t, FleetConfig{
		Config:  Config{QueueDepth: 64, RequestTimeout: time.Minute, Trace: true},
		Devices: devices,
	})
	ts.Config.SetKeepAlivesEnabled(false)

	type devID struct{ device, id int }
	var mu sync.Mutex
	seen := map[devID]int{}
	var accepted, rejected int

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := fmt.Sprintf("c%03d", c)
			for i := 0; i < perClient; i++ {
				code, res := launch(t, ts.URL, LaunchRequest{
					Client:    client,
					Benchmark: []string{"VA", "MM"}[(c+i)%2],
					Priority:  1 + (c+i)%2,
				})
				switch code {
				case http.StatusOK:
					mu.Lock()
					seen[devID{res.Device, res.ID}]++
					accepted++
					mu.Unlock()
				case http.StatusServiceUnavailable:
					// Landed after the drain began.
					mu.Lock()
					rejected++
					mu.Unlock()
					return
				default:
					t.Errorf("%s: code %d (%+v)", client, code, res)
					return
				}
			}
		}(c)
	}

	// Start the drain while the burst is in flight: accepted launches must
	// still run to completion; late arrivals get 503.
	waitFor(t, "some launches accepted", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return accepted >= clients
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := f.Shutdown(ctx); err != nil {
		t.Fatalf("fleet shutdown: %v", err)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	for id, n := range seen {
		if n != 1 {
			t.Fatalf("invocation %+v delivered %d results", id, n)
		}
	}
	c := f.Counters()
	if c["completed"]+c["submit_errors"] != c["enqueued"] {
		t.Fatalf("fleet exactly-once violated at rest: %v", c)
	}
	if c["completed"] != int64(accepted) {
		t.Fatalf("fleet completed %d != client-observed %d (rejected %d)", c["completed"], accepted, rejected)
	}
	for i := 0; i < devices; i++ {
		sc := f.Shard(i).Counters()
		if sc["completed"]+sc["submit_errors"] != sc["enqueued"] {
			t.Fatalf("device %d exactly-once violated: %v", i, sc)
		}
	}

	// The merged trace is time-ordered and device-stamped.
	entries := f.TraceEntries("")
	if len(entries) == 0 {
		t.Fatal("fleet trace is empty")
	}
	for i, e := range entries {
		if e.Device < 0 || e.Device >= devices {
			t.Fatalf("trace entry %d carries device %d", i, e.Device)
		}
		if i > 0 && e.Time < entries[i-1].Time {
			t.Fatalf("trace entry %d out of order: %v after %v", i, e.Time, entries[i-1].Time)
		}
	}

	// Post-drain launches are refused.
	code, _ := launch(t, ts.URL, LaunchRequest{Benchmark: "VA"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain launch code = %d, want 503", code)
	}
}

// Regression for the /v1/trace fleet aggregation: per-shard streams must
// merge into one global timestamp order with the documented (Time,
// Device) tie-break and per-shard append order preserved — not merely
// concatenate. The merge itself now lives in trace.Merge (shared with
// the cluster gateway); this pins the fleet-facing contract.
func TestMergeTraceEntriesGlobalOrder(t *testing.T) {
	e := func(dev int, at time.Duration, kind string) trace.Entry {
		return trace.Entry{Time: at, Device: dev, Source: "runtime", Kind: kind}
	}
	streams := [][]trace.Entry{
		{e(0, 10, "a"), e(0, 30, "b"), e(0, 30, "c"), e(0, 90, "d")},
		{e(1, 5, "e"), e(1, 30, "f"), e(1, 60, "g")},
		{}, // a shard that recorded nothing
		{e(3, 30, "h"), e(3, 95, "i")},
	}
	got := trace.Merge(streams)
	var want []string
	// t=5:e(d1); t=10:a(d0); t=30 ties by device then append order:
	// b,c(d0), f(d1), h(d3); t=60:g; t=90:d; t=95:i.
	for _, k := range []string{"e", "a", "b", "c", "f", "h", "g", "d", "i"} {
		want = append(want, k)
	}
	if len(got) != len(want) {
		t.Fatalf("merged %d entries, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Kind != w {
			order := make([]string, len(got))
			for j := range got {
				order[j] = got[j].Kind
			}
			t.Fatalf("position %d: got %q, want %q (full order %v)", i, got[i].Kind, w, order)
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time < got[i-1].Time {
			t.Fatalf("entry %d out of time order", i)
		}
		if got[i].Time == got[i-1].Time && got[i].Device < got[i-1].Device {
			t.Fatalf("entry %d violates the device tie-break", i)
		}
	}

	// Stream order must not matter: the same shards handed over in a
	// different slice order merge to the identical sequence.
	shuffled := [][]trace.Entry{streams[3], streams[1], streams[0], streams[2]}
	got2 := trace.Merge(shuffled)
	for i := range got {
		if got[i] != got2[i] {
			t.Fatalf("merge depends on stream order at %d: %+v vs %+v", i, got[i], got2[i])
		}
	}
}
