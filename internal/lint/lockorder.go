package lint

// lockorder builds the module's mutex-acquisition-order graph and
// reports anything that can deadlock — or that violates one of the
// repo's documented lock-nesting contracts even when today's code
// cannot deadlock yet.
//
// Per package (Run), every function gets a defer-aware linear walk in
// the style of lockdiscipline: a held-lock set tracks
// Lock/RLock/Unlock/RUnlock on canonical lock identities
// ("pkgpath.Type.field" for struct mutexes, "pkgpath.var" for package
// ones; locals are skipped), and the walk records each acquisition and
// each static call together with the set held at that point. Deferred
// Unlocks keep their region open; function literals are separate
// anonymous scopes (their internal acquisitions still count, but they
// do not inherit the enclosing held set, since the closure usually runs
// elsewhere).
//
// Finish merges all packages, closes each function's may-acquire set
// over the call graph, and materializes order edges: held H at an
// acquisition of L yields H→L; held H at a call whose callee
// may-acquire L yields H→L at the call site (caller-side attribution
// covers chains without propagating entry contexts). Then:
//
//   lockcycle  — the edge participates in a strongly connected
//     component of the order graph (including self-edges: re-acquiring
//     a held mutex);
//   lockinvert — a two-lock component with a dominant direction; the
//     minority edges are reported (the likely bug is the rare path);
//   lockpair   — the edge violates a declared contract from
//     lockOrderContracts (never-both pairs and one-way orders), the
//     machine-checked form of the comments in internal/server/deps.go
//     and internal/cluster.
//
// Soundness caveats (DESIGN.md §11): lock identity is per-field, not
// per-instance — two distinct Server values' mu fields are one node —
// and the held-set walk is linear (no path sensitivity), both biased
// toward over-reporting; dynamic calls contribute no edges, biased
// toward under-reporting.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"flep/internal/lint/analysis"
)

var LockOrderAnalyzer = &analysis.Analyzer{
	Name:       "lockorder",
	Doc:        "build the global mutex-acquisition-order graph; report cycles, inverted dominant orders, and contract violations",
	Categories: []string{"lockcycle", "lockinvert", "lockpair"},
	Run:        runLockOrder,
	Finish:     finishLockOrder,
}

// lockPairKind distinguishes contract flavors.
type lockPairKind int

const (
	pairNeverBoth lockPairKind = iota // neither may be held while acquiring the other
	pairOrder                         // a before b; acquiring a while holding b is the violation
)

type lockRef struct {
	pkgSub string // substring of the lock's package path
	tail   string // "Type.field" or package var name
}

type lockContract struct {
	kind lockPairKind
	a, b lockRef
	why  string
}

// lockOrderContracts is the machine-checked form of the repo's
// documented nesting rules.
var lockOrderContracts = []lockContract{
	{pairNeverBoth,
		lockRef{"internal/server", "Server.mu"}, lockRef{"internal/server", "Server.depMu"},
		"deps.go contract: the dep-table mutex is never held together with the loop mu"},
	{pairOrder,
		lockRef{"internal/server", "Fleet.mu"}, lockRef{"internal/server", "Server.mu"},
		"fleet contract: shard locks nest inside the fleet lock (route→pickShard→Load), never the reverse"},
	{pairNeverBoth,
		lockRef{"internal/replay", "Recorder.mu"}, lockRef{"internal/obs", "Registry.mu"},
		"replay contract: the recorder mu must not be held across registry calls — scrape closures take it"},
	{pairNeverBoth,
		lockRef{"internal/cluster", "Gateway.mu"}, lockRef{"internal/server", "Server.mu"},
		"cluster contract: the gateway node lock and an in-process shard lock must never nest"},
}

func (r lockRef) matches(lockID string) bool {
	suffix := "." + r.tail
	if !strings.HasSuffix(lockID, suffix) {
		return false
	}
	return strings.Contains(strings.TrimSuffix(lockID, suffix), r.pkgSub)
}

// lockAcq is one acquisition site with the locks already held there.
type lockAcq struct {
	Lock string
	Held []string
	Pos  token.Pos
}

// lockCallSite is one static call with the locks held at the call.
type lockCallSite struct {
	Callee string
	Held   []string
	Pos    token.Pos
}

// lockFuncFacts is one function's contribution, keyed by funcID.
type lockFuncFacts struct {
	Acqs  []lockAcq
	Calls []lockCallSite
}

// lockFacts is one package's Run result.
type lockFacts struct {
	Funcs map[string]*lockFuncFacts
}

func runLockOrder(pass *analysis.Pass) (any, error) {
	facts := &lockFacts{Funcs: map[string]*lockFuncFacts{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ff := &lockFuncFacts{}
			walkLockRegions(pass.TypesInfo, pass.Pkg, fd.Body, map[string]bool{}, ff)
			facts.Funcs[funcIDOf(fn)] = ff
		}
	}
	return facts, nil
}

// canonicalLockID renders the mutex operand of a Lock/Unlock call to a
// cross-function identity, or "" for locals.
func canonicalLockID(info *types.Info, pkg *types.Package, x ast.Expr) string {
	switch x := stripParens(x).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			fld, ok := sel.Obj().(*types.Var)
			if !ok {
				return ""
			}
			recv := sel.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if key := namedKey(recv); key != "" {
				return key + "." + fld.Name()
			}
			return ""
		}
		// Qualified package var: pkg.Mu.
		if obj, ok := info.Uses[x.Sel].(*types.Var); ok && obj.Pkg() != nil &&
			obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	case *ast.Ident:
		obj, ok := info.Uses[x].(*types.Var)
		if !ok || obj.Pkg() == nil {
			return ""
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	}
	return ""
}

// lockOpOf classifies a call as a mutex operation, returning the
// canonical lock ID and the method name.
func lockOpOf(info *types.Info, pkg *types.Package, call *ast.CallExpr) (string, string) {
	sel, ok := stripParens(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return canonicalLockID(info, pkg, sel.X), fn.Name()
	}
	return "", ""
}

func heldSnapshot(held map[string]bool) []string {
	out := make([]string, 0, len(held))
	for k := range held {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// walkLockRegions performs the defer-aware linear held-set walk over
// one body, recording acquisitions and static calls into ff. Function
// literals recurse with a fresh empty held set.
func walkLockRegions(info *types.Info, pkg *types.Package, body *ast.BlockStmt, held map[string]bool, ff *lockFuncFacts) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			walkLockRegions(info, pkg, n.Body, map[string]bool{}, ff)
			return false
		case *ast.GoStmt:
			// The goroutine runs without our held set; its function
			// literal (the common shape) is handled above when visited —
			// record a direct `go f()` as an unheld call.
			if fn := staticCalleeFunc(info, n.Call); fn != nil {
				ff.Calls = append(ff.Calls, lockCallSite{Callee: funcIDOf(fn), Pos: n.Call.Pos()})
			}
			// `go func(){...}()` carries the literal in Fun, not Args.
			for _, sub := range append([]ast.Expr{n.Call.Fun}, n.Call.Args...) {
				ast.Inspect(sub, func(m ast.Node) bool {
					if lit, ok := m.(*ast.FuncLit); ok {
						walkLockRegions(info, pkg, lit.Body, map[string]bool{}, ff)
						return false
					}
					return true
				})
			}
			return false
		case *ast.DeferStmt:
			// A deferred Unlock keeps the region open. Other deferred
			// calls run at exit under whatever is held then; recording
			// them under the current held set is the linear-walk
			// approximation (documented caveat).
			if id, kind := lockOpOf(info, pkg, n.Call); id != "" && (kind == "Unlock" || kind == "RUnlock") {
				return false
			}
			return true
		case *ast.CallExpr:
			if id, kind := lockOpOf(info, pkg, n); kind != "" {
				if id == "" {
					return true // local mutex: invisible cross-function
				}
				switch kind {
				case "Lock", "RLock":
					ff.Acqs = append(ff.Acqs, lockAcq{Lock: id, Held: heldSnapshot(held), Pos: n.Pos()})
					held[id] = true
				case "Unlock", "RUnlock":
					delete(held, id)
				}
				return true
			}
			if fn := staticCalleeFunc(info, n); fn != nil {
				ff.Calls = append(ff.Calls, lockCallSite{Callee: funcIDOf(fn), Held: heldSnapshot(held), Pos: n.Pos()})
			}
		}
		return true
	})
}

// ------------------------------------------------------------ finish

// lockEdge is one order-graph edge occurrence.
type lockEdge struct {
	From, To string
	Pos      token.Pos
}

func finishLockOrder(results []analysis.Result, report func(analysis.Diagnostic)) {
	funcs := map[string]*lockFuncFacts{}
	for _, r := range results {
		facts, ok := r.Value.(*lockFacts)
		if !ok || facts == nil {
			continue
		}
		for id, ff := range facts.Funcs {
			funcs[id] = ff
		}
	}

	// may[fn] = locks fn may acquire, transitively over static calls.
	may := map[string]map[string]bool{}
	for id, ff := range funcs {
		set := map[string]bool{}
		for _, a := range ff.Acqs {
			set[a.Lock] = true
		}
		may[id] = set
	}
	for changed := true; changed; {
		changed = false
		for id, ff := range funcs {
			set := may[id]
			for _, c := range ff.Calls {
				for l := range may[c.Callee] {
					if !set[l] {
						set[l] = true
						changed = true
					}
				}
			}
		}
	}

	// Materialize edges.
	var edges []lockEdge
	for _, id := range sortedKeys(funcs) {
		ff := funcs[id]
		for _, a := range ff.Acqs {
			// h == a.Lock yields a self-edge: immediate self-deadlock for
			// sync.Mutex, writer-starvation deadlock for RWMutex readers.
			for _, h := range a.Held {
				edges = append(edges, lockEdge{From: h, To: a.Lock, Pos: a.Pos})
			}
		}
		for _, c := range ff.Calls {
			if len(c.Held) == 0 {
				continue
			}
			for _, l := range sortedKeys(may[c.Callee]) {
				for _, h := range c.Held {
					edges = append(edges, lockEdge{From: h, To: l, Pos: c.Pos})
				}
			}
		}
	}

	// Contract violations.
	for _, e := range edges {
		for _, ct := range lockOrderContracts {
			switch ct.kind {
			case pairNeverBoth:
				if (ct.a.matches(e.From) && ct.b.matches(e.To)) ||
					(ct.b.matches(e.From) && ct.a.matches(e.To)) {
					report(analysis.Diagnostic{Pos: e.Pos, Category: "lockpair",
						Message: fmt.Sprintf("acquires %s while holding %s — %s", shortLock(e.To), shortLock(e.From), ct.why)})
				}
			case pairOrder:
				if ct.b.matches(e.From) && ct.a.matches(e.To) {
					report(analysis.Diagnostic{Pos: e.Pos, Category: "lockpair",
						Message: fmt.Sprintf("acquires %s while holding %s — %s", shortLock(e.To), shortLock(e.From), ct.why)})
				}
			}
		}
	}

	// Cycle detection over the distinct-edge graph.
	adj := map[string]map[string]bool{}
	nodes := map[string]bool{}
	for _, e := range edges {
		nodes[e.From], nodes[e.To] = true, true
		if adj[e.From] == nil {
			adj[e.From] = map[string]bool{}
		}
		adj[e.From][e.To] = true
	}
	comp := lockSCC(nodes, adj)
	for _, e := range edges {
		if e.From == e.To {
			report(analysis.Diagnostic{Pos: e.Pos, Category: "lockcycle",
				Message: fmt.Sprintf("re-acquires %s while already holding it", shortLock(e.To))})
			continue
		}
		if comp[e.From] != comp[e.To] || comp[e.From] == 0 {
			continue
		}
		// Same non-trivial SCC: cycle. Two-lock components with a
		// dominant direction get the sharper inversion report.
		fwd, rev := 0, 0
		for _, e2 := range edges {
			if e2.From == e.From && e2.To == e.To {
				fwd++
			}
			if e2.From == e.To && e2.To == e.From {
				rev++
			}
		}
		if fwd < rev {
			report(analysis.Diagnostic{Pos: e.Pos, Category: "lockinvert",
				Message: fmt.Sprintf("acquires %s while holding %s, inverting the dominant %s→%s order (%d sites)",
					shortLock(e.To), shortLock(e.From), shortLock(e.To), shortLock(e.From), rev)})
		} else {
			report(analysis.Diagnostic{Pos: e.Pos, Category: "lockcycle",
				Message: fmt.Sprintf("acquisition edge %s→%s closes a lock-order cycle; a concurrent inverse acquisition deadlocks",
					shortLock(e.From), shortLock(e.To))})
		}
	}
}

// shortLock trims the module path prefix for readable messages.
func shortLock(id string) string {
	if i := strings.LastIndex(id, "/"); i >= 0 {
		return id[i+1:]
	}
	return id
}

func sortedKeys[M map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// lockSCC assigns a component number to every node in a non-trivial
// strongly connected component (nodes in singleton components without a
// self-loop get 0).
func lockSCC(nodes map[string]bool, adj map[string]map[string]bool) map[string]int {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	comp := map[string]int{}
	next, compID := 0, 0

	var visit func(string)
	visit = func(id string) {
		index[id] = next
		low[id] = next
		next++
		stack = append(stack, id)
		onStack[id] = true
		for t := range adj[id] {
			if _, seen := index[t]; !seen {
				visit(t)
				if low[t] < low[id] {
					low[id] = low[t]
				}
			} else if onStack[t] && index[t] < low[id] {
				low[id] = index[t]
			}
		}
		if low[id] == index[id] {
			var members []string
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				members = append(members, top)
				if top == id {
					break
				}
			}
			if len(members) > 1 {
				compID++
				for _, m := range members {
					comp[m] = compID
				}
			}
		}
	}
	for _, id := range sortedKeys(nodes) {
		if _, seen := index[id]; !seen {
			visit(id)
		}
	}
	return comp
}
