package lint

// poolownership enforces the sync.Pool hand-off protocols the serving
// hot path depends on (launchReqPool in internal/server/loop.go,
// jsonEncPool in internal/server/http.go). It is the first client of
// the interprocedural engine in interp.go: pooled values obtained from
// pool.Get (directly or through a returns-pooled helper such as
// getLaunchReq) are tracked through assignments, branches, and calls;
// callee effects come from per-exit summaries, so a conditional
// release like tryEnqueue — which consumes its argument only on the
// nil-error exit — refines correctly at the caller's `if err != nil`.
//
// Categories:
//
//   useafterput — a pooled value is read after a path definitely
//     returned it to the pool;
//   doubleput   — a pooled value is Put twice on one path;
//   putescaped  — a value that escaped (stored into a field, sent on a
//     channel, captured by a closure, handed to a goroutine) is Put —
//     the other holder would see a recycled object;
//   poolleak    — a pool-originated value reaches a function exit still
//     owned (never Put, never handed off), or was handed off in a
//     function that normally reclaims via a channel receive and the
//     exit path abandons the reclaim (the serveLaunch timeout shape).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"flep/internal/lint/analysis"
	"flep/internal/lint/loader"
)

var PoolOwnershipAnalyzer = &analysis.Analyzer{
	Name:       "poolownership",
	Doc:        "track sync.Pool values interprocedurally; flag use-after-Put, double Put, Put of escaped values, and leaks",
	Categories: []string{"useafterput", "doubleput", "putescaped", "poolleak"},
	Run:        runPoolOwnership,
}

// Abstract ownership facts (bits in pathState.facts values).
const (
	pfOwned    uint64 = 1 << iota // held by the current function
	pfReleased                    // returned to the pool
	pfEscaped                     // another holder may retain it
	pfOrigin                      // allocated from the pool in this function
)

// Per-exit summary payload: 4 bits per parameter index.
const (
	ppMayRelease  = 1
	ppMustRelease = 2
	ppMayEscape   = 4
	ppMustEscape  = 8
)

func mustState(bits uint64) uint64 { return bits &^ pfOrigin }

type poolFuncInfo struct {
	sum           *funcSummary
	returnsPooled bool
}

type poolChecker struct {
	pass     *analysis.Pass
	info     *types.Info
	pooled   map[string]bool // named-type keys ("pkgpath.Name") of pooled structs
	sums     map[string]*poolFuncInfo
	reported map[string]bool
}

func runPoolOwnership(pass *analysis.Pass) (any, error) {
	pkg := &loader.Package{PkgPath: pass.Pkg.Path(), Files: pass.Files, Types: pass.Pkg, Info: pass.TypesInfo}
	c := &poolChecker{
		pass:     pass,
		info:     pass.TypesInfo,
		pooled:   map[string]bool{},
		sums:     map[string]*poolFuncInfo{},
		reported: map[string]bool{},
	}
	c.discoverPooled()
	if len(c.pooled) == 0 {
		return nil, nil
	}
	g := buildCallGraph([]*loader.Package{pkg})
	rec := g.recursive()
	for _, comp := range g.sccOrder() {
		for _, id := range comp {
			c.checkFunc(g.Nodes[id], !rec[id])
		}
	}
	return nil, nil
}

// discoverPooled records every named type T seen in a
// `pool.Get().(*T)` assertion on a sync.Pool value. Only those types'
// values are tracked.
func (c *poolChecker) discoverPooled() {
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ta, ok := n.(*ast.TypeAssertExpr)
			if !ok || ta.Type == nil {
				return true
			}
			call, ok := stripParens(ta.X).(*ast.CallExpr)
			if !ok || !isSyncPoolMethod(c.info, call, "Get") {
				return true
			}
			t := c.info.Types[ta.Type].Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if key := namedKey(t); key != "" {
				c.pooled[key] = true
			}
			return true
		})
	}
}

func namedKey(t types.Type) string {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// isSyncPoolMethod reports whether call invokes sync.Pool's method
// named name.
func isSyncPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := stripParens(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	return namedKey(recv) == "sync.Pool"
}

// pooledPointer reports whether t is *T for a discovered pooled T.
func (c *poolChecker) pooledPointer(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return c.pooled[namedKey(p.Elem())]
}

func (c *poolChecker) report(pos token.Pos, category, msg string) {
	key := fmt.Sprintf("%d|%s|%s", pos, category, msg)
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	c.pass.Reportf(pos, category, "%s", msg)
}

// checkFunc walks one function: reports violations and (when the
// function is non-recursive) records its summary for callers.
func (c *poolChecker) checkFunc(node *cgNode, summarize bool) {
	d := &poolDomain{c: c, fnEnd: node.Decl.Body.End()}
	sig := node.Fn.Type().(*types.Signature)
	d.nresults = sig.Results().Len()

	st := newPathState()
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		p := params.At(i)
		if !c.pooledPointer(p.Type()) {
			continue
		}
		d.nextID++
		id := d.nextID
		d.paramVals = append(d.paramVals, paramVal{index: i, val: id})
		st.vals[p] = id
		st.facts[id] = pfOwned
	}
	d.hasChanRecv = c.bodyReclaims(node.Decl.Body)
	d.sum = &funcSummary{}

	w := newWalker(node.Pkg.Info, d, node.Decl.Body.End())
	w.run(node.Decl.Body, st)

	if summarize {
		c.sums[node.ID] = &poolFuncInfo{sum: d.sum, returnsPooled: d.returnsPooled}
	}
}

// bodyReclaims reports whether the body contains a receive from a
// channel-typed field of a pooled struct — the "hand off, then wait
// for the result" shape where abandoning the wait leaks the value.
func (c *poolChecker) bodyReclaims(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		u, ok := n.(*ast.UnaryExpr)
		if !ok || u.Op != token.ARROW {
			return true
		}
		sel, ok := stripParens(u.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if tv, ok := c.info.Types[sel.X]; ok && c.pooledPointer(tv.Type) {
			found = true
		}
		return true
	})
	return found
}

// ------------------------------------------------------------- domain

type paramVal struct {
	index int // parameter position
	val   int // abstract value ID
}

type poolDomain struct {
	baseDomain
	c         *poolChecker
	nextID    int
	paramVals []paramVal
	nresults  int
	fnEnd     token.Pos

	hasChanRecv   bool
	sum           *funcSummary
	returnsPooled bool
}

// trackedObj resolves an expression to its tracked value ID, if any.
func (d *poolDomain) tracked(st *pathState, e ast.Expr) (types.Object, int, bool) {
	id, ok := stripParens(e).(*ast.Ident)
	if !ok {
		return nil, 0, false
	}
	obj := d.c.info.Uses[id]
	if obj == nil {
		obj = d.c.info.Defs[id]
	}
	if obj == nil {
		return nil, 0, false
	}
	v, ok := st.vals[obj]
	return obj, v, ok
}

func (d *poolDomain) escape(st *pathState, val int) {
	st.facts[val] = pfEscaped | (st.facts[val] & pfOrigin)
}

func (d *poolDomain) atom(st *pathState, n ast.Node) {
	switch e := n.(type) {
	case *ast.Ident:
		if _, v, ok := d.tracked(st, e); ok && mustState(st.facts[v]) == pfReleased {
			d.c.report(e.Pos(), "useafterput", "pooled value used after it was returned to the pool")
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if _, v, ok := d.tracked(st, el); ok {
				d.escape(st, v)
			}
		}
	}
}

func (d *poolDomain) assign(st *pathState, as *ast.AssignStmt) {
	if st.pendingOrigin && len(as.Rhs) == 1 && len(as.Lhs) >= 1 {
		if id, ok := stripParens(as.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
			obj := d.c.info.Defs[id]
			if obj == nil {
				obj = d.c.info.Uses[id]
			}
			// Only a pooled-pointer LHS receives the origin: in
			// `err := f(mkReq())` the pending origin from the inner
			// call must not stick to the outer call's error result.
			if obj != nil && d.c.pooledPointer(obj.Type()) {
				d.nextID++
				st.vals[obj] = d.nextID
				st.facts[d.nextID] = pfOwned | pfOrigin
			}
		}
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, l := range as.Lhs {
		l = stripParens(l)
		_, rv, rok := d.tracked(st, as.Rhs[i])
		switch lhs := l.(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				continue
			}
			obj := d.c.info.Defs[lhs]
			if obj == nil {
				obj = d.c.info.Uses[lhs]
			}
			if obj == nil {
				continue
			}
			// A package-level variable is globally reachable: storing
			// there escapes, it does not alias.
			if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				if rok {
					d.escape(st, rv)
				}
				continue
			}
			if rok {
				st.vals[obj] = rv // alias
			} else {
				delete(st.vals, obj) // rebound to an untracked value
			}
		case *ast.SelectorExpr, *ast.IndexExpr:
			if rok {
				d.escape(st, rv) // stored into a field or element
			}
		}
	}
}

func (d *poolDomain) send(st *pathState, s *ast.SendStmt) {
	if _, v, ok := d.tracked(st, s.Value); ok {
		d.escape(st, v)
	}
}

func (d *poolDomain) recv(st *pathState, x ast.Expr) {
	sel, ok := stripParens(x).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if _, v, ok := d.tracked(st, sel.X); ok {
		// Receiving from the pooled value's own channel field is the
		// hand-back: the sender is done with it, ownership returns here.
		st.facts[v] = pfOwned | (st.facts[v] & pfOrigin)
	}
}

func (d *poolDomain) funcLit(st *pathState, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := d.c.info.Uses[id]
		if obj == nil {
			return true
		}
		if v, ok := st.vals[obj]; ok {
			d.escape(st, v)
		}
		return true
	})
}

func (d *poolDomain) goStmt(st *pathState, call *ast.CallExpr) {
	for _, a := range call.Args {
		if _, v, ok := d.tracked(st, a); ok {
			d.escape(st, v)
		}
	}
}

func (d *poolDomain) call(in []*pathState, call *ast.CallExpr, w *walker) []*pathState {
	info := d.c.info

	// sync.Pool.Get: mark the pending result as a pool origin.
	if isSyncPoolMethod(info, call, "Get") {
		in = w.walkCallArgs(in, call, nil)
		for _, st := range in {
			st.pendingOrigin = true
		}
		return in
	}

	// sync.Pool.Put(x): the direct release.
	if isSyncPoolMethod(info, call, "Put") && len(call.Args) == 1 {
		skip := map[ast.Expr]bool{call.Args[0]: true}
		in = w.walkCallArgs(in, call, skip)
		for _, st := range in {
			_, v, ok := d.tracked(st, call.Args[0])
			if !ok {
				continue
			}
			switch mustState(st.facts[v]) {
			case pfReleased:
				d.c.report(call.Pos(), "doubleput", "pooled value Put twice on this path")
			case pfEscaped:
				d.c.report(call.Pos(), "putescaped", "pooled value Put after it escaped; another holder may still use it")
			default:
				st.facts[v] = pfReleased | (st.facts[v] & pfOrigin)
			}
		}
		return in
	}

	// Builtin append: retaining a tracked value in a slice is an escape.
	if id, ok := stripParens(call.Fun).(*ast.Ident); ok && info.Uses[id] == nil &&
		(id.Name == "append" || id.Name == "copy") {
		in = w.walkCallArgs(in, call, nil)
		for _, st := range in {
			for _, a := range call.Args {
				if _, v, ok := d.tracked(st, a); ok {
					d.escape(st, v)
				}
			}
		}
		return in
	}

	fn := staticCalleeFunc(info, call)
	var fi *poolFuncInfo
	if fn != nil {
		fi = d.c.sums[funcIDOf(fn)]
	}
	if fi == nil {
		// Unknown callee (external, dynamic, or recursive): any tracked
		// argument may be retained — may-escape, killing later
		// must-owned leak reports for it.
		in = w.walkCallArgs(in, call, nil)
		for _, st := range in {
			for _, a := range call.Args {
				if _, v, ok := d.tracked(st, a); ok {
					st.facts[v] |= pfEscaped
				}
			}
		}
		return in
	}

	// Summarized same-package callee. Skip the use-check on arguments
	// the callee releases on every exit (the release IS the use), then
	// check release-protocol violations and fork per exit group.
	mustReleaseAll := make(map[int]bool)
	mayRelease := make(map[int]bool)
	for i := 0; i < len(call.Args) && i < 8; i++ {
		must := len(fi.sum.exits) > 0
		may := false
		for _, ex := range fi.sum.exits {
			b := (ex.payload >> (4 * i)) & 0xf
			if b&ppMustRelease == 0 {
				must = false
			}
			if b&ppMayRelease != 0 {
				may = true
			}
		}
		mustReleaseAll[i] = must
		mayRelease[i] = may
	}
	skip := map[ast.Expr]bool{}
	for i, a := range call.Args {
		if mustReleaseAll[i] {
			skip[a] = true
		}
	}
	in = w.walkCallArgs(in, call, skip)
	for _, st := range in {
		for i, a := range call.Args {
			if !mayRelease[i] {
				continue
			}
			if _, v, ok := d.tracked(st, a); ok {
				switch mustState(st.facts[v]) {
				case pfReleased:
					d.c.report(call.Pos(), "doubleput", "pooled value passed to a releasing function after it was already returned to the pool")
				case pfEscaped:
					d.c.report(call.Pos(), "putescaped", "escaped pooled value passed to a releasing function")
				}
			}
		}
	}
	out := w.forkSummary(in, call, fi.sum, func(st *pathState, ex *sumExit) {
		for i, a := range call.Args {
			if i >= 8 {
				break
			}
			_, v, ok := d.tracked(st, a)
			if !ok {
				continue
			}
			b := (ex.payload >> (4 * i)) & 0xf
			if b&ppMustRelease != 0 {
				st.facts[v] = pfReleased | (st.facts[v] & pfOrigin)
			} else if b&ppMayRelease != 0 {
				st.facts[v] |= pfReleased
			}
			if b&ppMustEscape != 0 {
				st.facts[v] = pfEscaped | (st.facts[v] & pfOrigin)
			} else if b&ppMayEscape != 0 {
				st.facts[v] |= pfEscaped
			}
		}
	})
	if fi.returnsPooled {
		for _, st := range out {
			st.pendingOrigin = true
		}
	}
	return out
}

func (d *poolDomain) exit(st *pathState, ret *ast.ReturnStmt, pos token.Pos) {
	// Returning a tracked value transfers ownership to the caller.
	if ret != nil {
		// `return pool.Get().(*T)` / `return getX()`: the origin is the
		// statement's own pending call result, handed straight out.
		if st.pendingOrigin {
			d.returnsPooled = true
		}
		for _, r := range ret.Results {
			if _, v, ok := d.tracked(st, r); ok {
				if st.facts[v]&pfOrigin != 0 {
					d.returnsPooled = true
				}
				d.escape(st, v)
			}
		}
	}

	// Record this exit in the function summary.
	var payload uint64
	for _, pv := range d.paramVals {
		if pv.index >= 8 {
			continue
		}
		bits := st.facts[pv.val]
		var b uint64
		if bits&pfReleased != 0 {
			b |= ppMayRelease
		}
		if mustState(bits) == pfReleased {
			b |= ppMustRelease
		}
		if bits&pfEscaped != 0 {
			b |= ppMayEscape
		}
		if mustState(bits) == pfEscaped {
			b |= ppMustEscape
		}
		payload |= b << (4 * pv.index)
	}
	d.sum.addExit(resolveResults(d.c.info, d.nresults, ret), payload)

	// Leak check: pool-originated values must not be live-and-owned at
	// exit; and in a function that reclaims via a channel receive, an
	// exit that abandons a handed-off value leaks it just the same.
	for _, bits := range st.facts {
		if bits&pfOrigin == 0 {
			continue
		}
		switch mustState(bits) {
		case pfOwned:
			d.c.report(pos, "poolleak", "pool-originated value still owned at function exit (no Put on this path)")
		case pfEscaped:
			if d.hasChanRecv {
				d.c.report(pos, "poolleak", "pool-originated value abandoned after hand-off: this exit path never reclaims it")
			}
		}
	}
}
