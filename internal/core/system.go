// Package core assembles FLEP: the offline phase (compile each kernel to a
// preemptable form, tune its amortizing factor, train its duration model,
// profile its preemption overhead) and the online phase (run co-run
// scenarios under the FLEP runtime or under the baselines).
package core

import (
	"fmt"
	"time"

	"flep/internal/cudalite"
	"flep/internal/gpu"
	"flep/internal/kernels"
	"flep/internal/perfmodel"
	"flep/internal/sim"
	"flep/internal/transform"
)

// Artifacts is the offline-phase output for one benchmark kernel.
type Artifacts struct {
	Bench   *kernels.Benchmark
	Profile *gpu.KernelProfile
	// Program and Transformed are the original and FLEP-compiled
	// MiniCUDA translation units; Info describes the generated kernel.
	Program     *cudalite.Program
	Transformed *cudalite.Program
	Info        *transform.KernelInfo
	Resources   transform.Resources
	// L is the tuned amortizing factor; TunedOverhead its measured
	// single-run overhead; TuneOK whether the 4% constraint was met.
	L             int
	TunedOverhead float64
	TuneOK        bool
	// Model predicts invocation durations from launch features.
	Model *perfmodel.Model
	// PreemptOverhead is the profiled mean preemption overhead (§4.2).
	PreemptOverhead time.Duration
}

// System is a FLEP deployment: device parameters plus per-kernel offline
// artifacts.
type System struct {
	Par  gpu.Params
	arts map[string]*Artifacts
	solo map[soloKey]time.Duration
}

type soloKey struct {
	bench string
	class kernels.InputClass
}

// NewSystem builds a system with the given device parameters (use
// gpu.DefaultParams() for the paper's K40 model).
func NewSystem(par gpu.Params) *System {
	return &System{
		Par:  par,
		arts: map[string]*Artifacts{},
		solo: map[soloKey]time.Duration{},
	}
}

// Artifacts returns the offline artifacts for a benchmark, or nil before
// Offline has processed it.
func (s *System) Artifacts(name string) *Artifacts { return s.arts[name] }

// Clone returns a system sharing this one's offline artifacts but with its
// own cache maps, so independent schedulers (e.g. fleet shards, each on
// its own goroutine) can call Predict/SoloTime concurrently without
// racing on the plain-map caches. Artifacts are immutable after Offline,
// so sharing the values is safe; run the offline phase once and Clone per
// shard instead of paying it N times.
func (s *System) Clone() *System {
	c := &System{
		Par:  s.Par,
		arts: make(map[string]*Artifacts, len(s.arts)),
		solo: make(map[soloKey]time.Duration, len(s.solo)),
	}
	for k, v := range s.arts {
		c.arts[k] = v
	}
	for k, v := range s.solo {
		c.solo[k] = v
	}
	return c
}

// Offline runs the complete offline phase for the benchmarks: program
// transformation, amortizing-factor tuning (threshold 4%), performance
// model training (100 random inputs), and preemption-overhead profiling
// (50 runs).
func (s *System) Offline(benchs []*kernels.Benchmark) error {
	for _, b := range benchs {
		a, err := s.buildArtifacts(b)
		if err != nil {
			return fmt.Errorf("core: offline %s: %w", b.Name, err)
		}
		s.arts[b.Name] = a
	}
	return nil
}

// OfflineAll runs Offline for the full benchmark suite.
func (s *System) OfflineAll() error { return s.Offline(kernels.All()) }

func (s *System) buildArtifacts(b *kernels.Benchmark) (*Artifacts, error) {
	prog, err := b.Parse()
	if err != nil {
		return nil, err
	}
	transformed, info, err := transform.TransformKernel(prog, b.KernelName, transform.ModeSpatial)
	if err != nil {
		return nil, err
	}
	res, err := transform.EstimateResources(prog, prog.Kernel(b.KernelName))
	if err != nil {
		return nil, err
	}
	profile, err := b.Profile(s.Par.Limits)
	if err != nil {
		return nil, err
	}
	a := &Artifacts{
		Bench: b, Profile: profile,
		Program: prog, Transformed: transformed, Info: info,
		Resources: res,
	}

	// Offline tuning: smallest L with single-run overhead under 4%,
	// measured on the large input (§4.1).
	large := b.Input(kernels.Large)
	orig := s.simSolo(profile, large.Tasks, large.TaskCost, execOriginal, 0)
	a.L, a.TunedOverhead, a.TuneOK = transform.Autotune(func(L int) float64 {
		t := s.simSolo(profile, large.Tasks, large.TaskCost, execPersistent, L)
		return (t - orig).Seconds() / orig.Seconds()
	}, transform.DefaultOverheadThreshold, transform.DefaultMaxAmortize)

	// Performance model: 100 random inputs, linear regression with L2
	// penalty (§4.2).
	var samples []perfmodel.Sample
	for i := 0; i < 100; i++ {
		scale := float64(i%100+1) / 100
		in := b.ScaledInput(scale, int64(i))
		dur := s.simSolo(profile, in.Tasks, in.TaskCost, execOriginal, 0)
		samples = append(samples, perfmodel.Sample{
			F:        s.features(b, in),
			Duration: dur,
		})
	}
	model, err := perfmodel.Train(samples, perfmodel.DefaultLambda)
	if err != nil {
		return nil, err
	}
	a.Model = model

	// Preemption-overhead profiling: 50 preempt+resume runs at varying
	// points; the mean is the online estimate (§4.2).
	var prof perfmodel.OverheadProfile
	for i := 0; i < perfmodel.DefaultOverheadRuns; i++ {
		frac := float64(i+1) / float64(perfmodel.DefaultOverheadRuns+1)
		in := b.ScaledInput(0.05+0.1*frac, int64(1000+i))
		solo := s.simSolo(profile, in.Tasks, in.TaskCost, execPersistent, a.L)
		total := s.simPreemptResume(profile, in.Tasks, in.TaskCost, a.L, time.Duration(frac*float64(solo)))
		if total > solo {
			prof.Add(total - solo)
		} else {
			prof.Add(0)
		}
	}
	a.PreemptOverhead = prof.Mean()
	return a, nil
}

// features builds the model features for an input.
func (s *System) features(b *kernels.Benchmark, in kernels.Input) perfmodel.Features {
	a := s.arts[b.Name]
	shared := 0
	if a != nil {
		shared = a.Resources.StaticSharedBytes
	}
	return perfmodel.Features{
		GridSize:    float64(in.Tasks),
		CTASize:     float64(b.ThreadsPerCTA),
		InputBytes:  float64(in.Bytes),
		SharedBytes: float64(shared),
	}
}

// Predict returns the model's duration estimate for an input.
func (s *System) Predict(b *kernels.Benchmark, in kernels.Input) (time.Duration, error) {
	a := s.arts[b.Name]
	if a == nil {
		return 0, fmt.Errorf("core: no artifacts for %s (run Offline first)", b.Name)
	}
	return a.Model.Predict(s.features(b, in)), nil
}

type execKind int

const (
	execOriginal execKind = iota
	execPersistent
)

// simSolo measures the solo runtime of one kernel configuration on a fresh
// simulated device.
func (s *System) simSolo(profile *gpu.KernelProfile, tasks int, cost time.Duration, kind execKind, L int) time.Duration {
	eng := sim.New()
	dev := gpu.New(eng, s.Par)
	var done time.Duration
	_, err := dev.Start(gpu.ExecConfig{
		Profile: profile, TotalTasks: tasks, TaskCost: cost,
		Persistent: kind == execPersistent, L: L,
		SMLo: 0, SMHi: dev.NumSMs(),
		OnComplete: func() { done = eng.Now() },
	})
	if err != nil {
		panic(fmt.Sprintf("core: simSolo: %v", err))
	}
	eng.Run()
	return done
}

// simPreemptResume measures the elapsed time of a persistent run that is
// temporally preempted at `at` and resumed as soon as the drain completes.
func (s *System) simPreemptResume(profile *gpu.KernelProfile, tasks int, cost time.Duration, L int, at time.Duration) time.Duration {
	eng := sim.New()
	dev := gpu.New(eng, s.Par)
	var done time.Duration
	start := func(doneTasks int, onDrained func(int)) *gpu.Exec {
		e, err := dev.Start(gpu.ExecConfig{
			Profile: profile, TotalTasks: tasks, DoneTasks: doneTasks,
			TaskCost: cost, Persistent: true, L: L,
			ColdStart: doneTasks > 0,
			SMLo:      0, SMHi: dev.NumSMs(),
			OnComplete: func() { done = eng.Now() },
			OnDrained:  onDrained,
		})
		if err != nil {
			panic(fmt.Sprintf("core: simPreemptResume: %v", err))
		}
		return e
	}
	var first *gpu.Exec
	first = start(0, func(rem int) {
		if rem == 0 {
			return
		}
		start(tasks-rem, nil)
	})
	if at > 0 {
		eng.Schedule(at, func() {
			if first.State() == gpu.StateRunning || first.State() == gpu.StateLaunching {
				_ = first.Preempt(dev.NumSMs())
			}
		})
	}
	eng.Run()
	return done
}

// MeasureSolo measures the original kernel's solo runtime for an arbitrary
// input (used for performance-model evaluation).
func (s *System) MeasureSolo(b *kernels.Benchmark, in kernels.Input) (time.Duration, error) {
	profile, err := b.Profile(s.Par.Limits)
	if err != nil {
		return 0, err
	}
	return s.simSolo(profile, in.Tasks, in.TaskCost, execOriginal, 0), nil
}

// SoloTime returns (cached) the original kernel's solo runtime for a
// calibrated input class: the normalization base for ANTT/STP.
func (s *System) SoloTime(b *kernels.Benchmark, c kernels.InputClass) (time.Duration, error) {
	key := soloKey{b.Name, c}
	if d, ok := s.solo[key]; ok {
		return d, nil
	}
	profile, err := b.Profile(s.Par.Limits)
	if err != nil {
		return 0, err
	}
	in := b.Input(c)
	d := s.simSolo(profile, in.Tasks, in.TaskCost, execOriginal, 0)
	s.solo[key] = d
	return d, nil
}

// SoloPersistentTime measures the FLEP-transformed kernel's solo runtime at
// amortizing factor L (Figure 17's FLEP bars).
func (s *System) SoloPersistentTime(b *kernels.Benchmark, c kernels.InputClass, L int) (time.Duration, error) {
	profile, err := b.Profile(s.Par.Limits)
	if err != nil {
		return 0, err
	}
	in := b.Input(c)
	return s.simSolo(profile, in.Tasks, in.TaskCost, execPersistent, L), nil
}
