package experiments

import (
	"math"

	"flep/internal/kernels"
)

// Figure7 regenerates the kernel-duration prediction errors: each
// benchmark's trained model is evaluated on held-out inputs around the
// large and small operating points, each carrying the benchmark's
// input-dependent irregularity. Paper: average 6.9%, range 2.7%–12.2%,
// with NN/MM/VA the most predictable and SPMV the hardest.
func (s *Suite) Figure7() (*Table, error) {
	t := &Table{
		ID:      "fig7",
		Title:   "Kernel duration prediction errors",
		Columns: []string{"bench", "MAPE", "n-test"},
	}
	const testN = 40
	var overall float64
	errs := map[string]float64{}
	for _, b := range kernels.All() {
		sum := 0.0
		for i := 0; i < testN; i++ {
			// Held-out scales clustered near the evaluation inputs, with
			// fresh noise seeds disjoint from the training set.
			scale := 0.04 + 0.96*float64(i)/float64(testN-1)
			in := b.ScaledInput(scale, int64(5000+i))
			truth, err := s.Sys.MeasureSolo(b, in)
			if err != nil {
				return nil, err
			}
			// The online predictor sees only the nominal features (it
			// cannot know the input's irregularity).
			nominal := in
			nominal.TaskCost = b.Input(kernels.Large).TaskCost
			pred, err := s.Sys.Predict(b, nominal)
			if err != nil {
				return nil, err
			}
			sum += math.Abs(pred.Seconds()-truth.Seconds()) / truth.Seconds()
		}
		mape := sum / testN
		errs[b.Name] = mape
		overall += mape
		t.AddRow(b.Name, pct(mape), testN)
	}
	overall /= float64(len(kernels.All()))
	t.Note("average error %s (paper: 6.9%%, range 2.7%%-12.2%%)", pct(overall))
	t.Note("SPMV hardest: %s; regular kernels NN %s / MM %s / VA %s",
		pct(errs["SPMV"]), pct(errs["NN"]), pct(errs["MM"]), pct(errs["VA"]))
	return t, nil
}
