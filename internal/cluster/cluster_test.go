package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"flep/internal/core"
	"flep/internal/gpu"
	"flep/internal/kernels"
	"flep/internal/obs"
	"flep/internal/replay"
	"flep/internal/server"
)

// One shared system: the offline phase is deterministic and expensive,
// so every test reuses it (fleets clone it per shard).
var (
	sysOnce sync.Once
	sysInst *core.System
	sysErr  error
)

func testSystem(t *testing.T) *core.System {
	t.Helper()
	sysOnce.Do(func() {
		s := core.NewSystem(gpu.DefaultParams())
		var benchs []*kernels.Benchmark
		for _, n := range []string{"VA", "MM"} {
			b, err := kernels.ByName(n)
			if err != nil {
				sysErr = err
				return
			}
			benchs = append(benchs, b)
		}
		sysErr = s.Offline(benchs)
		sysInst = s
	})
	if sysErr != nil {
		t.Fatalf("offline: %v", sysErr)
	}
	return sysInst
}

// startNode runs one real flepd-equivalent fleet behind an httptest
// server. The returned shutdown func is idempotent (tests that kill the
// node mid-run call it early; cleanup calls it again harmlessly).
func startNode(t *testing.T, cfg server.Config) (*server.Fleet, *httptest.Server, func()) {
	t.Helper()
	if len(cfg.Benchmarks) == 0 {
		cfg.Benchmarks = []string{"VA", "MM"}
	}
	f, err := server.NewFleetWithSystem(testSystem(t), server.FleetConfig{Config: cfg, Devices: 1, Affinity: true})
	if err != nil {
		t.Fatalf("NewFleetWithSystem: %v", err)
	}
	ts := httptest.NewServer(f.Handler())
	var once sync.Once
	stop := func() {
		once.Do(func() {
			ts.CloseClientConnections()
			ts.Close()
		})
	}
	t.Cleanup(func() {
		stop()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := f.Shutdown(ctx); err != nil {
			t.Errorf("fleet shutdown: %v", err)
		}
	})
	return f, ts, stop
}

// startGateway builds a Gateway over the node URLs and serves it.
func startGateway(t *testing.T, cfg Config) (*Gateway, *httptest.Server) {
	t.Helper()
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 10 * time.Millisecond
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	g.Start()
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(func() {
		ts.Close()
		g.Close()
	})
	waitFor(t, "gateway ready", func() bool { return g.ReadyNodes() > 0 })
	return g, ts
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// launchVia POSTs one launch through the gateway and returns the status
// code, decoded result, and the serving node from X-Flep-Node.
func launchVia(t *testing.T, gwURL string, req server.LaunchRequest) (int, server.LaunchResult, string) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(gwURL+"/v1/launch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/launch: %v", err)
	}
	defer resp.Body.Close()
	var res server.LaunchResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decode launch response (code %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, res, resp.Header.Get("X-Flep-Node")
}

func getClusterStatus(t *testing.T, gwURL string) ClusterStatus {
	t.Helper()
	var cs ClusterStatus
	if err := getJSON(http.DefaultClient, gwURL+"/v1/status", &cs); err != nil {
		t.Fatalf("GET /v1/status: %v", err)
	}
	return cs
}

func getNodes(t *testing.T, gwURL string) []NodeStatus {
	t.Helper()
	var ns []NodeStatus
	if err := getJSON(http.DefaultClient, gwURL+"/v1/nodes", &ns); err != nil {
		t.Fatalf("GET /v1/nodes: %v", err)
	}
	return ns
}

func TestLaunchRoutingAffinityAndSpread(t *testing.T) {
	_, n0, _ := startNode(t, server.Config{})
	_, n1, _ := startNode(t, server.Config{})
	_, gw := startGateway(t, Config{Nodes: []string{n0.URL, n1.URL}})

	// A named client's launches all land on one node (consistent hash).
	var home string
	for i := 0; i < 5; i++ {
		code, res, node := launchVia(t, gw.URL, server.LaunchRequest{Client: "alice", Benchmark: "VA"})
		if code != http.StatusOK {
			t.Fatalf("launch %d: code %d (%+v)", i, code, res)
		}
		if node == "" {
			t.Fatal("missing X-Flep-Node header")
		}
		if home == "" {
			home = node
		} else if node != home {
			t.Fatalf("client alice moved from %s to %s with all nodes healthy", home, node)
		}
	}

	// Enough distinct clients hit both nodes.
	hit := map[string]bool{}
	for i := 0; i < 32; i++ {
		code, _, node := launchVia(t, gw.URL, server.LaunchRequest{Client: fmt.Sprintf("c%d", i), Benchmark: "VA"})
		if code != http.StatusOK {
			t.Fatalf("client c%d: code %d", i, code)
		}
		hit[node] = true
	}
	if len(hit) != 2 {
		t.Fatalf("32 clients landed on %d node(s): %v", len(hit), hit)
	}

	// Anonymous launches spread too (load/rotation placement).
	hit = map[string]bool{}
	for i := 0; i < 8; i++ {
		code, _, node := launchVia(t, gw.URL, server.LaunchRequest{Benchmark: "VA"})
		if code != http.StatusOK {
			t.Fatalf("anonymous launch %d: code %d", i, code)
		}
		hit[node] = true
	}
	if len(hit) != 2 {
		t.Fatalf("anonymous launches landed on %d node(s): %v", len(hit), hit)
	}
}

func TestStatusSessionsAndNodesAggregation(t *testing.T) {
	f0, n0, _ := startNode(t, server.Config{})
	f1, n1, _ := startNode(t, server.Config{})
	_, gw := startGateway(t, Config{Nodes: []string{n0.URL, n1.URL}})

	ok := 0
	for i := 0; i < 20; i++ {
		code, _, _ := launchVia(t, gw.URL, server.LaunchRequest{Client: fmt.Sprintf("c%d", i), Benchmark: "VA"})
		if code == http.StatusOK {
			ok++
		}
	}
	if ok != 20 {
		t.Fatalf("only %d/20 launches succeeded", ok)
	}

	cs := getClusterStatus(t, gw.URL)
	want := f0.Counters()["enqueued"] + f1.Counters()["enqueued"]
	if cs.Counters.Enqueued != want {
		t.Fatalf("aggregated enqueued = %d, want %d", cs.Counters.Enqueued, want)
	}
	if cs.Counters.Enqueued != cs.Counters.Completed+cs.Counters.SubmitErrors {
		t.Fatalf("cluster not at rest: %+v", cs.Counters)
	}
	if !cs.ExactlyOnceOK {
		t.Fatalf("exactly-once flag false: %+v", cs.Counters)
	}
	if len(cs.Nodes) != 2 {
		t.Fatalf("nodes detail has %d entries", len(cs.Nodes))
	}

	// Gateway accounting reconciles per node: every enqueued launch on a
	// node produced exactly one gateway-relayed terminal response. The
	// /v1/nodes status snapshot comes from the health loop's cache, so
	// wait one refresh.
	waitFor(t, "status cache to catch up", func() bool {
		var total int64
		for _, ns := range getNodes(t, gw.URL) {
			if ns.Status != nil {
				total += ns.Status.Counters.Enqueued
			}
		}
		return total == want
	})
	for _, ns := range getNodes(t, gw.URL) {
		if ns.Status == nil {
			t.Fatalf("node %s has no cached status", ns.ID)
		}
		gwTotal := ns.Accepted + ns.Failed + ns.TimedOut
		if gwTotal != ns.Status.Counters.Enqueued {
			t.Fatalf("node %s: gateway terminal responses %d != node enqueued %d",
				ns.ID, gwTotal, ns.Status.Counters.Enqueued)
		}
	}

	// Sessions merge across nodes, each naming its serving node.
	var sessions []ClusterSession
	if err := getJSON(http.DefaultClient, gw.URL+"/v1/sessions", &sessions); err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 20 {
		t.Fatalf("merged sessions = %d, want 20", len(sessions))
	}
	for _, s := range sessions {
		if len(s.Nodes) != 1 {
			t.Fatalf("session %s served by %v, want exactly one node", s.ID, s.Nodes)
		}
		if s.Completed != 1 {
			t.Fatalf("session %s completed=%d", s.ID, s.Completed)
		}
	}
}

// A node killed mid-burst must not lose or duplicate a single client
// response: every launch either completed on the dead node before the
// kill or was retried onto a survivor, and on the survivor the gateway's
// terminal-response ledger reconciles exactly with the node's counters.
func TestNodeKilledMidBurstExactlyOnce(t *testing.T) {
	// Pace slows the victim's event loop so a kill lands mid-burst with
	// requests genuinely in flight.
	_, n0, stop0 := startNode(t, server.Config{Pace: 100 * time.Microsecond})
	_, n1, _ := startNode(t, server.Config{Pace: 100 * time.Microsecond})
	g, gw := startGateway(t, Config{Nodes: []string{n0.URL, n1.URL}})
	waitFor(t, "both nodes ready", func() bool { return g.ReadyNodes() == 2 })

	const burst = 40
	var wg sync.WaitGroup
	codes := make([]int, burst)
	started := make(chan struct{}, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(server.LaunchRequest{Client: fmt.Sprintf("burst-%d", i), Benchmark: "VA"})
			started <- struct{}{}
			resp, err := http.Post(gw.URL+"/v1/launch", "application/json", bytes.NewReader(body))
			if err != nil {
				return // codes[i] stays 0
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	for i := 0; i < burst; i++ {
		<-started
	}
	// Kill node 0 while the burst is in flight.
	time.Sleep(20 * time.Millisecond)
	stop0()
	wg.Wait()

	okCount := 0
	for i, c := range codes {
		if c == http.StatusOK {
			okCount++
		} else {
			t.Errorf("launch %d finished with code %d, want 200 (failover should absorb the kill)", i, c)
		}
	}

	// Let the survivor finish any retried work, then reconcile.
	waitFor(t, "survivor at rest", func() bool {
		for _, ns := range getNodes(t, gw.URL) {
			if ns.State != "ready" || ns.Status == nil {
				continue
			}
			c := ns.Status.Counters
			if ns.InFlight == 0 && c.Enqueued == c.Completed+c.SubmitErrors {
				return true
			}
		}
		return false
	})
	var acceptedTotal int64
	survivors := 0
	for _, ns := range getNodes(t, gw.URL) {
		acceptedTotal += ns.Accepted
		if ns.State != "ready" {
			continue
		}
		survivors++
		c := ns.Status.Counters
		if got := ns.Accepted + ns.Failed + ns.TimedOut; got != c.Enqueued {
			t.Fatalf("survivor %s: gateway ledger %d != enqueued %d", ns.ID, got, c.Enqueued)
		}
	}
	if survivors != 1 {
		t.Fatalf("survivors = %d, want 1", survivors)
	}
	if acceptedTotal != int64(okCount) {
		t.Fatalf("client OKs %d != gateway accepted %d", okCount, acceptedTotal)
	}
}

// When every node answers 429, the gateway must answer 429 — with the
// LARGEST backend Retry-After, so an honest client backs off long enough
// for the slowest node to clear.
func TestAllNodesSaturatedPropagatesMaxRetryAfter(t *testing.T) {
	stub := func(retryAfter string) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
		})
		mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"policy":"hpf","counters":{}}`))
		})
		mux.HandleFunc("POST /v1/launch", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", retryAfter)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"queue full"}`))
		})
		ts := httptest.NewServer(mux)
		t.Cleanup(ts.Close)
		return ts
	}
	s0, s1 := stub("2"), stub("7")
	g, gw := startGateway(t, Config{Nodes: []string{s0.URL, s1.URL}})
	waitFor(t, "stubs ready", func() bool { return g.ReadyNodes() == 2 })

	body, _ := json.Marshal(server.LaunchRequest{Client: "c", Benchmark: "VA"})
	resp, err := http.Post(gw.URL+"/v1/launch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("code = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want the max backend value 7", ra)
	}
	snap := metricsSnapshot(t, gw.URL)
	if v := snap.SumMatching("flep_gateway_rejected_saturated_total"); v != 1 {
		t.Fatalf("flep_gateway_rejected_saturated_total = %v, want 1", v)
	}
}

// Draining a node stops new routing immediately, remaps exactly that
// node's sessions, waits out in-flight work, and finally removes it.
func TestDrainRemapsOnlyDrainedSessionsAndWaitsInflight(t *testing.T) {
	f0, n0, _ := startNode(t, server.Config{})
	_, n1, _ := startNode(t, server.Config{})
	g, gw := startGateway(t, Config{Nodes: []string{n0.URL, n1.URL}})
	waitFor(t, "both nodes ready", func() bool { return g.ReadyNodes() == 2 })

	// Pin 24 clients and remember their homes.
	const clients = 24
	home := map[string]string{}
	for i := 0; i < clients; i++ {
		id := fmt.Sprintf("pin-%d", i)
		code, _, node := launchVia(t, gw.URL, server.LaunchRequest{Client: id, Benchmark: "VA"})
		if code != http.StatusOK {
			t.Fatalf("pin launch %s: code %d", id, code)
		}
		home[id] = node
	}

	// Hold one launch in flight on the drain victim so the drain has to
	// wait: park the victim's scheduler, then launch from a client homed
	// there — the request sits in its admission queue until Resume.
	victim := "n0"
	var inFlightClient string
	for id, n := range home {
		if n == victim {
			inFlightClient = id
			break
		}
	}
	if inFlightClient == "" {
		t.Fatal("no client homed on n0; test vacuous")
	}
	if err := f0.Pause(); err != nil {
		t.Fatal(err)
	}
	inflightDone := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(server.LaunchRequest{Client: inFlightClient, Benchmark: "MM"})
		resp, err := http.Post(gw.URL+"/v1/launch", "application/json", bytes.NewReader(body))
		if err != nil {
			inflightDone <- 0
			return
		}
		resp.Body.Close()
		inflightDone <- resp.StatusCode
	}()
	waitFor(t, "long launch in flight", func() bool {
		for _, ns := range getNodes(t, gw.URL) {
			if ns.ID == victim && ns.InFlight > 0 {
				return true
			}
		}
		return false
	})

	resp, err := http.Post(gw.URL+"/v1/nodes/"+victim+"/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("drain code = %d, want 202", resp.StatusCode)
	}

	// While the held launch is in flight the node must sit in "draining",
	// not "removed" — drain waits for in-flight work.
	time.Sleep(50 * time.Millisecond) // give waitDrain several polls to (wrongly) remove it
	for _, ns := range getNodes(t, gw.URL) {
		if ns.ID == victim && ns.State == "removed" {
			t.Fatal("node removed while a launch was still in flight")
		}
	}

	// New launches for every pinned client: sessions homed on the victim
	// remap; everyone else stays put.
	remapped := 0
	for id, before := range home {
		if id == inFlightClient {
			continue // still busy on the draining node
		}
		code, _, node := launchVia(t, gw.URL, server.LaunchRequest{Client: id, Benchmark: "VA"})
		if code != http.StatusOK {
			t.Fatalf("post-drain launch %s: code %d", id, code)
		}
		if before == victim {
			if node == victim {
				t.Fatalf("client %s still routed to draining node", id)
			}
			remapped++
		} else if node != before {
			t.Fatalf("client %s moved %s → %s though its home was not drained", id, before, node)
		}
	}
	if remapped == 0 {
		t.Fatal("no sessions were homed on the drained node; test vacuous")
	}

	if err := f0.Resume(); err != nil {
		t.Fatal(err)
	}
	if code := <-inflightDone; code != http.StatusOK {
		t.Fatalf("in-flight launch during drain finished %d, want 200", code)
	}
	waitFor(t, "drained node removed", func() bool {
		for _, ns := range getNodes(t, gw.URL) {
			if ns.ID == victim {
				return ns.State == "removed"
			}
		}
		return false
	})
}

func TestTraceMergedAcrossNodesInGlobalOrder(t *testing.T) {
	_, n0, _ := startNode(t, server.Config{Trace: true})
	_, n1, _ := startNode(t, server.Config{Trace: true})
	g, gw := startGateway(t, Config{Nodes: []string{n0.URL, n1.URL}})
	waitFor(t, "both nodes ready", func() bool { return g.ReadyNodes() == 2 })

	for i := 0; i < 12; i++ {
		code, _, _ := launchVia(t, gw.URL, server.LaunchRequest{Client: fmt.Sprintf("t%d", i), Benchmark: "VA"})
		if code != http.StatusOK {
			t.Fatalf("launch %d: code %d", i, code)
		}
	}
	resp, err := http.Get(gw.URL + "/v1/trace?kind=submit")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var entries []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("merged trace is empty")
	}
	nodesSeen := map[string]bool{}
	lastTime := -1.0
	for i, e := range entries {
		node, _ := e["node"].(string)
		if node == "" {
			t.Fatalf("entry %d lacks a node stamp: %v", i, e)
		}
		nodesSeen[node] = true
		tm, _ := e["time_ns"].(float64)
		if tm < lastTime {
			// Equal times may interleave by node; strictly decreasing time
			// is a merge-order violation.
			t.Fatalf("entry %d out of global time order", i)
		}
		lastTime = tm
	}
	if len(nodesSeen) != 2 {
		t.Fatalf("trace covers %d node(s): %v", len(nodesSeen), nodesSeen)
	}
}

func metricsSnapshot(t *testing.T, gwURL string) obs.Snapshot {
	t.Helper()
	resp, err := http.Get(gwURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	snap, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("parse /metrics: %v", err)
	}
	return snap
}

func TestMetricsCarryNodeLabelAndSumAcrossNodes(t *testing.T) {
	f0, n0, _ := startNode(t, server.Config{})
	f1, n1, _ := startNode(t, server.Config{})
	g, gw := startGateway(t, Config{Nodes: []string{n0.URL, n1.URL}})
	waitFor(t, "both nodes ready", func() bool { return g.ReadyNodes() == 2 })

	for i := 0; i < 10; i++ {
		code, _, _ := launchVia(t, gw.URL, server.LaunchRequest{Client: fmt.Sprintf("m%d", i), Benchmark: "VA"})
		if code != http.StatusOK {
			t.Fatalf("launch %d: code %d", i, code)
		}
	}
	snap := metricsSnapshot(t, gw.URL)

	if nodes := snap.LabelValues("flep_server_launches_total", "node"); len(nodes) != 2 {
		t.Fatalf("node label values = %v, want two", nodes)
	}
	total := snap.SumMatching("flep_server_launches_total", "outcome", "enqueued")
	want := float64(f0.Counters()["enqueued"] + f1.Counters()["enqueued"])
	if total != want {
		t.Fatalf("summed enqueued across nodes = %v, want %v", total, want)
	}
	perNode := snap.SumMatching("flep_server_launches_total", "outcome", "enqueued", "node", "n0") +
		snap.SumMatching("flep_server_launches_total", "outcome", "enqueued", "node", "n1")
	if perNode != total {
		t.Fatalf("per-node sums %v != total %v", perNode, total)
	}
	if v := snap.SumMatching("flep_gateway_accepted_total"); v != 10 {
		t.Fatalf("flep_gateway_accepted_total = %v, want 10", v)
	}
}

func TestGatewayRecorderCapturesAcceptedLaunches(t *testing.T) {
	_, n0, _ := startNode(t, server.Config{})
	path := filepath.Join(t.TempDir(), "gw.trace")
	rec, err := replay.NewRecorder(path, replay.Header{Source: replay.SourceFlepgw, Devices: 1},
		replay.RecorderOptions{WallClock: time.Now})
	if err != nil {
		t.Fatal(err)
	}
	_, gw := startGateway(t, Config{Nodes: []string{n0.URL}, Recorder: rec})

	const launches = 6
	for i := 0; i < launches; i++ {
		code, _, _ := launchVia(t, gw.URL, server.LaunchRequest{Client: fmt.Sprintf("r%d", i), Benchmark: "VA"})
		if code != http.StatusOK {
			t.Fatalf("launch %d: code %d", i, code)
		}
	}
	// One rejected launch must NOT be recorded.
	if code, _, _ := launchVia(t, gw.URL, server.LaunchRequest{Benchmark: "NOPE"}); code != http.StatusBadRequest {
		t.Fatalf("invalid launch code = %d, want 400", code)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	tr, err := replay.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.Source != replay.SourceFlepgw {
		t.Fatalf("trace source = %q", tr.Header.Source)
	}
	if len(tr.Records) != launches {
		t.Fatalf("recorded %d launches, want %d", len(tr.Records), launches)
	}
	for i, r := range tr.Records {
		if r.Node != "n0" {
			t.Fatalf("record %d node = %q, want n0", i, r.Node)
		}
		if r.Bench != "VA" || r.Device < 0 {
			t.Fatalf("record %d malformed: %+v", i, r)
		}
	}
}

func TestGatewayReadyzFollowsNodeHealth(t *testing.T) {
	// A gateway over one address nobody listens on is unready, not dead.
	g, gw := startGatewayUnchecked(t, Config{Nodes: []string{"127.0.0.1:1"}, HealthInterval: 10 * time.Millisecond})
	_ = g
	for _, want := range []struct {
		path string
		code int
	}{{"/healthz", 200}, {"/readyz", 503}} {
		resp, err := http.Get(gw.URL + want.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want.code {
			t.Fatalf("%s = %d, want %d", want.path, resp.StatusCode, want.code)
		}
	}

	// Launches are refused 503 while nothing is routable.
	code, _, _ := launchVia(t, gw.URL, server.LaunchRequest{Client: "x", Benchmark: "VA"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("unroutable launch code = %d, want 503", code)
	}
}

// startGatewayUnchecked is startGateway without the readiness wait (for
// tests that exercise the not-ready path).
func startGatewayUnchecked(t *testing.T, cfg Config) (*Gateway, *httptest.Server) {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	g.Start()
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(func() {
		ts.Close()
		g.Close()
	})
	return g, ts
}

func TestNormalizeAddr(t *testing.T) {
	cases := map[string]string{
		":7450":                 "http://127.0.0.1:7450",
		"localhost:7450":        "http://localhost:7450",
		"http://10.0.0.2:7450/": "http://10.0.0.2:7450",
		"https://gpu.example:1": "https://gpu.example:1",
		" 10.1.2.3:7450 ":       "http://10.1.2.3:7450",
	}
	for in, want := range cases {
		got, err := normalizeAddr(in)
		if err != nil || got != want {
			t.Fatalf("normalizeAddr(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := normalizeAddr("  "); err == nil {
		t.Fatal("empty address accepted")
	}
}
