package cudalite

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestInterpVecAdd(t *testing.T) {
	prog := mustParse(t, vaSrc)
	m := NewMachine(prog)
	n := 1000
	a := NewFloatBuffer("a", n)
	b := NewFloatBuffer("b", n)
	c := NewFloatBuffer("c", n)
	for i := 0; i < n; i++ {
		a.F[i] = float64(i)
		b.F[i] = 2 * float64(i)
	}
	err := m.Launch("vecadd", LaunchConfig{
		Grid:  D1((n + 255) / 256),
		Block: D1(256),
		Args:  []Value{PtrValue(a, 0), PtrValue(b, 0), PtrValue(c, 0), IntValue(int64(n))},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if c.F[i] != 3*float64(i) {
			t.Fatalf("c[%d] = %g, want %g", i, c.F[i], 3*float64(i))
		}
	}
}

const tiledMMSrc = `
__global__ void mm(float* a, float* b, float* c, int n) {
    __shared__ float ta[64];
    __shared__ float tb[64];
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    int row = blockIdx.y * 8 + ty;
    int col = blockIdx.x * 8 + tx;
    float acc = 0.0;
    for (int t = 0; t < n / 8; ++t) {
        ta[ty * 8 + tx] = a[row * n + t * 8 + tx];
        tb[ty * 8 + tx] = b[(t * 8 + ty) * n + col];
        __syncthreads();
        for (int k = 0; k < 8; ++k) {
            acc += ta[ty * 8 + k] * tb[k * 8 + tx];
        }
        __syncthreads();
    }
    c[row * n + col] = acc;
}
`

func TestInterpTiledMatMulMatchesReference(t *testing.T) {
	prog := mustParse(t, tiledMMSrc)
	m := NewMachine(prog)
	n := 16
	a := NewFloatBuffer("a", n*n)
	b := NewFloatBuffer("b", n*n)
	c := NewFloatBuffer("c", n*n)
	rng := rand.New(rand.NewSource(7))
	for i := range a.F {
		a.F[i] = rng.Float64()
		b.F[i] = rng.Float64()
	}
	err := m.Launch("mm", LaunchConfig{
		Grid:  D2(n/8, n/8),
		Block: D2(8, 8),
		Args:  []Value{PtrValue(a, 0), PtrValue(b, 0), PtrValue(c, 0), IntValue(int64(n))},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var want float64
			for k := 0; k < n; k++ {
				want += a.F[i*n+k] * b.F[k*n+j]
			}
			if math.Abs(c.F[i*n+j]-want) > 1e-9 {
				t.Fatalf("c[%d][%d] = %g, want %g", i, j, c.F[i*n+j], want)
			}
		}
	}
}

func TestInterpAtomicAddExactCount(t *testing.T) {
	prog := mustParse(t, `
__global__ void count(int* counter) {
    atomicAdd(counter, 1);
}
`)
	m := NewMachine(prog)
	ctr := NewIntBuffer("counter", 1)
	if err := m.Launch("count", LaunchConfig{Grid: D1(10), Block: D1(64), Args: []Value{PtrValue(ctr, 0)}}); err != nil {
		t.Fatal(err)
	}
	if ctr.I[0] != 640 {
		t.Fatalf("counter = %d, want 640", ctr.I[0])
	}
}

func TestInterpAtomicAddReturnsOld(t *testing.T) {
	prog := mustParse(t, `
__global__ void grab(int* counter, int* slots) {
    int my = atomicAdd(counter, 1);
    slots[my] = 1;
}
`)
	m := NewMachine(prog)
	ctr := NewIntBuffer("counter", 1)
	slots := NewIntBuffer("slots", 256)
	if err := m.Launch("grab", LaunchConfig{Grid: D1(4), Block: D1(64), Args: []Value{PtrValue(ctr, 0), PtrValue(slots, 0)}}); err != nil {
		t.Fatal(err)
	}
	for i, v := range slots.I {
		if v != 1 {
			t.Fatalf("slot %d not claimed exactly once (=%d)", i, v)
		}
	}
}

func TestInterpDeviceFunctionCall(t *testing.T) {
	prog := mustParse(t, `
__device__ float square(float x) { return x * x; }
__global__ void k(float* a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { a[i] = square(a[i]); }
}
`)
	m := NewMachine(prog)
	a := NewFloatBuffer("a", 8)
	for i := range a.F {
		a.F[i] = float64(i)
	}
	if err := m.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(8), Args: []Value{PtrValue(a, 0), IntValue(8)}}); err != nil {
		t.Fatal(err)
	}
	for i := range a.F {
		if a.F[i] != float64(i*i) {
			t.Fatalf("a[%d] = %g", i, a.F[i])
		}
	}
}

func TestInterpSharedScalarBroadcast(t *testing.T) {
	// Leader thread stores to a shared scalar; after a barrier every
	// thread reads it — the FLEP leader-poll pattern.
	prog := mustParse(t, `
__global__ void k(int* out) {
    __shared__ int val;
    if (threadIdx.x == 0) {
        val = 42;
    }
    __syncthreads();
    out[blockIdx.x * blockDim.x + threadIdx.x] = val;
}
`)
	m := NewMachine(prog)
	out := NewIntBuffer("out", 128)
	if err := m.Launch("k", LaunchConfig{Grid: D1(2), Block: D1(64), Args: []Value{PtrValue(out, 0)}}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out.I {
		if v != 42 {
			t.Fatalf("out[%d] = %d, want 42", i, v)
		}
	}
}

func TestInterpGridStrideLoop(t *testing.T) {
	prog := mustParse(t, `
__global__ void scale(float* a, int n) {
    for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < n; i += gridDim.x * blockDim.x) {
        a[i] = a[i] * 2.0;
    }
}
`)
	m := NewMachine(prog)
	n := 1000
	a := NewFloatBuffer("a", n)
	for i := range a.F {
		a.F[i] = 1
	}
	if err := m.Launch("scale", LaunchConfig{Grid: D1(2), Block: D1(32), Args: []Value{PtrValue(a, 0), IntValue(int64(n))}}); err != nil {
		t.Fatal(err)
	}
	for i := range a.F {
		if a.F[i] != 2 {
			t.Fatalf("a[%d] = %g", i, a.F[i])
		}
	}
}

func TestInterpSMIDIntrinsic(t *testing.T) {
	prog := mustParse(t, `
__global__ void whoami(int* out) {
    if (threadIdx.x == 0) {
        out[blockIdx.x] = __smid();
    }
}
`)
	m := NewMachine(prog)
	out := NewIntBuffer("out", 30)
	err := m.Launch("whoami", LaunchConfig{
		Grid: D1(30), Block: D1(32),
		Args: []Value{PtrValue(out, 0)},
		SMID: func(cta int) int { return cta / 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	for cta, v := range out.I {
		if v != int64(cta/2) {
			t.Fatalf("cta %d saw smid %d, want %d", cta, v, cta/2)
		}
	}
}

func TestInterpOutOfBoundsIsError(t *testing.T) {
	prog := mustParse(t, `__global__ void k(float* a) { a[100] = 1.0; }`)
	m := NewMachine(prog)
	a := NewFloatBuffer("a", 10)
	err := m.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(1), Args: []Value{PtrValue(a, 0)}})
	if err == nil || !strings.Contains(err.Error(), "out-of-bounds") {
		t.Fatalf("err = %v, want out-of-bounds", err)
	}
}

func TestInterpDivisionByZeroIsError(t *testing.T) {
	prog := mustParse(t, `__global__ void k(int* a) { a[0] = 1 / a[1]; }`)
	m := NewMachine(prog)
	a := NewIntBuffer("a", 2)
	err := m.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(1), Args: []Value{PtrValue(a, 0)}})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}
}

func TestInterpInfiniteLoopHitsBudget(t *testing.T) {
	prog := mustParse(t, `__global__ void k() { while (1) { } }`)
	m := NewMachine(prog)
	m.StepBudget = 10000
	err := m.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(1)})
	if err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Fatalf("err = %v", err)
	}
}

func TestInterpWrongArgCount(t *testing.T) {
	prog := mustParse(t, vaSrc)
	m := NewMachine(prog)
	err := m.Launch("vecadd", LaunchConfig{Grid: D1(1), Block: D1(1)})
	if err == nil {
		t.Fatal("expected arg count error")
	}
}

func TestInterpUnknownKernel(t *testing.T) {
	m := NewMachine(mustParse(t, vaSrc))
	if err := m.Launch("nope", LaunchConfig{Grid: D1(1), Block: D1(1)}); err == nil {
		t.Fatal("expected unknown kernel error")
	}
}

func TestInterpVolatileReadHook(t *testing.T) {
	prog := mustParse(t, `
__global__ void poll(volatile int* flag, int* iters) {
    while (1) {
        if (*flag == 1) {
            return;
        }
        iters[0] = iters[0] + 1;
    }
}
`)
	m := NewMachine(prog)
	flag := NewIntBuffer("flag", 1)
	flag.Volatile = true
	iters := NewIntBuffer("iters", 1)
	polls := 0
	m.OnVolatileRead = func(b *Buffer, idx int) {
		polls++
		if polls == 5 {
			b.I[0] = 1
		}
	}
	if err := m.Launch("poll", LaunchConfig{Grid: D1(1), Block: D1(1), Args: []Value{PtrValue(flag, 0), PtrValue(iters, 0)}}); err != nil {
		t.Fatal(err)
	}
	if iters.I[0] != 4 {
		t.Fatalf("iterations = %d, want 4 (flag set on 5th poll)", iters.I[0])
	}
}

func TestInterpOnCTADoneSequential(t *testing.T) {
	prog := mustParse(t, `__global__ void k(int* a) { if (threadIdx.x == 0) { a[blockIdx.x] = 1; } }`)
	m := NewMachine(prog)
	a := NewIntBuffer("a", 8)
	var seen []int
	err := m.Launch("k", LaunchConfig{
		Grid: D1(8), Block: D1(4),
		Args:      []Value{PtrValue(a, 0)},
		OnCTADone: func(cta int) { seen = append(seen, cta) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 8 {
		t.Fatalf("OnCTADone fired %d times", len(seen))
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("CTA order %v", seen)
		}
	}
}

func TestInterpPointerArithmetic(t *testing.T) {
	prog := mustParse(t, `
__global__ void k(float* a) {
    float* p = a + 3;
    *p = 7.0;
    p[1] = 8.0;
}
`)
	m := NewMachine(prog)
	a := NewFloatBuffer("a", 8)
	if err := m.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(1), Args: []Value{PtrValue(a, 0)}}); err != nil {
		t.Fatal(err)
	}
	if a.F[3] != 7 || a.F[4] != 8 {
		t.Fatalf("a = %v", a.F)
	}
}

func TestInterpLocalArray(t *testing.T) {
	prog := mustParse(t, `
__global__ void k(float* out) {
    float acc[4];
    for (int i = 0; i < 4; ++i) { acc[i] = (float)i; }
    float s = 0.0;
    for (int i = 0; i < 4; ++i) { s += acc[i]; }
    out[threadIdx.x] = s;
}
`)
	m := NewMachine(prog)
	out := NewFloatBuffer("out", 4)
	if err := m.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(4), Args: []Value{PtrValue(out, 0)}}); err != nil {
		t.Fatal(err)
	}
	for i := range out.F {
		if out.F[i] != 6 {
			t.Fatalf("out[%d] = %g, want 6", i, out.F[i])
		}
	}
}

func TestInterpIntTruncation(t *testing.T) {
	prog := mustParse(t, `__global__ void k(int* out, float x) { out[0] = (int)x; int y = x; out[1] = y; }`)
	m := NewMachine(prog)
	out := NewIntBuffer("out", 2)
	if err := m.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(1), Args: []Value{PtrValue(out, 0), FloatValue(3.9)}}); err != nil {
		t.Fatal(err)
	}
	if out.I[0] != 3 || out.I[1] != 3 {
		t.Fatalf("out = %v, want [3 3]", out.I)
	}
}

func TestInterpMathBuiltins(t *testing.T) {
	prog := mustParse(t, `
__global__ void k(float* o) {
    o[0] = sqrtf(16.0);
    o[1] = fmaxf(1.0, 2.0);
    o[2] = fminf(1.0, 2.0);
    o[3] = fabsf(-3.5);
    o[4] = expf(0.0);
    o[5] = powf(2.0, 10.0);
    o[6] = (float)min(3, 5);
    o[7] = (float)max(3, 5);
}
`)
	m := NewMachine(prog)
	o := NewFloatBuffer("o", 8)
	if err := m.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(1), Args: []Value{PtrValue(o, 0)}}); err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 2, 1, 3.5, 1, 1024, 3, 5}
	for i := range want {
		if o.F[i] != want[i] {
			t.Fatalf("o[%d] = %g, want %g", i, o.F[i], want[i])
		}
	}
}

// Property: a grid-stride sum over random data matches the Go sum.
func TestPropertyGridStrideSum(t *testing.T) {
	prog := mustParse(t, `
__global__ void sum(float* a, float* out, int n) {
    for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < n; i += gridDim.x * blockDim.x) {
        atomicAdd(out, a[i]);
    }
}
`)
	f := func(seed int64, sz uint16) bool {
		n := int(sz)%500 + 1
		rng := rand.New(rand.NewSource(seed))
		m := NewMachine(prog)
		a := NewFloatBuffer("a", n)
		var want float64
		for i := range a.F {
			a.F[i] = float64(rng.Intn(100)) // integers: exact FP addition
			want += a.F[i]
		}
		out := NewFloatBuffer("out", 1)
		err := m.Launch("sum", LaunchConfig{Grid: D1(2), Block: D1(16), Args: []Value{PtrValue(a, 0), PtrValue(out, 0), IntValue(int64(n))}})
		return err == nil && out.F[0] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
