package experiments

import (
	"fmt"
	"time"

	"flep/internal/core"
	"flep/internal/kernels"
	"flep/internal/workload"
)

// Figure15 regenerates the spatial-preemption experiment: for each
// high-priority benchmark (trivial input) averaged over all low-priority
// co-runners (large input), the preemption overhead (T_FLEP − T_org)/T_org
// under spatial preemption versus temporal (all-SM) preemption, and the
// reduction. Paper: 31% average reduction, up to 41% (NN).
func (s *Suite) Figure15() (*Table, error) {
	t := &Table{
		ID:      "fig15",
		Title:   "Preemption overhead reduction through spatial preemption",
		Columns: []string{"high-prio bench", "temporal-ovh", "spatial-ovh", "reduction"},
	}
	var sumRed float64
	var maxRed float64
	var maxName string
	for _, high := range kernels.All() {
		var ovT, ovS float64
		n := 0
		for _, low := range kernels.All() {
			if low.Name == high.Name {
				continue
			}
			sc := workload.SpatialPair(high, low)
			org, err := s.Sys.RunMPS(sc)
			if err != nil {
				return nil, err
			}
			temporal, err := s.Sys.RunFLEP(sc, core.Options{Policy: "hpf"})
			if err != nil {
				return nil, err
			}
			spatial, err := s.Sys.RunFLEP(sc, core.Options{Policy: "hpf", Spatial: true})
			if err != nil {
				return nil, err
			}
			ovT += (temporal.Makespan - org.Makespan).Seconds() / org.Makespan.Seconds()
			ovS += (spatial.Makespan - org.Makespan).Seconds() / org.Makespan.Seconds()
			n++
		}
		ovT /= float64(n)
		ovS /= float64(n)
		red := 0.0
		if ovT > 0 {
			red = 1 - ovS/ovT
		}
		sumRed += red
		if red > maxRed {
			maxRed = red
			maxName = high.Name
		}
		t.AddRow(high.Name, pct(ovT), pct(ovS), pct(red))
	}
	t.Note("mean reduction %s, max %s (%s) (paper: 31%% mean, up to 41%% for NN)",
		pct(sumRed/float64(len(kernels.All()))), pct(maxRed), maxName)
	return t, nil
}

// Figure16 regenerates the over-provisioning case study: a high-priority
// kernel launching 16 CTAs needs only 2 SMs, but yielding more SMs spreads
// its CTAs and improves its performance, up to a modest bound.
// Paper: largest speedup over the 2-SM baseline ≈ 2.22x.
func (s *Suite) Figure16() (*Table, error) {
	t := &Table{
		ID:      "fig16",
		Title:   "High-priority kernel speedup from yielding more SMs than needed",
		Columns: []string{"case", "yielded-SMs", "turnaround(us)", "speedup-vs-2SM"},
	}
	cases := [][2]string{{"NN", "CFD"}, {"NN", "PF"}, {"MD", "CFD"}, {"MD", "PF"}}
	sweeps := []int{2, 3, 4, 6, 8, 10, 12}
	var maxSp float64
	for _, c := range cases {
		high, _ := kernels.ByName(c[0])
		low, _ := kernels.ByName(c[1])
		var base time.Duration
		for _, sms := range sweeps {
			exec, err := s.spatialGuestExecTime(high, low, sms)
			if err != nil {
				return nil, err
			}
			if sms == 2 {
				base = exec
			}
			sp := base.Seconds() / exec.Seconds()
			if sp > maxSp {
				maxSp = sp
			}
			t.AddRow(c[0]+"_"+c[1], sms, exec, x(sp))
		}
	}
	t.Note("largest speedup over the baseline %.2fx (paper: ≈2.22x)", maxSp)
	t.Note("speedup measured on the guest's execution time (drain wait excluded, as it is identical across yields)")
	return t, nil
}

// spatialGuestExecTime runs low (large) + a 16-CTA high-priority guest,
// forcing the spatial yield to the given SM count, and returns the guest's
// execution time (turnaround minus drain wait).
func (s *Suite) spatialGuestExecTime(high, low *kernels.Benchmark, sms int) (time.Duration, error) {
	sc := workload.SpatialPair(high, low)
	// The paper's case study launches 16 CTAs (2 SMs at full occupancy).
	sc.Items[1].TasksOverride = 16
	res, err := s.Sys.RunFLEP(sc, core.Options{Policy: "hpf", Spatial: true, SpatialSMs: sms})
	if err != nil {
		return 0, err
	}
	r := res.ResultFor(high.Name)
	if r == nil {
		return 0, fmt.Errorf("experiments: %s never completed", high.Name)
	}
	return r.Turnaround() - r.Waiting, nil
}
