package lint

// callgraph.go builds the same-module call graph the interprocedural
// analyzers (poolownership, lockorder, ledger) share. Nodes are keyed
// by a stable textual function ID — "pkgpath.Func" or
// "pkgpath.(Recv).Method" — rather than by *types.Func, because the
// vettool protocol typechecks every package independently and the
// standalone driver may load fixture siblings through separate
// typechecks: object identity does not survive those boundaries, the
// rendered ID does.
//
// Three edge kinds are distinguished:
//
//   - call: a static call expression (the only kind summaries follow);
//   - ref:  a method value or function value mention outside call
//     position (`f := s.method`) — the target may run later through a
//     dynamic call the graph cannot see;
//   - bind: a function stored into a struct field or composite literal
//     (the On* callback idiom looppurity special-cases) — same dynamic
//     caveat, but the storage site is what a reviewer wants to find.
//
// ref/bind edges exist so the graph is an honest map of reachability;
// the dataflow engine treats their targets conservatively (no summary
// is applied through a dynamic edge).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"flep/internal/lint/loader"
)

type cgEdgeKind int

const (
	cgCall cgEdgeKind = iota
	cgRef
	cgBind
)

func (k cgEdgeKind) String() string {
	switch k {
	case cgCall:
		return "call"
	case cgRef:
		return "ref"
	case cgBind:
		return "bind"
	}
	return "?"
}

type cgEdge struct {
	Callee string // funcID of the target (node may be external)
	Kind   cgEdgeKind
	Pos    token.Pos
}

type cgNode struct {
	ID    string
	Fn    *types.Func
	Decl  *ast.FuncDecl
	Pkg   *loader.Package
	Edges []cgEdge // source order
}

// callGraph is the module (or package) call graph over declared
// functions of the loaded packages. External callees appear only as
// edge targets.
type callGraph struct {
	Nodes map[string]*cgNode
	Order []string // deterministic node order: by ID
}

// funcIDOf renders the stable node key for a function object.
func funcIDOf(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		name := "?"
		if n, ok := t.(*types.Named); ok {
			name = n.Obj().Name()
		}
		return pkg + ".(" + name + ")." + fn.Name()
	}
	return pkg + "." + fn.Name()
}

func stripParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// staticCalleeFunc resolves a call expression to its target function
// when the target is fixed at compile time: a package function, or a
// method on a concrete named type. Interface methods, function values,
// and builtins resolve to nil.
func staticCalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := stripParens(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if types.IsInterface(sel.Recv()) {
				return nil // dynamic dispatch
			}
			return fn
		}
		// Qualified identifier: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// buildCallGraph indexes every declared function in pkgs and extracts
// its outgoing edges.
func buildCallGraph(pkgs []*loader.Package) *callGraph {
	g := &callGraph{Nodes: map[string]*cgNode{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &cgNode{ID: funcIDOf(obj), Fn: obj, Decl: fd, Pkg: pkg}
				collectEdges(pkg.Info, fd.Body, node)
				g.Nodes[node.ID] = node
			}
		}
	}
	g.Order = make([]string, 0, len(g.Nodes))
	for id := range g.Nodes {
		g.Order = append(g.Order, id)
	}
	sort.Strings(g.Order)
	return g
}

// collectEdges walks one function body appending call/ref/bind edges in
// source order. A stack of ancestors classifies non-call references.
func collectEdges(info *types.Info, body *ast.BlockStmt, node *cgNode) {
	var stack []ast.Node
	funcRef := func(n ast.Node) *types.Func {
		switch e := n.(type) {
		case *ast.Ident:
			if fn, ok := info.Uses[e].(*types.Func); ok {
				return fn
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[e]; ok {
				if fn, ok := sel.Obj().(*types.Func); ok && !types.IsInterface(sel.Recv()) {
					return fn
				}
			}
		}
		return nil
	}
	// isCallFun reports whether n is exactly the Fun of its nearest
	// enclosing call (already accounted as a call edge), and whether n
	// sits in a bind context (struct-field assignment or composite
	// literal element).
	classify := func(n ast.Node) (isCallFun, isBind bool) {
		child := n
		for i := len(stack) - 2; i >= 0; i-- {
			switch p := stack[i].(type) {
			case *ast.ParenExpr:
				child = p
				continue
			case *ast.CallExpr:
				return stripParens(p.Fun) == child || p.Fun == child, false
			case *ast.SelectorExpr:
				// n is the Sel of a larger selector chain; the chain head
				// classifies instead.
				if p.Sel == child || p.X == child {
					child = p
					continue
				}
				return false, false
			case *ast.KeyValueExpr:
				if p.Value == child {
					// Composite-literal field value (the OnFinish idiom).
					return false, true
				}
				return false, false
			case *ast.AssignStmt:
				for ri, r := range p.Rhs {
					if stripParens(r) == child && ri < len(p.Lhs) {
						if _, sel := p.Lhs[ri].(*ast.SelectorExpr); sel {
							return false, true
						}
					}
				}
				return false, false
			default:
				return false, false
			}
		}
		return false, false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		switch e := n.(type) {
		case *ast.CallExpr:
			if fn := staticCalleeFunc(info, e); fn != nil {
				node.Edges = append(node.Edges, cgEdge{Callee: funcIDOf(fn), Kind: cgCall, Pos: e.Pos()})
			}
		case *ast.Ident, *ast.SelectorExpr:
			fn := funcRef(n)
			if fn == nil {
				break
			}
			// Selector idents are visited twice (chain and Sel); only
			// classify the outermost node that resolves.
			if id, ok := n.(*ast.Ident); ok {
				if len(stack) >= 2 {
					if sel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && sel.Sel == id {
						break
					}
				}
			}
			isCallFun, isBind := classify(n)
			if isCallFun {
				break
			}
			kind := cgRef
			if isBind {
				kind = cgBind
			}
			node.Edges = append(node.Edges, cgEdge{Callee: funcIDOf(fn), Kind: kind, Pos: n.Pos()})
		}
		return true
	})
}

// sccOrder returns the strongly connected components of the call-edge
// subgraph in bottom-up (callees-first) order, so summary computation
// can run in one pass. Components are internally sorted; singleton
// components dominate in practice.
func (g *callGraph) sccOrder() [][]string {
	// Tarjan, iterative enough for these graph sizes via recursion on a
	// few thousand nodes at most.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var next int
	var out [][]string

	var visit func(id string)
	visit = func(id string) {
		index[id] = next
		low[id] = next
		next++
		stack = append(stack, id)
		onStack[id] = true
		node := g.Nodes[id]
		for _, e := range node.Edges {
			if e.Kind != cgCall {
				continue
			}
			tgt, ok := g.Nodes[e.Callee]
			if !ok {
				continue // external
			}
			if _, seen := index[tgt.ID]; !seen {
				visit(tgt.ID)
				if low[tgt.ID] < low[id] {
					low[id] = low[tgt.ID]
				}
			} else if onStack[tgt.ID] && index[tgt.ID] < low[id] {
				low[id] = index[tgt.ID]
			}
		}
		if low[id] == index[id] {
			var comp []string
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				comp = append(comp, top)
				if top == id {
					break
				}
			}
			sort.Strings(comp)
			out = append(out, comp)
		}
	}
	for _, id := range g.Order {
		if _, seen := index[id]; !seen {
			visit(id)
		}
	}
	return out
}

// recursive reports whether id participates in a call cycle (including
// self-recursion) — such functions get no summary.
func (g *callGraph) recursive() map[string]bool {
	rec := map[string]bool{}
	for _, comp := range g.sccOrder() {
		if len(comp) > 1 {
			for _, id := range comp {
				rec[id] = true
			}
			continue
		}
		id := comp[0]
		for _, e := range g.Nodes[id].Edges {
			if e.Kind == cgCall && e.Callee == id {
				rec[id] = true
			}
		}
	}
	return rec
}

// dump renders the graph deterministically for golden tests: one header
// line per node, one indented line per edge in source order.
func (g *callGraph) dump(fset *token.FileSet) string {
	var b strings.Builder
	for _, id := range g.Order {
		node := g.Nodes[id]
		fmt.Fprintf(&b, "%s:\n", id)
		for _, e := range node.Edges {
			fmt.Fprintf(&b, "  %s %s\n", e.Kind, e.Callee)
		}
	}
	return b.String()
}
