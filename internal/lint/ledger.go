package lint

// ledger machine-checks the exactly-once admission accounting contract
// (DESIGN.md: Enqueued == Completed + SubmitErrors, and every launch
// reaches exactly one terminal family). Counter touches — `s.c.X++` on
// the counters struct and `s.met.X.Inc()` on the serverMetrics mirror —
// are mapped to outcome families and propagated through the engine's
// per-exit summaries, so each control-flow path of each admission entry
// point carries the set of families it increments. Entry points then
// check the path masks against their contract:
//
//   exactly-one — serveLaunch/handleLaunch (any family), rejectLaunch
//     (one of the three queue-reject families), countInvalid,
//     complete;
//   at-most-one — admit/admitAll (submit_errors only; the success
//     outcome is deferred to complete).
//
// Propagation is cut at the dependency-table maintenance functions
// (depStageDone, depCascadeLocked, …): the outcomes they count belong
// to OTHER requests (released or cascade-canceled stages), not to the
// caller's, so folding them into the caller's mask would be wrong.
// depAdmit is the exception — it classifies the current request and its
// parked-family exit is what makes serveLaunch's park path exactly-once.
//
// Categories:
//
//   ledgermissing   — an entry-point path increments no terminal family;
//   ledgerdouble    — a path increments two or more families;
//   ledgerforbidden — a path increments a family outside the entry's
//     contract, or a dependency-layer function increments a core ledger
//     counter (Enqueued/Completed/SubmitErrors) directly.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"math/bits"
	"sort"
	"strings"

	"flep/internal/lint/analysis"
	"flep/internal/lint/loader"
)

var LedgerAnalyzer = &analysis.Analyzer{
	Name:       "ledger",
	Doc:        "verify each admission entry-point path increments exactly one terminal-outcome counter family",
	Categories: []string{"ledgermissing", "ledgerdouble", "ledgerforbidden"},
	Run:        runLedger,
}

// Terminal-outcome families, in bit order. TimedOut/Canceled/SLO* are
// deliberately NOT families: they annotate a launch that already has a
// terminal outcome (the invocation runs to completion after a timeout).
var ledgerFamilies = []string{
	"enqueued",
	"completed",
	"submit_errors",
	"rejected_full",
	"rejected_draining",
	"rejected_invalid",
	"rejected_shed",
	"dep_canceled",
	"rejected_dep_full",
	"parked",
}

// ledgerFields maps counter/metric field names to family bits. The
// counters struct and the serverMetrics mirror use the same field names
// at the same increment sites, which is itself part of the contract.
var ledgerFields = map[string]int{
	"Enqueued":          0,
	"Completed":         1,
	"SubmitErrors":      2,
	"RejectedFull":      3,
	"RejectedDraining":  4,
	"RejectedInvalid":   5,
	"RejectedShed":      6,
	"DepCanceled":       7,
	"RejectedDepFull":   8,
	"ModelStagesParked": 9, // the metrics-only park family
}

// Core families the dependency layer must never increment directly:
// released stages re-enter the ledger only through admitReleased's
// sanctioned boundary.
const ledgerCoreMask uint64 = 1<<0 | 1<<1 | 1<<2

type ledgerMode int

const (
	ledgerExactlyOne ledgerMode = iota
	ledgerAtMostOne
)

type ledgerEntry struct {
	mode    ledgerMode
	allowed uint64
}

func famMask(names ...string) uint64 {
	var m uint64
	for _, n := range names {
		for i, f := range ledgerFamilies {
			if f == n {
				m |= 1 << i
			}
		}
	}
	return m
}

// ledgerEntries maps Server method names to their contracts.
func ledgerEntries() map[string]ledgerEntry {
	all := uint64(1<<len(ledgerFamilies)) - 1
	return map[string]ledgerEntry{
		"handleLaunch": {ledgerExactlyOne, all},
		"serveLaunch":  {ledgerExactlyOne, all},
		"rejectLaunch": {ledgerExactlyOne, famMask("rejected_full", "rejected_shed", "rejected_draining")},
		"countInvalid": {ledgerExactlyOne, famMask("rejected_invalid")},
		"complete":     {ledgerExactlyOne, famMask("completed")},
		"admit":        {ledgerAtMostOne, famMask("submit_errors")},
		"admitAll":     {ledgerAtMostOne, famMask("submit_errors")},
	}
}

// ledgerCut lists dependency-table functions whose counted outcomes
// belong to other requests; their summaries propagate result tuples but
// an empty family mask.
var ledgerCut = map[string]bool{
	"depStageDone":          true,
	"depStageFailed":        true,
	"depCascadeLocked":      true,
	"depCloseIfDoneLocked":  true,
	"depDrainCancel":        true,
	"depEvictStalledLocked": true,
	"deliverDepCancels":     true,
}

// ledgerForbiddenScope lists functions that must not touch the core
// ledger directly (plus every dep*-prefixed Server method).
func ledgerForbiddenScope(name string) bool {
	return strings.HasPrefix(name, "dep") || name == "deliverDepCancels" || name == "admitReleased"
}

func famNames(mask uint64) string {
	var out []string
	for i, f := range ledgerFamilies {
		if mask&(1<<i) != 0 {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return strings.Join(out, "+")
}

type ledgerChecker struct {
	pass     *analysis.Pass
	info     *types.Info
	sums     map[string]*funcSummary
	reported map[string]bool
}

func runLedger(pass *analysis.Pass) (any, error) {
	if !strings.Contains(pass.Pkg.Path(), "internal/server") {
		return nil, nil
	}
	pkg := &loader.Package{PkgPath: pass.Pkg.Path(), Files: pass.Files, Types: pass.Pkg, Info: pass.TypesInfo}
	c := &ledgerChecker{
		pass:     pass,
		info:     pass.TypesInfo,
		sums:     map[string]*funcSummary{},
		reported: map[string]bool{},
	}
	g := buildCallGraph([]*loader.Package{pkg})
	rec := g.recursive()
	entries := ledgerEntries()
	for _, comp := range g.sccOrder() {
		for _, id := range comp {
			node := g.Nodes[id]
			var entry *ledgerEntry
			if isServerMethod(node.Fn) {
				if e, ok := entries[node.Fn.Name()]; ok {
					entry = &e
				}
			}
			c.checkFunc(node, entry, !rec[id])
		}
	}
	return nil, nil
}

// isServerMethod reports whether fn is a method on a type named Server.
func isServerMethod(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Server"
}

func (c *ledgerChecker) report(pos token.Pos, category, msg string) {
	key := fmt.Sprintf("%d|%s|%s", pos, category, msg)
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	c.pass.Reportf(pos, category, "%s", msg)
}

// counterFamily resolves `x.c.Field` / `x.met.Field` selectors to a
// family bit, requiring the field's owner to be the counters struct or
// the serverMetrics mirror.
func (c *ledgerChecker) counterFamily(e ast.Expr) (int, bool) {
	sel, ok := stripParens(e).(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	bit, ok := ledgerFields[sel.Sel.Name]
	if !ok {
		return 0, false
	}
	s, ok := c.info.Selections[sel]
	if !ok {
		return 0, false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	n, ok := recv.(*types.Named)
	if !ok {
		return 0, false
	}
	owner := n.Obj().Name()
	if owner != "counters" && owner != "serverMetrics" {
		return 0, false
	}
	return bit, true
}

// ------------------------------------------------------------- domain

const ledgerMaskVal = 0 // the single abstract value: the family mask

type ledgerDomain struct {
	baseDomain
	c        *ledgerChecker
	entry    *ledgerEntry
	fnName   string
	forbid   bool // dep-layer direct-core prohibition applies
	nresults int
	sum      *funcSummary
}

func (d *ledgerDomain) hit(st *pathState, bit int, pos token.Pos) {
	st.facts[ledgerMaskVal] |= 1 << bit
	if d.forbid && (uint64(1)<<bit)&ledgerCoreMask != 0 {
		d.c.report(pos, "ledgerforbidden",
			fmt.Sprintf("%s increments core ledger counter %s directly; released stages re-enter the ledger only through the sanctioned admission boundary", d.fnName, ledgerFamilies[bit]))
	}
}

func (d *ledgerDomain) incDec(st *pathState, s *ast.IncDecStmt) {
	if s.Tok != token.INC {
		return
	}
	if bit, ok := d.c.counterFamily(s.X); ok {
		d.hit(st, bit, s.Pos())
	}
}

func (d *ledgerDomain) call(in []*pathState, call *ast.CallExpr, w *walker) []*pathState {
	// Metric mirror increments: s.met.Family.Inc().
	if sel, ok := stripParens(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Inc" {
		if bit, ok := d.c.counterFamily(sel.X); ok {
			in = w.walkCallArgs(in, call, nil)
			for _, st := range in {
				d.hit(st, bit, call.Pos())
			}
			return in
		}
	}
	in = w.walkCallArgs(in, call, nil)
	fn := staticCalleeFunc(d.c.info, call)
	if fn == nil {
		return in
	}
	sum := d.c.sums[funcIDOf(fn)]
	if sum == nil {
		return in // external / dynamic / recursive: touches no ledger
	}
	return w.forkSummary(in, call, sum, func(st *pathState, ex *sumExit) {
		st.facts[ledgerMaskVal] |= ex.payload
	})
}

func (d *ledgerDomain) exit(st *pathState, ret *ast.ReturnStmt, pos token.Pos) {
	mask := st.facts[ledgerMaskVal]
	d.sum.addExit(resolveResults(d.c.info, d.nresults, ret), mask)
	if d.entry == nil {
		return
	}
	n := bits.OnesCount64(mask)
	switch {
	case n == 0:
		if d.entry.mode == ledgerExactlyOne {
			d.c.report(pos, "ledgermissing",
				fmt.Sprintf("%s: this path increments no terminal-outcome counter; every admission path must account exactly one", d.fnName))
		}
	case n > 1:
		d.c.report(pos, "ledgerdouble",
			fmt.Sprintf("%s: this path increments %d terminal-outcome families (%s); the exactly-once ledger allows one", d.fnName, n, famNames(mask)))
	case mask&^d.entry.allowed != 0:
		d.c.report(pos, "ledgerforbidden",
			fmt.Sprintf("%s: this path increments %s, outside the entry point's contract (%s)", d.fnName, famNames(mask), famNames(d.entry.allowed)))
	}
}

// checkFunc walks one function, checking entry contracts and recording
// its summary.
func (c *ledgerChecker) checkFunc(node *cgNode, entry *ledgerEntry, summarize bool) {
	sig := node.Fn.Type().(*types.Signature)
	d := &ledgerDomain{
		c:        c,
		entry:    entry,
		fnName:   node.Fn.Name(),
		forbid:   isServerMethod(node.Fn) && ledgerForbiddenScope(node.Fn.Name()),
		nresults: sig.Results().Len(),
		sum:      &funcSummary{},
	}
	// depAdmit classifies the current request, so its park increment is
	// sanctioned and its summary propagates; the other dep-layer
	// functions count OTHER requests' outcomes, so their masks are cut.
	w := newWalker(node.Pkg.Info, d, node.Decl.Body.End())
	w.run(node.Decl.Body, newPathState())
	if !summarize {
		return
	}
	sum := d.sum
	if ledgerCut[node.Fn.Name()] {
		cut := &funcSummary{}
		for _, ex := range sum.exits {
			for _, t := range ex.tuples {
				cut.addExit(t, 0)
			}
		}
		sum = cut
	}
	c.sums[node.ID] = sum
}
