// Package lint is flepvet's analyzer suite: five checkers that
// mechanically enforce the contracts the FLEP reproduction's tests can
// only spot-check — the determinism contract (a recorded run replays
// bit-for-bit), the single-threaded event-loop discipline, the
// PR 2/PR 3 lock-ordering fix classes, and the obs metrics hygiene
// rules. The suite runs standalone (`flepvet ./...`), under `go vet
// -vettool`, and inside `go test` (see selftest_test.go), all through
// the same driver so the three entry points cannot drift.
package lint

import (
	"fmt"
	"go/token"
	"sort"

	"flep/internal/lint/analysis"
	"flep/internal/lint/loader"
)

// Analyzers returns the full suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		DeterminismAnalyzer,
		MapOrderAnalyzer,
		LoopPurityAnalyzer,
		LockDisciplineAnalyzer,
		MetricHygieneAnalyzer,
		PoolOwnershipAnalyzer,
		LockOrderAnalyzer,
		LedgerAnalyzer,
	}
}

// AnalyzerNames returns the suite's names (flag help, CLI validation).
func AnalyzerNames() []string {
	var out []string
	for _, a := range Analyzers() {
		out = append(out, a.Name)
	}
	return out
}

// knownCategories is the union of every analyzer's categories; allow
// annotations naming anything else are themselves diagnosed.
func knownCategories() map[string]bool {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		for _, c := range a.Categories {
			known[c] = true
		}
	}
	return known
}

// Finding is one resolved (position-rendered) diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Category string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s/%s] %s", f.Pos, f.Analyzer, f.Category, f.Message)
}

// Run loads the packages matched by patterns under dir and applies the
// analyzers. Returned findings are allow-filtered and position-sorted.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	fset := token.NewFileSet()
	pkgs, err := loader.Load(fset, dir, patterns, analysis.NewInfo)
	if err != nil {
		return nil, err
	}
	return RunPackages(fset, pkgs, analyzers)
}

// RunPackages applies the analyzers to already-loaded packages: the
// shared core of the CLI, the vettool shim, and the fixture harness.
func RunPackages(fset *token.FileSet, pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	known := knownCategories()
	var findings []Finding
	results := map[*analysis.Analyzer][]analysis.Result{}
	allAllows := &allowIndex{}

	for _, pkg := range pkgs {
		allows, allowDiags := collectAllows(fset, pkg.Files, known)
		allAllows.entries = append(allAllows.entries, allows.entries...)
		for _, d := range allowDiags {
			findings = append(findings, Finding{
				Pos: fset.Position(d.Pos), Analyzer: "flepvet",
				Category: d.Category, Message: d.Message,
			})
		}
		for _, a := range analyzers {
			var diags []analysis.Diagnostic
			pass := analysis.NewPass(a, fset, pkg.Files, pkg.Types, pkg.Info,
				func(d analysis.Diagnostic) { diags = append(diags, d) })
			val, err := a.Run(pass)
			if err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
			if val != nil {
				results[a] = append(results[a], analysis.Result{PkgPath: pkg.PkgPath, Value: val})
			}
			for _, d := range diags {
				pos := fset.Position(d.Pos)
				if allows.suppressed(pos, d.Category) {
					continue
				}
				findings = append(findings, Finding{
					Pos: pos, Analyzer: a.Name, Category: d.Category, Message: d.Message,
				})
			}
		}
	}

	// Cross-package rules (metric families registered in several places).
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		a.Finish(results[a], func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			if allAllows.suppressed(pos, d.Category) {
				return
			}
			findings = append(findings, Finding{
				Pos: pos, Analyzer: a.Name,
				Category: d.Category, Message: d.Message,
			})
		})
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return findings, nil
}

// Select resolves a comma-separated analyzer name list ("" = all).
func Select(names []string) ([]*analysis.Analyzer, error) {
	if len(names) == 0 {
		return Analyzers(), nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a := byName[n]
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (have %v)", n, AnalyzerNames())
		}
		out = append(out, a)
	}
	return out, nil
}
