package flepruntime

import (
	"testing"
	"time"

	"flep/internal/gpu"
	"flep/internal/metrics"
	"flep/internal/sim"
	"flep/internal/trace"
)

func prof(name string) *gpu.KernelProfile {
	return &gpu.KernelProfile{
		Name: name, ThreadsPerCTA: 256, CTAsPerSM: 8,
		MemoryIntensity: 0.5, ContentionFloor: 0.8,
	}
}

func us(v float64) time.Duration { return time.Duration(v * float64(time.Microsecond)) }

// inv builds an invocation whose prediction Te equals its true duration
// (tasks*cost/120) — a perfect model, so tests isolate scheduling logic.
func inv(name string, prio, tasks int, cost time.Duration, L int) *Invocation {
	te := time.Duration(float64(tasks) / 120 * float64(cost))
	return &Invocation{
		Kernel: name, Priority: prio, Profile: prof(name),
		Tasks: tasks, TaskCost: cost, L: L, Te: te,
	}
}

func newRT(policy Policy, spatial bool) (*sim.Engine, *Runtime) {
	eng := sim.New()
	dev := gpu.New(eng, gpu.DefaultParams())
	return eng, New(dev, Config{Policy: policy, EnableSpatial: spatial})
}

func TestSingleInvocationCompletes(t *testing.T) {
	eng, rt := newRT(NewHPF(), false)
	v := inv("k", 1, 1200, us(100), 2)
	var finished *Invocation
	v.OnFinish = func(x *Invocation) { finished = x }
	rt.Submit(v)
	eng.Run()
	if finished == nil {
		t.Fatal("invocation never finished")
	}
	if v.State() != InvFinished {
		t.Fatalf("state = %v", v.State())
	}
	// Turnaround ≈ solo: 10 waves of 100us + overheads.
	if v.Turnaround() < us(1000) || v.Turnaround() > us(1100) {
		t.Fatalf("turnaround = %v", v.Turnaround())
	}
	if v.Tw != 0 {
		t.Fatalf("Tw = %v for an uncontended run", v.Tw)
	}
	if v.Tr != 0 {
		t.Fatalf("Tr = %v after completion", v.Tr)
	}
}

func TestFIFOWithEqualRemaining(t *testing.T) {
	eng, rt := newRT(NewHPF(), false)
	a := inv("a", 1, 1200, us(100), 2)
	b := inv("b", 1, 1200, us(100), 2)
	var order []string
	a.OnFinish = func(*Invocation) { order = append(order, "a") }
	b.OnFinish = func(*Invocation) { order = append(order, "b") }
	rt.Submit(a)
	eng.Schedule(us(1), func() { rt.Submit(b) })
	eng.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
	if b.Tw == 0 {
		t.Fatal("b should have waited")
	}
}

func TestHighPriorityPreemptsImmediately(t *testing.T) {
	eng, rt := newRT(NewHPF(), false)
	low := inv("low", 1, 120000, us(100), 2) // ~100ms
	high := inv("high", 2, 1200, us(100), 2) // ~1ms
	var highDone, lowDone time.Duration
	low.OnFinish = func(*Invocation) { lowDone = eng.Now() }
	high.OnFinish = func(*Invocation) { highDone = eng.Now() }
	rt.Submit(low)
	eng.Schedule(us(500), func() { rt.Submit(high) })
	eng.Run()
	if highDone == 0 || lowDone == 0 {
		t.Fatal("not all kernels finished")
	}
	if highDone > us(2500) {
		t.Fatalf("high-priority turnaround too slow: done at %v", highDone)
	}
	if lowDone < highDone {
		t.Fatal("low finished before high despite preemption")
	}
	// Low's total time ≈ solo + high's run + overheads: well under 2x solo.
	if lowDone > 2*us(100000) {
		t.Fatalf("low done at %v, excessive", lowDone)
	}
}

func TestLowPriorityWaits(t *testing.T) {
	eng, rt := newRT(NewHPF(), false)
	high := inv("high", 2, 12000, us(100), 2)
	low := inv("low", 1, 1200, us(100), 2)
	var order []string
	high.OnFinish = func(*Invocation) { order = append(order, "high") }
	low.OnFinish = func(*Invocation) { order = append(order, "low") }
	rt.Submit(high)
	eng.Schedule(us(100), func() { rt.Submit(low) })
	eng.Run()
	if len(order) != 2 || order[0] != "high" {
		t.Fatalf("order = %v", order)
	}
}

func TestSRTPreemptsLongRunning(t *testing.T) {
	eng, rt := newRT(NewHPF(), false)
	long := inv("long", 1, 120000, us(100), 2) // 100ms
	short := inv("short", 1, 1200, us(100), 2) // 1ms
	var shortDone time.Duration
	short.OnFinish = func(*Invocation) { shortDone = eng.Now() }
	rt.Submit(long)
	eng.Schedule(us(1000), func() { rt.Submit(short) })
	eng.Run()
	if shortDone == 0 {
		t.Fatal("short never finished")
	}
	// Without preemption the short kernel would wait ~100ms.
	if shortDone > us(3500) {
		t.Fatalf("short done at %v: SRT did not preempt", shortDone)
	}
}

func TestOverheadAwareSkipsUnprofitablePreemption(t *testing.T) {
	// The running kernel is nearly done: preempting would cost more than
	// waiting. The overhead-aware rule must not preempt.
	fixed := func(string) time.Duration { return us(500) }
	eng := sim.New()
	dev := gpu.New(eng, gpu.DefaultParams())
	rt := New(dev, Config{Policy: NewHPF(), OverheadEstimate: fixed})
	long := inv("long", 1, 2400, us(100), 2) // 2ms total
	short := inv("short", 1, 1800, us(100), 2)
	preempts := 0
	log := &trace.Log{}
	rt.cfg.Log = log
	rt.Submit(long)
	// At 1.7ms, long has ~0.3ms left; short needs 1.5ms. 0.3 < 1.5+0.5.
	eng.Schedule(us(1700), func() { rt.Submit(short) })
	eng.Run()
	for _, e := range log.Filter("preempt") {
		_ = e
		preempts++
	}
	if preempts != 0 {
		t.Fatalf("preempted %d times; overhead-aware rule should skip", preempts)
	}
}

func TestNaiveSRTPreemptsAnyway(t *testing.T) {
	h := NewHPF()
	h.OverheadAware = false
	fixed := func(string) time.Duration { return us(500) }
	eng := sim.New()
	dev := gpu.New(eng, gpu.DefaultParams())
	log := &trace.Log{}
	rt := New(dev, Config{Policy: h, OverheadEstimate: fixed, Log: log})
	long := inv("long", 1, 2400, us(100), 2)
	short := inv("short", 1, 240, us(100), 2) // 0.2ms
	rt.Submit(long)
	eng.Schedule(us(1700), func() { rt.Submit(short) })
	eng.Run()
	if len(log.Filter("preempt")) == 0 {
		t.Fatal("naive SRT should have preempted")
	}
}

func TestSpatialPreemptionKeepsVictimRunning(t *testing.T) {
	eng, rt := newRT(NewHPF(), true)
	low := inv("low", 1, 12000, us(100), 2)
	tiny := inv("tiny", 2, 40, us(80), 1) // 40 CTAs → 5 SMs
	log := &trace.Log{}
	rt.cfg.Log = log
	var tinyDone, lowDone time.Duration
	tiny.OnFinish = func(*Invocation) { tinyDone = eng.Now() }
	low.OnFinish = func(*Invocation) { lowDone = eng.Now() }
	rt.Submit(low)
	eng.Schedule(us(1000), func() { rt.Submit(tiny) })
	eng.Run()
	if tinyDone == 0 || lowDone == 0 {
		t.Fatal("kernels did not finish")
	}
	// The victim must never have fully stopped: no temporal drain events.
	for _, e := range log.Filter("drained") {
		if e.Kernel == "low" && e.Detail[0:8] == "temporal" {
			t.Fatalf("victim temporally drained: %v", e.Detail)
		}
	}
	// And the victim should reclaim the SMs afterwards.
	if len(log.Filter("expand")) == 0 {
		t.Fatal("victim never expanded back")
	}
	// Victim's penalty should be mild: solo is 10ms; spatial co-run with a
	// ~100us guest must stay well under temporal-preemption cost.
	if lowDone > us(11500) {
		t.Fatalf("low done at %v", lowDone)
	}
}

func TestSpatialDisabledFallsBackToTemporal(t *testing.T) {
	eng, rt := newRT(NewHPF(), false)
	low := inv("low", 1, 12000, us(100), 2)
	tiny := inv("tiny", 2, 40, us(80), 1)
	log := &trace.Log{}
	rt.cfg.Log = log
	rt.Submit(low)
	eng.Schedule(us(1000), func() { rt.Submit(tiny) })
	eng.Run()
	sawTemporal := false
	for _, e := range log.Filter("drained") {
		if e.Kernel == "low" && len(e.Detail) >= 8 && e.Detail[:8] == "temporal" {
			sawTemporal = true
		}
	}
	if !sawTemporal {
		t.Fatal("expected temporal drain with spatial disabled")
	}
}

func TestTripletAccounting(t *testing.T) {
	eng, rt := newRT(NewHPF(), false)
	low := inv("low", 1, 12000, us(100), 2) // 10ms
	high := inv("high", 2, 1200, us(100), 2)
	rt.Submit(low)
	eng.Schedule(us(2000), func() { rt.Submit(high) })
	eng.Run()
	// Low was preempted: its Tw must cover roughly high's execution.
	if low.Tw < us(800) || low.Tw > us(2000) {
		t.Fatalf("low.Tw = %v, want ≈ high's 1ms run", low.Tw)
	}
	if high.Tw > us(300) {
		t.Fatalf("high.Tw = %v, want ≈ drain latency only", high.Tw)
	}
	// Te never changes.
	if low.Te != time.Duration(float64(12000)/120*float64(us(100))) {
		t.Fatalf("low.Te changed: %v", low.Te)
	}
}

func TestFFSWeightedSharing(t *testing.T) {
	eng := sim.New()
	dev := gpu.New(eng, gpu.DefaultParams())
	ffs := NewFFS(0.10)
	log := &trace.Log{}
	rt := New(dev, Config{Policy: ffs, Log: log})

	// Closed-loop clients: resubmit on completion, 2:1 weights.
	acc := metrics.NewShareAccumulator(us(5000))
	dev.Observer = func(ev gpu.Event) {
		switch ev.Kind {
		case gpu.EvResident:
			acc.Observe(ev.Time, ev.Kernel)
		case gpu.EvComplete, gpu.EvDrained:
			acc.Observe(ev.Time, "")
		}
	}
	mkClient := func(name string, prio int) func() {
		var submit func()
		submit = func() {
			v := inv(name, prio, 2400, us(100), 2) // 2ms per invocation
			v.OnFinish = func(*Invocation) { submit() }
			rt.Submit(v)
		}
		return submit
	}
	mkClient("hi", 2)()
	mkClient("lo", 1)()
	eng.RunUntil(200 * time.Millisecond)

	samples := acc.Samples(eng.Now())
	hi := metrics.MeanShare(samples, "hi")
	lo := metrics.MeanShare(samples, "lo")
	if hi <= 0 || lo <= 0 {
		t.Fatalf("shares hi=%f lo=%f", hi, lo)
	}
	ratio := hi / lo
	if ratio < 1.6 || ratio > 2.5 {
		t.Fatalf("share ratio = %.2f, want ≈ 2.0 (hi=%.3f lo=%.3f)", ratio, hi, lo)
	}
}

func TestFFSRespectsOverheadBudget(t *testing.T) {
	// With a tight budget the epoch must grow; count preemptions in a
	// fixed horizon and check the implied overhead stays near budget.
	run := func(budget float64) int {
		eng := sim.New()
		dev := gpu.New(eng, gpu.DefaultParams())
		log := &trace.Log{}
		rt := New(dev, Config{Policy: NewFFS(budget), Log: log})
		mk := func(name string) func() {
			var submit func()
			submit = func() {
				v := inv(name, 1, 24000, us(100), 2) // 20ms
				v.OnFinish = func(*Invocation) { submit() }
				rt.Submit(v)
			}
			return submit
		}
		mk("a")()
		mk("b")()
		eng.RunUntil(300 * time.Millisecond)
		return len(log.Filter("epoch"))
	}
	tight := run(0.02)
	loose := run(0.20)
	if tight >= loose {
		t.Fatalf("tighter budget must preempt less: %d vs %d", tight, loose)
	}
}

func TestSubmitAfterIdlePeriod(t *testing.T) {
	eng, rt := newRT(NewHPF(), false)
	a := inv("a", 1, 1200, us(100), 2)
	rt.Submit(a)
	eng.Run()
	b := inv("b", 1, 1200, us(100), 2)
	var done bool
	b.OnFinish = func(*Invocation) { done = true }
	rt.Submit(b)
	eng.Run()
	if !done {
		t.Fatal("second submission after idle never ran")
	}
}

func TestManyKernelsSRTOrder(t *testing.T) {
	// Five equal-priority kernels with distinct lengths submitted while a
	// long one runs: they must finish in shortest-first order.
	eng, rt := newRT(NewHPF(), false)
	first := inv("first", 1, 60000, us(100), 2) // 50ms
	rt.Submit(first)
	lengths := map[string]int{"k1": 1200, "k2": 6000, "k3": 2400, "k4": 12000}
	var order []string
	eng.Schedule(us(500), func() {
		for name, tasks := range lengths {
			v := inv(name, 1, tasks, us(100), 2)
			v.OnFinish = func(x *Invocation) { order = append(order, x.Kernel) }
			rt.Submit(v)
		}
	})
	eng.Run()
	want := []string{"k1", "k3", "k2", "k4"}
	if len(order) != 4 {
		t.Fatalf("finished %d kernels", len(order))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("finish order = %v, want %v", order, want)
		}
	}
}
