package server

import (
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flep/internal/obs"
)

// scrape fetches and parses GET /metrics.
func scrape(t *testing.T, url string) obs.Snapshot {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	snap, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("parse /metrics: %v", err)
	}
	return snap
}

func TestMetricsEndpointServesAllFamilies(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, _ := launch(t, ts.URL, LaunchRequest{Benchmark: "VA"}); code != http.StatusOK {
		t.Fatal("launch failed")
	}
	snap := scrape(t, ts.URL)

	// One representative per layer: server, runtime, device, policy.
	for _, key := range []string{
		`flep_server_launches_total{outcome="enqueued"}`,
		"flep_server_queue_depth",
		"flep_runtime_submits_total",
		`flep_runtime_dispatches_total{kind="primary"}`,
		"flep_device_launches_total",
		"flep_device_sm_busy",
		`flep_ffs_epochs_total{kind="rotation"}`, // registered even under HPF
		"flep_server_request_latency_seconds_count",
	} {
		if _, ok := snap.Get(key); !ok {
			t.Errorf("missing metric %s", key)
		}
	}
	if v, _ := snap.Get("flep_runtime_submits_total"); v != 1 {
		t.Fatalf("flep_runtime_submits_total = %v, want 1", v)
	}
	if v, _ := snap.Get("flep_device_completions_total"); v != 1 {
		t.Fatalf("flep_device_completions_total = %v, want 1", v)
	}
}

// TestMetricsEndToEndReconciliation is the acceptance-criteria e2e test:
// after a concurrent run with successes, invalid requests, and a runtime
// rejection, the daemon-side /metrics counters must reconcile exactly
// with client-side exactly-once accounting — no lost or double-counted
// invocation anywhere in the server → runtime → device pipeline.
func TestMetricsEndToEndReconciliation(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: time.Minute})

	const workers = 4
	const perWorker = 5
	var oks atomic.Int64
	var wg sync.WaitGroup
	benchNames := []string{"VA", "MM"}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				code, res := launch(t, ts.URL, LaunchRequest{
					Client:    "rec",
					Benchmark: benchNames[(w+i)%2],
					Priority:  1 + (w+i)%2,
				})
				if code == http.StatusOK && res.Err == "" {
					oks.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := oks.Load(); got != workers*perWorker {
		t.Fatalf("ok launches = %d, want %d", got, workers*perWorker)
	}

	// Two invalid requests (never enqueued) and one runtime rejection
	// (enqueued, then rejected by Submit).
	for _, req := range []LaunchRequest{{Benchmark: "NOPE"}, {Benchmark: "VA", Class: "gigantic"}} {
		if code, _ := launch(t, ts.URL, req); code != http.StatusBadRequest {
			t.Fatalf("invalid request got %d", code)
		}
	}
	if code, _ := launch(t, ts.URL, LaunchRequest{Benchmark: "VA", TasksOverride: 1 << 34}); code != http.StatusUnprocessableEntity {
		t.Fatalf("oversized request got %d", code)
	}

	waitFor(t, "daemon at rest", func() bool {
		st := getStatus(t, ts.URL)
		return st.Counters.Completed+st.Counters.SubmitErrors == st.Counters.Enqueued
	})
	snap := scrape(t, ts.URL)
	get := func(key string) float64 {
		v, ok := snap.Get(key)
		if !ok {
			t.Fatalf("metric %s missing from scrape", key)
		}
		return v
	}

	const completed = workers * perWorker
	enq := get(`flep_server_launches_total{outcome="enqueued"}`)
	comp := get(`flep_server_launches_total{outcome="completed"}`)
	serr := get(`flep_server_launches_total{outcome="submit_error"}`)
	if enq != completed+1 || comp != completed || serr != 1 {
		t.Fatalf("server counters: enqueued=%v completed=%v submit_errors=%v", enq, comp, serr)
	}
	if comp+serr != enq {
		t.Fatalf("exactly-once violated in /metrics: %v + %v != %v", comp, serr, enq)
	}
	if inv := get(`flep_server_launches_total{outcome="rejected_invalid"}`); inv != 2 {
		t.Fatalf("rejected_invalid = %v, want 2", inv)
	}

	// The JSON view and the Prometheus view must agree exactly.
	st := getStatus(t, ts.URL)
	if int64(enq) != st.Counters.Enqueued || int64(comp) != st.Counters.Completed ||
		int64(serr) != st.Counters.SubmitErrors {
		t.Fatalf("/metrics and /v1/status disagree: metrics enq=%v comp=%v serr=%v, status %+v",
			enq, comp, serr, st.Counters)
	}

	// Down the pipeline: every enqueued-and-admitted launch reached the
	// runtime exactly once, and every runtime completion came off the
	// device exactly once.
	if subs := get("flep_runtime_submits_total"); subs != comp {
		t.Fatalf("runtime submits = %v, want %v (enqueued minus rejects)", subs, comp)
	}
	if devComp := get("flep_device_completions_total"); devComp != comp {
		t.Fatalf("device completions = %v, want %v", devComp, comp)
	}
	dispatches := snap.SumFamily("flep_runtime_dispatches_total")
	if devLaunch := get("flep_device_launches_total"); devLaunch != dispatches {
		t.Fatalf("device launches %v != runtime dispatches %v", devLaunch, dispatches)
	}
	// Re-dispatches after temporal preemption make dispatches ≥ submits.
	temporal := get(`flep_runtime_preemptions_total{mode="temporal"}`)
	if primary := get(`flep_runtime_dispatches_total{kind="primary"}`); primary != comp+temporal {
		t.Fatalf("primary dispatches = %v, want completions %v + temporal preemptions %v",
			primary, comp, temporal)
	}

	// Latency histograms saw every answered request: OKs plus the 422.
	if n := get("flep_server_request_latency_seconds_count"); n != completed+1 {
		t.Fatalf("request latency count = %v, want %v", n, completed+1)
	}
	if n := get("flep_server_admission_wait_seconds_count"); n != enq {
		t.Fatalf("admission wait count = %v, want %v", n, enq)
	}

	// At rest the occupancy gauges read idle.
	if busy := get("flep_device_sm_busy"); busy != 0 {
		t.Fatalf("sm busy = %v at rest", busy)
	}
	if q := get("flep_runtime_queue_length"); q != 0 {
		t.Fatalf("runtime queue length = %v at rest", q)
	}
}

// TestFFSSoakUnderDaemon soaks an FFS daemon through ≥200 epoch
// rotations driven over HTTP by two closed-loop clients of unequal
// weight, then verifies the long-lived health invariants from the
// scraped metrics: rotations happened at scale, departed tenants were
// evicted, superseded timers were reclaimed, and the request accounting
// still reconciles exactly.
func TestFFSSoakUnderDaemon(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Policy:         "ffs",
		Benchmarks:     []string{"VA", "MM"},
		RequestTimeout: 2 * time.Minute,
	})
	ts.Config.SetKeepAlivesEnabled(false)

	// Closed-loop clients: VA large runs ~30ms of virtual time against
	// sub-millisecond epochs, so each co-run round yields dozens of
	// rotations.
	var stop atomic.Bool
	var wg sync.WaitGroup
	worker := func(bench string, prio int) {
		defer wg.Done()
		for !stop.Load() {
			code, res := launch(t, ts.URL, LaunchRequest{
				Client: bench, Benchmark: bench, Class: "large", Priority: prio,
			})
			if code != http.StatusOK || res.Err != "" {
				t.Errorf("%s launch failed: code=%d err=%q", bench, code, res.Err)
				return
			}
		}
	}
	wg.Add(2)
	go worker("VA", 1)
	go worker("MM", 3)

	deadline := time.Now().Add(60 * time.Second)
	var rotations float64
	for time.Now().Before(deadline) {
		rotations, _ = scrape(t, ts.URL).Get(`flep_ffs_epochs_total{kind="rotation"}`)
		if rotations >= 200 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}
	if rotations < 200 {
		t.Fatalf("epoch rotations = %v after soak, want ≥ 200", rotations)
	}

	waitFor(t, "daemon at rest", func() bool {
		st := getStatus(t, ts.URL)
		return st.Counters.Completed+st.Counters.SubmitErrors == st.Counters.Enqueued
	})
	snap := scrape(t, ts.URL)

	// Both tenants departed: the overhead table must be empty again
	// (evictions ≥ tenant count; the gauge-equivalent is the eviction
	// counter matching the rotation owners that left).
	if ev, _ := snap.Get("flep_ffs_evictions_total"); ev < 2 {
		t.Fatalf("ffs evictions = %v, want ≥ 2 (both tenants departed)", ev)
	}
	// Epoch lengths stayed bounded: the mean epoch cannot exceed the
	// 60ms two-tenant co-run horizon; unbounded seen-map growth would
	// drag the mean upward with every departed-tenant re-arrival.
	count, _ := snap.Get("flep_ffs_epoch_length_seconds_count")
	sum, _ := snap.Get("flep_ffs_epoch_length_seconds_sum")
	if count == 0 {
		t.Fatal("no epoch lengths observed")
	}
	if mean := sum / count; mean > 0.060 {
		t.Fatalf("mean epoch length %.4fs: epoch sizing unbounded", mean)
	}
	// Exactly-once from metrics alone.
	enq, _ := snap.Get(`flep_server_launches_total{outcome="enqueued"}`)
	comp, _ := snap.Get(`flep_server_launches_total{outcome="completed"}`)
	serr, _ := snap.Get(`flep_server_launches_total{outcome="submit_error"}`)
	if comp+serr != enq || enq == 0 {
		t.Fatalf("exactly-once violated after soak: enqueued=%v completed=%v submit_errors=%v",
			enq, comp, serr)
	}
	if devComp, _ := snap.Get("flep_device_completions_total"); devComp != comp {
		t.Fatalf("device completions %v != server completions %v", devComp, comp)
	}
}
