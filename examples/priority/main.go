// Priority inversion demo: a latency-critical application (think
// user-facing inference) shares the GPU with a batch application. Without
// preemption the batch kernel blocks the interactive one; FLEP's HPF
// policy preempts on arrival. The demo sweeps all four long-running
// benchmarks as the batch workload.
package main

import (
	"fmt"
	"log"
	"time"

	"flep"
)

func main() {
	sys := flep.NewSystem()
	if err := sys.OfflineAll(); err != nil {
		log.Fatal(err)
	}

	interactive, _ := flep.BenchmarkByName("SPMV") // short queries
	batch := []string{"CFD", "NN", "PF", "PL"}     // long-running producers

	fmt.Println("interactive kernel: SPMV (small input, high priority)")
	fmt.Printf("%-22s %14s %14s %10s\n", "batch co-runner", "blocked(us)", "preempted(us)", "speedup")
	for _, name := range batch {
		b, err := flep.BenchmarkByName(name)
		if err != nil {
			log.Fatal(err)
		}
		sc := flep.PriorityPair(interactive, b, 0)
		mps, err := sys.RunMPS(sc)
		if err != nil {
			log.Fatal(err)
		}
		hpf, err := sys.RunFLEP(sc, flep.Options{Policy: "hpf"})
		if err != nil {
			log.Fatal(err)
		}
		blocked := mps.ResultFor("SPMV").Turnaround()
		preempted := hpf.ResultFor("SPMV").Turnaround()
		fmt.Printf("%-22s %14.1f %14.1f %9.1fx\n",
			name+" (large)",
			float64(blocked)/float64(time.Microsecond),
			float64(preempted)/float64(time.Microsecond),
			blocked.Seconds()/preempted.Seconds())
	}

	fmt.Println("\nThe batch kernel pays only the preemption drain + one relaunch;")
	fmt.Println("run `flepbench -only fig8` for all 28 pairs of the paper's Figure 8.")
}
