// Live-vs-replay agreement: a real flepd daemon records its admission
// stream while serving concurrent tenants; the replayer then re-drives
// the trace through a fresh system and must land on exactly the same
// per-tenant completion and preemption counts. Lives in the external
// test package because it imports the server (which imports replay).
package replay_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"flep/internal/replay"
	"flep/internal/server"
)

type tenantStats struct {
	completed   int
	preempted   int // launches that were preempted at least once
	preemptions int
}

func TestRecordReplayEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.trace")
	cfg := server.Config{Policy: "hpf", Benchmarks: []string{"CFD", "VA"}}
	rec, err := replay.NewRecorder(path, cfg.RecorderHeader(1), replay.RecorderOptions{})
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	cfg.Recorder = rec
	s, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())

	// Two closed-loop tenants in contention: the latency tenant's small
	// VA launches keep arriving while the batch tenant's large CFD
	// launches occupy the device, so HPF preempts.
	type spec struct {
		client, bench, class string
		priority, n          int
	}
	specs := []spec{
		{"tenant-hi", "VA", "small", 2, 12},
		{"tenant-lo", "CFD", "large", 1, 4},
	}
	live := map[string]*tenantStats{}
	for _, sp := range specs {
		live[sp.client] = &tenantStats{}
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, sp := range specs {
		wg.Add(1)
		go func(sp spec) {
			defer wg.Done()
			for i := 0; i < sp.n; i++ {
				body, _ := json.Marshal(map[string]any{
					"client": sp.client, "benchmark": sp.bench,
					"class": sp.class, "priority": sp.priority,
				})
				resp, err := http.Post(ts.URL+"/v1/launch", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("%s launch %d: %v", sp.client, i, err)
					return
				}
				var res server.LaunchResult
				derr := json.NewDecoder(resp.Body).Decode(&res)
				resp.Body.Close()
				if derr != nil || resp.StatusCode != http.StatusOK || res.Err != "" {
					t.Errorf("%s launch %d: code=%d decode=%v err=%q", sp.client, i, resp.StatusCode, derr, res.Err)
					return
				}
				mu.Lock()
				st := live[sp.client]
				st.completed++
				st.preemptions += res.Preemptions
				if res.Preemptions > 0 {
					st.preempted++
				}
				mu.Unlock()
			}
		}(sp)
	}
	wg.Wait()
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("closing recorder: %v", err)
	}
	if t.Failed() {
		t.FailNow()
	}

	total := 0
	for _, sp := range specs {
		total += sp.n
	}
	tr, err := replay.Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if tr.Header.Source != replay.SourceFlepd {
		t.Fatalf("trace source %q", tr.Header.Source)
	}
	if len(tr.Records) != total {
		t.Fatalf("trace has %d records, live run admitted %d", len(tr.Records), total)
	}
	if !tr.Exact() {
		t.Fatal("flepd trace does not support exact replay")
	}

	rp, err := replay.NewReplayer(tr, replay.ReplayerOptions{})
	if err != nil {
		t.Fatalf("NewReplayer: %v", err)
	}
	sum, err := rp.Run(replay.ReplayConfig{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sum.Mode != replay.ModeExact {
		t.Fatalf("replay mode %q, want exact", sum.Mode)
	}
	if d := sum.Divergence; d.TePrediction+d.StepShortfall+d.Placement+d.SubmitErrors != 0 {
		t.Fatalf("exact replay diverged: %+v", d)
	}
	if sum.Completed != total {
		t.Fatalf("replay completed %d, live %d", sum.Completed, total)
	}

	replayed := map[string]replay.TenantSummary{}
	for _, ten := range sum.Tenants {
		replayed[ten.Client] = ten
	}
	for client, lv := range live {
		rv, ok := replayed[client]
		if !ok {
			t.Fatalf("replay lost tenant %s", client)
		}
		if rv.Completed != lv.completed || rv.Preempted != lv.preempted || rv.Preemptions != lv.preemptions {
			t.Fatalf("tenant %s: live (completed=%d preempted=%d preemptions=%d) vs replay (completed=%d preempted=%d preemptions=%d)",
				client, lv.completed, lv.preempted, lv.preemptions,
				rv.Completed, rv.Preempted, rv.Preemptions)
		}
	}

	// The replayed trace also replays deterministically a second time.
	sum2, err := rp.Run(replay.ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(sum)
	b2, _ := json.Marshal(sum2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("exact replay not deterministic:\n%s\n%s", b1, b2)
	}
}
