package experiments

import (
	"flep/internal/kernels"
	"flep/internal/workload"
)

// Figure1 regenerates the motivation experiment: the slowdown of the
// high-priority kernel A (small input) when it must wait for B (large
// input) under the default MPS co-run, across the 28 pairs.
// Paper: degradation up to 32.6x.
func (s *Suite) Figure1() (*Table, error) {
	t := &Table{
		ID:      "fig1",
		Title:   "Slowdown of high-priority kernels under MPS (no preemption)",
		Columns: []string{"pair", "A-turnaround(us)", "A-alone(us)", "slowdown"},
	}
	maxSlow := 0.0
	sum := 0.0
	pairs := workload.PriorityPairs()
	for _, sc := range pairs {
		res, err := s.Sys.RunMPS(sc)
		if err != nil {
			return nil, err
		}
		high := sc.Items[1]
		r := res.ResultFor(high.Bench.Name)
		alone, err := s.Sys.SoloTime(high.Bench, kernels.Small)
		if err != nil {
			return nil, err
		}
		slow := r.Turnaround().Seconds() / alone.Seconds()
		if slow > maxSlow {
			maxSlow = slow
		}
		sum += slow
		t.AddRow(sc.Name, r.Turnaround(), alone, x(slow))
	}
	t.Note("max slowdown %.1fx (paper: up to 32.6x); mean %.1fx over %d pairs",
		maxSlow, sum/float64(len(pairs)), len(pairs))
	return t, nil
}
