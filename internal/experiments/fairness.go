package experiments

import (
	"time"

	"flep/internal/core"
	"flep/internal/kernels"
	"flep/internal/metrics"
	"flep/internal/workload"
)

// ffsHorizon is long enough for many weighted rounds of every pair.
const ffsHorizon = 400 * time.Millisecond

// ffsOptions are the paper's FFS settings: weight ratio 2:1 and
// max_overhead empirically selected as 10%.
func ffsOptions(shareWindow time.Duration) core.Options {
	return core.Options{
		Policy:      "ffs",
		MaxOverhead: 0.10,
		Weights:     map[int]float64{2: 2, 1: 1},
		ShareWindow: shareWindow,
	}
}

// Figure13 regenerates the FFS GPU-share experiment: closed-loop co-run
// pairs at weight ratio 2:1; the high-priority kernel should hold ~2/3 of
// the GPU and the low-priority kernel ~1/3, with narrow variation.
func (s *Suite) Figure13() (*Table, error) {
	t := &Table{
		ID:      "fig13",
		Title:   "Average GPU share under FFS (weights 2:1)",
		Columns: []string{"pair", "high-share", "low-share", "ratio"},
	}
	var sumHi, sumLo, minR, maxR float64
	minR = 1e18
	pairs := workload.FairPairs(ffsHorizon)
	for _, sc := range pairs {
		res, err := s.Sys.RunFLEP(sc, ffsOptions(10*time.Millisecond))
		if err != nil {
			return nil, err
		}
		hiName := sc.Items[0].Bench.Name
		loName := sc.Items[1].Bench.Name
		hi := metrics.MeanShare(res.Shares, hiName)
		lo := metrics.MeanShare(res.Shares, loName)
		ratio := 0.0
		if lo > 0 {
			ratio = hi / lo
		}
		sumHi += hi
		sumLo += lo
		if ratio < minR {
			minR = ratio
		}
		if ratio > maxR {
			maxR = ratio
		}
		t.AddRow(sc.Name, pct(hi), pct(lo), ratio)
	}
	n := float64(len(pairs))
	t.Note("mean shares: high %s, low %s (paper: ~2/3 vs ~1/3); ratio range %.2f-%.2f",
		pct(sumHi/n), pct(sumLo/n), minR, maxR)
	return t, nil
}

// Figure14 regenerates the FFS throughput-degradation experiment with
// max_overhead = 10%: the useful work completed under FFS relative to the
// available GPU time should degrade close to (and bounded near) the budget.
func (s *Suite) Figure14() (*Table, error) {
	t := &Table{
		ID:      "fig14",
		Title:   "Throughput degradation under FFS (max_overhead 10%)",
		Columns: []string{"pair", "useful-work(us)", "horizon(us)", "degradation"},
	}
	sum := 0.0
	pairs := workload.FairPairs(ffsHorizon)
	for _, sc := range pairs {
		res, err := s.Sys.RunFLEP(sc, ffsOptions(0))
		if err != nil {
			return nil, err
		}
		// Useful work = sum over kernels of completions × solo time.
		var useful time.Duration
		for _, item := range sc.Items {
			solo, err := s.Sys.SoloTime(item.Bench, kernels.Small)
			if err != nil {
				return nil, err
			}
			useful += time.Duration(res.Completions[item.Bench.Name]) * solo
		}
		deg := 1 - useful.Seconds()/ffsHorizon.Seconds()
		sum += deg
		t.AddRow(sc.Name, useful, ffsHorizon, pct(deg))
	}
	t.Note("mean degradation %s with max_overhead=10%% (paper: close to the threshold, small variation)",
		pct(sum/float64(len(pairs))))
	return t, nil
}
