package flepruntime

import (
	"fmt"
	"time"

	"flep/internal/sim"
)

// FFS is the paper's fairness-first policy (§5.2.2): weighted round-robin
// where kernel i runs for an epoch of length T×W_i per round, with T chosen
// as the minimum satisfying the overhead constraint
//
//	ΣO_i / (T ΣW_i) ≤ max_overhead
//
// so that context-switch (preemption) cost never exceeds the user's budget.
// An epoch belongs to a client (kernel), not to one invocation: a client
// whose invocation completes mid-epoch keeps the GPU for its next
// invocation until the epoch expires.
type FFS struct {
	// MaxOverhead is the user's tolerated throughput loss (e.g. 0.10).
	MaxOverhead float64
	// Weights maps priority level to its share weight. Missing levels
	// weigh their priority value (min 1).
	Weights map[int]float64
	// kernelWeights maps a tenant kernel to its requested share weight.
	// Per-kernel weights take precedence over the priority-level table, so
	// two tenants at the same priority keep distinct shares instead of
	// clobbering one slot. Entries are evicted with the kernel's overhead
	// record when the tenant departs (OnCompletion).
	kernelWeights map[string]float64

	rt    *Runtime
	queue []*Invocation
	// seen tracks each distinct kernel's overhead and weight for the
	// epoch computation. Kernels are evicted when their last invocation
	// completes (OnCompletion), so a departed tenant stops inflating
	// baseEpoch's ΣO_i/ΣW_i sums for the daemon's lifetime.
	seen map[string]ffsKernel
	// curKernel owns the current epoch, which ends at epochEnd.
	curKernel string
	epochEnd  time.Duration
	epochSeq  int
	// epochTimer is the armed end-of-epoch event. A new epoch cancels the
	// previous epoch's timer outright: relying on the epochSeq no-op alone
	// leaves every superseded timer queued in the engine until its
	// (possibly far-future) deadline, so a busy daemon accretes dead
	// events and its idleness signal (Engine.Pending) never clears.
	epochTimer *sim.Event
	// lastEpochLen is the most recently computed epoch length (tests use
	// it to assert the length returns to baseline after a tenant departs).
	lastEpochLen time.Duration
}

type ffsKernel struct {
	overhead time.Duration
	weight   float64
}

// NewFFS returns an FFS policy with the given overhead budget.
func NewFFS(maxOverhead float64) *FFS {
	if maxOverhead <= 0 {
		maxOverhead = 0.10
	}
	return &FFS{MaxOverhead: maxOverhead, seen: map[string]ffsKernel{}}
}

// Name implements Policy.
func (f *FFS) Name() string { return "FFS" }

// bind gives the policy its runtime (called by Runtime's constructor).
func (f *FFS) bind(r *Runtime) { f.rt = r }

// SetKernelWeight records a tenant kernel's share weight. It overrides the
// priority-level Weights table for that kernel and is dropped automatically
// when the tenant departs.
func (f *FFS) SetKernelWeight(kernel string, w float64) {
	if w <= 0 {
		return
	}
	if f.kernelWeights == nil {
		f.kernelWeights = map[string]float64{}
	}
	f.kernelWeights[kernel] = w
}

// KernelWeight reports the per-kernel share weight, if one is set.
func (f *FFS) KernelWeight(kernel string) (float64, bool) {
	w, ok := f.kernelWeights[kernel]
	return w, ok
}

// weight returns the share weight of an invocation.
func (f *FFS) weight(v *Invocation) float64 {
	if w, ok := f.kernelWeights[v.Kernel]; ok && w > 0 {
		return w
	}
	if w, ok := f.Weights[v.Priority]; ok && w > 0 {
		return w
	}
	if v.Priority >= 1 {
		return float64(v.Priority)
	}
	return 1
}

// Enqueue appends in FIFO (round-robin) order.
func (f *FFS) Enqueue(v *Invocation) { f.queue = append(f.queue, v) }

// Peek implements Policy: within an open epoch, the epoch owner's next
// invocation goes first; otherwise the round-robin head.
func (f *FFS) Peek() *Invocation {
	if len(f.queue) == 0 {
		return nil
	}
	if f.rt != nil && f.curKernel != "" && f.rt.Device().Now() < f.epochEnd {
		for _, v := range f.queue {
			if v.Kernel == f.curKernel {
				return v
			}
		}
	}
	return f.queue[0]
}

// Dequeue implements Policy.
func (f *FFS) Dequeue(v *Invocation) {
	for i, q := range f.queue {
		if q == v {
			f.queue = append(f.queue[:i], f.queue[i+1:]...)
			return
		}
	}
}

// ShouldPreempt implements Policy: FFS never preempts on arrival; epochs
// expire via the dispatch timer.
func (f *FFS) ShouldPreempt(*Runtime, *Invocation, *Invocation) bool { return false }

// baseEpoch computes the minimum T satisfying the overhead constraint over
// the kernels seen so far.
func (f *FFS) baseEpoch() time.Duration {
	var sumO time.Duration
	sumW := 0.0
	for _, k := range f.seen {
		sumO += k.overhead
		sumW += k.weight
	}
	if sumW == 0 {
		return 0
	}
	return time.Duration(float64(sumO) / (f.MaxOverhead * sumW))
}

// OnDispatch opens a new epoch when the GPU changes hands; dispatches of
// the epoch owner's follow-up invocations inherit the running epoch.
func (f *FFS) OnDispatch(r *Runtime, v *Invocation) {
	f.seen[v.Kernel] = ffsKernel{overhead: r.OverheadFor(v), weight: f.weight(v)}
	now := r.Device().Now()
	if v.Kernel == f.curKernel && now < f.epochEnd {
		return // continuation within the owner's epoch
	}
	epoch := time.Duration(float64(f.baseEpoch()) * f.weight(v))
	if epoch <= 0 {
		return
	}
	if f.epochTimer != nil && !f.epochTimer.Canceled() && f.epochTimer.When() > now {
		// The previous epoch's timer is superseded; cancel it so it never
		// sits dead in the event queue.
		f.epochTimer.Cancel()
		r.met.TimersCanceled.Inc()
	}
	if v.Kernel == f.curKernel && f.curKernel != "" {
		r.met.EpochExtends.Inc() // sole tenant renewed its expired epoch
	} else {
		r.met.EpochsOpened.Inc()
	}
	f.curKernel = v.Kernel
	f.epochEnd = now + epoch
	f.epochSeq++
	seq := f.epochSeq
	f.epochTimer = r.Device().Engine().At(f.epochEnd, func() { f.onEpochEnd(r, seq) })
	r.met.EpochLength.Observe(epoch.Seconds())
	f.lastEpochLen = epoch
}

// onEpochEnd rotates the GPU to the next client when the epoch expires.
func (f *FFS) onEpochEnd(r *Runtime, seq int) {
	if seq != f.epochSeq {
		return // a newer epoch superseded this timer
	}
	owner := f.curKernel
	running := r.Running()
	if running == nil || running.Kernel != owner || running.State() != InvRunning {
		f.curKernel = ""
		r.schedule()
		return
	}
	if f.Peek() == nil {
		// Nobody else waiting: extend the owner's epoch in place.
		// curKernel is left set so OnDispatch can tell an extension from a
		// rotation.
		f.OnDispatch(r, running)
		return
	}
	f.curKernel = ""
	r.log("epoch", owner, fmt.Sprintf("expired at %v", r.Device().Now()))
	r.PreemptRunning()
}

// OnCompletion implements the runtime's completion hook: when a kernel's
// last invocation finishes and nothing of that kernel is queued, running,
// or pending as a spatial guest, the kernel has departed — drop it from
// the overhead table so future epochs are sized for the tenants actually
// present. Without the eviction, baseEpoch keeps summing departed
// kernels' overheads and the epoch length inflates monotonically over the
// daemon's lifetime.
func (f *FFS) OnCompletion(r *Runtime, v *Invocation) {
	if _, ok := f.seen[v.Kernel]; !ok {
		return
	}
	for _, q := range f.queue {
		if q.Kernel == v.Kernel {
			return
		}
	}
	for _, x := range []*Invocation{r.running, r.guest, r.pendingGuest} {
		if x != nil && x.Kernel == v.Kernel {
			return
		}
	}
	delete(f.seen, v.Kernel)
	delete(f.kernelWeights, v.Kernel)
	r.met.Evictions.Inc()
	if f.curKernel == v.Kernel {
		// The departed tenant owned the open epoch; close it so the next
		// dispatch starts a fresh, correctly sized epoch immediately
		// instead of inheriting the dead owner's preference window.
		f.curKernel = ""
		f.epochSeq++ // invalidate the armed timer
		if f.epochTimer != nil && !f.epochTimer.Canceled() &&
			f.epochTimer.When() > r.Device().Now() {
			f.epochTimer.Cancel()
			r.met.TimersCanceled.Inc()
		}
	}
}

// Queued implements Policy.
func (f *FFS) Queued() []*Invocation { return f.queue }

// Pending returns the queued invocation count (for tests).
func (f *FFS) Pending() int { return len(f.queue) }
