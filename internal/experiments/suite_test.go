package experiments

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

var (
	suiteOnce sync.Once
	suiteInst *Suite
	suiteErr  error
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() { suiteInst, suiteErr = NewSuite() })
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suiteInst
}

// parse helpers for assertions on rendered cells.
func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	trimmed := strings.TrimSuffix(strings.TrimSuffix(cell, "%"), "x")
	v, err := strconv.ParseFloat(trimmed, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", cell, err)
	}
	return v
}

func TestTable1RowsAndFactors(t *testing.T) {
	s := testSuite(t)
	tab, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(tab.Rows))
	}
	// Column 9 is the tuned L, column 10 the paper L: within 35%.
	for _, row := range tab.Rows {
		got := cellFloat(t, row[9])
		paper := cellFloat(t, row[10])
		if got < paper*0.65 || got > paper*1.35 {
			t.Errorf("%s: tuned L %v vs paper %v", row[0], got, paper)
		}
	}
}

func TestFigure1MaxSlowdown(t *testing.T) {
	s := testSuite(t)
	tab, err := s.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 28 {
		t.Fatalf("pairs = %d, want 28", len(tab.Rows))
	}
	maxSlow := 0.0
	for _, row := range tab.Rows {
		if v := cellFloat(t, row[3]); v > maxSlow {
			maxSlow = v
		}
		if v := cellFloat(t, row[3]); v < 1 {
			t.Errorf("%s: slowdown %v < 1", row[0], v)
		}
	}
	// Paper: up to 32.6x.
	if maxSlow < 25 || maxSlow > 42 {
		t.Fatalf("max slowdown %.1f, paper reports 32.6x", maxSlow)
	}
}

func TestFigure7ErrorShape(t *testing.T) {
	s := testSuite(t)
	tab, err := s.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	errs := map[string]float64{}
	var sum float64
	for _, row := range tab.Rows {
		errs[row[0]] = cellFloat(t, row[1])
		sum += errs[row[0]]
	}
	avg := sum / float64(len(tab.Rows))
	if avg < 4 || avg > 10 {
		t.Fatalf("average MAPE %.1f%%, paper 6.9%%", avg)
	}
	for _, regular := range []string{"NN", "MM", "VA"} {
		if errs[regular] > 6 {
			t.Errorf("%s error %.1f%% too high for a regular kernel", regular, errs[regular])
		}
	}
	for name, e := range errs {
		if name != "SPMV" && e > errs["SPMV"] {
			t.Errorf("%s error %.1f%% exceeds SPMV's %.1f%%", name, e, errs["SPMV"])
		}
	}
}

func TestFigure8SpeedupRange(t *testing.T) {
	s := testSuite(t)
	tab, err := s.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 28 {
		t.Fatalf("pairs = %d", len(tab.Rows))
	}
	var sum, maxV float64
	minV := 1e18
	for _, row := range tab.Rows {
		v := cellFloat(t, row[3])
		sum += v
		if v > maxV {
			maxV = v
		}
		if v < minV {
			minV = v
		}
	}
	mean := sum / 28
	// Paper: mean 10.1x, max 24.2x, min 4.1x.
	if mean < 7 || mean > 17 {
		t.Fatalf("mean speedup %.1fx vs paper 10.1x", mean)
	}
	if maxV < 20 || maxV > 40 {
		t.Fatalf("max speedup %.1fx vs paper 24.2x", maxV)
	}
	if minV < 2.5 || minV > 7 {
		t.Fatalf("min speedup %.1fx vs paper 4.1x", minV)
	}
}

func TestFigure9DecaysToPlateau(t *testing.T) {
	s := testSuite(t)
	tab, err := s.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	// Per pair (7 delay points each): speedup decays toward a plateau at
	// ≈1. Inside the plateau band small wobbles are fine (preempting a
	// nearly-finished kernel can briefly cost more than waiting).
	for i := 0; i+6 < len(tab.Rows); i += 7 {
		prev := 1e18
		for j := 0; j < 7; j++ {
			v := cellFloat(t, tab.Rows[i+j][2])
			if v > prev*1.05 && v > 1.25 {
				t.Errorf("pair %s: speedup not decaying: %v after %v", tab.Rows[i][0], v, prev)
			}
			prev = v
		}
		last := cellFloat(t, tab.Rows[i+6][2])
		if last < 0.9 || last > 1.4 {
			t.Errorf("pair %s: plateau %.2f, want ≈1", tab.Rows[i][0], last)
		}
	}
}

func TestFigure10And11(t *testing.T) {
	s := testSuite(t)
	tab10, err := s.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, row := range tab10.Rows {
		sum += cellFloat(t, row[3])
	}
	mean := sum / float64(len(tab10.Rows))
	if mean < 5 || mean > 12 {
		t.Fatalf("ANTT improvement %.1fx vs paper 8x", mean)
	}
	tab11, err := s.Figure11()
	if err != nil {
		t.Fatal(err)
	}
	var sumDeg float64
	for _, row := range tab11.Rows {
		sumDeg += cellFloat(t, row[3])
	}
	meanDeg := sumDeg / float64(len(tab11.Rows))
	if meanDeg < 0.5 || meanDeg > 9 {
		t.Fatalf("STP degradation %.1f%% vs paper 5.4%%", meanDeg)
	}
}

func TestFigure12TripletsAndReordering(t *testing.T) {
	s := testSuite(t)
	tab, err := s.Figure12()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 28 {
		t.Fatalf("triplets = %d", len(tab.Rows))
	}
	var sumF, sumR, maxF float64
	for _, row := range tab.Rows {
		f := cellFloat(t, row[3])
		r := cellFloat(t, row[5])
		sumF += f
		sumR += r
		if f > maxF {
			maxF = f
		}
	}
	meanF, meanR := sumF/28, sumR/28
	if meanF < 4 || meanF > 14 {
		t.Fatalf("FLEP triplet improvement %.1fx vs paper 6.6x", meanF)
	}
	if maxF < 15 {
		t.Fatalf("max triplet improvement %.1fx vs paper 20.2x", maxF)
	}
	// Reordering helps only marginally (paper 2.3%): far below FLEP.
	if meanR > meanF/3 {
		t.Fatalf("reordering improvement %.2fx too close to FLEP %.2fx", meanR, meanF)
	}
}

func TestFigure13SharesNearWeights(t *testing.T) {
	s := testSuite(t)
	tab, err := s.Figure13()
	if err != nil {
		t.Fatal(err)
	}
	var sumHi, sumLo float64
	for _, row := range tab.Rows {
		sumHi += cellFloat(t, row[1])
		sumLo += cellFloat(t, row[2])
	}
	n := float64(len(tab.Rows))
	hi, lo := sumHi/n, sumLo/n
	// Paper: ~2/3 and ~1/3 of GPU time.
	if hi < 52 || hi > 72 {
		t.Fatalf("high share %.1f%%, want ≈66%%", hi)
	}
	if lo < 24 || lo > 42 {
		t.Fatalf("low share %.1f%%, want ≈33%%", lo)
	}
	if hi/lo < 1.4 {
		t.Fatalf("share ratio %.2f too flat for 2:1 weights", hi/lo)
	}
}

func TestFigure14NearBudget(t *testing.T) {
	s := testSuite(t)
	tab, err := s.Figure14()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, row := range tab.Rows {
		sum += cellFloat(t, row[3])
	}
	mean := sum / float64(len(tab.Rows))
	// Paper keeps degradation close to the 10% threshold.
	if mean < 4 || mean > 14 {
		t.Fatalf("mean degradation %.1f%% with 10%% budget", mean)
	}
}

func TestFigure15SpatialReduction(t *testing.T) {
	s := testSuite(t)
	tab, err := s.Figure15()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var sum, maxV float64
	for _, row := range tab.Rows {
		v := cellFloat(t, row[3])
		sum += v
		if v > maxV {
			maxV = v
		}
		if v <= 0 {
			t.Errorf("%s: spatial preemption did not reduce overhead (%.1f%%)", row[0], v)
		}
	}
	mean := sum / 8
	// Paper: 31% average, up to 41%.
	if mean < 18 || mean > 45 {
		t.Fatalf("mean reduction %.1f%% vs paper 31%%", mean)
	}
	if maxV < 25 {
		t.Fatalf("max reduction %.1f%% vs paper 41%%", maxV)
	}
}

func TestFigure16BoundedSpeedup(t *testing.T) {
	s := testSuite(t)
	tab, err := s.Figure16()
	if err != nil {
		t.Fatal(err)
	}
	var maxSp float64
	for _, row := range tab.Rows {
		v := cellFloat(t, row[3])
		if v > maxSp {
			maxSp = v
		}
		if v < 0.95 {
			t.Errorf("%s @%s SMs: yielding more SMs slowed the guest (%.2fx)", row[0], row[1], v)
		}
	}
	// Paper: speedup exists but is bounded (≈2.22x max).
	if maxSp < 1.2 || maxSp > 2.6 {
		t.Fatalf("max speedup %.2fx vs paper ≈2.22x", maxSp)
	}
}

func TestFigure17OverheadComparison(t *testing.T) {
	s := testSuite(t)
	tab, err := s.Figure17()
	if err != nil {
		t.Fatal(err)
	}
	var sumF, sumS float64
	for _, row := range tab.Rows {
		f := cellFloat(t, row[2])
		sl := cellFloat(t, row[4])
		sumF += f
		sumS += sl
		if f > 4.5 {
			t.Errorf("%s: FLEP overhead %.1f%% above the 4%% tuning budget", row[0], f)
		}
	}
	meanF, meanS := sumF/8, sumS/8
	// Paper: FLEP ~2.5%, slicing ~8%.
	if meanF < 1 || meanF > 4 {
		t.Fatalf("FLEP mean overhead %.1f%% vs paper 2.5%%", meanF)
	}
	if meanS < 5 || meanS > 13 {
		t.Fatalf("slicing mean overhead %.1f%% vs paper 8%%", meanS)
	}
	if meanS < meanF*2 {
		t.Fatalf("slicing (%.1f%%) not substantially worse than FLEP (%.1f%%)", meanS, meanF)
	}
}

func TestAblations(t *testing.T) {
	s := testSuite(t)
	am, err := s.AblationAmortize()
	if err != nil {
		t.Fatal(err)
	}
	// Overhead decreases with L; drain latency increases.
	prevOv, prevDrain := 1e18, -1.0
	for _, row := range am.Rows {
		ov := cellFloat(t, row[1])
		dr := cellFloat(t, row[2])
		if ov > prevOv+0.05 {
			t.Errorf("overhead not decreasing with L: %v", row)
		}
		if dr < prevDrain {
			t.Errorf("drain latency not increasing with L: %v", row)
		}
		prevOv, prevDrain = ov, dr
	}

	lp, err := s.AblationLeaderPoll()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range lp.Rows {
		if cellFloat(t, row[2]) <= cellFloat(t, row[1]) {
			t.Errorf("%s: all-warps poll not worse than leader poll", row[0])
		}
	}

	oa, err := s.AblationOverheadAware()
	if err != nil {
		t.Fatal(err)
	}
	sawPenalty := false
	for _, row := range oa.Rows {
		if cellFloat(t, row[4]) > 0 {
			sawPenalty = true
		}
	}
	if !sawPenalty {
		t.Error("naive SRT never paid a penalty near break-even")
	}

	if _, err := s.AblationSpatialSize(); err != nil {
		t.Fatal(err)
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{ID: "x", Title: "T", Columns: []string{"a", "bb"}}
	tab.AddRow("hello", 3.14159)
	tab.Note("n=%d", 3)
	out := tab.Format()
	for _, want := range []string{"== x: T ==", "hello", "3.14", "note: n=3", "a", "bb"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestGeneratorsComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, g := range Generators() {
		ids[g.ID] = true
	}
	for _, want := range []string{"table1", "fig1", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17"} {
		if !ids[want] {
			t.Errorf("generator %s missing", want)
		}
	}
}

func TestAblationNVLink(t *testing.T) {
	s := testSuite(t)
	tab, err := s.AblationNVLink()
	if err != nil {
		t.Fatal(err)
	}
	// Per benchmark, tuned L and drain latency must shrink as the poll
	// latency drops across interconnect generations.
	lByBench := map[string][]float64{}
	for _, row := range tab.Rows {
		lByBench[row[2]] = append(lByBench[row[2]], cellFloat(t, row[3]))
	}
	for name, ls := range lByBench {
		if len(ls) != 3 {
			t.Fatalf("%s: %d interconnect points", name, len(ls))
		}
		if !(ls[0] > ls[1] && ls[1] > ls[2]) {
			t.Errorf("%s: L not shrinking with faster interconnect: %v", name, ls)
		}
	}
}

func TestExtFFSTriplet(t *testing.T) {
	s := testSuite(t)
	tab, err := s.ExtFFSTriplet()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		w3 := cellFloat(t, row[1])
		w2 := cellFloat(t, row[2])
		w1 := cellFloat(t, row[3])
		if !(w3 > w2 && w2 > w1) {
			t.Errorf("%s: shares not ordered by weight: %v %v %v", row[0], w3, w2, w1)
		}
		if sum := w3 + w2 + w1; sum < 70 || sum > 101 {
			t.Errorf("%s: share sum %.1f%% implausible", row[0], sum)
		}
	}
}
