package cudalite

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders a program back to MiniCUDA source text. The output parses
// back to an equivalent tree (round-trip property, tested).
func Format(p *Program) string {
	var pr printer
	for i, f := range p.Funcs {
		if i > 0 {
			pr.line("")
		}
		pr.printFunc(f)
	}
	return pr.sb.String()
}

// FormatFunc renders a single function definition.
func FormatFunc(f *FuncDecl) string {
	var pr printer
	pr.printFunc(f)
	return pr.sb.String()
}

// FormatStmt renders one statement at zero indentation.
func FormatStmt(s Stmt) string {
	var pr printer
	pr.printStmt(s)
	return pr.sb.String()
}

// FormatExpr renders one expression.
func FormatExpr(e Expr) string {
	var pr printer
	return pr.expr(e, 0)
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) line(s string) {
	for i := 0; i < p.indent; i++ {
		p.sb.WriteString("    ")
	}
	p.sb.WriteString(s)
	p.sb.WriteByte('\n')
}

func (p *printer) printFunc(f *FuncDecl) {
	var sig strings.Builder
	if q := f.Qual.String(); q != "" {
		sig.WriteString(q)
		sig.WriteByte(' ')
	}
	sig.WriteString(f.Ret.String())
	sig.WriteByte(' ')
	sig.WriteString(f.Name)
	sig.WriteByte('(')
	for i, par := range f.Params {
		if i > 0 {
			sig.WriteString(", ")
		}
		sig.WriteString(par.Type.String())
		sig.WriteByte(' ')
		sig.WriteString(par.Name)
	}
	sig.WriteString(") {")
	p.line(sig.String())
	p.indent++
	for _, s := range f.Body.Stmts {
		p.printStmt(s)
	}
	p.indent--
	p.line("}")
}

func (p *printer) printStmt(s Stmt) {
	switch x := s.(type) {
	case *Block:
		p.line("{")
		p.indent++
		for _, st := range x.Stmts {
			p.printStmt(st)
		}
		p.indent--
		p.line("}")
	case *DeclStmt:
		p.line(p.declString(x) + ";")
	case *ExprStmt:
		p.line(p.expr(x.X, 0) + ";")
	case *IfStmt:
		p.printIf(x)
	case *ForStmt:
		head := "for ("
		if x.Init != nil {
			switch in := x.Init.(type) {
			case *DeclStmt:
				head += p.declString(in)
			case *ExprStmt:
				head += p.expr(in.X, 0)
			}
		}
		head += "; "
		if x.Cond != nil {
			head += p.expr(x.Cond, 0)
		}
		head += "; "
		if x.Post != nil {
			head += p.expr(x.Post, 0)
		}
		head += ") {"
		p.line(head)
		p.indent++
		p.printBody(x.Body)
		p.indent--
		p.line("}")
	case *WhileStmt:
		p.line("while (" + p.expr(x.Cond, 0) + ") {")
		p.indent++
		p.printBody(x.Body)
		p.indent--
		p.line("}")
	case *ReturnStmt:
		if x.X != nil {
			p.line("return " + p.expr(x.X, 0) + ";")
		} else {
			p.line("return;")
		}
	case *BreakStmt:
		p.line("break;")
	case *ContinueStmt:
		p.line("continue;")
	case *LaunchStmt:
		head := x.Kernel + "<<<" + p.expr(x.Grid, 0) + ", " + p.expr(x.Block, 0)
		if x.Shmem != nil {
			head += ", " + p.expr(x.Shmem, 0)
		}
		head += ">>>("
		for i, a := range x.Args {
			if i > 0 {
				head += ", "
			}
			head += p.expr(a, 0)
		}
		head += ");"
		p.line(head)
	default:
		p.line(fmt.Sprintf("/* unknown stmt %T */", s))
	}
}

// printBody prints the statements of a loop/if body, flattening a Block so
// the brace layout stays canonical.
func (p *printer) printBody(s Stmt) {
	if b, ok := s.(*Block); ok {
		for _, st := range b.Stmts {
			p.printStmt(st)
		}
		return
	}
	p.printStmt(s)
}

func (p *printer) printIf(x *IfStmt) {
	p.line("if (" + p.expr(x.Cond, 0) + ") {")
	p.indent++
	p.printBody(x.Then)
	p.indent--
	if x.Else == nil {
		p.line("}")
		return
	}
	if ei, ok := x.Else.(*IfStmt); ok {
		// "} else if (...)": print the chain manually.
		p.printElseIfChain(ei)
		return
	}
	p.line("} else {")
	p.indent++
	p.printBody(x.Else)
	p.indent--
	p.line("}")
}

func (p *printer) printElseIfChain(x *IfStmt) {
	p.line("} else if (" + p.expr(x.Cond, 0) + ") {")
	p.indent++
	p.printBody(x.Then)
	p.indent--
	switch e := x.Else.(type) {
	case nil:
		p.line("}")
	case *IfStmt:
		p.printElseIfChain(e)
	default:
		p.line("} else {")
		p.indent++
		p.printBody(e)
		p.indent--
		p.line("}")
	}
}

func (p *printer) declString(x *DeclStmt) string {
	s := ""
	if x.Shared {
		s += "__shared__ "
	}
	s += x.Type.String()
	for i, d := range x.Decls {
		if i > 0 {
			s += ","
		}
		s += " " + d.Name
		if d.ArrayLen != nil {
			s += "[" + p.expr(d.ArrayLen, 0) + "]"
		}
		if d.Init != nil {
			s += " = " + p.expr(d.Init, 0)
		}
	}
	return s
}

// Expression printing with minimal parentheses. prec is the precedence of
// the surrounding context; sub-expressions with lower precedence get parens.
const (
	precAssign  = 1
	precTernary = 2
	precUnary   = 12
	precPostfix = 13
)

func opPrec(o Op) int {
	switch o {
	case OpOr:
		return 3
	case OpAnd:
		return 4
	case OpBitOr:
		return 5
	case OpBitXor:
		return 6
	case OpBitAnd:
		return 7
	case OpEq, OpNe:
		return 8
	case OpLt, OpGt, OpLe, OpGe:
		return 9
	case OpShl, OpShr:
		return 10
	case OpAdd, OpSub:
		return 11
	case OpMul, OpDiv, OpRem:
		return 12
	}
	return 0
}

func (p *printer) expr(e Expr, prec int) string {
	switch x := e.(type) {
	case *Ident:
		return x.Name
	case *IntLit:
		return strconv.FormatInt(x.Val, 10)
	case *FloatLit:
		return formatFloat(x.Val)
	case *BoolLit:
		if x.Val {
			return "true"
		}
		return "false"
	case *NullLit:
		return "NULL"
	case *StrLit:
		return strconv.Quote(x.Val)
	case *Unary:
		inner := p.expr(x.X, precUnary)
		var s string
		switch x.Op {
		case OpPreInc, OpPreDec:
			s = x.Op.String() + inner
		default:
			s = x.Op.String() + inner
		}
		return parenIf(prec > precUnary, s)
	case *Postfix:
		return parenIf(prec > precPostfix, p.expr(x.X, precPostfix)+x.Op.String())
	case *Binary:
		bp := opPrec(x.Op)
		s := p.expr(x.L, bp) + " " + x.Op.String() + " " + p.expr(x.R, bp+1)
		return parenIf(prec > bp, s)
	case *Assign:
		s := p.expr(x.L, precUnary) + " " + x.Op.String() + " " + p.expr(x.R, precAssign)
		return parenIf(prec > precAssign, s)
	case *Cond:
		s := p.expr(x.C, precTernary+1) + " ? " + p.expr(x.T, precTernary) + " : " + p.expr(x.E, precTernary)
		return parenIf(prec > precTernary, s)
	case *Call:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = p.expr(a, 0)
		}
		return x.Fun + "(" + strings.Join(args, ", ") + ")"
	case *Index:
		return p.expr(x.X, precPostfix) + "[" + p.expr(x.Idx, 0) + "]"
	case *Member:
		return p.expr(x.X, precPostfix) + "." + x.Name
	case *Cast:
		return parenIf(prec > precUnary, "("+x.Type.String()+")"+p.expr(x.X, precUnary))
	case *Paren:
		return "(" + p.expr(x.X, 0) + ")"
	}
	return fmt.Sprintf("/* unknown expr %T */", e)
}

func parenIf(cond bool, s string) string {
	if cond {
		return "(" + s + ")"
	}
	return s
}

// formatFloat prints a float literal that re-parses as FLOATLIT.
func formatFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}
