#!/usr/bin/env bash
# Build flepvet and run the FLEP analyzer suite over the whole module.
# This is the single lint entrypoint: CI runs it as a blocking step and
# developers run it locally before pushing. Two passes:
#
#   1. standalone (`flepvet ./...`) — whole-program, so metrichygiene's
#      cross-package family checks see every registration site at once;
#   2. `go vet -vettool` — the unitchecker protocol, which additionally
#      analyzes _test.go files and proves the vet integration works.
#
# Exit nonzero on any finding. Suppressions are //flepvet:allow with a
# mandatory reason (see DESIGN.md §11).
set -euo pipefail
cd "$(dirname "$0")/.."

FLEPVET="$(mktemp -d)/flepvet"
trap 'rm -rf "$(dirname "$FLEPVET")"' EXIT

go build -o "$FLEPVET" ./cmd/flepvet

echo "==> flepvet ./... (standalone, cross-package)"
"$FLEPVET" ./...

echo "==> go vet -vettool=flepvet ./... (unitchecker, includes tests)"
go vet -vettool="$FLEPVET" ./...

echo "lint: clean"
