// Package cluster is the flepgw gateway: one HTTP front door over N
// independent flepd nodes, presenting the same /v1 surface a single
// daemon does. The gateway owns routing (consistent-hash session
// affinity, memory/load-aware placement for unaffinitized launches),
// node health, drain/rebalance, and fleet-wide aggregation of status,
// sessions, traces, and metrics. Nodes stay mutually unaware — flepd
// gains no cluster code — so a node can be killed, drained, or added
// behind the gateway without touching the data plane it serves.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodesPerNode is the ring's virtual-node fan-out. 64 points per node
// keeps the per-node keyspace share within a few percent of fair for
// small clusters while the ring stays tiny (a 16-node cluster is 1024
// points — one binary search over a contiguous slice per route).
const vnodesPerNode = 64

// ring is a consistent-hash ring over node IDs. It is immutable after
// construction: membership changes (drain, removal) are expressed by the
// eligibility filter at walk time, not by rebuilding the ring, so a
// drained node's sessions — and only that node's sessions — fall through
// to their next preference while everyone else's mapping is untouched.
type ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // distinct node IDs, construction order
}

type ringPoint struct {
	hash uint64
	node string
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. FNV-1a of short, similar keys
// ("addr#3" vs "addr#4") differs mostly in low bits, which would sort
// each node's vnodes into one contiguous arc — the opposite of what a
// consistent-hash ring needs. The avalanche spreads every input bit
// across the word so vnodes interleave.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// newRing builds the ring from node IDs (addresses work too; any stable
// distinct strings).
func newRing(nodes []string) *ring {
	r := &ring{nodes: append([]string(nil), nodes...)}
	r.points = make([]ringPoint, 0, len(nodes)*vnodesPerNode)
	for _, n := range nodes {
		for rep := 0; rep < vnodesPerNode; rep++ {
			r.points = append(r.points, ringPoint{hash64(fmt.Sprintf("%s#%d", n, rep)), n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by node ID so the walk order
		// is deterministic regardless of construction order.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// sequence returns every node exactly once, in the key's preference
// order: the walk clockwise from the key's hash. sequence(key)[0] is the
// key's home node; later entries are where its sessions land if earlier
// ones are ineligible. Callers filter eligibility themselves — the ring
// knows the geometry, the gateway knows the health.
func (r *ring) sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.nodes))
	seen := make(map[string]bool, len(r.nodes))
	for i := 0; i < len(r.points) && len(out) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
