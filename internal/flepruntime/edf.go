package flepruntime

import (
	"fmt"
	"sort"
	"time"

	"flep/internal/sim"
)

// EDF is the SLO tier's deadline policy: earliest-deadline-first over
// invocations that carry a virtual-time deadline, with best-effort
// (deadline-free) work ordered behind them by (priority desc, arrival).
// It is deliberately lazy about preemption — the paper's machinery makes
// preemption cheap, not free — so a deadline-bearing arrival preempts
// the running kernel only when its deadline is actually at risk AND
// paying the drain still lets it meet (GCAPS-style deadline scheduling
// with FLEP's cost model):
//
//   - wait would miss:   now + Tr(running) + Tr(best) > Deadline(best)
//   - preempt would meet: now + O(running) + Tr(best) ≤ Deadline(best)
//
// Best-effort work never preempts anything. Because a queued deadline
// can drift into risk with no arrival or completion to re-trigger
// scheduling, EDF arms a risk timer at the head deadline's latest safe
// preemption instant (Deadline − Tr − O(running)); when it fires, the
// reconcile loop re-evaluates and the preemption rule above takes over.
type EDF struct {
	rt    *Runtime
	queue []*Invocation

	// riskTimer is the armed latest-safe-preemption event for the
	// earliest queued deadline; riskSeq invalidates superseded timers
	// (the FFS epoch-timer pattern, so dead events never accrete in the
	// engine and never fire stale).
	riskTimer *sim.Event
	riskSeq   int
}

// NewEDF returns the earliest-deadline-first policy.
func NewEDF() *EDF { return &EDF{} }

// Name implements Policy.
func (e *EDF) Name() string { return "EDF" }

// bind gives the policy its runtime (called by Runtime's constructor).
func (e *EDF) bind(r *Runtime) { e.rt = r }

// edfBefore reports whether v sorts strictly before q: deadline-bearing
// work first in deadline order, then best-effort by (priority desc,
// arrival). Equal keys are not "before", so a binary insert lands ties
// after existing entries (FIFO tie-break).
func edfBefore(v, q *Invocation) bool {
	vd, qd := v.Deadline > 0, q.Deadline > 0
	if vd != qd {
		return vd
	}
	if vd {
		return v.Deadline < q.Deadline
	}
	return v.Priority > q.Priority
}

// Enqueue inserts keeping the queue in EDF order (O(log n) search, one
// tail copy), then re-arms the risk timer: the new head deadline may be
// tighter than the one the current timer guards.
func (e *EDF) Enqueue(v *Invocation) {
	i := sort.Search(len(e.queue), func(i int) bool { return edfBefore(v, e.queue[i]) })
	e.queue = append(e.queue, nil)
	copy(e.queue[i+1:], e.queue[i:])
	e.queue[i] = v
	e.rearm()
}

// Peek implements Policy.
func (e *EDF) Peek() *Invocation {
	if len(e.queue) == 0 {
		return nil
	}
	return e.queue[0]
}

// Dequeue implements Policy.
func (e *EDF) Dequeue(v *Invocation) {
	for i, q := range e.queue {
		if q == v {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			e.rearm()
			return
		}
	}
}

// ShouldPreempt applies the cost-of-preemption-aware EDF rule described
// on the type. Best-effort candidates never preempt; a deadline-bearing
// candidate preempts only a later-deadline (or deadline-free) victim,
// only when waiting would miss, and only when draining still meets.
func (e *EDF) ShouldPreempt(r *Runtime, running, best *Invocation) bool {
	if best.Deadline <= 0 {
		return false
	}
	if running.Deadline > 0 && running.Deadline <= best.Deadline {
		return false // EDF order: the victim's deadline is at least as urgent
	}
	now := r.Device().Now()
	running.chargeRun(now)
	if now+running.Tr+best.Tr <= best.Deadline {
		return false // waiting still meets: the drain would be pure overhead
	}
	return now+r.OverheadFor(running)+best.Tr <= best.Deadline
}

// OnDispatch re-arms the risk timer for the next queued deadline: the
// runner just changed, so the latest safe preemption instant (which
// depends on the runner's drain cost) changed with it.
func (e *EDF) OnDispatch(r *Runtime, v *Invocation) { e.rearm() }

// Queued implements Policy.
func (e *EDF) Queued() []*Invocation { return e.queue }

// Pending returns the queued invocation count (for tests).
func (e *EDF) Pending() int { return len(e.queue) }

// firstDeadline returns the earliest-deadline queued invocation (the
// queue head when any deadline work waits), or nil.
func (e *EDF) firstDeadline() *Invocation {
	if len(e.queue) == 0 || e.queue[0].Deadline <= 0 {
		return nil
	}
	return e.queue[0]
}

// rearm (re)schedules the risk timer at the queued head deadline's
// latest safe preemption instant. With nothing running the reconcile
// loop dispatches immediately, and with no queued deadline there is
// nothing to guard — both cases just cancel any armed timer.
func (e *EDF) rearm() {
	if e.rt == nil {
		return
	}
	e.riskSeq++
	now := e.rt.Device().Now()
	if e.riskTimer != nil && !e.riskTimer.Canceled() && e.riskTimer.When() > now {
		e.riskTimer.Cancel()
	}
	e.riskTimer = nil
	head := e.firstDeadline()
	if head == nil {
		return
	}
	running := e.rt.Running()
	if running == nil {
		return
	}
	at := head.Deadline - head.Tr - e.rt.OverheadFor(running)
	if at < now {
		at = now
	}
	seq := e.riskSeq
	e.riskTimer = e.rt.Device().Engine().At(at, func() { e.onRisk(seq) })
}

// onRisk fires at the latest safe preemption instant: re-enter the
// reconcile loop so ShouldPreempt decides with the deadline now at
// risk. It does not re-arm itself — every state change that could
// matter (enqueue, dequeue, dispatch) re-arms, so a no-op firing (e.g.
// mid-drain) cannot spin at one timestamp.
func (e *EDF) onRisk(seq int) {
	if seq != e.riskSeq {
		return
	}
	e.riskTimer = nil
	if head := e.firstDeadline(); head != nil {
		e.rt.log("edf-risk", head.Kernel,
			fmt.Sprintf("id=%d deadline=%v at risk", head.ID, head.Deadline))
	}
	e.rt.schedule()
}

// Deadline slack helpers shared with the server's admission path.

// SlackFor reports how much virtual time remains between "dispatch best
// now" and its deadline: Deadline − now − Tr. Negative slack means the
// deadline is already unmeetable even on an idle GPU.
func SlackFor(v *Invocation, now time.Duration) time.Duration {
	if v.Deadline <= 0 {
		return 0
	}
	return v.Deadline - now - v.Tr
}
