package core

import (
	"sync"
	"testing"
	"time"

	"flep/internal/gpu"
	"flep/internal/kernels"
	"flep/internal/metrics"
	"flep/internal/workload"
)

// sharedSystem builds the full offline phase once for the test package.
var (
	sysOnce sync.Once
	sysInst *System
)

func testSystem(t *testing.T) *System {
	t.Helper()
	sysOnce.Do(func() {
		s := NewSystem(gpu.DefaultParams())
		if err := s.OfflineAll(); err != nil {
			t.Fatalf("offline: %v", err)
		}
		sysInst = s
	})
	if sysInst == nil {
		t.Fatal("offline phase failed in an earlier test")
	}
	return sysInst
}

func TestOfflineBuildsAllArtifacts(t *testing.T) {
	s := testSystem(t)
	for _, b := range kernels.All() {
		a := s.Artifacts(b.Name)
		if a == nil {
			t.Fatalf("%s: no artifacts", b.Name)
		}
		if a.Model == nil || a.Info == nil || a.Transformed == nil {
			t.Fatalf("%s: incomplete artifacts", b.Name)
		}
		if !a.TuneOK {
			t.Errorf("%s: tuner did not meet the 4%% constraint (L=%d, %.2f%%)",
				b.Name, a.L, a.TunedOverhead*100)
		}
		if a.PreemptOverhead <= 0 {
			t.Errorf("%s: no preemption overhead estimate", b.Name)
		}
	}
}

// The tuned amortizing factors must reproduce Table 1's ordering: heavy
// per-task kernels need L=1; fine-grained kernels need large L, with VA the
// largest.
func TestTunedAmortizingFactorsMatchPaperShape(t *testing.T) {
	s := testSystem(t)
	l := func(name string) int { return s.Artifacts(name).L }
	if l("CFD") != 1 || l("MD") != 1 {
		t.Errorf("CFD/MD L = %d/%d, want 1/1", l("CFD"), l("MD"))
	}
	if l("SPMV") > 4 || l("MM") > 4 {
		t.Errorf("SPMV/MM L = %d/%d, want ≈2", l("SPMV"), l("MM"))
	}
	for _, name := range []string{"NN", "PF", "PL"} {
		if l(name) < 30 || l(name) > 400 {
			t.Errorf("%s L = %d, want O(100)", name, l(name))
		}
	}
	if l("VA") < l("NN") || l("VA") < 100 {
		t.Errorf("VA L = %d, should be the largest (NN=%d)", l("VA"), l("NN"))
	}
	t.Logf("tuned L: CFD=%d NN=%d PF=%d PL=%d MD=%d SPMV=%d MM=%d VA=%d",
		l("CFD"), l("NN"), l("PF"), l("PL"), l("MD"), l("SPMV"), l("MM"), l("VA"))
}

func TestPredictionAccuracy(t *testing.T) {
	s := testSystem(t)
	for _, b := range kernels.All() {
		for _, c := range []kernels.InputClass{kernels.Large, kernels.Small} {
			in := b.Input(c)
			pred, err := s.Predict(b, in)
			if err != nil {
				t.Fatal(err)
			}
			truth, err := s.SoloTime(b, c)
			if err != nil {
				t.Fatal(err)
			}
			errFrac := (pred - truth).Seconds() / truth.Seconds()
			if errFrac < 0 {
				errFrac = -errFrac
			}
			// Calibrated inputs carry no noise; the model's error on them
			// is its systematic bias, which must stay modest.
			if errFrac > 0.30 {
				t.Errorf("%s/%s: prediction error %.1f%% (pred %v, truth %v)",
					b.Name, c, errFrac*100, pred, truth)
			}
		}
	}
}

func TestFLEPPriorityPairBeatsMPS(t *testing.T) {
	s := testSystem(t)
	spmv, _ := kernels.ByName("SPMV")
	nn, _ := kernels.ByName("NN")
	sc := workload.PriorityPair(spmv, nn, 0) // SPMV small hi-prio vs NN large

	mps, err := s.RunMPS(sc)
	if err != nil {
		t.Fatal(err)
	}
	flep, err := s.RunFLEP(sc, Options{Policy: "hpf"})
	if err != nil {
		t.Fatal(err)
	}
	mpsHi := mps.ResultFor("SPMV")
	flepHi := flep.ResultFor("SPMV")
	if mpsHi == nil || flepHi == nil {
		t.Fatal("missing results")
	}
	speedup := metrics.Speedup(mpsHi.Turnaround(), flepHi.Turnaround())
	// Paper: up to 24.2x for SPMV_NN.
	if speedup < 15 || speedup > 35 {
		t.Fatalf("SPMV_NN speedup = %.1fx, paper reports ≈24x", speedup)
	}
	// The low-priority kernel must still finish.
	if flep.ResultFor("NN") == nil {
		t.Fatal("NN never finished under FLEP")
	}
	t.Logf("SPMV_NN: MPS %v → FLEP %v (%.1fx)", mpsHi.Turnaround(), flepHi.Turnaround(), speedup)
}

func TestFLEPEqualPairImprovesANTT(t *testing.T) {
	s := testSystem(t)
	va, _ := kernels.ByName("VA")
	nn, _ := kernels.ByName("NN")
	sc := workload.EqualPair(va, nn) // VA small + NN large, equal prio

	mps, err := s.RunMPS(sc)
	if err != nil {
		t.Fatal(err)
	}
	flep, err := s.RunFLEP(sc, Options{Policy: "hpf"})
	if err != nil {
		t.Fatal(err)
	}
	mpsRuns, err := s.KernelRuns(sc, mps)
	if err != nil {
		t.Fatal(err)
	}
	flepRuns, err := s.KernelRuns(sc, flep)
	if err != nil {
		t.Fatal(err)
	}
	anttMPS := metrics.ANTT(mpsRuns)
	anttFLEP := metrics.ANTT(flepRuns)
	if anttFLEP >= anttMPS {
		t.Fatalf("FLEP ANTT %.2f not better than MPS %.2f", anttFLEP, anttMPS)
	}
	improvement := anttMPS / anttFLEP
	if improvement < 2 {
		t.Fatalf("ANTT improvement only %.2fx", improvement)
	}
	// Throughput cost should be modest (Fig. 11: ~5.4% average).
	stpLoss := 1 - metrics.STP(flepRuns)/metrics.STP(mpsRuns)
	if stpLoss > 0.25 {
		t.Fatalf("STP degradation %.1f%% too high", stpLoss*100)
	}
	t.Logf("ANTT: MPS %.2f → FLEP %.2f (%.1fx), STP loss %.1f%%",
		anttMPS, anttFLEP, improvement, stpLoss*100)
}

func TestSpatialRunCompletes(t *testing.T) {
	s := testSystem(t)
	nn, _ := kernels.ByName("NN")
	cfd, _ := kernels.ByName("CFD")
	sc := workload.SpatialPair(nn, cfd) // NN trivial hi-prio vs CFD large
	res, err := s.RunFLEP(sc, Options{Policy: "hpf", Spatial: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResultFor("NN") == nil || res.ResultFor("CFD") == nil {
		t.Fatal("not all kernels finished")
	}
	// The drain must have been spatial (victim kept running).
	sawSpatial := false
	for _, e := range res.Log.Filter("drained") {
		if len(e.Detail) >= 7 && e.Detail[:7] == "spatial" {
			sawSpatial = true
		}
	}
	if !sawSpatial {
		t.Fatal("no spatial drain recorded")
	}
}

func TestSpatialReducesPreemptionOverhead(t *testing.T) {
	s := testSystem(t)
	nn, _ := kernels.ByName("NN")
	cfd, _ := kernels.ByName("CFD")
	sc := workload.SpatialPair(nn, cfd)
	org, err := s.RunMPS(sc)
	if err != nil {
		t.Fatal(err)
	}
	temporal, err := s.RunFLEP(sc, Options{Policy: "hpf", Spatial: false})
	if err != nil {
		t.Fatal(err)
	}
	spatial, err := s.RunFLEP(sc, Options{Policy: "hpf", Spatial: true})
	if err != nil {
		t.Fatal(err)
	}
	ovT := (temporal.Makespan - org.Makespan).Seconds() / org.Makespan.Seconds()
	ovS := (spatial.Makespan - org.Makespan).Seconds() / org.Makespan.Seconds()
	if ovS >= ovT {
		t.Fatalf("spatial overhead %.4f not below temporal %.4f", ovS, ovT)
	}
	t.Logf("preemption overhead: temporal %.3f%%, spatial %.3f%% (%.0f%% reduction)",
		ovT*100, ovS*100, (1-ovS/ovT)*100)
}

func TestRunSlicedAndReorder(t *testing.T) {
	s := testSystem(t)
	mm, _ := kernels.ByName("MM")
	nn, _ := kernels.ByName("NN")
	sc := workload.PriorityPair(mm, nn, 0) // MM small high-prio vs NN large
	sliced, err := s.RunSliced(sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	reorder, err := s.RunReorder(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(sliced.Results) != 2 || len(reorder.Results) != 2 {
		t.Fatal("baseline runs incomplete")
	}
	// Slicing preempts at slice boundaries: high-priority MM should finish
	// before NN (long) despite arriving second.
	if sliced.ResultFor("MM").FinishedAt > sliced.ResultFor("NN").FinishedAt {
		t.Fatal("slicing did not let the high-priority kernel run first")
	}
	// Reordering cannot preempt the already-running NN.
	if reorder.ResultFor("MM").FinishedAt < reorder.ResultFor("NN").FinishedAt {
		t.Fatal("reordering preempted a running kernel")
	}
}

func TestFFSRunProducesShares(t *testing.T) {
	s := testSystem(t)
	mm, _ := kernels.ByName("MM")
	spmv, _ := kernels.ByName("SPMV")
	sc := workload.FairPair(mm, spmv, 100*time.Millisecond)
	res, err := s.RunFLEP(sc, Options{
		Policy: "ffs", MaxOverhead: 0.10,
		Weights:     map[int]float64{2: 2, 1: 1},
		ShareWindow: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	hi := metrics.MeanShare(res.Shares, "MM")
	lo := metrics.MeanShare(res.Shares, "SPMV")
	if hi <= 0 || lo <= 0 {
		t.Fatalf("shares hi=%f lo=%f", hi, lo)
	}
	ratio := hi / lo
	if ratio < 1.5 || ratio > 2.6 {
		t.Fatalf("share ratio %.2f, want ≈2 (hi=%.3f lo=%.3f)", ratio, hi, lo)
	}
	if res.Completions["MM"] == 0 || res.Completions["SPMV"] == 0 {
		t.Fatal("closed-loop clients did not complete invocations")
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	s := testSystem(t)
	va, _ := kernels.ByName("VA")
	nn, _ := kernels.ByName("NN")
	if _, err := s.RunFLEP(workload.EqualPair(va, nn), Options{Policy: "bogus"}); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestRunFLEPWithoutOfflineFails(t *testing.T) {
	s := NewSystem(gpu.DefaultParams())
	va, _ := kernels.ByName("VA")
	nn, _ := kernels.ByName("NN")
	if _, err := s.RunFLEP(workload.EqualPair(va, nn), Options{}); err == nil {
		t.Fatal("run without offline artifacts accepted")
	}
}
