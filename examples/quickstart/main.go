// Quickstart: compile a CUDA-style kernel into its preemptable FLEP form,
// then run a two-kernel co-run where a short high-priority kernel preempts
// a long-running one — the paper's headline scenario.
package main

import (
	"fmt"
	"log"
	"time"

	"flep"
)

const saxpy = `
__global__ void saxpy(float* x, float* y, float a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}

void host(float* x, float* y, float a, int n) {
    saxpy<<<(n + 255) / 256, 256>>>(x, y, a, n);
}
`

func main() {
	// 1. The compilation engine: one pass transforms both the GPU kernel
	// (into a persistent-thread form polling the preemption flag) and the
	// CPU launch site (into a runtime-interceptor call).
	transformed, err := flep.TransformSource(saxpy, flep.Temporal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- FLEP-transformed program ---")
	fmt.Println(transformed)

	// 2. The runtime engine: offline phase tunes each benchmark's
	// amortizing factor, trains its duration model, and profiles its
	// preemption overhead.
	sys := flep.NewSystem()
	if err := sys.OfflineAll(); err != nil {
		log.Fatal(err)
	}

	// 3. A co-run: SPMV (small input, high priority) arrives right after
	// NN (large input, low priority) occupies the GPU.
	spmv, _ := flep.BenchmarkByName("SPMV")
	nn, _ := flep.BenchmarkByName("NN")
	scenario := flep.PriorityPair(spmv, nn, 0)

	mps, err := sys.RunMPS(scenario) // the non-preemptive default
	if err != nil {
		log.Fatal(err)
	}
	preempted, err := sys.RunFLEP(scenario, flep.Options{Policy: "hpf"})
	if err != nil {
		log.Fatal(err)
	}

	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	m := mps.ResultFor("SPMV").Turnaround()
	f := preempted.ResultFor("SPMV").Turnaround()
	fmt.Println("--- high-priority SPMV turnaround ---")
	fmt.Printf("MPS (no preemption): %10.1f us\n", us(m))
	fmt.Printf("FLEP (HPF policy):   %10.1f us\n", us(f))
	fmt.Printf("speedup:             %10.1fx (paper reports up to 24.2x for this pair)\n",
		m.Seconds()/f.Seconds())
}
