package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"flep/internal/lint/analysis"
)

// LoopPurityAnalyzer protects the single-threaded event loop: code
// reachable from engine event handlers and scheduler callbacks must
// not block. Fleet sharding multiplied the loops by N, so one blocking
// call now stalls a whole device shard.
//
// Roots (per package):
//   - function literals passed to (sim.Engine).Schedule / At — the
//     discrete events themselves;
//   - function values assigned to callback fields named On* (OnFinish,
//     OnComplete, OnPreemptDrained, ...) — the runtime's hooks, which
//     all fire inside an engine step;
//   - in internal/server: the loop-goroutine methods loop, admit, and
//     complete.
//
// From those roots the analyzer closes over same-package static calls
// and flags, inside the reachable set: time.Sleep, calls into net /
// net/http, channel sends outside a select with a default clause
// (category blockingsend — annotate provably buffered sends), and
// Lock on a mutex that non-loop code also locks (category sharedlock —
// the daemon-shared mutex class; annotate bounded critical sections).
var LoopPurityAnalyzer = &analysis.Analyzer{
	Name:       "looppurity",
	Doc:        "forbid blocking calls in event-loop-reachable code",
	Categories: []string{"block", "blockingsend", "sharedlock"},
	Run:        runLoopPurity,
}

// loopPurityPkgs scopes the analyzer to the packages that host event
// handlers: the deterministic simulation layers plus the daemon.
var loopPurityPkgs = []string{
	"flep/internal/sim",
	"flep/internal/gpu",
	"flep/internal/flepruntime",
	"flep/internal/core",
	"flep/internal/server",
}

// serverLoopMethods are the internal/server methods that run on the
// loop goroutine (documented as such in loop.go); they root the
// reachability in the daemon package, where no sim callback literal
// marks them.
var serverLoopMethods = map[string]bool{"loop": true, "admit": true, "complete": true}

func inLoopPurityScope(path string) bool {
	for _, p := range loopPurityPkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// funcUnit is one analyzable body: a declared function/method or a
// rooted function literal.
type funcUnit struct {
	body *ast.BlockStmt
	name string
}

func runLoopPurity(pass *analysis.Pass) (any, error) {
	path := pass.Pkg.Path()
	if !inLoopPurityScope(path) {
		return nil, nil
	}
	isServer := path == "flep/internal/server" || strings.Contains(path, "internal/server/")

	// Index declared functions by object for call-graph edges.
	decls := map[*types.Func]*funcUnit{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[obj] = &funcUnit{body: fd.Body, name: fd.Name.Name}
		}
	}

	// Collect roots.
	var roots []*funcUnit
	seen := map[*types.Func]bool{}
	addFuncRoot := func(obj *types.Func) {
		if u := decls[obj]; u != nil && !seen[obj] {
			seen[obj] = true
			roots = append(roots, u)
		}
	}
	resolveFuncValue := func(e ast.Expr) (*funcUnit, *types.Func) {
		switch e := e.(type) {
		case *ast.FuncLit:
			return &funcUnit{body: e.Body, name: "func literal"}, nil
		case *ast.Ident:
			if obj, ok := pass.TypesInfo.Uses[e].(*types.Func); ok {
				return nil, obj
			}
		case *ast.SelectorExpr:
			if obj, ok := pass.TypesInfo.Uses[e.Sel].(*types.Func); ok {
				return nil, obj
			}
		}
		return nil, nil
	}
	addValueRoot := func(e ast.Expr, why string) {
		lit, obj := resolveFuncValue(e)
		if lit != nil {
			lit.name = why
			roots = append(roots, lit)
		} else if obj != nil && obj.Pkg() == pass.Pkg {
			addFuncRoot(obj)
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				// fn arguments of Engine.Schedule/At.
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && isEngineScheduler(fn) {
						for _, arg := range n.Args {
							if _, ok := pass.TypesInfo.TypeOf(arg).(*types.Signature); ok {
								addValueRoot(arg, "event scheduled on the engine")
							}
						}
					}
				}
			case *ast.KeyValueExpr:
				// Callback fields in composite literals: OnFinish: func(...){...}.
				if key, ok := n.Key.(*ast.Ident); ok && isCallbackField(key.Name, pass.TypesInfo.TypeOf(n.Value)) {
					addValueRoot(n.Value, "callback "+key.Name)
				}
			case *ast.AssignStmt:
				// x.OnComplete = fn assignments.
				for i, lhs := range n.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok || i >= len(n.Rhs) {
						continue
					}
					if isCallbackField(sel.Sel.Name, pass.TypesInfo.TypeOf(n.Rhs[i])) {
						addValueRoot(n.Rhs[i], "callback "+sel.Sel.Name)
					}
				}
			case *ast.FuncDecl:
				if isServer && n.Recv != nil && serverLoopMethods[n.Name.Name] {
					if obj, ok := pass.TypesInfo.Defs[n.Name].(*types.Func); ok {
						addFuncRoot(obj)
					}
				}
			}
			return true
		})
	}

	// Close over same-package static calls.
	reachable := map[*ast.BlockStmt]string{}
	var queue []*funcUnit
	enqueue := func(u *funcUnit) {
		if _, ok := reachable[u.body]; !ok {
			reachable[u.body] = u.name
			queue = append(queue, u)
		}
	}
	for _, r := range roots {
		enqueue(r)
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		walkBodyShallow(u.body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			_, obj := resolveFuncValue(call.Fun)
			if obj != nil && obj.Pkg() == pass.Pkg {
				if next := decls[obj]; next != nil {
					enqueue(next)
				}
			}
		})
	}

	// Shared-mutex detection: a mutex field locked both inside and
	// outside the reachable set belongs to the daemon's shared state.
	lockSites := collectLockSites(pass)

	for body, name := range reachable {
		checkLoopBody(pass, body, name, reachable, lockSites)
	}
	return nil, nil
}

// isEngineScheduler matches (sim.Engine) Schedule/At in the real tree
// and in fixtures (any package whose path ends in internal/sim).
func isEngineScheduler(fn *types.Func) bool {
	if fn.Name() != "Schedule" && fn.Name() != "At" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	return strings.HasSuffix(p, "internal/sim") || p == "sim"
}

// isCallbackField matches func-typed fields named like runtime hooks.
func isCallbackField(name string, t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Signature); !ok {
		return false
	}
	return strings.HasPrefix(name, "On") && len(name) > 2
}

// walkBodyShallow visits body without descending into nested function
// literals (they run when invoked, not when defined — and if they are
// callbacks, the root collection already owns them).
func walkBodyShallow(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// lockSite records one X.Lock() with whether it is loop-reachable.
type lockSite struct {
	key  string // rendered receiver expression, e.g. "s.mu"
	body *ast.BlockStmt
}

func collectLockSites(pass *analysis.Pass) []lockSite {
	var sites []lockSite
	for _, f := range pass.Files {
		var stack []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					stack = append(stack, n.Body)
				}
			case *ast.FuncLit:
				stack = append(stack, n.Body)
			case *ast.CallExpr:
				if key, kind := mutexLockCall(pass, n); kind == "Lock" || kind == "RLock" {
					if len(stack) > 0 {
						sites = append(sites, lockSite{key: key, body: stack[len(stack)-1]})
					}
				}
			case nil:
			}
			return true
		})
		// NB: the stack is only used to attribute a site to its innermost
		// enclosing body; imbalance on exit is harmless because each file
		// walk finishes all bodies it opened.
	}
	return sites
}

// mutexLockCall classifies X.Lock/RLock/Unlock/RUnlock on sync mutex
// types, returning the rendered X and the method name.
func mutexLockCall(pass *analysis.Pass, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), fn.Name()
	}
	return "", ""
}

func checkLoopBody(pass *analysis.Pass, body *ast.BlockStmt, name string, reachable map[*ast.BlockStmt]string, lockSites []lockSite) {
	walkBodyShallow(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return
			}
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Sleep" {
					pass.Reportf(n.Pos(), "block",
						"time.Sleep in %s blocks the event loop; pace with engine events or a selectable timer", name)
				}
			case "net", "net/http":
				pass.Reportf(n.Pos(), "block",
					"%s.%s in %s performs network I/O on the event loop; hand it to a worker goroutine",
					fn.Pkg().Name(), fn.Name(), name)
			case "sync":
				if fn.Name() == "Lock" || fn.Name() == "RLock" {
					key := types.ExprString(sel.X)
					if lockedOutsideLoop(key, reachable, lockSites) {
						pass.Reportf(n.Pos(), "sharedlock",
							"%s.%s in %s locks a mutex that non-loop code also takes; the loop can stall behind a handler (keep the critical section bounded and annotate, or move the state to the loop)",
							key, fn.Name(), name)
					}
				}
			}
		case *ast.SendStmt:
			if !sendInSelectWithDefault(pass, body, n) {
				pass.Reportf(n.Pos(), "blockingsend",
					"channel send in %s can block the event loop; use select with default, or annotate if the channel is provably buffered", name)
			}
		}
	})
}

// lockedOutsideLoop reports whether the mutex (by rendered receiver)
// is also locked in a body outside the reachable set.
func lockedOutsideLoop(key string, reachable map[*ast.BlockStmt]string, sites []lockSite) bool {
	for _, s := range sites {
		if s.key != key {
			continue
		}
		if _, inLoop := reachable[s.body]; !inLoop {
			return true
		}
	}
	return false
}

// sendInSelectWithDefault reports whether the send is the comm
// statement of a select clause whose select carries a default.
func sendInSelectWithDefault(pass *analysis.Pass, body *ast.BlockStmt, send *ast.SendStmt) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, isSel := n.(*ast.SelectStmt)
		if !isSel {
			return true
		}
		hasDefault := false
		owns := false
		for _, c := range sel.Body.List {
			cc, isCC := c.(*ast.CommClause)
			if !isCC {
				continue
			}
			if cc.Comm == nil {
				hasDefault = true
			} else if cc.Comm.Pos() == send.Pos() {
				owns = true
			}
		}
		if owns && hasDefault {
			ok = true
			return false
		}
		return true
	})
	return ok
}
