package flepruntime

// FIFO is the non-preemptive baseline policy: strict arrival order, no
// preemption ever. It models the MPS-style co-run the paper evaluates
// FLEP against (§2.1's serialization problem) inside the same runtime
// plumbing, so replay what-if runs can compare HPF/FFS against a
// non-preemptive deployment on identical traces with identical
// accounting.
type FIFO struct {
	queue []*Invocation
}

// NewFIFO returns the non-preemptive FIFO policy.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements Policy.
func (f *FIFO) Name() string { return "FIFO" }

// Enqueue implements Policy: arrival order, nothing else.
func (f *FIFO) Enqueue(v *Invocation) { f.queue = append(f.queue, v) }

// Peek implements Policy.
func (f *FIFO) Peek() *Invocation {
	if len(f.queue) == 0 {
		return nil
	}
	return f.queue[0]
}

// Dequeue implements Policy.
func (f *FIFO) Dequeue(v *Invocation) {
	for i, q := range f.queue {
		if q == v {
			f.queue = append(f.queue[:i], f.queue[i+1:]...)
			return
		}
	}
}

// ShouldPreempt implements Policy: never.
func (f *FIFO) ShouldPreempt(*Runtime, *Invocation, *Invocation) bool { return false }

// OnDispatch implements Policy (no-op).
func (f *FIFO) OnDispatch(*Runtime, *Invocation) {}

// Queued implements Policy.
func (f *FIFO) Queued() []*Invocation { return f.queue }
