package experiments

import (
	"time"

	"flep/internal/kernels"
	"flep/internal/workload"
)

// Figure17 regenerates the single-kernel overhead comparison: the runtime
// overhead of the FLEP-transformed kernel (at its tuned L, never preempted)
// versus kernel slicing at equivalent preemption granularity (sub-kernels
// of L waves, i.e. 120·L CTAs), both relative to the original kernel.
// Paper: FLEP 2.5% average; slicing 8% average, over 10% for several
// benchmarks, much worse for CFD/MD/SPMV/MM.
func (s *Suite) Figure17() (*Table, error) {
	t := &Table{
		ID:      "fig17",
		Title:   "Single-kernel overhead: FLEP vs kernel slicing",
		Columns: []string{"bench", "solo(us)", "FLEP-ovh", "slices", "slicing-ovh"},
	}
	var sumF, sumS float64
	for _, b := range kernels.All() {
		a := s.Sys.Artifacts(b.Name)
		solo, err := s.Sys.SoloTime(b, kernels.Large)
		if err != nil {
			return nil, err
		}
		flep, err := s.Sys.SoloPersistentTime(b, kernels.Large, a.L)
		if err != nil {
			return nil, err
		}
		ovF := (flep - solo).Seconds() / solo.Seconds()

		sliceTasks := 120 * a.L
		sliced, slices, err := s.soloSlicedTime(b, sliceTasks)
		if err != nil {
			return nil, err
		}
		ovS := (sliced - solo).Seconds() / solo.Seconds()
		sumF += ovF
		sumS += ovS
		t.AddRow(b.Name, solo, pct(ovF), slices, pct(ovS))
	}
	n := float64(len(kernels.All()))
	t.Note("mean overhead: FLEP %s (paper: ~2.5%%), slicing %s (paper: ~8%%)", pct(sumF/n), pct(sumS/n))
	t.Note("slicing granularity matched to FLEP's per-CTA batch (sub-kernels of 120·L CTAs)")
	return t, nil
}

// soloSlicedTime runs the benchmark's large input solo under the slicing
// baseline and returns the elapsed time and slice count.
func (s *Suite) soloSlicedTime(b *kernels.Benchmark, sliceTasks int) (time.Duration, int, error) {
	sc := workload.Scenario{
		Name:  b.Name + "_solo_sliced",
		Items: []workload.Item{{Bench: b, Class: kernels.Large, Priority: 1}},
	}
	res, err := s.Sys.RunSliced(sc, sliceTasks)
	if err != nil {
		return 0, 0, err
	}
	r := res.ResultFor(b.Name)
	slices := (b.Input(kernels.Large).Tasks + sliceTasks - 1) / sliceTasks
	return r.Turnaround(), slices, nil
}
