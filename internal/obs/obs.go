// Package obs is a dependency-free metrics layer for the FLEP daemon: a
// registry of counters, gauges, and histograms exposed in the Prometheus
// text format. The paper's evaluation is entirely about measured
// scheduling behaviour — preemption counts and latency (Figs. 9, 15),
// overhead ratio (Fig. 10/14), ANTT and wait time (Figs. 12, 13) — so a
// long-lived flepd must export exactly those signals live.
//
// Instruments are nil-safe: every method on a nil *Counter, *Gauge, or
// *Histogram is a no-op, so instrumented components run un-instrumented
// (tests, one-shot experiments) without guards at each call site.
//
// Histograms take observations in seconds. Because the simulator runs on
// a virtual clock whose interesting spans range from sub-microsecond
// drain latencies to multi-second epochs, the default bucket layout
// (DurationBuckets) is exponential from 1µs to ~30s.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add increases the counter by n (negative n panics: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	if n < 0 {
		panic(fmt.Sprintf("obs: counter decrement %d", n))
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a cumulative-bucket distribution of float64 observations
// (seconds, for time histograms). Observe is entirely atomic — no mutex —
// so the daemon's event loop can record per-event distributions (queue
// wait, admission wait, drain latency) without ever contending with
// scrapes or other goroutines.
type Histogram struct {
	bounds  []float64       // upper bucket bounds, ascending; +Inf implicit; immutable
	counts  []atomic.Uint64 // per-bucket (non-cumulative) counts; len(bounds)+1
	sumBits atomic.Uint64   // float64 bits of the running sum, CAS-updated
	samples atomic.Uint64
}

// Observe records one sample. Lock-free: the total-sample count is bumped
// before the bucket so a concurrent scrape never renders a finite bucket
// above the +Inf line (cumulative buckets stay monotone mid-flight; the
// counts reconcile exactly once writers are at rest).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.samples.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			break
		}
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.samples.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// snapshot returns cumulative bucket counts aligned with bounds plus the
// +Inf bucket, and the sum/count pair. The fields are read individually —
// a snapshot taken while writers are active may be a few observations
// out of sync across buckets, but is exact at rest (the state every
// reconciliation test scrapes in).
func (h *Histogram) snapshot() (bounds []float64, cumulative []uint64, sum float64, count uint64) {
	cumulative = make([]uint64, len(h.counts))
	acc := uint64(0)
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return h.bounds, cumulative, h.Sum(), h.Count()
}

// DurationBuckets is the default bucket layout for virtual-time
// histograms: exponential powers of ~3.16 (half a decade) from 1µs to
// ~31.6s, covering drain latencies through epoch lengths.
func DurationBuckets() []float64 {
	out := make([]float64, 0, 16)
	for v := 1e-6; v < 32; v *= math.Sqrt(10) {
		out = append(out, v)
	}
	return out
}

// metricKind discriminates exposition TYPE lines.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindHistogram:
		return "histogram"
	case kindCounter:
		return "counter"
	default:
		return "gauge"
	}
}

// metric is one registered instrument with its identity.
type metric struct {
	name   string
	help   string
	kind   metricKind
	labels string // rendered {k="v",...} or ""

	counter   *Counter
	gauge     *Gauge
	gaugeFunc func() float64
	hist      *Histogram
}

// Registry holds registered instruments and renders them as Prometheus
// text. Registration is idempotent: asking for the same (name, labels)
// twice returns the same instrument. The zero value is NOT usable; call
// NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	index   map[string]*metric // name + labels → metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[string]*metric{}}
}

// renderLabels turns ("mode", "temporal", "sm", "3") pairs into a
// deterministic {mode="temporal",sm="3"} string.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label pairs %v", pairs))
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// register finds or creates the (name, labels) metric. A kind clash on an
// existing name is a programming error and panics.
func (r *Registry) register(name, help string, kind metricKind, labels []string) *metric {
	if r == nil {
		return nil
	}
	ls := renderLabels(labels)
	key := name + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.index[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: %s re-registered as %v (was %v)", key, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind, labels: ls}
	r.metrics = append(r.metrics, m)
	r.index[key] = m
	return m
}

// Counter registers (or finds) a counter. Optional label pairs
// ("key", "value", ...) distinguish family members.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	m := r.register(name, help, kindCounter, labels)
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.register(name, help, kindGauge, labels)
	if m.gauge == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time. fn must be safe to call from the scraping goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	m := r.register(name, help, kindGaugeFunc, labels)
	m.gaugeFunc = fn
}

// Histogram registers (or finds) a histogram over the bucket bounds
// (ascending upper bounds; nil = DurationBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	m := r.register(name, help, kindHistogram, labels)
	if m.hist == nil {
		if bounds == nil {
			bounds = DurationBuckets()
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %s bounds not ascending at %d", name, i))
			}
		}
		m.hist = &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	}
	return m.hist
}

// formatFloat renders a sample value the way Prometheus expects:
// integers without a decimal point, +Inf spelled out.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), grouped by family with one
// HELP/TYPE header each. Optional extra label pairs ("device", "3", ...)
// are injected into every emitted sample, so several registries can be
// rendered into one exposition distinguished by a shard label.
func (r *Registry) WritePrometheus(w io.Writer, extraLabels ...string) error {
	if r == nil {
		return nil
	}
	extra := innerLabels(renderLabels(extraLabels))
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()

	sort.SliceStable(metrics, func(i, j int) bool {
		if metrics[i].name != metrics[j].name {
			return metrics[i].name < metrics[j].name
		}
		return metrics[i].labels < metrics[j].labels
	})

	lastFamily := ""
	for _, m := range metrics {
		if m.name != lastFamily {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
				m.name, m.help, m.name, m.kind); err != nil {
				return err
			}
			lastFamily = m.name
		}
		labels := mergeLabels(m.labels, extra)
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", m.name, labels, m.counter.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s%s %s\n", m.name, labels, formatFloat(m.gauge.Value()))
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "%s%s %s\n", m.name, labels, formatFloat(m.gaugeFunc()))
		case kindHistogram:
			err = writeHistogram(w, m, labels)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// innerLabels strips the braces off a rendered label set.
func innerLabels(rendered string) string {
	return strings.TrimSuffix(strings.TrimPrefix(rendered, "{"), "}")
}

// mergeLabels injects extra (braceless) pairs into a rendered label set.
func mergeLabels(rendered, extra string) string {
	if extra == "" {
		return rendered
	}
	if inner := innerLabels(rendered); inner != "" {
		return "{" + extra + "," + inner + "}"
	}
	return "{" + extra + "}"
}

// writeHistogram renders one histogram's bucket/sum/count series under the
// already-merged label set.
func writeHistogram(w io.Writer, m *metric, labels string) error {
	bounds, cumulative, sum, count := m.hist.snapshot()
	// Merge the le label into any existing label set.
	inner := innerLabels(labels)
	for i, b := range bounds {
		ls := fmt.Sprintf(`le="%s"`, formatFloat(b))
		if inner != "" {
			ls = inner + "," + ls
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", m.name, ls, cumulative[i]); err != nil {
			return err
		}
	}
	ls := `le="+Inf"`
	if inner != "" {
		ls = inner + "," + ls
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", m.name, ls, count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", m.name, labels, sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, labels, count)
	return err
}
