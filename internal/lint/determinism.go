package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"flep/internal/lint/analysis"
)

// deterministicPkgs are the packages whose outputs must be a pure
// function of (trace, config, seed): everything a replay Summary or a
// what-if cell is computed from. A wall-clock read or a global-rand
// draw anywhere in here can silently break the byte-identical replay
// contract, so those calls are banned outright; the server/daemon
// boundary (cmd/, internal/server) stays free to read real time.
var deterministicPkgs = []string{
	"flep/internal/core",
	"flep/internal/gpu",
	"flep/internal/sim",
	"flep/internal/flepruntime",
	"flep/internal/perfmodel",
	"flep/internal/trace",
	"flep/internal/replay",
}

// inDeterministicScope matches a package or any package beneath it, so
// fixture packages under e.g. flep/internal/sim/... are exercised too.
func inDeterministicScope(path string) bool {
	for _, p := range deterministicPkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// wallClockFuncs are the package time functions that read the real
// clock (or arm real timers). Duration arithmetic and constants stay
// legal — the virtual clock's currency is time.Duration.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true, "Sleep": true,
}

// globalRandFuncs are the math/rand (and v2) package-level functions
// backed by the process-global source. Constructing a seeded
// *rand.Rand (rand.New, rand.NewSource) is the sanctioned pattern and
// is not listed.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
	// math/rand/v2 spellings.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true,
	"Uint64N": true, "N": true,
}

// envFuncs are the os environment reads that make behavior depend on
// ambient process state.
var envFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "ExpandEnv": true,
}

// DeterminismAnalyzer forbids wall-clock reads, global/unseeded
// math/rand, and environment-dependent behavior inside the
// deterministic packages.
var DeterminismAnalyzer = &analysis.Analyzer{
	Name:       "determinism",
	Doc:        "forbid wall clocks, global rand, and env reads in deterministic packages",
	Categories: []string{"wallclock", "rand", "env"},
	Run:        runDeterminism,
}

func runDeterminism(pass *analysis.Pass) (any, error) {
	if !inDeterministicScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		// The contract binds production code: only what runs during a
		// replay must be clock-free. Tests pace goroutines and stamp
		// tempdirs freely (they are only reached via `go vet`, which
		// includes test files; the standalone loader does not).
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(), "wallclock",
						"time.%s reads the wall clock in deterministic package %s; thread the virtual clock (sim.Engine.Now) or inject it from the daemon boundary",
						fn.Name(), pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(), "rand",
						"rand.%s draws from the process-global source in deterministic package %s; use a seeded *rand.Rand (rand.New(rand.NewSource(seed)))",
						fn.Name(), pass.Pkg.Path())
				}
			case "os":
				if envFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(), "env",
						"os.%s makes deterministic package %s depend on ambient environment; take the value as explicit configuration",
						fn.Name(), pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil, nil
}
