package cudalite

import (
	"fmt"
	"strings"
)

// SyntaxError is a lexing or parsing error with a source position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer turns MiniCUDA source into tokens. Comments (// and /* */) are
// skipped. The lexer is used by the parser but is exported for tools that
// only need token streams (e.g. resource-usage scanning).
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the entire source, excluding the trailing EOF token.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == EOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &SyntaxError{start, "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

func (l *Lexer) pos() Pos { return Pos{l.line, l.col} }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token, or an EOF token at end of input.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && (isIdentStart(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		text := l.src[start:l.off]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: pos}, nil
	case isDigit(c) || (c == '.' && isDigit(l.peek2())):
		return l.lexNumber(pos)
	case c == '"':
		return l.lexString(pos)
	}
	return l.lexOperator(pos)
}

func (l *Lexer) lexNumber(pos Pos) (Token, error) {
	start := l.off
	isFloat := false
	// Hex literals.
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
		return Token{Kind: INTLIT, Text: l.src[start:l.off], Pos: pos}, nil
	}
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.off
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if isDigit(l.peek()) {
			isFloat = true
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		} else {
			// Not an exponent; back out (e.g. "1else" is 1, then ident).
			l.off = save
		}
	}
	// Float suffix 'f' as in 0.5f.
	if l.peek() == 'f' || l.peek() == 'F' {
		isFloat = true
		l.advance()
	}
	text := l.src[start:l.off]
	kind := INTLIT
	if isFloat {
		kind = FLOATLIT
		text = strings.TrimSuffix(strings.TrimSuffix(text, "f"), "F")
	}
	return Token{Kind: kind, Text: text, Pos: pos}, nil
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *Lexer) lexString(pos Pos) (Token, error) {
	l.advance() // opening quote
	var sb strings.Builder
	for l.off < len(l.src) {
		c := l.advance()
		switch c {
		case '"':
			return Token{Kind: STRINGLIT, Text: sb.String(), Pos: pos}, nil
		case '\\':
			if l.off >= len(l.src) {
				return Token{}, &SyntaxError{pos, "unterminated string"}
			}
			e := l.advance()
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\', '"':
				sb.WriteByte(e)
			default:
				return Token{}, &SyntaxError{pos, fmt.Sprintf("bad escape \\%c", e)}
			}
		default:
			sb.WriteByte(c)
		}
	}
	return Token{}, &SyntaxError{pos, "unterminated string"}
}

// two and three character operator tables, checked longest-first.
var threeCharOps = map[string]Kind{
	"<<<": LaunchOpen,
	">>>": LaunchClose,
}

var twoCharOps = map[string]Kind{
	"+=": PlusAssign, "-=": MinusAssign, "*=": StarAssign, "/=": SlashAssign,
	"++": Inc, "--": Dec,
	"<=": Le, ">=": Ge, "==": Eq, "!=": Ne,
	"&&": AndAnd, "||": OrOr, "<<": Shl, ">>": Shr,
}

var oneCharOps = map[byte]Kind{
	'(': LParen, ')': RParen, '{': LBrace, '}': RBrace,
	'[': LBracket, ']': RBracket, ';': Semicolon, ',': Comma, '.': Dot,
	'?': Question, ':': Colon, '=': AssignTok,
	'+': Plus, '-': Minus, '*': Star, '/': Slash, '%': Percent,
	'<': Lt, '>': Gt, '!': Not, '&': Amp, '|': Pipe, '^': Caret, '~': Tilde,
}

func (l *Lexer) lexOperator(pos Pos) (Token, error) {
	if l.off+3 <= len(l.src) {
		if k, ok := threeCharOps[l.src[l.off:l.off+3]]; ok {
			l.advance()
			l.advance()
			l.advance()
			return Token{Kind: k, Text: kindNames[k], Pos: pos}, nil
		}
	}
	if l.off+2 <= len(l.src) {
		if k, ok := twoCharOps[l.src[l.off:l.off+2]]; ok {
			l.advance()
			l.advance()
			return Token{Kind: k, Text: kindNames[k], Pos: pos}, nil
		}
	}
	c := l.peek()
	if k, ok := oneCharOps[c]; ok {
		l.advance()
		return Token{Kind: k, Text: kindNames[k], Pos: pos}, nil
	}
	return Token{}, &SyntaxError{pos, fmt.Sprintf("unexpected character %q", c)}
}
