package replay

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"flep/internal/workload"
)

// The shared two-tenant contention mix: a latency-critical tenant
// submitting small VA launches at high priority against a batch tenant
// whose large CFD launches oversubscribe the device. One replayer is
// built once (the offline phase dominates) and shared read-only.
var (
	mixOnce sync.Once
	mixTr   *Trace
	mixRp   *Replayer
	mixErr  error
)

func mixTenants() []MixTenant {
	return []MixTenant{
		{Client: "latency", Bench: "VA", Class: "small", Priority: 2, Period: 2 * time.Millisecond, Count: 60},
		{Client: "batch", Bench: "CFD", Class: "large", Priority: 1, Period: 8 * time.Millisecond, Count: 15},
	}
}

func mixReplayer(t *testing.T) (*Trace, *Replayer) {
	t.Helper()
	mixOnce.Do(func() {
		mixTr, mixErr = SynthesizeMix(mixTenants(), 7)
		if mixErr != nil {
			return
		}
		mixRp, mixErr = NewReplayer(mixTr, ReplayerOptions{})
	})
	if mixErr != nil {
		t.Fatalf("building mix replayer: %v", mixErr)
	}
	return mixTr, mixRp
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// Determinism contract: the same trace, configuration, and seed produce
// byte-identical summary JSON — across repeated runs of one replayer and
// across independently built replayers.
func TestReplaySummaryByteIdentical(t *testing.T) {
	tr, rp := mixReplayer(t)
	cfg := ReplayConfig{Policy: "hpf", Seed: 42}
	s1, err := rp.Run(cfg)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	s2, err := rp.Run(cfg)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if b1, b2 := mustJSON(t, s1), mustJSON(t, s2); !bytes.Equal(b1, b2) {
		t.Fatalf("same replayer, same config: summaries differ\n%s\n%s", b1, b2)
	}

	rp2, err := NewReplayer(tr, ReplayerOptions{})
	if err != nil {
		t.Fatalf("second replayer: %v", err)
	}
	s3, err := rp2.Run(cfg)
	if err != nil {
		t.Fatalf("run 3: %v", err)
	}
	if b1, b3 := mustJSON(t, s1), mustJSON(t, s3); !bytes.Equal(b1, b3) {
		t.Fatalf("independent replayers disagree\n%s\n%s", b1, b3)
	}

	if s1.Completed != len(tr.Records) {
		t.Fatalf("completed %d of %d records", s1.Completed, len(tr.Records))
	}
	if s1.SubmitErrors != 0 {
		t.Fatalf("submit errors: %d", s1.SubmitErrors)
	}
	// And so does the synthesized trace itself.
	tr2, err := SynthesizeMix(mixTenants(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, tr.Records), mustJSON(t, tr2.Records)) {
		t.Fatal("SynthesizeMix is not deterministic for a fixed seed")
	}
}

// The acceptance scenario: on a mixed two-tenant trace the advisor must
// reproduce the paper's shape — HPF beats non-preemptive FIFO on
// high-priority ANTT, FFS beats HPF on fairness, and the report states
// the crossover.
func TestWhatIfPaperShapedOrdering(t *testing.T) {
	_, rp := mixReplayer(t)
	cmp, err := rp.WhatIf(Matrix{Seed: 7})
	if err != nil {
		t.Fatalf("WhatIf: %v", err)
	}
	byPolicy := map[string]*Summary{}
	for i := range cmp.Cells {
		byPolicy[cmp.Cells[i].Policy] = cmp.Cells[i].Summary
	}
	hpf, ffs, fifo := byPolicy["hpf"], byPolicy["ffs"], byPolicy["fifo"]
	if hpf == nil || ffs == nil || fifo == nil {
		t.Fatalf("default matrix missing a policy: %v", cmp.Ranking)
	}
	if hpf.HighPrioANTT <= 0 || fifo.HighPrioANTT <= 0 {
		t.Fatalf("degenerate ANTT: hpf=%v fifo=%v", hpf.HighPrioANTT, fifo.HighPrioANTT)
	}
	if hpf.HighPrioANTT >= fifo.HighPrioANTT {
		t.Fatalf("HPF high-prio ANTT %.3f not better than FIFO %.3f",
			hpf.HighPrioANTT, fifo.HighPrioANTT)
	}
	if ffs.Fairness <= hpf.Fairness {
		t.Fatalf("FFS fairness %.3f not better than HPF %.3f", ffs.Fairness, hpf.Fairness)
	}
	if fifo.Preemptions != 0 {
		t.Fatalf("non-preemptive baseline preempted %d times", fifo.Preemptions)
	}
	if hpf.Preemptions == 0 {
		t.Fatal("HPF never preempted on a contended trace")
	}
	var crossover bool
	for _, f := range cmp.Findings {
		if strings.HasPrefix(f, "Crossover:") {
			crossover = true
		}
	}
	if !crossover {
		t.Fatalf("report does not state the crossover; findings: %q", cmp.Findings)
	}
	if cmp.Recommendation == "" || len(cmp.Ranking) != len(cmp.Cells) {
		t.Fatalf("incomplete report: rec=%q ranking=%v", cmp.Recommendation, cmp.Ranking)
	}

	// The full comparison is itself deterministic.
	cmp2, err := rp.WhatIf(Matrix{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, cmp), mustJSON(t, cmp2)) {
		t.Fatal("what-if comparison not byte-identical across runs")
	}
}

// Exported predictors round-trip bit-identically, so a replayer warmed
// with them reproduces the exporting system's Te estimates exactly: the
// warm replay's summary equals the cold one byte for byte, with zero Te
// divergence.
func TestWarmModelReplayMatchesCold(t *testing.T) {
	tr, rp := mixReplayer(t)
	path := filepath.Join(t.TempDir(), "models.json")
	if err := SaveModels(path, rp.System(), tr.Benchmarks()); err != nil {
		t.Fatalf("SaveModels: %v", err)
	}
	models, err := LoadModels(path)
	if err != nil {
		t.Fatalf("LoadModels: %v", err)
	}
	for _, name := range tr.Benchmarks() {
		if models[name] == nil {
			t.Fatalf("export lacks model for %s", name)
		}
	}

	warm, err := NewReplayer(tr, ReplayerOptions{Models: models})
	if err != nil {
		t.Fatalf("warm replayer: %v", err)
	}
	cfg := ReplayConfig{Policy: "hpf", Seed: 7}
	cold, err := rp.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := warm.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Divergence.TePrediction != 0 {
		t.Fatalf("warm replay diverged on %d Te predictions", hot.Divergence.TePrediction)
	}
	if b1, b2 := mustJSON(t, cold), mustJSON(t, hot); !bytes.Equal(b1, b2) {
		t.Fatalf("warm summary differs from cold\n%s\n%s", b1, b2)
	}

	if _, err := LoadModels(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing export loaded")
	}
}

// Timed replay with a different device count than recorded: the trace
// routes across the fleet deterministically per seed.
func TestTimedReplayAcrossMoreDevices(t *testing.T) {
	tr, rp := mixReplayer(t)
	cfg := ReplayConfig{Policy: "hpf", Devices: 2, Seed: 3}
	s1, err := rp.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Mode != ModeTimed || s1.Devices != 2 {
		t.Fatalf("mode=%s devices=%d, want timed/2", s1.Mode, s1.Devices)
	}
	if s1.Completed != len(tr.Records) {
		t.Fatalf("completed %d of %d", s1.Completed, len(tr.Records))
	}
	s2, err := rp.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, s1), mustJSON(t, s2)) {
		t.Fatal("multi-device timed replay not deterministic")
	}
}

func TestReplayRejectsUnknownPolicy(t *testing.T) {
	_, rp := mixReplayer(t)
	_, err := rp.Run(ReplayConfig{Policy: "lottery"})
	if err == nil || !strings.Contains(err.Error(), `unknown policy "lottery"`) {
		t.Fatalf("err = %v", err)
	}
}

// The scenario adapters: a synthesized trace converts to a scripted
// scenario and back without losing the replay-critical fields, and
// closed-loop scenarios are rejected with a pointed error.
func TestScenarioAdapters(t *testing.T) {
	tr, _ := mixReplayer(t)
	sc, err := tr.ToScenario("mix")
	if err != nil {
		t.Fatalf("ToScenario: %v", err)
	}
	if len(sc.Items) != len(tr.Records) {
		t.Fatalf("scenario has %d items, trace %d records", len(sc.Items), len(tr.Records))
	}
	back, err := FromScenario(sc, 7)
	if err != nil {
		t.Fatalf("FromScenario: %v", err)
	}
	if len(back.Records) != len(tr.Records) {
		t.Fatalf("round-trip lost records: %d vs %d", len(back.Records), len(tr.Records))
	}
	for i, r := range back.Records {
		orig := tr.Records[i] // both sides sort by (At, Seq)
		if r.At != orig.At || r.Bench != orig.Bench || r.Class != orig.Class || r.Priority != orig.Priority {
			t.Fatalf("record %d mangled: %+v vs %+v", i, r, orig)
		}
	}

	b := sc.Items[0].Bench
	_, err = FromScenario(workload.Scenario{Name: "loop", Items: []workload.Item{{Bench: b, Loop: true}}}, 1)
	if err == nil || !strings.Contains(err.Error(), "closed-loop") {
		t.Fatalf("closed-loop scenario not rejected: %v", err)
	}
}

// WriteFile persists a synthesized trace that loads back identically —
// the flepreplay record → replay path.
func TestTraceWriteFileRoundTrip(t *testing.T) {
	tr, _ := mixReplayer(t)
	path := filepath.Join(t.TempDir(), "mix.trace")
	if err := tr.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Header.Source != SourceScenario || got.Header.Seed != 7 {
		t.Fatalf("header mangled: %+v", got.Header)
	}
	for i := range tr.Records {
		a, b := tr.Records[i], got.Records[i]
		a.Wall, b.Wall = 0, 0 // recorder stamps wall offsets; ignore
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("record %d: %+v vs %+v", i, a, b)
		}
	}
}

// modelTrace hand-builds a timed-mode trace carrying two instances of a
// three-stage chain model (the terminal stage deadline-bearing) plus one
// plain launch, the shape a flepload -model run records.
func modelTrace() *Trace {
	tr := &Trace{Header: Header{
		Magic: true, TraceVersion: Version, Source: SourceFlepload,
		Policy: "edf", Benchmarks: []string{"MM", "VA"}, Seed: 11,
	}}
	ms := int64(time.Millisecond)
	seq := int64(0)
	add := func(at int64, client, bench, graph, stage string, after []string, deadline int64) {
		seq++
		rec := Record{
			Seq: seq, At: at, Device: -1,
			Client: client, Bench: bench, Class: "small", Priority: 1,
			GraphID: graph, Stage: stage, After: after,
		}
		if graph != "" {
			rec.Model = "toy"
		}
		if deadline > 0 {
			rec.DeadlineNS, rec.SLOClass, rec.Priority = deadline, "latency", 2
		}
		tr.Records = append(tr.Records, rec)
	}
	budget := int64(2 * time.Second)
	add(0, "lc", "VA", "g1", "a", nil, 0)
	add(ms/2, "be", "VA", "", "", nil, 0)
	add(ms, "lc", "MM", "g1", "b", []string{"a"}, 0)
	add(2*ms, "lc", "VA", "g1", "c", []string{"b"}, budget)
	add(3*ms, "lc", "VA", "g2", "a", nil, 0)
	add(4*ms, "lc", "MM", "g2", "b", []string{"a"}, 0)
	add(5*ms, "lc", "VA", "g2", "c", []string{"b"}, budget)
	return tr
}

// A deadline-bearing model trace replays byte-identically — across runs
// of one replayer and across independently built replayers — with stage
// dependencies honored (zero dependency divergence) and the per-model
// rows populated.
func TestModelTraceReplayByteIdentical(t *testing.T) {
	tr := modelTrace()
	rp, err := NewReplayer(tr, ReplayerOptions{})
	if err != nil {
		t.Fatalf("replayer: %v", err)
	}
	cfg := ReplayConfig{Policy: "edf", Seed: 11}
	s1, err := rp.Run(cfg)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	s2, err := rp.Run(cfg)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if b1, b2 := mustJSON(t, s1), mustJSON(t, s2); !bytes.Equal(b1, b2) {
		t.Fatalf("same replayer, same config: summaries differ\n%s\n%s", b1, b2)
	}
	rp2, err := NewReplayer(modelTrace(), ReplayerOptions{})
	if err != nil {
		t.Fatalf("second replayer: %v", err)
	}
	s3, err := rp2.Run(cfg)
	if err != nil {
		t.Fatalf("run 3: %v", err)
	}
	if b1, b3 := mustJSON(t, s1), mustJSON(t, s3); !bytes.Equal(b1, b3) {
		t.Fatalf("independent replayers disagree\n%s\n%s", b1, b3)
	}

	if s1.Completed != len(tr.Records) || s1.SubmitErrors != 0 {
		t.Fatalf("completed %d of %d, submit errors %d", s1.Completed, len(tr.Records), s1.SubmitErrors)
	}
	if s1.Divergence.Dependency != 0 {
		t.Fatalf("dependency divergence on an in-order trace: %d", s1.Divergence.Dependency)
	}
	if len(s1.Models) != 1 {
		t.Fatalf("models = %+v, want one row", s1.Models)
	}
	m := s1.Models[0]
	if m.Model != "toy" || m.Graphs != 2 || m.GraphsCompleted != 2 ||
		m.StagesCompleted != 6 || m.StagesCanceled != 0 {
		t.Fatalf("toy row = %+v", m)
	}
	if m.SLOAttained+m.SLOMissed != 2 {
		t.Fatalf("deadline-bearing terminal stages not tracked: %+v", m)
	}
	if m.MeanMakespanNS <= 0 {
		t.Fatalf("makespan not positive: %+v", m)
	}

	var text bytes.Buffer
	s1.RenderText(&text)
	if !strings.Contains(text.String(), "model toy") {
		t.Fatalf("text report lacks the model row:\n%s", text.String())
	}

	// The trace itself round-trips through disk and still carries the
	// graph coordinates.
	path := filepath.Join(t.TempDir(), "model.trace")
	if err := tr.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(tr.Records, got.Records) {
		t.Fatalf("records mangled on disk round-trip")
	}
}
