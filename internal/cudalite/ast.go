package cudalite

// This file defines the MiniCUDA abstract syntax tree. Nodes carry the
// position of their first token for diagnostics. The tree is mutable on
// purpose: the FLEP transform (internal/transform) rewrites cloned trees.

// Node is the interface implemented by every AST node.
type Node interface {
	NodePos() Pos
}

// FuncQual is a CUDA function qualifier.
type FuncQual int

// Function qualifiers.
const (
	QualHost   FuncQual = iota // no qualifier: host function
	QualGlobal                 // __global__: kernel
	QualDevice                 // __device__: device helper
)

// String returns the CUDA spelling of the qualifier ("" for host).
func (q FuncQual) String() string {
	switch q {
	case QualGlobal:
		return "__global__"
	case QualDevice:
		return "__device__"
	default:
		return ""
	}
}

// BaseType is a scalar MiniCUDA type.
type BaseType int

// Base types.
const (
	TVoid BaseType = iota
	TInt
	TUInt
	TFloat
	TBool
)

// String returns the C spelling of the base type.
func (b BaseType) String() string {
	switch b {
	case TVoid:
		return "void"
	case TInt:
		return "int"
	case TUInt:
		return "unsigned int"
	case TFloat:
		return "float"
	case TBool:
		return "bool"
	default:
		return "?"
	}
}

// Type is a possibly-qualified, possibly-pointer MiniCUDA type.
type Type struct {
	Base     BaseType
	Ptr      int // pointer depth: float* has Ptr 1
	Const    bool
	Volatile bool
}

// IsPointer reports whether the type is a pointer type.
func (t Type) IsPointer() bool { return t.Ptr > 0 }

// Elem returns the pointed-to type (one level removed).
func (t Type) Elem() Type { t.Ptr--; return t }

// String returns the C spelling of the type.
func (t Type) String() string {
	s := ""
	if t.Const {
		s += "const "
	}
	if t.Volatile {
		s += "volatile "
	}
	s += t.Base.String()
	for i := 0; i < t.Ptr; i++ {
		s += "*"
	}
	return s
}

// Program is a parsed MiniCUDA translation unit.
type Program struct {
	Funcs []*FuncDecl
}

// Kernel returns the __global__ function named name, or nil.
func (p *Program) Kernel(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name && f.Qual == QualGlobal {
			return f
		}
	}
	return nil
}

// Func returns the function named name regardless of qualifier, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Param is one function parameter.
type Param struct {
	Type Type
	Name string
	Pos  Pos
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Qual   FuncQual
	Ret    Type
	Name   string
	Params []*Param
	Body   *Block
	Pos    Pos
}

// NodePos returns the declaration position.
func (f *FuncDecl) NodePos() Pos { return f.Pos }

// ---- Statements ----

// Stmt is any MiniCUDA statement.
type Stmt interface {
	Node
	stmtNode()
}

// Block is a { ... } statement list.
type Block struct {
	Stmts []Stmt
	Pos   Pos
}

// Declarator is one name in a declaration statement, with optional fixed
// array size (ArrayLen non-nil) and optional initializer.
type Declarator struct {
	Name     string
	ArrayLen Expr // nil unless "name[len]"
	Init     Expr // nil if uninitialized
	Pos      Pos
}

// DeclStmt declares one or more variables of a common type.
// Shared marks __shared__ (per-CTA) storage.
type DeclStmt struct {
	Shared bool
	Type   Type
	Decls  []*Declarator
	Pos    Pos
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// IfStmt is if (Cond) Then [else Else].
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // nil if absent
	Pos  Pos
}

// ForStmt is for (Init; Cond; Post) Body. Any of Init/Cond/Post may be nil.
type ForStmt struct {
	Init Stmt // DeclStmt or ExprStmt
	Cond Expr
	Post Expr
	Body Stmt
	Pos  Pos
}

// WhileStmt is while (Cond) Body.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Pos  Pos
}

// ReturnStmt returns from the enclosing function, optionally with a value.
type ReturnStmt struct {
	X   Expr // nil for bare return
	Pos Pos
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

// LaunchStmt is a host-side kernel launch: Kernel<<<Grid, Block[, Shmem]>>>(Args).
type LaunchStmt struct {
	Kernel string
	Grid   Expr
	Block  Expr
	Shmem  Expr // nil if absent
	Args   []Expr
	Pos    Pos
}

func (*Block) stmtNode()        {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*LaunchStmt) stmtNode()   {}

// NodePos implementations for statements.
func (s *Block) NodePos() Pos        { return s.Pos }
func (s *DeclStmt) NodePos() Pos     { return s.Pos }
func (s *ExprStmt) NodePos() Pos     { return s.Pos }
func (s *IfStmt) NodePos() Pos       { return s.Pos }
func (s *ForStmt) NodePos() Pos      { return s.Pos }
func (s *WhileStmt) NodePos() Pos    { return s.Pos }
func (s *ReturnStmt) NodePos() Pos   { return s.Pos }
func (s *BreakStmt) NodePos() Pos    { return s.Pos }
func (s *ContinueStmt) NodePos() Pos { return s.Pos }
func (s *LaunchStmt) NodePos() Pos   { return s.Pos }

// ---- Expressions ----

// Expr is any MiniCUDA expression.
type Expr interface {
	Node
	exprNode()
}

// Op identifies a unary, binary, or assignment operator.
type Op int

// Operators. Assignment ops reuse the token spelling.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpLt
	OpGt
	OpLe
	OpGe
	OpEq
	OpNe
	OpAnd // &&
	OpOr  // ||
	OpBitAnd
	OpBitOr
	OpBitXor
	OpShl
	OpShr

	OpNeg    // unary -
	OpNot    // unary !
	OpBitNot // unary ~
	OpDeref  // unary *
	OpAddr   // unary &
	OpPreInc
	OpPreDec
	OpPostInc
	OpPostDec

	OpAssign
	OpAddAssign
	OpSubAssign
	OpMulAssign
	OpDivAssign
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpRem: "%",
	OpLt: "<", OpGt: ">", OpLe: "<=", OpGe: ">=", OpEq: "==", OpNe: "!=",
	OpAnd: "&&", OpOr: "||",
	OpBitAnd: "&", OpBitOr: "|", OpBitXor: "^", OpShl: "<<", OpShr: ">>",
	OpNeg: "-", OpNot: "!", OpBitNot: "~", OpDeref: "*", OpAddr: "&",
	OpPreInc: "++", OpPreDec: "--", OpPostInc: "++", OpPostDec: "--",
	OpAssign: "=", OpAddAssign: "+=", OpSubAssign: "-=", OpMulAssign: "*=",
	OpDivAssign: "/=",
}

// String returns the C spelling of the operator.
func (o Op) String() string { return opNames[o] }

// Ident is a name reference.
type Ident struct {
	Name string
	Pos  Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Val int64
	Pos Pos
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Val float64
	Pos Pos
}

// BoolLit is true or false.
type BoolLit struct {
	Val bool
	Pos Pos
}

// NullLit is the NULL pointer literal.
type NullLit struct{ Pos Pos }

// StrLit is a string literal (used for kernel names in transformed host
// code; device code has no string type).
type StrLit struct {
	Val string
	Pos Pos
}

// Unary is a prefix operator application (including * and &).
type Unary struct {
	Op  Op
	X   Expr
	Pos Pos
}

// Postfix is x++ or x--.
type Postfix struct {
	Op  Op // OpPostInc or OpPostDec
	X   Expr
	Pos Pos
}

// Binary is a binary operator application.
type Binary struct {
	Op   Op
	L, R Expr
	Pos  Pos
}

// Assign is an assignment expression (=, +=, -=, *=, /=).
type Assign struct {
	Op   Op
	L, R Expr
	Pos  Pos
}

// Cond is the ternary Cond ? Then : Else.
type Cond struct {
	C, T, E Expr
	Pos     Pos
}

// Call is a function or builtin call by name.
type Call struct {
	Fun  string
	Args []Expr
	Pos  Pos
}

// Index is X[Idx].
type Index struct {
	X, Idx Expr
	Pos    Pos
}

// Member is X.Name (used for threadIdx.x and friends).
type Member struct {
	X    Expr
	Name string
	Pos  Pos
}

// Cast is (Type)X.
type Cast struct {
	Type Type
	X    Expr
	Pos  Pos
}

// Paren preserves explicit parentheses for faithful printing.
type Paren struct {
	X   Expr
	Pos Pos
}

func (*Ident) exprNode()    {}
func (*IntLit) exprNode()   {}
func (*FloatLit) exprNode() {}
func (*BoolLit) exprNode()  {}
func (*NullLit) exprNode()  {}
func (*StrLit) exprNode()   {}
func (*Unary) exprNode()    {}
func (*Postfix) exprNode()  {}
func (*Binary) exprNode()   {}
func (*Assign) exprNode()   {}
func (*Cond) exprNode()     {}
func (*Call) exprNode()     {}
func (*Index) exprNode()    {}
func (*Member) exprNode()   {}
func (*Cast) exprNode()     {}
func (*Paren) exprNode()    {}

// NodePos implementations for expressions.
func (e *Ident) NodePos() Pos    { return e.Pos }
func (e *IntLit) NodePos() Pos   { return e.Pos }
func (e *FloatLit) NodePos() Pos { return e.Pos }
func (e *BoolLit) NodePos() Pos  { return e.Pos }
func (e *NullLit) NodePos() Pos  { return e.Pos }
func (e *StrLit) NodePos() Pos   { return e.Pos }
func (e *Unary) NodePos() Pos    { return e.Pos }
func (e *Postfix) NodePos() Pos  { return e.Pos }
func (e *Binary) NodePos() Pos   { return e.Pos }
func (e *Assign) NodePos() Pos   { return e.Pos }
func (e *Cond) NodePos() Pos     { return e.Pos }
func (e *Call) NodePos() Pos     { return e.Pos }
func (e *Index) NodePos() Pos    { return e.Pos }
func (e *Member) NodePos() Pos   { return e.Pos }
func (e *Cast) NodePos() Pos     { return e.Pos }
func (e *Paren) NodePos() Pos    { return e.Pos }
