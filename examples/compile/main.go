// Compiler demo: show all three transformed forms of the paper's Figure 4
// side by side for the vector-add kernel, plus the host-side rewrite.
package main

import (
	"fmt"
	"log"

	"flep"
)

const program = `
__global__ void va(float* a, float* b, float* c, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        c[i] = a[i] + b[i];
    }
}

void main_host(float* a, float* b, float* c, int n) {
    va<<<(n + 255) / 256, 256>>>(a, b, c, n);
}
`

func main() {
	fmt.Println("=== original program ===")
	fmt.Print(program)

	for _, m := range []struct {
		mode flep.TransformMode
		name string
		desc string
	}{
		{flep.TemporalNaive, "Figure 4(a): naive temporal", "polls temp_P before every task"},
		{flep.Temporal, "Figure 4(b): amortized temporal", "polls once per L tasks"},
		{flep.Spatial, "Figure 4(c): spatial", "CTAs on SMs below *spa_P yield; others keep running"},
	} {
		out, err := flep.TransformSource(program, m.mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s — %s ===\n", m.name, m.desc)
		fmt.Println(out)
	}
}
