package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"flep/internal/lint/analysis"
)

// MetricHygieneAnalyzer enforces the obs registry's naming and
// registration contract:
//
//   - metric names must be string literals matching flep_[a-z_]+ —
//     Grafana dashboards and the PromQL in DESIGN.md reference names
//     textually, so a computed name is an invisible dashboard break
//     (category metricname);
//   - label keys must be [a-z_]+ literals and label values must be
//     literals too — an unvalidated dynamic value (session ID, error
//     string) is a cardinality explosion (category metriclabel;
//     annotate when the value is drawn from a small closed set);
//   - a metric family must be registered coherently: one instrument
//     kind and one help string per name, and no two sites registering
//     the identical (name, labels) series (category metricdup, checked
//     across packages via the Finish hook).
var MetricHygieneAnalyzer = &analysis.Analyzer{
	Name:       "metrichygiene",
	Doc:        "enforce obs metric naming, literal labels, and one-kind-one-help families",
	Categories: []string{"metricname", "metriclabel", "metricdup"},
	Run:        runMetricHygiene,
	Finish:     finishMetricHygiene,
}

var (
	metricNameRE = regexp.MustCompile(`^flep_[a-z_]+$`)
	labelKeyRE   = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)
)

// registryMethods maps the obs.Registry registration methods to the
// argument index where label pairs start (after name, help, and any
// mid arguments: fn for GaugeFunc, bounds for Histogram).
var registryMethods = map[string]int{
	"Counter":   2,
	"Gauge":     2,
	"GaugeFunc": 3,
	"Histogram": 3,
}

// metricReg is one registration site, collected for the cross-package
// family check. Labels is the rendered literal pair list; LabelsOK is
// false when any part was non-literal, which disables the exact-series
// dup check for that site (the metriclabel diagnostic already fired
// there).
type metricReg struct {
	Name     string
	Kind     string
	Help     string
	Labels   string
	LabelsOK bool
	Pos      token.Pos
}

func runMetricHygiene(pass *analysis.Pass) (any, error) {
	var regs []metricReg
	for _, f := range pass.Files {
		// The hygiene rules bind production telemetry. The registry's
		// own unit tests register junk names and duplicate families on
		// purpose — that is what they test.
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			labelStart, ok := registryMethods[sel.Sel.Name]
			if !ok || !isObsRegistry(pass.TypesInfo.TypeOf(sel.X)) {
				return true
			}
			if len(call.Args) < labelStart {
				return true // won't compile anyway
			}

			reg := metricReg{Kind: sel.Sel.Name, Pos: call.Pos()}

			// Name: a literal matching the flep_ namespace.
			if name, ok := stringLit(call.Args[0]); ok {
				reg.Name = name
				if !metricNameRE.MatchString(name) {
					pass.Reportf(call.Args[0].Pos(), "metricname",
						"metric name %q does not match flep_[a-z_]+; dashboards key on the flep_ namespace", name)
				}
			} else {
				pass.Reportf(call.Args[0].Pos(), "metricname",
					"metric name passed to %s must be a string literal, not a computed value", sel.Sel.Name)
			}
			reg.Help, _ = stringLit(call.Args[1])

			// Labels: alternating literal key/value pairs.
			if call.Ellipsis.IsValid() {
				pass.Reportf(call.Ellipsis, "metriclabel",
					"labels splatted from a slice cannot be checked for literal keys/values; spell the pairs out")
				regs = append(regs, reg)
				return true
			}
			labelArgs := call.Args[labelStart:]
			var pairs []string
			literal := true
			for i, arg := range labelArgs {
				s, isLit := stringLit(arg)
				if i%2 == 0 { // key
					if !isLit {
						literal = false
						pass.Reportf(arg.Pos(), "metriclabel",
							"label key must be a string literal")
					} else if !labelKeyRE.MatchString(s) {
						pass.Reportf(arg.Pos(), "metriclabel",
							"label key %q is not a valid prometheus label name ([a-z_][a-z0-9_]*)", s)
					}
				} else if !isLit { // value
					literal = false
					pass.Reportf(arg.Pos(), "metriclabel",
						"label value is not a literal; dynamic values explode series cardinality (annotate if drawn from a small closed set)")
				}
				if isLit {
					pairs = append(pairs, s)
				}
			}
			if literal {
				reg.Labels = strings.Join(pairs, "\x00")
				reg.LabelsOK = true
			}
			regs = append(regs, reg)
			return true
		})
	}
	if len(regs) == 0 {
		return nil, nil
	}
	return regs, nil
}

// isObsRegistry matches *obs.Registry (by package name + type name, so
// the fixture stub obs package is matched too).
func isObsRegistry(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Name() == "obs" && obj.Name() == "Registry"
}

// stringLit resolves a string constant expression (literals and
// constant idents both qualify — both are greppable).
func stringLit(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.BasicLit:
		if e.Kind == token.STRING {
			s, err := strconv.Unquote(e.Value)
			return s, err == nil
		}
	}
	return "", false
}

// finishMetricHygiene runs after every package: a family (one name)
// must have a single instrument kind, a single help string, and no
// exactly-duplicated (name, labels) registration from distinct sites.
func finishMetricHygiene(results []analysis.Result, report func(analysis.Diagnostic)) {
	families := map[string][]metricReg{}
	for _, res := range results {
		regs, ok := res.Value.([]metricReg)
		if !ok {
			continue
		}
		for _, r := range regs {
			if r.Name == "" {
				continue // non-literal name already diagnosed
			}
			families[r.Name] = append(families[r.Name], r)
		}
	}
	var names []string
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		regs := families[name]
		sort.Slice(regs, func(i, j int) bool { return regs[i].Pos < regs[j].Pos })
		first := regs[0]
		series := map[string]token.Pos{}
		if first.LabelsOK {
			series[first.Labels] = first.Pos
		}
		for _, r := range regs[1:] {
			if r.Kind != first.Kind {
				report(analysis.Diagnostic{Pos: r.Pos, Category: "metricdup",
					Message: "metric " + name + " registered as " + r.Kind +
						" but first registered as " + first.Kind + "; one kind per family"})
				continue
			}
			if r.Help != first.Help {
				report(analysis.Diagnostic{Pos: r.Pos, Category: "metricdup",
					Message: "metric " + name + " registered with a different help string than its first registration; prometheus exposition allows one HELP per family"})
			}
			if !r.LabelsOK {
				continue // dynamic labels: exact-series check not applicable
			}
			if _, dup := series[r.Labels]; dup {
				report(analysis.Diagnostic{Pos: r.Pos, Category: "metricdup",
					Message: "metric series " + name + " with identical labels is registered at more than one site; register once and share the instrument"})
				continue
			}
			series[r.Labels] = r.Pos
		}
	}
}
