package kernels

import (
	"fmt"
	"math/rand"

	cl "flep/internal/cudalite"
)

// DeviceData is a small, interpreter-runnable instance of a benchmark:
// argument values, launch geometry, and the output buffers whose contents
// define the kernel's observable result.
type DeviceData struct {
	Args    []cl.Value
	Grid    cl.Dim3
	Block   cl.Dim3
	Outputs []*cl.Buffer
}

// Clone deep-copies the data so an original and a transformed run can start
// from identical inputs.
func (d *DeviceData) Clone() *DeviceData {
	out := &DeviceData{Grid: d.Grid, Block: d.Block}
	seen := map[*cl.Buffer]*cl.Buffer{}
	cloneBuf := func(b *cl.Buffer) *cl.Buffer {
		if b == nil {
			return nil
		}
		if c, ok := seen[b]; ok {
			return c
		}
		c := &cl.Buffer{Name: b.Name, Kind: b.Kind, Volatile: b.Volatile}
		c.F = append([]float64(nil), b.F...)
		c.I = append([]int64(nil), b.I...)
		seen[b] = c
		return c
	}
	for _, a := range d.Args {
		if a.Kind == cl.KPtr && !a.P.IsNil() {
			out.Args = append(out.Args, cl.PtrValue(cloneBuf(a.P.Buf), a.P.Off))
		} else {
			out.Args = append(out.Args, a)
		}
	}
	for _, b := range d.Outputs {
		out.Outputs = append(out.Outputs, cloneBuf(b))
	}
	return out
}

// MakeData builds a deterministic problem instance of roughly n elements
// for interpreter-level validation. n should stay small (hundreds): the
// interpreter runs real SIMT threads.
func (b *Benchmark) MakeData(n int, seed int64) (*DeviceData, error) {
	if n <= 0 {
		return nil, fmt.Errorf("kernels: MakeData with n=%d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	switch b.Name {
	case "VA":
		return makeVA(n, rng), nil
	case "NN":
		return makeNN(n, rng), nil
	case "SPMV":
		return makeSPMV(n, rng), nil
	case "PL":
		return makePL(n, rng), nil
	case "MD":
		return makeMD(n, rng), nil
	case "MM":
		return makeMM(n, rng), nil
	case "PF":
		return makePF(n, rng), nil
	case "CFD":
		return makeCFD(n, rng), nil
	}
	return nil, fmt.Errorf("kernels: no data generator for %s", b.Name)
}

func floatBuf(name string, n int, rng *rand.Rand, gen func(*rand.Rand) float64) *cl.Buffer {
	b := cl.NewFloatBuffer(name, n)
	for i := range b.F {
		b.F[i] = gen(rng)
	}
	return b
}

func unit(rng *rand.Rand) float64 { return rng.Float64() }

func makeVA(n int, rng *rand.Rand) *DeviceData {
	a := floatBuf("a", n, rng, unit)
	bb := floatBuf("b", n, rng, unit)
	c := cl.NewFloatBuffer("c", n)
	return &DeviceData{
		Args:    []cl.Value{cl.PtrValue(a, 0), cl.PtrValue(bb, 0), cl.PtrValue(c, 0), cl.IntValue(int64(n))},
		Grid:    cl.D1((n + 63) / 64),
		Block:   cl.D1(64),
		Outputs: []*cl.Buffer{c},
	}
}

func makeNN(n int, rng *rand.Rand) *DeviceData {
	loc := floatBuf("locations", 2*n, rng, func(r *rand.Rand) float64 { return r.Float64()*180 - 90 })
	dist := cl.NewFloatBuffer("distances", n)
	return &DeviceData{
		Args: []cl.Value{
			cl.PtrValue(loc, 0), cl.PtrValue(dist, 0), cl.IntValue(int64(n)),
			cl.FloatValue(30.5), cl.FloatValue(-120.25),
		},
		Grid:    cl.D1((n + 63) / 64),
		Block:   cl.D1(64),
		Outputs: []*cl.Buffer{dist},
	}
}

func makeSPMV(rows int, rng *rand.Rand) *DeviceData {
	// CSR matrix with 1..8 non-zeros per row (irregular on purpose).
	rowPtr := cl.NewIntBuffer("rowPtr", rows+1)
	var cols []int64
	var vals []float64
	nnz := 0
	for r := 0; r < rows; r++ {
		rowPtr.I[r] = int64(nnz)
		k := 1 + rng.Intn(8)
		for j := 0; j < k; j++ {
			cols = append(cols, int64(rng.Intn(rows)))
			vals = append(vals, rng.Float64()*2-1)
			nnz++
		}
	}
	rowPtr.I[rows] = int64(nnz)
	colBuf := cl.NewIntBuffer("cols", nnz)
	copy(colBuf.I, cols)
	valBuf := cl.NewFloatBuffer("vals", nnz)
	copy(valBuf.F, vals)
	x := floatBuf("x", rows, rng, unit)
	y := cl.NewFloatBuffer("y", rows)
	return &DeviceData{
		Args: []cl.Value{
			cl.PtrValue(valBuf, 0), cl.PtrValue(colBuf, 0), cl.PtrValue(rowPtr, 0),
			cl.PtrValue(x, 0), cl.PtrValue(y, 0), cl.IntValue(int64(rows)),
		},
		Grid:    cl.D1((rows + 63) / 64),
		Block:   cl.D1(64),
		Outputs: []*cl.Buffer{y},
	}
}

func makePL(n int, rng *rand.Rand) *DeviceData {
	ax := floatBuf("arrayX", n, rng, func(r *rand.Rand) float64 { return r.NormFloat64() })
	ay := floatBuf("arrayY", n, rng, func(r *rand.Rand) float64 { return r.NormFloat64() })
	lk := floatBuf("likelihood", n, rng, unit)
	w := floatBuf("weights", n, rng, func(r *rand.Rand) float64 { return r.Float64() + 0.5 })
	return &DeviceData{
		Args: []cl.Value{
			cl.PtrValue(ax, 0), cl.PtrValue(ay, 0), cl.PtrValue(lk, 0),
			cl.PtrValue(w, 0), cl.IntValue(int64(n)),
		},
		Grid:    cl.D1((n + 63) / 64),
		Block:   cl.D1(64),
		Outputs: []*cl.Buffer{w},
	}
}

func makeMD(n int, rng *rand.Rand) *DeviceData {
	const maxNeighbors = 8
	px := floatBuf("posX", n, rng, func(r *rand.Rand) float64 { return r.Float64() * 10 })
	py := floatBuf("posY", n, rng, func(r *rand.Rand) float64 { return r.Float64() * 10 })
	pz := floatBuf("posZ", n, rng, func(r *rand.Rand) float64 { return r.Float64() * 10 })
	fx := cl.NewFloatBuffer("forceX", n)
	fy := cl.NewFloatBuffer("forceY", n)
	fz := cl.NewFloatBuffer("forceZ", n)
	nb := cl.NewIntBuffer("neighbors", n*maxNeighbors)
	for i := range nb.I {
		nb.I[i] = int64(rng.Intn(n))
	}
	return &DeviceData{
		Args: []cl.Value{
			cl.PtrValue(px, 0), cl.PtrValue(py, 0), cl.PtrValue(pz, 0),
			cl.PtrValue(fx, 0), cl.PtrValue(fy, 0), cl.PtrValue(fz, 0),
			cl.PtrValue(nb, 0), cl.IntValue(maxNeighbors), cl.IntValue(int64(n)),
			cl.FloatValue(16.0), cl.FloatValue(1.5), cl.FloatValue(2.0),
		},
		Grid:    cl.D1((n + 63) / 64),
		Block:   cl.D1(64),
		Outputs: []*cl.Buffer{fx, fy, fz},
	}
}

func makeMM(n int, rng *rand.Rand) *DeviceData {
	// Square n×n with a non-multiple-of-16 size to exercise the guards.
	a := floatBuf("a", n*n, rng, unit)
	bb := floatBuf("b", n*n, rng, unit)
	c := cl.NewFloatBuffer("c", n*n)
	return &DeviceData{
		Args: []cl.Value{
			cl.PtrValue(a, 0), cl.PtrValue(bb, 0), cl.PtrValue(c, 0),
			cl.IntValue(int64(n)), cl.IntValue(int64(n)), cl.IntValue(int64(n)),
		},
		Grid:    cl.D2((n+15)/16, (n+15)/16),
		Block:   cl.D2(16, 16),
		Outputs: []*cl.Buffer{c},
	}
}

func makePF(colsN int, rng *rand.Rand) *DeviceData {
	const rows = 8
	const pyramidHeight = 4
	wall := cl.NewIntBuffer("wall", rows*colsN)
	for i := range wall.I {
		wall.I[i] = int64(rng.Intn(10))
	}
	src := cl.NewIntBuffer("src", colsN)
	for i := range src.I {
		src.I[i] = int64(rng.Intn(10))
	}
	dst := cl.NewIntBuffer("dst", colsN)
	return &DeviceData{
		Args: []cl.Value{
			cl.PtrValue(wall, 0), cl.PtrValue(src, 0), cl.PtrValue(dst, 0),
			cl.IntValue(int64(colsN)), cl.IntValue(rows),
			cl.IntValue(0), cl.IntValue(pyramidHeight),
		},
		Grid:    cl.D1((colsN + 255) / 256),
		Block:   cl.D1(256),
		Outputs: []*cl.Buffer{dst},
	}
}

func makeCFD(n int, rng *rand.Rand) *DeviceData {
	density := floatBuf("density", n, rng, func(r *rand.Rand) float64 { return r.Float64() + 1 })
	momX := floatBuf("momX", n, rng, func(r *rand.Rand) float64 { return r.NormFloat64() })
	momY := floatBuf("momY", n, rng, func(r *rand.Rand) float64 { return r.NormFloat64() })
	momZ := floatBuf("momZ", n, rng, func(r *rand.Rand) float64 { return r.NormFloat64() })
	energy := floatBuf("energy", n, rng, func(r *rand.Rand) float64 { return r.Float64()*5 + 10 })
	nb := cl.NewIntBuffer("neighbors", n*4)
	for i := range nb.I {
		if rng.Intn(8) == 0 {
			nb.I[i] = -1 // boundary face
		} else {
			nb.I[i] = int64(rng.Intn(n))
		}
	}
	nx := floatBuf("normalsX", n*4, rng, func(r *rand.Rand) float64 { return r.NormFloat64() })
	ny := floatBuf("normalsY", n*4, rng, func(r *rand.Rand) float64 { return r.NormFloat64() })
	nz := floatBuf("normalsZ", n*4, rng, func(r *rand.Rand) float64 { return r.NormFloat64() })
	fd := cl.NewFloatBuffer("fluxDensity", n)
	fmx := cl.NewFloatBuffer("fluxMomX", n)
	fmy := cl.NewFloatBuffer("fluxMomY", n)
	fmz := cl.NewFloatBuffer("fluxMomZ", n)
	fe := cl.NewFloatBuffer("fluxEnergy", n)
	return &DeviceData{
		Args: []cl.Value{
			cl.PtrValue(density, 0), cl.PtrValue(momX, 0), cl.PtrValue(momY, 0),
			cl.PtrValue(momZ, 0), cl.PtrValue(energy, 0), cl.PtrValue(nb, 0),
			cl.PtrValue(nx, 0), cl.PtrValue(ny, 0), cl.PtrValue(nz, 0),
			cl.PtrValue(fd, 0), cl.PtrValue(fmx, 0), cl.PtrValue(fmy, 0),
			cl.PtrValue(fmz, 0), cl.PtrValue(fe, 0),
			cl.IntValue(int64(n)), cl.FloatValue(1.4), cl.FloatValue(0.2),
		},
		Grid:    cl.D1((n + 63) / 64),
		Block:   cl.D1(64),
		Outputs: []*cl.Buffer{fd, fmx, fmy, fmz, fe},
	}
}
