// Spatial preemption demo: a trivial high-priority kernel needs only 5 of
// the 15 SMs. Temporal preemption would stop the whole victim; spatial
// preemption yields just those SMs — the victim keeps running on the other
// ten and reclaims the five when the guest finishes. The residency trace
// makes the difference visible.
package main

import (
	"fmt"
	"log"
	"time"

	"flep"
)

func main() {
	sys := flep.NewSystem()
	if err := sys.OfflineAll(); err != nil {
		log.Fatal(err)
	}

	guest, _ := flep.BenchmarkByName("NN")   // trivial input: 40 CTAs → 5 SMs
	victim, _ := flep.BenchmarkByName("CFD") // large input, low priority
	sc := flep.SpatialPair(guest, victim)

	baseline, err := sys.RunMPS(sc)
	if err != nil {
		log.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		spatial bool
	}{
		{"temporal (yield all 15 SMs)", false},
		{"spatial (yield 5 SMs)", true},
	} {
		res, err := sys.RunFLEP(sc, flep.Options{Policy: "hpf", Spatial: mode.spatial, Trace: true})
		if err != nil {
			log.Fatal(err)
		}
		overhead := (res.Makespan - baseline.Makespan).Seconds() / baseline.Makespan.Seconds()
		fmt.Printf("=== %s ===\n", mode.name)
		fmt.Printf("guest NN turnaround: %v, total makespan: %v, preemption overhead: %.2f%%\n",
			res.ResultFor("NN").Turnaround().Round(time.Microsecond),
			res.Makespan.Round(time.Microsecond), overhead*100)
		fmt.Println("residency spans:")
		for _, row := range res.Log.Gantt() {
			fmt.Printf("  %-4s SMs[%2d,%2d)  %12v .. %v\n",
				row.Kernel, row.SMLo, row.SMHi,
				row.Start.Round(time.Microsecond), row.End.Round(time.Microsecond))
		}
		fmt.Println()
	}
	fmt.Println("Note how under spatial preemption CFD never leaves SMs [5,15),")
	fmt.Println("and expands back to [0,15) the moment NN completes.")
}
