package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flep/internal/kernels"
	"flep/internal/obs"
)

// mkLaunchReq builds a pooled request the way serveLaunch does, for
// driving tryEnqueue directly from tests.
func mkLaunchReq(s *Server, client string, deadline time.Duration) *launchReq {
	q := getLaunchReq()
	q.client, q.bench, q.class = client, s.benches["VA"], kernels.Trivial
	q.priority, q.deadline = 1, deadline
	q.enqueuedReal = time.Now()
	return q
}

// TestBestEffortShedGateIsAtomic is the regression test for the
// check-then-send race: the old gate read len(submitCh) before the
// select send, so N racing best-effort handlers could all pass a stale
// check and collectively overshoot the cost-aware share while a deadline
// was outstanding. The CAS'd reservation makes the decision atomic with
// admission: however many goroutines race, total queue occupancy never
// exceeds beLimit while LC work is outstanding.
func TestBestEffortShedGateIsAtomic(t *testing.T) {
	s, _ := newTestServer(t, Config{QueueDepth: 16})
	if err := s.Pause(); err != nil {
		t.Fatal(err)
	}
	// One deadline-bearing launch arms the shed gate (lcOutstanding > 0)
	// and occupies one queued slot.
	if err := s.tryEnqueue(mkLaunchReq(s, "lc", 50*time.Millisecond)); err != nil {
		t.Fatalf("LC enqueue: %v", err)
	}

	const attackers = 64
	var accepted, shed atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < attackers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			q := mkLaunchReq(s, "be", 0)
			switch err := s.tryEnqueue(q); {
			case err == nil:
				accepted.Add(1)
			case errors.Is(err, ErrBestEffortShed) || errors.Is(err, ErrQueueFull):
				shed.Add(1)
				putLaunchReq(q)
			default:
				t.Errorf("unexpected enqueue error: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()

	total := accepted.Load() + 1 // the LC launch holds one slot too
	if total > int64(s.beLimit) {
		t.Fatalf("concurrent best-effort admissions overshot the cost-aware share: %d queued > beLimit %d",
			total, s.beLimit)
	}
	if shed.Load() == 0 {
		t.Fatalf("no launch shed with %d attackers against beLimit %d", attackers, s.beLimit)
	}
	if got := s.queued.Load(); got != total {
		t.Fatalf("queued counter = %d, want %d (reservations must match channel occupancy)", got, total)
	}
	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}
	// All accepted work drains and releases its reservations.
	waitFor(t, "queued counter drained", func() bool { return s.queued.Load() == 0 })
}

// TestFleetRetryAfterShrinksWithDevices pins the multi-device pricing
// fix: a rejected client's wait is the backlog divided by the fleet's
// drain parallelism, so the same queue depth and per-shard completion
// EWMA must produce a smaller Retry-After as -devices grows.
func TestFleetRetryAfterShrinksWithDevices(t *testing.T) {
	header := func(devices int) int {
		const depth = 4
		f, err := NewFleetWithSystem(testSystem(t), FleetConfig{
			Config:   Config{Benchmarks: []string{"VA", "MM"}, QueueDepth: depth},
			Devices:  devices,
			Affinity: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(f.Handler())
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = f.Shutdown(ctx)
		})
		if err := f.Pause(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < devices; i++ {
			f.Shard(i).svcEWMANS.Store(int64(2 * time.Second)) // one completion per 2s per shard
		}
		// Affinity pins the client to one shard; fill exactly that queue.
		body, _ := json.Marshal(LaunchRequest{Client: "ra", Benchmark: "VA", Class: "trivial"})
		for i := 0; i < depth; i++ {
			go func() {
				resp, err := http.Post(ts.URL+"/v1/launch", "application/json", bytes.NewReader(body))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}()
		}
		waitFor(t, "pinned shard queue full", func() bool {
			i, ok := f.AffinityFor("ra")
			return ok && len(f.Shard(i).submitCh) == depth
		})
		resp, err := http.Post(ts.URL+"/v1/launch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("overflow launch: code = %d, want 429", resp.StatusCode)
		}
		secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil {
			t.Fatalf("Retry-After %q: %v", resp.Header.Get("Retry-After"), err)
		}
		if err := f.Resume(); err != nil {
			t.Fatal(err)
		}
		return secs
	}

	h1 := header(1)
	h4 := header(4)
	// depth 4, 2s per completion: one device prices (4+1)×2s = 10s; four
	// devices drain the same backlog in parallel, 10/4 → ceil = 3s.
	if h1 != 10 {
		t.Fatalf("single-device Retry-After = %d, want 10", h1)
	}
	if h4 != 3 {
		t.Fatalf("4-device Retry-After = %d, want 3", h4)
	}
	if h4 >= h1 {
		t.Fatalf("Retry-After must shrink with devices: 1-dev=%d 4-dev=%d", h1, h4)
	}
}

// TestQueueWaitAccountingUnderSaturation saturates a paused queue, 429s
// the overflow, and checks that the two views of queue wait — the
// per-result QueueWaitRealNS and the flep_server_admission_wait_seconds
// histogram — stay consistent and monotone non-negative: one observation
// per admitted launch (never per 429), equal sums, no negative wait.
func TestQueueWaitAccountingUnderSaturation(t *testing.T) {
	const depth = 8
	s, ts := newTestServer(t, Config{QueueDepth: depth})
	if err := s.Pause(); err != nil {
		t.Fatal(err)
	}
	results := make(chan LaunchResult, depth)
	for i := 0; i < depth; i++ {
		go func() {
			_, res := launch(t, ts.URL, LaunchRequest{Client: "qw", Benchmark: "VA", Class: "trivial"})
			results <- res
		}()
	}
	waitFor(t, "queue full", func() bool { return len(s.submitCh) == depth })

	// Saturation overflow: all rejected, none may touch the queue-wait
	// accounting.
	body, _ := json.Marshal(LaunchRequest{Client: "qw", Benchmark: "VA", Class: "trivial"})
	for i := 0; i < depth; i++ {
		resp, err := http.Post(ts.URL+"/v1/launch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("overflow launch %d: code = %d, want 429", i, resp.StatusCode)
		}
	}
	time.Sleep(50 * time.Millisecond) // give the queued launches measurable wait
	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}

	var sumNS, maxNS int64
	for i := 0; i < depth; i++ {
		res := <-results
		if res.Err != "" {
			t.Fatalf("queued launch failed: %+v", res)
		}
		if res.QueueWaitRealNS < 0 {
			t.Fatalf("negative queue wait: %d", res.QueueWaitRealNS)
		}
		sumNS += res.QueueWaitRealNS
		if res.QueueWaitRealNS > maxNS {
			maxNS = res.QueueWaitRealNS
		}
	}
	if maxNS < int64(25*time.Millisecond) {
		t.Fatalf("max queue wait %v implausibly small for a 50ms paused queue", time.Duration(maxNS))
	}
	if got := s.met.AdmissionWait.Count(); got != depth {
		t.Fatalf("admission-wait observations = %d, want %d (429s must not observe)", got, depth)
	}
	sumSec := s.met.AdmissionWait.Sum()
	if sumSec < 0 {
		t.Fatalf("admission-wait sum went negative: %g", sumSec)
	}
	if diff := math.Abs(sumSec - float64(sumNS)/1e9); diff > 1e-6*(1+sumSec) {
		t.Fatalf("histogram sum %.9fs disagrees with result sum %.9fs", sumSec, float64(sumNS)/1e9)
	}

	// The rendered exposition must agree too (the lock-free histogram's
	// scrape path, at rest).
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := obs.ParseText(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.SumMatching("flep_server_admission_wait_seconds_count"); got != depth {
		t.Fatalf("exposed admission-wait count = %g, want %d", got, depth)
	}
}

// TestBatchedAdmissionReconciles checks the batched absorb pass: a
// paused-then-resumed full queue must be admitted in coalesced batches
// (not one loop iteration per launch), the batch-size histogram must
// account every admitted launch exactly once, and exactly-once
// accounting must close at rest.
func TestBatchedAdmissionReconciles(t *testing.T) {
	const depth = 16
	s, ts := newTestServer(t, Config{QueueDepth: depth})
	if err := s.Pause(); err != nil {
		t.Fatal(err)
	}
	results := make(chan LaunchResult, depth)
	for i := 0; i < depth; i++ {
		go func() {
			_, res := launch(t, ts.URL, LaunchRequest{Client: "batch", Benchmark: "MM", Class: "trivial"})
			results <- res
		}()
	}
	waitFor(t, "queue full", func() bool { return len(s.submitCh) == depth })
	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < depth; i++ {
		if res := <-results; res.Err != "" {
			t.Fatalf("launch failed: %+v", res)
		}
	}
	if got := s.met.AdmitBatchSize.Sum(); got != depth {
		t.Fatalf("batch-size sum = %g, want %d (every admission in exactly one batch)", got, depth)
	}
	batches := s.met.AdmitBatches.Value()
	if batches == 0 {
		t.Fatal("no admission batches counted")
	}
	if batches > depth/2 {
		t.Fatalf("%d batches for %d queued launches: absorb pass is not coalescing", batches, depth)
	}
	st := getStatus(t, ts.URL)
	if st.Counters.Enqueued != depth || st.Counters.Completed != depth {
		t.Fatalf("exactly-once after batch: %+v", st.Counters)
	}
}
