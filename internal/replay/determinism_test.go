package replay

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// These tests pin the on-disk side of the byte-identical trace
// contract that flepvet's determinism analyzer enforces at the source
// level: without an injected WallClock, everything the recorder writes
// — header included — is a pure function of (records, header, seed).
// (TestReplaySummaryByteIdentical covers the replay-output side.)

// TestWriteFileByteIdentical synthesizes the same mix twice and writes
// both traces to disk: the files must match byte for byte.
func TestWriteFileByteIdentical(t *testing.T) {
	dir := t.TempDir()
	var blobs [][]byte
	for _, name := range []string{"a.jsonl", "b.jsonl"} {
		tr, err := SynthesizeMix(mixTenants(), 42)
		if err != nil {
			t.Fatalf("SynthesizeMix: %v", err)
		}
		path := filepath.Join(dir, name)
		if err := tr.WriteFile(path); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, b)
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Fatalf("same seed produced different trace bytes:\n--- a ---\n%s\n--- b ---\n%s", blobs[0], blobs[1])
	}
	// A deterministic trace carries no wall-clock residue: both fields
	// are omitempty, so neither key may appear at all.
	for _, key := range []string{"wall_ns", "created_unix_ms"} {
		if strings.Contains(string(blobs[0]), key) {
			t.Errorf("deterministic trace contains %s:\n%s", key, blobs[0])
		}
	}
}

// TestRecorderWallClockInjection proves the daemon boundary still gets
// real timestamps when it asks for them: an injected clock stamps the
// header's CreatedUnixMS and the per-record Wall offsets.
func TestRecorderWallClockInjection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wall.jsonl")
	base := time.UnixMilli(1_700_000_000_000)
	ticks := time.Duration(0)
	clock := func() time.Time {
		ticks += time.Millisecond
		return base.Add(ticks)
	}
	rec, err := NewRecorder(path, testHeader(), RecorderOptions{WallClock: clock})
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	if got, want := rec.hdr.CreatedUnixMS, base.Add(time.Millisecond).UnixMilli(); got != want {
		t.Errorf("CreatedUnixMS = %d, want %d (stamped from the injected clock)", got, want)
	}
	if !rec.Record(Record{Client: "c", Bench: "VA", Class: "small"}) {
		t.Fatal("Record dropped")
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if len(tr.Records) != 1 {
		t.Fatalf("got %d records, want 1", len(tr.Records))
	}
	// The record's Wall is the second clock sample's offset from the
	// first (the epoch).
	if want := int64(time.Millisecond); tr.Records[0].Wall != want {
		t.Errorf("Wall = %d, want %d", tr.Records[0].Wall, want)
	}
	if tr.Header.CreatedUnixMS != base.Add(time.Millisecond).UnixMilli() {
		t.Errorf("persisted CreatedUnixMS = %d, want the injected stamp", tr.Header.CreatedUnixMS)
	}
}
