package kernels

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	cl "flep/internal/cudalite"
	"flep/internal/transform"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenTransforms pins the exact transformed source of the VA kernel
// in all three modes and of the MM kernel (2D, shared memory) in spatial
// mode. Run with -update to regenerate after an intentional change.
func TestGoldenTransforms(t *testing.T) {
	cases := []struct {
		file   string
		bench  string
		kernel string
		mode   transform.Mode
	}{
		{"va_naive.cu", "VA", "va", transform.ModeTemporalNaive},
		{"va_temporal.cu", "VA", "va", transform.ModeTemporal},
		{"va_spatial.cu", "VA", "va", transform.ModeSpatial},
		{"mm_spatial.cu", "MM", "mm", transform.ModeSpatial},
	}
	for _, c := range cases {
		c := c
		t.Run(c.file, func(t *testing.T) {
			b, err := ByName(c.bench)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := cl.Parse(b.Source)
			if err != nil {
				t.Fatal(err)
			}
			out, _, err := transform.TransformKernel(prog, c.kernel, c.mode)
			if err != nil {
				t.Fatal(err)
			}
			got := cl.Format(out)
			path := filepath.Join("testdata", c.file)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("transformed source differs from %s;\nrun `go test ./internal/kernels -run Golden -update` if intentional\n--- got ---\n%s", path, got)
			}
		})
	}
}
