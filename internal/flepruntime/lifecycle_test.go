package flepruntime

import (
	"testing"
	"time"

	"flep/internal/gpu"
	"flep/internal/obs"
	"flep/internal/sim"
)

// newInstrumentedRT builds a runtime whose metrics are wired to a live
// registry, so tests can assert on counter values.
func newInstrumentedRT(policy Policy, spatial bool) (*sim.Engine, *Runtime) {
	eng := sim.New()
	dev := gpu.New(eng, gpu.DefaultParams())
	rt := New(dev, Config{
		Policy:        policy,
		EnableSpatial: spatial,
		Metrics:       NewMetrics(obs.NewRegistry()),
	})
	return eng, rt
}

// closedLoop builds a client that resubmits a fresh invocation on every
// completion until *stop is set. Returns the kick-off function.
func closedLoop(rt *Runtime, name string, prio, tasks int, cost time.Duration, stop *bool) func() {
	var submit func()
	submit = func() {
		v := inv(name, prio, tasks, cost, 2)
		v.OnFinish = func(*Invocation) {
			if !*stop {
				submit()
			}
		}
		rt.Submit(v)
	}
	return submit
}

// TestFFSEvictsDepartedTenant is the regression test for the unbounded
// seen-map growth: once a tenant's last invocation completes, its entry
// must leave the overhead table and the epoch length must return to the
// remaining tenant's solo baseline instead of staying inflated by the
// departed tenant's ΣO_i contribution forever.
func TestFFSEvictsDepartedTenant(t *testing.T) {
	ffs := NewFFS(0.10)
	eng, rt := newInstrumentedRT(ffs, false)

	// a weighs 1, b weighs 3 (priority = weight for FFS), so the
	// two-tenant epoch for a — (O_a+O_b)/(0.10·4) — differs from a's solo
	// epoch O_a/0.10. Equal overheads would make the two coincide.
	var stopA, stopB bool
	closedLoop(rt, "a", 1, 2400, us(100), &stopA)()
	closedLoop(rt, "b", 3, 2400, us(100), &stopB)()

	eng.Schedule(50*time.Millisecond, func() { stopB = true })
	eng.RunUntil(200 * time.Millisecond)
	stopA = true
	eng.Run()

	if rt.met.Evictions.Value() < 1 {
		t.Fatal("departed tenant was never evicted from the overhead table")
	}
	if len(ffs.seen) != 0 {
		t.Fatalf("seen retains %d kernels after all tenants departed", len(ffs.seen))
	}

	// The last epoch opened while a ran alone: exactly a's solo epoch
	// O_a/maxOverhead (weight 1), not the smaller two-tenant epoch.
	o := rt.OverheadFor(inv("a", 1, 2400, us(100), 2))
	solo := time.Duration(float64(o) / 0.10)
	got := ffs.lastEpochLen
	if diff := got - solo; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("post-departure epoch = %v, want solo baseline %v (two-tenant was %v)",
			got, solo, time.Duration(float64(2*o)/(0.10*4)))
	}
}

// TestFFSCancelsStaleEpochTimer is the regression test for dead-event
// accretion: when an epoch closes before its timer fires (here: the
// owner departs mid-epoch), the superseded timer must be canceled rather
// than left to sit in the engine's queue until its deadline.
func TestFFSCancelsStaleEpochTimer(t *testing.T) {
	ffs := NewFFS(0.05) // tight budget → epoch ≈ 20·O ≈ 3.3ms, longer than a
	eng, rt := newInstrumentedRT(ffs, false)

	a := inv("a", 1, 2400, us(100), 2) // 2ms, completes inside its epoch
	rt.Submit(a)
	eng.Schedule(us(1000), func() { rt.Submit(inv("b", 1, 1200, us(100), 2)) })
	eng.Run()

	if rt.met.TimersCanceled.Value() < 1 {
		t.Fatal("stale epoch timer was never canceled")
	}
	if got := eng.Pending(); got != 0 {
		t.Fatalf("engine still reports %d pending events at quiescence", got)
	}
	if rt.met.EpochsOpened.Value() < 2 {
		t.Fatalf("epochs opened = %d, want one per tenant", rt.met.EpochsOpened.Value())
	}
}

// TestSpatialGuestDoesNotStallQueue is the regression test for the
// spatial-guest idle stall: when the primary completes while a guest
// still holds the low SMs, the next queued invocation must dispatch on
// the free high range instead of idling the whole device until the guest
// departs.
func TestSpatialGuestDoesNotStallQueue(t *testing.T) {
	eng, rt := newInstrumentedRT(NewHPF(), true)

	low := inv("low", 1, 2400, us(100), 2)  // 2ms primary
	tiny := inv("tiny", 2, 40, us(5000), 1) // 5-SM guest, runs ~5ms
	third := inv("third", 1, 1200, us(100), 2)

	var tinyDone, thirdDone time.Duration
	tiny.OnFinish = func(*Invocation) { tinyDone = eng.Now() }
	third.OnFinish = func(*Invocation) { thirdDone = eng.Now() }

	rt.Submit(low)
	eng.Schedule(us(1000), func() { rt.Submit(tiny) })
	eng.Schedule(us(1500), func() { rt.Submit(third) })
	eng.Run()

	if rt.met.SpatialPreempts.Value() != 1 || rt.met.GuestDispatches.Value() != 1 {
		t.Fatalf("scenario did not take the spatial path: spatial=%d guests=%d",
			rt.met.SpatialPreempts.Value(), rt.met.GuestDispatches.Value())
	}
	if tinyDone == 0 || thirdDone == 0 {
		t.Fatal("kernels did not finish")
	}
	// low finishes ≈2.7ms; the long-running guest finishes ≈6ms. If the
	// scheduler stalls behind the guest, third cannot finish before it.
	if thirdDone >= tinyDone {
		t.Fatalf("third finished at %v, after the guest at %v: queue stalled behind the spatial guest",
			thirdDone, tinyDone)
	}
}

// TestPreemptAbortLeavesQueueConsistent drives schedule() in the window
// between an execution finishing on the device and the runtime's
// onComplete callback (the device emits EvComplete synchronously, then
// delivers OnComplete via a zero-delay event). A preemption decided in
// that window hits preemptFor's error branch; the candidate must stay
// queued exactly once and still run to completion.
func TestPreemptAbortLeavesQueueConsistent(t *testing.T) {
	eng, rt := newInstrumentedRT(NewHPF(), false)

	a := inv("a", 1, 1200, us(100), 2)
	high := inv("high", 2, 1200, us(100), 2)
	finishes := 0
	high.OnFinish = func(*Invocation) { finishes++ }

	rt.Device().Observer = func(ev gpu.Event) {
		if ev.Kind == gpu.EvComplete && ev.Kernel == "a" {
			rt.Device().Observer = nil
			rt.Submit(high) // schedule() sees the stale running invocation
		}
	}
	rt.Submit(a)
	eng.Run()

	if rt.met.PreemptAborts.Value() != 1 {
		t.Fatalf("preempt aborts = %d, want 1", rt.met.PreemptAborts.Value())
	}
	if finishes != 1 {
		t.Fatalf("high finished %d times, want exactly 1", finishes)
	}
	if rt.met.TemporalPreempts.Value()+rt.met.SpatialPreempts.Value() != 0 {
		t.Fatal("aborted preemption was counted as realized")
	}
}

// TestPreemptAbortReenqueuesPendingGuestOnce is the spatial variant of
// the abort race: preemptFor had already dequeued the guest-to-be when
// Preempt failed, so the error branch must put it back exactly once.
func TestPreemptAbortReenqueuesPendingGuestOnce(t *testing.T) {
	eng, rt := newInstrumentedRT(NewHPF(), true)

	a := inv("a", 1, 1200, us(100), 2)
	tiny := inv("tiny", 2, 40, us(80), 1) // small enough for spatial
	finishes := 0
	tiny.OnFinish = func(*Invocation) { finishes++ }

	rt.Device().Observer = func(ev gpu.Event) {
		if ev.Kind == gpu.EvComplete && ev.Kernel == "a" {
			rt.Device().Observer = nil
			rt.Submit(tiny)
		}
	}
	rt.Submit(a)
	eng.Run()

	if rt.met.PreemptAborts.Value() != 1 {
		t.Fatalf("preempt aborts = %d, want 1", rt.met.PreemptAborts.Value())
	}
	if finishes != 1 {
		t.Fatalf("tiny finished %d times, want exactly 1", finishes)
	}
	if rt.pendingGuest != nil {
		t.Fatal("pendingGuest leaked after the aborted spatial preemption")
	}
}

// TestVictimCompletesDuringDrain covers the other race direction: the
// preemption flag is up and the drain is in flight when the victim runs
// out of tasks. The device resolves the drain with remaining=0; the
// runtime must not count a realized preemption, and the pending guest
// must be re-enqueued exactly once and still run.
func TestVictimCompletesDuringDrain(t *testing.T) {
	eng, rt := newInstrumentedRT(NewHPF(), true)

	// L=40 stretches the drain to ≈2ms — far past the victim's ≈100us of
	// remaining work when the preemption lands at 1.9ms.
	victim := inv("victim", 1, 2400, us(100), 40)
	tiny := inv("tiny", 2, 40, us(80), 1)
	finishes := 0
	tiny.OnFinish = func(*Invocation) { finishes++ }

	rt.Submit(victim)
	eng.Schedule(us(1900), func() { rt.Submit(tiny) })
	eng.Run()

	if victim.State() != InvFinished || finishes != 1 {
		t.Fatalf("victim=%v tiny finishes=%d", victim.State(), finishes)
	}
	if victim.Preemptions != 0 {
		t.Fatalf("victim.Preemptions = %d: drain that resolved by completion was counted", victim.Preemptions)
	}
	if n := rt.met.TemporalPreempts.Value() + rt.met.SpatialPreempts.Value(); n != 0 {
		t.Fatalf("realized preemptions = %d, want 0", n)
	}
	if rt.met.DrainLatency.Count() != 0 {
		t.Fatal("drain latency observed for a drain that never completed")
	}
	if rt.pendingGuest != nil {
		t.Fatal("pendingGuest leaked")
	}
}

// TestFFSSoakEpochRotationsBounded soaks FFS through hundreds of epoch
// rotations with two closed-loop tenants, then retires one and checks
// the long-lived invariants: the overhead table tracks only present
// tenants, the engine's pending-event count stays bounded (no dead-timer
// accretion), and the epoch length settles back to the survivor's solo
// baseline.
func TestFFSSoakEpochRotationsBounded(t *testing.T) {
	ffs := NewFFS(0.10)
	eng, rt := newInstrumentedRT(ffs, false)

	var stopA, stopB bool
	closedLoop(rt, "a", 1, 2400, us(100), &stopA)()
	closedLoop(rt, "b", 3, 2400, us(100), &stopB)()

	var midPending int
	var midSeen int
	eng.Schedule(400*time.Millisecond, func() {
		midPending = eng.Pending()
		midSeen = len(ffs.seen)
		stopB = true
	})
	eng.RunUntil(600 * time.Millisecond)

	rotations := rt.met.EpochsOpened.Value()
	if rotations < 200 {
		t.Fatalf("epoch rotations = %d, want ≥ 200", rotations)
	}
	if midPending > 64 {
		t.Fatalf("pending events mid-soak = %d: dead timers accreting", midPending)
	}
	if midSeen > 2 {
		t.Fatalf("overhead table mid-soak tracks %d kernels, want ≤ 2", midSeen)
	}
	if len(ffs.seen) != 1 {
		t.Fatalf("overhead table tracks %d kernels after b departed, want 1", len(ffs.seen))
	}
	o := rt.OverheadFor(inv("a", 1, 2400, us(100), 2))
	solo := time.Duration(float64(o) / 0.10)
	if diff := ffs.lastEpochLen - solo; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("post-departure epoch = %v, want solo baseline %v", ffs.lastEpochLen, solo)
	}

	stopA = true
	eng.Run()
	if got := eng.Pending(); got != 0 {
		t.Fatalf("pending events at quiescence = %d", got)
	}
}
