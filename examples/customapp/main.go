// Custom application demo: write your own CUDA-style program (not one of
// the paper's benchmarks), compile it with the FLEP compilation engine, and
// run its host code end-to-end — two host processes share the simulated
// GPU, the interactive one preempts the batch one, and the data results are
// real (computed by the MiniCUDA interpreter).
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"flep"
)

const app = `
__global__ void blur(float* src, float* dst, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float left = i > 0 ? src[i - 1] : src[i];
        float right = i < n - 1 ? src[i + 1] : src[i];
        dst[i] = (left + src[i] + right) / 3.0;
    }
}

__global__ void simulate(float* state, int n, int rounds) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float v = state[i];
        for (int r = 0; r < rounds; ++r) {
            v = v * 0.999 + 0.001 * (float)i;
        }
        state[i] = v;
    }
}

void run_batch(float* state, int n, int rounds) {
    simulate<<<(n + 255) / 256, 256>>>(state, n, rounds);
}

void run_interactive(float* src, float* dst, int n) {
    flep_sleep(200);
    blur<<<(n + 255) / 256, 256>>>(src, dst, n);
    flep_sleep(300);
    blur<<<(n + 255) / 256, 256>>>(dst, src, n);
}
`

func main() {
	prog, err := flep.CompileProgram(app)
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, 0, len(prog.Kernels))
	for name := range prog.Kernels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		k := prog.Kernels[name]
		fmt.Printf("compiled %-9s task-cost≈%-8v tuned L=%d\n", name, k.TaskCost, k.L)
	}

	// Batch tenant: a huge long-running simulation (timing-only).
	state := flep.NewFloatBuffer("state", 16)
	// Interactive tenant: two small blur queries over a real image row.
	n := 1024
	src := flep.NewFloatBuffer("src", n)
	dst := flep.NewFloatBuffer("dst", n)
	for i := 0; i < n; i++ {
		src.F[i] = float64(i % 16)
	}

	report, err := flep.RunProgram(prog, flep.RunOptions{Trace: true},
		flep.HostProc{
			Name: "batch", Func: "run_batch", Priority: 1,
			Args: []flep.Value{flep.Ptr(state, 0), flep.Int(40_000_000), flep.Int(64)},
		},
		flep.HostProc{
			Name: "interactive", Func: "run_interactive", Priority: 2,
			Args: []flep.Value{flep.Ptr(src, 0), flep.Ptr(dst, 0), flep.Int(int64(n))},
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-12s %-9s %12s %12s %11s %s\n", "proc", "kernel", "submit", "finish", "turnaround", "functional")
	for _, r := range report.Invocations {
		fmt.Printf("%-12s %-9s %12v %12v %11v %v\n",
			r.Proc, r.Kernel,
			r.SubmittedAt.Round(time.Microsecond), r.FinishedAt.Round(time.Microsecond),
			r.Turnaround().Round(time.Microsecond), r.Functional)
	}
	fmt.Printf("\nmakespan %v, preemptions in trace: %d\n",
		report.Makespan.Round(time.Microsecond), len(report.Log.Filter("preempt")))

	// The blur results are real: applied twice, back into src.
	fmt.Printf("blurred row head: %.3f %.3f %.3f %.3f\n", src.F[0], src.F[1], src.F[2], src.F[3])
}
