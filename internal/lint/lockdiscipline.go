package lint

import (
	"go/ast"
	"go/types"

	"flep/internal/lint/analysis"
)

// LockDisciplineAnalyzer flags work done while a sync.Mutex/RWMutex is
// held that can block or re-enter: channel sends, invocations of
// function values (callbacks — the PR 2 deadlock class, where a
// callback fired under the registry lock tried to take it again), and
// network / ResponseWriter I/O. The fix idiom this enforces is the one
// the codebase already uses: lock, copy, unlock, then send/call/render.
var LockDisciplineAnalyzer = &analysis.Analyzer{
	Name:       "lockdiscipline",
	Doc:        "forbid channel sends, callback invocations, and I/O while holding a mutex",
	Categories: []string{"lockheld"},
	Run:        runLockDiscipline,
}

func runLockDiscipline(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkLockedRegions(pass, fn.Body)
				}
			case *ast.FuncLit:
				// Walked as its own scope; keep descending so literals
				// nested inside it are also picked up here.
				checkLockedRegions(pass, fn.Body)
			}
			return true
		})
	}
	return nil, nil
}

// checkLockedRegions walks one function body in source order keeping a
// set of held mutexes (keyed by the rendered receiver expression, e.g.
// "r.mu"). An explicit Unlock statement releases; a deferred Unlock
// does not (it runs at return, so everything after the Lock is a
// critical section). The walk is linear rather than path-sensitive —
// good enough for the straight-line lock/copy/unlock idiom this
// codebase uses, and deliberately conservative elsewhere.
func checkLockedRegions(pass *analysis.Pass, body *ast.BlockStmt) {
	held := map[string]bool{}
	heldCount := 0
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n.Body != body {
				return false // separate scope, walked by the caller
			}
		case *ast.DeferStmt:
			// A deferred Unlock keeps the region open; nothing to do.
			// But a deferred callback while holding is still a risk only
			// at return time — out of scope for a linear walk.
			return false
		case *ast.CallExpr:
			if key, kind := mutexLockCall(pass, n); key != "" {
				switch kind {
				case "Lock", "RLock":
					if !held[key] {
						held[key] = true
						heldCount++
					}
				case "Unlock", "RUnlock":
					if held[key] {
						delete(held, key)
						heldCount--
					}
				}
				return true
			}
			if heldCount == 0 {
				return true
			}
			if reason := blockingWhileLocked(pass, n); reason != "" {
				pass.Reportf(n.Pos(), "lockheld",
					"%s while holding %s; release the lock first (lock, copy, unlock, then act)",
					reason, anyHeld(held))
			}
		case *ast.SendStmt:
			// A send guarded by select-with-default cannot block, so it
			// cannot extend the critical section.
			if heldCount > 0 && !sendInSelectWithDefault(pass, body, n) {
				pass.Reportf(n.Pos(), "lockheld",
					"channel send while holding %s can deadlock against the receiver; release the lock first",
					anyHeld(held))
			}
		case *ast.GoStmt:
			return false // the goroutine body runs without our locks
		}
		return true
	})
}

// anyHeld names one held mutex for the message (deterministically:
// lexicographically smallest key).
func anyHeld(held map[string]bool) string {
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// blockingWhileLocked classifies a call that must not run under a
// lock; returns "" if the call is benign.
func blockingWhileLocked(pass *analysis.Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[fun]
		if v, ok := obj.(*types.Var); ok {
			if _, isFn := v.Type().Underlying().(*types.Signature); isFn {
				return "invoking function value " + fun.Name
			}
		}
	case *ast.SelectorExpr:
		obj := pass.TypesInfo.Uses[fun.Sel]
		switch obj := obj.(type) {
		case *types.Var:
			// A func-typed field or variable: a callback we don't control.
			if _, isFn := obj.Type().Underlying().(*types.Signature); isFn {
				return "invoking callback " + fun.Sel.Name
			}
		case *types.Func:
			if obj.Pkg() == nil {
				return ""
			}
			switch obj.Pkg().Path() {
			case "net", "net/http":
				return "calling " + obj.Pkg().Name() + "." + obj.Name()
			}
			// Writes on an http.ResponseWriter render to the client
			// while locked.
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				if isResponseWriter(pass.TypesInfo.TypeOf(fun.X)) &&
					(obj.Name() == "Write" || obj.Name() == "WriteHeader" || obj.Name() == "WriteString") {
					return "writing the HTTP response"
				}
			}
		}
	}
	return ""
}

func isResponseWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "net/http" && obj.Name() == "ResponseWriter"
}
