// Package baselines implements the systems FLEP is evaluated against:
//
//   - MPS: the default co-run on NVIDIA's Multi-Process Service — a
//     non-preemptive FIFO. Because every benchmark's CTAs saturate the
//     hardware dispatcher, a later kernel cannot start until the earlier
//     kernel's queue drains (§2.1), which the model realizes as
//     serialization.
//   - Reorder: kernel reordering (Li et al. [23], Margiolas et al. [25]) —
//     still non-preemptive, but the next kernel is chosen
//     shortest-predicted-first at each completion.
//   - Slicer: kernel slicing (GPES/RGEM/PKM [41,19,5]) — each kernel is
//     split into sub-kernels of a fixed CTA count; scheduling decisions
//     happen at slice boundaries, and every slice pays a launch.
package baselines

import (
	"fmt"
	"sort"
	"time"

	"flep/internal/gpu"
)

// Job is one kernel invocation handled by a baseline executor.
type Job struct {
	Kernel   string
	Priority int // higher = more important (used by Slicer)
	Profile  *gpu.KernelProfile
	Tasks    int
	TaskCost time.Duration
	// Predicted is the duration estimate used by Reorder.
	Predicted time.Duration
	// OnFinish fires at completion.
	OnFinish func(*Job)

	submittedAt time.Duration
	startedAt   time.Duration
	started     bool
	finishedAt  time.Duration
	doneTasks   int
}

// markStarted records the first time the job reaches the GPU.
func (j *Job) markStarted(now time.Duration) {
	if !j.started {
		j.started = true
		j.startedAt = now
	}
}

// Waiting returns the time from submission to first execution.
func (j *Job) Waiting() time.Duration {
	if !j.started {
		return 0
	}
	return j.startedAt - j.submittedAt
}

// SubmittedAt returns the submission time.
func (j *Job) SubmittedAt() time.Duration { return j.submittedAt }

// FinishedAt returns the completion time (zero until finished).
func (j *Job) FinishedAt() time.Duration { return j.finishedAt }

// Turnaround returns waiting plus execution time.
func (j *Job) Turnaround() time.Duration { return j.finishedAt - j.submittedAt }

// MPS is the non-preemptive FIFO baseline.
type MPS struct {
	dev     *gpu.Device
	queue   []*Job
	running bool
}

// NewMPS builds the MPS baseline on the device.
func NewMPS(dev *gpu.Device) *MPS { return &MPS{dev: dev} }

// Submit enqueues a job; it runs when all earlier jobs have completed.
func (m *MPS) Submit(j *Job) {
	j.submittedAt = m.dev.Now()
	m.queue = append(m.queue, j)
	m.kick()
}

func (m *MPS) kick() {
	if m.running || len(m.queue) == 0 {
		return
	}
	j := m.queue[0]
	m.queue = m.queue[1:]
	m.running = true
	j.markStarted(m.dev.Now())
	_, err := m.dev.Start(gpu.ExecConfig{
		Profile: j.Profile, TotalTasks: j.Tasks, TaskCost: j.TaskCost,
		SMLo: 0, SMHi: m.dev.NumSMs(),
		OnComplete: func() {
			j.finishedAt = m.dev.Now()
			m.running = false
			if j.OnFinish != nil {
				j.OnFinish(j)
			}
			m.kick()
		},
	})
	if err != nil {
		panic(fmt.Sprintf("baselines: MPS start: %v", err))
	}
}

// Reorder is the shortest-predicted-first non-preemptive baseline.
type Reorder struct {
	dev     *gpu.Device
	queue   []*Job
	running bool
}

// NewReorder builds the reordering baseline.
func NewReorder(dev *gpu.Device) *Reorder { return &Reorder{dev: dev} }

// Submit enqueues a job for shortest-first selection. A running kernel is
// never preempted (the GPU cannot be).
func (r *Reorder) Submit(j *Job) {
	j.submittedAt = r.dev.Now()
	r.queue = append(r.queue, j)
	sort.SliceStable(r.queue, func(a, b int) bool {
		if r.queue[a].Priority != r.queue[b].Priority {
			return r.queue[a].Priority > r.queue[b].Priority
		}
		return r.queue[a].Predicted < r.queue[b].Predicted
	})
	r.kick()
}

func (r *Reorder) kick() {
	if r.running || len(r.queue) == 0 {
		return
	}
	j := r.queue[0]
	r.queue = r.queue[1:]
	r.running = true
	j.markStarted(r.dev.Now())
	_, err := r.dev.Start(gpu.ExecConfig{
		Profile: j.Profile, TotalTasks: j.Tasks, TaskCost: j.TaskCost,
		SMLo: 0, SMHi: r.dev.NumSMs(),
		OnComplete: func() {
			j.finishedAt = r.dev.Now()
			r.running = false
			if j.OnFinish != nil {
				j.OnFinish(j)
			}
			r.kick()
		},
	})
	if err != nil {
		panic(fmt.Sprintf("baselines: reorder start: %v", err))
	}
}

// Slicer is the kernel-slicing baseline: sub-kernels of SliceTasks CTAs,
// scheduled (priority, then FIFO) at each slice boundary.
type Slicer struct {
	dev *gpu.Device
	// SliceTasks is the sub-kernel size in CTAs. The paper's example
	// slices to the device's concurrent capacity (120 CTAs of size 256).
	SliceTasks int

	queue   []*Job
	running bool
	seq     int // FIFO tiebreak
	order   map[*Job]int
}

// NewSlicer builds the slicing baseline with the given sub-kernel size.
func NewSlicer(dev *gpu.Device, sliceTasks int) *Slicer {
	if sliceTasks <= 0 {
		panic("baselines: non-positive slice size")
	}
	return &Slicer{dev: dev, SliceTasks: sliceTasks, order: map[*Job]int{}}
}

// Submit enqueues a job; it competes for the GPU at slice granularity.
func (s *Slicer) Submit(j *Job) {
	j.submittedAt = s.dev.Now()
	s.seq++
	s.order[j] = s.seq
	s.queue = append(s.queue, j)
	s.kick()
}

// pick chooses the next job: highest priority first, FIFO within a level.
func (s *Slicer) pick() *Job {
	if len(s.queue) == 0 {
		return nil
	}
	best := s.queue[0]
	for _, j := range s.queue[1:] {
		if j.Priority > best.Priority ||
			(j.Priority == best.Priority && s.order[j] < s.order[best]) {
			best = j
		}
	}
	return best
}

func (s *Slicer) remove(j *Job) {
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

func (s *Slicer) kick() {
	if s.running {
		return
	}
	j := s.pick()
	if j == nil {
		return
	}
	s.running = true
	j.markStarted(s.dev.Now())
	end := j.doneTasks + s.SliceTasks
	if end > j.Tasks {
		end = j.Tasks
	}
	_, err := s.dev.Start(gpu.ExecConfig{
		Profile: j.Profile, TotalTasks: end, DoneTasks: j.doneTasks,
		TaskCost: j.TaskCost, SMLo: 0, SMHi: s.dev.NumSMs(),
		OnComplete: func() {
			s.running = false
			j.doneTasks = end
			if j.doneTasks >= j.Tasks {
				s.remove(j)
				delete(s.order, j)
				j.finishedAt = s.dev.Now()
				if j.OnFinish != nil {
					j.OnFinish(j)
				}
			}
			s.kick()
		},
	})
	if err != nil {
		panic(fmt.Sprintf("baselines: slice start: %v", err))
	}
}

// SliceCountFor returns how many sub-kernel launches a job needs.
func (s *Slicer) SliceCountFor(tasks int) int {
	return (tasks + s.SliceTasks - 1) / s.SliceTasks
}
