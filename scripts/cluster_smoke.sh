#!/usr/bin/env bash
# Cluster smoke: two flepd nodes behind a flepgw gateway, driven by
# flepload through the gateway's single front door.
#
# Burst 1 (both nodes healthy) checks the strict ledger: for every node,
# the gateway's terminal-response counts (gw_accepted + gw_failed +
# gw_timed_out) equal the node's own enqueued counter, which equals
# completed + submit_errors at rest — nothing lost, duplicated, or
# double-counted across the routing layer. It also checks the merged
# /v1/trace is in global (time, node, device) order.
#
# Burst 2 SIGKILLs one node mid-run. Every client must still see a 200
# (the gateway retries transparently on its surviving preference), the
# survivor's ledger must still reconcile exactly, and the gateway's
# accepted counter must equal the clients' OK count.
#
# Everything is built with -race so the smoke also gates on the
# gateway's routing/health concurrency.
set -euo pipefail
cd "$(dirname "$0")/.."

GW="${GW:-127.0.0.1:7460}"
N0="${N0:-127.0.0.1:7461}"
N1="${N1:-127.0.0.1:7462}"
WORK="$(mktemp -d)"
trap 'kill "$GW_PID" "$N0_PID" "$N1_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -race -o "$WORK/flepd" ./cmd/flepd
go build -race -o "$WORK/flepgw" ./cmd/flepgw
go build -race -o "$WORK/flepload" ./cmd/flepload

# -pace stretches simulated work into real time so burst 2 is long
# enough to kill a node in the middle of it.
"$WORK/flepd" -addr "$N0" -bench VA,MM -trace -pace 500us >"$WORK/n0.log" 2>&1 &
N0_PID=$!
"$WORK/flepd" -addr "$N1" -bench VA,MM -trace -pace 500us >"$WORK/n1.log" 2>&1 &
N1_PID=$!
"$WORK/flepgw" -listen "$GW" -nodes "$N0,$N1" -health-interval 50ms >"$WORK/gw.log" 2>&1 &
GW_PID=$!

for _ in $(seq 150); do
    curl -sf "http://$GW/readyz" >/dev/null 2>&1 && break
    sleep 0.2
done
curl -sf "http://$GW/readyz" >/dev/null

accepted_total() {
    curl -s "http://$GW/metrics" | awk '/^flep_gateway_accepted_total /{print int($2)}'
}

# ---- burst 1: both nodes healthy, strict per-node reconciliation ----
"$WORK/flepload" -addr "http://$GW" -clients 16 -n 3 -bench VA,MM \
    -class small -seed 7 | tee "$WORK/burst1.out"
OK1=$(sed -n 's/^requests:[[:space:]]*ok=\([0-9]*\).*/\1/p' "$WORK/burst1.out")

python3 - "$GW" "$OK1" <<'EOF'
import json, sys, time, urllib.request

gw, ok = sys.argv[1], int(sys.argv[2])
get = lambda url: json.load(urllib.request.urlopen(url, timeout=5))

nodes = get(f"http://{gw}/v1/nodes")
problems = []
total_accepted = 0
for n in nodes:
    # The gateway's health-cached status may lag; read the node directly
    # and poll briefly for rest.
    for _ in range(100):
        st = get(n["addr"] + "/v1/status")
        c = st["counters"]
        if c["completed"] + c["submit_errors"] == c["enqueued"] and st["queue_len"] == 0:
            break
        time.sleep(0.1)
    ledger = n["gw_accepted"] + n["gw_failed"] + n["gw_timed_out"]
    total_accepted += n["gw_accepted"]
    if n["state"] != "ready":
        problems.append(f'node {n["id"]} state {n["state"]} != ready')
    if c["enqueued"] == 0:
        problems.append(f'node {n["id"]} served nothing — routing never spread')
    if ledger != c["enqueued"]:
        problems.append(f'node {n["id"]}: gateway ledger {ledger} != node enqueued {c["enqueued"]}')
    if c["completed"] + c["submit_errors"] != c["enqueued"]:
        problems.append(f'node {n["id"]} not at rest: {c}')
if total_accepted != ok:
    problems.append(f"gateway accepted {total_accepted} != client OKs {ok}")

trace = get(f"http://{gw}/v1/trace")
if not trace:
    problems.append("merged /v1/trace is empty")
keys = [(e["time_ns"], e.get("node", ""), e.get("device", 0)) for e in trace]
if keys != sorted(keys):
    problems.append("merged trace is not in global (time, node, device) order")
if len({k[1] for k in keys}) < 2:
    problems.append("merged trace names fewer than 2 nodes")

if problems:
    sys.exit("cluster smoke burst 1 FAILED:\n  " + "\n  ".join(problems))
print(f"burst 1 OK: {ok} launches, per-node ledgers exact, trace merged from {len({k[1] for k in keys})} nodes")
EOF

# ---- burst 2: SIGKILL one node mid-run ----
BASE=$(accepted_total)
"$WORK/flepload" -addr "http://$GW" -clients 24 -n 6 -bench VA,MM \
    -class small -seed 9 -verify-status=false >"$WORK/burst2.out" 2>&1 &
LOAD_PID=$!

# Kill n1 once the burst is demonstrably in flight.
for _ in $(seq 400); do
    cur=$(accepted_total)
    [ $((cur - BASE)) -ge 20 ] && break
    sleep 0.05
done
kill -9 "$N1_PID"
wait "$LOAD_PID" || { cat "$WORK/burst2.out"; echo "cluster smoke burst 2 FAILED: flepload exited nonzero after node kill"; exit 1; }
cat "$WORK/burst2.out"
OK2=$(sed -n 's/^requests:[[:space:]]*ok=\([0-9]*\).*/\1/p' "$WORK/burst2.out")

python3 - "$GW" "$OK2" "$BASE" <<'EOF'
import json, sys, time, urllib.request

gw, ok, base = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
get = lambda url: json.load(urllib.request.urlopen(url, timeout=5))

problems = []
# The gateway must stay routable on its surviving node.
urllib.request.urlopen(f"http://{gw}/readyz", timeout=5)

nodes = {n["id"]: n for n in get(f"http://{gw}/v1/nodes")}
down = [n for n in nodes.values() if n["state"] == "down"]
ready = [n for n in nodes.values() if n["state"] == "ready"]
if len(down) != 1 or len(ready) != 1:
    problems.append(f'want 1 down + 1 ready node, got {[(n["id"], n["state"]) for n in nodes.values()]}')
else:
    survivor = ready[0]
    for _ in range(100):
        st = get(survivor["addr"] + "/v1/status")
        c = st["counters"]
        if c["completed"] + c["submit_errors"] == c["enqueued"] and st["queue_len"] == 0:
            break
        time.sleep(0.1)
    # Re-read the ledger after rest so late completions are counted.
    survivor = get(f"http://{gw}/v1/nodes")
    survivor = next(n for n in survivor if n["id"] == ready[0]["id"])
    ledger = survivor["gw_accepted"] + survivor["gw_failed"] + survivor["gw_timed_out"]
    if ledger != c["enqueued"]:
        problems.append(f'survivor {survivor["id"]}: gateway ledger {ledger} != node enqueued {c["enqueued"]}')
    if c["completed"] + c["submit_errors"] != c["enqueued"]:
        problems.append(f'survivor {survivor["id"]} never reached rest: {c}')

metrics = urllib.request.urlopen(f"http://{gw}/metrics", timeout=5).read().decode()
accepted = 0
for line in metrics.splitlines():
    if line.startswith("flep_gateway_accepted_total "):
        accepted = int(float(line.split()[1]))
if accepted - base != ok:
    problems.append(f"gateway accepted delta {accepted - base} != client OKs {ok}")

if problems:
    sys.exit("cluster smoke burst 2 FAILED:\n  " + "\n  ".join(problems))
print(f"burst 2 OK: {ok}/144 launches survived a node SIGKILL; survivor ledger exact, accepted delta matches")
EOF

echo "cluster smoke OK"
