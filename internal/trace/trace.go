// Package trace records device and runtime events from a simulation run
// and exports them as human-readable logs, CSV, JSON, or Gantt rows for
// inspection and debugging.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"flep/internal/gpu"
)

// Entry is one recorded event.
type Entry struct {
	Time   time.Duration `json:"time_ns"`
	Source string        `json:"source"` // "device" or "runtime"
	Kind   string        `json:"kind"`
	Kernel string        `json:"kernel"`
	SMLo   int           `json:"sm_lo"`
	SMHi   int           `json:"sm_hi"`
	Detail string        `json:"detail,omitempty"`
	// Device is the fleet shard the entry came from; 0 for a standalone
	// runtime. Set by the aggregation layer, not by the recorder.
	Device int `json:"device"`
	// Node is the cluster node the entry came from; empty for a single
	// flepd. Set by the gateway's aggregation layer, never by the recorder,
	// so single-node traces marshal unchanged.
	Node string `json:"node,omitempty"`
}

// Log collects entries in time order (the simulator is single-threaded, so
// appends arrive ordered). Log is safe for concurrent use: a long-running
// daemon appends from its event loop while HTTP handlers snapshot or export
// the log.
type Log struct {
	// Limit, when positive, bounds the retained entries: Add drops the
	// oldest entry once the log is full (a daemon would otherwise grow
	// without bound). Set it before the first Add.
	Limit int

	mu      sync.Mutex
	entries []Entry
	dropped int
}

// Add appends an entry, evicting the oldest if Limit is exceeded.
func (l *Log) Add(e Entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, e)
	if l.Limit > 0 && len(l.entries) > l.Limit {
		over := len(l.entries) - l.Limit
		l.entries = append(l.entries[:0], l.entries[over:]...)
		l.dropped += over
	}
}

// Dropped returns how many entries eviction has discarded.
func (l *Log) Dropped() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Runtime records a runtime-engine event.
func (l *Log) Runtime(at time.Duration, kind, kernel, detail string) {
	l.Add(Entry{Time: at, Source: "runtime", Kind: kind, Kernel: kernel, Detail: detail})
}

// DeviceObserver returns a gpu.Device observer feeding this log.
func (l *Log) DeviceObserver() func(gpu.Event) {
	return func(ev gpu.Event) {
		l.Add(Entry{
			Time: ev.Time, Source: "device", Kind: ev.Kind.String(),
			Kernel: ev.Kernel, SMLo: ev.SMLo, SMHi: ev.SMHi,
			Detail: fmt.Sprintf("remaining=%d", ev.Remaining),
		})
	}
}

// snapshot returns a copy of the entries taken under the lock, so callers
// can iterate without holding it.
func (l *Log) snapshot() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Entries returns a copy of the recorded entries.
func (l *Log) Entries() []Entry { return l.snapshot() }

// Len returns the entry count.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Filter returns the entries matching kind ("" matches all).
func (l *Log) Filter(kind string) []Entry {
	var out []Entry
	for _, e := range l.snapshot() {
		if kind == "" || e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// WriteText writes a human-readable log.
func (l *Log) WriteText(w io.Writer) error {
	for _, e := range l.snapshot() {
		_, err := fmt.Fprintf(w, "%12v %-8s %-8s %-8s [%2d,%2d) %s\n",
			e.Time, e.Source, e.Kind, e.Kernel, e.SMLo, e.SMHi, e.Detail)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the log as CSV with a header row.
func (l *Log) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_us", "source", "kind", "kernel", "sm_lo", "sm_hi", "detail"}); err != nil {
		return err
	}
	for _, e := range l.snapshot() {
		rec := []string{
			strconv.FormatFloat(float64(e.Time)/float64(time.Microsecond), 'f', 3, 64),
			e.Source, e.Kind, e.Kernel,
			strconv.Itoa(e.SMLo), strconv.Itoa(e.SMHi), e.Detail,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes the log as a JSON array.
func (l *Log) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l.snapshot())
}

// Merge k-way merges per-source trace streams into one global order.
// Each input stream must already be time-ordered (the simulator appends
// monotonically); the merge is then a deterministic O(n·k) head
// comparison with a total tie-break: equal timestamps order by Node,
// then by Device, and entries within one stream keep their append
// order. The fleet layer merges per-shard streams (Node empty, so the
// tie-break reduces to Device); the cluster gateway merges per-node
// streams that are themselves fleet merges. A plain concat+sort gives
// the same ordering only by accident of the sort's stability; the merge
// makes the contract explicit and holds even if a caller hands it
// streams assembled in a different order.
func Merge(streams [][]Entry) []Entry {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	// Heads walk each stream; pick the smallest (Time, Node, Device) each
	// round.
	idx := make([]int, len(streams))
	out := make([]Entry, 0, total)
	for len(out) < total {
		best := -1
		for i, s := range streams {
			if idx[i] >= len(s) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			if entryLess(s[idx[i]], streams[best][idx[best]]) {
				best = i
			}
		}
		out = append(out, streams[best][idx[best]])
		idx[best]++
	}
	return out
}

// entryLess is Merge's strict ordering: (Time, Node, Device).
func entryLess(a, b Entry) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.Device < b.Device
}

// GanttRow is one kernel's residency span on a set of SMs.
type GanttRow struct {
	Kernel     string
	SMLo, SMHi int
	Start, End time.Duration
}

// Gantt reconstructs kernel residency spans from device resident/complete/
// drained events: one row per contiguous residency.
func (l *Log) Gantt() []GanttRow {
	type open struct {
		start      time.Duration
		smLo, smHi int
	}
	active := map[string]*open{}
	var rows []GanttRow
	closeRow := func(k string, at time.Duration) {
		if o, ok := active[k]; ok {
			rows = append(rows, GanttRow{Kernel: k, SMLo: o.smLo, SMHi: o.smHi, Start: o.start, End: at})
			delete(active, k)
		}
	}
	for _, e := range l.snapshot() {
		if e.Source != "device" {
			continue
		}
		switch e.Kind {
		case "resident":
			closeRow(e.Kernel, e.Time)
			active[e.Kernel] = &open{start: e.Time, smLo: e.SMLo, smHi: e.SMHi}
		case "complete":
			closeRow(e.Kernel, e.Time)
		case "drained":
			if o, ok := active[e.Kernel]; ok {
				// Spatial drain shrinks the span: close and reopen.
				rows = append(rows, GanttRow{Kernel: e.Kernel, SMLo: o.smLo, SMHi: o.smHi, Start: o.start, End: e.Time})
				if e.SMHi < o.smHi {
					active[e.Kernel] = &open{start: e.Time, smLo: e.SMHi, smHi: o.smHi}
				} else {
					delete(active, e.Kernel)
				}
			}
		}
	}
	// Close any still-open rows at their start (zero-width, visible).
	names := make([]string, 0, len(active))
	for k := range active {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		o := active[k]
		rows = append(rows, GanttRow{Kernel: k, SMLo: o.smLo, SMHi: o.smHi, Start: o.start, End: o.start})
	}
	return rows
}
