package server

import (
	"sync"
	"testing"
	"time"
)

// TestSleepAbsorbPauseReturnsRemainder pins the pace-debt contract: a
// Pause landing mid-interval parks the loop promptly, and the unserved
// part of the interval comes back to the caller instead of being
// forgotten.
func TestSleepAbsorbPauseReturnsRemainder(t *testing.T) {
	s := &Server{ctrlCh: make(chan ctrlMsg, 1)}
	paused, draining := false, false
	stop := (<-chan struct{})(nil)

	const interval = 200 * time.Millisecond
	const pauseAt = 20 * time.Millisecond
	go func() {
		time.Sleep(pauseAt)
		s.ctrlCh <- ctrlMsg{kind: ctrlPause, ack: make(chan struct{})}
	}()
	start := time.Now()
	rem := s.sleepAbsorb(interval, &paused, &draining, &stop)
	served := time.Since(start)
	if !paused {
		t.Fatal("pause was not applied")
	}
	if served >= interval {
		t.Fatalf("slept the whole interval (%v) despite the pause", served)
	}
	if rem <= 0 || rem >= interval {
		t.Fatalf("remainder = %v, want within (0, %v)", rem, interval)
	}
	// served + remainder must cover the interval: losing the remainder is
	// exactly the bug that let a pause/resume storm outrun the pace floor.
	if served+rem < interval {
		t.Fatalf("served %v + remainder %v < interval %v: pace time lost", served, rem, interval)
	}
}

// TestSleepAbsorbKeepsIntervalAcrossCtrl feeds the sleeping loop control
// messages that leave it running (redundant Resumes): the single timer
// must keep ticking toward the original deadline rather than treating any
// ctrl arrival as the end of the interval.
func TestSleepAbsorbKeepsIntervalAcrossCtrl(t *testing.T) {
	s := &Server{ctrlCh: make(chan ctrlMsg, 4)}
	paused, draining := false, false
	stop := (<-chan struct{})(nil)

	const interval = 60 * time.Millisecond
	for i := 0; i < 4; i++ {
		s.ctrlCh <- ctrlMsg{kind: ctrlResume, ack: make(chan struct{})}
	}
	start := time.Now()
	rem := s.sleepAbsorb(interval, &paused, &draining, &stop)
	elapsed := time.Since(start)
	if rem != 0 {
		t.Fatalf("remainder = %v after full interval, want 0", rem)
	}
	if paused {
		t.Fatal("resume-only ctrl stream left the loop paused")
	}
	if elapsed < interval {
		t.Fatalf("interval truncated by ctrl messages: slept %v of %v", elapsed, interval)
	}
}

// TestSleepAbsorbStopEndsPacing: a Shutdown arriving mid-interval begins
// the drain immediately and owes nothing.
func TestSleepAbsorbStopEndsPacing(t *testing.T) {
	s := &Server{}
	stopCh := make(chan struct{})
	close(stopCh)
	stop := (<-chan struct{})(stopCh)
	paused, draining := false, false

	start := time.Now()
	rem := s.sleepAbsorb(time.Second, &paused, &draining, &stop)
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("stop did not interrupt the sleep promptly")
	}
	if rem != 0 {
		t.Fatalf("remainder = %v on shutdown, want 0", rem)
	}
	if !draining || stop != nil {
		t.Fatalf("stop not latched: draining=%v stop=%v", draining, stop)
	}
}

// TestPaceFloorSurvivesPauseResumeStorm is the end-to-end regression for
// the lost pace interval: under -pace, every simulated event must cost at
// least one pace interval of wall time even when a client hammers
// pause/resume. The pre-fix loop abandoned the in-progress interval on
// every ctrl message, so a storm let virtual time run at full speed.
func TestPaceFloorSurvivesPauseResumeStorm(t *testing.T) {
	const pace = 10 * time.Millisecond
	s, ts := newTestServer(t, Config{Pace: pace})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if s.Pause() != nil || s.Resume() != nil {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	start := time.Now()
	for i := 0; i < 8; i++ {
		if code, res := launch(t, ts.URL, LaunchRequest{Benchmark: "VA", Class: "small"}); code != 200 {
			t.Fatalf("launch %d: code %d (%+v)", i, code, res)
		}
	}
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	steps := s.Steps()
	if steps < 8 {
		t.Fatalf("only %d simulation steps; scenario too small to measure pacing", steps)
	}
	// Each step owes one pace interval; the final interval may still be in
	// flight when the last response is delivered.
	floor := time.Duration(steps-1) * pace
	if elapsed < floor {
		t.Fatalf("virtual clock outpaced the floor: %d steps in %v (< %v)", steps, elapsed, floor)
	}
}
