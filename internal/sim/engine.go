// Package sim provides a deterministic discrete-event simulation engine.
//
// All FLEP components run against a virtual clock owned by an Engine.
// Events are ordered by (time, sequence number), so simulations are fully
// reproducible: scheduling the same events always yields the same execution
// order regardless of map iteration or goroutine scheduling (the engine is
// single-threaded by design).
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a callback scheduled to run at a virtual time.
type Event struct {
	when     time.Duration
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index; -1 when not queued
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// Canceled reports whether Cancel has been called on the event.
func (e *Event) Canceled() bool { return e != nil && e.canceled }

// When returns the virtual time the event is scheduled for.
func (e *Event) When() time.Duration { return e.when }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator.
// The zero value is ready to use.
type Engine struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	running bool
}

// New returns a fresh engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Schedule runs fn after delay of virtual time. A negative delay is an
// error in the caller; Schedule panics to surface it immediately.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time when, which must not be in the past.
func (e *Engine) At(when time.Duration, fn func()) *Event {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", when, e.now))
	}
	if fn == nil {
		panic("sim: nil event func")
	}
	e.seq++
	ev := &Event{when: when, seq: e.seq, fn: fn, index: -1}
	heap.Push(&e.queue, ev)
	return ev
}

// Pending returns the number of queued events that can still fire.
// Canceled events sit in the heap until their time comes up, but they are
// dead weight, not pending work — a long-lived daemon uses Pending as its
// idleness signal, so counting them would keep an idle engine looking
// busy.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.canceled {
			n++
		}
	}
	return n
}

// Step fires the earliest pending event, advancing the clock to its time.
// It reports whether an event fired.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.when
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty, returning the final clock.
func (e *Engine) Run() time.Duration {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with time ≤ deadline, then sets the clock to
// deadline (if it is ahead of the last fired event). It returns the clock.
func (e *Engine) RunUntil(deadline time.Duration) time.Duration {
	if e.running {
		panic("sim: RunUntil called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 {
		next := e.peek()
		if next == nil {
			break
		}
		if next.when > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// peek returns the earliest non-canceled event without firing it, popping
// canceled events as it goes.
func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if !ev.canceled {
			return ev
		}
		heap.Pop(&e.queue)
	}
	return nil
}
