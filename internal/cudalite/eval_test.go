package cudalite

import (
	"strings"
	"testing"
)

// run1 executes a single-thread kernel over an output buffer and returns it.
func run1(t *testing.T, src string, out *Buffer, extra ...Value) error {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(prog)
	args := append([]Value{PtrValue(out, 0)}, extra...)
	return m.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(1), Args: args})
}

func TestEvalControlFlow(t *testing.T) {
	o := NewIntBuffer("o", 4)
	err := run1(t, `
__global__ void k(int* o) {
    int sum = 0;
    for (int i = 0; i < 10; ++i) {
        if (i % 2 == 0) {
            continue;
        }
        if (i > 7) {
            break;
        }
        sum += i;
    }
    o[0] = sum; // 1+3+5+7 = 16
    int j = 0;
    while (true) {
        j++;
        if (j >= 5) {
            break;
        }
    }
    o[1] = j;
    int outer = 0;
    for (int a = 0; a < 3; ++a) {
        for (int b = 0; b < 3; ++b) {
            if (b == 1) {
                break;
            }
            outer++;
        }
    }
    o[2] = outer; // 3 iterations of inner b==0
}
`, o)
	if err != nil {
		t.Fatal(err)
	}
	if o.I[0] != 16 || o.I[1] != 5 || o.I[2] != 3 {
		t.Fatalf("o = %v", o.I)
	}
}

func TestEvalTernaryAndLogic(t *testing.T) {
	o := NewIntBuffer("o", 5)
	err := run1(t, `
__global__ void k(int* o) {
    int a = 5;
    o[0] = a > 3 ? 10 : 20;
    o[1] = a < 3 ? 10 : 20;
    o[2] = (a > 0 && a < 10) ? 1 : 0;
    o[3] = (a > 10 || a == 5) ? 1 : 0;
    o[4] = !false && !(a == 0) ? 7 : 8;
}
`, o)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{10, 20, 1, 1, 7}
	for i := range want {
		if o.I[i] != want[i] {
			t.Fatalf("o[%d] = %d, want %d", i, o.I[i], want[i])
		}
	}
}

// Short-circuit must not evaluate the right side (which would trap).
func TestEvalShortCircuitSkipsTrap(t *testing.T) {
	o := NewIntBuffer("o", 2)
	err := run1(t, `
__global__ void k(int* o) {
    int zero = 0;
    if (false && 1 / zero > 0) {
        o[0] = 1;
    }
    if (true || 1 / zero > 0) {
        o[1] = 1;
    }
}
`, o)
	if err != nil {
		t.Fatalf("short circuit evaluated the trap: %v", err)
	}
	if o.I[0] != 0 || o.I[1] != 1 {
		t.Fatalf("o = %v", o.I)
	}
}

func TestEvalIncDec(t *testing.T) {
	o := NewIntBuffer("o", 6)
	err := run1(t, `
__global__ void k(int* o) {
    int a = 5;
    o[0] = a++;
    o[1] = a;
    o[2] = ++a;
    o[3] = a--;
    o[4] = --a;
    o[5] = a;
}
`, o)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{5, 6, 7, 7, 5, 5}
	for i := range want {
		if o.I[i] != want[i] {
			t.Fatalf("o[%d] = %d, want %d", i, o.I[i], want[i])
		}
	}
}

func TestEvalIncOnArrayElement(t *testing.T) {
	o := NewIntBuffer("o", 2)
	o.I[0] = 10
	err := run1(t, `
__global__ void k(int* o) {
    o[0]++;
    o[1] = o[0]++;
}
`, o)
	if err != nil {
		t.Fatal(err)
	}
	if o.I[0] != 12 || o.I[1] != 11 {
		t.Fatalf("o = %v", o.I)
	}
}

func TestEvalBitOps(t *testing.T) {
	o := NewIntBuffer("o", 6)
	err := run1(t, `
__global__ void k(int* o) {
    int a = 12;
    int b = 10;
    o[0] = a & b;
    o[1] = a | b;
    o[2] = a ^ b;
    o[3] = a << 2;
    o[4] = a >> 1;
    o[5] = ~a;
}
`, o)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{8, 14, 6, 48, 6, -13}
	for i := range want {
		if o.I[i] != want[i] {
			t.Fatalf("o[%d] = %d, want %d", i, o.I[i], want[i])
		}
	}
}

func TestEvalPointerNullCompare(t *testing.T) {
	o := NewIntBuffer("o", 2)
	err := run1(t, `
__global__ void k(int* o) {
    int* p = NULL;
    if (p == NULL) {
        o[0] = 1;
    }
    p = o;
    if (p != NULL) {
        o[1] = 1;
    }
}
`, o)
	if err != nil {
		t.Fatal(err)
	}
	if o.I[0] != 1 || o.I[1] != 1 {
		t.Fatalf("o = %v", o.I)
	}
}

func TestEvalPointerDifference(t *testing.T) {
	o := NewIntBuffer("o", 1)
	err := run1(t, `
__global__ void k(int* o) {
    int* p = o + 7;
    int* q = o + 3;
    o[0] = p - q;
}
`, o)
	if err != nil {
		t.Fatal(err)
	}
	if o.I[0] != 4 {
		t.Fatalf("pointer diff = %d", o.I[0])
	}
}

func TestEvalAtomicMaxExch(t *testing.T) {
	o := NewIntBuffer("o", 3)
	err := run1(t, `
__global__ void k(int* o) {
    atomicMax(&o[0], 7);
    atomicMax(&o[0], 3);
    o[1] = atomicExch(&o[2], 42);
}
`, o)
	if err != nil {
		t.Fatal(err)
	}
	if o.I[0] != 7 || o.I[1] != 0 || o.I[2] != 42 {
		t.Fatalf("o = %v", o.I)
	}
}

func TestEvalDeviceFunctionRecursionLimit(t *testing.T) {
	o := NewIntBuffer("o", 1)
	err := run1(t, `
__device__ int spin(int x) { return spin(x + 1); }
__global__ void k(int* o) { o[0] = spin(0); }
`, o)
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("err = %v, want call depth error", err)
	}
}

func TestEvalSharedInDeviceFunction(t *testing.T) {
	prog := mustParse(t, `
__device__ void fill(float* dst) {
    __shared__ float stage[32];
    stage[threadIdx.x] = (float)threadIdx.x * 2.0;
    __syncthreads();
    dst[threadIdx.x] = stage[31 - threadIdx.x];
}
__global__ void k(float* out) { fill(out); }
`)
	m := NewMachine(prog)
	out := NewFloatBuffer("out", 32)
	if err := m.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(32), Args: []Value{PtrValue(out, 0)}}); err != nil {
		t.Fatal(err)
	}
	for i := range out.F {
		if out.F[i] != float64((31-i)*2) {
			t.Fatalf("out[%d] = %g", i, out.F[i])
		}
	}
}

func TestEvalCastBoolAndFloat(t *testing.T) {
	o := NewIntBuffer("o", 3)
	err := run1(t, `
__global__ void k(int* o, float x) {
    bool b = x;
    o[0] = b ? 1 : 0;
    bool c = 0.0;
    o[1] = c ? 1 : 0;
    o[2] = (int)(x * 2.0);
}
`, o, FloatValue(3.25))
	if err != nil {
		t.Fatal(err)
	}
	if o.I[0] != 1 || o.I[1] != 0 || o.I[2] != 6 {
		t.Fatalf("o = %v", o.I)
	}
}

func TestEvalModuloByZero(t *testing.T) {
	o := NewIntBuffer("o", 1)
	err := run1(t, `__global__ void k(int* o) { int z = 0; o[0] = 5 % z; }`, o)
	if err == nil || !strings.Contains(err.Error(), "modulo by zero") {
		t.Fatalf("err = %v", err)
	}
}

func TestEvalUndefinedIdent(t *testing.T) {
	o := NewIntBuffer("o", 1)
	err := run1(t, `__global__ void k(int* o) { o[0] = nothere; }`, o)
	if err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Fatalf("err = %v", err)
	}
}

func TestEvalScopeShadowing(t *testing.T) {
	o := NewIntBuffer("o", 2)
	err := run1(t, `
__global__ void k(int* o) {
    int x = 1;
    {
        int x = 2;
        o[0] = x;
    }
    o[1] = x;
}
`, o)
	if err != nil {
		t.Fatal(err)
	}
	if o.I[0] != 2 || o.I[1] != 1 {
		t.Fatalf("o = %v", o.I)
	}
}

func TestEvalAddressOfLocalScalarErrors(t *testing.T) {
	o := NewIntBuffer("o", 1)
	err := run1(t, `__global__ void k(int* o) { int x = 1; int* p = &x; o[0] = *p; }`, o)
	if err == nil || !strings.Contains(err.Error(), "register variable") {
		t.Fatalf("err = %v", err)
	}
}

func TestEvalAddressOfArrayElement(t *testing.T) {
	o := NewIntBuffer("o", 1)
	err := run1(t, `
__global__ void k(int* o) {
    int arr[4];
    arr[2] = 9;
    int* p = &arr[2];
    o[0] = *p;
}
`, o)
	if err != nil {
		t.Fatal(err)
	}
	if o.I[0] != 9 {
		t.Fatalf("o = %v", o.I)
	}
}

func TestEvalFloatModulo(t *testing.T) {
	o := NewFloatBuffer("o", 1)
	prog := mustParse(t, `__global__ void k(float* o) { o[0] = 7.5 % 2.0; }`)
	m := NewMachine(prog)
	if err := m.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(1), Args: []Value{PtrValue(o, 0)}}); err != nil {
		t.Fatal(err)
	}
	if o.F[0] != 1.5 {
		t.Fatalf("o = %v", o.F)
	}
}
