// Command flepload drives a running flepd with concurrent client
// sessions and reports serving metrics: throughput, real-time latency
// percentiles, virtual-time turnaround, and ANTT (the paper's
// responsiveness metric, computed from per-request solo-normalized
// turnaround). It finishes by verifying the daemon's exactly-once
// invariant: every accepted launch completed exactly once, with no lost
// or duplicated invocations.
//
// Usage:
//
//	flepload -addr http://127.0.0.1:7450 -clients 100 -n 10 \
//	         -bench VA,MM -class small -prio 1=0.7,2=0.3
//
// -addr may also point at a flepgw gateway: the surface is identical,
// results carry an X-Flep-Node header naming the serving node (so
// exactly-once verification keys on (node, device, id)), and the
// node-labeled /metrics exposition yields a per-node throughput/ANTT
// breakdown in the delta report.
//
// -rate 0 (default) runs closed-loop clients: each client submits its
// next launch as soon as the previous one completes. A positive -rate
// runs open-loop: each client submits every 1/rate seconds regardless of
// completions, so the daemon's admission queue and 429 backpressure are
// exercised. 429s are retried after the server's Retry-After hint and
// do not count as failures.
//
// -deadline marks launches latency-critical with that SLO budget
// (virtual time from admission); -deadline-share makes only a fraction
// of them so, leaving the rest best-effort — the one-command way to
// drive a mixed LC/BE workload against an EDF daemon. The report then
// adds client-observed SLO attainment, and the daemon deltas include
// flep_slo_* and any best-effort launches shed by admission control.
//
// -saturate replaces the client/launch-count model with an open-loop
// saturation ramp: offered load starts at -sat-start launches/s and
// grows geometrically (-sat-factor) in -sat-window stages until the
// 429-reject share crosses -sat-threshold (or -sat-stages runs out).
// Submissions are never retried — a 429 is the datum, not an obstacle —
// and the run ends by waiting for the daemon to return to rest so the
// exactly-once invariant is verified after the storm. The final line is
// machine-readable (`SATURATION {...json...}`) for scripts/bench.sh.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flep/internal/model"
	"flep/internal/obs"
	"flep/internal/replay"
)

// launchRequest mirrors server.LaunchRequest (flepload speaks only the
// wire protocol; it does not import the server).
type launchRequest struct {
	Client     string  `json:"client,omitempty"`
	Benchmark  string  `json:"benchmark"`
	Class      string  `json:"class,omitempty"`
	Priority   int     `json:"priority,omitempty"`
	Weight     float64 `json:"weight,omitempty"`
	TimeoutMS  int     `json:"timeout_ms,omitempty"`
	DeadlineMS int     `json:"deadline_ms,omitempty"`
	// Model-graph coordinates (see -model): the daemon parks a stage until
	// its After prerequisites complete.
	Model  string   `json:"model,omitempty"`
	Graph  string   `json:"graph,omitempty"`
	Stage  string   `json:"stage,omitempty"`
	After  []string `json:"after,omitempty"`
	Stages int      `json:"stages,omitempty"`
}

// launchResult mirrors server.LaunchResult.
type launchResult struct {
	ID           int     `json:"id"`
	Device       int     `json:"device"`
	Kernel       string  `json:"kernel"`
	TurnaroundNS int64   `json:"turnaround_ns"`
	WaitingNS    int64   `json:"waiting_ns"`
	NTT          float64 `json:"ntt"`
	Preemptions  int     `json:"preemptions"`
	OverheadNS   int64   `json:"overhead_ns"`
	SLO          string  `json:"slo"`
	SLOMarginNS  int64   `json:"slo_margin_ns"`
	Canceled     string  `json:"canceled"`
	Err          string  `json:"error"`
}

type statusBody struct {
	Counters struct {
		Enqueued     int64 `json:"enqueued"`
		Completed    int64 `json:"completed"`
		SubmitErrors int64 `json:"submit_errors"`
		RejectedFull int64 `json:"rejected_queue_full"`
		TimedOut     int64 `json:"timed_out"`
	} `json:"counters"`
	QueueLen int `json:"queue_len"`
}

type benchInfo struct {
	Name string `json:"name"`
}

// sample is one completed request as seen by a client. node is the
// serving node from the gateway's X-Flep-Node header (empty when the
// target is a single flepd).
type sample struct {
	id          int
	device      int
	node        string
	realLatency time.Duration
	turnaround  time.Duration
	waiting     time.Duration
	ntt         float64
	preemptions int
	slo         string // "attained"/"missed"; empty for best-effort
	sloMargin   time.Duration
}

type stats struct {
	mu       sync.Mutex
	samples  []sample
	retries  int64 // 429s absorbed
	timeouts int64 // 504s
	errors   int64
	models   map[string]*modelAgg // per-model graph accounting (-model)
}

// modelAgg accumulates one model's graph outcomes across all clients.
type modelAgg struct {
	graphs, completed, canceled         int64
	stagesOK, stagesCanceled, stagesRej int64
	sloAttained, sloMissed              int64
	nttSum                              float64
	nttN                                int64
	makespans                           []time.Duration // real time, completed graphs only
}

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:7450", "flepd base URL")
		clients   = flag.Int("clients", 100, "concurrent client sessions")
		perC      = flag.Int("n", 10, "launches per client")
		rate      = flag.Float64("rate", 0, "per-client open-loop launches/sec (0 = closed loop)")
		benchCSV  = flag.String("bench", "", "benchmarks to launch (empty = discover from daemon)")
		class     = flag.String("class", "small", "input class: large, small, trivial")
		prioMix   = flag.String("prio", "1=0.5,2=0.5", "priority mix, e.g. 1=0.7,2=0.3")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-request completion wait")
		seed      = flag.Int64("seed", 1, "workload-mix random seed")
		deadline  = flag.Duration("deadline", 0, "SLO budget per latency-critical launch in virtual time (0 = best-effort)")
		dlShare   = flag.Float64("deadline-share", 1.0, "fraction of launches that carry the -deadline budget (rest stay best-effort)")
		maxRetry  = flag.Int("max-retries", 200, "max 429 retries per launch")
		modelCSV  = flag.String("model", "", "model-graph workload: comma-separated NAME[:DEADLINE] specs, where NAME is a preset graph (resnet, bert, diamond), or a path to a JSON graph file, and DEADLINE an SLO budget for the graph's terminal stage. Clients are dealt specs round-robin and submit whole kernel DAGs; deadline-bearing models run latency-critical (priority 2), the rest best-effort (priority 1)")
		record    = flag.String("record", "", "write a client-side replay trace (JSONL) to this path")
		verifySrv = flag.Bool("verify-status", true, "reconcile server /v1/status counters after the run (disable when a cluster node is killed mid-run: the dead node's completions leave the gateway's summed view)")

		saturate   = flag.Bool("saturate", false, "open-loop saturation ramp mode (see package docs); ignores -clients/-n/-rate")
		satStart   = flag.Float64("sat-start", 500, "saturation: initial offered launches/s")
		satFactor  = flag.Float64("sat-factor", 1.7, "saturation: offered-rate growth factor per stage")
		satWindow  = flag.Duration("sat-window", 2*time.Second, "saturation: measurement window per ramp stage")
		satShare   = flag.Float64("sat-threshold", 0.05, "saturation: stop once this share of submissions is 429-rejected")
		satWorkers = flag.Int("sat-workers", 64, "saturation: concurrent submitter goroutines")
		satStages  = flag.Int("sat-stages", 12, "saturation: max ramp stages")
	)
	flag.Parse()

	// Accept a bare host:port the way curl does.
	if !strings.Contains(*addr, "://") {
		*addr = "http://" + *addr
	}

	mix, err := parseMix(*prioMix)
	if err != nil {
		fatalf("%v", err)
	}
	specs, err := parseModelSpecs(*modelCSV)
	if err != nil {
		fatalf("%v", err)
	}
	var benches []string
	if len(specs) == 0 {
		benches = splitCSV(*benchCSV)
		if len(benches) == 0 {
			benches, err = discoverBenchmarks(*addr)
			if err != nil {
				fatalf("discovering benchmarks: %v", err)
			}
		}
		if len(benches) == 0 {
			fatalf("no benchmarks to launch")
		}
	}
	if *saturate {
		runSaturation(*addr, benches, *class, specs, satConfig{
			start: *satStart, factor: *satFactor, window: *satWindow,
			threshold: *satShare, workers: *satWorkers, maxStages: *satStages,
			deadline: *deadline,
		})
		return
	}
	if len(specs) > 0 {
		names := make([]string, len(specs))
		for i, sp := range specs {
			names[i] = sp.String()
		}
		fmt.Printf("flepload: %d clients × %d graphs, models=%s rate=%s\n",
			*clients, *perC, strings.Join(names, ","), rateString(*rate))
	} else {
		fmt.Printf("flepload: %d clients × %d launches, benches=%s class=%s mix=%s rate=%s\n",
			*clients, *perC, strings.Join(benches, ","), *class, *prioMix, rateString(*rate))
	}

	httpc := &http.Client{Timeout: *timeout + 10*time.Second}
	st := &stats{models: map[string]*modelAgg{}}
	var recorder *replay.Recorder
	if *record != "" {
		sorted := append([]string(nil), benches...)
		for _, sp := range specs {
			sorted = append(sorted, sp.graph.Benchmarks()...)
		}
		sort.Strings(sorted)
		sorted = dedupSorted(sorted)
		recorder, err = replay.NewRecorder(*record, replay.Header{
			Source:     replay.SourceFlepload,
			Benchmarks: sorted,
			Seed:       *seed,
		}, replay.RecorderOptions{WallClock: time.Now})
		if err != nil {
			fatalf("%v", err)
		}
	}
	before, merr := scrapeMetrics(*addr)
	if merr != nil {
		fmt.Printf("flepload: no /metrics before run (%v); deltas disabled\n", merr)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cc := clientConfig{
				addr: *addr, id: fmt.Sprintf("load-%04d", c),
				benches: benches, class: *class, mix: mix,
				n: *perC, rate: *rate, timeout: *timeout,
				maxRetry: *maxRetry,
				deadline: *deadline, dlShare: *dlShare,
				rng: rand.New(rand.NewSource(*seed + int64(c))),
				rec: recorder, runStart: start,
			}
			if len(specs) > 0 {
				runGraphClient(httpc, st, cc, specs[c%len(specs)])
			} else {
				runClient(httpc, st, cc)
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	if recorder != nil {
		if err := recorder.Close(); err != nil {
			fmt.Printf("flepload: closing trace: %v\n", err)
		} else {
			fmt.Printf("flepload: recorded %d launches to %s\n", recorder.Seq(), recorder.Path())
		}
	}

	report(st, wall)
	if err := verifyExactlyOnce(*addr, st, *verifySrv); err != nil {
		fmt.Printf("exactly-once:  FAIL: %v\n", err)
		os.Exit(1)
	}
	if *verifySrv {
		fmt.Printf("exactly-once:  OK (no lost or duplicated invocations)\n")
	} else {
		fmt.Printf("exactly-once:  OK client-side (unique invocation per result; server reconcile skipped)\n")
	}

	// Scrape after the daemon is at rest (verifyExactlyOnce polled for
	// that), so the deltas cover exactly this run's work.
	if merr == nil {
		after, err := scrapeMetrics(*addr)
		if err != nil {
			fmt.Printf("flepload: no /metrics after run: %v\n", err)
			return
		}
		reportMetricsDeltas(before, after, wall)
	}
}

// scrapeMetrics fetches and parses the daemon's Prometheus exposition.
func scrapeMetrics(addr string) (obs.Snapshot, error) {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	return obs.ParseText(resp.Body)
}

// reportMetricsDeltas prints the daemon-side view of the run: what the
// scheduler, device, and policy did while the clients were hammering it.
// Everything is an after−before delta, so a long-lived daemon's history
// does not pollute this run's numbers.
func reportMetricsDeltas(before, after obs.Snapshot, wall time.Duration) {
	// SumMatching tolerates the fleet's injected device label: a family
	// delta sums every shard's series, and a ("kind", "primary") match
	// still selects the right members whatever other labels ride along.
	d := func(name string, pairs ...string) float64 {
		return after.SumMatching(name, pairs...) - before.SumMatching(name, pairs...)
	}
	mean := func(name string) (float64, float64) {
		n := d(name + "_count")
		if n == 0 {
			return 0, 0
		}
		return d(name+"_sum") / n, n
	}

	fmt.Printf("\ndaemon deltas (/metrics, after − before, all devices):\n")
	fmt.Printf("  runtime:     submits=%.0f dispatches=%.0f (primary=%.0f guest=%.0f)\n",
		d("flep_runtime_submits_total"),
		d("flep_runtime_dispatches_total"),
		d("flep_runtime_dispatches_total", "kind", "primary"),
		d("flep_runtime_dispatches_total", "kind", "guest"))
	fmt.Printf("  preemptions: temporal=%.0f spatial=%.0f aborted=%.0f\n",
		d("flep_runtime_preemptions_total", "mode", "temporal"),
		d("flep_runtime_preemptions_total", "mode", "spatial"),
		d("flep_runtime_preempt_aborts_total"))
	if m, n := mean("flep_runtime_drain_latency_seconds"); n > 0 {
		fmt.Printf("  drains:      %.0f, mean latency %v (virtual)\n", n, secs(m))
	}
	if m, n := mean("flep_runtime_overhead_prediction_error_seconds"); n > 0 {
		fmt.Printf("  overhead:    mean |predicted − realized| = %v over %.0f drains\n", secs(m), n)
	}
	if rot := d("flep_ffs_epochs_total"); rot > 0 {
		fmt.Printf("  ffs epochs:  rotations=%.0f extensions=%.0f evictions=%.0f\n",
			d("flep_ffs_epochs_total", "kind", "rotation"),
			d("flep_ffs_epochs_total", "kind", "extension"),
			d("flep_ffs_evictions_total"))
	}
	fmt.Printf("  device:      launches=%.0f ctas=%.0f drains=%.0f completions=%.0f\n",
		d("flep_device_launches_total"), d("flep_device_ctas_placed_total"),
		d("flep_device_drains_total"), d("flep_device_completions_total"))
	if m, n := mean("flep_server_request_latency_seconds"); n > 0 {
		fmt.Printf("  server:      %.0f results, mean real latency %v\n", n, secs(m))
	}
	if slo := d("flep_slo_attained_total") + d("flep_slo_missed_total"); slo > 0 {
		line := fmt.Sprintf("  slo:         attained=%.0f missed=%.0f",
			d("flep_slo_attained_total"), d("flep_slo_missed_total"))
		if m, n := mean("flep_slo_margin_seconds"); n > 0 {
			line += fmt.Sprintf(" mean-margin=%v", secs(m))
		}
		if shed := d("flep_server_launches_total", "outcome", "rejected_best_effort_shed"); shed > 0 {
			line += fmt.Sprintf(" best-effort-shed=%.0f", shed)
		}
		fmt.Println(line)
	}

	// When the target is a flepgw gateway its /metrics carries every
	// node's exposition relabeled with node=<id>; splitting the deltas by
	// that label recovers each node's share of the run without asking the
	// nodes directly.
	nodes := after.LabelValues("flep_server_launches_total", "node")
	if len(nodes) < 2 {
		return
	}
	fmt.Printf("per node (node-labeled metrics deltas):\n")
	for _, id := range nodes {
		dn := func(name string, pairs ...string) float64 {
			pairs = append(pairs, "node", id)
			return after.SumMatching(name, pairs...) - before.SumMatching(name, pairs...)
		}
		completed := dn("flep_server_launches_total", "outcome", "completed")
		antt := 0.0
		if n := dn("flep_server_ntt_count"); n > 0 {
			antt = dn("flep_server_ntt_sum") / n
		}
		fmt.Printf("  node %s:     completed=%.0f  throughput %.1f launches/s  ANTT %.3f  preemptions=%.0f\n",
			id, completed, completed/wall.Seconds(), antt,
			dn("flep_runtime_preemptions_total"))
	}
}

// secs renders a float seconds value as a duration.
func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

type clientConfig struct {
	addr, id string
	benches  []string
	class    string
	mix      []prioShare
	n        int
	rate     float64
	timeout  time.Duration
	maxRetry int
	deadline time.Duration // SLO budget; zero = best-effort
	dlShare  float64       // fraction of launches carrying the budget
	rng      *rand.Rand
	rec      *replay.Recorder // nil unless -record
	runStart time.Time        // shared zero point for trace arrival offsets
}

func runClient(httpc *http.Client, st *stats, cc clientConfig) {
	var tick <-chan time.Time
	if cc.rate > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / cc.rate))
		defer t.Stop()
		tick = t.C
	}
	for i := 0; i < cc.n; i++ {
		if tick != nil {
			<-tick
		}
		req := launchRequest{
			Client:    cc.id,
			Benchmark: cc.benches[cc.rng.Intn(len(cc.benches))],
			Class:     cc.class,
			Priority:  pickPriority(cc.mix, cc.rng.Float64()),
			TimeoutMS: int(cc.timeout / time.Millisecond),
		}
		if cc.deadline > 0 && cc.rng.Float64() < cc.dlShare {
			req.DeadlineMS = int(cc.deadline / time.Millisecond)
		}
		launchOnce(httpc, st, cc, req)
	}
}

// launchOnce submits one launch, absorbing 429 backpressure by honoring
// Retry-After. Each accepted (non-429) submission is terminal.
func launchOnce(httpc *http.Client, st *stats, cc clientConfig, req launchRequest) {
	body, _ := json.Marshal(req)
	for attempt := 0; ; attempt++ {
		begin := time.Now()
		resp, err := httpc.Post(cc.addr+"/v1/launch", "application/json", bytes.NewReader(body))
		if err != nil {
			st.note(func() { st.errors++ })
			return
		}
		var res launchResult
		decErr := json.NewDecoder(resp.Body).Decode(&res)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			st.note(func() { st.retries++ })
			if attempt >= cc.maxRetry {
				st.note(func() { st.errors++ })
				return
			}
			time.Sleep(retryAfter(resp))
			continue
		case resp.StatusCode == http.StatusGatewayTimeout:
			st.note(func() { st.timeouts++ })
			return
		case resp.StatusCode != http.StatusOK || decErr != nil:
			st.note(func() { st.errors++ })
			return
		}
		s := sample{
			id:          res.ID,
			device:      res.Device,
			node:        resp.Header.Get("X-Flep-Node"),
			realLatency: time.Since(begin),
			turnaround:  time.Duration(res.TurnaroundNS),
			waiting:     time.Duration(res.WaitingNS),
			ntt:         res.NTT,
			preemptions: res.Preemptions,
			slo:         res.SLO,
			sloMargin:   time.Duration(res.SLOMarginNS),
		}
		st.note(func() { st.samples = append(st.samples, s) })
		if cc.rec != nil {
			// Client-side traces record real arrival offsets (the daemon's
			// virtual clock is not visible here), so they replay in timed
			// mode only; Step stays zero.
			sloClass := ""
			if req.DeadlineMS > 0 {
				sloClass = "latency"
			}
			cc.rec.Record(replay.Record{
				At:         begin.Sub(cc.runStart).Nanoseconds(),
				Device:     res.Device,
				Node:       s.node,
				Client:     cc.id,
				Bench:      req.Benchmark,
				Class:      req.Class,
				Priority:   req.Priority,
				Weight:     req.Weight,
				DeadlineNS: int64(req.DeadlineMS) * int64(time.Millisecond),
				SLOClass:   sloClass,
			})
		}
		return
	}
}

// ---- model-graph clients (-model) ----

// modelSpec is one parsed -model element: a loaded DAG plus the SLO
// budget its terminal stage carries (zero = best-effort model).
type modelSpec struct {
	name     string
	graph    *model.Graph
	deadline time.Duration
}

func (sp modelSpec) String() string {
	if sp.deadline > 0 {
		return fmt.Sprintf("%s:%v", sp.name, sp.deadline)
	}
	return sp.name
}

// parseModelSpecs parses "resnet:5ms,bert" into model specs. A name that
// looks like a path (contains a separator or dot) loads a JSON graph
// file; anything else must be a preset.
func parseModelSpecs(s string) ([]modelSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []modelSpec
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		name, dl, hasDL := strings.Cut(f, ":")
		sp := modelSpec{}
		var g *model.Graph
		var err error
		if strings.ContainsAny(name, "/.") {
			g, err = model.Load(name)
		} else {
			g, err = model.ByName(name)
		}
		if err != nil {
			return nil, fmt.Errorf("model %q: %v", name, err)
		}
		sp.graph = g
		sp.name = g.Name
		if hasDL {
			d, err := time.ParseDuration(dl)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("model %q: bad deadline %q (want a positive duration)", name, dl)
			}
			sp.deadline = d
		} else if g.DeadlineMS > 0 {
			sp.deadline = time.Duration(g.DeadlineMS) * time.Millisecond
		}
		out = append(out, sp)
	}
	return out, nil
}

// dedupSorted removes adjacent duplicates from a sorted slice.
func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// stageOutcome is one stage POST's terminal result within a graph.
type stageOutcome struct {
	stage   string
	status  int // HTTP status; 0 on transport/decode error
	node    string
	res     launchResult
	latency time.Duration
}

// submitGraph posts every stage of one graph instance concurrently — the
// daemon's pending-dependency table enforces ordering — and returns when
// all stages are terminal. Graph stages are never retried: a 429 or 409
// is the graph's outcome, not an obstacle (the DISB-style client measures
// what the serving system did, it does not paper over shedding).
func submitGraph(httpc *http.Client, addr string, sp modelSpec, client, graphID string,
	timeout time.Duration, rec *replay.Recorder, runStart time.Time) []stageOutcome {
	g := sp.graph
	terminal := g.Terminal().Name
	prio := 1
	if sp.deadline > 0 {
		prio = 2
	}
	outs := make([]stageOutcome, len(g.Stages))
	var wg sync.WaitGroup
	for i := range g.Stages {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stg := &g.Stages[i]
			req := launchRequest{
				Client: client, Benchmark: stg.Bench, Class: stg.Class,
				Priority: prio, TimeoutMS: int(timeout / time.Millisecond),
				Model: sp.name, Graph: graphID, Stage: stg.Name,
				After: stg.After, Stages: len(g.Stages),
			}
			if stg.Name == terminal && sp.deadline > 0 {
				req.DeadlineMS = int(sp.deadline / time.Millisecond)
			}
			body, _ := json.Marshal(req)
			begin := time.Now()
			resp, err := httpc.Post(addr+"/v1/launch", "application/json", bytes.NewReader(body))
			if err != nil {
				outs[i] = stageOutcome{stage: stg.Name}
				return
			}
			var res launchResult
			decErr := json.NewDecoder(resp.Body).Decode(&res)
			io.Copy(io.Discard, resp.Body)
			node := resp.Header.Get("X-Flep-Node")
			resp.Body.Close()
			status := resp.StatusCode
			if status == http.StatusOK && decErr != nil {
				status = 0
			}
			outs[i] = stageOutcome{stage: stg.Name, status: status, node: node, res: res, latency: time.Since(begin)}
			if rec != nil && status == http.StatusOK {
				sloClass := ""
				if req.DeadlineMS > 0 {
					sloClass = "latency"
				}
				rec.Record(replay.Record{
					At:         begin.Sub(runStart).Nanoseconds(),
					Device:     res.Device,
					Node:       node,
					Client:     client,
					Bench:      req.Benchmark,
					Class:      req.Class,
					Priority:   req.Priority,
					DeadlineNS: int64(req.DeadlineMS) * int64(time.Millisecond),
					SLOClass:   sloClass,
					Model:      sp.name,
					GraphID:    graphID,
					Stage:      stg.Name,
					After:      stg.After,
				})
			}
		}(i)
	}
	wg.Wait()
	return outs
}

// runGraphClient is the dependent-client loop: each iteration submits one
// whole graph instance (closed loop by default; -rate paces iterations
// open-loop), then folds the outcome into the per-model aggregates.
func runGraphClient(httpc *http.Client, st *stats, cc clientConfig, sp modelSpec) {
	var tick <-chan time.Time
	if cc.rate > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / cc.rate))
		defer t.Stop()
		tick = t.C
	}
	for i := 0; i < cc.n; i++ {
		if tick != nil {
			<-tick
		}
		graphID := fmt.Sprintf("%s-g%04d", cc.id, i)
		begin := time.Now()
		outs := submitGraph(httpc, cc.addr, sp, cc.id, graphID, cc.timeout, cc.rec, cc.runStart)
		st.noteGraph(sp.name, outs, time.Since(begin))
	}
}

// noteGraph folds one graph instance's stage outcomes into the stats.
func (st *stats) noteGraph(name string, outs []stageOutcome, makespan time.Duration) {
	st.mu.Lock()
	defer st.mu.Unlock()
	agg := st.models[name]
	if agg == nil {
		agg = &modelAgg{}
		st.models[name] = agg
	}
	agg.graphs++
	allOK := true
	for _, o := range outs {
		switch o.status {
		case http.StatusOK:
			agg.stagesOK++
			agg.nttSum += o.res.NTT
			agg.nttN++
			switch o.res.SLO {
			case "attained":
				agg.sloAttained++
			case "missed":
				agg.sloMissed++
			}
			st.samples = append(st.samples, sample{
				id: o.res.ID, device: o.res.Device, node: o.node,
				realLatency: o.latency,
				turnaround:  time.Duration(o.res.TurnaroundNS),
				waiting:     time.Duration(o.res.WaitingNS),
				ntt:         o.res.NTT,
				preemptions: o.res.Preemptions,
				slo:         o.res.SLO,
				sloMargin:   time.Duration(o.res.SLOMarginNS),
			})
		case http.StatusConflict:
			agg.stagesCanceled++
			allOK = false
		case http.StatusTooManyRequests:
			agg.stagesRej++
			allOK = false
		case http.StatusGatewayTimeout:
			st.timeouts++
			allOK = false
		default:
			st.errors++
			allOK = false
		}
	}
	if allOK {
		agg.completed++
		agg.makespans = append(agg.makespans, makespan)
	} else {
		agg.canceled++
	}
}

// ---- saturation ramp (-saturate) ----

type satConfig struct {
	start, factor float64
	window        time.Duration
	threshold     float64
	workers       int
	maxStages     int
	deadline      time.Duration
}

// satStage is one ramp step's measurement.
type satStage struct {
	OfferedPerS  float64 `json:"offered_per_s"`
	OK           int64   `json:"ok"`
	Rejected429  int64   `json:"rejected_429"`
	Errors       int64   `json:"errors"`
	Dropped      int64   `json:"dropped_tokens"`
	AchievedPerS float64 `json:"achieved_per_s"`
	RejectShare  float64 `json:"reject_share"`
}

// satSummary is the machine-readable result scripts/bench.sh consumes.
type satSummary struct {
	SustainedPerS float64    `json:"sustained_launches_per_s"`
	SaturatedAt   float64    `json:"saturated_at_offered_per_s"`
	Stages        []satStage `json:"stages"`
	ExactlyOnceOK bool       `json:"exactly_once_ok"`
}

// runSaturation ramps offered load geometrically until the daemon sheds
// past the threshold, reports the best sustained completion rate seen,
// and verifies exactly-once accounting once the storm has drained. With
// model specs the unit of offered load is one whole graph: each token
// submits every stage of a DAG instance and counts as OK only when all
// of them complete.
func runSaturation(addr string, benches []string, class string, specs []modelSpec, sc satConfig) {
	// Pre-marshal one body per benchmark: the submit path itself should
	// cost as little as possible so the client is never the bottleneck.
	bodies := make([][]byte, len(benches))
	for i, b := range benches {
		req := launchRequest{Client: "saturate", Benchmark: b, Class: class}
		if sc.deadline > 0 {
			req.DeadlineMS = int(sc.deadline / time.Millisecond)
		}
		bodies[i], _ = json.Marshal(req)
	}
	httpc := &http.Client{Timeout: 30 * time.Second}
	if len(specs) > 0 {
		names := make([]string, len(specs))
		for i, sp := range specs {
			names[i] = sp.String()
		}
		fmt.Printf("flepload: saturation ramp, models=%s (1 token = 1 graph) start=%.0f/s ×%.2f window=%v threshold=%.0f%% workers=%d\n",
			strings.Join(names, ","), sc.start, sc.factor, sc.window, 100*sc.threshold, sc.workers)
	} else {
		fmt.Printf("flepload: saturation ramp, benches=%s class=%s start=%.0f/s ×%.2f window=%v threshold=%.0f%% workers=%d\n",
			strings.Join(benches, ","), class, sc.start, sc.factor, sc.window, 100*sc.threshold, sc.workers)
	}

	sum := satSummary{}
	offered := sc.start
	for i := 0; i < sc.maxStages; i++ {
		st := runSatStage(httpc, addr, bodies, specs, offered, sc)
		sum.Stages = append(sum.Stages, st)
		fmt.Printf("  stage %2d: offered %9.0f/s  ok %7d (%9.1f/s)  429=%5.1f%%  errors=%d dropped=%d\n",
			i, st.OfferedPerS, st.OK, st.AchievedPerS, 100*st.RejectShare, st.Errors, st.Dropped)
		if st.AchievedPerS > sum.SustainedPerS {
			sum.SustainedPerS = st.AchievedPerS
		}
		if st.RejectShare > sc.threshold {
			sum.SaturatedAt = offered
			break
		}
		offered *= sc.factor
	}

	// The storm is over; wait for the daemon to account every accepted
	// launch (queued work drains, timed-out handlers' invocations land).
	var sb statusBody
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(addr + "/v1/status")
		if err != nil {
			fatalf("status after ramp: %v", err)
		}
		err = json.NewDecoder(resp.Body).Decode(&sb)
		resp.Body.Close()
		if err != nil {
			fatalf("status after ramp: %v", err)
		}
		if sb.Counters.Completed+sb.Counters.SubmitErrors == sb.Counters.Enqueued {
			sum.ExactlyOnceOK = true
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if sum.ExactlyOnceOK {
		fmt.Printf("exactly-once:  OK after the storm (enqueued=%d completed=%d submit_errors=%d)\n",
			sb.Counters.Enqueued, sb.Counters.Completed, sb.Counters.SubmitErrors)
	} else {
		fmt.Printf("exactly-once:  FAIL: daemon never reached rest (enqueued=%d completed=%d submit_errors=%d)\n",
			sb.Counters.Enqueued, sb.Counters.Completed, sb.Counters.SubmitErrors)
	}
	j, _ := json.Marshal(sum)
	fmt.Printf("SATURATION %s\n", j)
	if !sum.ExactlyOnceOK {
		os.Exit(1)
	}
}

// runSatStage offers load at a fixed rate for one window: a token
// dispatcher converts the rate into submission permits, workers spend
// them on un-retried POSTs, and the stage's outcome counts live in
// atomics (no shared lock on the submit path). With model specs a permit
// buys a whole graph: all stages submitted, OK only if all completed,
// 429 if any stage was shed.
func runSatStage(httpc *http.Client, addr string, bodies [][]byte, specs []modelSpec, offered float64, sc satConfig) satStage {
	var ok, rej, errs, dropped atomic.Int64
	tokens := make(chan struct{}, 4*sc.workers)
	stop := make(chan struct{})
	var producer sync.WaitGroup
	producer.Add(1)
	go func() {
		defer producer.Done()
		defer close(tokens)
		const interval = 5 * time.Millisecond
		tick := time.NewTicker(interval)
		defer tick.Stop()
		carry := 0.0
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				carry += offered * interval.Seconds()
				for carry >= 1 {
					carry--
					select {
					case tokens <- struct{}{}:
					default:
						// Every submitter is busy and the permit buffer is
						// full: the client, not the daemon, is the limit for
						// this token. Counted separately so a client-bound
						// stage is visible as such.
						dropped.Add(1)
					}
				}
			}
		}
	}()
	var wg sync.WaitGroup
	var rr atomic.Int64
	runStart := time.Now()
	for w := 0; w < sc.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range tokens {
				seq := rr.Add(1) - 1
				if len(specs) > 0 {
					sp := specs[int(seq)%len(specs)]
					graphID := fmt.Sprintf("sat-g%06d", seq)
					outs := submitGraph(httpc, addr, sp, "saturate", graphID, 25*time.Second, nil, runStart)
					allOK, any429 := true, false
					for _, o := range outs {
						if o.status != http.StatusOK {
							allOK = false
						}
						if o.status == http.StatusTooManyRequests {
							any429 = true
						}
					}
					switch {
					case allOK:
						ok.Add(1)
					case any429:
						rej.Add(1)
					default:
						errs.Add(1)
					}
					continue
				}
				body := bodies[int(seq)%len(bodies)]
				resp, err := httpc.Post(addr+"/v1/launch", "application/json", bytes.NewReader(body))
				if err != nil {
					errs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusTooManyRequests:
					rej.Add(1)
				default:
					errs.Add(1)
				}
			}
		}()
	}
	start := time.Now()
	time.Sleep(sc.window)
	close(stop)
	producer.Wait()
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	st := satStage{
		OfferedPerS: offered,
		OK:          ok.Load(), Rejected429: rej.Load(),
		Errors: errs.Load(), Dropped: dropped.Load(),
	}
	if elapsed > 0 {
		st.AchievedPerS = float64(st.OK) / elapsed
	}
	if total := st.OK + st.Rejected429 + st.Errors; total > 0 {
		st.RejectShare = float64(st.Rejected429) / float64(total)
	}
	return st
}

func (st *stats) note(f func()) {
	st.mu.Lock()
	defer st.mu.Unlock()
	//flepvet:allow lockheld -- note's contract is to run a tiny stat-mutation closure under the lock; callers pass field updates only
	f()
}

func retryAfter(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		var secs float64
		if _, err := fmt.Sscanf(s, "%g", &secs); err == nil && secs > 0 {
			// The hint is an upper bound for a lone client; jittered
			// fraction avoids thundering-herd resubmission.
			return time.Duration(secs * float64(time.Second) / 20)
		}
	}
	return 50 * time.Millisecond
}

func report(st *stats, wall time.Duration) {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := len(st.samples)
	fmt.Printf("\nrequests:      ok=%d timeouts=%d errors=%d backpressure-429s=%d\n",
		n, st.timeouts, st.errors, st.retries)
	fmt.Printf("wall time:     %v   throughput %.1f launches/s\n",
		wall.Round(time.Millisecond), float64(n)/wall.Seconds())
	if n == 0 {
		return
	}
	lat := make([]time.Duration, n)
	turn := make([]time.Duration, n)
	var sumNTT, sumWait float64
	var preempts int
	for i, s := range st.samples {
		lat[i], turn[i] = s.realLatency, s.turnaround
		sumNTT += s.ntt
		sumWait += float64(s.waiting)
		preempts += s.preemptions
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	sort.Slice(turn, func(i, j int) bool { return turn[i] < turn[j] })
	fmt.Printf("real latency:  p50=%v p90=%v p99=%v max=%v\n",
		percentile(lat, 50).Round(time.Microsecond), percentile(lat, 90).Round(time.Microsecond),
		percentile(lat, 99).Round(time.Microsecond), lat[n-1].Round(time.Microsecond))
	fmt.Printf("virtual turn:  p50=%v p99=%v mean-wait=%v\n",
		percentile(turn, 50).Round(time.Microsecond), percentile(turn, 99).Round(time.Microsecond),
		time.Duration(sumWait/float64(n)).Round(time.Microsecond))
	fmt.Printf("ANTT:          %.3f   preemptions=%d\n", sumNTT/float64(n), preempts)

	// SLO attainment over the deadline-bearing completions (absent when
	// the run was pure best-effort).
	var attained, missed int
	var marginSum time.Duration
	for _, s := range st.samples {
		switch s.slo {
		case "attained":
			attained++
		case "missed":
			missed++
		default:
			continue
		}
		marginSum += s.sloMargin
	}
	if tracked := attained + missed; tracked > 0 {
		fmt.Printf("SLO:           attained=%d missed=%d rate=%.1f%% mean-margin=%v (virtual)\n",
			attained, missed, 100*float64(attained)/float64(tracked),
			(marginSum / time.Duration(tracked)).Round(time.Microsecond))
	}

	// Per-model breakdown when the run submitted kernel DAGs (-model):
	// graph completion, stage outcomes, SLO attainment on the terminal
	// stage, and real graph makespan (first POST to last stage done).
	if len(st.models) > 0 {
		names := make([]string, 0, len(st.models))
		for name := range st.models {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("per model:\n")
		for _, name := range names {
			a := st.models[name]
			line := fmt.Sprintf("  model %-10s graphs=%d completed=%d canceled=%d  stages ok=%d canceled=%d shed=%d",
				name, a.graphs, a.completed, a.canceled, a.stagesOK, a.stagesCanceled, a.stagesRej)
			if a.nttN > 0 {
				line += fmt.Sprintf("  ANTT %.3f", a.nttSum/float64(a.nttN))
			}
			if tracked := a.sloAttained + a.sloMissed; tracked > 0 {
				line += fmt.Sprintf("  slo=%d/%d", a.sloAttained, tracked)
			}
			if len(a.makespans) > 0 {
				sorted := append([]time.Duration(nil), a.makespans...)
				sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
				line += fmt.Sprintf("  makespan p50=%v p99=%v",
					percentile(sorted, 50).Round(time.Microsecond),
					percentile(sorted, 99).Round(time.Microsecond))
			}
			fmt.Println(line)
		}
	}

	// Per-node breakdown when the target is a flepgw cluster: each node's
	// share of the completions, as seen from the client side via the
	// X-Flep-Node header. The metrics-delta report adds the server-side
	// view of the same split.
	perNode := map[string][]sample{}
	for _, s := range st.samples {
		perNode[s.node] = append(perNode[s.node], s)
	}
	if len(perNode) > 1 {
		nodeIDs := make([]string, 0, len(perNode))
		for id := range perNode {
			nodeIDs = append(nodeIDs, id)
		}
		sort.Strings(nodeIDs)
		fmt.Printf("per node:\n")
		for _, id := range nodeIDs {
			ss := perNode[id]
			var ntt float64
			var pre int
			for _, s := range ss {
				ntt += s.ntt
				pre += s.preemptions
			}
			fmt.Printf("  node %s:     ok=%d (%4.1f%%)  throughput %.1f launches/s  ANTT %.3f  preemptions=%d\n",
				id, len(ss), 100*float64(len(ss))/float64(n),
				float64(len(ss))/wall.Seconds(), ntt/float64(len(ss)), pre)
		}
	}

	// Per-shard breakdown when the daemon is a fleet: each device's share
	// of the completions, its throughput, and its ANTT.
	perDev := map[int][]sample{}
	for _, s := range st.samples {
		perDev[s.device] = append(perDev[s.device], s)
	}
	if len(perDev) <= 1 {
		return
	}
	devs := make([]int, 0, len(perDev))
	for d := range perDev {
		devs = append(devs, d)
	}
	sort.Ints(devs)
	fmt.Printf("per device:\n")
	for _, d := range devs {
		ss := perDev[d]
		var ntt float64
		var pre int
		for _, s := range ss {
			ntt += s.ntt
			pre += s.preemptions
		}
		fmt.Printf("  device %d:    ok=%d (%4.1f%%)  throughput %.1f launches/s  ANTT %.3f  preemptions=%d\n",
			d, len(ss), 100*float64(len(ss))/float64(n),
			float64(len(ss))/wall.Seconds(), ntt/float64(len(ss)), pre)
	}
}

// verifyExactlyOnce checks the acceptance invariant against both views:
// client-side (every OK response carried a unique invocation ID) and —
// when server is true — server-side (enqueued == completed +
// submit_errors once at rest).
func verifyExactlyOnce(addr string, st *stats, server bool) error {
	st.mu.Lock()
	// Invocation IDs are assigned per device shard per node, so
	// uniqueness holds on the (node, device, id) triple cluster-wide.
	// Against a single flepd the node is empty and this degenerates to
	// the (device, id) pair.
	type devID struct {
		node       string
		device, id int
	}
	ids := map[devID]int{}
	for _, s := range st.samples {
		ids[devID{s.node, s.device, s.id}]++
	}
	oks := len(st.samples)
	timeouts := st.timeouts
	st.mu.Unlock()
	for k, c := range ids {
		if c != 1 {
			return fmt.Errorf("node %q device %d invocation id %d delivered %d times", k.node, k.device, k.id, c)
		}
	}
	if !server {
		return nil
	}
	// Timed-out requests complete asynchronously; poll briefly for rest.
	var sb statusBody
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(addr + "/v1/status")
		if err != nil {
			return fmt.Errorf("status: %w", err)
		}
		err = json.NewDecoder(resp.Body).Decode(&sb)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("status: %w", err)
		}
		if sb.Counters.Completed+sb.Counters.SubmitErrors == sb.Counters.Enqueued {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon never reached rest: enqueued=%d completed=%d submit_errors=%d",
				sb.Counters.Enqueued, sb.Counters.Completed, sb.Counters.SubmitErrors)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if want := int64(oks) + timeouts; sb.Counters.Completed < want {
		return fmt.Errorf("daemon completed %d < client-observed %d", sb.Counters.Completed, want)
	}
	return nil
}

// ---- small helpers ----

type prioShare struct {
	prio  int
	share float64
}

// parseMix parses "1=0.7,2=0.3" into cumulative priority shares.
func parseMix(s string) ([]prioShare, error) {
	var out []prioShare
	total := 0.0
	for _, f := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(f), "=")
		if !ok {
			return nil, fmt.Errorf("bad mix element %q (want PRIO=SHARE)", f)
		}
		var prio int
		var share float64
		if _, err := fmt.Sscanf(k, "%d", &prio); err != nil {
			return nil, fmt.Errorf("bad priority %q", k)
		}
		if _, err := fmt.Sscanf(v, "%g", &share); err != nil || share < 0 {
			return nil, fmt.Errorf("bad share %q", v)
		}
		total += share
		out = append(out, prioShare{prio, share})
	}
	if len(out) == 0 || total <= 0 {
		return nil, fmt.Errorf("empty priority mix")
	}
	for i := range out {
		out[i].share /= total
	}
	return out, nil
}

// pickPriority maps a uniform [0,1) draw onto the mix.
func pickPriority(mix []prioShare, u float64) int {
	acc := 0.0
	for _, m := range mix {
		acc += m.share
		if u < acc {
			return m.prio
		}
	}
	return mix[len(mix)-1].prio
}

// percentile returns the p-th percentile of sorted durations.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)-1)*p + 50 // nearest-rank with rounding
	return sorted[idx/100]
}

func discoverBenchmarks(addr string) ([]string, error) {
	resp, err := http.Get(addr + "/v1/benchmarks")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var infos []benchInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return nil, err
	}
	out := make([]string, len(infos))
	for i, bi := range infos {
		out[i] = bi.Name
	}
	return out, nil
}

func splitCSV(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func rateString(r float64) string {
	if r <= 0 {
		return "closed-loop"
	}
	return fmt.Sprintf("%.1f/s open-loop", r)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "flepload: "+format+"\n", args...)
	os.Exit(1)
}
