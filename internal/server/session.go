package server

import (
	"sort"
	"time"
)

// Session is one client's standing with the daemon. The paper's runtime
// engine serves "kernels from different processes" (§5); a session is the
// daemon's per-process bookkeeping: identification, accounting, and the
// derived state of the client's host program in Figure 5's machine. A
// session is created on the client's first launch and lives for the
// daemon's lifetime. All fields are guarded by Server.mu.
type Session struct {
	ID        string
	FirstSeen time.Time

	Launches         int64 // launches accepted into the queue
	Completed        int64 // invocations finished
	SubmitErrors     int64 // runtime rejections (oversized working set)
	RejectedFull     int64 // 429s (queue full)
	RejectedDraining int64 // 503s (daemon draining)
	RejectedInvalid  int64 // validation rejects (recorded only on existing sessions)
	RejectedShed     int64 // 429s (best-effort shed by SLO admission)
	TimedOut         int64 // handlers that gave up waiting (invocation ran on)
	Canceled         int64 // clients that went away while waiting (invocation ran on)
	DepCanceled      int64 // graph stages canceled before admission (prerequisite failed / drain)
	RejectedDepFull  int64 // 429s (pending-dependency table full)

	Preemptions       int64 // realized preemptions across invocations
	TotalTurnaroundNS int64
	TotalWaitingNS    int64
	LastFinishVirtual time.Duration

	// SLO accounting over this client's deadline-bearing completions.
	SLOAttained    int64
	SLOMissed      int64
	SLOMarginSumNS int64
}

// noteCompletion folds a finished invocation into the session.
func (sess *Session) noteCompletion(res LaunchResult) {
	sess.Completed++
	sess.Preemptions += int64(res.Preemptions)
	sess.TotalTurnaroundNS += res.TurnaroundNS
	sess.TotalWaitingNS += res.WaitingNS
	sess.LastFinishVirtual = time.Duration(res.FinishedVirtualNS)
	switch res.SLO {
	case "attained":
		sess.SLOAttained++
		sess.SLOMarginSumNS += res.SLOMarginNS
	case "missed":
		sess.SLOMissed++
		sess.SLOMarginSumNS += res.SLOMarginNS
	}
}

// hostState maps the session onto Figure 5's host-program states: a
// client with invocations still in flight is blocked awaiting the GPU
// (S2/S3 — the daemon cannot distinguish queued from resident without
// asking the loop, so it reports the conservative S2); an idle client is
// executing CPU code (S1).
func (sess *Session) hostState() string {
	return hostStateFor(sess.Launches, sess.Completed, sess.SubmitErrors)
}

// hostStateFor derives the Figure 5 host state from launch accounting
// (shared with the fleet's cross-shard session merge).
func hostStateFor(launches, completed, submitErrors int64) string {
	if launches > completed+submitErrors {
		return "S2/S3 (awaiting schedule or GPU)"
	}
	return "S1 (cpu)"
}

// SessionSnapshot is the JSON view of a session for /v1/sessions.
type SessionSnapshot struct {
	ID            string `json:"id"`
	FirstSeenUnix int64  `json:"first_seen_unix_ms"`
	HostState     string `json:"host_state"`
	// Devices lists the fleet shards this client's launches ran on (empty
	// on a standalone daemon; one entry under session affinity).
	Devices          []int   `json:"devices,omitempty"`
	Launches         int64   `json:"launches"`
	InFlight         int64   `json:"in_flight"`
	Completed        int64   `json:"completed"`
	SubmitErrors     int64   `json:"submit_errors"`
	RejectedFull     int64   `json:"rejected_queue_full"`
	RejectedDraining int64   `json:"rejected_draining"`
	RejectedInvalid  int64   `json:"rejected_invalid"`
	RejectedShed     int64   `json:"rejected_best_effort_shed"`
	TimedOut         int64   `json:"timed_out"`
	Canceled         int64   `json:"canceled"`
	DepCanceled      int64   `json:"dep_canceled"`
	RejectedDepFull  int64   `json:"rejected_dep_table_full"`
	Preemptions      int64   `json:"preemptions"`
	MeanTurnUS       float64 `json:"mean_turnaround_us"`
	MeanWaitUS       float64 `json:"mean_waiting_us"`
	LastFinishUS     float64 `json:"last_finish_virtual_us"`
	SLOAttained      int64   `json:"slo_attained"`
	SLOMissed        int64   `json:"slo_missed"`
	MeanSLOMarginUS  float64 `json:"mean_slo_margin_us"`
}

// session returns the client's session, creating it on first use.
// Callers must hold s.mu.
func (s *Server) session(client string) *Session {
	sess := s.sessions[client]
	if sess == nil {
		sess = &Session{ID: client, FirstSeen: time.Now()}
		s.sessions[client] = sess
	}
	return sess
}

// SessionSnapshots returns all sessions sorted by ID.
func (s *Server) SessionSnapshots() []SessionSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SessionSnapshot, 0, len(s.sessions))
	for _, sess := range s.sessions {
		snap := SessionSnapshot{
			ID:               sess.ID,
			FirstSeenUnix:    sess.FirstSeen.UnixMilli(),
			HostState:        sess.hostState(),
			Launches:         sess.Launches,
			InFlight:         sess.Launches - sess.Completed - sess.SubmitErrors,
			Completed:        sess.Completed,
			SubmitErrors:     sess.SubmitErrors,
			RejectedFull:     sess.RejectedFull,
			RejectedDraining: sess.RejectedDraining,
			RejectedInvalid:  sess.RejectedInvalid,
			RejectedShed:     sess.RejectedShed,
			TimedOut:         sess.TimedOut,
			Canceled:         sess.Canceled,
			DepCanceled:      sess.DepCanceled,
			RejectedDepFull:  sess.RejectedDepFull,
			Preemptions:      sess.Preemptions,
			LastFinishUS:     float64(sess.LastFinishVirtual) / 1e3,
			SLOAttained:      sess.SLOAttained,
			SLOMissed:        sess.SLOMissed,
		}
		if sess.Completed > 0 {
			snap.MeanTurnUS = float64(sess.TotalTurnaroundNS) / float64(sess.Completed) / 1e3
			snap.MeanWaitUS = float64(sess.TotalWaitingNS) / float64(sess.Completed) / 1e3
		}
		if n := sess.SLOAttained + sess.SLOMissed; n > 0 {
			snap.MeanSLOMarginUS = float64(sess.SLOMarginSumNS) / float64(n) / 1e3
		}
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
