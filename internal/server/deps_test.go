package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// postAsync submits a launch from its own goroutine and delivers the
// outcome on a channel, so tests can park graph stages (which block
// until released or canceled) without calling t from a non-test
// goroutine.
type asyncRes struct {
	code int
	res  LaunchResult
	err  error
}

func postAsync(url string, req LaunchRequest) chan asyncRes {
	ch := make(chan asyncRes, 1)
	go func() {
		body, _ := json.Marshal(req)
		resp, err := http.Post(url+"/v1/launch", "application/json", bytes.NewReader(body))
		if err != nil {
			ch <- asyncRes{err: err}
			return
		}
		defer resp.Body.Close()
		var res LaunchResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			ch <- asyncRes{err: err}
			return
		}
		ch <- asyncRes{code: resp.StatusCode, res: res}
	}()
	return ch
}

// metricValue scrapes /metrics and returns the named series' value
// (exact match on the series including its label set).
func metricValue(t *testing.T, url, series string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in /metrics", series)
	return 0
}

func modelRow(st Status, name string) (ModelStatus, bool) {
	for _, m := range st.Models {
		if m.Model == name {
			return m, true
		}
	}
	return ModelStatus{}, false
}

// A diamond DAG submitted out of order completes exactly once: the three
// dependent stages park, the root's completion releases the branches,
// the join runs last and meets its deadline, and both the models block
// and the flep_model_* families account the whole graph.
func TestModelGraphDiamondCompletesAndReconciles(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	base := LaunchRequest{Client: "dag", Graph: "g1", Stages: 4, Model: "diamond"}
	post := base
	post.Benchmark, post.Stage, post.After = "VA", "post", []string{"left", "right"}
	post.DeadlineMS = 2000
	left := base
	left.Benchmark, left.Stage, left.After = "MM", "left", []string{"pre"}
	right := base
	right.Benchmark, right.Stage, right.After = "VA", "right", []string{"pre"}
	pre := base
	pre.Benchmark, pre.Stage = "VA", "pre"

	// Park the dependents one at a time so the registration order (the
	// deterministic release path) is fixed.
	postCh := postAsync(ts.URL, post)
	waitFor(t, "post parked", func() bool { return s.depParkedCount() == 1 })
	leftCh := postAsync(ts.URL, left)
	waitFor(t, "left parked", func() bool { return s.depParkedCount() == 2 })
	rightCh := postAsync(ts.URL, right)
	waitFor(t, "right parked", func() bool { return s.depParkedCount() == 3 })

	code, res := launch(t, ts.URL, pre)
	if code != http.StatusOK {
		t.Fatalf("pre: code %d, %+v", code, res)
	}
	for name, ch := range map[string]chan asyncRes{"post": postCh, "left": leftCh, "right": rightCh} {
		r := <-ch
		if r.err != nil || r.code != http.StatusOK {
			t.Fatalf("%s: code %d err %v (%+v)", name, r.code, r.err, r.res)
		}
		if name == "post" && r.res.SLO != "attained" {
			t.Fatalf("post missed a 2s budget: %+v", r.res)
		}
	}

	waitFor(t, "graph retired", func() bool { return s.depGraphCount() == 0 })
	st := getStatus(t, ts.URL)
	if st.Counters.Enqueued != 4 || st.Counters.Completed != 4 || st.Counters.SubmitErrors != 0 {
		t.Fatalf("ledger: %+v", st.Counters)
	}
	if !st.ExactlyOnceOK {
		t.Fatalf("exactly-once flag down: %+v", st.Counters)
	}
	row, ok := modelRow(st, "diamond")
	if !ok {
		t.Fatalf("no diamond row in models block: %+v", st.Models)
	}
	want := ModelStatus{
		Model: "diamond", GraphsStarted: 1, GraphsCompleted: 1,
		StagesCompleted: 4, SLOAttained: 1, AttainRate: 1,
		MeanMakespanUS: row.MeanMakespanUS,
	}
	if row != want {
		t.Fatalf("diamond row = %+v, want %+v", row, want)
	}
	if row.MeanMakespanUS <= 0 {
		t.Fatalf("graph makespan not positive: %+v", row)
	}

	// The metric families must reconcile exactly with the models block.
	for series, want := range map[string]float64{
		`flep_model_graphs_total{outcome="started"}`:     1,
		`flep_model_graphs_total{outcome="completed"}`:   1,
		`flep_model_graphs_total{outcome="canceled"}`:    0,
		`flep_model_stages_total{outcome="completed"}`:   4,
		`flep_model_stages_total{outcome="canceled"}`:    0,
		`flep_model_stages_parked_total`:                 3,
		`flep_model_stages_released_total`:               3,
		`flep_model_slo_attained_total`:                  1,
		`flep_model_slo_missed_total`:                    0,
		`flep_model_stages_held`:                         0,
		`flep_model_graphs_tracked`:                      0,
		`flep_server_launches_total{outcome="enqueued"}`: 4,
	} {
		if got := metricValue(t, ts.URL, series); got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
}

// A best-effort root shed mid-graph dooms its descendants: the parked
// stages are canceled deterministically with 409, the graph closes as
// canceled, and the exactly-once ledger still balances at rest because
// canceled stages never entered it.
func TestModelGraphShedCascadesCancellation(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 2})
	if err := s.Pause(); err != nil {
		t.Fatalf("pause: %v", err)
	}

	// A parked deadline-bearing launch makes the LC tier outstanding, so
	// best-effort admission sheds once the queue reaches the cost-aware
	// share (beLimit is 1 at QueueDepth 2).
	fillerCh := postAsync(ts.URL, LaunchRequest{
		Client: "lc", Benchmark: "VA", Class: "small", DeadlineMS: 5000,
	})
	waitFor(t, "LC filler queued", func() bool { return getStatus(t, ts.URL).QueueLen == 1 })

	base := LaunchRequest{Client: "dag2", Graph: "g", Stages: 3, Model: "cascade", Benchmark: "VA"}
	c := base
	c.Stage, c.After = "c", []string{"b"}
	b := base
	b.Stage, b.After = "b", []string{"a"}
	a := base
	a.Stage = "a"

	cCh := postAsync(ts.URL, c)
	waitFor(t, "c parked", func() bool { return s.depParkedCount() == 1 })
	bCh := postAsync(ts.URL, b)
	waitFor(t, "b parked", func() bool { return s.depParkedCount() == 2 })

	code, _ := launch(t, ts.URL, a)
	if code != http.StatusTooManyRequests {
		t.Fatalf("best-effort root not shed: code %d", code)
	}
	for name, ch := range map[string]chan asyncRes{"b": bCh, "c": cCh} {
		r := <-ch
		if r.err != nil || r.code != http.StatusConflict {
			t.Fatalf("%s: code %d err %v (%+v)", name, r.code, r.err, r.res)
		}
		if !strings.Contains(r.res.Canceled, `prerequisite "a" failed`) &&
			!strings.Contains(r.res.Canceled, `prerequisite "b" failed`) {
			t.Fatalf("%s canceled for the wrong reason: %q", name, r.res.Canceled)
		}
	}

	if err := s.Resume(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if r := <-fillerCh; r.err != nil || r.code != http.StatusOK {
		t.Fatalf("LC filler: code %d err %v", r.code, r.err)
	}

	waitFor(t, "graph retired", func() bool { return s.depGraphCount() == 0 })
	st := getStatus(t, ts.URL)
	// Only the filler ever entered the ledger; the shed root and the two
	// canceled stages are outcome-counted outside it.
	if st.Counters.Enqueued != 1 || st.Counters.Completed != 1 || st.Counters.SubmitErrors != 0 {
		t.Fatalf("ledger: %+v", st.Counters)
	}
	if st.Counters.RejectedShed != 1 || st.Counters.DepCanceled != 2 {
		t.Fatalf("shed/cancel counts: %+v", st.Counters)
	}
	row, ok := modelRow(st, "cascade")
	if !ok {
		t.Fatalf("no cascade row: %+v", st.Models)
	}
	if row.GraphsStarted != 1 || row.GraphsCanceled != 1 || row.GraphsCompleted != 0 ||
		row.StagesCanceled != 3 || row.StagesCompleted != 0 || row.StagesParked != 0 {
		t.Fatalf("cascade row = %+v", row)
	}
	for series, want := range map[string]float64{
		`flep_model_graphs_total{outcome="canceled"}`:                     1,
		`flep_model_stages_total{outcome="canceled"}`:                     3,
		`flep_server_launches_total{outcome="dep_canceled"}`:              2,
		`flep_server_launches_total{outcome="rejected_best_effort_shed"}`: 1,
	} {
		if got := metricValue(t, ts.URL, series); got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
}

// Admission validates graph specs: malformed shapes, cycle-closing
// edges, and prerequisites that can never exist are 400s, and a graph
// stalled by a rejected stage still completes once the real
// prerequisite arrives.
func TestModelGraphRejectsInvalidSpecs(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	for what, req := range map[string]LaunchRequest{
		"graph without stage": {Benchmark: "VA", Graph: "gx", Stages: 2},
		"stage without graph": {Benchmark: "VA", Stage: "s", Stages: 2},
		"no declared stages":  {Benchmark: "VA", Graph: "gx", Stage: "s"},
		"after exceeds total": {Benchmark: "VA", Graph: "gx", Stage: "s", Stages: 1, After: []string{"p"}},
		"self dependency":     {Benchmark: "VA", Graph: "gx", Stage: "s", Stages: 2, After: []string{"s"}},
		"duplicate prereq":    {Benchmark: "VA", Graph: "gx", Stage: "s", Stages: 3, After: []string{"p", "p"}},
	} {
		if code, _ := launch(t, ts.URL, req); code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400", what, code)
		}
	}

	// Closing a dependency cycle against an already-parked stage is a 400;
	// submitting the honest prerequisite afterwards completes the graph.
	cyc := LaunchRequest{Client: "v", Benchmark: "VA", Graph: "gc", Stages: 2}
	x := cyc
	x.Stage, x.After = "x", []string{"y"}
	xCh := postAsync(ts.URL, x)
	waitFor(t, "x parked", func() bool { return s.depParkedCount() == 1 })
	y := cyc
	y.Stage, y.After = "y", []string{"x"}
	if code, _ := launch(t, ts.URL, y); code != http.StatusBadRequest {
		t.Fatalf("cycle-closing stage: code %d, want 400", code)
	}
	y.After = nil
	if code, _ := launch(t, ts.URL, y); code != http.StatusOK {
		t.Fatalf("honest prerequisite: code %d", code)
	}
	if r := <-xCh; r.err != nil || r.code != http.StatusOK {
		t.Fatalf("released x: code %d err %v", r.code, r.err)
	}

	// A prerequisite no undeclared slot could ever satisfy is rejected up
	// front instead of parking forever.
	imp := LaunchRequest{Client: "v", Benchmark: "VA", Graph: "gi", Stages: 2}
	u1 := imp
	u1.Stage = "u1"
	if code, _ := launch(t, ts.URL, u1); code != http.StatusOK {
		t.Fatalf("u1: code %d", code)
	}
	u2 := imp
	u2.Stage, u2.After = "u2", []string{"ghost"}
	if code, _ := launch(t, ts.URL, u2); code != http.StatusBadRequest {
		t.Fatalf("impossible prerequisite: code %d, want 400", code)
	}
	if code, _ := launch(t, ts.URL, u1); code != http.StatusBadRequest {
		t.Fatalf("duplicate stage: code %d, want 400", code)
	}
	u3 := imp
	u3.Stage, u3.Stages = "u3", 3
	if code, _ := launch(t, ts.URL, u3); code != http.StatusBadRequest {
		t.Fatalf("mismatched declared count: code %d, want 400", code)
	}

	st := getStatus(t, ts.URL)
	if st.Counters.RejectedInvalid < 9 {
		t.Fatalf("invalid rejects = %d, want >= 9: %+v", st.Counters.RejectedInvalid, st.Counters)
	}
	if st.Counters.Enqueued != st.Counters.Completed {
		t.Fatalf("ledger: %+v", st.Counters)
	}
}

// The pending-dependency table is bounded on both axes: parked stages
// (429 once DepPending is reached) and live graphs (429 while every
// tracked graph is active, eviction of the oldest stalled graph once one
// goes quiet).
func TestModelDepTableBoundsAndEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{DepPending: 1, DepGraphs: 1})

	g1 := LaunchRequest{Client: "bd", Benchmark: "VA", Graph: "g1", Stages: 3}
	s2 := g1
	s2.Stage, s2.After = "s2", []string{"s1"}
	s2Ch := postAsync(ts.URL, s2)
	waitFor(t, "s2 parked", func() bool { return s.depParkedCount() == 1 })

	s3 := g1
	s3.Stage, s3.After = "s3", []string{"s1"}
	if code, _ := launch(t, ts.URL, s3); code != http.StatusTooManyRequests {
		t.Fatalf("park past DepPending: code %d, want 429", code)
	}

	g2 := LaunchRequest{Client: "bd", Benchmark: "VA", Graph: "g2", Stages: 1, Stage: "a"}
	if code, _ := launch(t, ts.URL, g2); code != http.StatusTooManyRequests {
		t.Fatalf("new graph while table busy: code %d, want 429", code)
	}

	s1 := g1
	s1.Stage = "s1"
	if code, _ := launch(t, ts.URL, s1); code != http.StatusOK {
		t.Fatalf("s1: code %d", code)
	}
	if r := <-s2Ch; r.err != nil || r.code != http.StatusOK {
		t.Fatalf("released s2: code %d err %v", r.code, r.err)
	}
	waitFor(t, "g1 quiescent", func() bool { return s.depParkedCount() == 0 })

	// g1 is now stalled (two of three declared stages done, nothing parked
	// or in flight) — a fresh graph evicts it instead of bouncing.
	if code, _ := launch(t, ts.URL, g2); code != http.StatusOK {
		t.Fatalf("graph after eviction: code %d", code)
	}

	waitFor(t, "tables empty", func() bool { return s.depGraphCount() == 0 })
	st := getStatus(t, ts.URL)
	if st.Counters.RejectedDepFull != 2 {
		t.Fatalf("dep-table 429s = %d, want 2: %+v", st.Counters.RejectedDepFull, st.Counters)
	}
	if st.Counters.Enqueued != 3 || st.Counters.Completed != 3 {
		t.Fatalf("ledger: %+v", st.Counters)
	}
	row, ok := modelRow(st, "default")
	if !ok {
		t.Fatalf("no default row: %+v", st.Models)
	}
	if row.GraphsStarted != 2 || row.GraphsCompleted != 1 || row.GraphsCanceled != 1 ||
		row.StagesCompleted != 3 {
		t.Fatalf("default row = %+v", row)
	}
	if got := metricValue(t, ts.URL, "flep_model_evictions_total"); got != 1 {
		t.Fatalf("evictions = %v, want 1", got)
	}
	if got := metricValue(t, ts.URL, `flep_server_launches_total{outcome="rejected_dep_table_full"}`); got != 2 {
		t.Fatalf("rejected_dep_table_full = %v, want 2", got)
	}
}
