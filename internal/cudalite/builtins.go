package cudalite

import "math"

// evalCall dispatches builtin intrinsics, math functions, and user-defined
// __device__ function calls.
func (tc *threadCtx) evalCall(x *Call) (Value, error) {
	switch x.Fun {
	case "__syncthreads":
		if len(x.Args) != 0 {
			return Value{}, rtErr(x.Pos, "__syncthreads takes no arguments")
		}
		if tc.bar == nil {
			return Value{}, rtErr(x.Pos, "__syncthreads outside kernel execution")
		}
		if err := tc.bar.wait(); err != nil {
			return Value{}, rtErr(x.Pos, "%v", err)
		}
		return Value{}, nil
	case "__smid":
		if len(x.Args) != 0 {
			return Value{}, rtErr(x.Pos, "__smid takes no arguments")
		}
		return IntValue(int64(tc.smid)), nil
	case "atomicAdd":
		return tc.evalAtomic(x, func(old, d Value) Value {
			if old.Kind == KFloat {
				return FloatValue(old.F + d.Float())
			}
			return IntValue(old.I + d.Int())
		})
	case "atomicMax":
		return tc.evalAtomic(x, func(old, d Value) Value {
			if old.Kind == KFloat {
				return FloatValue(math.Max(old.F, d.Float()))
			}
			if d.Int() > old.I {
				return IntValue(d.Int())
			}
			return old
		})
	case "atomicExch":
		return tc.evalAtomic(x, func(old, d Value) Value {
			if old.Kind == KFloat {
				return FloatValue(d.Float())
			}
			return IntValue(d.Int())
		})
	}
	// Evaluate arguments once for the remaining call forms.
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := tc.eval(a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	if x.Fun == "dim3" {
		// dim3(x[, y[, z]]) packs launch geometry into an integer value.
		d := Dim3{X: 1, Y: 1, Z: 1}
		if len(args) > 0 {
			d.X = int(args[0].Int())
		}
		if len(args) > 1 {
			d.Y = int(args[1].Int())
		}
		if len(args) > 2 {
			d.Z = int(args[2].Int())
		}
		return PackDim3(d), nil
	}
	if fn, ok := mathBuiltins[x.Fun]; ok {
		return fn(args, x.Pos)
	}
	// User-defined __device__ (or host helper) function.
	callee := tc.m.prog.Func(x.Fun)
	if callee == nil {
		if tc.m.HostCall != nil && tc.bar == nil {
			v, handled, err := tc.m.HostCall(x.Fun, args)
			if handled {
				if err != nil {
					return Value{}, rtErr(x.Pos, "%s: %v", x.Fun, err)
				}
				return v, nil
			}
		}
		return Value{}, rtErr(x.Pos, "undefined function %q", x.Fun)
	}
	if callee.Qual == QualGlobal {
		return Value{}, rtErr(x.Pos, "cannot call __global__ kernel %q as a function", x.Fun)
	}
	if len(args) != len(callee.Params) {
		return Value{}, rtErr(x.Pos, "%s wants %d args, got %d", x.Fun, len(callee.Params), len(args))
	}
	saved := tc.retVal
	tc.retVal = Value{}
	if err := tc.callFunc(callee, args); err != nil {
		return Value{}, err
	}
	ret := tc.retVal
	tc.retVal = saved
	return convert(ret, callee.Ret), nil
}

// evalAtomic implements read-modify-write builtins: first arg is a pointer
// expression, second the operand. The whole RMW runs under the machine's
// atomic lock and returns the old value, matching CUDA semantics.
func (tc *threadCtx) evalAtomic(x *Call, op func(old, d Value) Value) (Value, error) {
	if len(x.Args) != 2 {
		return Value{}, rtErr(x.Pos, "%s wants 2 args", x.Fun)
	}
	ptr, err := tc.eval(x.Args[0])
	if err != nil {
		return Value{}, err
	}
	if ptr.Kind != KPtr || ptr.P.IsNil() {
		return Value{}, rtErr(x.Pos, "%s: first argument is not a valid pointer", x.Fun)
	}
	d, err := tc.eval(x.Args[1])
	if err != nil {
		return Value{}, err
	}
	tc.m.atomicMu.Lock()
	defer tc.m.atomicMu.Unlock()
	old, err := ptr.P.Buf.Load(ptr.P.Off)
	if err != nil {
		return Value{}, rtErr(x.Pos, "%v", err)
	}
	//flepvet:allow lockheld -- op is a pure arithmetic combine; running it under atomicMu IS the simulated atomicity
	if err := ptr.P.Buf.Store(ptr.P.Off, op(old, d)); err != nil {
		return Value{}, rtErr(x.Pos, "%v", err)
	}
	return old, nil
}

type mathFn func(args []Value, pos Pos) (Value, error)

func unary1(name string, f func(float64) float64) mathFn {
	return func(args []Value, pos Pos) (Value, error) {
		if len(args) != 1 {
			return Value{}, rtErr(pos, "%s wants 1 arg", name)
		}
		return FloatValue(f(args[0].Float())), nil
	}
}

func binary2(name string, f func(a, b float64) float64) mathFn {
	return func(args []Value, pos Pos) (Value, error) {
		if len(args) != 2 {
			return Value{}, rtErr(pos, "%s wants 2 args", name)
		}
		return FloatValue(f(args[0].Float(), args[1].Float())), nil
	}
}

var mathBuiltins = map[string]mathFn{
	"sqrt":   unary1("sqrt", math.Sqrt),
	"sqrtf":  unary1("sqrtf", math.Sqrt),
	"rsqrtf": unary1("rsqrtf", func(v float64) float64 { return 1 / math.Sqrt(v) }),
	"fabs":   unary1("fabs", math.Abs),
	"fabsf":  unary1("fabsf", math.Abs),
	"exp":    unary1("exp", math.Exp),
	"expf":   unary1("expf", math.Exp),
	"log":    unary1("log", math.Log),
	"logf":   unary1("logf", math.Log),
	"sinf":   unary1("sinf", math.Sin),
	"cosf":   unary1("cosf", math.Cos),
	"floorf": unary1("floorf", math.Floor),
	"ceilf":  unary1("ceilf", math.Ceil),
	"powf":   binary2("powf", math.Pow),
	"fminf":  binary2("fminf", math.Min),
	"fmaxf":  binary2("fmaxf", math.Max),
	"min": func(args []Value, pos Pos) (Value, error) {
		if len(args) != 2 {
			return Value{}, rtErr(pos, "min wants 2 args")
		}
		a, b := args[0], args[1]
		if a.Kind == KFloat || b.Kind == KFloat {
			return FloatValue(math.Min(a.Float(), b.Float())), nil
		}
		return IntValue(min(a.Int(), b.Int())), nil
	},
	"max": func(args []Value, pos Pos) (Value, error) {
		if len(args) != 2 {
			return Value{}, rtErr(pos, "max wants 2 args")
		}
		a, b := args[0], args[1]
		if a.Kind == KFloat || b.Kind == KFloat {
			return FloatValue(math.Max(a.Float(), b.Float())), nil
		}
		return IntValue(max(a.Int(), b.Int())), nil
	},
	"abs": func(args []Value, pos Pos) (Value, error) {
		if len(args) != 1 {
			return Value{}, rtErr(pos, "abs wants 1 arg")
		}
		v := args[0].Int()
		if v < 0 {
			v = -v
		}
		return IntValue(v), nil
	},
}
