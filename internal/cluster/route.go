package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"flep/internal/replay"
	"flep/internal/server"
)

// candidate is one routable node in preference order, copied out of the
// lock so the proxy loop never does I/O while holding it.
type candidate struct {
	id, addr string
}

// candidates computes the launch's node preference order.
//
// Named clients walk the consistent-hash ring from their key: the first
// eligible node on the walk is the session's home, and because the walk
// order is a pure function of the client key, a drained or dead node
// remaps exactly its own sessions to their next ring preference while
// every other session stays put.
//
// Anonymous launches have no session to preserve, so they go wherever
// capacity is: nodes whose last-known free device memory fits the
// launch's working set come first, ordered by load (queued + in-flight
// at the node, plus the gateway's own not-yet-visible in-flight count);
// non-fitting nodes trail as fallback, and ties rotate so a burst placed
// before any load shows up in the snapshots still spreads evenly.
func (g *Gateway) candidates(client string, req server.LaunchRequest) []candidate {
	g.mu.Lock()
	defer g.mu.Unlock()

	if client != "" && client != "anonymous" {
		out := make([]candidate, 0, len(g.nodes))
		for _, addr := range g.ring.sequence(client) {
			if n := g.byAddr[addr]; n.eligible() {
				out = append(out, candidate{id: n.id, addr: n.addr})
			}
		}
		return out
	}

	need := g.workingSetLocked(req)
	type scored struct {
		cand candidate
		fits bool
		load int64
		rot  int
	}
	n := len(g.nodes)
	start := int(g.rr) % n
	g.rr++
	elig := make([]scored, 0, n)
	for i, nd := range g.nodes {
		if !nd.eligible() {
			continue
		}
		load := nd.inflight
		fits := true
		if nd.haveStatus {
			c := nd.status.Counters
			load += int64(nd.status.QueueLen) + (c.Enqueued - c.Completed - c.SubmitErrors)
			if need > 0 && nd.status.MemoryFreeBytes > 0 && nd.status.MemoryFreeBytes < need {
				fits = false
			}
		}
		elig = append(elig, scored{
			cand: candidate{id: nd.id, addr: nd.addr},
			fits: fits, load: load, rot: (i - start + n) % n,
		})
	}
	sort.Slice(elig, func(i, j int) bool {
		if elig[i].fits != elig[j].fits {
			return elig[i].fits
		}
		if elig[i].load != elig[j].load {
			return elig[i].load < elig[j].load
		}
		return elig[i].rot < elig[j].rot
	})
	out := make([]candidate, len(elig))
	for i, s := range elig {
		out[i] = s.cand
	}
	return out
}

// workingSetLocked mirrors Fleet.workingSet using the benchmark catalog
// cached from the first node that served one (catalogs are identical
// across a homogeneous cluster). Zero means "not placeable by memory" —
// the node's own admission handles it. Caller holds g.mu.
func (g *Gateway) workingSetLocked(req server.LaunchRequest) int64 {
	var benches []server.BenchmarkInfo
	for _, n := range g.nodes {
		if len(n.benches) > 0 {
			benches = n.benches
			break
		}
	}
	class := req.Class
	if class == "" {
		class = "small"
	}
	for _, b := range benches {
		if b.Name != req.Benchmark {
			continue
		}
		ci, ok := b.Classes[class]
		if !ok {
			return 0
		}
		bytes := ci.Bytes
		if req.TasksOverride > 0 && ci.Tasks > 0 {
			bytes = int64(req.TasksOverride) * (ci.Bytes / int64(ci.Tasks))
		}
		return bytes / 8
	}
	return 0
}

// trackInflight adjusts the gateway-side in-flight count for a node.
func (g *Gateway) trackInflight(id string, delta int64) {
	g.mu.Lock()
	g.byID[id].inflight += delta
	g.mu.Unlock()
}

// countTerminal records a terminal response relayed for a node.
func (g *Gateway) countTerminal(id string, code int) {
	g.mu.Lock()
	n := g.byID[id]
	switch code {
	case http.StatusOK:
		n.accepted++
	case http.StatusUnprocessableEntity:
		n.failed++
	case http.StatusGatewayTimeout:
		n.timedOut++
	}
	g.mu.Unlock()
}

// handleLaunch proxies one launch with retry-with-exclusion: walk the
// candidate list; transport failures mark the node down and move on, a
// node's 429 is remembered (so an all-saturated cluster answers 429 with
// the largest backend Retry-After rather than lying with a generic
// retry hint), a 503 means the node started draining on its own. Any
// terminal response (200/400/422/504) is relayed as-is plus an
// X-Flep-Node header naming the serving node, so clients can attribute
// per-node results and keep (node, device, id) identity unique.
func (g *Gateway) handleLaunch(w http.ResponseWriter, r *http.Request) {
	g.met.Launches.Inc()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{"read body: " + err.Error()})
		return
	}
	var req server.LaunchRequest
	if len(bytes.TrimSpace(body)) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{"parse launch: " + err.Error()})
			return
		}
	}
	client := r.Header.Get("X-Flep-Client")
	if client == "" {
		client = req.Client
	}
	if client == "" {
		client = "anonymous"
	}

	cands := g.candidates(client, req)
	tried := 0
	sawSaturated := false
	maxRetryAfter := 0
	for _, cand := range cands {
		tried++
		if tried > 1 {
			g.met.Retries.Inc()
		}
		code, hdr, respBody, err := g.proxyLaunch(r, cand, client, body)
		if err != nil {
			g.markDown(cand.id, err)
			continue
		}
		switch code {
		case http.StatusTooManyRequests:
			sawSaturated = true
			if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err == nil && ra > maxRetryAfter {
				maxRetryAfter = ra
			}
			continue
		case http.StatusServiceUnavailable:
			g.markUnready(cand.id)
			continue
		}
		g.countTerminal(cand.id, code)
		if code == http.StatusOK {
			g.met.Accepted.Inc()
			g.record(cand.id, client, req, respBody)
		}
		relay(w, code, hdr, respBody, cand.id)
		return
	}

	if sawSaturated {
		g.met.RejectedSaturated.Inc()
		if maxRetryAfter <= 0 {
			maxRetryAfter = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(maxRetryAfter))
		writeJSON(w, http.StatusTooManyRequests, apiError{"cluster saturated: every node's admission queue is full"})
		return
	}
	g.met.RejectedUnroutable.Inc()
	writeJSON(w, http.StatusServiceUnavailable, apiError{"no ready nodes"})
}

// proxyLaunch sends the launch to one node, counting the gateway-side
// in-flight window for the duration.
func (g *Gateway) proxyLaunch(r *http.Request, cand candidate, client string, body []byte) (int, http.Header, []byte, error) {
	g.trackInflight(cand.id, +1)
	defer g.trackInflight(cand.id, -1)

	preq, err := http.NewRequestWithContext(r.Context(), http.MethodPost, cand.addr+"/v1/launch", bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	preq.Header.Set("Content-Type", "application/json")
	preq.Header.Set("X-Flep-Client", client)
	resp, err := g.cfg.Client.Do(preq)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		// A terminal status whose body died on the wire is indistinguishable
		// from a transport failure for accounting: treat it as one so the
		// caller retries (the invocation, if admitted, still completes
		// exactly once on the node).
		return 0, nil, nil, fmt.Errorf("read %s response: %w", cand.id, err)
	}
	return resp.StatusCode, resp.Header, respBody, nil
}

// record appends an accepted launch to the gateway trace (no-op without
// -record). The serving node and device come from the relayed result.
func (g *Gateway) record(nodeID, client string, req server.LaunchRequest, respBody []byte) {
	if g.rec == nil {
		return
	}
	var res server.LaunchResult
	device := -1
	if err := json.Unmarshal(respBody, &res); err == nil {
		device = res.Device
	}
	var deadlineNS int64
	sloClass := ""
	if req.DeadlineMS > 0 {
		deadlineNS = int64(req.DeadlineMS) * int64(time.Millisecond)
		sloClass = "latency"
	}
	g.rec.Record(replay.Record{
		At:            time.Since(g.startReal).Nanoseconds(),
		Device:        device,
		Node:          nodeID,
		Client:        client,
		Bench:         req.Benchmark,
		Class:         req.Class,
		Priority:      req.Priority,
		Weight:        req.Weight,
		TasksOverride: req.TasksOverride,
		DeadlineNS:    deadlineNS,
		SLOClass:      sloClass,
	})
}

// relay writes a node's terminal response through to the client.
func relay(w http.ResponseWriter, code int, hdr http.Header, body []byte, nodeID string) {
	if ct := hdr.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	} else {
		w.Header().Set("Content-Type", "application/json")
	}
	if ra := hdr.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-Flep-Node", nodeID)
	w.WriteHeader(code)
	w.Write(body)
}
