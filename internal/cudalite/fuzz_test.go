package cudalite

import (
	"strings"
	"testing"
)

// FuzzParse checks the parser never panics and that any program it accepts
// survives a print/re-parse round trip. The seed corpus covers every
// construct; `go test -fuzz=FuzzParse ./internal/cudalite` explores beyond.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"__global__ void k() { }",
		"__global__ void k(int* a, float b) { a[0] = (int)b; }",
		"void h(int n) { k<<<n, 256>>>(); }",
		"void h() { k<<<1, 2, 3>>>(1, 2.5, true, NULL); }",
		"__device__ int f(int x) { return x > 0 ? x : -x; }",
		"__global__ void k() { __shared__ float s[4 * 4]; s[0] = 1.0; __syncthreads(); }",
		"void f() { for (int i = 0; i < 10; ++i) { if (i % 2 == 0) { continue; } break; } }",
		"void f() { while (1) { int x = 0x1F + 1e3 + .5f; x++; --x; } }",
		"void f(volatile unsigned int* p) { *p = ~*p & 3 | 1 ^ 2; }",
		"void f(int a) { a += 1; a -= 2; a *= 3; a /= 4; }",
		"void f() { int a = 1, b = 2, c; c = a = b; }",
		"/* comment */ void f() { // line\n }",
		"void f() { ; ; ; }",
		"__global__ void 0bad() { }",
		"void f() { \"string with \\\" escape\"; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejecting garbage is fine; panicking is not
		}
		out := Format(prog)
		prog2, err := Parse(out)
		if err != nil {
			// String statements are the one known print-level lossy
			// construct (expression statements of bare strings); anything
			// else must round trip.
			if strings.Contains(src, `"`) {
				return
			}
			t.Fatalf("accepted program does not re-parse: %v\ninput: %q\nprinted:\n%s", err, src, out)
		}
		if out2 := Format(prog2); out != out2 {
			t.Fatalf("printing not a fixed point for %q", src)
		}
	})
}
