package server

// deps.go is the dependency-aware half of admission: a bounded
// pending-dependency table that holds graph stages until their
// prerequisites complete, releases them into the event loop in
// completion order, and deterministically cancels descendants when a
// prerequisite fails or is shed.
//
// Accounting contract: a parked stage is NOT enqueued — it enters the
// exactly-once ledger (Enqueued) only when its prerequisites complete
// and the loop admits it. A stage canceled while parked therefore never
// touches Enqueued/Completed/SubmitErrors; it is counted in the
// dedicated dep_canceled outcome instead, so the ledger's invariant
// Enqueued == Completed + SubmitErrors still closes at rest.
//
// Locking: depMu guards the table and the per-model aggregates. It is
// never held across a channel send (cancellations are collected under
// the lock and delivered after release) and never acquired while
// holding Server.mu; depAdmit nests it inside acceptMu.RLock only, the
// same way tryEnqueue publishes the draining decision.

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"flep/internal/model"
)

// ErrDepTableFull reports a pending-dependency table at capacity: the
// stage cannot be parked (and, for a new graph, no stalled graph could
// be evicted to make room). HTTP 429.
var ErrDepTableFull = errors.New("server: pending-dependency table full")

// maxDepName bounds client-supplied graph/stage/model identifiers: they
// are map keys in server memory and fields in the replay trace.
const maxDepName = 128

// maxModelRows bounds the distinct model names the per-model aggregates
// track; the overflow folds into one synthetic row so a client cycling
// model names cannot grow server memory or metric output without limit.
const maxModelRows = 64

// modelOverflow is the fold target once maxModelRows distinct model
// names exist.
const modelOverflow = "~other"

type depKey struct {
	client string
	graph  string
}

// depState is a registered stage's lifecycle within the table.
type depState int

const (
	// depParked: waiting in the table for prerequisites.
	depParked depState = iota
	// depLive: admitted toward the runtime (in the queue or executing).
	depLive
	// depDone: completed.
	depDone
	// depFailed: reached admission but was rejected (shed, queue full,
	// draining, or a runtime submit error). Fails the graph.
	depFailed
	// depCanceled: never admitted — a prerequisite failed, or the daemon
	// drained away the parked stage.
	depCanceled
)

type depStage struct {
	state depState
	after []string
	q     *launchReq // non-nil only while parked
}

// depGraph is one live graph instance. Guarded by Server.depMu; deleted
// from the table the moment every declared stage is terminal (its
// accounting then lives on in the per-model aggregates).
type depGraph struct {
	client   string
	id       string
	model    string // folded model name (see foldModelLocked)
	declared int    // stage count the client committed to
	seq      int64  // arrival order, the eviction tie-break

	stages map[string]*depStage
	order  []string // registration order: the deterministic iteration path

	parked   int  // stages in depParked
	inflight int  // stages in depLive
	terminal int  // stages in depDone/depFailed/depCanceled
	done     int  // stages in depDone
	failed   bool // a stage failed or was canceled; the graph cannot complete

	// Virtual-time bounds over completed stages: the graph's makespan is
	// lastFinish − firstSubmit once all stages are done.
	firstSubmitNS int64
	lastFinishNS  int64
}

// modelStats aggregates per-model accounting across graph instances.
// Guarded by Server.depMu; incremented at the same sites as the
// flep_model_* counters, so metrics reconcile exactly with the
// /v1/status models block.
type modelStats struct {
	graphsStarted   int64
	graphsCompleted int64
	graphsCanceled  int64
	stagesCompleted int64
	stagesCanceled  int64
	sloAttained     int64
	sloMissed       int64
	makespanSumNS   int64
}

// depVerdict is depAdmit's decision for one graph-bearing launch.
type depVerdict int

const (
	// depReady: every prerequisite already completed; admit through the
	// normal bounded queue.
	depReady depVerdict = iota
	// depParkStage: held in the table; the handler waits on q.done.
	depParkStage
	// depCancelStage: a prerequisite already failed; never admitted.
	depCancelStage
	// depRejectFull: table at capacity (HTTP 429).
	depRejectFull
	// depRejectInvalid: the spec contradicts the graph (HTTP 400).
	depRejectInvalid
	// depRejectDraining: daemon shutting down (HTTP 503).
	depRejectDraining
)

// validateDepSpec checks the request's graph spec shape before any
// table state is touched. A request with no graph fields passes.
func validateDepSpec(req *LaunchRequest) error {
	if req.Graph == "" && req.Stage == "" && len(req.After) == 0 && req.Stages == 0 && req.Model == "" {
		return nil
	}
	if req.Graph == "" || req.Stage == "" {
		return fmt.Errorf("graph stages require both graph and stage")
	}
	if len(req.Graph) > maxDepName || len(req.Stage) > maxDepName || len(req.Model) > maxDepName {
		return fmt.Errorf("graph, stage and model names are limited to %d bytes", maxDepName)
	}
	if req.Stages < 1 || req.Stages > model.MaxStages {
		return fmt.Errorf("stages must declare the graph's total stage count (1..%d)", model.MaxStages)
	}
	if len(req.After) > model.MaxAfter {
		return fmt.Errorf("after lists %d prerequisites (max %d)", len(req.After), model.MaxAfter)
	}
	if len(req.After) >= req.Stages {
		return fmt.Errorf("stage %q lists %d prerequisites but the graph declares only %d stages",
			req.Stage, len(req.After), req.Stages)
	}
	seen := map[string]bool{}
	for _, dep := range req.After {
		if dep == "" || len(dep) > maxDepName {
			return fmt.Errorf("after entries must be non-empty stage names of at most %d bytes", maxDepName)
		}
		if dep == req.Stage {
			return fmt.Errorf("stage %q depends on itself", req.Stage)
		}
		if seen[dep] {
			return fmt.Errorf("stage %q lists prerequisite %q twice", req.Stage, dep)
		}
		seen[dep] = true
	}
	return nil
}

// depAdmit registers a graph-bearing launch in the table and decides
// its path: ready (admit through the queue now), parked (wait for
// prerequisites), canceled (a prerequisite already failed), or rejected
// (invalid spec / table full / draining). The acceptMu read lock pairs
// with Shutdown's write lock exactly like tryEnqueue: once draining is
// set, no new stage can slip into the table behind the loop's final
// parked-stage sweep.
func (s *Server) depAdmit(q *launchReq) (depVerdict, error) {
	s.acceptMu.RLock()
	defer s.acceptMu.RUnlock()
	if s.draining {
		return depRejectDraining, ErrDraining
	}
	s.depMu.Lock()
	defer s.depMu.Unlock()

	key := depKey{q.client, q.graph}
	g := s.depGraphs[key]
	if g != nil {
		if q.stages != g.declared {
			return depRejectInvalid, fmt.Errorf("stage %q declares %d stages but graph %q was opened with %d",
				q.stage, q.stages, q.graph, g.declared)
		}
		if g.stages[q.stage] != nil {
			return depRejectInvalid, fmt.Errorf("graph %q already has a stage %q", q.graph, q.stage)
		}
		if len(g.stages) >= g.declared {
			return depRejectInvalid, fmt.Errorf("graph %q already has all %d declared stages", q.graph, g.declared)
		}
		if cyc := g.cycleThroughLocked(q.stage, q.after); cyc != "" {
			return depRejectInvalid, fmt.Errorf("stage %q would close a dependency cycle through %q", q.stage, cyc)
		}
	}

	// A prerequisite may name a stage that has not arrived yet — but only
	// if the declared stage count leaves room for it to ever arrive.
	// Rejecting impossible references here keeps the promise that no
	// stage is parked on a dependency that cannot exist.
	registered := 0
	if g != nil {
		registered = len(g.stages)
	}
	unknown := 0
	firstUnknown := ""
	for _, dep := range q.after {
		if g == nil || g.stages[dep] == nil {
			unknown++
			if firstUnknown == "" {
				firstUnknown = dep
			}
		}
	}
	if unknown > q.stages-(registered+1) {
		return depRejectInvalid, fmt.Errorf("prerequisite %q can never exist: graph %q has no undeclared stage slots left",
			firstUnknown, q.graph)
	}

	// Classify the stage from its prerequisites' current states.
	anyBad, allDone := false, true
	badDep := ""
	for _, dep := range q.after {
		var p *depStage
		if g != nil {
			p = g.stages[dep]
		}
		switch {
		case p == nil:
			allDone = false
		case p.state == depDone:
		case p.state == depFailed || p.state == depCanceled:
			anyBad = true
			if badDep == "" {
				badDep = dep
			}
		default:
			allDone = false
		}
	}

	wouldPark := !anyBad && !allDone
	if wouldPark && s.depParked >= s.cfg.DepPending {
		return depRejectFull, ErrDepTableFull
	}
	if g == nil {
		if len(s.depGraphs) >= s.cfg.DepGraphs && !s.depEvictStalledLocked() {
			return depRejectFull, ErrDepTableFull
		}
		g = &depGraph{
			client:   q.client,
			id:       q.graph,
			model:    s.foldModelLocked(q.model),
			declared: q.stages,
			seq:      s.depSeq,
			stages:   map[string]*depStage{},
		}
		s.depSeq++
		s.depGraphs[key] = g
		ms := s.modelStatsLocked(g.model)
		ms.graphsStarted++
		s.met.ModelGraphsStarted.Inc()
	}
	// The folded model name is what recording and accounting share, so a
	// replayed trace aggregates under exactly the live rows.
	q.model = g.model

	st := &depStage{after: q.after}
	g.stages[q.stage] = st
	g.order = append(g.order, q.stage)

	switch {
	case anyBad:
		st.state = depCanceled
		g.terminal++
		g.failed = true
		ms := s.modelStatsLocked(g.model)
		ms.stagesCanceled++
		s.met.ModelStagesCanceled.Inc()
		s.depCloseIfDoneLocked(g)
		return depCancelStage, fmt.Errorf("canceled: prerequisite %q of stage %q did not complete", badDep, q.stage)
	case allDone:
		st.state = depLive
		g.inflight++
		return depReady, nil
	default:
		st.state = depParked
		st.q = q
		g.parked++
		s.depParked++
		s.met.ModelStagesParked.Inc()
		return depParkStage, nil
	}
}

// cycleThroughLocked reports (by returning the reached stage name)
// whether adding a stage with the given prerequisites would close a
// dependency cycle: an already-registered chain leading from one of the
// new stage's prerequisites back to the new stage itself. Callers hold
// depMu.
func (g *depGraph) cycleThroughLocked(stage string, after []string) string {
	visited := map[string]bool{}
	stack := append([]string(nil), after...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == stage {
			return n
		}
		if visited[n] {
			continue
		}
		visited[n] = true
		if p := g.stages[n]; p != nil {
			stack = append(stack, p.after...)
		}
	}
	return ""
}

// foldModelLocked resolves the accounting row for a model name: the
// name itself while the distinct-row budget lasts, the overflow row
// afterwards. Empty means the client sent bare graph coordinates;
// "default" keeps those visible without a per-graph row. Callers hold
// depMu.
func (s *Server) foldModelLocked(name string) string {
	if name == "" {
		name = "default"
	}
	if _, ok := s.models[name]; ok {
		return name
	}
	if len(s.models) >= maxModelRows {
		return modelOverflow
	}
	return name
}

// modelStatsLocked returns the model's aggregate row, creating it on
// first use. Callers hold depMu and must pass a folded name.
func (s *Server) modelStatsLocked(name string) *modelStats {
	ms := s.models[name]
	if ms == nil {
		ms = &modelStats{}
		s.models[name] = ms
	}
	return ms
}

// depEvictStalledLocked frees one graph slot by evicting the oldest
// stalled graph: no parked stages, nothing in flight, and not yet
// complete — the shape left behind by a client that stopped submitting
// mid-graph. Returns false when every tracked graph is still active.
// Callers hold depMu.
func (s *Server) depEvictStalledLocked() bool {
	var victim *depGraph
	for _, g := range s.depGraphs {
		if g.parked > 0 || g.inflight > 0 {
			continue
		}
		if victim == nil || g.seq < victim.seq {
			victim = g
		}
	}
	if victim == nil {
		return false
	}
	ms := s.modelStatsLocked(victim.model)
	ms.graphsCanceled++
	s.met.ModelGraphsCanceled.Inc()
	s.met.ModelEvictions.Inc()
	delete(s.depGraphs, depKey{victim.client, victim.id})
	return true
}

// depStageDone folds a completed stage into its graph and collects the
// parked dependents it unblocks into s.depReady, which the loop drains
// right after its arrival batch. Runs only on the loop goroutine (from
// complete), so appending to the loop-owned depReady slice is safe.
func (s *Server) depStageDone(q *launchReq, res *LaunchResult) {
	//flepvet:allow sharedlock -- bounded table update; handlers hold depMu only for bounded map edits, never block
	s.depMu.Lock()
	defer s.depMu.Unlock()
	g := s.depGraphs[depKey{q.client, q.graph}]
	if g == nil {
		return
	}
	st := g.stages[q.stage]
	if st == nil || st.state != depLive {
		return
	}
	st.state = depDone
	g.inflight--
	g.terminal++
	g.done++
	if g.done == 1 || res.SubmittedVirtualNS < g.firstSubmitNS {
		g.firstSubmitNS = res.SubmittedVirtualNS
	}
	if res.FinishedVirtualNS > g.lastFinishNS {
		g.lastFinishNS = res.FinishedVirtualNS
	}
	ms := s.modelStatsLocked(g.model)
	ms.stagesCompleted++
	s.met.ModelStagesCompleted.Inc()
	switch res.SLO {
	case "attained":
		ms.sloAttained++
		s.met.ModelSLOAttained.Inc()
	case "missed":
		ms.sloMissed++
		s.met.ModelSLOMissed.Inc()
	}
	// Release every parked dependent whose prerequisites are now all
	// done, in registration order — the deterministic path through the
	// DAG, so a replayed trace sees the same release sequence.
	for _, name := range g.order {
		d := g.stages[name]
		if d.state != depParked {
			continue
		}
		ready := true
		for _, dep := range d.after {
			p := g.stages[dep]
			if p == nil || p.state != depDone {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		rq := d.q
		d.q = nil
		d.state = depLive
		g.parked--
		s.depParked--
		g.inflight++
		s.met.ModelStagesReleased.Inc()
		s.depReady = append(s.depReady, rq)
	}
	s.depCloseIfDoneLocked(g)
}

// depStageFailed marks a stage that reached admission but was rejected
// (shed, queue full, draining, or a runtime submit error) and cascades
// cancellation to its parked descendants. Safe from any goroutine; the
// collected cancels are delivered after depMu is released.
func (s *Server) depStageFailed(q *launchReq) {
	//flepvet:allow sharedlock -- bounded table update; handlers hold depMu only for bounded map edits, never block
	s.depMu.Lock()
	g := s.depGraphs[depKey{q.client, q.graph}]
	if g == nil {
		s.depMu.Unlock()
		return
	}
	st := g.stages[q.stage]
	if st == nil || st.state != depLive {
		s.depMu.Unlock()
		return
	}
	st.state = depFailed
	g.inflight--
	g.terminal++
	g.failed = true
	ms := s.modelStatsLocked(g.model)
	ms.stagesCanceled++
	s.met.ModelStagesCanceled.Inc()
	cancels := s.depCascadeLocked(g)
	s.depCloseIfDoneLocked(g)
	s.depMu.Unlock()
	s.deliverDepCancels(cancels, fmt.Sprintf("prerequisite %q failed", q.stage))
}

// depCascadeLocked cancels every parked stage that transitively depends
// on a failed or canceled stage, returning their requests for delivery
// outside the lock. Passes over the registration-order slice repeat
// until a fixpoint, so deep chains cancel in one call regardless of
// declaration order. Callers hold depMu.
func (s *Server) depCascadeLocked(g *depGraph) []*launchReq {
	var cancels []*launchReq
	for changed := true; changed; {
		changed = false
		for _, name := range g.order {
			d := g.stages[name]
			if d.state != depParked {
				continue
			}
			doomed := false
			for _, dep := range d.after {
				if p := g.stages[dep]; p != nil && (p.state == depFailed || p.state == depCanceled) {
					doomed = true
					break
				}
			}
			if !doomed {
				continue
			}
			cancels = append(cancels, d.q)
			d.q = nil
			d.state = depCanceled
			g.parked--
			s.depParked--
			g.terminal++
			ms := s.modelStatsLocked(g.model)
			ms.stagesCanceled++
			s.met.ModelStagesCanceled.Inc()
			changed = true
		}
	}
	return cancels
}

// depCloseIfDoneLocked retires a graph whose declared stages are all
// terminal: its outcome folds into the per-model aggregates and the
// table entry is deleted, so the table only ever holds live graphs.
// Callers hold depMu.
func (s *Server) depCloseIfDoneLocked(g *depGraph) {
	if g.terminal < g.declared {
		return
	}
	ms := s.modelStatsLocked(g.model)
	if g.failed || g.done < g.declared {
		ms.graphsCanceled++
		s.met.ModelGraphsCanceled.Inc()
	} else {
		ms.graphsCompleted++
		s.met.ModelGraphsCompleted.Inc()
		ms.makespanSumNS += g.lastFinishNS - g.firstSubmitNS
	}
	delete(s.depGraphs, depKey{g.client, g.id})
}

// deliverDepCancels accounts and answers canceled parked stages. Each
// request sees exactly one terminal event: the canceling goroutine
// removed it from the table under depMu, so it holds exclusive
// ownership here.
func (s *Server) deliverDepCancels(cancels []*launchReq, reason string) {
	for _, cq := range cancels {
		s.met.DepCanceled.Inc()
		//flepvet:allow sharedlock -- bounded counter bump; handlers only copy under s.mu, never block
		s.mu.Lock()
		s.c.DepCanceled++
		if sess := s.sessions[cq.client]; sess != nil {
			sess.DepCanceled++
		}
		s.mu.Unlock()
		//flepvet:allow blockingsend -- cq.done is per-request with capacity 1 (http.go) and sees exactly one send
		cq.done <- LaunchResult{
			Client: cq.client, Kernel: cq.bench.Name, Class: cq.class.String(),
			Priority: cq.priority, Device: s.cfg.Device, Canceled: reason,
		}
	}
}

// depDrainCancel sweeps the table at drain time: with the engine idle
// and the queue empty, no parked stage's prerequisites can ever
// complete, so every remaining graph is canceled deterministically
// instead of leaving handlers to time out. Runs on the loop goroutine
// just before it exits.
func (s *Server) depDrainCancel() {
	var cancels []*launchReq
	//flepvet:allow sharedlock -- bounded table sweep at loop exit; handlers hold depMu only for bounded map edits
	s.depMu.Lock()
	graphs := make([]*depGraph, 0, len(s.depGraphs))
	for _, g := range s.depGraphs {
		graphs = append(graphs, g)
	}
	sort.Slice(graphs, func(i, j int) bool { return graphs[i].seq < graphs[j].seq })
	for _, g := range graphs {
		for _, name := range g.order {
			d := g.stages[name]
			if d.state != depParked {
				continue
			}
			cancels = append(cancels, d.q)
			d.q = nil
			d.state = depCanceled
			g.parked--
			s.depParked--
			g.terminal++
			ms := s.modelStatsLocked(g.model)
			ms.stagesCanceled++
			s.met.ModelStagesCanceled.Inc()
		}
		ms := s.modelStatsLocked(g.model)
		ms.graphsCanceled++
		s.met.ModelGraphsCanceled.Inc()
		delete(s.depGraphs, depKey{g.client, g.id})
	}
	s.depMu.Unlock()
	s.deliverDepCancels(cancels, "daemon draining")
}

// admitReleased enqueues every stage the last simulation step unblocked.
// Released stages bypass the bounded submit channel — their population
// is bounded by the table itself — and enter the exactly-once ledger
// here, at the moment they become real work. Runs on the loop
// goroutine, after admitAll.
func (s *Server) admitReleased() {
	if len(s.depReady) == 0 {
		return
	}
	now := time.Now()
	for i := 0; i < len(s.depReady); i++ {
		q := s.depReady[i]
		s.depReady[i] = nil
		//flepvet:allow ledgerforbidden -- admitReleased IS the sanctioned re-entry boundary: a released stage was parked before reaching Enqueued, so this is its first and only Enqueued count
		s.met.Enqueued.Inc()
		//flepvet:allow sharedlock -- bounded counter bump; handlers only copy under s.mu, never block
		s.mu.Lock()
		//flepvet:allow ledgerforbidden -- mirrors the metrics-side count above; same single sanctioned re-entry
		s.c.Enqueued++
		s.session(q.client).Launches++
		s.mu.Unlock()
		s.queued.Add(1) // admit releases the reservation
		if q.deadline > 0 {
			s.lcOutstanding.Add(1)
		}
		q.admitReal = now
		s.admit(q)
	}
	s.depReady = s.depReady[:0]
}

// ModelStatus is one model's row in the /v1/status models block. Counts
// reconcile exactly with the flep_model_* metric families: both are
// incremented at the same depMu-guarded sites.
type ModelStatus struct {
	Model           string  `json:"model"`
	GraphsStarted   int64   `json:"graphs_started"`
	GraphsCompleted int64   `json:"graphs_completed"`
	GraphsCanceled  int64   `json:"graphs_canceled"`
	StagesCompleted int64   `json:"stages_completed"`
	StagesCanceled  int64   `json:"stages_canceled"`
	StagesParked    int64   `json:"stages_parked"`
	SLOAttained     int64   `json:"slo_attained"`
	SLOMissed       int64   `json:"slo_missed"`
	AttainRate      float64 `json:"attain_rate,omitempty"`
	MeanMakespanUS  float64 `json:"mean_makespan_us,omitempty"`
}

// modelStatuses snapshots the per-model aggregates, sorted by name.
func (s *Server) modelStatuses() []ModelStatus {
	s.depMu.Lock()
	defer s.depMu.Unlock()
	if len(s.models) == 0 {
		return nil
	}
	parked := map[string]int64{}
	for _, g := range s.depGraphs {
		parked[g.model] += int64(g.parked)
	}
	names := make([]string, 0, len(s.models))
	for name := range s.models {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]ModelStatus, 0, len(names))
	for _, name := range names {
		ms := s.models[name]
		row := ModelStatus{
			Model:           name,
			GraphsStarted:   ms.graphsStarted,
			GraphsCompleted: ms.graphsCompleted,
			GraphsCanceled:  ms.graphsCanceled,
			StagesCompleted: ms.stagesCompleted,
			StagesCanceled:  ms.stagesCanceled,
			StagesParked:    parked[name],
			SLOAttained:     ms.sloAttained,
			SLOMissed:       ms.sloMissed,
		}
		if n := ms.sloAttained + ms.sloMissed; n > 0 {
			row.AttainRate = float64(ms.sloAttained) / float64(n)
		}
		if ms.graphsCompleted > 0 {
			row.MeanMakespanUS = float64(ms.makespanSumNS) / float64(ms.graphsCompleted) / 1e3
		}
		out = append(out, row)
	}
	return out
}

// depParkedCount reports how many stages are held in the table (the
// flep_model_stages_held gauge).
func (s *Server) depParkedCount() int {
	s.depMu.Lock()
	defer s.depMu.Unlock()
	return s.depParked
}

// depGraphCount reports how many live graphs the table tracks (the
// flep_model_graphs_tracked gauge).
func (s *Server) depGraphCount() int {
	s.depMu.Lock()
	defer s.depMu.Unlock()
	return len(s.depGraphs)
}

// mergeModelRows folds one shard's model rows into a fleet aggregate
// keyed by model name, re-weighting the derived means by the counts
// that produced them.
func mergeModelRows(agg, rows []ModelStatus) []ModelStatus {
	if len(rows) == 0 {
		return agg
	}
	byName := map[string]int{}
	for i := range agg {
		byName[agg[i].Model] = i
	}
	for _, r := range rows {
		i, ok := byName[r.Model]
		if !ok {
			byName[r.Model] = len(agg)
			agg = append(agg, r)
			continue
		}
		m := &agg[i]
		if n0, n1 := m.GraphsCompleted, r.GraphsCompleted; n0+n1 > 0 {
			m.MeanMakespanUS = (m.MeanMakespanUS*float64(n0) + r.MeanMakespanUS*float64(n1)) / float64(n0+n1)
		}
		m.GraphsStarted += r.GraphsStarted
		m.GraphsCompleted += r.GraphsCompleted
		m.GraphsCanceled += r.GraphsCanceled
		m.StagesCompleted += r.StagesCompleted
		m.StagesCanceled += r.StagesCanceled
		m.StagesParked += r.StagesParked
		m.SLOAttained += r.SLOAttained
		m.SLOMissed += r.SLOMissed
		if n := m.SLOAttained + m.SLOMissed; n > 0 {
			m.AttainRate = float64(m.SLOAttained) / float64(n)
		}
	}
	sort.Slice(agg, func(i, j int) bool { return agg[i].Model < agg[j].Model })
	return agg
}
