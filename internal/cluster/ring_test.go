package cluster

import (
	"fmt"
	"testing"
)

func TestRingSequenceCoversAllNodesOnce(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	r := newRing(nodes)
	for i := 0; i < 100; i++ {
		seq := r.sequence(fmt.Sprintf("client-%d", i))
		if len(seq) != len(nodes) {
			t.Fatalf("sequence length %d, want %d", len(seq), len(nodes))
		}
		seen := map[string]bool{}
		for _, n := range seq {
			if seen[n] {
				t.Fatalf("node %s appears twice in %v", n, seq)
			}
			seen[n] = true
		}
	}
}

func TestRingSequenceIsDeterministic(t *testing.T) {
	r1 := newRing([]string{"a", "b", "c"})
	r2 := newRing([]string{"c", "a", "b"}) // construction order must not matter
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		s1, s2 := r1.sequence(key), r2.sequence(key)
		for j := range s1 {
			if s1[j] != s2[j] {
				t.Fatalf("key %s: ring order depends on construction order: %v vs %v", key, s1, s2)
			}
		}
	}
}

// The consistent-hash property the drain path relies on: excluding one
// node remaps exactly the sessions homed on it — every other session's
// first eligible choice is unchanged.
func TestRingExclusionRemapsOnlyHomedSessions(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	r := newRing(nodes)
	const excluded = "b"
	firstEligible := func(seq []string, skip string) string {
		for _, n := range seq {
			if n != skip {
				return n
			}
		}
		return ""
	}
	homed, moved := 0, 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("session-%d", i)
		seq := r.sequence(key)
		before := seq[0]
		after := firstEligible(seq, excluded)
		if before == excluded {
			homed++
			if after == excluded || after == "" {
				t.Fatalf("key %s not remapped off excluded node", key)
			}
		} else {
			if after != before {
				t.Fatalf("key %s moved from %s to %s though its home was not excluded", key, before, after)
			}
			moved++
		}
	}
	if homed == 0 {
		t.Fatal("no sessions homed on the excluded node; test vacuous")
	}
}

// Vnode fan-out keeps the keyspace split roughly fair: no node of four
// should own more than half of 1000 keys.
func TestRingBalance(t *testing.T) {
	r := newRing([]string{"a", "b", "c", "d"})
	counts := map[string]int{}
	for i := 0; i < 1000; i++ {
		counts[r.sequence(fmt.Sprintf("key-%d", i))[0]]++
	}
	for n, c := range counts {
		if c > 500 {
			t.Fatalf("node %s owns %d/1000 keys — ring badly unbalanced (%v)", n, c, counts)
		}
	}
	if len(counts) != 4 {
		t.Fatalf("only %d nodes own keys: %v", len(counts), counts)
	}
}
