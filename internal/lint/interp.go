package lint

// interp.go is the forward dataflow engine under poolownership and
// ledger: a structured abstract interpreter over function bodies that
// keeps a bounded *set* of path states (a disjunctive must/may lattice
// over local values) instead of a single joined state, so correlations
// like "parked was set exactly on the path where q escaped into the
// dep table" survive to the branch that tests them.
//
// The engine owns control flow, condition refinement, and the
// conditional-summary protocol; a domain (ipDomain) owns the meaning of
// calls, assignments, sends, receives, and exits. Summaries are
// per-exit: each callee return path contributes a tuple of abstract
// result values (nil / non-nil / constant / unknown) plus an opaque
// payload the domain interprets (escape bits, counter families). At a
// call site the caller FORKS one path state per payload group and
// remembers the group's result tuples; a later `if err != nil` or
// `switch verdict { case depParkStage: ... }` then filters states whose
// tuples cannot match, which is exactly how serveLaunch's post-depAdmit
// putLaunchReq calls are proven safe.
//
// Soundness caveats (documented in DESIGN.md §11): loops are unrolled
// to a small fixed bound (the domains' facts are monotone sets, so this
// converges in practice); paths beyond maxPathStates are joined with
// loss of correlation (never of may-facts); dynamic calls (function
// values, interface methods) are treated by each domain's conservative
// unknown-call rule.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ---------------------------------------------------------------- results

type resKind uint8

const (
	resUnknown resKind = iota
	resNil
	resNonNil
	resConst
)

// resVal abstracts one return value of one concrete return path.
type resVal struct {
	kind resKind
	val  constant.Value // resConst only
}

// mayBeNil / mayBeNonNil implement the may-semantics branch filters.
func (r resVal) mayBeNil() bool    { return r.kind == resNil || r.kind == resUnknown }
func (r resVal) mayBeNonNil() bool { return r.kind != resNil }

// mayEqual reports whether this result could equal the constant.
func (r resVal) mayEqual(v constant.Value) bool {
	if r.kind != resConst || v == nil {
		return r.kind != resNil // a nil result never equals a constant
	}
	return constant.Compare(r.val, token.EQL, v)
}

// mayDiffer reports whether this result could differ from the constant.
func (r resVal) mayDiffer(v constant.Value) bool {
	if r.kind != resConst || v == nil {
		return true
	}
	return constant.Compare(r.val, token.NEQ, v)
}

// ------------------------------------------------------------- summaries

// sumExit is one payload group of a callee's return paths: every
// concrete return path that has the same observable effect (payload),
// with the abstract result tuple of each path kept for caller-side
// refinement.
type sumExit struct {
	tuples  [][]resVal
	payload uint64
}

// funcSummary is a callee's behavior, grouped by payload.
type funcSummary struct {
	exits []*sumExit
}

// addSummaryExit folds one concrete exit (tuple, payload) into the
// group list.
func (s *funcSummary) addExit(tuple []resVal, payload uint64) {
	for _, e := range s.exits {
		if e.payload == payload {
			e.tuples = append(e.tuples, tuple)
			return
		}
	}
	s.exits = append(s.exits, &sumExit{tuples: [][]resVal{tuple}, payload: payload})
}

// resolveResults abstracts one return statement's values. Named-result
// bare returns and anything unrecognized resolve to unknown.
func resolveResults(info *types.Info, nresults int, ret *ast.ReturnStmt) []resVal {
	tuple := make([]resVal, nresults)
	if ret == nil || len(ret.Results) != nresults {
		return tuple // all unknown
	}
	for i, e := range ret.Results {
		e = stripParens(e)
		if tv, ok := info.Types[e]; ok {
			if tv.IsNil() {
				tuple[i] = resVal{kind: resNil}
				continue
			}
			if tv.Value != nil {
				tuple[i] = resVal{kind: resConst, val: tv.Value}
				continue
			}
		}
		// Recognize the common known-non-nil error shapes: errors.New /
		// fmt.Errorf calls and package-level Err* sentinel variables.
		switch x := e.(type) {
		case *ast.CallExpr:
			if fn := staticCalleeFunc(info, x); fn != nil && fn.Pkg() != nil {
				p, n := fn.Pkg().Path(), fn.Name()
				if (p == "errors" && n == "New") || (p == "fmt" && n == "Errorf") {
					tuple[i] = resVal{kind: resNonNil}
				}
			}
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok && v.Parent() == v.Pkg().Scope() &&
				len(v.Name()) > 3 && v.Name()[:3] == "Err" {
				tuple[i] = resVal{kind: resNonNil}
			}
		}
	}
	return tuple
}

// ------------------------------------------------------------ path state

// condGroup is the set of still-possible callee exits a binding refers
// to. Narrowing allocates a fresh group so sibling states stay intact.
type condGroup struct {
	tuples [][]resVal
}

// condBind links one local variable to one result slot of a call whose
// summary forked this state.
type condBind struct {
	group *condGroup
	slot  int
}

// pathState is one member of the disjunctive state set: domain facts
// keyed by abstract value ID, an alias table from variables to value
// IDs, constant-bool facts, pending conditional bindings, and the
// deferred calls registered so far on this path.
type pathState struct {
	facts  map[int]uint64
	vals   map[types.Object]int
	bools  map[types.Object]int8 // +1 true, -1 false
	conds  map[types.Object]condBind
	defers []*ast.CallExpr
	// branch is the most recent select-clause decision point; implicit
	// exits report there so a leak on a timeout path is annotatable at
	// its `case` line rather than at the closing brace.
	branch token.Pos
	// pendingCall/pendingGroup/pendingOrigin carry call results to the
	// enclosing assignment within one statement.
	pendingCall   *ast.CallExpr
	pendingGroup  *condGroup
	pendingOrigin bool
}

func newPathState() *pathState {
	return &pathState{
		facts: map[int]uint64{},
		vals:  map[types.Object]int{},
		bools: map[types.Object]int8{},
		conds: map[types.Object]condBind{},
	}
}

func (st *pathState) clone() *pathState {
	c := &pathState{
		facts:  make(map[int]uint64, len(st.facts)),
		vals:   make(map[types.Object]int, len(st.vals)),
		bools:  make(map[types.Object]int8, len(st.bools)),
		conds:  make(map[types.Object]condBind, len(st.conds)),
		defers: append([]*ast.CallExpr(nil), st.defers...),
		branch: st.branch,
	}
	for k, v := range st.facts {
		c.facts[k] = v
	}
	for k, v := range st.vals {
		c.vals[k] = v
	}
	for k, v := range st.bools {
		c.bools[k] = v
	}
	for k, v := range st.conds {
		c.conds[k] = v // groups are narrowed copy-on-write
	}
	return c
}

// narrowGroup replaces old with a filtered group in every binding of
// this state. Returns false when no tuples survive (state is dead).
func (st *pathState) narrowGroup(old *condGroup, keep func([]resVal) bool) bool {
	ng := &condGroup{}
	for _, t := range old.tuples {
		if keep(t) {
			ng.tuples = append(ng.tuples, t)
		}
	}
	if len(ng.tuples) == 0 {
		return false
	}
	for obj, cb := range st.conds {
		if cb.group == old {
			st.conds[obj] = condBind{group: ng, slot: cb.slot}
		}
	}
	return true
}

// ---------------------------------------------------------------- domain

// ipDomain gives meaning to the leaf operations the engine routes. All
// hooks may mutate the state in place; call may fork (return more
// states than it was given).
type ipDomain interface {
	call(in []*pathState, call *ast.CallExpr, w *walker) []*pathState
	atom(st *pathState, n ast.Node)
	assign(st *pathState, as *ast.AssignStmt)
	incDec(st *pathState, s *ast.IncDecStmt)
	send(st *pathState, s *ast.SendStmt)
	recv(st *pathState, x ast.Expr)
	funcLit(st *pathState, lit *ast.FuncLit)
	goStmt(st *pathState, call *ast.CallExpr)
	rangeBind(st *pathState, rng *ast.RangeStmt)
	exit(st *pathState, ret *ast.ReturnStmt, pos token.Pos)
}

// baseDomain is the all-no-op embedding base.
type baseDomain struct{}

func (baseDomain) atom(*pathState, ast.Node)                   {}
func (baseDomain) assign(*pathState, *ast.AssignStmt)          {}
func (baseDomain) incDec(*pathState, *ast.IncDecStmt)          {}
func (baseDomain) send(*pathState, *ast.SendStmt)              {}
func (baseDomain) recv(*pathState, ast.Expr)                   {}
func (baseDomain) funcLit(*pathState, *ast.FuncLit)            {}
func (baseDomain) goStmt(*pathState, *ast.CallExpr)            {}
func (baseDomain) rangeBind(*pathState, *ast.RangeStmt)        {}
func (baseDomain) exit(*pathState, *ast.ReturnStmt, token.Pos) {}

// ---------------------------------------------------------------- walker

const (
	maxPathStates = 40
	loopUnroll    = 3
)

type frameKind int

const (
	frameLoop frameKind = iota
	frameSwitch
	frameSelect
)

type ctrlFrame struct {
	kind  frameKind
	label string
	brk   []*pathState
	cont  []*pathState
}

type walker struct {
	info   *types.Info
	dom    ipDomain
	fnEnd  token.Pos
	frames []*ctrlFrame
	// pendingLabel is consumed by the next loop/switch/select statement.
	pendingLabel string
	nextVal      int
}

func newWalker(info *types.Info, dom ipDomain, fnEnd token.Pos) *walker {
	return &walker{info: info, dom: dom, fnEnd: fnEnd}
}

// newValue allocates a fresh abstract value ID.
func (w *walker) newValue() int {
	w.nextVal++
	return w.nextVal
}

// run walks a function body from one initial state, delivering every
// path to dom.exit (explicit returns and the implicit end-of-body one).
func (w *walker) run(body *ast.BlockStmt, init *pathState) {
	out := w.stmts([]*pathState{init}, body.List)
	for _, st := range out {
		w.doExit(st, nil, w.fnEnd)
	}
}

// doExit applies the path's deferred calls (LIFO) and hands the state
// to the domain. Implicit exits report at the last select decision
// point when one exists.
func (w *walker) doExit(st *pathState, ret *ast.ReturnStmt, pos token.Pos) {
	states := []*pathState{st}
	for i := len(st.defers) - 1; i >= 0; i-- {
		states = w.call(states, st.defers[i])
	}
	for _, s := range states {
		p := pos
		if ret == nil && s.branch.IsValid() {
			p = s.branch
		}
		w.dom.exit(s, ret, p)
	}
}

// cap trims a state set that outgrew the bound: the overflow is joined
// into the last kept state with loss of correlation (alias entries and
// bindings that disagree are dropped; facts are OR-joined).
func capStates(states []*pathState) []*pathState {
	if len(states) <= maxPathStates {
		return states
	}
	// First try a lossless-in-facts merge: states whose fact maps agree
	// (and whose defers/pending slots are identical) are folded into one
	// representative, dropping only the vals/bools/conds entries the
	// members disagree on. Branches whose condition the engine cannot
	// refine clone both sides into identical states, so this typically
	// collapses the set well under the cap without OR-joining facts.
	byKey := map[string]*pathState{}
	merged := states[:0]
	for _, st := range states {
		key := st.mergeKey()
		rep, ok := byKey[key]
		if !ok {
			byKey[key] = st
			merged = append(merged, st)
			continue
		}
		rep.absorb(st)
	}
	if len(merged) <= maxPathStates {
		return merged
	}
	// Still over the cap: OR-join the overflow into the last kept state.
	// This loses must-facts (they degrade to may-facts), so analyzers
	// only ever see it on pathological functions.
	kept := merged[:maxPathStates]
	sink := kept[maxPathStates-1]
	for _, st := range merged[maxPathStates:] {
		for id, f := range st.facts {
			sink.facts[id] |= f
		}
		sink.absorb(st)
		sink.conds = map[types.Object]condBind{}
	}
	return kept
}

// mergeKey fingerprints the parts of a state that must match exactly for
// two states to be folded into one: the fact map, the defer stack, the
// branch position, and any in-flight call binding.
func (st *pathState) mergeKey() string {
	ids := make([]int, 0, len(st.facts))
	for id, f := range st.facts {
		if f != 0 {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	var b strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&b, "%d=%x;", id, st.facts[id])
	}
	fmt.Fprintf(&b, "@%d", st.branch)
	for _, d := range st.defers {
		fmt.Fprintf(&b, "|%p", d)
	}
	fmt.Fprintf(&b, "!%p.%p.%t", st.pendingCall, st.pendingGroup, st.pendingOrigin)
	return b.String()
}

// absorb folds other into st, keeping only the refinements both agree on.
func (st *pathState) absorb(other *pathState) {
	for obj, id := range st.vals {
		if other.vals[obj] != id {
			delete(st.vals, obj)
		}
	}
	for obj, v := range st.bools {
		if other.bools[obj] != v {
			delete(st.bools, obj)
		}
	}
	for obj, cb := range st.conds {
		ocb, ok := other.conds[obj]
		if !ok || ocb.group != cb.group || ocb.slot != cb.slot {
			delete(st.conds, obj)
		}
	}
}

func (w *walker) stmts(in []*pathState, list []ast.Stmt) []*pathState {
	for _, s := range list {
		if len(in) == 0 {
			return in
		}
		in = capStates(w.stmt(in, s))
		// Pending call results do not survive a statement boundary.
		for _, st := range in {
			st.pendingCall, st.pendingGroup, st.pendingOrigin = nil, nil, false
		}
	}
	return in
}

func (w *walker) stmt(in []*pathState, s ast.Stmt) []*pathState {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.stmts(in, s.List)
	case *ast.EmptyStmt:
		return in
	case *ast.LabeledStmt:
		w.pendingLabel = s.Label.Name
		out := w.stmt(in, s.Stmt)
		w.pendingLabel = ""
		return out
	case *ast.ExprStmt:
		if call, ok := stripParens(s.X).(*ast.CallExpr); ok {
			if id, ok := stripParens(call.Fun).(*ast.Ident); ok && id.Name == "panic" && w.info.Uses[id] == nil {
				w.expr(in, s.X)
				return nil // aborting path: no ledger/pool exit obligations
			}
		}
		return w.expr(in, s.X)
	case *ast.AssignStmt:
		return w.assign(in, s)
	case *ast.DeclStmt:
		return w.declStmt(in, s)
	case *ast.IncDecStmt:
		out := w.expr(in, s.X)
		for _, st := range out {
			w.dom.incDec(st, s)
		}
		return out
	case *ast.SendStmt:
		out := w.expr(in, s.Chan)
		out = w.expr(out, s.Value)
		for _, st := range out {
			w.dom.send(st, s)
		}
		return out
	case *ast.DeferStmt:
		for _, st := range in {
			st.defers = append(st.defers, s.Call)
		}
		return in
	case *ast.GoStmt:
		out := in
		for _, a := range s.Call.Args {
			out = w.expr(out, a)
		}
		for _, st := range out {
			w.dom.goStmt(st, s.Call)
		}
		return out
	case *ast.ReturnStmt:
		out := in
		for _, e := range s.Results {
			out = w.expr(out, e)
		}
		for _, st := range out {
			w.doExit(st, s, s.Pos())
		}
		return nil
	case *ast.BranchStmt:
		return w.branchStmt(in, s)
	case *ast.IfStmt:
		return w.ifStmt(in, s)
	case *ast.ForStmt:
		return w.forStmt(in, s)
	case *ast.RangeStmt:
		return w.rangeStmt(in, s)
	case *ast.SwitchStmt:
		return w.switchStmt(in, s)
	case *ast.TypeSwitchStmt:
		return w.typeSwitchStmt(in, s)
	case *ast.SelectStmt:
		return w.selectStmt(in, s)
	default:
		return in
	}
}

func (w *walker) declStmt(in []*pathState, s *ast.DeclStmt) []*pathState {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return in
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			in = w.expr(in, v)
		}
		// Bool-literal tracking for var declarations mirrors assign.
		for i, name := range vs.Names {
			obj := w.info.Defs[name]
			if obj == nil || i >= len(vs.Values) {
				continue
			}
			for _, st := range in {
				setBoolFact(st, obj, w.info, vs.Values[i])
			}
		}
	}
	return in
}

func (w *walker) branchStmt(in []*pathState, s *ast.BranchStmt) []*pathState {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(w.frames) - 1; i >= 0; i-- {
			f := w.frames[i]
			if label != "" && f.label != label {
				continue
			}
			f.brk = append(f.brk, in...)
			return nil
		}
	case token.CONTINUE:
		for i := len(w.frames) - 1; i >= 0; i-- {
			f := w.frames[i]
			if f.kind != frameLoop {
				continue
			}
			if label != "" && f.label != label {
				continue
			}
			f.cont = append(f.cont, in...)
			return nil
		}
	case token.FALLTHROUGH:
		// Handled by switchStmt; reaching here means a malformed tree.
	case token.GOTO:
		// No gotos in the checked tree; drop the path conservatively.
	}
	return nil
}

func (w *walker) ifStmt(in []*pathState, s *ast.IfStmt) []*pathState {
	if s.Init != nil {
		in = w.stmt(in, s.Init)
	}
	in = w.expr(in, s.Cond)
	thenIn := w.filter(in, s.Cond, true)
	elseIn := w.filter(in, s.Cond, false)
	out := w.stmt(thenIn, s.Body)
	if s.Else != nil {
		out = append(out, w.stmt(elseIn, s.Else)...)
	} else {
		out = append(out, elseIn...)
	}
	return capStates(out)
}

func (w *walker) forStmt(in []*pathState, s *ast.ForStmt) []*pathState {
	frame := &ctrlFrame{kind: frameLoop, label: w.pendingLabel}
	w.pendingLabel = ""
	if s.Init != nil {
		in = w.stmt(in, s.Init)
	}
	w.frames = append(w.frames, frame)
	var exits []*pathState
	cur := in
	for iter := 0; iter < loopUnroll && len(cur) > 0; iter++ {
		if s.Cond != nil {
			cur = w.expr(cur, s.Cond)
			exits = append(exits, w.filter(cur, s.Cond, false)...)
			cur = w.filter(cur, s.Cond, true)
		}
		cur = w.stmt(cur, s.Body)
		cur = append(cur, frame.cont...)
		frame.cont = nil
		if s.Post != nil {
			cur = w.stmt(cur, s.Post)
		}
		cur = capStates(cur)
	}
	// Paths still circulating after the unroll bound exit through the
	// condition one final time (an uncondition loop's residue can only
	// leave via break, already collected in the frame).
	if s.Cond != nil && len(cur) > 0 {
		cur = w.expr(cur, s.Cond)
		exits = append(exits, w.filter(cur, s.Cond, false)...)
	}
	w.frames = w.frames[:len(w.frames)-1]
	exits = append(exits, frame.brk...)
	return capStates(exits)
}

func (w *walker) rangeStmt(in []*pathState, s *ast.RangeStmt) []*pathState {
	frame := &ctrlFrame{kind: frameLoop, label: w.pendingLabel}
	w.pendingLabel = ""
	in = w.expr(in, s.X)
	// Zero-iteration exit.
	exits := make([]*pathState, 0, len(in))
	for _, st := range in {
		exits = append(exits, st.clone())
	}
	w.frames = append(w.frames, frame)
	cur := in
	for iter := 0; iter < loopUnroll && len(cur) > 0; iter++ {
		for _, st := range cur {
			w.dom.rangeBind(st, s)
		}
		cur = w.stmt(cur, s.Body)
		cur = append(cur, frame.cont...)
		frame.cont = nil
		cur = capStates(cur)
		exits = append(exits, cloneAll(cur)...)
	}
	w.frames = w.frames[:len(w.frames)-1]
	exits = append(exits, frame.brk...)
	return capStates(exits)
}

func cloneAll(states []*pathState) []*pathState {
	out := make([]*pathState, len(states))
	for i, st := range states {
		out[i] = st.clone()
	}
	return out
}

func (w *walker) switchStmt(in []*pathState, s *ast.SwitchStmt) []*pathState {
	frame := &ctrlFrame{kind: frameSwitch, label: w.pendingLabel}
	w.pendingLabel = ""
	if s.Init != nil {
		in = w.stmt(in, s.Init)
	}
	var tagObj types.Object
	if s.Tag != nil {
		in = w.expr(in, s.Tag)
		if id, ok := stripParens(s.Tag).(*ast.Ident); ok {
			tagObj = w.info.Uses[id]
		}
	}
	w.frames = append(w.frames, frame)

	// Collect every constant case value for the default clause's
	// exclusion set.
	var allConsts []constant.Value
	allConstant := s.Tag != nil
	for _, cs := range s.Body.List {
		cc := cs.(*ast.CaseClause)
		for _, e := range cc.List {
			if tv, ok := w.info.Types[e]; ok && tv.Value != nil {
				allConsts = append(allConsts, tv.Value)
			} else {
				allConstant = false
			}
		}
	}

	var out []*pathState
	var fallthroughIn []*pathState
	hasDefault := false
	for _, cs := range s.Body.List {
		cc := cs.(*ast.CaseClause)
		clauseIn := w.refineCase(in, s, tagObj, cc, allConsts)
		clauseIn = append(clauseIn, fallthroughIn...)
		fallthroughIn = nil
		if cc.List == nil {
			hasDefault = true
		}
		body := cc.Body
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				body = body[:n-1]
			}
		}
		clauseOut := w.stmts(clauseIn, body)
		if fallsThrough {
			fallthroughIn = clauseOut
		} else {
			out = append(out, clauseOut...)
		}
	}
	out = append(out, fallthroughIn...)
	// Without a default, execution may skip every clause. With a bound
	// constant tag whose cases cover every possible summary exit, the
	// residue filter leaves nothing.
	if !hasDefault {
		residue := in
		if tagObj != nil && allConstant {
			residue = w.filterConstResidue(in, tagObj, allConsts)
		} else {
			residue = cloneAll(in)
		}
		out = append(out, residue...)
	}
	w.frames = w.frames[:len(w.frames)-1]
	out = append(out, frame.brk...)
	return capStates(out)
}

// refineCase produces the entry states of one case clause, narrowing
// constant-bound tags where possible.
func (w *walker) refineCase(in []*pathState, s *ast.SwitchStmt, tagObj types.Object, cc *ast.CaseClause, allConsts []constant.Value) []*pathState {
	if cc.List == nil { // default
		if tagObj != nil {
			return w.filterConstResidue(in, tagObj, allConsts)
		}
		return cloneAll(in)
	}
	// Walk the case expressions once (they are constants or cheap).
	var caseConsts []constant.Value
	allConst := true
	for _, e := range cc.List {
		if tv, ok := w.info.Types[e]; ok && tv.Value != nil {
			caseConsts = append(caseConsts, tv.Value)
		} else {
			allConst = false
		}
	}
	var out []*pathState
	for _, st := range in {
		c := st.clone()
		if s.Tag == nil {
			// Expression-less switch: each case is a condition; refine by
			// the single-expression case when possible.
			if len(cc.List) == 1 {
				if keep := w.refineCond(c, cc.List[0], true); !keep {
					continue
				}
			}
			out = append(out, c)
			continue
		}
		if tagObj == nil || !allConst {
			out = append(out, c)
			continue
		}
		if cb, ok := c.conds[tagObj]; ok {
			alive := c.narrowGroup(cb.group, func(t []resVal) bool {
				for _, cv := range caseConsts {
					if cb.slot < len(t) && t[cb.slot].mayEqual(cv) {
						return true
					}
				}
				return false
			})
			if !alive {
				continue
			}
		}
		out = append(out, c)
	}
	return out
}

// filterConstResidue keeps states whose bound tag may differ from every
// listed constant (the default / no-case residue).
func (w *walker) filterConstResidue(in []*pathState, tagObj types.Object, consts []constant.Value) []*pathState {
	var out []*pathState
	for _, st := range in {
		c := st.clone()
		if cb, ok := c.conds[tagObj]; ok {
			alive := c.narrowGroup(cb.group, func(t []resVal) bool {
				for _, cv := range consts {
					if cb.slot < len(t) && !t[cb.slot].mayDiffer(cv) {
						return false
					}
				}
				return true
			})
			if !alive {
				continue
			}
		}
		out = append(out, c)
	}
	return out
}

func (w *walker) typeSwitchStmt(in []*pathState, s *ast.TypeSwitchStmt) []*pathState {
	frame := &ctrlFrame{kind: frameSwitch, label: w.pendingLabel}
	w.pendingLabel = ""
	if s.Init != nil {
		in = w.stmt(in, s.Init)
	}
	w.frames = append(w.frames, frame)
	var out []*pathState
	hasDefault := false
	for _, cs := range s.Body.List {
		cc := cs.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		out = append(out, w.stmts(cloneAll(in), cc.Body)...)
	}
	if !hasDefault {
		out = append(out, in...)
	}
	w.frames = w.frames[:len(w.frames)-1]
	out = append(out, frame.brk...)
	return capStates(out)
}

func (w *walker) selectStmt(in []*pathState, s *ast.SelectStmt) []*pathState {
	frame := &ctrlFrame{kind: frameSelect, label: w.pendingLabel}
	w.pendingLabel = ""
	w.frames = append(w.frames, frame)
	var out []*pathState
	for _, cs := range s.Body.List {
		cc := cs.(*ast.CommClause)
		clause := cloneAll(in)
		for _, st := range clause {
			st.branch = cc.Pos()
		}
		if cc.Comm != nil {
			clause = w.stmt(clause, cc.Comm)
		}
		out = append(out, w.stmts(clause, cc.Body)...)
	}
	w.frames = w.frames[:len(w.frames)-1]
	out = append(out, frame.brk...)
	return capStates(out)
}

// ------------------------------------------------------------ assignment

func (w *walker) assign(in []*pathState, as *ast.AssignStmt) []*pathState {
	for _, r := range as.Rhs {
		in = w.expr(in, r)
	}
	// Walk compound LHS expressions (index/selector bases) for their
	// atom effects; plain idents are binding targets, not uses.
	for _, l := range as.Lhs {
		if _, ok := stripParens(l).(*ast.Ident); !ok {
			in = w.expr(in, l)
		}
	}
	singleCall := len(as.Rhs) == 1
	for _, st := range in {
		if singleCall && st.pendingGroup != nil {
			for i, l := range as.Lhs {
				id, ok := stripParens(l).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := w.info.Defs[id]
				if obj == nil {
					obj = w.info.Uses[id]
				}
				if obj == nil {
					continue
				}
				st.conds[obj] = condBind{group: st.pendingGroup, slot: i}
			}
		}
		// Constant-bool tracking: `parked := false` ... `parked = true`.
		if len(as.Lhs) == len(as.Rhs) {
			for i, l := range as.Lhs {
				id, ok := stripParens(l).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := w.info.Defs[id]
				if obj == nil {
					obj = w.info.Uses[id]
				}
				if obj == nil {
					continue
				}
				setBoolFact(st, obj, w.info, as.Rhs[i])
			}
		}
		w.dom.assign(st, as)
	}
	return in
}

func setBoolFact(st *pathState, obj types.Object, info *types.Info, rhs ast.Expr) {
	if b, ok := obj.Type().(*types.Basic); !ok || b.Kind() != types.Bool && b.Kind() != types.UntypedBool {
		return
	}
	if tv, ok := info.Types[stripParens(rhs)]; ok && tv.Value != nil && tv.Value.Kind() == constant.Bool {
		if constant.BoolVal(tv.Value) {
			st.bools[obj] = 1
		} else {
			st.bools[obj] = -1
		}
		return
	}
	delete(st.bools, obj)
}

// ----------------------------------------------------------- expressions

func (w *walker) expr(in []*pathState, e ast.Expr) []*pathState {
	if e == nil || len(in) == 0 {
		return in
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return w.expr(in, e.X)
	case *ast.Ident:
		for _, st := range in {
			w.dom.atom(st, e)
		}
		return in
	case *ast.SelectorExpr:
		in = w.expr(in, e.X)
		for _, st := range in {
			w.dom.atom(st, e)
		}
		return in
	case *ast.CallExpr:
		return w.call(in, e)
	case *ast.UnaryExpr:
		in = w.expr(in, e.X)
		if e.Op == token.ARROW {
			for _, st := range in {
				w.dom.recv(st, e.X)
			}
		}
		return in
	case *ast.BinaryExpr:
		in = w.expr(in, e.X)
		return w.expr(in, e.Y)
	case *ast.StarExpr:
		return w.expr(in, e.X)
	case *ast.IndexExpr:
		in = w.expr(in, e.X)
		return w.expr(in, e.Index)
	case *ast.IndexListExpr:
		in = w.expr(in, e.X)
		for _, i := range e.Indices {
			in = w.expr(in, i)
		}
		return in
	case *ast.SliceExpr:
		in = w.expr(in, e.X)
		in = w.expr(in, e.Low)
		in = w.expr(in, e.High)
		return w.expr(in, e.Max)
	case *ast.TypeAssertExpr:
		return w.expr(in, e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			in = w.expr(in, el)
		}
		for _, st := range in {
			w.dom.atom(st, e)
		}
		return in
	case *ast.KeyValueExpr:
		return w.expr(in, e.Value)
	case *ast.FuncLit:
		for _, st := range in {
			w.dom.funcLit(st, e)
		}
		return in
	default:
		return in
	}
}

// call delegates the whole call (including argument traversal) to the
// domain; walker helpers below carry the shared mechanics.
func (w *walker) call(in []*pathState, call *ast.CallExpr) []*pathState {
	return capStates(w.dom.call(in, call, w))
}

// walkCallArgs traverses the callee expression's receiver chain and
// every argument, skipping any argument in skip (a release call handles
// its released argument itself, so the use-check does not double-fire).
func (w *walker) walkCallArgs(in []*pathState, call *ast.CallExpr, skip map[ast.Expr]bool) []*pathState {
	if sel, ok := stripParens(call.Fun).(*ast.SelectorExpr); ok {
		in = w.expr(in, sel.X)
	}
	for _, a := range call.Args {
		if skip != nil && skip[a] {
			continue
		}
		in = w.expr(in, a)
	}
	return in
}

// forkSummary applies a callee summary: one successor state per payload
// group, with the group's result tuples bound for later refinement.
func (w *walker) forkSummary(in []*pathState, call *ast.CallExpr, sum *funcSummary, apply func(st *pathState, ex *sumExit)) []*pathState {
	var out []*pathState
	for _, st := range in {
		for i, ex := range sum.exits {
			st2 := st
			if i < len(sum.exits)-1 {
				st2 = st.clone()
			}
			if apply != nil {
				apply(st2, ex)
			}
			st2.pendingCall = call
			st2.pendingGroup = &condGroup{tuples: ex.tuples}
			out = append(out, st2)
		}
	}
	return out
}

// ------------------------------------------------------------- filtering

// filter clones and refines each state by the branch condition; states
// whose facts contradict the taken branch are dropped.
func (w *walker) filter(in []*pathState, cond ast.Expr, taken bool) []*pathState {
	var out []*pathState
	for _, st := range in {
		c := st.clone()
		if w.refineCond(c, cond, taken) {
			out = append(out, c)
		}
	}
	return out
}

// refineCond narrows st under "cond == taken"; false means the state
// cannot reach this branch.
func (w *walker) refineCond(st *pathState, cond ast.Expr, taken bool) bool {
	cond = stripParens(cond)
	switch c := cond.(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return w.refineCond(st, c.X, !taken)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if taken {
				return w.refineCond(st, c.X, true) && w.refineCond(st, c.Y, true)
			}
			return true // !(a && b): no single-state refinement
		case token.LOR:
			if !taken {
				return w.refineCond(st, c.X, false) && w.refineCond(st, c.Y, false)
			}
			return true
		case token.EQL, token.NEQ:
			eq := (c.Op == token.EQL) == taken
			if ok, alive := w.refineCompare(st, c.X, c.Y, eq); ok {
				return alive
			}
			if ok, alive := w.refineCompare(st, c.Y, c.X, eq); ok {
				return alive
			}
		}
	case *ast.Ident:
		obj := w.info.Uses[c]
		if obj == nil {
			return true
		}
		if v, ok := st.bools[obj]; ok {
			return (v > 0) == taken
		}
		// Learn the branch fact for later (`if parked { ... }` bodies).
		if taken {
			st.bools[obj] = 1
		} else {
			st.bools[obj] = -1
		}
	}
	return true
}

// refineCompare handles `lhs ==/!= rhs` where lhs is a bound variable
// and rhs is nil or a constant. Returns (handled, stateAlive).
func (w *walker) refineCompare(st *pathState, lhs, rhs ast.Expr, wantEqual bool) (bool, bool) {
	id, ok := stripParens(lhs).(*ast.Ident)
	if !ok {
		return false, true
	}
	obj := w.info.Uses[id]
	if obj == nil {
		return false, true
	}
	cb, bound := st.conds[obj]
	rtv, rok := w.info.Types[stripParens(rhs)]
	if !rok {
		return false, true
	}
	switch {
	case rtv.IsNil():
		if !bound {
			return true, true
		}
		alive := st.narrowGroup(cb.group, func(t []resVal) bool {
			if cb.slot >= len(t) {
				return true
			}
			if wantEqual {
				return t[cb.slot].mayBeNil()
			}
			return t[cb.slot].mayBeNonNil()
		})
		return true, alive
	case rtv.Value != nil:
		if bound {
			cv := rtv.Value
			alive := st.narrowGroup(cb.group, func(t []resVal) bool {
				if cb.slot >= len(t) {
					return true
				}
				if wantEqual {
					return t[cb.slot].mayEqual(cv)
				}
				return t[cb.slot].mayDiffer(cv)
			})
			return true, alive
		}
		// Bool-constant compare against a tracked bool local.
		if rtv.Value.Kind() == constant.Bool {
			if v, ok := st.bools[obj]; ok {
				want := constant.BoolVal(rtv.Value) == wantEqual
				return true, (v > 0) == want
			}
		}
		return true, true
	}
	return false, true
}
