package kernels

// MiniCUDA sources for the eight benchmark kernels of Table 1. Each is a
// faithful (simplified) port of the original benchmark's core kernel, sized
// to echo the paper's lines-of-code spread (6 for VA up to ~130 for CFD).
// The sources are parsed, transformed by the FLEP compilation engine, and
// interpreted at small problem sizes to validate semantic preservation.

// SrcVA: CUDA SDK vectorAdd. The paper's smallest kernel (6 lines).
const SrcVA = `
__global__ void va(float* a, float* b, float* c, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        c[i] = a[i] + b[i];
    }
}
`

// SrcNN: Rodinia nearest neighbor — Euclidean distance of every record to
// the query point (10 lines).
const SrcNN = `
__global__ void nn(float* locations, float* distances, int numRecords, float lat, float lng) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid < numRecords) {
        float dx = locations[gid * 2] - lat;
        float dy = locations[gid * 2 + 1] - lng;
        distances[gid] = sqrtf(dx * dx + dy * dy);
    }
}
`

// SrcSPMV: SHOC sparse matrix-vector multiply, CSR scalar form (23 lines).
const SrcSPMV = `
__global__ void spmv(float* vals, int* cols, int* rowPtr, float* x, float* y, int numRows) {
    int row = blockIdx.x * blockDim.x + threadIdx.x;
    if (row < numRows) {
        float dot = 0.0;
        int start = rowPtr[row];
        int end = rowPtr[row + 1];
        for (int j = start; j < end; ++j) {
            int col = cols[j];
            float val = vals[j];
            dot += val * x[col];
        }
        y[row] = dot;
    }
}
`

// SrcPL: Rodinia particlefilter likelihood/weight update under a Gaussian
// observation model (24 lines).
const SrcPL = `
__global__ void pl(float* arrayX, float* arrayY, float* likelihood, float* weights, int numParticles) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < numParticles) {
        float x = arrayX[i];
        float y = arrayY[i];
        float lk = likelihood[i];
        float dist = x * x + y * y;
        float prob = expf(-dist / 2.0) * 0.3989422804014327;
        float w = weights[i] * prob * (1.0 + lk * 0.01);
        if (w < 0.000000000001) {
            w = 0.000000000001;
        }
        weights[i] = w;
    }
}
`

// SrcMD: SHOC molecular dynamics — Lennard-Jones forces over a fixed-size
// neighbor list (61 lines).
const SrcMD = `
__global__ void md(float* posX, float* posY, float* posZ, float* forceX, float* forceY, float* forceZ, int* neighbors, int maxNeighbors, int nAtoms, float cutsq, float lj1, float lj2) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < nAtoms) {
        float px = posX[i];
        float py = posY[i];
        float pz = posZ[i];
        float fx = 0.0;
        float fy = 0.0;
        float fz = 0.0;
        for (int j = 0; j < maxNeighbors; ++j) {
            int jidx = neighbors[i * maxNeighbors + j];
            float dx = px - posX[jidx];
            float dy = py - posY[jidx];
            float dz = pz - posZ[jidx];
            float r2 = dx * dx + dy * dy + dz * dz;
            if (r2 < cutsq) {
                if (r2 > 0.000001) {
                    float r2inv = 1.0 / r2;
                    float r6inv = r2inv * r2inv * r2inv;
                    float force = r2inv * r6inv * (lj1 * r6inv - lj2);
                    fx += dx * force;
                    fy += dy * force;
                    fz += dz * force;
                }
            }
        }
        forceX[i] = fx;
        forceY[i] = fy;
        forceZ[i] = fz;
    }
}
`

// SrcMM: CUDA SDK tiled dense matrix multiply with boundary guards
// (74 lines). 16x16 CTAs; inputs need not be tile-multiples.
const SrcMM = `
__global__ void mm(float* a, float* b, float* c, int m, int n, int k) {
    __shared__ float tileA[256];
    __shared__ float tileB[256];
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    int row = blockIdx.y * 16 + ty;
    int col = blockIdx.x * 16 + tx;
    float acc = 0.0;
    int numTiles = (k + 15) / 16;
    for (int t = 0; t < numTiles; ++t) {
        int aCol = t * 16 + tx;
        int bRow = t * 16 + ty;
        if (row < m) {
            if (aCol < k) {
                tileA[ty * 16 + tx] = a[row * k + aCol];
            } else {
                tileA[ty * 16 + tx] = 0.0;
            }
        } else {
            tileA[ty * 16 + tx] = 0.0;
        }
        if (bRow < k) {
            if (col < n) {
                tileB[ty * 16 + tx] = b[bRow * n + col];
            } else {
                tileB[ty * 16 + tx] = 0.0;
            }
        } else {
            tileB[ty * 16 + tx] = 0.0;
        }
        __syncthreads();
        for (int p = 0; p < 16; ++p) {
            acc += tileA[ty * 16 + p] * tileB[p * 16 + tx];
        }
        __syncthreads();
    }
    if (row < m) {
        if (col < n) {
            c[row * n + col] = acc;
        }
    }
}
`

// SrcPF: Rodinia pathfinder — one pyramid of dynamic-programming steps over
// a row of the cost grid, with shared-memory halos (81 lines).
const SrcPF = `
__device__ int pf_min3(int a, int b, int c) {
    int m = a;
    if (b < m) {
        m = b;
    }
    if (c < m) {
        m = c;
    }
    return m;
}

__global__ void pf(int* wall, int* src, int* dst, int cols, int rows, int startStep, int pyramidHeight) {
    __shared__ int prev[256];
    __shared__ int result[256];
    int tx = threadIdx.x;
    int blkX = blockIdx.x * blockDim.x;
    int xidx = blkX + tx;
    int valid = 0;
    if (xidx < cols) {
        valid = 1;
        prev[tx] = src[xidx];
    } else {
        prev[tx] = 1000000000;
    }
    __syncthreads();
    for (int i = 0; i < pyramidHeight; ++i) {
        int step = startStep + i;
        int computed = 0;
        int shortest = 0;
        if (valid == 1) {
            if (step < rows) {
                int left = tx - 1;
                int right = tx + 1;
                int center = prev[tx];
                int best = center;
                if (left >= 0) {
                    if (prev[left] < best) {
                        best = prev[left];
                    }
                }
                if (right < blockDim.x) {
                    if (blkX + right < cols) {
                        if (prev[right] < best) {
                            best = prev[right];
                        }
                    }
                }
                shortest = best + wall[step * cols + xidx];
                computed = 1;
            }
        }
        __syncthreads();
        if (computed == 1) {
            result[tx] = shortest;
        } else {
            result[tx] = prev[tx];
        }
        __syncthreads();
        prev[tx] = result[tx];
        __syncthreads();
    }
    if (valid == 1) {
        dst[xidx] = prev[tx];
    }
}
`

// SrcCFD: Rodinia cfd (euler3d) — per-cell flux accumulation over four
// neighbors for the compressible Euler equations (130 lines).
const SrcCFD = `
__device__ float cfd_pressure(float density, float mx, float my, float mz, float energy, float gamma) {
    float v2 = (mx * mx + my * my + mz * mz) / (density * density);
    return (gamma - 1.0) * (energy - 0.5 * density * v2);
}

__device__ float cfd_speed_of_sound(float pressure, float density, float gamma) {
    return sqrtf(gamma * pressure / density);
}

__global__ void cfd(float* density, float* momX, float* momY, float* momZ, float* energy, int* neighbors, float* normalsX, float* normalsY, float* normalsZ, float* fluxDensity, float* fluxMomX, float* fluxMomY, float* fluxMomZ, float* fluxEnergy, int nCells, float gamma, float smoothing) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < nCells) {
        float di = density[i];
        float mxi = momX[i];
        float myi = momY[i];
        float mzi = momZ[i];
        float ei = energy[i];
        float vxi = mxi / di;
        float vyi = myi / di;
        float vzi = mzi / di;
        float pi = cfd_pressure(di, mxi, myi, mzi, ei, gamma);
        float ci = cfd_speed_of_sound(pi, di, gamma);
        float speedI = sqrtf(vxi * vxi + vyi * vyi + vzi * vzi);
        float fluxD = 0.0;
        float fluxMx = 0.0;
        float fluxMy = 0.0;
        float fluxMz = 0.0;
        float fluxE = 0.0;
        for (int j = 0; j < 4; ++j) {
            int nb = neighbors[i * 4 + j];
            float nx = normalsX[i * 4 + j];
            float ny = normalsY[i * 4 + j];
            float nz = normalsZ[i * 4 + j];
            if (nb >= 0) {
                float dn = density[nb];
                float mxn = momX[nb];
                float myn = momY[nb];
                float mzn = momZ[nb];
                float en = energy[nb];
                float vxn = mxn / dn;
                float vyn = myn / dn;
                float vzn = mzn / dn;
                float pn = cfd_pressure(dn, mxn, myn, mzn, en, gamma);
                float cn = cfd_speed_of_sound(pn, dn, gamma);
                float speedN = sqrtf(vxn * vxn + vyn * vyn + vzn * vzn);
                float factor = 0.5 * smoothing * (ci + cn + speedI + speedN);
                fluxD += factor * (di - dn);
                fluxMx += factor * (mxi - mxn);
                fluxMy += factor * (myi - myn);
                fluxMz += factor * (mzi - mzn);
                fluxE += factor * (ei - en);
                float avgVx = 0.5 * (vxi + vxn);
                float avgVy = 0.5 * (vyi + vyn);
                float avgVz = 0.5 * (vzi + vzn);
                float avgP = 0.5 * (pi + pn);
                float avgD = 0.5 * (di + dn);
                float avgMx = avgD * avgVx;
                float avgMy = avgD * avgVy;
                float avgMz = avgD * avgVz;
                float avgE = 0.5 * (ei + en);
                float vdotn = avgVx * nx + avgVy * ny + avgVz * nz;
                fluxD += vdotn * avgD;
                fluxMx += vdotn * avgMx + avgP * nx;
                fluxMy += vdotn * avgMy + avgP * ny;
                fluxMz += vdotn * avgMz + avgP * nz;
                fluxE += vdotn * (avgE + avgP);
            } else {
                fluxMx += pi * nx;
                fluxMy += pi * ny;
                fluxMz += pi * nz;
            }
        }
        fluxDensity[i] = fluxD;
        fluxMomX[i] = fluxMx;
        fluxMomY[i] = fluxMy;
        fluxMomZ[i] = fluxMz;
        fluxEnergy[i] = fluxE;
    }
}
`
