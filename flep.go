// Package flep is a faithful reimplementation-as-simulation of FLEP
// ("FLEP: Enabling Flexible and Efficient Preemption on GPUs", Wu, Liu,
// Zhou, Jiang — ASPLOS 2017): the first software system enabling flexible
// kernel preemption and kernel scheduling on commodity GPUs.
//
// The package exposes the system's three layers:
//
//   - The compilation engine: TransformSource rewrites MiniCUDA (a CUDA-C
//     dialect) kernels into preemptable persistent-thread forms — temporal
//     (yield all SMs), amortized (poll every L tasks), and spatial (yield
//     only SMs below the flag value) — and rewrites host launch sites to
//     route through the runtime interceptor.
//
//   - The runtime engine: NewSystem + System.Offline build per-kernel
//     artifacts (tuned amortizing factor, duration model, preemption
//     overhead estimate); System.RunFLEP schedules co-run scenarios under
//     the HPF or FFS policy, against a calibrated K40 device model.
//
//   - The evaluation: the workload constructors reproduce the paper's
//     co-run scenarios, and internal/experiments regenerates every table
//     and figure (see cmd/flepbench).
//
// Because no GPU hardware is required, everything runs against a
// deterministic discrete-event device model calibrated to the paper's
// Table 1 (see DESIGN.md for the substitution argument).
package flep

import (
	"fmt"

	"flep/internal/core"
	"flep/internal/cudalite"
	"flep/internal/gpu"
	"flep/internal/hostexec"
	"flep/internal/kernels"
	"flep/internal/server"
	"flep/internal/transform"
	"flep/internal/workload"
)

// System is a FLEP deployment: offline artifacts plus online scheduling.
type System = core.System

// Options configure an online run (policy, spatial preemption, FFS budget).
type Options = core.Options

// RunResult aggregates one scenario execution.
type RunResult = core.RunResult

// KernelResult is one completed invocation's timing.
type KernelResult = core.KernelResult

// Artifacts is the offline-phase output for one kernel.
type Artifacts = core.Artifacts

// Benchmark is one of the paper's eight applications.
type Benchmark = kernels.Benchmark

// InputClass selects the large, small, or trivial input (Table 1).
type InputClass = kernels.InputClass

// Input classes.
const (
	Large   = kernels.Large
	Small   = kernels.Small
	Trivial = kernels.Trivial
)

// Scenario is a co-run workload.
type Scenario = workload.Scenario

// Item is one client submission in a scenario.
type Item = workload.Item

// Params are the GPU model's calibration constants.
type Params = gpu.Params

// TransformMode selects the generated kernel form of the paper's Figure 4.
type TransformMode = transform.Mode

// Transformation modes.
const (
	// TemporalNaive polls the flag before every task (Figure 4a).
	TemporalNaive = transform.ModeTemporalNaive
	// Temporal polls once per L tasks (Figure 4b).
	Temporal = transform.ModeTemporal
	// Spatial yields only SMs below the flag value (Figure 4c).
	Spatial = transform.ModeSpatial
)

// NewSystem builds a FLEP system on the paper's K40 device model.
func NewSystem() *System { return core.NewSystem(gpu.DefaultParams()) }

// NewSystemWithParams builds a FLEP system on a custom device model.
func NewSystemWithParams(par Params) *System { return core.NewSystem(par) }

// DefaultParams returns the calibrated K40 device model.
func DefaultParams() Params { return gpu.DefaultParams() }

// Benchmarks returns the paper's eight benchmarks in Table 1 order.
func Benchmarks() []*Benchmark { return kernels.All() }

// BenchmarkByName looks a benchmark up by its Table 1 name.
func BenchmarkByName(name string) (*Benchmark, error) { return kernels.ByName(name) }

// TransformSource runs the FLEP compilation engine over a MiniCUDA
// translation unit: every __global__ kernel gains a preemptable
// persistent-thread form and every host launch is rewritten to call the
// runtime interceptor. It returns the transformed source text.
func TransformSource(src string, mode TransformMode) (string, error) {
	prog, err := cudalite.Parse(src)
	if err != nil {
		return "", fmt.Errorf("flep: %w", err)
	}
	out, _, err := transform.TransformProgram(prog, mode)
	if err != nil {
		return "", err
	}
	return cudalite.Format(out), nil
}

// TransformKernelSource transforms only the named kernel and returns the
// transformed source together with the generated kernel's name and the
// appended parameter list.
func TransformKernelSource(src, kernel string, mode TransformMode) (out string, preemptable string, extraParams []string, err error) {
	prog, err := cudalite.Parse(src)
	if err != nil {
		return "", "", nil, fmt.Errorf("flep: %w", err)
	}
	transformed, info, err := transform.TransformKernel(prog, kernel, mode)
	if err != nil {
		return "", "", nil, err
	}
	return cudalite.Format(transformed), info.Preemptable, info.ExtraParams, nil
}

// ---- whole-program execution (compile + run host code) ----

// CompiledProgram is a FLEP-compiled MiniCUDA translation unit whose host
// code can be executed against a live runtime.
type CompiledProgram = hostexec.Program

// HostProc is one host process to run (a host function + args + priority).
type HostProc = hostexec.HostProc

// RunOptions configure whole-program execution.
type RunOptions = hostexec.Options

// RunReport is the outcome of a whole-program run.
type RunReport = hostexec.Report

// Value is a MiniCUDA runtime value (host-program arguments).
type Value = cudalite.Value

// DeviceBuffer is a device-memory region passed to host programs.
type DeviceBuffer = cudalite.Buffer

// Argument and buffer constructors for host programs.
var (
	// NewFloatBuffer allocates a float device buffer.
	NewFloatBuffer = cudalite.NewFloatBuffer
	// NewIntBuffer allocates an int device buffer.
	NewIntBuffer = cudalite.NewIntBuffer
	// Ptr makes a pointer argument to a buffer.
	Ptr = cudalite.PtrValue
	// Int makes an integer argument.
	Int = cudalite.IntValue
	// Float makes a floating-point argument.
	Float = cudalite.FloatValue
)

// CompileProgram runs the FLEP offline pipeline on a MiniCUDA translation
// unit: transformation, occupancy analysis, static cost estimation, and
// amortizing-factor tuning, on the default K40 model.
func CompileProgram(src string) (*CompiledProgram, error) {
	return hostexec.Compile(src, gpu.DefaultParams())
}

// RunProgram executes host processes of a compiled program end-to-end: the
// transformed host code's flep_intercept calls reach the FLEP runtime,
// kernels are scheduled (and preempted) on the simulated device, and grids
// small enough to interpret also execute functionally, so the caller's
// buffers hold real results afterwards.
func RunProgram(p *CompiledProgram, opt RunOptions, procs ...HostProc) (*RunReport, error) {
	return hostexec.Run(p, opt, procs...)
}

// ---- serving layer (flepd) ----

// Server is the flepd serving layer: a daemon that owns one System and
// schedules kernel-launch requests from concurrent clients through the
// FLEP runtime on an event-loop goroutine (see cmd/flepd).
type Server = server.Server

// ServerConfig parameterizes a daemon instance (policy, admission queue
// depth, request timeout, trace retention).
type ServerConfig = server.Config

// LaunchRequest is the JSON body of POST /v1/launch.
type LaunchRequest = server.LaunchRequest

// LaunchResult is the structured per-request outcome (turnaround, wait,
// preemption count, overhead) of a completed invocation.
type LaunchResult = server.LaunchResult

// SessionSnapshot is the JSON view of one client session.
type SessionSnapshot = server.SessionSnapshot

// NewServer builds offline artifacts for cfg.Benchmarks and starts a
// daemon event loop; serve its Handler() over HTTP and stop it with
// Shutdown.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// NewServerWithSystem starts a daemon over an existing system whose
// Offline phase already ran; the daemon's event loop takes ownership of
// the system.
func NewServerWithSystem(sys *System, cfg ServerConfig) (*Server, error) {
	return server.NewWithSystem(sys, cfg)
}

// Scenario constructors (the paper's co-run shapes).
var (
	// PriorityPair: B large low-priority, A small high-priority (Fig. 8).
	PriorityPair = workload.PriorityPair
	// EqualPair: long large + short small at equal priority (Fig. 10).
	EqualPair = workload.EqualPair
	// Triplet: one large + two small, equal priority (Fig. 12).
	Triplet = workload.Triplet
	// FairPair: two closed-loop clients for FFS fairness (Fig. 13).
	FairPair = workload.FairPair
	// SpatialPair: large low-priority + trivial high-priority (Fig. 15).
	SpatialPair = workload.SpatialPair
)
