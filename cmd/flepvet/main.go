// Command flepvet runs the FLEP analyzer suite (internal/lint): the
// determinism, map-order, loop-purity, lock-discipline, and
// metric-hygiene contracts plus the interprocedural dataflow
// analyzers — pool ownership, lock order, and the exactly-once
// ledger — mechanically enforced.
//
// Two modes share one driver:
//
//	flepvet ./...                          # standalone multichecker
//	go vet -vettool=$(which flepvet) ./... # unitchecker protocol
//
// The vettool mode speaks cmd/go's protocol by hand: -V=full prints a
// version line for the build cache, and a single *.cfg argument names
// a JSON config describing one package (sources, import map, export
// files) to analyze. Facts files (vetx) are written empty — the suite
// needs no cross-package facts; the one cross-package rule
// (metrichygiene's family coherence) runs whole-program in standalone
// mode and per-package under vet.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"flep/internal/lint"
	"flep/internal/lint/analysis"
	"flep/internal/lint/loader"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("flepvet", flag.ExitOnError)
	version := fs.String("V", "", "print version and exit (go vet protocol; use -V=full)")
	checks := fs.String("checks", "", "comma-separated analyzer subset (default: all of "+strings.Join(lint.AnalyzerNames(), ",")+")")
	dir := fs.String("dir", ".", "directory to resolve package patterns from (standalone mode)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout (standalone mode)")
	annotate := fs.Bool("annotate", false, "emit GitHub Actions ::error annotations alongside findings (standalone mode)")
	baselinePath := fs.String("baseline", "", "committed baseline file; listed findings are tolerated, not failed (standalone mode)")
	// cmd/go probes vet tools with `-flags`, expecting a JSON array
	// describing which optional flags the tool accepts; it then passes
	// only those. The suite needs none, so the answer is empty.
	describeFlags := fs.Bool("flags", false, "print a JSON description of supported flags and exit (go vet protocol)")
	fs.Parse(args)

	if *version != "" {
		// cmd/go keys its build cache on this line and, for "devel"
		// tools, requires a trailing buildID= field (see toolID in
		// cmd/go/internal/work/buildid.go). Hash the executable so a
		// rebuilt flepvet invalidates cached vet results.
		id, err := selfHash()
		if err != nil {
			fmt.Fprintln(os.Stderr, "flepvet:", err)
			return 1
		}
		fmt.Printf("%s version devel (%s) buildID=%s\n", filepath.Base(os.Args[0]), runtime.Version(), id)
		return 0
	}
	if *describeFlags {
		fmt.Println("[]")
		return 0
	}

	selected, err := lint.Select(splitChecks(*checks))
	if err != nil {
		fmt.Fprintln(os.Stderr, "flepvet:", err)
		return 1
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetCfg(rest[0], selected)
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.Run(*dir, patterns, selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flepvet:", err)
		return 1
	}

	// Findings render relative to the resolution dir: the repo root in
	// the scripted invocations, which is what annotations and baseline
	// entries must key on.
	root, err := filepath.Abs(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flepvet:", err)
		return 1
	}
	if *baselinePath != "" {
		bl, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flepvet:", err)
			return 1
		}
		var suppressed []lint.Finding
		findings, suppressed = bl.Filter(root, findings)
		if len(suppressed) > 0 {
			fmt.Fprintf(os.Stderr, "flepvet: %d finding(s) suppressed by baseline %s\n", len(suppressed), *baselinePath)
		}
	}

	if *jsonOut {
		if err := lint.EncodeJSON(os.Stdout, root, findings); err != nil {
			fmt.Fprintln(os.Stderr, "flepvet:", err)
			return 1
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}
	if *annotate {
		for _, f := range findings {
			fmt.Printf("::error file=%s,line=%d,col=%d,title=flepvet %s/%s::%s\n",
				lint.RelPath(root, f.Pos.Filename), f.Pos.Line, f.Pos.Column,
				f.Analyzer, f.Category, escapeAnnotation(f.Message))
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "flepvet: %d finding(s)\n", len(findings))
		return 2
	}
	return 0
}

// escapeAnnotation applies the workflow-command data escaping rules.
func escapeAnnotation(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// selfHash fingerprints the running executable for the -V=full line.
func selfHash() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", err
	}
	f, err := os.Open(exe)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	sum := h.Sum(nil)
	return fmt.Sprintf("%x/%x", sum[:16], sum[16:]), nil
}

func splitChecks(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// vetConfig is the JSON cmd/go writes for each package when invoking a
// vet tool (the unitchecker wire format).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetCfg analyzes the single package described by cfgPath.
func runVetCfg(cfgPath string, selected []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flepvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "flepvet: parse %s: %v\n", cfgPath, err)
		return 1
	}

	// cmd/go expects a facts file even from tools that produce none;
	// downstream packages' invocations receive it back untouched.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "flepvet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	pkg, fset, err := typecheckVetCfg(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "flepvet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	findings, err := lint.RunPackages(fset, []*loader.Package{pkg}, selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flepvet:", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f.String())
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// typecheckVetCfg parses and type-checks the cfg's package, resolving
// imports from the export files cmd/go already built.
func typecheckVetCfg(cfg *vetConfig) (*loader.Package, *token.FileSet, error) {
	fset := token.NewFileSet()
	files, err := loader.ParseFiles(fset, cfg.Dir, cfg.GoFiles)
	if err != nil {
		return nil, nil, err
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if m, ok := cfg.ImportMap[path]; ok {
			path = m
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("flepvet: no export file for import %q", path)
		}
		return os.Open(file)
	}
	info := analysis.NewInfo()
	conf := types.Config{
		Importer: importer.ForCompiler(fset, compilerOrGC(cfg.Compiler), lookup),
	}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return &loader.Package{
		PkgPath: cfg.ImportPath, Dir: cfg.Dir,
		Files: files, Types: tpkg, Info: info,
	}, fset, nil
}

func compilerOrGC(c string) string {
	if c == "" {
		return "gc"
	}
	return c
}
