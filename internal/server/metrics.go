package server

import (
	"net/http"

	"flep/internal/obs"
)

// serverMetrics mirrors the daemon's request accounting (the counters
// struct) onto the observability registry, plus the real-time latency
// distributions that the JSON counters cannot express. The counters
// struct under Server.mu stays the source of truth for /v1/status and
// the exactly-once invariant; these instruments are incremented at the
// same sites, so `flep_server_launches_total{outcome=...}` reconciles
// exactly with /v1/status at rest.
type serverMetrics struct {
	// Launch outcomes, labeled so one family tells the whole admission
	// story: enqueued (accepted into the queue), completed, submit_error
	// (runtime rejection), rejected_queue_full, rejected_draining,
	// rejected_invalid, timed_out (handler gave up; invocation ran on),
	// canceled (client went away).
	Enqueued         *obs.Counter
	Completed        *obs.Counter
	SubmitErrors     *obs.Counter
	RejectedFull     *obs.Counter
	RejectedDraining *obs.Counter
	RejectedInvalid  *obs.Counter
	RejectedShed     *obs.Counter
	TimedOut         *obs.Counter
	Canceled         *obs.Counter
	DepCanceled      *obs.Counter
	RejectedDepFull  *obs.Counter

	// SLO tier: attained/missed partition deadline-bearing completions;
	// the margin histogram records (deadline − completion) in virtual
	// seconds, so its negative mass is exactly the missed count and the
	// positive tail shows how much slack attained launches had.
	SLOAttained *obs.Counter
	SLOMissed   *obs.Counter
	SLOMargin   *obs.Histogram

	// RequestLatency is the real wall-clock time from enqueue to the
	// handler receiving its terminal result. AdmissionWait is the real
	// time a request sat in the bounded queue before the loop admitted
	// it (the backpressure signal).
	RequestLatency *obs.Histogram
	AdmissionWait  *obs.Histogram

	// AdmitBatches counts the loop's batched absorb passes and
	// AdmitBatchSize distributes how many launches each admitted: mean
	// batch size (sum/count) ≫ 1 under load means the batching is
	// actually amortizing per-launch loop overhead.
	AdmitBatches   *obs.Counter
	AdmitBatchSize *obs.Histogram

	// NTT is the per-completion solo-normalized turnaround (the paper's
	// responsiveness currency): _sum/_count of this histogram is the
	// daemon-side ANTT, so flepload (and a cluster gateway's per-node
	// breakdown) can derive ANTT from metrics deltas alone.
	NTT *obs.Histogram

	// Model-graph accounting (see deps.go). Incremented at the same
	// depMu-guarded sites as the modelStats aggregates, so the families
	// reconcile exactly with the /v1/status models block. Labels are
	// compile-time literals; the per-model-name breakdown lives only in
	// the bounded JSON models block.
	ModelGraphsStarted   *obs.Counter
	ModelGraphsCompleted *obs.Counter
	ModelGraphsCanceled  *obs.Counter
	ModelStagesCompleted *obs.Counter
	ModelStagesCanceled  *obs.Counter
	ModelStagesParked    *obs.Counter
	ModelStagesReleased  *obs.Counter
	ModelEvictions       *obs.Counter
	ModelSLOAttained     *obs.Counter
	ModelSLOMissed       *obs.Counter
}

// newServerMetrics registers the server metric families and the
// scrape-time gauges that read live daemon state.
func newServerMetrics(reg *obs.Registry, s *Server) *serverMetrics {
	launch := func(outcome string) *obs.Counter {
		return reg.Counter("flep_server_launches_total",
			"Launch requests by terminal outcome", "outcome", outcome) //flepvet:allow metriclabel -- outcome is one of the five compile-time literals below; cardinality is fixed
	}
	m := &serverMetrics{
		Enqueued:         launch("enqueued"),
		Completed:        launch("completed"),
		SubmitErrors:     launch("submit_error"),
		RejectedFull:     launch("rejected_queue_full"),
		RejectedDraining: launch("rejected_draining"),
		RejectedInvalid:  launch("rejected_invalid"),
		RejectedShed:     launch("rejected_best_effort_shed"),
		TimedOut:         launch("timed_out"),
		Canceled:         launch("canceled"),
		DepCanceled:      launch("dep_canceled"),
		RejectedDepFull:  launch("rejected_dep_table_full"),
		SLOAttained: reg.Counter("flep_slo_attained_total",
			"Deadline-bearing launches that finished at or before their virtual-time deadline"),
		SLOMissed: reg.Counter("flep_slo_missed_total",
			"Deadline-bearing launches that finished after their virtual-time deadline"),
		SLOMargin: reg.Histogram("flep_slo_margin_seconds",
			"Virtual seconds from completion to deadline per deadline-bearing launch (negative = missed)",
			[]float64{-1, -0.1, -0.01, -0.001, 0, 0.001, 0.01, 0.1, 1, 10}),
		RequestLatency: reg.Histogram("flep_server_request_latency_seconds",
			"Real time from enqueue to the handler receiving its result", nil),
		AdmissionWait: reg.Histogram("flep_server_admission_wait_seconds",
			"Real time a request spent in the bounded admission queue", nil),
		AdmitBatches: reg.Counter("flep_server_admission_batches_total",
			"Batched absorb passes executed by the event loop"),
		AdmitBatchSize: reg.Histogram("flep_server_admission_batch_size",
			"Launches admitted per batched absorb pass (sum/count = mean batch)",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
		NTT: reg.Histogram("flep_server_ntt",
			"Solo-normalized turnaround per completed invocation (sum/count = ANTT)",
			[]float64{1, 1.5, 2, 3, 5, 8, 13, 21, 34, 55, 100}),
	}
	graphs := func(outcome string) *obs.Counter {
		return reg.Counter("flep_model_graphs_total",
			"Model graph instances by outcome", "outcome", outcome) //flepvet:allow metriclabel -- outcome is one of the three compile-time literals below; cardinality is fixed
	}
	stages := func(outcome string) *obs.Counter {
		return reg.Counter("flep_model_stages_total",
			"Model graph stages by terminal outcome", "outcome", outcome) //flepvet:allow metriclabel -- outcome is one of the two compile-time literals below; cardinality is fixed
	}
	m.ModelGraphsStarted = graphs("started")
	m.ModelGraphsCompleted = graphs("completed")
	m.ModelGraphsCanceled = graphs("canceled")
	m.ModelStagesCompleted = stages("completed")
	m.ModelStagesCanceled = stages("canceled")
	m.ModelStagesParked = reg.Counter("flep_model_stages_parked_total",
		"Graph stages held in the pending-dependency table awaiting prerequisites")
	m.ModelStagesReleased = reg.Counter("flep_model_stages_released_total",
		"Parked graph stages admitted after their prerequisites completed")
	m.ModelEvictions = reg.Counter("flep_model_evictions_total",
		"Stalled graphs evicted from the bounded pending-dependency table")
	m.ModelSLOAttained = reg.Counter("flep_model_slo_attained_total",
		"Deadline-bearing graph stages that finished within their budget")
	m.ModelSLOMissed = reg.Counter("flep_model_slo_missed_total",
		"Deadline-bearing graph stages that finished past their budget")
	reg.GaugeFunc("flep_server_queue_depth", "Launch requests waiting in the admission queue",
		func() float64 { return float64(len(s.submitCh)) })
	reg.GaugeFunc("flep_slo_lc_outstanding", "Deadline-bearing launches admitted but not yet terminal",
		func() float64 { return float64(s.lcOutstanding.Load()) })
	reg.GaugeFunc("flep_server_best_effort_limit", "Queue occupancy at which best-effort launches are shed while deadlines are outstanding",
		func() float64 { return float64(s.beLimit) })
	reg.GaugeFunc("flep_server_queue_capacity", "Admission queue capacity",
		func() float64 { return float64(cap(s.submitCh)) })
	reg.GaugeFunc("flep_server_sessions", "Client sessions seen by the daemon",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.sessions))
		})
	reg.GaugeFunc("flep_model_stages_held", "Graph stages currently parked in the pending-dependency table",
		func() float64 { return float64(s.depParkedCount()) })
	reg.GaugeFunc("flep_model_graphs_tracked", "Live graph instances tracked by the pending-dependency table",
		func() float64 { return float64(s.depGraphCount()) })
	reg.GaugeFunc("flep_server_virtual_time_seconds", "The simulation's virtual clock",
		func() float64 { return s.VirtualNow().Seconds() })
	reg.GaugeFunc("flep_server_loop_steps", "Simulation events stepped by the event loop",
		func() float64 { return float64(s.Steps()) })
	reg.GaugeFunc("flep_server_paused", "1 while the scheduler loop is parked",
		func() float64 {
			if s.paused.Load() {
				return 1
			}
			return 0
		})
	return m
}

// Registry exposes the daemon's metrics registry (tests and embedders
// scrape it directly; HTTP clients use GET /metrics).
func (s *Server) Registry() *obs.Registry { return s.reg }

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}
