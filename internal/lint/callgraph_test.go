package lint

import (
	"flag"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"flep/internal/lint/analysis"
	"flep/internal/lint/loader"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// loadCallGraphFixture builds the graph over both halves of the
// cross-package fixture.
func loadCallGraphFixture(t *testing.T) *callGraph {
	t.Helper()
	root, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var pkgs []*loader.Package
	for _, ip := range []string{"fixtures/callgraph/a", "fixtures/callgraph/b"} {
		pkg, err := loader.LoadFixture(fset, root, ip, analysis.NewInfo)
		if err != nil {
			t.Fatalf("load fixture %s: %v", ip, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return buildCallGraph(pkgs)
}

// TestCallGraphGolden pins the builder's full edge classification —
// static calls (direct, method, cross-package), recursion, method
// values, and function-typed field binds — against a golden dump.
// Regenerate with `go test ./internal/lint -run CallGraphGolden -update`.
func TestCallGraphGolden(t *testing.T) {
	g := loadCallGraphFixture(t)
	got := g.dump(token.NewFileSet())
	golden := filepath.Join("testdata", "callgraph.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("call graph dump drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestCallGraphRecursive pins the recursion set: direct and mutual
// recursion are in, everything else is out.
func TestCallGraphRecursive(t *testing.T) {
	g := loadCallGraphFixture(t)
	rec := g.recursive()
	for _, id := range []string{
		"fixtures/callgraph/a.Rec",
		"fixtures/callgraph/a.PingA",
		"fixtures/callgraph/a.pingB",
	} {
		if !rec[id] {
			t.Errorf("%s: expected recursive", id)
		}
	}
	for _, id := range []string{
		"fixtures/callgraph/a.Cross",
		"fixtures/callgraph/a.Register",
		"fixtures/callgraph/a.Run",
		"fixtures/callgraph/b.Helper",
	} {
		if rec[id] {
			t.Errorf("%s: unexpectedly recursive", id)
		}
	}
}

// TestCallGraphSCCOrder checks the bottom-up invariant summary-based
// analyzers rely on: every static callee's component is emitted before
// its caller's.
func TestCallGraphSCCOrder(t *testing.T) {
	g := loadCallGraphFixture(t)
	seen := map[string]int{}
	for i, comp := range g.sccOrder() {
		for _, id := range comp {
			seen[id] = i
		}
	}
	for _, id := range g.Order {
		ci, ok := seen[id]
		if !ok {
			t.Errorf("%s missing from sccOrder", id)
			continue
		}
		for _, e := range g.Nodes[id].Edges {
			if e.Kind != cgCall {
				continue
			}
			cj, ok := seen[e.Callee]
			if !ok {
				continue // external callee: no node, nothing to order
			}
			if cj > ci {
				t.Errorf("callee %s (comp %d) ordered after caller %s (comp %d)", e.Callee, cj, id, ci)
			}
		}
	}
}
