package replay

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testHeader() Header {
	return Header{Source: SourceFlepd, Policy: "hpf", Devices: 1, Benchmarks: []string{"MM", "VA"}}
}

func testRecord(i int) Record {
	return Record{
		At: int64(i) * 1000, Step: int64(i), Device: 0,
		Client: fmt.Sprintf("tenant-%d", i%2), Bench: "VA", Class: "small",
		Priority: 1 + i%2, Grid: 100, Block: 256, Te: 12345,
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.trace")
	rec, err := NewRecorder(path, testHeader(), RecorderOptions{})
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if !rec.Record(testRecord(i)) {
			t.Fatalf("record %d dropped", i)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	tr, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if tr.Header.Source != SourceFlepd || tr.Header.Policy != "hpf" || tr.Header.TraceVersion != Version {
		t.Fatalf("header mangled: %+v", tr.Header)
	}
	if len(tr.Records) != n {
		t.Fatalf("loaded %d records, want %d", len(tr.Records), n)
	}
	for i, r := range tr.Records {
		if r.Seq != int64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if r.At != int64(i)*1000 || r.Step != int64(i) || r.Te != 12345 {
			t.Fatalf("record %d fields mangled: %+v", i, r)
		}
	}
}

// Rotation mid-burst: a tiny segment bound forces rotation while records
// are streaming in; Load must stitch path.1..N plus the live segment
// back into one contiguous Seq stream with a header per segment.
func TestRecorderRotationMidBurst(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.trace")
	rec, err := NewRecorder(path, testHeader(), RecorderOptions{RotateBytes: 512})
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if !rec.Record(testRecord(i)) {
			t.Fatalf("record %d dropped", i)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	segs, _ := filepath.Glob(path + ".*")
	if len(segs) < 2 {
		t.Fatalf("expected multiple rotated segments, got %v", segs)
	}
	// Every rotated segment must open with its own valid header.
	for _, seg := range segs {
		if _, err := LoadFile(seg); err != nil {
			t.Fatalf("rotated segment %s unreadable: %v", seg, err)
		}
	}

	tr, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(tr.Records) != n {
		t.Fatalf("merged %d records across segments, want %d", len(tr.Records), n)
	}
	for i, r := range tr.Records {
		if r.Seq != int64(i+1) {
			t.Fatalf("merged stream not contiguous at %d: seq %d", i, r.Seq)
		}
	}
}

// Flush (the daemon's drain hook) must make everything recorded so far
// readable even though the recorder is still open — a SIGTERM'd flepd
// leaves a complete trace behind before Close ever runs.
func TestRecorderFlushOnDrainMakesTraceReadable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.trace")
	rec, err := NewRecorder(path, testHeader(), RecorderOptions{})
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	defer rec.Close()
	const n = 7
	for i := 0; i < n; i++ {
		rec.Record(testRecord(i))
	}
	// Before the flush the records sit in the 64 KiB buffer.
	if tr, err := LoadFile(path); err == nil && len(tr.Records) == n {
		t.Skip("records hit disk without a flush; buffer semantics changed")
	}
	if err := rec.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	tr, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile after flush: %v", err)
	}
	if len(tr.Records) != n {
		t.Fatalf("flushed trace has %d records, want %d", len(tr.Records), n)
	}
}

func TestRecorderDropsAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.trace")
	rec, err := NewRecorder(path, testHeader(), RecorderOptions{})
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	rec.Record(testRecord(0))
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if rec.Record(testRecord(1)) {
		t.Fatal("record after Close was accepted")
	}
	tr, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(tr.Records) != 1 {
		t.Fatalf("trace has %d records, want 1", len(tr.Records))
	}
}

func TestUnknownVersionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "future.trace")
	content := `{"flep_trace":true,"version":99,"source":"flepd"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadFile(path)
	if err == nil {
		t.Fatal("version-99 trace loaded")
	}
	if !strings.Contains(err.Error(), "unsupported trace version 99") ||
		!strings.Contains(err.Error(), fmt.Sprintf("version %d", Version)) {
		t.Fatalf("error does not identify the version mismatch: %v", err)
	}
}

func TestNonTraceRejected(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"empty.trace":   "",
		"text.trace":    "hello world\n",
		"json.trace":    `{"some":"jsonl","but":"not a trace"}` + "\n",
		"nomagic.trace": `{"flep_trace":false,"version":1}` + "\n",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFile(path); err == nil {
			t.Fatalf("%s loaded as a trace", name)
		}
	}
}

// A crash mid-write leaves a partial final line; every complete record
// before it must load, and the tail is dropped silently.
func TestTruncatedFinalLineTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.trace")
	rec, err := NewRecorder(path, testHeader(), RecorderOptions{})
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	for i := 0; i < 3; i++ {
		rec.Record(testRecord(i))
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Chop the file mid-way through the final record's line.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := len(b) - 10
	if err := os.WriteFile(path, b[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := LoadFile(path)
	if err != nil {
		t.Fatalf("truncated trace rejected: %v", err)
	}
	if len(tr.Records) != 2 {
		t.Fatalf("truncated trace has %d records, want 2", len(tr.Records))
	}
	// A malformed line that is NOT the truncated tail is still an error.
	bad := append(append([]byte{}, b[:cut]...), []byte("garbage}\n")...)
	bad = append(bad, b[:60]...) // some trailing bytes after the bad line
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("mid-file corruption loaded silently")
	}
}

func TestExactDetection(t *testing.T) {
	exact := &Trace{
		Header: Header{Source: SourceFlepd},
		Records: []Record{
			{Seq: 1, At: 0, Step: 0}, // admitted before the engine ever stepped
			{Seq: 2, At: 500, Step: 3},
		},
	}
	if !exact.Exact() {
		t.Fatal("flepd trace with step indexes not detected as exact")
	}
	missing := &Trace{
		Header:  Header{Source: SourceFlepd},
		Records: []Record{{Seq: 1, At: 500, Step: 0}},
	}
	if missing.Exact() {
		t.Fatal("trace without step indexes claimed exact")
	}
	client := &Trace{
		Header:  Header{Source: SourceFlepload},
		Records: []Record{{Seq: 1, At: 500, Step: 3}},
	}
	if client.Exact() {
		t.Fatal("client-side trace claimed exact")
	}
}
