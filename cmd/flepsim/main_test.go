package main

import (
	"testing"
	"time"
)

func TestBuildScenarioPair(t *testing.T) {
	sc, opt, err := buildScenario("SPMV,NN", "", false, false, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "SPMV_NN" || len(sc.Items) != 2 {
		t.Fatalf("scenario %+v", sc)
	}
	if opt.Policy != "hpf" {
		t.Fatalf("policy %q", opt.Policy)
	}
}

func TestBuildScenarioEqual(t *testing.T) {
	sc, _, err := buildScenario("VA,NN", "", true, false, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Items[0].Priority != sc.Items[1].Priority {
		t.Fatal("equal pair priorities differ")
	}
}

func TestBuildScenarioTriplet(t *testing.T) {
	sc, _, err := buildScenario("", "VA,SPMV,MM", false, false, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "VA_SPMV_MM" {
		t.Fatalf("name %s", sc.Name)
	}
}

func TestBuildScenarioFFS(t *testing.T) {
	sc, opt, err := buildScenario("MM,SPMV", "", false, false, true, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Policy != "ffs" || opt.MaxOverhead != 0.10 {
		t.Fatalf("opt %+v", opt)
	}
	if sc.Horizon != 50*time.Millisecond {
		t.Fatalf("horizon %v", sc.Horizon)
	}
}

func TestBuildScenarioSpatial(t *testing.T) {
	_, opt, err := buildScenario("NN,CFD", "", false, true, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Spatial {
		t.Fatal("spatial not enabled")
	}
}

func TestBuildScenarioErrors(t *testing.T) {
	cases := []struct {
		pair, triplet string
	}{
		{"", ""},
		{"SPMV", ""},
		{"SPMV,NOPE", ""},
		{"", "VA,SPMV"},
		{"", "VA,SPMV,NOPE"},
	}
	for _, c := range cases {
		if _, _, err := buildScenario(c.pair, c.triplet, false, false, false, 0); err == nil {
			t.Errorf("pair=%q triplet=%q: expected error", c.pair, c.triplet)
		}
	}
}
