package perfmodel

import "time"

// OverheadProfile estimates a kernel's preemption overhead the way the
// paper does (§4.2): "we profile the overhead of 50 runs with different
// inputs and use the average as an estimate".
type OverheadProfile struct {
	total time.Duration
	n     int
}

// DefaultOverheadRuns is the paper's profiling run count.
const DefaultOverheadRuns = 50

// Add records one profiled preemption overhead.
func (o *OverheadProfile) Add(d time.Duration) {
	o.total += d
	o.n++
}

// N returns the number of recorded runs.
func (o *OverheadProfile) N() int { return o.n }

// Mean returns the average overhead, or zero before any run is recorded.
func (o *OverheadProfile) Mean() time.Duration {
	if o.n == 0 {
		return 0
	}
	return o.total / time.Duration(o.n)
}
