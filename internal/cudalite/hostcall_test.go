package cudalite

import (
	"strings"
	"testing"
)

func TestCallHostBasic(t *testing.T) {
	prog := mustParse(t, `
void fill(float* a, int n, float v) {
    for (int i = 0; i < n; ++i) {
        a[i] = v;
    }
}
`)
	m := NewMachine(prog)
	buf := NewFloatBuffer("a", 8)
	if err := m.CallHost("fill", []Value{PtrValue(buf, 0), IntValue(8), FloatValue(3.5)}); err != nil {
		t.Fatal(err)
	}
	for i, v := range buf.F {
		if v != 3.5 {
			t.Fatalf("a[%d] = %g", i, v)
		}
	}
}

func TestCallHostHook(t *testing.T) {
	prog := mustParse(t, `
void driver(int n) {
    external_call("hello", n, 2.5);
}
`)
	m := NewMachine(prog)
	var gotName string
	var gotArgs []Value
	m.HostCall = func(name string, args []Value) (Value, bool, error) {
		if name != "external_call" {
			return Value{}, false, nil
		}
		gotName = args[0].Str()
		gotArgs = args
		return Value{}, true, nil
	}
	if err := m.CallHost("driver", []Value{IntValue(7)}); err != nil {
		t.Fatal(err)
	}
	if gotName != "hello" || len(gotArgs) != 3 || gotArgs[1].Int() != 7 || gotArgs[2].Float() != 2.5 {
		t.Fatalf("hook saw %q %v", gotName, gotArgs)
	}
}

func TestCallHostHookNotConsultedForDeviceCode(t *testing.T) {
	prog := mustParse(t, `__global__ void k(int* o) { o[0] = mystery(); }`)
	m := NewMachine(prog)
	m.HostCall = func(string, []Value) (Value, bool, error) {
		return IntValue(99), true, nil
	}
	o := NewIntBuffer("o", 1)
	err := m.Launch("k", LaunchConfig{Grid: D1(1), Block: D1(1), Args: []Value{PtrValue(o, 0)}})
	if err == nil || !strings.Contains(err.Error(), "undefined function") {
		t.Fatalf("device code consulted host hook: %v", err)
	}
}

func TestCallHostValidation(t *testing.T) {
	prog := mustParse(t, `
__global__ void k() { }
void h(int n) { n = n + 1; }
`)
	m := NewMachine(prog)
	if err := m.CallHost("nope", nil); err == nil {
		t.Error("unknown function accepted")
	}
	if err := m.CallHost("k", nil); err == nil {
		t.Error("kernel accepted as host function")
	}
	if err := m.CallHost("h", nil); err == nil {
		t.Error("wrong arg count accepted")
	}
}

func TestCallHostStringLiteralAllowed(t *testing.T) {
	prog := mustParse(t, `
void h() {
    take("a string");
}
`)
	m := NewMachine(prog)
	m.HostCall = func(name string, args []Value) (Value, bool, error) {
		return Value{}, name == "take", nil
	}
	if err := m.CallHost("h", nil); err != nil {
		t.Fatal(err)
	}
}

func TestDim3Builtin(t *testing.T) {
	prog := mustParse(t, `
void h(int gx, int gy) {
    launchlike(dim3(gx, gy), dim3(16, 16), dim3(5));
}
`)
	m := NewMachine(prog)
	var dims []Dim3
	m.HostCall = func(name string, args []Value) (Value, bool, error) {
		if name != "launchlike" {
			return Value{}, false, nil
		}
		for _, a := range args {
			dims = append(dims, UnpackDim3(a))
		}
		return Value{}, true, nil
	}
	if err := m.CallHost("h", []Value{IntValue(40), IntValue(30)}); err != nil {
		t.Fatal(err)
	}
	want := []Dim3{{40, 30, 1}, {16, 16, 1}, {5, 1, 1}}
	for i := range want {
		if dims[i] != want[i] {
			t.Fatalf("dims = %v, want %v", dims, want)
		}
	}
}

func TestPackUnpackDim3RoundTrip(t *testing.T) {
	cases := []Dim3{{1, 1, 1}, {1024, 1, 1}, {65535, 65535, 4}, {7, 3, 2}}
	for _, d := range cases {
		if got := UnpackDim3(PackDim3(d)); got != d {
			t.Fatalf("roundtrip %v → %v", d, got)
		}
	}
	// Plain ints decode as 1-D.
	if got := UnpackDim3(IntValue(300)); got != (Dim3{300, 1, 1}) {
		t.Fatalf("plain int decoded as %v", got)
	}
}
