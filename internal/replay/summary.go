package replay

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Summary is one replay run's aggregate result. Every field is computed
// from virtual-time quantities only — no wall clocks, no map-ordered
// iteration — so the same trace, configuration, and seed marshal to
// byte-identical JSON on every run (the determinism contract).
type Summary struct {
	Mode       string `json:"mode"`
	Policy     string `json:"policy"`
	Devices    int    `json:"devices"`
	Spatial    bool   `json:"spatial"`
	SpatialSMs int    `json:"spatial_sms,omitempty"`
	LOverride  int    `json:"l_override,omitempty"`
	Seed       int64  `json:"seed"`

	Records      int   `json:"records"`
	Completed    int   `json:"completed"`
	SubmitErrors int64 `json:"submit_errors"`

	// MakespanNS is the latest completion on the virtual clock;
	// ThroughputPerSec is completed launches per virtual second of it.
	MakespanNS       int64   `json:"makespan_ns"`
	ThroughputPerSec float64 `json:"throughput_per_sec"`

	// ANTT is the paper's average normalized turnaround time over every
	// completed launch with a solo baseline; HighPriority/HighPrioANTT
	// restrict it to the trace's top priority level (the latency-critical
	// tenant the paper's HPF protects).
	ANTT         float64 `json:"antt"`
	HighPriority int     `json:"high_priority"`
	HighPrioANTT float64 `json:"high_priority_antt"`

	// Fairness is Jain's index over per-tenant mean NTT: 1.0 = perfectly
	// even slowdowns, 1/n = one tenant absorbs all of it.
	Fairness float64 `json:"fairness"`

	// SLO tier, populated only when the trace carries deadline-bearing
	// records (every field is omitempty so pre-SLO traces summarize to
	// byte-identical JSON). SLOTracked = attained + missed; the margin is
	// mean virtual time from completion to deadline (negative = late).
	SLOTracked      int     `json:"slo_tracked,omitempty"`
	SLOAttained     int     `json:"slo_attained,omitempty"`
	SLOMissed       int     `json:"slo_missed,omitempty"`
	SLOAttainRate   float64 `json:"slo_attain_rate,omitempty"`
	SLOMeanMarginNS int64   `json:"slo_mean_margin_ns,omitempty"`

	// Preemption behaviour: realized preemption count and the drain
	// latency distribution (flag raise → drain complete), exact — not
	// bucketed — thanks to the runtime's OnPreemptDrained hook.
	Preemptions int   `json:"preemptions"`
	DrainP50NS  int64 `json:"drain_p50_ns"`
	DrainP90NS  int64 `json:"drain_p90_ns"`
	DrainP99NS  int64 `json:"drain_p99_ns"`

	PerPriority []PrioritySummary `json:"per_priority"`
	Tenants     []TenantSummary   `json:"tenants"`

	// Models aggregates graph-bearing records per model name, mirroring
	// the live daemon's /v1/status models block so a recorded model run
	// reconciles against its replay. Omitted for traces with no graph
	// records, keeping pre-DAG summaries byte-identical.
	Models []ModelSummary `json:"models,omitempty"`

	Divergence Divergence `json:"divergence"`
}

// PrioritySummary aggregates one priority level.
type PrioritySummary struct {
	Priority    int     `json:"priority"`
	Completed   int     `json:"completed"`
	ANTT        float64 `json:"antt"`
	Preemptions int     `json:"preemptions"`
}

// TenantSummary aggregates one recorded client.
type TenantSummary struct {
	Client           string  `json:"client"`
	Completed        int     `json:"completed"`
	Preempted        int     `json:"preempted"`
	Preemptions      int     `json:"preemptions"`
	MeanNTT          float64 `json:"mean_ntt"`
	MeanTurnaroundNS int64   `json:"mean_turnaround_ns"`
	MeanWaitNS       int64   `json:"mean_wait_ns"`
	// SLO attainment for this tenant's deadline-bearing launches
	// (omitted for pure best-effort tenants).
	SLOAttained   int     `json:"slo_attained,omitempty"`
	SLOMissed     int     `json:"slo_missed,omitempty"`
	SLOAttainRate float64 `json:"slo_attain_rate,omitempty"`
}

// ModelSummary aggregates one model's graph-bearing records: how many
// graph instances the trace carried, how many replayed to full
// completion, and the stage/SLO accounting the live daemon tracks in its
// models block.
type ModelSummary struct {
	Model string `json:"model"`
	// Graphs counts distinct graph instances in the trace;
	// GraphsCompleted those whose every recorded stage finished in the
	// replay.
	Graphs          int `json:"graphs"`
	GraphsCompleted int `json:"graphs_completed"`
	StagesCompleted int `json:"stages_completed"`
	// StagesCanceled counts recorded stages that did not finish in the
	// replay (zero on a faithful replay: the live daemon only records
	// admitted stages, and admitted stages complete).
	StagesCanceled int `json:"stages_canceled,omitempty"`
	SLOAttained    int `json:"slo_attained,omitempty"`
	SLOMissed      int `json:"slo_missed,omitempty"`
	// MeanMakespanNS is the mean virtual time from a graph's first stage
	// submission to its last stage completion, over fully-completed graphs.
	MeanMakespanNS int64 `json:"mean_makespan_ns,omitempty"`
}

// Divergence counts where the replay departed from the recorded run.
// All-zero on a faithful exact-mode replay; nonzero values localize what
// changed (retrained predictor, different placement, config drift).
type Divergence struct {
	TePrediction  int64 `json:"te_prediction"`
	StepShortfall int64 `json:"step_shortfall"`
	Placement     int64 `json:"placement"`
	// Dependency counts graph stages whose prerequisites could not be
	// brought to completion before submission in timed mode (prerequisite
	// missing from the trace or stuck).
	Dependency   int64 `json:"dependency,omitempty"`
	SubmitErrors int64 `json:"submit_errors"`
}

func (rp *Replayer) summarize(eff ReplayConfig, policy, mode string, devs []*devRun,
	outcomes []*outcome, divTe, divStep, divPlacement, divDependency, submitErrors int64) *Summary {
	sum := &Summary{
		Mode: mode, Policy: policy, Devices: eff.Devices,
		Spatial: *eff.Spatial, SpatialSMs: eff.SpatialSMs,
		LOverride: eff.L, Seed: eff.Seed,
		Records: len(rp.trace.Records), Completed: len(outcomes),
		SubmitErrors: submitErrors,
		Divergence: Divergence{
			TePrediction: divTe, StepShortfall: divStep,
			Placement: divPlacement, Dependency: divDependency,
			SubmitErrors: submitErrors,
		},
	}

	tenants := map[string]*acc{}
	prios := map[int]*acc{}
	var makespan time.Duration
	var nttSum float64
	var nttN int
	var sloMarginSum time.Duration

	for _, o := range outcomes {
		if o.finishedAt > makespan {
			makespan = o.finishedAt
		}
		ta := tenants[o.rec.Client]
		if ta == nil {
			ta = &acc{}
			tenants[o.rec.Client] = ta
		}
		pa := prios[o.rec.Priority]
		if pa == nil {
			pa = &acc{}
			prios[o.rec.Priority] = pa
		}
		ntt, hasNTT := rp.ntt(o)
		attained := o.deadline > 0 && o.finishedAt <= o.deadline
		for _, a := range []*acc{ta, pa} {
			a.completed++
			a.preemptions += o.preemptions
			if o.preemptions > 0 {
				a.preempted++
			}
			a.turnSum += o.turnaround
			a.waitSum += o.waiting
			if hasNTT {
				a.nttSum += ntt
				a.nttN++
			}
			if o.deadline > 0 {
				if attained {
					a.sloAttained++
				} else {
					a.sloMissed++
				}
			}
		}
		if hasNTT {
			nttSum += ntt
			nttN++
		}
		if o.deadline > 0 {
			if attained {
				sum.SLOAttained++
			} else {
				sum.SLOMissed++
			}
			sloMarginSum += o.deadline - o.finishedAt
		}
		sum.Preemptions += o.preemptions
	}

	sum.MakespanNS = int64(makespan)
	if makespan > 0 {
		sum.ThroughputPerSec = float64(sum.Completed) / makespan.Seconds()
	}
	if nttN > 0 {
		sum.ANTT = nttSum / float64(nttN)
	}
	sum.SLOTracked = sum.SLOAttained + sum.SLOMissed
	if sum.SLOTracked > 0 {
		sum.SLOAttainRate = float64(sum.SLOAttained) / float64(sum.SLOTracked)
		sum.SLOMeanMarginNS = int64(sloMarginSum) / int64(sum.SLOTracked)
	}

	// Per-priority rows, ascending; the top level doubles as the
	// high-priority ANTT headline.
	prioKeys := make([]int, 0, len(prios))
	for p := range prios {
		prioKeys = append(prioKeys, p)
	}
	sort.Ints(prioKeys)
	for _, p := range prioKeys {
		a := prios[p]
		ps := PrioritySummary{Priority: p, Completed: a.completed, Preemptions: a.preemptions}
		if a.nttN > 0 {
			ps.ANTT = a.nttSum / float64(a.nttN)
		}
		sum.PerPriority = append(sum.PerPriority, ps)
	}
	if n := len(prioKeys); n > 0 {
		sum.HighPriority = prioKeys[n-1]
		sum.HighPrioANTT = sum.PerPriority[n-1].ANTT
	}

	// Per-tenant rows, by client name; Jain's fairness index over the
	// tenants that have a normalized slowdown.
	names := make([]string, 0, len(tenants))
	for n := range tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	var jainSum, jainSq float64
	jainN := 0
	for _, n := range names {
		a := tenants[n]
		ts := TenantSummary{
			Client: n, Completed: a.completed,
			Preempted: a.preempted, Preemptions: a.preemptions,
		}
		if a.completed > 0 {
			ts.MeanTurnaroundNS = int64(a.turnSum) / int64(a.completed)
			ts.MeanWaitNS = int64(a.waitSum) / int64(a.completed)
		}
		if a.nttN > 0 {
			ts.MeanNTT = a.nttSum / float64(a.nttN)
			jainSum += ts.MeanNTT
			jainSq += ts.MeanNTT * ts.MeanNTT
			jainN++
		}
		if n := a.sloAttained + a.sloMissed; n > 0 {
			ts.SLOAttained = a.sloAttained
			ts.SLOMissed = a.sloMissed
			ts.SLOAttainRate = float64(a.sloAttained) / float64(n)
		}
		sum.Tenants = append(sum.Tenants, ts)
	}
	if jainN > 0 && jainSq > 0 {
		sum.Fairness = (jainSum * jainSum) / (float64(jainN) * jainSq)
	}

	sum.Models = rp.modelRows(outcomes)

	// Drain latencies across all shards, exact percentiles.
	var drains []time.Duration
	for _, d := range devs {
		drains = append(drains, d.drains...)
	}
	sort.Slice(drains, func(i, j int) bool { return drains[i] < drains[j] })
	sum.DrainP50NS = int64(percentile(drains, 0.50))
	sum.DrainP90NS = int64(percentile(drains, 0.90))
	sum.DrainP99NS = int64(percentile(drains, 0.99))
	return sum
}

// modelRows aggregates graph-bearing records and outcomes into per-model
// rows (nil when the trace has none). A graph instance is keyed by
// (client, graph id), matching the recording daemon's dependency table.
func (rp *Replayer) modelRows(outcomes []*outcome) []ModelSummary {
	type graphAgg struct {
		model     string
		recorded  int
		completed int
		first     time.Duration
		last      time.Duration
	}
	type graphKey struct{ client, graph string }
	graphs := map[graphKey]*graphAgg{}
	order := []graphKey{} // deterministic iteration: first-seen order
	modelName := func(rec *Record) string {
		if rec.Model != "" {
			return rec.Model
		}
		return "default"
	}
	for i := range rp.trace.Records {
		rec := &rp.trace.Records[i]
		if rec.GraphID == "" {
			continue
		}
		k := graphKey{rec.Client, rec.GraphID}
		g := graphs[k]
		if g == nil {
			g = &graphAgg{model: modelName(rec)}
			graphs[k] = g
			order = append(order, k)
		}
		g.recorded++
	}
	if len(graphs) == 0 {
		return nil
	}
	for _, o := range outcomes {
		if o.rec.GraphID == "" {
			continue
		}
		g := graphs[graphKey{o.rec.Client, o.rec.GraphID}]
		if g == nil {
			continue
		}
		submitted := o.finishedAt - o.turnaround
		if g.completed == 0 || submitted < g.first {
			g.first = submitted
		}
		if o.finishedAt > g.last {
			g.last = o.finishedAt
		}
		g.completed++
	}
	rows := map[string]*ModelSummary{}
	names := []string{}
	for _, k := range order {
		g := graphs[k]
		row := rows[g.model]
		if row == nil {
			row = &ModelSummary{Model: g.model}
			rows[g.model] = row
			names = append(names, g.model)
		}
		row.Graphs++
		row.StagesCompleted += g.completed
		row.StagesCanceled += g.recorded - g.completed
		if g.completed == g.recorded {
			row.GraphsCompleted++
			row.MeanMakespanNS += int64(g.last - g.first)
		}
	}
	for _, o := range outcomes {
		if o.rec.GraphID == "" || o.deadline == 0 {
			continue
		}
		row := rows[modelName(&o.rec)]
		if row == nil {
			continue
		}
		if o.finishedAt <= o.deadline {
			row.SLOAttained++
		} else {
			row.SLOMissed++
		}
	}
	sort.Strings(names)
	out := make([]ModelSummary, 0, len(names))
	for _, n := range names {
		row := rows[n]
		if row.GraphsCompleted > 0 {
			row.MeanMakespanNS /= int64(row.GraphsCompleted)
		}
		out = append(out, *row)
	}
	return out
}

// ntt returns the outcome's normalized turnaround time (turnaround over
// the solo baseline), mirroring the daemon: overridden task counts have
// no calibrated baseline and are excluded.
func (rp *Replayer) ntt(o *outcome) (float64, bool) {
	if o.rec.TasksOverride != 0 {
		return 0, false
	}
	class, err := parseClass(o.rec.Class)
	if err != nil {
		return 0, false
	}
	solo := rp.solo[soloKey{o.rec.Bench, class}]
	if solo <= 0 {
		return 0, false
	}
	return o.turnaround.Seconds() / solo.Seconds(), true
}

// acc accumulates one tenant's or priority level's outcome statistics.
type acc struct {
	completed   int
	preempted   int
	preemptions int
	nttSum      float64
	nttN        int
	turnSum     time.Duration
	waitSum     time.Duration
	sloAttained int
	sloMissed   int
}

// percentile returns the q-quantile of ascending-sorted durations using
// the nearest-rank method (deterministic, no interpolation).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// RenderText writes the summary as a human-oriented report.
func (s *Summary) RenderText(w io.Writer) {
	fmt.Fprintf(w, "replay: mode=%s policy=%s devices=%d", s.Mode, s.Policy, s.Devices)
	if s.Spatial {
		fmt.Fprintf(w, " spatial(sms=%d)", s.SpatialSMs)
	}
	if s.LOverride > 0 {
		fmt.Fprintf(w, " L=%d", s.LOverride)
	}
	fmt.Fprintf(w, " seed=%d\n", s.Seed)
	fmt.Fprintf(w, "  records=%d completed=%d submit_errors=%d makespan=%v\n",
		s.Records, s.Completed, s.SubmitErrors, time.Duration(s.MakespanNS))
	fmt.Fprintf(w, "  throughput=%.3f/s ANTT=%.4f high-prio(p%d) ANTT=%.4f fairness=%.4f\n",
		s.ThroughputPerSec, s.ANTT, s.HighPriority, s.HighPrioANTT, s.Fairness)
	fmt.Fprintf(w, "  preemptions=%d drain p50=%v p90=%v p99=%v\n",
		s.Preemptions, time.Duration(s.DrainP50NS), time.Duration(s.DrainP90NS), time.Duration(s.DrainP99NS))
	if s.SLOTracked > 0 {
		fmt.Fprintf(w, "  slo: attained=%d missed=%d rate=%.4f mean-margin=%v\n",
			s.SLOAttained, s.SLOMissed, s.SLOAttainRate, time.Duration(s.SLOMeanMarginNS))
	}
	for _, p := range s.PerPriority {
		fmt.Fprintf(w, "  priority %d: completed=%d ANTT=%.4f preemptions=%d\n",
			p.Priority, p.Completed, p.ANTT, p.Preemptions)
	}
	for _, t := range s.Tenants {
		fmt.Fprintf(w, "  tenant %-12s completed=%d preempted=%d preemptions=%d meanNTT=%.4f meanTurn=%v meanWait=%v",
			t.Client, t.Completed, t.Preempted, t.Preemptions, t.MeanNTT,
			time.Duration(t.MeanTurnaroundNS), time.Duration(t.MeanWaitNS))
		if t.SLOAttained+t.SLOMissed > 0 {
			fmt.Fprintf(w, " slo=%d/%d", t.SLOAttained, t.SLOAttained+t.SLOMissed)
		}
		fmt.Fprintf(w, "\n")
	}
	for _, m := range s.Models {
		fmt.Fprintf(w, "  model %-12s graphs=%d completed=%d stages=%d", m.Model, m.Graphs, m.GraphsCompleted, m.StagesCompleted)
		if m.StagesCanceled > 0 {
			fmt.Fprintf(w, " canceled=%d", m.StagesCanceled)
		}
		if m.SLOAttained+m.SLOMissed > 0 {
			fmt.Fprintf(w, " slo=%d/%d", m.SLOAttained, m.SLOAttained+m.SLOMissed)
		}
		if m.MeanMakespanNS > 0 {
			fmt.Fprintf(w, " makespan=%v", time.Duration(m.MeanMakespanNS))
		}
		fmt.Fprintf(w, "\n")
	}
	if d := s.Divergence; d.TePrediction+d.StepShortfall+d.Placement+d.Dependency+d.SubmitErrors > 0 {
		fmt.Fprintf(w, "  divergence: te=%d step=%d placement=%d dependency=%d submit=%d\n",
			d.TePrediction, d.StepShortfall, d.Placement, d.Dependency, d.SubmitErrors)
	}
}
