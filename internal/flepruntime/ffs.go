package flepruntime

import (
	"fmt"
	"time"
)

// FFS is the paper's fairness-first policy (§5.2.2): weighted round-robin
// where kernel i runs for an epoch of length T×W_i per round, with T chosen
// as the minimum satisfying the overhead constraint
//
//	ΣO_i / (T ΣW_i) ≤ max_overhead
//
// so that context-switch (preemption) cost never exceeds the user's budget.
// An epoch belongs to a client (kernel), not to one invocation: a client
// whose invocation completes mid-epoch keeps the GPU for its next
// invocation until the epoch expires.
type FFS struct {
	// MaxOverhead is the user's tolerated throughput loss (e.g. 0.10).
	MaxOverhead float64
	// Weights maps priority level to its share weight. Missing levels
	// weigh their priority value (min 1).
	Weights map[int]float64

	rt    *Runtime
	queue []*Invocation
	// seen tracks each distinct kernel's overhead and weight for the
	// epoch computation.
	seen map[string]ffsKernel
	// curKernel owns the current epoch, which ends at epochEnd.
	curKernel string
	epochEnd  time.Duration
	epochSeq  int
}

type ffsKernel struct {
	overhead time.Duration
	weight   float64
}

// NewFFS returns an FFS policy with the given overhead budget.
func NewFFS(maxOverhead float64) *FFS {
	if maxOverhead <= 0 {
		maxOverhead = 0.10
	}
	return &FFS{MaxOverhead: maxOverhead, seen: map[string]ffsKernel{}}
}

// Name implements Policy.
func (f *FFS) Name() string { return "FFS" }

// bind gives the policy its runtime (called by Runtime's constructor).
func (f *FFS) bind(r *Runtime) { f.rt = r }

// weight returns the share weight of an invocation.
func (f *FFS) weight(v *Invocation) float64 {
	if w, ok := f.Weights[v.Priority]; ok && w > 0 {
		return w
	}
	if v.Priority >= 1 {
		return float64(v.Priority)
	}
	return 1
}

// Enqueue appends in FIFO (round-robin) order.
func (f *FFS) Enqueue(v *Invocation) { f.queue = append(f.queue, v) }

// Peek implements Policy: within an open epoch, the epoch owner's next
// invocation goes first; otherwise the round-robin head.
func (f *FFS) Peek() *Invocation {
	if len(f.queue) == 0 {
		return nil
	}
	if f.rt != nil && f.curKernel != "" && f.rt.Device().Now() < f.epochEnd {
		for _, v := range f.queue {
			if v.Kernel == f.curKernel {
				return v
			}
		}
	}
	return f.queue[0]
}

// Dequeue implements Policy.
func (f *FFS) Dequeue(v *Invocation) {
	for i, q := range f.queue {
		if q == v {
			f.queue = append(f.queue[:i], f.queue[i+1:]...)
			return
		}
	}
}

// ShouldPreempt implements Policy: FFS never preempts on arrival; epochs
// expire via the dispatch timer.
func (f *FFS) ShouldPreempt(*Runtime, *Invocation, *Invocation) bool { return false }

// baseEpoch computes the minimum T satisfying the overhead constraint over
// the kernels seen so far.
func (f *FFS) baseEpoch() time.Duration {
	var sumO time.Duration
	sumW := 0.0
	for _, k := range f.seen {
		sumO += k.overhead
		sumW += k.weight
	}
	if sumW == 0 {
		return 0
	}
	return time.Duration(float64(sumO) / (f.MaxOverhead * sumW))
}

// OnDispatch opens a new epoch when the GPU changes hands; dispatches of
// the epoch owner's follow-up invocations inherit the running epoch.
func (f *FFS) OnDispatch(r *Runtime, v *Invocation) {
	f.seen[v.Kernel] = ffsKernel{overhead: r.OverheadFor(v), weight: f.weight(v)}
	now := r.Device().Now()
	if v.Kernel == f.curKernel && now < f.epochEnd {
		return // continuation within the owner's epoch
	}
	epoch := time.Duration(float64(f.baseEpoch()) * f.weight(v))
	if epoch <= 0 {
		return
	}
	f.curKernel = v.Kernel
	f.epochEnd = now + epoch
	f.epochSeq++
	seq := f.epochSeq
	r.Device().Engine().At(f.epochEnd, func() { f.onEpochEnd(r, seq) })
}

// onEpochEnd rotates the GPU to the next client when the epoch expires.
func (f *FFS) onEpochEnd(r *Runtime, seq int) {
	if seq != f.epochSeq {
		return // a newer epoch superseded this timer
	}
	owner := f.curKernel
	f.curKernel = ""
	running := r.Running()
	if running == nil || running.Kernel != owner || running.State() != InvRunning {
		r.schedule()
		return
	}
	if f.Peek() == nil {
		// Nobody else waiting: extend the owner's epoch in place.
		f.OnDispatch(r, running)
		return
	}
	r.log("epoch", owner, fmt.Sprintf("expired at %v", r.Device().Now()))
	r.PreemptRunning()
}

// Queued implements Policy.
func (f *FFS) Queued() []*Invocation { return f.queue }

// Pending returns the queued invocation count (for tests).
func (f *FFS) Pending() int { return len(f.queue) }
