// Package analysis is a dependency-free miniature of
// golang.org/x/tools/go/analysis: just enough Analyzer/Pass/Diagnostic
// surface for flepvet's checkers. The shapes (and field names) mirror
// the upstream API deliberately, so if the x/tools module ever becomes
// an acceptable dependency the analyzers port by changing one import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos token.Pos
	// Category names the rule within the analyzer (it is also the key a
	// `//flepvet:allow <category> -- reason` annotation suppresses).
	Category string
	Message  string
}

// Result is one package's Run return value, handed to Finish.
type Result struct {
	PkgPath string
	Value   any
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	// Categories lists every diagnostic category the analyzer can emit;
	// the driver validates allow-annotations against the union.
	Categories []string
	// Run analyzes one package. The returned value (may be nil) is
	// collected for Finish.
	Run func(*Pass) (any, error)
	// Finish, when set, runs once after every package's Run with the
	// collected results — the hook for cross-package rules (e.g. a metric
	// registered in two packages).
	Finish func(results []Result, report func(Diagnostic))
}

// Pass carries one package's parsed and type-checked state to an
// analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// NewPass wires a Pass for a driver. report receives every diagnostic.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, report: report}
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a formatted diagnostic under the given category.
func (p *Pass) Reportf(pos token.Pos, category, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Category: category, Message: fmt.Sprintf(format, args...)})
}

// NewInfo returns a types.Info with every map analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
