package model

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestPresetsValidateAndAreFreshCopies(t *testing.T) {
	presets := Presets()
	if len(presets) != 3 {
		t.Fatalf("Presets() = %d graphs, want 3", len(presets))
	}
	names := []string{}
	for _, g := range presets {
		if err := g.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", g.Name, err)
		}
		names = append(names, g.Name)
	}
	if !reflect.DeepEqual(names, []string{"bert", "diamond", "resnet"}) {
		t.Fatalf("presets not sorted by name: %v", names)
	}
	// Mutating a returned preset must not alias the next call's copy.
	g, err := ByName("resnet")
	if err != nil {
		t.Fatal(err)
	}
	g.DeadlineMS = 99
	g.Stages[0].Bench = "mutated"
	g2, _ := ByName("resnet")
	if g2.DeadlineMS != 0 || g2.Stages[0].Bench == "mutated" {
		t.Fatalf("ByName returned an aliased preset: %+v", g2)
	}
	if _, err := ByName("nope"); err == nil || !strings.Contains(err.Error(), "unknown preset") {
		t.Fatalf("unknown preset error = %v", err)
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	g := &Graph{
		Name: "loop",
		Stages: []Stage{
			{Name: "a", Bench: "VA", After: []string{"c"}},
			{Name: "b", Bench: "VA", After: []string{"a"}},
			{Name: "c", Bench: "VA", After: []string{"b"}},
		},
	}
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "dependency cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
	// The error names the first unemitted stage in declaration order.
	if !strings.Contains(err.Error(), `"a"`) {
		t.Fatalf("cycle error does not name stage a: %v", err)
	}
}

func TestValidateRejectsUnknownPrerequisite(t *testing.T) {
	g := &Graph{
		Name: "dangling",
		Stages: []Stage{
			{Name: "a", Bench: "VA"},
			{Name: "b", Bench: "VA", After: []string{"ghost"}},
		},
	}
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), `unknown prerequisite "ghost"`) {
		t.Fatalf("unknown prerequisite not detected: %v", err)
	}
}

func TestValidateRejectsMalformedShapes(t *testing.T) {
	cases := []struct {
		name string
		g    Graph
		want string
	}{
		{"no name", Graph{Stages: []Stage{{Name: "a", Bench: "VA"}}}, "no name"},
		{"no stages", Graph{Name: "x"}, "no stages"},
		{"negative deadline", Graph{Name: "x", DeadlineMS: -1, Stages: []Stage{{Name: "a", Bench: "VA"}}}, "negative deadline"},
		{"duplicate stage", Graph{Name: "x", Stages: []Stage{{Name: "a", Bench: "VA"}, {Name: "a", Bench: "VA"}}}, "twice"},
		{"self dependency", Graph{Name: "x", Stages: []Stage{{Name: "a", Bench: "VA", After: []string{"a"}}}}, "depends on itself"},
		{"duplicate prereq", Graph{Name: "x", Stages: []Stage{{Name: "a", Bench: "VA"}, {Name: "b", Bench: "VA", After: []string{"a", "a"}}}}, "twice"},
		{"bad bench", Graph{Name: "x", Stages: []Stage{{Name: "a", Bench: "NOPE"}}}, "NOPE"},
		{"bad class", Graph{Name: "x", Stages: []Stage{{Name: "a", Bench: "VA", Class: "huge"}}}, "unknown input class"},
	}
	for _, tc := range cases {
		err := tc.g.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestDeadlineRequiresTerminalSink(t *testing.T) {
	// "right" is not an ancestor of the last stage, so a graph deadline
	// would not cover it.
	g := &Graph{
		Name:       "loose",
		DeadlineMS: 10,
		Stages: []Stage{
			{Name: "pre", Bench: "VA"},
			{Name: "right", Bench: "VA", After: []string{"pre"}},
			{Name: "post", Bench: "VA", After: []string{"pre"}},
		},
	}
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), `does not depend on stage "right"`) {
		t.Fatalf("non-sink terminal accepted with deadline: %v", err)
	}
	// Without the deadline the same shape is fine.
	g.DeadlineMS = 0
	if err := g.Validate(); err != nil {
		t.Fatalf("best-effort non-sink graph rejected: %v", err)
	}
	// And every preset becomes deadline-eligible: its terminal depends on
	// every other stage.
	for _, p := range Presets() {
		p.DeadlineMS = 5
		if err := p.Validate(); err != nil {
			t.Errorf("preset %s not deadline-eligible: %v", p.Name, err)
		}
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	g, err := ByName("bert")
	if err != nil {
		t.Fatal(err)
	}
	first, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		again, err := g.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("TopoOrder not deterministic: %v vs %v", first, again)
		}
	}
	// Kahn with declaration-order tie-break on bert is exactly the
	// declaration order (embed, att0..att3, merge, ffn, out).
	want := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("TopoOrder = %v, want %v", first, want)
	}
}

func TestParseRoundTrip(t *testing.T) {
	g, err := ByName("diamond")
	if err != nil {
		t.Fatal(err)
	}
	g.DeadlineMS = 7
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !reflect.DeepEqual(g, got) {
		t.Fatalf("round trip mangled the graph:\n%+v\nvs\n%+v", g, got)
	}
	if _, err := Parse([]byte(`{"name":"x","stages":[{"name":"a","bench":"VA","after":["b"]}]}`)); err == nil {
		t.Fatal("Parse accepted a graph with an unknown prerequisite")
	}
	if _, err := Parse([]byte(`not json`)); err == nil {
		t.Fatal("Parse accepted non-JSON")
	}
}

func TestBenchmarksAndTerminal(t *testing.T) {
	g, _ := ByName("bert")
	if got := g.Benchmarks(); !reflect.DeepEqual(got, []string{"MM", "SPMV", "VA"}) {
		t.Fatalf("Benchmarks() = %v", got)
	}
	if g.Terminal().Name != "out" {
		t.Fatalf("Terminal() = %q, want out", g.Terminal().Name)
	}
	var empty Graph
	if empty.Terminal() != nil {
		t.Fatal("Terminal() on empty graph should be nil")
	}
}

func TestMaxStagesAndMaxAfterEnforced(t *testing.T) {
	big := Graph{Name: "big"}
	for i := 0; i <= MaxStages; i++ {
		big.Stages = append(big.Stages, Stage{Name: strings.Repeat("s", 1) + string(rune('a'+i%26)) + strings.Repeat("x", i/26+1), Bench: "VA"})
	}
	if err := big.Validate(); err == nil || !strings.Contains(err.Error(), "max") {
		t.Fatalf("oversized graph accepted: %v", err)
	}
	wide := Graph{Name: "wide", Stages: []Stage{}}
	var afters []string
	for i := 0; i < MaxAfter+1; i++ {
		name := string(rune('a' + i))
		wide.Stages = append(wide.Stages, Stage{Name: name, Bench: "VA"})
		afters = append(afters, name)
	}
	wide.Stages = append(wide.Stages, Stage{Name: "sink", Bench: "VA", After: afters})
	if err := wide.Validate(); err == nil || !strings.Contains(err.Error(), "prerequisites") {
		t.Fatalf("over-wide stage accepted: %v", err)
	}
}
