package transform

import (
	"fmt"
	"strings"

	cl "flep/internal/cudalite"
)

// Mode selects which of the paper's Figure 4 kernel forms to generate.
type Mode int

// Transformation modes.
const (
	// ModeTemporalNaive is Figure 4(a): poll the preemption flag before
	// every task.
	ModeTemporalNaive Mode = iota
	// ModeTemporal is Figure 4(b): poll once per L tasks (the amortizing
	// factor) and yield the whole GPU when the flag is set.
	ModeTemporal
	// ModeSpatial is Figure 4(c): poll once per L tasks; CTAs whose host
	// SM ID is below *flep_preempt yield, the rest keep running.
	ModeSpatial
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeTemporalNaive:
		return "temporal-naive"
	case ModeTemporal:
		return "temporal"
	case ModeSpatial:
		return "spatial"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Reserved prefix for identifiers introduced by the transformation.
const flepPrefix = "flep_"

// Names of the parameters appended to the transformed kernel, in order.
const (
	ParamPreempt  = "flep_preempt"   // volatile unsigned int*: 0 = run; temporal: !=0 = yield; spatial: yield SMs with id < value
	ParamNextTask = "flep_next_task" // int*: device-resident task counter (survives preemption)
	ParamNumTasks = "flep_num_tasks" // int: total tasks = original grid size
	ParamGridX    = "flep_grid_x"    // int: original gridDim.x
	ParamGridY    = "flep_grid_y"    // int: original gridDim.y
	ParamL        = "flep_L"         // int: amortizing factor (absent in naive mode)
)

// KernelInfo describes the artifacts produced for one kernel.
type KernelInfo struct {
	Original    string // original kernel name
	TaskFunc    string // extracted __device__ per-task function
	Preemptable string // generated persistent-thread __global__ kernel
	Mode        Mode
	// ExtraParams lists the appended parameter names in order; the
	// caller must pass them after the original arguments.
	ExtraParams []string
}

// TransformKernel rewrites the named __global__ kernel of prog into a
// preemptable persistent-thread form. It returns a new program (the input
// is not modified) containing the original functions plus the extracted
// task function and the preemptable kernel, together with a description of
// the generated artifacts.
func TransformKernel(prog *cl.Program, name string, mode Mode) (*cl.Program, *KernelInfo, error) {
	orig := prog.Kernel(name)
	if orig == nil {
		return nil, nil, fmt.Errorf("transform: no __global__ kernel %q", name)
	}
	if err := checkNoReservedIdents(orig); err != nil {
		return nil, nil, err
	}
	if err := checkNo3D(orig); err != nil {
		return nil, nil, err
	}

	out := cl.CloneProgram(prog)

	info := &KernelInfo{
		Original:    name,
		TaskFunc:    name + "_flep_task",
		Preemptable: name + "_flep",
		Mode:        mode,
	}
	info.ExtraParams = []string{ParamPreempt, ParamNextTask, ParamNumTasks, ParamGridX, ParamGridY}
	if mode != ModeTemporalNaive {
		info.ExtraParams = append(info.ExtraParams, ParamL)
	}
	if out.Func(info.TaskFunc) != nil || out.Func(info.Preemptable) != nil {
		return nil, nil, fmt.Errorf("transform: kernel %q appears to be already transformed", name)
	}

	task := buildTaskFunc(orig, info)
	wrapper := buildPersistentKernel(orig, info, mode)
	out.Funcs = append(out.Funcs, task, wrapper)
	return out, info, nil
}

// checkNoReservedIdents rejects kernels that already use the flep_ prefix.
func checkNoReservedIdents(fn *cl.FuncDecl) error {
	var bad string
	for _, p := range fn.Params {
		if strings.HasPrefix(p.Name, flepPrefix) {
			bad = p.Name
		}
	}
	cl.Inspect(fn.Body, func(n cl.Node) bool {
		switch x := n.(type) {
		case *cl.Ident:
			if strings.HasPrefix(x.Name, flepPrefix) {
				bad = x.Name
			}
		case *cl.DeclStmt:
			for _, d := range x.Decls {
				if strings.HasPrefix(d.Name, flepPrefix) {
					bad = d.Name
				}
			}
		}
		return bad == ""
	})
	if bad != "" {
		return fmt.Errorf("transform: kernel %s uses reserved identifier %q", fn.Name, bad)
	}
	return nil
}

// checkNo3D rejects kernels indexing blockIdx.z / gridDim.z: the task
// linearization supports 1D and 2D grids, which covers the benchmark suite.
func checkNo3D(fn *cl.FuncDecl) error {
	var err error
	cl.Inspect(fn.Body, func(n cl.Node) bool {
		m, ok := n.(*cl.Member)
		if !ok || m.Name != "z" {
			return true
		}
		if id, ok := m.X.(*cl.Ident); ok && (id.Name == "blockIdx" || id.Name == "gridDim") {
			err = fmt.Errorf("transform: kernel %s uses %s.z; 3D grids are not supported", fn.Name, id.Name)
			return false
		}
		return true
	})
	return err
}

// buildTaskFunc extracts the original kernel body into a __device__
// function taking the original parameters plus the task's block coordinates
// and the original grid dimensions. Early returns in the body become plain
// function returns, so a task never terminates the persistent CTA.
func buildTaskFunc(orig *cl.FuncDecl, info *KernelInfo) *cl.FuncDecl {
	fn := &cl.FuncDecl{
		Qual: cl.QualDevice,
		Ret:  cl.Type{Base: cl.TVoid},
		Name: info.TaskFunc,
		Pos:  orig.Pos,
	}
	for _, p := range orig.Params {
		cp := *p
		fn.Params = append(fn.Params, &cp)
	}
	fn.Params = append(fn.Params,
		&cl.Param{Type: intType(), Name: "flep_bx"},
		&cl.Param{Type: intType(), Name: "flep_by"},
		&cl.Param{Type: intType(), Name: ParamGridX},
		&cl.Param{Type: intType(), Name: ParamGridY},
	)
	body := cl.CloneStmt(orig.Body).(*cl.Block)
	rewriteBlockRefs(body)
	fn.Body = body
	return fn
}

// rewriteBlockRefs replaces blockIdx.x/y and gridDim.x/y with the task
// coordinates and grid-size parameters.
func rewriteBlockRefs(body *cl.Block) {
	cl.Inspect(body, func(n cl.Node) bool {
		m, ok := n.(*cl.Member)
		if !ok {
			return true
		}
		id, ok := m.X.(*cl.Ident)
		if !ok {
			return true
		}
		var repl string
		switch {
		case id.Name == "blockIdx" && m.Name == "x":
			repl = "flep_bx"
		case id.Name == "blockIdx" && m.Name == "y":
			repl = "flep_by"
		case id.Name == "gridDim" && m.Name == "x":
			repl = ParamGridX
		case id.Name == "gridDim" && m.Name == "y":
			repl = ParamGridY
		default:
			return true
		}
		// A Member node cannot become an Ident in place (the parent
		// holds the interface value), so rename the base and mark the
		// member with a sentinel; replaceSentinelMembers rewrites the
		// parent links in a second pass.
		id.Name = repl
		m.Name = flepMemberSentinel
		return true
	})
	replaceSentinelMembers(body)
}

// flepMemberSentinel marks a Member node whose base Ident is already the
// final replacement; replaceSentinelMembers collapses such nodes.
const flepMemberSentinel = "__flep_collapsed__"

// replaceSentinelMembers rewrites every expression tree, collapsing
// Member{Ident(x), sentinel} into Ident(x). It walks all statement slots
// that can hold expressions.
func replaceSentinelMembers(n cl.Node) {
	fix := func(e cl.Expr) cl.Expr { return collapse(e) }
	rewriteExprs(n, fix)
}

func collapse(e cl.Expr) cl.Expr {
	m, ok := e.(*cl.Member)
	if ok && m.Name == flepMemberSentinel {
		return m.X
	}
	return e
}

// rewriteExprs applies f bottom-up to every expression under n, rewriting
// child links so replacements take effect.
func rewriteExprs(n cl.Node, f func(cl.Expr) cl.Expr) {
	var fixE func(e cl.Expr) cl.Expr
	fixE = func(e cl.Expr) cl.Expr {
		switch x := e.(type) {
		case nil:
			return nil
		case *cl.Unary:
			x.X = fixE(x.X)
		case *cl.Postfix:
			x.X = fixE(x.X)
		case *cl.Binary:
			x.L = fixE(x.L)
			x.R = fixE(x.R)
		case *cl.Assign:
			x.L = fixE(x.L)
			x.R = fixE(x.R)
		case *cl.Cond:
			x.C = fixE(x.C)
			x.T = fixE(x.T)
			x.E = fixE(x.E)
		case *cl.Call:
			for i := range x.Args {
				x.Args[i] = fixE(x.Args[i])
			}
		case *cl.Index:
			x.X = fixE(x.X)
			x.Idx = fixE(x.Idx)
		case *cl.Member:
			x.X = fixE(x.X)
		case *cl.Cast:
			x.X = fixE(x.X)
		case *cl.Paren:
			x.X = fixE(x.X)
		}
		return f(e)
	}
	var fixS func(s cl.Stmt)
	fixS = func(s cl.Stmt) {
		switch x := s.(type) {
		case nil:
		case *cl.Block:
			for _, st := range x.Stmts {
				fixS(st)
			}
		case *cl.DeclStmt:
			for _, d := range x.Decls {
				d.ArrayLen = fixE(d.ArrayLen)
				d.Init = fixE(d.Init)
			}
		case *cl.ExprStmt:
			x.X = fixE(x.X)
		case *cl.IfStmt:
			x.Cond = fixE(x.Cond)
			fixS(x.Then)
			fixS(x.Else)
		case *cl.ForStmt:
			fixS(x.Init)
			x.Cond = fixE(x.Cond)
			x.Post = fixE(x.Post)
			fixS(x.Body)
		case *cl.WhileStmt:
			x.Cond = fixE(x.Cond)
			fixS(x.Body)
		case *cl.ReturnStmt:
			x.X = fixE(x.X)
		case *cl.LaunchStmt:
			x.Grid = fixE(x.Grid)
			x.Block = fixE(x.Block)
			x.Shmem = fixE(x.Shmem)
			for i := range x.Args {
				x.Args[i] = fixE(x.Args[i])
			}
		}
	}
	switch x := n.(type) {
	case *cl.FuncDecl:
		fixS(x.Body)
	case cl.Stmt:
		fixS(x)
	case cl.Expr:
		fixE(x)
	}
}

// buildPersistentKernel generates the __global__ wrapper of Figure 4.
func buildPersistentKernel(orig *cl.FuncDecl, info *KernelInfo, mode Mode) *cl.FuncDecl {
	fn := &cl.FuncDecl{
		Qual: cl.QualGlobal,
		Ret:  cl.Type{Base: cl.TVoid},
		Name: info.Preemptable,
		Pos:  orig.Pos,
	}
	for _, p := range orig.Params {
		cp := *p
		fn.Params = append(fn.Params, &cp)
	}
	fn.Params = append(fn.Params,
		&cl.Param{Type: cl.Type{Base: cl.TUInt, Ptr: 1, Volatile: true}, Name: ParamPreempt},
		&cl.Param{Type: cl.Type{Base: cl.TInt, Ptr: 1}, Name: ParamNextTask},
		&cl.Param{Type: intType(), Name: ParamNumTasks},
		&cl.Param{Type: intType(), Name: ParamGridX},
		&cl.Param{Type: intType(), Name: ParamGridY},
	)
	if mode != ModeTemporalNaive {
		fn.Params = append(fn.Params, &cl.Param{Type: intType(), Name: ParamL})
	}

	body := &cl.Block{}
	// __shared__ int flep_task; __shared__ int flep_stop;
	body.Stmts = append(body.Stmts,
		sharedIntDecl("flep_task"),
		sharedIntDecl("flep_stop"),
	)

	// The preemption check: leader polls the flag once per round and
	// broadcasts via shared memory (the paper's single-reader
	// optimization), then every thread conditionally returns.
	var cond cl.Expr
	switch mode {
	case ModeSpatial:
		// __smid() < (int)*flep_preempt
		cond = bin(cl.OpLt,
			&cl.Call{Fun: "__smid"},
			&cl.Cast{Type: intType(), X: deref(ParamPreempt)},
		)
	default:
		// *flep_preempt != 0
		cond = bin(cl.OpNe, deref(ParamPreempt), intLit(0))
	}
	checkStmts := []cl.Stmt{
		leaderOnly(&cl.IfStmt{
			Cond: cond,
			Then: block(exprStmt(assign("flep_stop", intLit(1)))),
			Else: block(exprStmt(assign("flep_stop", intLit(0)))),
		}),
		syncthreads(),
		&cl.IfStmt{
			Cond: bin(cl.OpEq, ident("flep_stop"), intLit(1)),
			Then: block(&cl.ReturnStmt{}),
		},
	}

	// The task pull + execute sequence (pull_task / process in Fig. 4).
	pullStmts := []cl.Stmt{
		leaderOnly(exprStmt(assign("flep_task",
			&cl.Call{Fun: "atomicAdd", Args: []cl.Expr{
				ident(ParamNextTask), intLit(1),
			}}))),
		syncthreads(),
		&cl.IfStmt{
			Cond: bin(cl.OpGe, ident("flep_task"), ident(ParamNumTasks)),
			Then: block(&cl.ReturnStmt{}),
		},
		exprStmt(taskCall(orig, info)),
		syncthreads(),
	}

	loop := &cl.WhileStmt{Cond: intLit(1)}
	switch mode {
	case ModeTemporalNaive:
		loop.Body = block(append(checkStmts, pullStmts...)...)
	default:
		inner := &cl.ForStmt{
			Init: &cl.DeclStmt{Type: intType(), Decls: []*cl.Declarator{{Name: "flep_i", Init: intLit(0)}}},
			Cond: bin(cl.OpLt, ident("flep_i"), ident(ParamL)),
			Post: &cl.Unary{Op: cl.OpPreInc, X: ident("flep_i")},
			Body: block(pullStmts...),
		}
		loop.Body = block(append(checkStmts, inner)...)
	}
	body.Stmts = append(body.Stmts, loop)
	fn.Body = body
	return fn
}

// taskCall builds k_flep_task(origArgs..., task%gx, task/gx, gx, gy).
func taskCall(orig *cl.FuncDecl, info *KernelInfo) cl.Expr {
	c := &cl.Call{Fun: info.TaskFunc}
	for _, p := range orig.Params {
		c.Args = append(c.Args, ident(p.Name))
	}
	c.Args = append(c.Args,
		bin(cl.OpRem, ident("flep_task"), ident(ParamGridX)),
		bin(cl.OpDiv, ident("flep_task"), ident(ParamGridX)),
		ident(ParamGridX),
		ident(ParamGridY),
	)
	return c
}

// ---- small AST constructors ----

func intType() cl.Type           { return cl.Type{Base: cl.TInt} }
func ident(n string) *cl.Ident   { return &cl.Ident{Name: n} }
func intLit(v int64) *cl.IntLit  { return &cl.IntLit{Val: v} }
func exprStmt(e cl.Expr) cl.Stmt { return &cl.ExprStmt{X: e} }
func block(ss ...cl.Stmt) *cl.Block {
	return &cl.Block{Stmts: ss}
}

func bin(op cl.Op, l, r cl.Expr) cl.Expr { return &cl.Binary{Op: op, L: l, R: r} }

func deref(name string) cl.Expr { return &cl.Unary{Op: cl.OpDeref, X: ident(name)} }

func assign(name string, v cl.Expr) cl.Expr {
	return &cl.Assign{Op: cl.OpAssign, L: ident(name), R: v}
}

func sharedIntDecl(name string) cl.Stmt {
	return &cl.DeclStmt{Shared: true, Type: intType(), Decls: []*cl.Declarator{{Name: name}}}
}

func syncthreads() cl.Stmt { return exprStmt(&cl.Call{Fun: "__syncthreads"}) }

// leaderOnly wraps s in "if (threadIdx.x == 0 && threadIdx.y == 0) { s }".
func leaderOnly(s cl.Stmt) cl.Stmt {
	tx := &cl.Member{X: ident("threadIdx"), Name: "x"}
	ty := &cl.Member{X: ident("threadIdx"), Name: "y"}
	return &cl.IfStmt{
		Cond: bin(cl.OpAnd,
			bin(cl.OpEq, tx, intLit(0)),
			bin(cl.OpEq, ty, intLit(0))),
		Then: block(s),
	}
}
