// Package cudalite implements MiniCUDA, a CUDA-C dialect large enough to
// express the paper's eight benchmark kernels and the FLEP-transformed
// forms of Figure 4. It provides a lexer, parser, AST, pretty-printer and a
// SIMT interpreter used to validate that FLEP's source-to-source
// transformation preserves kernel semantics.
package cudalite

import "fmt"

// Kind identifies a lexical token class.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INTLIT
	FLOATLIT
	STRINGLIT

	// Keywords.
	KwGlobal // __global__
	KwDevice // __device__
	KwShared // __shared__
	KwVoid
	KwInt
	KwUnsigned
	KwFloat
	KwBool
	KwConst
	KwVolatile
	KwIf
	KwElse
	KwFor
	KwWhile
	KwReturn
	KwBreak
	KwContinue
	KwTrue
	KwFalse
	KwNull // NULL

	// Punctuation and operators.
	LParen    // (
	RParen    // )
	LBrace    // {
	RBrace    // }
	LBracket  // [
	RBracket  // ]
	Semicolon // ;
	Comma     // ,
	Dot       // .
	Question  // ?
	Colon     // :

	AssignTok   // =
	PlusAssign  // +=
	MinusAssign // -=
	StarAssign  // *=
	SlashAssign // /=

	Plus    // +
	Minus   // -
	Star    // *
	Slash   // /
	Percent // %
	Inc     // ++
	Dec     // --

	Lt  // <
	Gt  // >
	Le  // <=
	Ge  // >=
	Eq  // ==
	Ne  // !=
	Not // !

	AndAnd // &&
	OrOr   // ||
	Amp    // &
	Pipe   // |
	Caret  // ^
	Tilde  // ~
	Shl    // <<
	Shr    // >>

	LaunchOpen  // <<<
	LaunchClose // >>>
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", INTLIT: "int literal",
	FLOATLIT: "float literal", STRINGLIT: "string literal",
	KwGlobal: "__global__", KwDevice: "__device__", KwShared: "__shared__",
	KwVoid: "void", KwInt: "int", KwUnsigned: "unsigned", KwFloat: "float",
	KwBool: "bool", KwConst: "const", KwVolatile: "volatile",
	KwIf: "if", KwElse: "else", KwFor: "for", KwWhile: "while",
	KwReturn: "return", KwBreak: "break", KwContinue: "continue",
	KwTrue: "true", KwFalse: "false", KwNull: "NULL",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Semicolon: ";", Comma: ",", Dot: ".",
	Question: "?", Colon: ":",
	AssignTok: "=", PlusAssign: "+=", MinusAssign: "-=", StarAssign: "*=",
	SlashAssign: "/=",
	Plus:        "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Inc: "++", Dec: "--",
	Lt: "<", Gt: ">", Le: "<=", Ge: ">=", Eq: "==", Ne: "!=", Not: "!",
	AndAnd: "&&", OrOr: "||", Amp: "&", Pipe: "|", Caret: "^", Tilde: "~",
	Shl: "<<", Shr: ">>", LaunchOpen: "<<<", LaunchClose: ">>>",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"__global__": KwGlobal,
	"__device__": KwDevice,
	"__shared__": KwShared,
	"void":       KwVoid,
	"int":        KwInt,
	"unsigned":   KwUnsigned,
	"float":      KwFloat,
	"bool":       KwBool,
	"const":      KwConst,
	"volatile":   KwVolatile,
	"if":         KwIf,
	"else":       KwElse,
	"for":        KwFor,
	"while":      KwWhile,
	"return":     KwReturn,
	"break":      KwBreak,
	"continue":   KwContinue,
	"true":       KwTrue,
	"false":      KwFalse,
	"NULL":       KwNull,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token with its source position and literal text.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

// String formats the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT, FLOATLIT, STRINGLIT:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
