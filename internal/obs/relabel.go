package obs

import (
	"bufio"
	"io"
	"sort"
	"strings"
)

// RelabelText streams a Prometheus text exposition from r to w, adding
// one label pair to every sample line. Comment (# HELP/# TYPE) and blank
// lines pass through unchanged — parsers skip repeated family headers —
// so expositions from several sources can be concatenated into one
// stream distinguished by the injected label. The injected pair is
// prepended as the first label; SumMatching-style label-subset queries
// are order-independent, so placement does not matter.
//
// This is the gateway-side counterpart of Registry.WritePrometheus's
// extraLabels: the fleet injects a device label where the registry is in
// hand, the cluster gateway injects a node label where only the rendered
// text is.
func RelabelText(w io.Writer, r io.Reader, key, value string) error {
	bw := bufio.NewWriter(w)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	pair := key + `="` + escapeLabelValue(value) + `"`
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			if _, err := bw.WriteString(line + "\n"); err != nil {
				return err
			}
			continue
		}
		if _, err := bw.WriteString(injectLabel(trimmed, pair) + "\n"); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return bw.Flush()
}

// injectLabel splices a rendered `key="value"` pair into one sample
// line as its first label. Metric names cannot contain '{' or ' ', so
// whichever comes first ends the name; everything after is preserved
// verbatim (existing labels, value, optional timestamp).
func injectLabel(line, pair string) string {
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd < 0 {
		return line // not a sample line; leave untouched
	}
	name, rest := line[:nameEnd], line[nameEnd:]
	if rest[0] == '{' {
		if rest[1] == '}' { // degenerate empty label set
			return name + "{" + pair + "}" + rest[2:]
		}
		return name + "{" + pair + "," + rest[1:]
	}
	return name + "{" + pair + "}" + rest
}

// escapeLabelValue escapes a label value per the Prometheus text format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// LabelValues returns the distinct values the named label takes across
// the family's samples, sorted. A scrape relabeled per node answers
// "which nodes are in this exposition?" with
// LabelValues("flep_server_launches_total", "node").
func (s Snapshot) LabelValues(family, key string) []string {
	seen := map[string]bool{}
	prefix := family + "{"
	for k := range s {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		inner := strings.TrimSuffix(k[len(prefix):], "}")
		for _, part := range strings.Split(inner, ",") {
			if rest, ok := strings.CutPrefix(part, key+`="`); ok {
				seen[strings.TrimSuffix(rest, `"`)] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
