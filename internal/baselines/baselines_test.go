package baselines

import (
	"testing"
	"time"

	"flep/internal/gpu"
	"flep/internal/sim"
)

func prof(name string) *gpu.KernelProfile {
	return &gpu.KernelProfile{Name: name, ThreadsPerCTA: 256, CTAsPerSM: 8,
		MemoryIntensity: 0.5, ContentionFloor: 0.8}
}

func us(v float64) time.Duration { return time.Duration(v * float64(time.Microsecond)) }

func newDev() (*sim.Engine, *gpu.Device) {
	eng := sim.New()
	return eng, gpu.New(eng, gpu.DefaultParams())
}

func TestMPSSerializesFIFO(t *testing.T) {
	eng, dev := newDev()
	m := NewMPS(dev)
	long := &Job{Kernel: "long", Profile: prof("long"), Tasks: 12000, TaskCost: us(100)}   // 10ms
	short := &Job{Kernel: "short", Profile: prof("short"), Tasks: 1200, TaskCost: us(100)} // 1ms
	m.Submit(long)
	eng.Schedule(us(100), func() { m.Submit(short) })
	eng.Run()
	if short.FinishedAt() < long.FinishedAt() {
		t.Fatal("MPS must be FIFO: short finished first")
	}
	// Short's slowdown = (waiting + exec)/exec ≈ 10x+ — the priority
	// inversion Figure 1 demonstrates.
	slowdown := short.Turnaround().Seconds() / us(1000).Seconds()
	if slowdown < 8 {
		t.Fatalf("slowdown = %.1f, expected heavy blocking", slowdown)
	}
}

func TestReorderPicksShortestAtCompletion(t *testing.T) {
	eng, dev := newDev()
	r := NewReorder(dev)
	first := &Job{Kernel: "first", Profile: prof("first"), Tasks: 6000, TaskCost: us(100), Predicted: us(5000)}
	long := &Job{Kernel: "long", Profile: prof("long"), Tasks: 12000, TaskCost: us(100), Predicted: us(10000)}
	short := &Job{Kernel: "short", Profile: prof("short"), Tasks: 1200, TaskCost: us(100), Predicted: us(1000)}
	var order []string
	for _, j := range []*Job{first, long, short} {
		j := j
		j.OnFinish = func(*Job) { order = append(order, j.Kernel) }
	}
	r.Submit(first)
	eng.Schedule(us(100), func() { r.Submit(long); r.Submit(short) })
	eng.Run()
	want := []string{"first", "short", "long"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestReorderDoesNotPreempt(t *testing.T) {
	eng, dev := newDev()
	r := NewReorder(dev)
	long := &Job{Kernel: "long", Profile: prof("long"), Tasks: 12000, TaskCost: us(100), Predicted: us(10000)}
	short := &Job{Kernel: "short", Profile: prof("short"), Tasks: 120, TaskCost: us(100), Predicted: us(100)}
	r.Submit(long)
	eng.Schedule(us(500), func() { r.Submit(short) })
	eng.Run()
	if short.FinishedAt() < long.FinishedAt() {
		t.Fatal("reordering cannot preempt a running kernel")
	}
}

func TestSlicerOverheadScalesWithSliceCount(t *testing.T) {
	run := func(sliceTasks int) time.Duration {
		eng, dev := newDev()
		s := NewSlicer(dev, sliceTasks)
		j := &Job{Kernel: "k", Profile: prof("k"), Tasks: 12000, TaskCost: us(100)}
		s.Submit(j)
		eng.Run()
		return j.Turnaround()
	}
	coarse := run(6000) // 2 slices
	fine := run(120)    // 100 slices
	if fine <= coarse {
		t.Fatalf("fine slicing (%v) not slower than coarse (%v)", fine, coarse)
	}
	// Extra cost ≈ 98 extra launches × 6us ≈ 588us.
	extra := fine - coarse
	if extra < us(400) || extra > us(900) {
		t.Fatalf("slicing overhead = %v, want ≈ 588us", extra)
	}
}

func TestSlicerPreemptsAtSliceBoundary(t *testing.T) {
	eng, dev := newDev()
	s := NewSlicer(dev, 120)
	long := &Job{Kernel: "long", Priority: 1, Profile: prof("long"), Tasks: 12000, TaskCost: us(100)}
	high := &Job{Kernel: "high", Priority: 2, Profile: prof("high"), Tasks: 1200, TaskCost: us(100)}
	s.Submit(long)
	eng.Schedule(us(500), func() { s.Submit(high) })
	eng.Run()
	if high.FinishedAt() > long.FinishedAt() {
		t.Fatal("high priority should finish first under slicing")
	}
	// High should start within ~1 slice (100us) + launch of its arrival.
	if high.Turnaround() > us(1600) {
		t.Fatalf("high turnaround = %v, too slow for slice-granular preemption", high.Turnaround())
	}
}

func TestSlicerFIFOWithinPriority(t *testing.T) {
	eng, dev := newDev()
	s := NewSlicer(dev, 120)
	a := &Job{Kernel: "a", Priority: 1, Profile: prof("a"), Tasks: 600, TaskCost: us(100)}
	b := &Job{Kernel: "b", Priority: 1, Profile: prof("b"), Tasks: 600, TaskCost: us(100)}
	var order []string
	a.OnFinish = func(*Job) { order = append(order, "a") }
	b.OnFinish = func(*Job) { order = append(order, "b") }
	s.Submit(a)
	s.Submit(b)
	eng.Run()
	if len(order) != 2 || order[0] != "a" {
		t.Fatalf("order = %v", order)
	}
}

func TestSliceCountFor(t *testing.T) {
	_, dev := newDev()
	s := NewSlicer(dev, 120)
	cases := []struct{ tasks, want int }{{1, 1}, {120, 1}, {121, 2}, {12000, 100}}
	for _, c := range cases {
		if got := s.SliceCountFor(c.tasks); got != c.want {
			t.Errorf("SliceCountFor(%d) = %d, want %d", c.tasks, got, c.want)
		}
	}
}

func TestMPSBackToBackIdle(t *testing.T) {
	eng, dev := newDev()
	m := NewMPS(dev)
	a := &Job{Kernel: "a", Profile: prof("a"), Tasks: 1200, TaskCost: us(100)}
	m.Submit(a)
	eng.Run()
	b := &Job{Kernel: "b", Profile: prof("b"), Tasks: 1200, TaskCost: us(100)}
	m.Submit(b)
	eng.Run()
	if b.FinishedAt() == 0 {
		t.Fatal("second job after idle never ran")
	}
}
