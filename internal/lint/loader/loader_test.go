package loader

import (
	"go/ast"
	"go/token"
	"go/types"
	"testing"
)

// TestLoad exercises the go list -export path on two real module
// packages: sources parse, export data resolves, and type information
// is populated well enough for the analyzers (selector uses resolve to
// *types.Func across package boundaries).
func TestLoad(t *testing.T) {
	fset := token.NewFileSet()
	newInfo := func() *types.Info {
		return &types.Info{
			Uses:  map[*ast.Ident]types.Object{},
			Defs:  map[*ast.Ident]types.Object{},
			Types: map[ast.Expr]types.TypeAndValue{},
		}
	}
	pkgs, err := Load(fset, "../../..", []string{"./internal/obs", "./internal/server"}, newInfo)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
		if p.Types == nil || len(p.Files) == 0 {
			t.Fatalf("%s: missing types or files", p.PkgPath)
		}
		if p.Info == nil || len(p.Info.Uses) == 0 {
			t.Fatalf("%s: type info not populated", p.PkgPath)
		}
	}
	srv, ok := byPath["flep/internal/server"]
	if !ok {
		t.Fatalf("flep/internal/server not among loaded packages: %v", pkgPaths(pkgs))
	}
	// Cross-package resolution: server imports obs via export data.
	found := false
	for _, imp := range srv.Types.Imports() {
		if imp.Path() == "flep/internal/obs" {
			found = true
		}
	}
	if !found {
		t.Errorf("server package does not record its obs import; export-data resolution broken")
	}
}

func pkgPaths(pkgs []*Package) []string {
	var out []string
	for _, p := range pkgs {
		out = append(out, p.PkgPath)
	}
	return out
}
