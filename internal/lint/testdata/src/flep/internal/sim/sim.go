// Package sim is a fixture stub of the engine: just enough surface for
// the looppurity analyzer to recognize Schedule/At roots (it matches
// by receiver type name and package path suffix, so this stub stands
// in for the real engine under testdata).
package sim

// Engine mirrors the real engine's scheduling surface.
type Engine struct{}

// Schedule enqueues fn after delay virtual ticks.
func (e *Engine) Schedule(delay int64, fn func()) {}

// At enqueues fn at an absolute virtual time.
func (e *Engine) At(when int64, fn func()) {}
