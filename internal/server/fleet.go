package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"flep/internal/core"
	"flep/internal/kernels"
	"flep/internal/trace"
)

// FleetConfig parameterizes a sharded daemon: N independent device shards
// behind one front door.
type FleetConfig struct {
	Config
	// Devices is the number of device shards (default 1). Each shard owns
	// its own core.System, simulated device, and event-loop goroutine, so
	// shards simulate concurrently on separate cores.
	Devices int
	// Affinity pins each client to the shard chosen for its first launch,
	// so a tenant's kernels contend (and preempt) on one device like the
	// paper's co-run scenarios. Off, every launch is placed independently
	// by memory-aware least-loaded scoring.
	Affinity bool
}

// Fleet fronts N device shards with a placement router and aggregated
// telemetry. It is the serving-stack shape of a multi-GPU FLEP node: the
// paper's runtime engine (§5) owns one GPU; the fleet replicates that
// engine per device and adds the layer the paper leaves to the cluster —
// deciding which device each intercepted launch lands on.
type Fleet struct {
	cfg       FleetConfig
	shards    []*Server
	benches   map[string]*kernels.Benchmark
	startReal time.Time

	// mu guards the affinity table. Placement decisions run under it too,
	// so two concurrent first-launches of one client cannot pin the client
	// to different shards.
	mu       sync.Mutex
	affinity map[string]int

	// rr rotates the tie-break start of pickShard. Load is only visible
	// once a launch is enqueued, so a burst of concurrent placements all
	// read equal (stale) loads; a fixed lowest-index tie-break would herd
	// the whole burst onto shard 0.
	rr atomic.Int64
}

// NewFleet builds the offline artifacts once, clones the system per shard,
// and starts one event loop per device.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	cfg.Config.applyDefaults()
	if cfg.Devices <= 0 {
		cfg.Devices = 1
	}
	benchs, err := resolveBenchmarks(cfg.Benchmarks)
	if err != nil {
		return nil, err
	}
	sys := core.NewSystem(cfg.Params)
	for _, b := range benchs {
		start := time.Now()
		if err := sys.Offline([]*kernels.Benchmark{b}); err != nil {
			return nil, fmt.Errorf("server: offline %s: %w", b.Name, err)
		}
		a := sys.Artifacts(b.Name)
		cfg.Logf("offline %-5s L=%-4d overhead=%.2f%% preempt=%v (%v)",
			b.Name, a.L, a.TunedOverhead*100, a.PreemptOverhead.Round(time.Microsecond),
			time.Since(start).Round(time.Millisecond))
	}
	return NewFleetWithSystem(sys, cfg)
}

// NewFleetWithSystem starts a fleet over an existing system (whose Offline
// phase must already cover cfg.Benchmarks). Each shard receives its own
// Clone of the system, so the shards' prediction caches never race.
func NewFleetWithSystem(sys *core.System, cfg FleetConfig) (*Fleet, error) {
	cfg.Config.applyDefaults()
	if cfg.Devices <= 0 {
		cfg.Devices = 1
	}
	benchs, err := resolveBenchmarks(cfg.Benchmarks)
	if err != nil {
		return nil, err
	}
	f := &Fleet{
		cfg:       cfg,
		benches:   map[string]*kernels.Benchmark{},
		affinity:  map[string]int{},
		startReal: time.Now(),
	}
	for _, b := range benchs {
		f.benches[b.Name] = b
	}
	for i := 0; i < cfg.Devices; i++ {
		shardCfg := cfg.Config
		shardCfg.Device = i
		shardCfg.FleetShards = cfg.Devices
		s, err := NewWithSystem(sys.Clone(), shardCfg)
		if err != nil {
			for _, prev := range f.shards {
				_ = prev.Shutdown(context.Background())
			}
			return nil, fmt.Errorf("server: shard %d: %w", i, err)
		}
		f.shards = append(f.shards, s)
	}
	cfg.Logf("fleet: %d device shard(s), affinity=%v", cfg.Devices, cfg.Affinity)
	return f, nil
}

// Devices returns the shard count.
func (f *Fleet) Devices() int { return len(f.shards) }

// Shard returns the i-th device shard (tests and embedders).
func (f *Fleet) Shard(i int) *Server { return f.shards[i] }

// workingSet computes the invocation's resident footprint for placement
// (the same /8 model Server.admit applies), or 0 when the request is not
// placeable by memory (unknown benchmark or class — the shard's own
// validation will reject it).
func (f *Fleet) workingSet(req LaunchRequest) int64 {
	b, ok := f.benches[req.Benchmark]
	if !ok {
		return 0
	}
	class, err := parseClass(req.Class)
	if err != nil {
		return 0
	}
	in := b.Input(class)
	if req.TasksOverride > 0 {
		in.Tasks = req.TasksOverride
		in.Bytes = int64(in.Tasks) * b.BytesPerTask
	}
	return in.Bytes / 8
}

// pickShard scores the shards for one launch: among shards whose free
// device memory fits the working set, the least loaded wins (queue depth
// plus admitted-but-unfinished launches); if no shard fits, fall back to
// least loaded overall and let the runtime's own memory admission queue
// the launch until space frees up. Ties break toward a rotating start
// index, so a burst of placements made before any of them shows up in
// the load signal still spreads round-robin.
func (f *Fleet) pickShard(req LaunchRequest) int {
	need := f.workingSet(req)
	n := len(f.shards)
	start := int(f.rr.Add(1)-1) % n
	best, bestLoad := -1, int64(math.MaxInt64)
	fallback, fallbackLoad := -1, int64(math.MaxInt64)
	for k := 0; k < n; k++ {
		i := (start + k) % n
		s := f.shards[i]
		load := s.Load()
		if load < fallbackLoad {
			fallback, fallbackLoad = i, load
		}
		if need > 0 && s.MemoryAvailable() < need {
			continue
		}
		if load < bestLoad {
			best, bestLoad = i, load
		}
	}
	if best < 0 {
		return fallback
	}
	return best
}

// route places one launch, honoring session affinity when enabled.
// Graph-bearing requests always pin through the affinity table, even
// when affinity is off: the pending-dependency state of a client's
// graphs lives on one shard, so every stage of every graph the client
// submits must land there or prerequisites would never be observed.
func (f *Fleet) route(req LaunchRequest, client string) *Server {
	if !f.cfg.Affinity && req.Graph == "" {
		return f.shards[f.pickShard(req)]
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	i, ok := f.affinity[client]
	if !ok {
		i = f.pickShard(req)
		f.affinity[client] = i
	}
	return f.shards[i]
}

// AffinityFor reports the shard a client is pinned to (tests).
func (f *Fleet) AffinityFor(client string) (int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	i, ok := f.affinity[client]
	return i, ok
}

// Shutdown drains every shard concurrently and returns the first error.
func (f *Fleet) Shutdown(ctx context.Context) error {
	errs := make([]error, len(f.shards))
	var wg sync.WaitGroup
	for i, s := range f.shards {
		wg.Add(1)
		go func(i int, s *Server) {
			defer wg.Done()
			errs[i] = s.Shutdown(ctx)
		}(i, s)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Pause parks every shard's event loop.
func (f *Fleet) Pause() error {
	for _, s := range f.shards {
		if err := s.Pause(); err != nil {
			return err
		}
	}
	return nil
}

// Resume unparks every shard's event loop.
func (f *Fleet) Resume() error {
	for _, s := range f.shards {
		if err := s.Resume(); err != nil {
			return err
		}
	}
	return nil
}

// Counters sums the shards' request accounting. The fleet-wide
// exactly-once invariant is enqueued == completed + submit_errors at
// rest, same as a single shard: placement never duplicates or drops a
// launch, it only chooses which shard's queue it enters.
func (f *Fleet) Counters() map[string]int64 {
	total := map[string]int64{}
	for _, s := range f.shards {
		for k, v := range s.Counters() {
			total[k] += v
		}
	}
	return total
}

// addCounters folds one shard's counters into the aggregate.
func addCounters(agg *counters, c counters) {
	agg.Enqueued += c.Enqueued
	agg.Completed += c.Completed
	agg.SubmitErrors += c.SubmitErrors
	agg.RejectedFull += c.RejectedFull
	agg.RejectedDraining += c.RejectedDraining
	agg.RejectedInvalid += c.RejectedInvalid
	agg.RejectedShed += c.RejectedShed
	agg.TimedOut += c.TimedOut
	agg.Canceled += c.Canceled
	agg.SLOAttained += c.SLOAttained
	agg.SLOMissed += c.SLOMissed
	agg.DepCanceled += c.DepCanceled
	agg.RejectedDepFull += c.RejectedDepFull
}

// Status aggregates the shards: summed counters and queue figures at the
// top level (so single-device clients keep working unchanged), per-shard
// breakdowns under Devices.
func (f *Fleet) Status() Status {
	devs := make([]Status, 0, len(f.shards))
	for _, s := range f.shards {
		devs = append(devs, s.statusSnapshot())
	}
	agg := Status{
		Policy:        f.cfg.Policy,
		Spatial:       f.cfg.Spatial,
		Benchmarks:    devs[0].Benchmarks,
		UptimeMS:      time.Since(f.startReal).Milliseconds(),
		Paused:        true,
		ExactlyOnceOK: true,
	}
	for _, d := range devs {
		addCounters(&agg.Counters, d.Counters)
		agg.Models = mergeModelRows(agg.Models, d.Models)
		// Re-derive the fleet's mean SLO margin from completion-weighted
		// shard means before the counts change.
		if n0, n1 := agg.SLO.Attained+agg.SLO.Missed, d.SLO.Attained+d.SLO.Missed; n0+n1 > 0 {
			agg.SLO.MeanMarginUS = (agg.SLO.MeanMarginUS*float64(n0) + d.SLO.MeanMarginUS*float64(n1)) / float64(n0+n1)
		}
		agg.SLO.Attained += d.SLO.Attained
		agg.SLO.Missed += d.SLO.Missed
		agg.SLO.BestEffortShed += d.SLO.BestEffortShed
		agg.QueueLen += d.QueueLen
		agg.QueueCap += d.QueueCap
		agg.MemoryFreeBytes += d.MemoryFreeBytes
		agg.Sessions += d.Sessions
		agg.TraceEntries += d.TraceEntries
		agg.TraceDropped += d.TraceDropped
		agg.Paused = agg.Paused && d.Paused
		agg.Draining = agg.Draining || d.Draining
		agg.ExactlyOnceOK = agg.ExactlyOnceOK && d.ExactlyOnceOK
		if d.VirtualNowUS > agg.VirtualNowUS {
			agg.VirtualNowUS = d.VirtualNowUS
		}
	}
	if n := agg.SLO.Attained + agg.SLO.Missed; n > 0 {
		agg.SLO.AttainRate = float64(agg.SLO.Attained) / float64(n)
	}
	if len(devs) > 1 {
		agg.Devices = devs
	}
	return agg
}

// SessionSnapshots merges the shards' per-client sessions by ID: counters
// sum, means re-weight by completions, and Devices lists every shard the
// client's launches touched (exactly one under affinity).
func (f *Fleet) SessionSnapshots() []SessionSnapshot {
	merged := map[string]*SessionSnapshot{}
	for i, s := range f.shards {
		for _, snap := range s.SessionSnapshots() {
			m, ok := merged[snap.ID]
			if !ok {
				c := snap
				c.Devices = []int{i}
				merged[snap.ID] = &c
				continue
			}
			// Re-derive the merged means from completion-weighted sums
			// before the counts change.
			total := m.Completed + snap.Completed
			if total > 0 {
				m.MeanTurnUS = (m.MeanTurnUS*float64(m.Completed) + snap.MeanTurnUS*float64(snap.Completed)) / float64(total)
				m.MeanWaitUS = (m.MeanWaitUS*float64(m.Completed) + snap.MeanWaitUS*float64(snap.Completed)) / float64(total)
			}
			if n0, n1 := m.SLOAttained+m.SLOMissed, snap.SLOAttained+snap.SLOMissed; n0+n1 > 0 {
				m.MeanSLOMarginUS = (m.MeanSLOMarginUS*float64(n0) + snap.MeanSLOMarginUS*float64(n1)) / float64(n0+n1)
			}
			m.Launches += snap.Launches
			m.InFlight += snap.InFlight
			m.Completed += snap.Completed
			m.SubmitErrors += snap.SubmitErrors
			m.RejectedFull += snap.RejectedFull
			m.RejectedDraining += snap.RejectedDraining
			m.RejectedInvalid += snap.RejectedInvalid
			m.RejectedShed += snap.RejectedShed
			m.TimedOut += snap.TimedOut
			m.Canceled += snap.Canceled
			m.DepCanceled += snap.DepCanceled
			m.RejectedDepFull += snap.RejectedDepFull
			m.SLOAttained += snap.SLOAttained
			m.SLOMissed += snap.SLOMissed
			m.Preemptions += snap.Preemptions
			if snap.FirstSeenUnix < m.FirstSeenUnix {
				m.FirstSeenUnix = snap.FirstSeenUnix
			}
			if snap.LastFinishUS > m.LastFinishUS {
				m.LastFinishUS = snap.LastFinishUS
			}
			m.HostState = hostStateFor(m.Launches, m.Completed, m.SubmitErrors)
			m.Devices = append(m.Devices, i)
		}
	}
	out := make([]SessionSnapshot, 0, len(merged))
	for _, m := range merged {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TraceEntries merges the shards' trace logs into one time-ordered stream,
// stamping each entry with its device index.
func (f *Fleet) TraceEntries(kind string) []trace.Entry {
	streams := make([][]trace.Entry, 0, len(f.shards))
	for i, s := range f.shards {
		tl := s.TraceLog()
		if tl == nil {
			continue
		}
		entries := tl.Filter(kind)
		for j := range entries {
			entries[j].Device = i
		}
		streams = append(streams, entries)
	}
	// trace.Merge orders by (Time, Node, Device); shard streams carry no
	// Node, so the tie-break reduces to the documented (Time, Device).
	return trace.Merge(streams)
}

// Handler returns the fleet's HTTP API: the same surface as a single
// Server, with launches routed by placement and reads aggregated across
// shards.
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/launch", f.handleLaunch)
	mux.HandleFunc("GET /v1/status", f.handleStatus)
	mux.HandleFunc("GET /v1/sessions", f.handleSessions)
	mux.HandleFunc("GET /v1/benchmarks", f.handleBenchmarks)
	mux.HandleFunc("GET /v1/trace", f.handleTrace)
	mux.HandleFunc("POST /v1/pause", f.handlePause)
	mux.HandleFunc("POST /v1/resume", f.handleResume)
	mux.HandleFunc("GET /healthz", f.handleHealthz)
	mux.HandleFunc("GET /readyz", f.handleReadyz)
	mux.HandleFunc("GET /metrics", f.handleMetrics)
	return mux
}

func (f *Fleet) handleLaunch(w http.ResponseWriter, r *http.Request) {
	req, client, err := decodeLaunch(w, r)
	if err != nil {
		// A body that never parsed has no placement signal; account the
		// reject on shard 0 so fleet sums still cover every outcome.
		f.shards[0].countInvalid("")
		writeJSON(w, http.StatusBadRequest, apiError{"bad request body: " + err.Error()})
		return
	}
	f.route(req, client).serveLaunch(w, r, req, client)
}

func (f *Fleet) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, f.Status())
}

func (f *Fleet) handleSessions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, f.SessionSnapshots())
}

func (f *Fleet) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, f.shards[0].info)
}

func (f *Fleet) handleTrace(w http.ResponseWriter, r *http.Request) {
	if f.shards[0].TraceLog() == nil {
		writeJSON(w, http.StatusNotFound, apiError{"trace disabled; start flepd with -trace"})
		return
	}
	entries := f.TraceEntries(r.URL.Query().Get("kind"))
	if n, err := strconv.Atoi(r.URL.Query().Get("limit")); err == nil && n > 0 && n < len(entries) {
		entries = entries[len(entries)-n:]
	}
	switch r.URL.Query().Get("format") {
	case "", "json":
		writeJSON(w, http.StatusOK, entries)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, e := range entries {
			if _, err := w.Write([]byte(formatEntry(e))); err != nil {
				return
			}
		}
	default:
		writeJSON(w, http.StatusBadRequest, apiError{"unknown format (want json or text)"})
	}
}

func (f *Fleet) handlePause(w http.ResponseWriter, r *http.Request) {
	if err := f.Pause(); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, apiError{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"paused": true})
}

func (f *Fleet) handleResume(w http.ResponseWriter, r *http.Request) {
	if err := f.Resume(); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, apiError{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"paused": false})
}

// handleHealthz is pure liveness: a draining fleet is still alive (its
// shards are finishing accepted work), so the answer is 200 for as long
// as the process can serve HTTP at all. Routing decisions belong to
// /readyz.
func (f *Fleet) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

// handleReadyz is the routing signal: it flips to 503 the moment any
// shard begins draining — before in-flight work finishes — so a gateway
// stops sending new launches here immediately.
func (f *Fleet) handleReadyz(w http.ResponseWriter, r *http.Request) {
	for _, s := range f.shards {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ready\n"))
}

// handleMetrics renders every shard's registry into one exposition, each
// sample labeled with its device index. Families repeat their HELP/TYPE
// header once per shard; obs.ParseText (and Prometheus' text parser)
// skip comment lines, so the samples merge cleanly.
func (f *Fleet) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for i, s := range f.shards {
		if err := s.Registry().WritePrometheus(w, "device", strconv.Itoa(i)); err != nil {
			return
		}
	}
}
