package cudalite

import (
	"fmt"
	"sync"
)

// VKind tags a runtime Value.
type VKind int

// Value kinds. Integers, unsigned integers and booleans share KInt storage
// (as in C, where they interconvert freely). Strings exist only in host
// code (kernel names in flep_intercept calls).
const (
	KInt VKind = iota
	KFloat
	KPtr
	KStr
)

// Buffer is a linear memory region: a device/global allocation, a per-CTA
// shared array, or a thread-local array. Exactly one of F or I is used,
// chosen by Kind.
//
// Element access is word-atomic, like GPU global memory: threads of an
// interpreted kernel run as real goroutines, and a MiniCUDA program with a
// data race must produce an unordered result, not crash the simulator (or
// trip its race detector).
type Buffer struct {
	Name string
	Kind BaseType // TFloat or TInt/TUInt/TBool
	F    []float64
	I    []int64

	// Volatile marks host-visible memory (pinned flags): loads through it
	// invoke Machine.OnVolatileRead, letting a harness mutate the flag at
	// realistic poll points.
	Volatile bool

	mu sync.Mutex
}

// NewFloatBuffer allocates a float buffer of n elements.
func NewFloatBuffer(name string, n int) *Buffer {
	return &Buffer{Name: name, Kind: TFloat, F: make([]float64, n)}
}

// NewIntBuffer allocates an int buffer of n elements.
func NewIntBuffer(name string, n int) *Buffer {
	return &Buffer{Name: name, Kind: TInt, I: make([]int64, n)}
}

// Len returns the element count.
func (b *Buffer) Len() int {
	if b.Kind == TFloat {
		return len(b.F)
	}
	return len(b.I)
}

// Load reads element i as a Value.
func (b *Buffer) Load(i int) (Value, error) {
	if i < 0 || i >= b.Len() {
		return Value{}, fmt.Errorf("cudalite: out-of-bounds read %s[%d] (len %d)", b.Name, i, b.Len())
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.Kind == TFloat {
		return FloatValue(b.F[i]), nil
	}
	return IntValue(b.I[i]), nil
}

// Store writes v (converted to the buffer's element type) to element i.
func (b *Buffer) Store(i int, v Value) error {
	if i < 0 || i >= b.Len() {
		return fmt.Errorf("cudalite: out-of-bounds write %s[%d] (len %d)", b.Name, i, b.Len())
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.Kind == TFloat {
		b.F[i] = v.Float()
	} else {
		b.I[i] = v.Int()
	}
	return nil
}

// Pointer is a typed offset into a Buffer. The nil pointer has Buf == nil.
type Pointer struct {
	Buf *Buffer
	Off int
}

// IsNil reports whether the pointer is NULL.
func (p Pointer) IsNil() bool { return p.Buf == nil }

// Value is a MiniCUDA runtime value.
type Value struct {
	Kind VKind
	I    int64
	F    float64
	P    Pointer
	S    string
}

// StrValue makes a string value (host-code only).
func StrValue(s string) Value { return Value{Kind: KStr, S: s} }

// Str returns the string payload ("" for non-strings).
func (v Value) Str() string { return v.S }

// IntValue makes an integer value.
func IntValue(v int64) Value { return Value{Kind: KInt, I: v} }

// FloatValue makes a floating-point value.
func FloatValue(v float64) Value { return Value{Kind: KFloat, F: v} }

// BoolValue makes a boolean (stored as 0/1 integer).
func BoolValue(b bool) Value {
	if b {
		return IntValue(1)
	}
	return IntValue(0)
}

// PtrValue makes a pointer value.
func PtrValue(b *Buffer, off int) Value {
	return Value{Kind: KPtr, P: Pointer{Buf: b, Off: off}}
}

// NullValue is the NULL pointer.
func NullValue() Value { return Value{Kind: KPtr} }

// Int converts the value to an integer, truncating floats (C semantics).
func (v Value) Int() int64 {
	switch v.Kind {
	case KFloat:
		return int64(v.F)
	case KPtr:
		if v.P.IsNil() {
			return 0
		}
		return 1
	default:
		return v.I
	}
}

// Float converts the value to floating point.
func (v Value) Float() float64 {
	if v.Kind == KFloat {
		return v.F
	}
	return float64(v.I)
}

// Bool converts the value to a C truth value.
func (v Value) Bool() bool {
	switch v.Kind {
	case KFloat:
		return v.F != 0
	case KPtr:
		return !v.P.IsNil()
	default:
		return v.I != 0
	}
}

// String formats the value for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case KFloat:
		return fmt.Sprintf("%g", v.F)
	case KPtr:
		if v.P.IsNil() {
			return "NULL"
		}
		return fmt.Sprintf("&%s[%d]", v.P.Buf.Name, v.P.Off)
	case KStr:
		return fmt.Sprintf("%q", v.S)
	default:
		return fmt.Sprintf("%d", v.I)
	}
}

// PackDim3 encodes a Dim3 into an integer Value (the interpreter has no
// aggregate type; the dim3(...) builtin and host hooks use this encoding).
func PackDim3(d Dim3) Value {
	d = d.Norm()
	return IntValue(int64(d.X) | int64(d.Y)<<20 | int64(d.Z)<<40)
}

// UnpackDim3 decodes PackDim3's encoding. Plain integers (y and z bits
// clear) decode as 1-D dims, so "k<<<n, 256>>>" works without dim3().
func UnpackDim3(v Value) Dim3 {
	i := v.Int()
	d := Dim3{X: int(i & 0xFFFFF), Y: int((i >> 20) & 0xFFFFF), Z: int(i >> 40)}
	return d.Norm()
}

// Dim3 is a CUDA dim3 with 1-based defaults for unused dimensions.
type Dim3 struct{ X, Y, Z int }

// D1 builds a one-dimensional Dim3.
func D1(x int) Dim3 { return Dim3{X: x, Y: 1, Z: 1} }

// D2 builds a two-dimensional Dim3.
func D2(x, y int) Dim3 { return Dim3{X: x, Y: y, Z: 1} }

// Count returns the total number of elements (threads or blocks).
func (d Dim3) Count() int {
	x, y, z := d.X, d.Y, d.Z
	if x == 0 {
		x = 1
	}
	if y == 0 {
		y = 1
	}
	if z == 0 {
		z = 1
	}
	return x * y * z
}

// Norm returns the dim with zero components replaced by 1.
func (d Dim3) Norm() Dim3 {
	if d.X == 0 {
		d.X = 1
	}
	if d.Y == 0 {
		d.Y = 1
	}
	if d.Z == 0 {
		d.Z = 1
	}
	return d
}
