// Package workload builds the co-run scenarios of the paper's evaluation:
// priority pairs (Figure 8/9), equal-priority pairs (Figure 10/11),
// triplets (Figure 12), closed-loop fairness pairs (Figure 13/14), and
// spatial-preemption pairs (Figure 15/16).
package workload

import (
	"time"

	"flep/internal/kernels"
)

// Item is one client submission in a scenario.
type Item struct {
	Bench    *kernels.Benchmark
	Class    kernels.InputClass
	Priority int
	// At is the submission (invocation) time.
	At time.Duration
	// Loop marks a closed-loop client: it resubmits the same kernel
	// immediately after each completion until the scenario horizon.
	Loop bool
	// TasksOverride replaces the input's task count when positive
	// (Figure 16 uses a 16-CTA guest).
	TasksOverride int
}

// Scenario is a named set of submissions.
type Scenario struct {
	Name  string
	Items []Item
	// Horizon stops a closed-loop scenario; zero means run to drain.
	Horizon time.Duration
}

// Eps is the paper's "immediately after": the delay between the low- and
// high-priority invocations in pair scenarios.
const Eps = 10 * time.Microsecond

// PriorityPair builds the Figure 8 scenario A_B: B runs the large input at
// low priority; A is invoked with the small input at high priority, delay
// after B (delay 0 means immediately, i.e. Eps).
func PriorityPair(a, b *kernels.Benchmark, delay time.Duration) Scenario {
	if delay <= 0 {
		delay = Eps
	}
	return Scenario{
		Name: a.Name + "_" + b.Name,
		Items: []Item{
			{Bench: b, Class: kernels.Large, Priority: 1, At: 0},
			{Bench: a, Class: kernels.Small, Priority: 2, At: delay},
		},
	}
}

// EqualPair builds the Figure 10 scenario: the long kernel (large input)
// first, then the short kernel (small input), same priority.
func EqualPair(short, long *kernels.Benchmark) Scenario {
	return Scenario{
		Name: short.Name + "_" + long.Name,
		Items: []Item{
			{Bench: long, Class: kernels.Large, Priority: 1, At: 0},
			{Bench: short, Class: kernels.Small, Priority: 1, At: Eps},
		},
	}
}

// Triplet builds the Figure 12 scenario A_B_C: A on the large input,
// followed by B and C on small inputs, all equal priority.
func Triplet(a, b, c *kernels.Benchmark) Scenario {
	return Scenario{
		Name: a.Name + "_" + b.Name + "_" + c.Name,
		Items: []Item{
			{Bench: a, Class: kernels.Large, Priority: 1, At: 0},
			{Bench: b, Class: kernels.Small, Priority: 1, At: Eps},
			{Bench: c, Class: kernels.Small, Priority: 1, At: 2 * Eps},
		},
	}
}

// FairPair builds the Figure 13/14 scenario: both benchmarks loop forever
// on small inputs; priorities encode the 2:1 weight ratio.
func FairPair(high, low *kernels.Benchmark, horizon time.Duration) Scenario {
	return Scenario{
		Name:    high.Name + "_" + low.Name + "_fair",
		Horizon: horizon,
		Items: []Item{
			{Bench: high, Class: kernels.Small, Priority: 2, At: 0, Loop: true},
			{Bench: low, Class: kernels.Small, Priority: 1, At: Eps, Loop: true},
		},
	}
}

// SpatialPair builds the Figure 15 scenario: the low-priority kernel on the
// large input, then the high-priority kernel on the trivial input (too few
// CTAs to need the whole GPU).
func SpatialPair(high, low *kernels.Benchmark) Scenario {
	return Scenario{
		Name: high.Name + "_" + low.Name + "_spatial",
		Items: []Item{
			{Bench: low, Class: kernels.Large, Priority: 1, At: 0},
			{Bench: high, Class: kernels.Trivial, Priority: 2, At: Eps},
		},
	}
}

// PriorityPairs enumerates the paper's 28 Figure 8 co-runs: low-priority ∈
// {CFD, NN, PF, PL} on large inputs × each other benchmark as the
// high-priority small-input workload.
func PriorityPairs() []Scenario {
	lows := pick("CFD", "NN", "PF", "PL")
	var out []Scenario
	for _, low := range lows {
		for _, high := range kernels.All() {
			if high.Name == low.Name {
				continue
			}
			out = append(out, PriorityPair(high, low, 0))
		}
	}
	return out
}

// EqualPairs enumerates the paper's 28 Figure 10 co-runs: short ∈
// {MD, MM, SPMV, VA} on small inputs × each other benchmark on large.
func EqualPairs() []Scenario {
	shorts := pick("MD", "MM", "SPMV", "VA")
	var out []Scenario
	for _, s := range shorts {
		for _, l := range kernels.All() {
			if l.Name == s.Name {
				continue
			}
			out = append(out, EqualPair(s, l))
		}
	}
	return out
}

// Triplets enumerates 28 deterministic three-kernel co-runs (the paper
// randomly chooses 28; we derive them from a fixed enumeration so runs are
// reproducible). The paper's highlighted VA_SPMV_MM triplet is included.
func Triplets() []Scenario {
	bs := kernels.All()
	var out []Scenario
	// Walk ordered triples in a fixed pattern until 28 are collected,
	// seeding with the paper's example.
	va, _ := kernels.ByName("VA")
	spmv, _ := kernels.ByName("SPMV")
	mm, _ := kernels.ByName("MM")
	out = append(out, Triplet(va, spmv, mm))
	for i := 0; len(out) < 28; i++ {
		a := bs[(i*3)%len(bs)]
		b := bs[(i*5+1)%len(bs)]
		c := bs[(i*7+2)%len(bs)]
		if a == b || b == c || a == c {
			continue
		}
		if a == va && b == spmv && c == mm {
			continue
		}
		out = append(out, Triplet(a, b, c))
	}
	return out
}

// SpatialPairs enumerates Figure 15's co-runs: every benchmark paired with
// every other (high trivial vs low large).
func SpatialPairs() []Scenario {
	var out []Scenario
	for _, low := range kernels.All() {
		for _, high := range kernels.All() {
			if low.Name == high.Name {
				continue
			}
			out = append(out, SpatialPair(high, low))
		}
	}
	return out
}

// FairPairs enumerates the FFS co-runs over the same pairs as the HPF
// experiments (Figure 13/14 uses "the same co-run pairs").
func FairPairs(horizon time.Duration) []Scenario {
	lows := pick("CFD", "NN", "PF", "PL")
	var out []Scenario
	for _, low := range lows {
		for _, high := range kernels.All() {
			if high.Name == low.Name {
				continue
			}
			out = append(out, FairPair(high, low, horizon))
		}
	}
	return out
}

func pick(names ...string) []*kernels.Benchmark {
	out := make([]*kernels.Benchmark, 0, len(names))
	for _, n := range names {
		b, err := kernels.ByName(n)
		if err != nil {
			panic(err)
		}
		out = append(out, b)
	}
	return out
}
