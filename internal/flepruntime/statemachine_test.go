package flepruntime

import (
	"testing"
	"time"

	"flep/internal/gpu"
	"flep/internal/sim"
)

// TestHostStateMachineFollowsFigure5 traces one invocation through the
// paper's Figure 5: submit → S2 → (scheduled) S3 → (preempted) S2 →
// (rescheduled) S3 → (finished) S1.
func TestHostStateMachineFollowsFigure5(t *testing.T) {
	eng := sim.New()
	dev := gpu.New(eng, gpu.DefaultParams())
	rt := New(dev, Config{Policy: NewHPF()})

	long := inv("long", 1, 12000, us(100), 2)
	high := inv("high", 2, 1200, us(100), 2)

	var observed []HostState
	record := func(at time.Duration) {
		eng.Schedule(at, func() { observed = append(observed, long.HostState()) })
	}
	if err := rt.Submit(long); err != nil {
		t.Fatal(err)
	}
	record(us(1))    // dispatched (launching counts as running) → S3
	record(us(1500)) // preempted by high (drain ~us(1000)+) → S2
	record(us(2600)) // high done (~1ms + overheads), long resumed → S3
	eng.Schedule(us(1000), func() {
		if err := rt.Submit(high); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	observed = append(observed, long.HostState()) // finished → S1

	want := []HostState{S3, S2, S3, S1}
	if len(observed) != len(want) {
		t.Fatalf("observed %v", observed)
	}
	for i := range want {
		if observed[i] != want[i] {
			t.Fatalf("state trace %v, want %v", observed, want)
		}
	}
}

// Three priority levels: the runtime must maintain one queue per level and
// always serve the highest non-empty one (Figure 6 case 2).
func TestThreePriorityLevels(t *testing.T) {
	eng := sim.New()
	dev := gpu.New(eng, gpu.DefaultParams())
	rt := New(dev, Config{Policy: NewHPF()})

	low := inv("low", 1, 60000, us(100), 2)  // 50ms
	mid := inv("mid", 2, 2400, us(100), 2)   // 2ms
	high := inv("high", 3, 1200, us(100), 2) // 1ms
	var order []string
	for _, v := range []*Invocation{low, mid, high} {
		v := v
		v.OnFinish = func(*Invocation) { order = append(order, v.Kernel) }
	}
	if err := rt.Submit(low); err != nil {
		t.Fatal(err)
	}
	// mid arrives first, then high: high must preempt mid.
	eng.Schedule(us(500), func() { rt.Submit(mid) })
	eng.Schedule(us(800), func() { rt.Submit(high) })
	eng.Run()
	want := []string{"high", "mid", "low"}
	if len(order) != 3 {
		t.Fatalf("order %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	// high preempted mid, so mid's waiting time covers high's run.
	if mid.Tw < us(900) {
		t.Fatalf("mid.Tw = %v, expected to cover high's execution", mid.Tw)
	}
}

// A cascade: each arriving kernel has higher priority than the running one
// (Figure 6 line 3-6, repeatedly). All must finish in priority order.
func TestPriorityCascade(t *testing.T) {
	eng := sim.New()
	dev := gpu.New(eng, gpu.DefaultParams())
	rt := New(dev, Config{Policy: NewHPF()})
	const n = 5
	var order []string
	for p := 1; p <= n; p++ {
		p := p
		v := inv("p", p, 12000, us(100), 2)
		v.Kernel = string(rune('a' + p - 1))
		v.OnFinish = func(x *Invocation) { order = append(order, x.Kernel) }
		eng.Schedule(time.Duration(p)*us(200), func() { rt.Submit(v) })
	}
	eng.Run()
	if len(order) != n {
		t.Fatalf("finished %d", len(order))
	}
	// Highest priority (submitted last) finishes first, and so on down.
	want := []string{"e", "d", "c", "b", "a"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestHostStateString(t *testing.T) {
	if S1.String() != "S1(cpu)" || S2.String() != "S2(await-schedule)" || S3.String() != "S3(await-gpu)" {
		t.Fatal("state names changed")
	}
	if HostState(0).String() != "?" {
		t.Fatal("unknown state should print ?")
	}
}
