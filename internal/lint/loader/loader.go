// Package loader type-checks Go packages for flepvet without any
// dependency beyond the standard library and the go command. Package
// metadata and compiled export data come from `go list -export -deps
// -json`; the analyzed packages themselves are re-parsed from source
// (analyzers need syntax trees), and their imports are satisfied from
// the export data, so a whole-module load stays fast.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
}

// goList runs `go list -export -deps -json` for the patterns and decodes
// the package stream.
func goList(dir string, patterns []string) (map[string]*listPkg, []*listPkg, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	byPath := map[string]*listPkg{}
	var order []*listPkg
	dec := json.NewDecoder(&out)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list: decode: %v", err)
		}
		lp := p
		byPath[lp.ImportPath] = &lp
		order = append(order, &lp)
	}
	return byPath, order, nil
}

// exportLookup satisfies go/importer's gc Lookup from a go list result:
// every import resolves to its compiled export data file.
func exportLookup(byPath map[string]*listPkg, importMap map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if m, ok := importMap[path]; ok {
			path = m
		}
		lp := byPath[path]
		if lp == nil {
			return nil, fmt.Errorf("loader: import %q not in go list output", path)
		}
		if lp.Export == "" {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(lp.Export)
	}
}

// ParseFiles parses the named files (absolute or dir-relative) with
// comments retained. Exported for cmd/flepvet's vettool mode, which
// gets its file list from cmd/go rather than go list.
func ParseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Load type-checks every non-dependency package matched by patterns
// (e.g. "./...") under dir. All packages share one FileSet, so token
// positions from different packages compare and render coherently.
func Load(fset *token.FileSet, dir string, patterns []string, newInfo func() *types.Info) ([]*Package, error) {
	byPath, order, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, lp := range order {
		if lp.DepOnly || lp.Standard || lp.Name == "" {
			continue
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		files, err := ParseFiles(fset, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("loader: %s: %w", lp.ImportPath, err)
		}
		info := newInfo()
		conf := types.Config{
			Importer: importer.ForCompiler(fset, "gc", exportLookup(byPath, lp.ImportMap)),
		}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("loader: typecheck %s: %w", lp.ImportPath, err)
		}
		out = append(out, &Package{
			PkgPath: lp.ImportPath, Dir: lp.Dir,
			Files: files, Types: tpkg, Info: info,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("loader: no packages matched %v", patterns)
	}
	return out, nil
}

// LoadFixture type-checks the fixture package rooted at
// root/src/<importPath>. Imports resolve against sibling fixture
// packages first (root/src/<path>), then against real packages via the
// go command — so a fixture can import both a stub and e.g.
// "flep/internal/obs". The fixture's package path is importPath itself,
// which is how analyzers that scope by import path are exercised.
func LoadFixture(fset *token.FileSet, root, importPath string, newInfo func() *types.Info) (*Package, error) {
	ld := &fixtureLoader{
		fset: fset, root: root, newInfo: newInfo,
		typed: map[string]*types.Package{},
	}
	// Collect the transitive non-fixture imports up front so one go list
	// invocation covers them all.
	ext := map[string]bool{}
	if err := ld.scanImports(importPath, ext, map[string]bool{}); err != nil {
		return nil, err
	}
	if len(ext) > 0 {
		paths := make([]string, 0, len(ext))
		for p := range ext {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		byPath, _, err := goList(root, paths)
		if err != nil {
			return nil, err
		}
		ld.ext = importer.ForCompiler(fset, "gc", exportLookup(byPath, nil))
	}
	return ld.load(importPath)
}

type fixtureLoader struct {
	fset    *token.FileSet
	root    string
	newInfo func() *types.Info
	typed   map[string]*types.Package
	pkgs    map[string]*Package
	ext     types.Importer
}

func (ld *fixtureLoader) dirFor(importPath string) string {
	return filepath.Join(ld.root, "src", filepath.FromSlash(importPath))
}

func (ld *fixtureLoader) isFixture(importPath string) bool {
	st, err := os.Stat(ld.dirFor(importPath))
	return err == nil && st.IsDir()
}

// scanImports walks fixture packages recording every import that is not
// itself a fixture package.
func (ld *fixtureLoader) scanImports(importPath string, ext, seen map[string]bool) error {
	if seen[importPath] {
		return nil
	}
	seen[importPath] = true
	files, err := ld.parseDir(importPath)
	if err != nil {
		return err
	}
	for _, f := range files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == "unsafe" {
				continue
			}
			if ld.isFixture(p) {
				if err := ld.scanImports(p, ext, seen); err != nil {
					return err
				}
			} else {
				ext[p] = true
			}
		}
	}
	return nil
}

func (ld *fixtureLoader) parseDir(importPath string) ([]*ast.File, error) {
	dir := ld.dirFor(importPath)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("loader: fixture %s: %w", importPath, err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("loader: fixture %s: no .go files in %s", importPath, dir)
	}
	return ParseFiles(ld.fset, dir, names)
}

// Import satisfies types.Importer for the fixture type-checker.
func (ld *fixtureLoader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := ld.typed[path]; ok {
		return p, nil
	}
	if ld.isFixture(path) {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if ld.ext == nil {
		return nil, fmt.Errorf("loader: fixture import %q has no resolver", path)
	}
	return ld.ext.Import(path)
}

func (ld *fixtureLoader) load(importPath string) (*Package, error) {
	files, err := ld.parseDir(importPath)
	if err != nil {
		return nil, err
	}
	info := ld.newInfo()
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(importPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: typecheck fixture %s: %w", importPath, err)
	}
	ld.typed[importPath] = tpkg
	return &Package{
		PkgPath: importPath, Dir: ld.dirFor(importPath),
		Files: files, Types: tpkg, Info: info,
	}, nil
}
