package flepruntime

import (
	"flep/internal/obs"
)

// Metrics holds the runtime engine's instruments. All fields are nil-safe
// obs instruments, so the zero value is a valid "not instrumented"
// metrics set; NewMetrics wires every field to a registry. The families
// map directly onto the paper's measured quantities: preemption counts
// and drain latency are Figure 9/15's preemption-overhead substrate, the
// prediction-error histogram quantifies how far OverheadFor's estimate
// (§5.2's O_i) sits from the realized drain, and queue wait is the T_w
// term of Figure 12/13's turnaround accounting.
type Metrics struct {
	// Submits counts invocations accepted by Submit.
	Submits *obs.Counter
	// Dispatches counts primary dispatches; GuestDispatches counts
	// spatial-guest dispatches onto freed low SMs.
	Dispatches      *obs.Counter
	GuestDispatches *obs.Counter
	// TemporalPreempts and SpatialPreempts count realized drains by mode;
	// PreemptAborts counts preemption attempts whose victim raced to
	// completion before the flag could be set.
	TemporalPreempts *obs.Counter
	SpatialPreempts  *obs.Counter
	PreemptAborts    *obs.Counter
	// DrainLatency is the realized preemption latency: virtual time from
	// the preempt decision to the drained callback.
	DrainLatency *obs.Histogram
	// OverheadError is |OverheadFor's prediction − realized drain
	// latency| per preemption (seconds).
	OverheadError *obs.Histogram
	// QueueWait is the waiting-time segment folded into T_w at each
	// dispatch (seconds of virtual time).
	QueueWait *obs.Histogram
	// QueueLength tracks the policy queue depth after each reconcile.
	QueueLength *obs.Gauge
	// DependentSubmits counts accepted invocations that belong to a model
	// graph (released from the daemon's pending-dependency table);
	// DependentQueueLength tracks how many of the queued invocations are
	// graph stages, making dependency load visible in queue accounting.
	DependentSubmits     *obs.Counter
	DependentQueueLength *obs.Gauge

	// FFS policy internals (zero-valued under HPF).
	EpochsOpened   *obs.Counter
	EpochExtends   *obs.Counter
	EpochLength    *obs.Histogram
	TimersCanceled *obs.Counter
	Evictions      *obs.Counter
}

// NewMetrics registers the runtime metric families on reg and returns the
// wired instrument set. A nil registry yields a fully inert Metrics.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Submits:    reg.Counter("flep_runtime_submits_total", "Invocations accepted by the runtime"),
		Dispatches: reg.Counter("flep_runtime_dispatches_total", "Kernel dispatches by placement", "kind", "primary"),
		GuestDispatches: reg.Counter("flep_runtime_dispatches_total",
			"Kernel dispatches by placement", "kind", "guest"),
		TemporalPreempts: reg.Counter("flep_runtime_preemptions_total",
			"Realized preemption drains by mode", "mode", "temporal"),
		SpatialPreempts: reg.Counter("flep_runtime_preemptions_total",
			"Realized preemption drains by mode", "mode", "spatial"),
		PreemptAborts: reg.Counter("flep_runtime_preempt_aborts_total",
			"Preemption attempts whose victim completed before the flag was set"),
		DrainLatency: reg.Histogram("flep_runtime_drain_latency_seconds",
			"Virtual time from preempt decision to drained callback", nil),
		OverheadError: reg.Histogram("flep_runtime_overhead_prediction_error_seconds",
			"Absolute error of OverheadFor's estimate vs the realized drain latency", nil),
		QueueWait: reg.Histogram("flep_runtime_queue_wait_seconds",
			"Virtual waiting time folded into T_w at each dispatch", nil),
		QueueLength: reg.Gauge("flep_runtime_queue_length",
			"Invocations waiting in the policy queue"),
		DependentSubmits: reg.Counter("flep_runtime_dependent_submits_total",
			"Accepted invocations that are model-graph stages"),
		DependentQueueLength: reg.Gauge("flep_runtime_dependent_queue_length",
			"Model-graph stages waiting in the policy queue"),
		EpochsOpened: reg.Counter("flep_ffs_epochs_total",
			"FFS epochs opened (GPU handovers plus sole-tenant extensions)", "kind", "rotation"),
		EpochExtends: reg.Counter("flep_ffs_epochs_total",
			"FFS epochs opened (GPU handovers plus sole-tenant extensions)", "kind", "extension"),
		EpochLength: reg.Histogram("flep_ffs_epoch_length_seconds",
			"Length of each opened FFS epoch", nil),
		TimersCanceled: reg.Counter("flep_ffs_timers_canceled_total",
			"Superseded FFS epoch timers canceled before firing"),
		Evictions: reg.Counter("flep_ffs_evictions_total",
			"Departed kernels evicted from FFS's overhead table"),
	}
}
