package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"flep/internal/obs"
	"flep/internal/replay"
	"flep/internal/server"
)

// Config configures a Gateway.
type Config struct {
	// Nodes are the flepd base addresses in cluster order. ":8081",
	// "host:8081", and "http://host:8081" forms are all accepted; node
	// IDs are assigned positionally (n0, n1, ...).
	Nodes []string
	// HealthInterval is the active health-check period (default 200ms).
	HealthInterval time.Duration
	// ProbeTimeout bounds one health probe round-trip (default 2s).
	ProbeTimeout time.Duration
	// Client issues proxied launches and aggregation fetches. The default
	// client has no overall timeout: launches block server-side until the
	// invocation completes, which is the flepd contract.
	Client *http.Client
	// Recorder, when set, captures every launch the gateway saw accepted
	// (Source flepgw, Node stamped). The gateway does not own its
	// lifecycle; the caller closes it.
	Recorder *replay.Recorder
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

func (c *Config) applyDefaults() {
	if c.HealthInterval <= 0 {
		c.HealthInterval = 200 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// normalizeAddr turns a -nodes entry into a base URL.
func normalizeAddr(a string) (string, error) {
	a = strings.TrimSpace(a)
	if a == "" {
		return "", fmt.Errorf("cluster: empty node address")
	}
	if strings.HasPrefix(a, "http://") || strings.HasPrefix(a, "https://") {
		return strings.TrimRight(a, "/"), nil
	}
	if strings.HasPrefix(a, ":") {
		return "http://127.0.0.1" + a, nil
	}
	return "http://" + a, nil
}

// node is the gateway's view of one flepd. The immutable identity fields
// are set at construction; everything else is guarded by Gateway.mu.
// Gateway-side counters (accepted/failed/timedOut) count terminal
// responses the gateway actually relayed — a request that died on the
// wire before a response counts nothing, which is what makes the
// cluster-wide reconciliation exact: every launch a node enqueued on the
// gateway's behalf produced exactly one terminal response.
type node struct {
	id   string
	addr string

	ready      bool
	draining   bool // gateway-side drain: stop routing, wait, remove
	removed    bool
	lastErr    string
	status     server.Status
	haveStatus bool
	benches    []server.BenchmarkInfo

	accepted int64
	failed   int64
	timedOut int64
	inflight int64

	readyGauge *obs.Gauge
}

func (n *node) eligible() bool { return n.ready && !n.draining && !n.removed }

func (n *node) stateString() string {
	switch {
	case n.removed:
		return "removed"
	case n.draining:
		return "draining"
	case n.ready:
		return "ready"
	default:
		return "down"
	}
}

// Gateway fronts a set of flepd nodes.
type Gateway struct {
	cfg       Config
	reg       *obs.Registry
	rec       *replay.Recorder
	ring      *ring
	startReal time.Time

	mu     sync.Mutex
	nodes  []*node
	byAddr map[string]*node
	byID   map[string]*node
	rr     int64 // rotating tie-break for placement bursts

	met *gwMetrics

	stopOnce   sync.Once
	stopCh     chan struct{}
	healthDone chan struct{}
}

// New builds a Gateway over the configured nodes. Call Start to begin
// health checking and Close to stop it.
func New(cfg Config) (*Gateway, error) {
	cfg.applyDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes configured")
	}
	g := &Gateway{
		cfg:        cfg,
		reg:        obs.NewRegistry(),
		rec:        cfg.Recorder,
		startReal:  time.Now(),
		byAddr:     map[string]*node{},
		byID:       map[string]*node{},
		stopCh:     make(chan struct{}),
		healthDone: make(chan struct{}),
	}
	var addrs []string
	for i, raw := range cfg.Nodes {
		addr, err := normalizeAddr(raw)
		if err != nil {
			return nil, err
		}
		if _, dup := g.byAddr[addr]; dup {
			return nil, fmt.Errorf("cluster: duplicate node address %s", addr)
		}
		n := &node{id: fmt.Sprintf("n%d", i), addr: addr}
		g.nodes = append(g.nodes, n)
		g.byAddr[addr] = n
		g.byID[n.id] = n
		addrs = append(addrs, addr)
	}
	// The ring hashes addresses, not positional IDs: re-listing the same
	// cluster with one node added leaves existing sessions' home nodes
	// unchanged even though positional IDs shift.
	g.ring = newRing(addrs)
	g.met = newGWMetrics(g.reg, g)
	for _, n := range g.nodes {
		//flepvet:allow metriclabel -- node IDs are fixed at startup from -nodes, bounded cardinality
		n.readyGauge = g.reg.Gauge("flep_gateway_node_ready", "1 while the node answers readyz with 200", "node", n.id)
	}
	return g, nil
}

// Start launches the active health-check loop.
func (g *Gateway) Start() {
	go g.healthLoop()
}

// Close stops the health loop. It does not drain in-flight proxied
// requests — the HTTP server owns those.
func (g *Gateway) Close() {
	g.stopOnce.Do(func() { close(g.stopCh) })
	<-g.healthDone
}

// Registry exposes the gateway's own metrics registry (tests).
func (g *Gateway) Registry() *obs.Registry { return g.reg }

// probeTarget is the immutable slice of node state a health probe needs;
// copied out under mu so no HTTP happens while the lock is held.
type probeTarget struct {
	id, addr  string
	needBench bool
}

func (g *Gateway) healthLoop() {
	defer close(g.healthDone)
	t := time.NewTicker(g.cfg.HealthInterval)
	defer t.Stop()
	// Probe immediately so a freshly-started gateway is routable as soon
	// as its nodes are, not one interval later.
	g.probeAll()
	for {
		select {
		case <-g.stopCh:
			return
		case <-t.C:
			g.probeAll()
		}
	}
}

func (g *Gateway) probeAll() {
	g.mu.Lock()
	targets := make([]probeTarget, 0, len(g.nodes))
	for _, n := range g.nodes {
		if n.removed {
			continue
		}
		targets = append(targets, probeTarget{id: n.id, addr: n.addr, needBench: len(n.benches) == 0})
	}
	g.mu.Unlock()

	var wg sync.WaitGroup
	for _, tgt := range targets {
		wg.Add(1)
		go func(tgt probeTarget) {
			defer wg.Done()
			g.probeOne(tgt)
		}(tgt)
	}
	wg.Wait()
}

// probeOne checks one node's readiness and refreshes its cached status
// snapshot. All HTTP happens before the state update.
func (g *Gateway) probeOne(tgt probeTarget) {
	client := &http.Client{Timeout: g.cfg.ProbeTimeout, Transport: g.cfg.Client.Transport}

	ready, probeErr := probeReady(client, tgt.addr)
	var st server.Status
	haveStatus := false
	if probeErr == nil {
		if err := getJSON(client, tgt.addr+"/v1/status", &st); err == nil {
			haveStatus = true
		}
	}
	var benches []server.BenchmarkInfo
	if ready && tgt.needBench {
		// Fetch the node's benchmark catalog once: it is static for the
		// node's lifetime and drives memory-aware placement.
		_ = getJSON(client, tgt.addr+"/v1/benchmarks", &benches)
	}

	g.mu.Lock()
	n := g.byID[tgt.id]
	wasReady := n.ready
	n.ready = ready
	if probeErr != nil {
		n.lastErr = probeErr.Error()
	} else {
		n.lastErr = ""
	}
	if haveStatus {
		n.status = st
		n.haveStatus = true
	}
	if len(benches) > 0 && len(n.benches) == 0 {
		n.benches = benches
	}
	if n.readyGauge != nil {
		if ready {
			n.readyGauge.Set(1)
		} else {
			n.readyGauge.Set(0)
		}
	}
	g.mu.Unlock()

	if wasReady != ready {
		if ready {
			g.cfg.Logf("cluster: node %s (%s) ready", tgt.id, tgt.addr)
		} else {
			g.cfg.Logf("cluster: node %s (%s) not ready: %v", tgt.id, tgt.addr, probeErr)
		}
	}
}

// probeReady asks the node's /readyz. A 200 is ready; 503 is a live but
// draining/unready node; anything else (including transport errors) is
// down with the error recorded.
func probeReady(client *http.Client, addr string) (bool, error) {
	resp, err := client.Get(addr + "/readyz")
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return true, nil
	}
	return false, fmt.Errorf("readyz: %s", resp.Status)
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// markDown records a passive health observation: a proxied request to
// the node failed at the transport layer, so stop routing to it until
// the health loop sees it answer again.
func (g *Gateway) markDown(id string, err error) {
	g.mu.Lock()
	n := g.byID[id]
	was := n.ready
	n.ready = false
	n.lastErr = err.Error()
	if n.readyGauge != nil {
		n.readyGauge.Set(0)
	}
	g.mu.Unlock()
	if was {
		g.cfg.Logf("cluster: node %s marked down: %v", id, err)
	}
}

// markUnready records a 503 from the node's launch path (it is draining
// on its own initiative); the health loop will confirm via /readyz.
func (g *Gateway) markUnready(id string) {
	g.mu.Lock()
	g.byID[id].ready = false
	g.mu.Unlock()
}

// NodeStatus is the /v1/nodes view of one node: its gateway-side routing
// state and terminal-response accounting next to the node's own last
// status snapshot. gw_accepted + gw_failed + gw_timed_out on a surviving
// node equals that node's enqueued counter once the cluster is at rest —
// the reconciliation contract cluster_smoke.sh enforces.
type NodeStatus struct {
	ID       string `json:"id"`
	Addr     string `json:"addr"`
	State    string `json:"state"`
	LastErr  string `json:"last_error,omitempty"`
	Accepted int64  `json:"gw_accepted"`
	Failed   int64  `json:"gw_failed"`
	TimedOut int64  `json:"gw_timed_out"`
	InFlight int64  `json:"gw_in_flight"`
	// Status is the node's last /v1/status snapshot (from the health
	// loop; absent until the first successful probe).
	Status *server.Status `json:"status,omitempty"`
}

// Statuses snapshots every node's gateway-side view (the /v1/nodes body
// and the exit-time accounting log).
func (g *Gateway) Statuses() []NodeStatus { return g.nodeStatuses() }

// nodeStatuses snapshots every node under the lock.
func (g *Gateway) nodeStatuses() []NodeStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]NodeStatus, 0, len(g.nodes))
	for _, n := range g.nodes {
		ns := NodeStatus{
			ID: n.id, Addr: n.addr, State: n.stateString(), LastErr: n.lastErr,
			Accepted: n.accepted, Failed: n.failed, TimedOut: n.timedOut, InFlight: n.inflight,
		}
		if n.haveStatus {
			st := n.status
			ns.Status = &st
		}
		out = append(out, ns)
	}
	return out
}

// Drain starts a gateway-side drain of the node: routing stops
// immediately (sessions remap along their ring walk), and once the
// gateway has no in-flight requests to it and the node itself is at
// rest — or the node is unreachable — it is removed from rotation.
// The wait runs in the background; Drain returns immediately.
func (g *Gateway) Drain(id string) error {
	g.mu.Lock()
	n, ok := g.byID[id]
	if !ok {
		g.mu.Unlock()
		return fmt.Errorf("cluster: unknown node %q", id)
	}
	if n.removed {
		g.mu.Unlock()
		return fmt.Errorf("cluster: node %s already removed", id)
	}
	already := n.draining
	n.draining = true
	g.mu.Unlock()
	if already {
		return nil
	}
	g.cfg.Logf("cluster: draining node %s", id)
	go g.waitDrain(id)
	return nil
}

// waitDrain polls until the drained node is quiescent, then removes it.
func (g *Gateway) waitDrain(id string) {
	t := time.NewTicker(g.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-g.stopCh:
			return
		case <-t.C:
		}
		g.mu.Lock()
		n := g.byID[id]
		quiescent := n.inflight == 0
		if quiescent && n.ready && n.haveStatus {
			c := n.status.Counters
			quiescent = n.status.QueueLen == 0 && c.Enqueued == c.Completed+c.SubmitErrors
		}
		if quiescent {
			n.removed = true
		}
		g.mu.Unlock()
		if quiescent {
			g.cfg.Logf("cluster: node %s drained and removed", id)
			return
		}
	}
}

// ReadyNodes reports how many nodes are currently routable (tests and
// the gateway's own /readyz).
func (g *Gateway) ReadyNodes() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	count := 0
	for _, n := range g.nodes {
		if n.eligible() {
			count++
		}
	}
	return count
}

// NodeIDs returns the configured node IDs in cluster order.
func (g *Gateway) NodeIDs() []string {
	ids := make([]string, len(g.nodes))
	for i, n := range g.nodes {
		ids[i] = n.id
	}
	return ids
}

// uptimeMS mirrors the flepd status field.
func (g *Gateway) uptimeMS() int64 { return time.Since(g.startReal).Milliseconds() }
