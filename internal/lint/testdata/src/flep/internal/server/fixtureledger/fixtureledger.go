// Package fixtureledger exercises the exactly-once admission ledger on
// a miniature Server: an entry-point path that forgets its terminal
// counter, a path that counts two families, an entry that counts a
// family outside its contract, a dep-layer function touching the core
// ledger directly — and the clean conditional shapes (helper summaries,
// at-most-one entries) that must stay silent.
package fixtureledger

type counters struct {
	Enqueued        int64
	Completed       int64
	SubmitErrors    int64
	RejectedFull    int64
	RejectedShed    int64
	RejectedInvalid int64
}

type Server struct {
	c    counters
	full bool
}

// ---------------------------------------------------------- violations

// handleLaunch forgets to account the full-queue path.
func (s *Server) handleLaunch(valid bool) {
	if !valid {
		s.c.RejectedInvalid++
		return
	}
	if s.full {
		return // want `ledgermissing handleLaunch: this path increments no terminal-outcome counter; every admission path must account exactly one`
	}
	s.c.Enqueued++
}

// rejectLaunch counts the shed path twice: once as full, once as shed.
func (s *Server) rejectLaunch(shed bool) {
	s.c.RejectedFull++
	if shed {
		s.c.RejectedShed++
		return // want `ledgerdouble rejectLaunch: this path increments 2 terminal-outcome families \(rejected_full\+rejected_shed\); the exactly-once ledger allows one`
	}
}

// complete books the failure under submit_errors, which belongs to the
// admit boundary, not the completion one.
func (s *Server) complete(ok bool) {
	if !ok {
		s.c.SubmitErrors++
		return // want `ledgerforbidden complete: this path increments submit_errors, outside the entry point's contract \(completed\)`
	}
	s.c.Completed++
}

// depStageDone is dep-table maintenance; the stages it releases belong
// to other requests, so counting Enqueued here double-books them.
func (s *Server) depStageDone() {
	s.c.Enqueued++ // want `ledgerforbidden depStageDone increments core ledger counter enqueued directly; released stages re-enter the ledger only through the sanctioned admission boundary`
}

// --------------------------------------------------------------- clean

// serveLaunch routes every path through exactly one family, two of them
// via helper summaries.
func (s *Server) serveLaunch(valid bool) {
	if !valid {
		s.countInvalid()
		return
	}
	if s.full {
		s.rejectFull()
		return
	}
	s.c.Enqueued++
}

// countInvalid is itself an entry with the rejected_invalid contract.
func (s *Server) countInvalid() {
	s.c.RejectedInvalid++
}

func (s *Server) rejectFull() {
	s.c.RejectedFull++
}

// admit is at-most-one: the success outcome is deferred to completion.
func (s *Server) admit(fail bool) {
	if fail {
		s.c.SubmitErrors++
	}
}
