__global__ void va(float* a, float* b, float* c, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        c[i] = a[i] + b[i];
    }
}

__device__ void va_flep_task(float* a, float* b, float* c, int n, int flep_bx, int flep_by, int flep_grid_x, int flep_grid_y) {
    int i = flep_bx * blockDim.x + threadIdx.x;
    if (i < n) {
        c[i] = a[i] + b[i];
    }
}

__global__ void va_flep(float* a, float* b, float* c, int n, volatile unsigned int* flep_preempt, int* flep_next_task, int flep_num_tasks, int flep_grid_x, int flep_grid_y) {
    __shared__ int flep_task;
    __shared__ int flep_stop;
    while (1) {
        if (threadIdx.x == 0 && threadIdx.y == 0) {
            if (*flep_preempt != 0) {
                flep_stop = 1;
            } else {
                flep_stop = 0;
            }
        }
        __syncthreads();
        if (flep_stop == 1) {
            return;
        }
        if (threadIdx.x == 0 && threadIdx.y == 0) {
            flep_task = atomicAdd(flep_next_task, 1);
        }
        __syncthreads();
        if (flep_task >= flep_num_tasks) {
            return;
        }
        va_flep_task(a, b, c, n, flep_task % flep_grid_x, flep_task / flep_grid_x, flep_grid_x, flep_grid_y);
        __syncthreads();
    }
}
