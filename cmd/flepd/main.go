// Command flepd is the FLEP scheduling daemon: it builds the offline
// artifacts for the selected benchmarks at startup, then serves
// kernel-launch requests from concurrent clients over HTTP, routing them
// through the FLEP runtime engine (HPF, FFS, or EDF) on the simulated
// K40. Under -policy edf, launches carrying a deadline_ms SLO budget
// are ordered earliest-deadline-first and may preempt best-effort work
// when a deadline is at risk; admission control sheds best-effort
// launches (429) while the queue threatens outstanding deadlines.
// With -devices N it runs a fleet of N device shards behind one front
// door: each shard owns its own simulated K40 and event loop, a
// memory-aware least-loaded router places every admitted launch, and the
// read endpoints aggregate across shards with a device label.
//
// Usage:
//
//	flepd -addr :7450 -policy hpf -spatial -bench VA,MM,SPMV -trace
//	flepd -devices 4 -bench VA,MM     # four-shard fleet
//	flepd -record run.trace           # capture admissions for flepreplay
//
// Endpoints:
//
//	POST /v1/launch     submit a kernel invocation; blocks until done
//	GET  /v1/status     daemon counters, queue depth, virtual clock
//	GET  /v1/sessions   per-client sessions (Figure 5 host states)
//	GET  /v1/benchmarks loaded kernels, tuned L, solo baselines
//	GET  /v1/trace      runtime+device event log (with -trace)
//	POST /v1/pause      park the scheduler (arrivals queue up)
//	POST /v1/resume     unpark
//	GET  /healthz       pure liveness (200 while the process serves)
//	GET  /readyz        readiness for routing (503 while draining)
//	GET  /metrics       Prometheus text exposition (runtime, device,
//	                    policy, and server metric families)
//
// SIGINT/SIGTERM starts a graceful drain: new launches get 503, queued
// and in-flight invocations run to completion, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // profiling endpoints on the opt-in -debug-addr listener
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"flep/internal/replay"
	"flep/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":7450", "listen address")
		policy       = flag.String("policy", "hpf", "scheduling policy: hpf, hpf-naive, ffs, fifo, or edf")
		spatial      = flag.Bool("spatial", false, "enable spatial preemption (HPF only)")
		spatialSMs   = flag.Int("spatial-sms", 0, "override yielded SM count for spatial preemption")
		maxOverhead  = flag.Float64("max-overhead", 0.10, "FFS overhead budget")
		weightsFlag  = flag.String("weights", "", "FFS priority weights, e.g. 1=1,2=2")
		benchFlag    = flag.String("bench", "all", "benchmarks to load: comma-separated names or all")
		queueDepth   = flag.Int("queue", 256, "admission queue depth (backpressure bound)")
		depPending   = flag.Int("dep-pending", 256, "max graph stages parked awaiting prerequisites (per shard)")
		depGraphs    = flag.Int("dep-graphs", 256, "max live model-graph instances tracked (per shard)")
		reqTimeout   = flag.Duration("timeout", 30*time.Second, "per-request completion wait bound")
		traceOn      = flag.Bool("trace", false, "keep a runtime+device event log at /v1/trace")
		traceLimit   = flag.Int("trace-limit", 65536, "max retained trace entries")
		pace         = flag.Duration("pace", 0, "real-time sleep per simulated event (0 = full speed)")
		drainTimeout = flag.Duration("drain-timeout", 60*time.Second, "graceful-shutdown drain bound")
		devices      = flag.Int("devices", 1, "number of device shards in the fleet")
		affinity     = flag.Bool("affinity", true, "pin each client to the shard of its first launch")
		recordPath   = flag.String("record", "", "append every admitted launch to a replay trace (JSONL) at this path")
		recordRotate = flag.Int64("record-rotate", 0, "rotate the trace once a segment exceeds this many bytes (0 = never)")
		debugAddr    = flag.String("debug-addr", "", "optional net/http/pprof listen address (e.g. localhost:6060); empty disables")
	)
	flag.Parse()

	weights, err := parseWeights(*weightsFlag)
	if err != nil {
		log.Fatalf("flepd: %v", err)
	}
	cfg := server.FleetConfig{
		Config: server.Config{
			Policy:         *policy,
			Spatial:        *spatial,
			SpatialSMs:     *spatialSMs,
			MaxOverhead:    *maxOverhead,
			Weights:        weights,
			Benchmarks:     parseBenchList(*benchFlag),
			QueueDepth:     *queueDepth,
			DepPending:     *depPending,
			DepGraphs:      *depGraphs,
			RequestTimeout: *reqTimeout,
			Trace:          *traceOn,
			TraceLimit:     *traceLimit,
			Pace:           *pace,
			Logf:           log.Printf,
		},
		Devices:  *devices,
		Affinity: *affinity,
	}
	var recorder *replay.Recorder
	if *recordPath != "" {
		recorder, err = replay.NewRecorder(*recordPath, cfg.Config.RecorderHeader(*devices),
			replay.RecorderOptions{RotateBytes: *recordRotate, WallClock: time.Now})
		if err != nil {
			log.Fatalf("flepd: %v", err)
		}
		cfg.Config.Recorder = recorder
		log.Printf("flepd: recording admitted launches to %s", *recordPath)
	}

	log.Printf("flepd: building offline artifacts (policy=%s spatial=%v devices=%d)",
		cfg.Policy, cfg.Spatial, cfg.Devices)
	start := time.Now()
	srv, err := server.NewFleet(cfg)
	if err != nil {
		log.Fatalf("flepd: %v", err)
	}
	log.Printf("flepd: offline phase done in %v", time.Since(start).Round(time.Millisecond))

	if *debugAddr != "" {
		// pprof registers on http.DefaultServeMux at import; the API below
		// uses its own mux, so the profiling surface only exists on this
		// separate opt-in listener (never exposed on the serving address).
		go func() {
			log.Printf("flepd: pprof debug listener on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("flepd: debug listener: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("flepd: serving on %s", *addr)

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("flepd: %v: draining (bound %v)", sig, *drainTimeout)
	case err := <-errCh:
		log.Fatalf("flepd: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("flepd: drain incomplete: %v", err)
	} else {
		for i := 0; i < srv.Devices(); i++ {
			log.Printf("flepd: device %d drained cleanly at virtual %v", i, srv.Shard(i).VirtualNow())
		}
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("flepd: http shutdown: %v", err)
	}
	c := srv.Counters()
	log.Printf("flepd: fleet enqueued=%d completed=%d submit_errors=%d rejected_full=%d timed_out=%d",
		c["enqueued"], c["completed"], c["submit_errors"], c["rejected_queue_full"], c["timed_out"])
	if c["completed"]+c["submit_errors"] != c["enqueued"] {
		log.Fatalf("flepd: fleet exactly-once invariant violated at exit")
	}
	for i := 0; i < srv.Devices(); i++ {
		sc := srv.Shard(i).Counters()
		if sc["completed"]+sc["submit_errors"] != sc["enqueued"] {
			log.Fatalf("flepd: device %d exactly-once invariant violated at exit", i)
		}
	}
	if recorder != nil {
		if err := recorder.Close(); err != nil {
			log.Printf("flepd: closing trace: %v", err)
		}
		log.Printf("flepd: trace %s: %d launches recorded (replay with: flepreplay replay -trace %s)",
			recorder.Path(), recorder.Seq(), recorder.Path())
	}
}

// parseBenchList turns "VA,MM" into a name slice; "all"/"" selects the
// whole suite (nil).
func parseBenchList(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" || strings.EqualFold(s, "all") {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// parseWeights parses "1=1,2=2.5" into a priority→weight map.
func parseWeights(s string) (map[int]float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	out := map[int]float64{}
	for _, f := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(f), "=")
		if !ok {
			return nil, fmt.Errorf("bad weight %q (want PRIO=WEIGHT)", f)
		}
		prio, err := strconv.Atoi(k)
		if err != nil {
			return nil, fmt.Errorf("bad priority in %q: %v", f, err)
		}
		w, err := strconv.ParseFloat(v, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad weight in %q", f)
		}
		out[prio] = w
	}
	return out, nil
}
