// Package fixtureallow exercises the //flepvet:allow escape hatch:
// well-formed annotations suppress, malformed ones are themselves
// diagnosed and suppress nothing. Expectations live in
// TestAllowAnnotations (the annotation line cannot also carry a want
// comment without corrupting the annotation).
package fixtureallow

import "time"

// Allowed demonstrates the comment-above form.
func Allowed() int64 {
	//flepvet:allow wallclock -- fixture: boundary code stamps real arrival times
	return time.Now().UnixNano()
}

// SameLine demonstrates the trailing form.
func SameLine() time.Time {
	return time.Now() //flepvet:allow wallclock -- fixture: same-line annotation
}

// MissingReason's annotation is rejected, so the finding still fires.
func MissingReason() int64 {
	//flepvet:allow wallclock
	return time.Now().UnixNano()
}

// UnknownCategory names a category no analyzer owns.
func UnknownCategory() time.Time {
	//flepvet:allow notacategory -- reason is present but the category is wrong
	return time.Now()
}
