// Package fixturesrv exercises the looppurity analyzer's server
// roots: methods named loop/admit/complete run on the loop goroutine,
// and a mutex they share with handler-side code can stall the loop.
package fixturesrv

import "sync"

// Server has one mutex shared with handlers and one private to the
// loop.
type Server struct {
	mu     sync.Mutex // also taken by Snapshot (handler side)
	loopMu sync.Mutex // taken only on the loop goroutine
	n      int
}

// loop is rooted by name in internal/server packages.
func (s *Server) loop() {
	s.mu.Lock() // want `sharedlock s\.mu\.Lock`
	s.n++
	s.mu.Unlock()

	s.loopMu.Lock() // loop-private: clean
	s.n++
	s.loopMu.Unlock()
}

// Snapshot runs on handler goroutines and takes the shared mutex,
// which is what makes s.mu contended from the loop's point of view.
func (s *Server) Snapshot() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
